// Tests for the async Classify contract that the network front end
// depends on: the callback fires exactly once per submission — fast
// rejections (expired deadline, admission shed) synchronously on the
// submitting thread, real answers on a worker; concurrent async and
// blocking callers get identical answers (verified against a serial
// re-run of the inference path); and destroying the engine with
// callbacks in flight blocks until every one has fired.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "chain/ledger.h"
#include "core/aggregator.h"
#include "core/classifier.h"
#include "core/gfn_features.h"
#include "core/graph_builder.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "serve/inference_engine.h"
#include "util/fs.h"
#include "util/rng.h"

namespace ba {
namespace {

using chain::AddressId;
using serve::ClassifyOptions;
using serve::ClassifyResult;
using serve::InferenceEngine;

/// Every fault-injection test must leave the global injector clean.
class FaultGuard {
 public:
  FaultGuard() { util::FaultInjector::Instance().DisarmAll(); }
  ~FaultGuard() { util::FaultInjector::Instance().DisarmAll(); }
};

class AsyncClassifyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 23;
    config.num_blocks = 60;
    config.num_retail_users = 20;
    config.miners_per_pool = 8;
    config.gamblers_per_house = 4;
    simulator_ = new datagen::Simulator(config);
    ASSERT_TRUE(simulator_->Run().ok());

    auto labeled = simulator_->CollectLabeledAddresses(3);
    Rng rng(1);
    const auto split = datagen::StratifiedSplit(labeled, 0.8, &rng);
    ASSERT_GE(split.test.size(), 6u);
    watched_ = new std::vector<datagen::LabeledAddress>(split.test);

    core::BaClassifier::Options opts;
    opts.dataset.construction.slice_size = 20;
    opts.graph_model.epochs = 2;
    opts.graph_model.embed_dim = 16;
    opts.graph_model.hidden_dim = 32;
    opts.aggregator.epochs = 4;
    auto created = core::BaClassifier::Create(opts);
    ASSERT_TRUE(created.ok()) << created.status().message();
    classifier_ = created.value().release();
    ASSERT_TRUE(classifier_->Train(simulator_->ledger(), split.train).ok());
  }

  static void TearDownTestSuite() {
    delete classifier_;
    delete simulator_;
    delete watched_;
    classifier_ = nullptr;
    simulator_ = nullptr;
    watched_ = nullptr;
  }

  static std::unique_ptr<InferenceEngine> MakeEngine(
      serve::InferenceEngineOptions options = {}) {
    options.num_threads = 2;
    auto engine = InferenceEngine::Create(
        classifier_, &simulator_->ledger(), std::move(options));
    EXPECT_TRUE(engine.ok()) << engine.status().message();
    return std::move(engine.value());
  }

  /// Serial re-run of the inference path at the epoch where `address`
  /// had exactly `tx_count` (capped) transactions — the ground truth
  /// every batched/cached/async answer must agree with.
  static int PredictAtEpoch(AddressId address, uint64_t tx_count) {
    if (tx_count == 0) return 0;
    const chain::Ledger& ledger = simulator_->ledger();
    const std::vector<chain::TxId> full = ledger.TransactionsOf(address);
    EXPECT_LE(tx_count, full.size());
    const chain::LedgerSnapshot snap =
        ledger.SnapshotAt(full[static_cast<size_t>(tx_count) - 1] + 1);
    core::GraphConstructor ctor(
        classifier_->options().dataset.construction);
    const std::vector<core::AddressGraph> graphs =
        ctor.BuildGraphs(snap, address);
    if (graphs.empty()) return 0;
    const core::GraphModel& model = classifier_->graph_model();
    const int64_t embed_dim = model.embed_dim();
    std::vector<core::EmbeddingSequence> seqs(1);
    seqs[0].embeddings =
        tensor::Tensor({static_cast<int64_t>(graphs.size()), embed_dim});
    for (size_t g = 0; g < graphs.size(); ++g) {
      const core::GraphTensors gt = core::PrepareGraphTensors(
          graphs[g], classifier_->options().dataset.k_hops);
      const tensor::Tensor e = model.Embed(gt);
      for (int64_t j = 0; j < embed_dim; ++j) {
        seqs[0].embeddings.at(static_cast<int64_t>(g), j) = e.at(0, j);
      }
    }
    classifier_->scaler().Apply(&seqs);
    return classifier_->aggregator().Predict(seqs[0].embeddings);
  }

  static datagen::Simulator* simulator_;
  static std::vector<datagen::LabeledAddress>* watched_;
  static core::BaClassifier* classifier_;
};

datagen::Simulator* AsyncClassifyTest::simulator_ = nullptr;
std::vector<datagen::LabeledAddress>* AsyncClassifyTest::watched_ = nullptr;
core::BaClassifier* AsyncClassifyTest::classifier_ = nullptr;

TEST_F(AsyncClassifyTest, ExpiredDeadlineFiresCallbackSynchronously) {
  auto engine = MakeEngine();
  ClassifyOptions options;
  options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);

  const std::thread::id submitter = std::this_thread::get_id();
  std::atomic<int> fired{0};
  engine->ClassifyAsync(
      (*watched_)[0].address, options,
      [&](Result<ClassifyResult> outcome,
          const serve::RequestTimeline& tl) {
        // Fast-path rejection: delivered on the submitting thread,
        // before ClassifyAsync returns.
        EXPECT_EQ(std::this_thread::get_id(), submitter);
        ASSERT_FALSE(outcome.ok());
        EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
        // Error outcomes still deliver a timeline — the callback arg
        // is the only channel (a Status carries none).
        EXPECT_EQ(tl.outcome, serve::RequestOutcome::kDeadline);
        EXPECT_TRUE(tl.Monotone()) << tl.ToJson();
        fired.fetch_add(1);
      });
  EXPECT_EQ(fired.load(), 1) << "callback did not fire synchronously";
}

TEST_F(AsyncClassifyTest, UnknownAddressFiresCallbackWithInvalidArgument) {
  auto engine = MakeEngine();
  std::atomic<int> fired{0};
  engine->ClassifyAsync(
      simulator_->ledger().num_addresses() + 99, {},
      [&](Result<ClassifyResult> outcome,
          const serve::RequestTimeline& tl) {
        ASSERT_FALSE(outcome.ok());
        EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
        EXPECT_EQ(tl.outcome, serve::RequestOutcome::kError);
        EXPECT_TRUE(tl.Monotone()) << tl.ToJson();
        fired.fetch_add(1);
      });
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(AsyncClassifyTest, ShedRequestsFireCallbackWithResourceExhausted) {
  FaultGuard guard;
  serve::InferenceEngineOptions options;
  options.enable_admission = true;
  options.admission.max_inflight = 64;
  options.admission.high_watermark = 3;
  options.admission.low_watermark = 1;
  auto engine = MakeEngine(std::move(options));
  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchBuild, 0.02);

  constexpr int kBurst = 48;
  std::mutex mu;
  std::condition_variable cv;
  int fired = 0;
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    engine->ClassifyAsync(
        (*watched_)[static_cast<size_t>(i) % watched_->size()].address, {},
        [&](Result<ClassifyResult> outcome,
            const serve::RequestTimeline& tl) {
          std::lock_guard<std::mutex> lock(mu);
          EXPECT_TRUE(tl.Monotone()) << tl.ToJson();
          if (outcome.ok()) {
            // The timeline's outcome label always matches what was
            // delivered — including on the inline shed fast path.
            EXPECT_EQ(tl.outcome, outcome.value().degraded
                                      ? serve::RequestOutcome::kDegraded
                                      : serve::RequestOutcome::kOk);
            EXPECT_EQ(outcome.value().timeline.outcome, tl.outcome);
            ++ok;
          } else {
            EXPECT_EQ(outcome.status().code(),
                      StatusCode::kResourceExhausted)
                << outcome.status().message();
            EXPECT_EQ(tl.outcome, serve::RequestOutcome::kShed);
            ++shed;
          }
          ++fired;
          cv.notify_all();
        });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                          [&] { return fired == kBurst; }))
      << fired << " of " << kBurst << " callbacks fired";
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0) << "burst never tripped the watermark";
}

TEST_F(AsyncClassifyTest, AsyncAndBlockingCallersAgreeWithSerialRerun) {
  auto engine = MakeEngine();
  const size_t n = std::min<size_t>(watched_->size(), 6);

  // Half the addresses async, half blocking, all concurrent — every
  // answer must match the serial re-run at its own pinned epoch.
  std::mutex mu;
  std::condition_variable cv;
  size_t async_done = 0;
  std::vector<Result<ClassifyResult>> async_results;
  async_results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    async_results.emplace_back(Status::Internal("not yet delivered"));
  }
  std::vector<Result<ClassifyResult>> blocking_results;

  std::thread blocker([&] {
    for (size_t i = 0; i < n; ++i) {
      blocking_results.push_back(engine->Classify((*watched_)[i].address));
    }
  });
  for (size_t i = 0; i < n; ++i) {
    engine->ClassifyAsync((*watched_)[i].address, {},
                          [&, i](Result<ClassifyResult> outcome,
                                 const serve::RequestTimeline&) {
                            std::lock_guard<std::mutex> lock(mu);
                            async_results[i] = std::move(outcome);
                            ++async_done;
                            cv.notify_all();
                          });
  }
  blocker.join();
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(120),
                            [&] { return async_done == n; }));
  }

  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(async_results[i].ok())
        << async_results[i].status().message();
    ASSERT_TRUE(blocking_results[i].ok())
        << blocking_results[i].status().message();
    const auto& a = async_results[i].value();
    const auto& b = blocking_results[i].value();
    const AddressId address = (*watched_)[i].address;
    EXPECT_EQ(a.predicted, PredictAtEpoch(address, a.tx_count))
        << "async answer diverged from serial re-run, address " << address;
    EXPECT_EQ(b.predicted, PredictAtEpoch(address, b.tx_count))
        << "blocking answer diverged from serial re-run, address "
        << address;
  }
}

TEST_F(AsyncClassifyTest, DestructionDrainsCallbacksInFlight) {
  FaultGuard guard;
  std::atomic<int> fired{0};
  constexpr int kInflight = 6;
  {
    auto engine = MakeEngine();
    // Slow the pipeline so the engine dies with work genuinely queued.
    util::FaultInjector::Instance().ArmLatency(
        InferenceEngine::kFaultBatchBuild, 0.01);
    for (int i = 0; i < kInflight; ++i) {
      engine->ClassifyAsync(
          (*watched_)[static_cast<size_t>(i) % watched_->size()].address,
          {}, [&](Result<ClassifyResult>, const serve::RequestTimeline&) {
            fired.fetch_add(1);
          });
    }
    // ~InferenceEngine blocks until every callback has fired.
  }
  EXPECT_EQ(fired.load(), kInflight);
}

}  // namespace
}  // namespace ba
