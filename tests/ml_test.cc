// Tests for the classical ML baselines: each model must learn simple
// separable structure; trees/forests/boosting get sharper checks.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "ml/bitscope.h"
#include "ml/boosting.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/kmeans.h"
#include "ml/knn.h"
#include "ml/lee_features.h"
#include "ml/linear_models.h"
#include "ml/mlp_classifier.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "chain/ledger.h"
#include "util/rng.h"

namespace ba::ml {
namespace {

/// Three well-separated Gaussian blobs in 4-D.
MlDataset MakeBlobs(int per_class, uint64_t seed, double spread = 0.5) {
  Rng rng(seed);
  MlDataset d;
  d.num_classes = 3;
  const double centers[3][4] = {{3, 0, 0, 1},
                                {-3, 2, 1, -1},
                                {0, -3, -2, 2}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_class; ++i) {
      std::vector<float> row(4);
      for (int j = 0; j < 4; ++j) {
        row[static_cast<size_t>(j)] =
            static_cast<float>(rng.Gaussian(centers[c][j], spread));
      }
      d.x.push_back(std::move(row));
      d.y.push_back(c);
    }
  }
  return d;
}

double AccuracyOn(const MlModel& model, const MlDataset& test) {
  return model.Evaluate(test).Accuracy();
}

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  MlDataset d = MakeBlobs(50, 1);
  StandardScaler scaler;
  scaler.Fit(d.x);
  scaler.Transform(&d.x);
  for (size_t j = 0; j < d.x[0].size(); ++j) {
    double sum = 0.0, sq = 0.0;
    for (const auto& row : d.x) {
      sum += row[j];
      sq += static_cast<double>(row[j]) * row[j];
    }
    const double n = static_cast<double>(d.x.size());
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sq / n, 1.0, 1e-3);
  }
}

TEST(StandardScalerTest, ConstantFeatureDoesNotDivideByZero) {
  std::vector<std::vector<float>> x{{1.0f, 5.0f}, {2.0f, 5.0f}};
  StandardScaler scaler;
  scaler.Fit(x);
  const auto row = scaler.TransformRow({1.5f, 5.0f});
  EXPECT_TRUE(std::isfinite(row[1]));
  EXPECT_NEAR(row[1], 0.0f, 1e-3f);
}

template <typename Model>
void ExpectLearnsBlobs(Model&& model, double min_accuracy) {
  MlDataset train = MakeBlobs(60, 10);
  MlDataset test = MakeBlobs(30, 11);
  StandardScaler scaler;
  scaler.Fit(train.x);
  scaler.Transform(&train.x);
  scaler.Transform(&test.x);
  model.Fit(train);
  EXPECT_GE(AccuracyOn(model, test), min_accuracy) << model.Name();
}

TEST(LogisticRegressionTest, LearnsBlobs) {
  ExpectLearnsBlobs(LogisticRegression(), 0.95);
}

TEST(LinearSvmTest, LearnsBlobs) { ExpectLearnsBlobs(LinearSvm(), 0.95); }

TEST(BernoulliNbTest, LearnsBlobs) { ExpectLearnsBlobs(BernoulliNb(), 0.8); }

TEST(GaussianNbTest, LearnsBlobs) { ExpectLearnsBlobs(GaussianNb(), 0.95); }

TEST(KnnTest, LearnsBlobs) { ExpectLearnsBlobs(Knn(5), 0.95); }

TEST(DecisionTreeTest, LearnsBlobs) {
  ExpectLearnsBlobs(DecisionTree(), 0.9);
}

TEST(RandomForestTest, LearnsBlobs) {
  RandomForest::Options opts;
  opts.num_trees = 20;
  ExpectLearnsBlobs(RandomForest(opts), 0.95);
}

TEST(GbdtTest, LearnsBlobs) {
  BoostingOptions opts;
  opts.num_rounds = 15;
  ExpectLearnsBlobs(Gbdt(opts), 0.95);
}

TEST(XgBoostTest, LearnsBlobs) {
  BoostingOptions opts;
  opts.num_rounds = 15;
  ExpectLearnsBlobs(XgBoost(opts), 0.95);
}

TEST(MlpClassifierTest, LearnsBlobs) {
  MlpClassifier::Options opts;
  opts.epochs = 40;
  ExpectLearnsBlobs(MlpClassifier(opts), 0.95);
}

TEST(BitScopeTest, LearnsBlobs) {
  BitScope::Options opts;
  opts.resolutions = {3, 9};
  ExpectLearnsBlobs(BitScope(opts), 0.9);
}

TEST(KnnTest, PerfectOnTrainingPoints) {
  MlDataset train = MakeBlobs(20, 3);
  Knn knn(1);
  knn.Fit(train);
  EXPECT_DOUBLE_EQ(AccuracyOn(knn, train), 1.0);
}

TEST(DecisionTreeTest, AxisAlignedSplitExact) {
  // 1-D threshold problem: x <= 0 -> class 0, else class 1.
  MlDataset d;
  d.num_classes = 2;
  for (int i = -10; i <= 10; ++i) {
    if (i == 0) continue;
    d.x.push_back({static_cast<float>(i)});
    d.y.push_back(i < 0 ? 0 : 1);
  }
  DecisionTree tree;
  tree.Fit(d);
  EXPECT_EQ(tree.Predict({-3.5f}), 0);
  EXPECT_EQ(tree.Predict({0.5f}), 1);
  EXPECT_LE(tree.num_nodes(), 3);  // root + 2 leaves suffice
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Rng rng(7);
  MlDataset d;
  d.num_classes = 2;
  for (int i = 0; i < 200; ++i) {
    d.x.push_back({static_cast<float>(rng.Uniform()),
                   static_cast<float>(rng.Uniform())});
    d.y.push_back(static_cast<int>(rng.UniformInt(2)));  // pure noise
  }
  DecisionTree::Options opts;
  opts.max_depth = 2;
  DecisionTree tree(opts);
  tree.Fit(d);
  EXPECT_LE(tree.num_nodes(), 7);  // depth-2 binary tree
}

TEST(DecisionTreeTest, DistributionSumsToOne) {
  MlDataset train = MakeBlobs(30, 4);
  DecisionTree tree;
  tree.Fit(train);
  const auto& dist = tree.PredictDistribution(train.x[0]);
  double total = 0.0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RegressionTreeTest, FitsPiecewiseConstant) {
  std::vector<std::vector<float>> x;
  std::vector<double> y;
  std::vector<int64_t> idx;
  for (int i = 0; i < 100; ++i) {
    x.push_back({static_cast<float>(i)});
    y.push_back(i < 50 ? -2.0 : 3.0);
    idx.push_back(i);
  }
  RegressionTree::Options opts;
  opts.max_depth = 2;
  RegressionTree tree(opts);
  tree.FitFirstOrder(x, y, idx);
  EXPECT_NEAR(tree.Predict({10.0f}), -2.0, 1e-9);
  EXPECT_NEAR(tree.Predict({90.0f}), 3.0, 1e-9);
}

TEST(RegressionTreeTest, SecondOrderLeafIsRegularizedNewtonStep) {
  // All rows identical -> single leaf with value -G/(H+lambda).
  std::vector<std::vector<float>> x(10, {1.0f});
  std::vector<double> g(10, 2.0);
  std::vector<double> h(10, 1.0);
  std::vector<int64_t> idx;
  for (int i = 0; i < 10; ++i) idx.push_back(i);
  RegressionTree::Options opts;
  opts.lambda = 5.0;
  RegressionTree tree(opts);
  tree.FitSecondOrder(x, g, h, idx);
  EXPECT_NEAR(tree.Predict({1.0f}), -20.0 / (10.0 + 5.0), 1e-9);
}

TEST(BoostingTest, MoreRoundsReduceTrainingError) {
  MlDataset train = MakeBlobs(40, 5, /*spread=*/1.8);  // overlapping
  BoostingOptions few;
  few.num_rounds = 2;
  BoostingOptions many;
  many.num_rounds = 30;
  Gbdt g_few(few), g_many(many);
  g_few.Fit(train);
  g_many.Fit(train);
  EXPECT_GE(AccuracyOn(g_many, train), AccuracyOn(g_few, train));
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  Rng rng(8);
  std::vector<std::vector<float>> x;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 40; ++i) {
      x.push_back({static_cast<float>(rng.Gaussian(c * 10.0, 0.5)),
                   static_cast<float>(rng.Gaussian(-c * 10.0, 0.5))});
    }
  }
  KMeans km(KMeans::Options{3, 50, 1});
  km.Fit(x);
  // All members of one blob share an assignment; blobs get distinct ids.
  std::set<int> ids;
  for (int c = 0; c < 3; ++c) {
    const int id = km.Assign(x[static_cast<size_t>(c * 40)]);
    for (int i = 1; i < 40; ++i) {
      EXPECT_EQ(km.Assign(x[static_cast<size_t>(c * 40 + i)]), id);
    }
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 3u);
}

TEST(KMeansTest, HandlesFewerPointsThanK) {
  KMeans km(KMeans::Options{10, 10, 1});
  std::vector<std::vector<float>> x{{0.0f}, {1.0f}};
  km.Fit(x);
  EXPECT_LE(km.centroids().size(), 10u);
  EXPECT_GE(km.centroids().size(), 1u);
}

TEST(LeeFeaturesTest, DimensionAndDeterminism) {
  chain::Ledger ledger;
  const chain::AddressId a = ledger.NewAddress();
  const chain::AddressId b = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, a);
  ASSERT_TRUE(cb.ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  chain::TxDraft draft;
  draft.timestamp = 700;
  draft.inputs = {chain::OutPoint{cb.value(), 0}};
  draft.outputs = {{b, 100'000'000}};
  ASSERT_TRUE(ledger.ApplyTransaction(draft).ok());
  ASSERT_TRUE(ledger.SealBlock(700).ok());

  const auto f1 = LeeFeatures(ledger, a);
  const auto f2 = LeeFeatures(ledger, a);
  EXPECT_EQ(static_cast<int64_t>(f1.size()), kLeeFeatureDim);
  EXPECT_EQ(f1, f2);
  for (float v : f1) EXPECT_TRUE(std::isfinite(v));
  // A different address has different features.
  EXPECT_NE(LeeFeatures(ledger, b), f1);
}

TEST(LeeFeaturesTest, EmptyHistoryIsZero) {
  chain::Ledger ledger;
  const chain::AddressId a = ledger.NewAddress();
  const auto f = LeeFeatures(ledger, a);
  for (float v : f) EXPECT_FLOAT_EQ(v, 0.0f);
}

// Parameterized: every Table II model family must beat chance even on
// noisy blobs.
class AllModelsPropertyTest : public ::testing::TestWithParam<int> {};

std::unique_ptr<MlModel> MakeModel(int which) {
  switch (which) {
    case 0: return std::make_unique<LogisticRegression>();
    case 1: return std::make_unique<LinearSvm>();
    case 2: return std::make_unique<BernoulliNb>();
    case 3: return std::make_unique<GaussianNb>();
    case 4: return std::make_unique<Knn>(5);
    case 5: return std::make_unique<DecisionTree>();
    case 6: return std::make_unique<RandomForest>(
                RandomForest::Options{.num_trees = 15});
    case 7: {
      BoostingOptions o;
      o.num_rounds = 10;
      return std::make_unique<Gbdt>(o);
    }
    case 8: {
      BoostingOptions o;
      o.num_rounds = 10;
      return std::make_unique<XgBoost>(o);
    }
    case 9: {
      MlpClassifier::Options o;
      o.epochs = 30;
      return std::make_unique<MlpClassifier>(o);
    }
    default: return std::make_unique<BitScope>();
  }
}

TEST_P(AllModelsPropertyTest, BeatsChanceOnNoisyBlobs) {
  MlDataset train = MakeBlobs(50, 21, /*spread=*/1.5);
  MlDataset test = MakeBlobs(40, 22, /*spread=*/1.5);
  StandardScaler scaler;
  scaler.Fit(train.x);
  scaler.Transform(&train.x);
  scaler.Transform(&test.x);
  auto model = MakeModel(GetParam());
  model->Fit(train);
  EXPECT_GT(AccuracyOn(*model, test), 0.55) << model->Name();
}

INSTANTIATE_TEST_SUITE_P(AllModels, AllModelsPropertyTest,
                         ::testing::Range(0, 11));

}  // namespace
}  // namespace ba::ml
