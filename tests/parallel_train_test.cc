// Determinism tests for data-parallel training (GraphModel and
// AggregatorModel `num_threads`) and the thread-pool plumbing it rides
// on: any lane count must reproduce the serial run bit-exactly —
// per-epoch losses and final parameters — because gradients are
// reduced in fixed example order regardless of which lane computed
// them. Also covers ThreadPool::InWorkerThread, nested-ParallelFor
// degradation, and the shared-pool accessor.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/aggregator.h"
#include "core/graph_dataset.h"
#include "core/graph_model.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace ba::core {
namespace {

std::vector<float> Flatten(const std::vector<tensor::Var>& params) {
  std::vector<float> out;
  for (const auto& p : params) {
    out.insert(out.end(), p->value.data(), p->value.data() + p->value.numel());
  }
  return out;
}

void ExpectBitIdentical(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": parameters differ between lane counts";
}

// ---------------------------------------------------------------------------
// ThreadPool plumbing.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, InWorkerThreadDistinguishesPoolWorkers) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.ParallelFor(8, [&](size_t) {
    if (ThreadPool::InWorkerThread()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  // Outer iterations occupy workers; the inner ParallelFor from inside
  // a worker must degrade to inline execution rather than queueing
  // behind (and waiting on) its own busy pool.
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(5, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 20);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsDoNotCrossBlock) {
  ThreadPool shared(2);
  std::atomic<int> total{0};
  // Two plain threads (not pool workers, so no inline fallback) drive
  // ParallelFor on the same pool at once; per-call completion tracking
  // means each returns when its own iterations are done, never blocking
  // on the other caller's work.
  std::thread t1([&] {
    shared.ParallelFor(10, [&](size_t) { total.fetch_add(1); });
  });
  std::thread t2([&] {
    shared.ParallelFor(10, [&](size_t) { total.fetch_add(1); });
  });
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 20);
}

TEST(SharedPoolTest, AccessorIsStableAndSized) {
  ThreadPool& pool = util::SharedPool();
  EXPECT_EQ(&pool, &util::SharedPool());
  EXPECT_EQ(pool.num_threads(), util::SharedPoolThreads());
  EXPECT_GE(pool.num_threads(), 1u);
  // Once materialized, resizing is refused.
  EXPECT_FALSE(util::SetSharedPoolThreads(pool.num_threads() + 1));
  EXPECT_EQ(util::SharedPool().num_threads(), pool.num_threads());
}

// ---------------------------------------------------------------------------
// AggregatorModel: synthetic embedding sequences, cheap enough to train
// at several lane counts.
// ---------------------------------------------------------------------------

std::vector<EmbeddingSequence> SyntheticSequences(int count, int64_t embed_dim,
                                                  int num_classes) {
  Rng rng(71);
  std::vector<EmbeddingSequence> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    EmbeddingSequence seq;
    const int64_t steps = 2 + static_cast<int64_t>(rng.Next() % 4);
    seq.embeddings =
        tensor::Tensor::RandomNormal({steps, embed_dim}, &rng, 0.5f);
    seq.label = static_cast<int>(rng.Next() % static_cast<uint64_t>(num_classes));
    out.push_back(std::move(seq));
  }
  return out;
}

AggregatorOptions SmallAggregatorOptions(int num_threads) {
  AggregatorOptions o;
  o.kind = AggregatorKind::kLstm;
  o.embed_dim = 8;
  o.hidden_dim = 8;
  o.mlp_hidden = 8;
  o.epochs = 3;
  o.batch_size = 6;
  o.seed = 13;
  o.num_threads = num_threads;
  return o;
}

TEST(ParallelAggregatorTest, AnyLaneCountReproducesSerialBitExactly) {
  const auto sequences = SyntheticSequences(22, 8, 4);

  AggregatorModel serial(SmallAggregatorOptions(1));
  std::vector<EpochStat> serial_history;
  serial.Train(sequences, nullptr, &serial_history);
  const std::vector<float> serial_params = Flatten(serial.Parameters());

  for (int lanes : {2, 3, 0}) {  // 0 = shared-pool size
    AggregatorModel threaded(SmallAggregatorOptions(lanes));
    std::vector<EpochStat> history;
    threaded.Train(sequences, nullptr, &history);
    ASSERT_EQ(history.size(), serial_history.size());
    for (size_t e = 0; e < history.size(); ++e) {
      EXPECT_EQ(history[e].train_loss, serial_history[e].train_loss)
          << "lanes " << lanes << " epoch " << e + 1;
    }
    ExpectBitIdentical(serial_params, Flatten(threaded.Parameters()),
                       "aggregator");
  }
}

TEST(ParallelAggregatorTest, ValidateRejectsNegativeThreads) {
  AggregatorOptions o = SmallAggregatorOptions(-1);
  EXPECT_FALSE(o.Validate().ok());
}

// ---------------------------------------------------------------------------
// GraphModel: small simulated economy (the GFN encoder exercises the
// per-example dropout RNG reseeding that keeps lanes deterministic).
// ---------------------------------------------------------------------------

class ParallelGraphModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 29;
    config.num_blocks = 80;
    config.num_retail_users = 24;
    config.miners_per_pool = 10;
    config.gamblers_per_house = 5;
    datagen::Simulator simulator(config);
    ASSERT_TRUE(simulator.Run().ok());
    auto labeled = simulator.CollectLabeledAddresses(3);
    Rng rng(2);
    labeled = datagen::StratifiedSample(labeled, 40, &rng);

    GraphDatasetOptions opts;
    opts.construction.slice_size = 20;
    opts.k_hops = 2;
    GraphDatasetBuilder builder(opts);
    samples_ = new std::vector<AddressSample>(
        builder.Build(simulator.ledger(), labeled));
    ASSERT_GT(samples_->size(), 8u);
  }

  static void TearDownTestSuite() {
    delete samples_;
    samples_ = nullptr;
  }

  static GraphModelOptions BaseOptions(int num_threads) {
    GraphModelOptions o;
    o.encoder = GraphEncoderKind::kGfn;
    o.epochs = 2;
    o.hidden_dim = 16;
    o.embed_dim = 8;
    o.dropout = 0.1f;  // per-example RNG reseeding must keep this deterministic
    o.seed = 5;
    o.num_threads = num_threads;
    return o;
  }

  static std::vector<AddressSample>* samples_;
};

std::vector<AddressSample>* ParallelGraphModelTest::samples_ = nullptr;

TEST_F(ParallelGraphModelTest, AnyLaneCountReproducesSerialBitExactly) {
  GraphModel serial(BaseOptions(1));
  std::vector<EpochStat> serial_history;
  ASSERT_TRUE(serial.Train(*samples_, nullptr, &serial_history).ok());
  const std::vector<float> serial_params = Flatten(serial.Parameters());

  for (int lanes : {2, 4}) {
    GraphModel threaded(BaseOptions(lanes));
    std::vector<EpochStat> history;
    ASSERT_TRUE(threaded.Train(*samples_, nullptr, &history).ok());
    ASSERT_EQ(history.size(), serial_history.size());
    for (size_t e = 0; e < history.size(); ++e) {
      EXPECT_EQ(history[e].train_loss, serial_history[e].train_loss)
          << "lanes " << lanes << " epoch " << e + 1;
    }
    ExpectBitIdentical(serial_params, Flatten(threaded.Parameters()),
                       "graph model");
  }
}

TEST_F(ParallelGraphModelTest, ValidateRejectsNegativeThreads) {
  GraphModelOptions o = BaseOptions(-2);
  EXPECT_FALSE(o.Validate().ok());
}

}  // namespace
}  // namespace ba::core
