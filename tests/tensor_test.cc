// Unit tests for the dense tensor value type and raw matrix kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ba::tensor {
namespace {

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t.item(), 0.0f);
}

TEST(TensorTest, ShapeAndElementAccess) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
}

TEST(TensorTest, FactoryHelpers) {
  EXPECT_FLOAT_EQ(Tensor::Ones({2, 2}).Sum(), 4.0);
  EXPECT_FLOAT_EQ(Tensor::Full({3}, 2.5f).Sum(), 7.5);
  EXPECT_FLOAT_EQ(Tensor::Scalar(1.5f).item(), 1.5f);
}

TEST(TensorTest, ExplicitDataCtorChecksSize) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
}

TEST(TensorTest, AddAndScaleInPlace) {
  Tensor a = Tensor::Ones({2, 2});
  Tensor b = Tensor::Full({2, 2}, 3.0f);
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 4.0f);
  a.ScaleInPlace(0.5f);
  EXPECT_FLOAT_EQ(a.at(1, 1), 2.0f);
}

TEST(TensorTest, ReshapedPreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, AbsMax) {
  Tensor t({3}, {1.0f, -7.0f, 3.0f});
  EXPECT_FLOAT_EQ(t.AbsMax(), 7.0f);
}

TEST(TensorTest, RandomGeneratorsRespectShapeAndRange) {
  Rng rng(1);
  Tensor u = Tensor::RandomUniform({50, 4}, &rng, -2.0f, 2.0f);
  EXPECT_EQ(u.numel(), 200);
  for (int64_t i = 0; i < u.numel(); ++i) {
    EXPECT_GE(u.data()[i], -2.0f);
    EXPECT_LT(u.data()[i], 2.0f);
  }
  Tensor x = Tensor::XavierUniform(100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(x.AbsMax(), bound);
}

TEST(MatMulTest, MatchesManualComputation) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMulValue(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, TransposedVariantsAgree) {
  Rng rng(4);
  Tensor a = Tensor::RandomNormal({5, 7}, &rng);
  Tensor b = Tensor::RandomNormal({5, 3}, &rng);
  // AᵀB via explicit transpose equals MatMulTransposeAValue.
  Tensor at({7, 5});
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 7; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor expected = MatMulValue(at, b);
  Tensor got = MatMulTransposeAValue(a, b);
  ASSERT_TRUE(expected.SameShape(got));
  for (int64_t i = 0; i < expected.numel(); ++i) {
    EXPECT_NEAR(expected.data()[i], got.data()[i], 1e-4f);
  }

  Tensor c = Tensor::RandomNormal({4, 7}, &rng);
  // A·Cᵀ via explicit transpose equals MatMulTransposeBValue.
  Tensor ct({7, 4});
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 7; ++j) ct.at(j, i) = c.at(i, j);
  }
  Tensor expected2 = MatMulValue(a, ct);
  Tensor got2 = MatMulTransposeBValue(a, c);
  for (int64_t i = 0; i < expected2.numel(); ++i) {
    EXPECT_NEAR(expected2.data()[i], got2.data()[i], 1e-4f);
  }
}

// ---------------------------------------------------------------------------
// Blocked-kernel parity: the optimized GEMM entry points must agree
// with the scalar reference loops (tensor/gemm.h) within a tolerance
// that absorbs FMA contraction, across tile-aligned, ragged,
// degenerate (1×k, k×1) and empty shapes.
// ---------------------------------------------------------------------------

void ExpectGemmClose(const Tensor& got, const Tensor& want, int64_t k) {
  ASSERT_TRUE(got.SameShape(want));
  // Denominator floors at sqrt(k), the natural magnitude of a k-term
  // dot product of O(1) inputs, so cancellation near zero doesn't turn
  // FMA rounding differences into false failures.
  const double floor_mag =
      std::sqrt(static_cast<double>(std::max<int64_t>(k, 1)));
  for (int64_t i = 0; i < got.numel(); ++i) {
    const double g = got.data()[i], w = want.data()[i];
    const double denom = std::max({std::abs(g), std::abs(w), floor_mag});
    ASSERT_LT(std::abs(g - w) / denom, 1e-4)
        << "element " << i << ": optimized " << g << " reference " << w;
  }
}

struct GemmShape {
  int64_t m, k, n;
};

const GemmShape kParityShapes[] = {
    {1, 1, 1},  {1, 9, 1},    {9, 1, 5},   {1, 16, 16}, {4, 16, 16},
    {5, 7, 9},  {17, 33, 65}, {12, 8, 16}, {64, 64, 64}, {3, 128, 2},
    {2, 300, 3}, {0, 4, 4},   {4, 0, 4},   {4, 4, 0},
    // k beyond kKc: the chunked k-loop must fold partial products into
    // C across one and two chunk boundaries (all three layouts run
    // these via the parity tests above/below).
    {5, 257, 9}, {8, 600, 33},
};

TEST(GemmParityTest, MatMulMatchesReference) {
  Rng rng(21);
  for (const auto& s : kParityShapes) {
    Tensor a = Tensor::RandomUniform({s.m, s.k}, &rng, -1.0f, 1.0f);
    Tensor b = Tensor::RandomUniform({s.k, s.n}, &rng, -1.0f, 1.0f);
    ExpectGemmClose(MatMulValue(a, b), MatMulReferenceValue(a, b), s.k);
  }
}

TEST(GemmParityTest, MatMulTransposeAMatchesReference) {
  Rng rng(22);
  for (const auto& s : kParityShapes) {
    Tensor a = Tensor::RandomUniform({s.k, s.m}, &rng, -1.0f, 1.0f);
    Tensor b = Tensor::RandomUniform({s.k, s.n}, &rng, -1.0f, 1.0f);
    ExpectGemmClose(MatMulTransposeAValue(a, b),
                    MatMulReferenceTransposeAValue(a, b), s.k);
  }
}

TEST(GemmParityTest, MatMulTransposeBMatchesReference) {
  Rng rng(23);
  for (const auto& s : kParityShapes) {
    Tensor a = Tensor::RandomUniform({s.m, s.k}, &rng, -1.0f, 1.0f);
    Tensor b = Tensor::RandomUniform({s.n, s.k}, &rng, -1.0f, 1.0f);
    ExpectGemmClose(MatMulTransposeBValue(a, b),
                    MatMulReferenceTransposeBValue(a, b), s.k);
  }
}

TEST(GemmParityTest, RowPanelSplitIsBitExact) {
  // The parallel path splits C into row panels at tile multiples
  // (GemmDispatch rounds panel_rows up to kMr); any such split must be
  // bit-identical to the full serial sweep because the tile boundaries
  // — and with them every element's accumulation chain — are unchanged.
  Rng rng(24);
  const int64_t m = 23, k = 31, n = 37;
  Tensor a = Tensor::RandomUniform({m, k}, &rng, -1.0f, 1.0f);
  Tensor b = Tensor::RandomUniform({k, n}, &rng, -1.0f, 1.0f);
  Tensor whole({m, n});
  internal::GemmRowRange(a.data(), k, 1, b.data(), whole.data(), 0, m, k, n);
  for (int64_t split : {4, 8, 12, 20}) {
    Tensor parts({m, n});
    for (int64_t i = 0; i < m; i += split) {
      internal::GemmRowRange(a.data(), k, 1, b.data(), parts.data(), i,
                             std::min(m, i + split), k, n);
    }
    for (int64_t i = 0; i < whole.numel(); ++i) {
      ASSERT_EQ(whole.data()[i], parts.data()[i]) << "split " << split;
    }
  }
}

TEST(GemmParityTest, KBlockingAndAPackingAreBitExactAcrossRowSplits) {
  // k > kKc exercises the chunk loop (first chunk stores, later chunks
  // accumulate); the strided-A layout (as_p != 1, the transpose-A
  // feed) additionally routes through the packed A panel. Neither may
  // perturb any element's accumulation chain, so every row split is
  // bit-identical to the full sweep in both layouts.
  Rng rng(25);
  const int64_t m = 19, k = internal::kKc * 2 + 33, n = 21;
  Tensor a = Tensor::RandomUniform({m, k}, &rng, -1.0f, 1.0f);
  Tensor at = Tensor::RandomUniform({k, m}, &rng, -1.0f, 1.0f);
  Tensor b = Tensor::RandomUniform({k, n}, &rng, -1.0f, 1.0f);
  struct Layout {
    const float* a;
    int64_t as_i, as_p;
  };
  const Layout layouts[] = {{a.data(), k, 1}, {at.data(), 1, m}};
  for (const Layout& l : layouts) {
    Tensor whole({m, n});
    internal::GemmRowRange(l.a, l.as_i, l.as_p, b.data(), whole.data(), 0,
                           m, k, n);
    for (int64_t split : {3, 8, 16}) {
      Tensor parts({m, n});
      for (int64_t i = 0; i < m; i += split) {
        internal::GemmRowRange(l.a, l.as_i, l.as_p, b.data(), parts.data(),
                               i, std::min(m, i + split), k, n);
      }
      for (int64_t i = 0; i < whole.numel(); ++i) {
        ASSERT_EQ(whole.data()[i], parts.data()[i])
            << "as_p=" << l.as_p << " split=" << split << " elem " << i;
      }
    }
  }
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t({1, 20});
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[1, 20]"), std::string::npos);
}

}  // namespace
}  // namespace ba::tensor
