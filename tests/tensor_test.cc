// Unit tests for the dense tensor value type and raw matrix kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace ba::tensor {
namespace {

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t.item(), 0.0f);
}

TEST(TensorTest, ShapeAndElementAccess) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
}

TEST(TensorTest, FactoryHelpers) {
  EXPECT_FLOAT_EQ(Tensor::Ones({2, 2}).Sum(), 4.0);
  EXPECT_FLOAT_EQ(Tensor::Full({3}, 2.5f).Sum(), 7.5);
  EXPECT_FLOAT_EQ(Tensor::Scalar(1.5f).item(), 1.5f);
}

TEST(TensorTest, ExplicitDataCtorChecksSize) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
}

TEST(TensorTest, AddAndScaleInPlace) {
  Tensor a = Tensor::Ones({2, 2});
  Tensor b = Tensor::Full({2, 2}, 3.0f);
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 4.0f);
  a.ScaleInPlace(0.5f);
  EXPECT_FLOAT_EQ(a.at(1, 1), 2.0f);
}

TEST(TensorTest, ReshapedPreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, AbsMax) {
  Tensor t({3}, {1.0f, -7.0f, 3.0f});
  EXPECT_FLOAT_EQ(t.AbsMax(), 7.0f);
}

TEST(TensorTest, RandomGeneratorsRespectShapeAndRange) {
  Rng rng(1);
  Tensor u = Tensor::RandomUniform({50, 4}, &rng, -2.0f, 2.0f);
  EXPECT_EQ(u.numel(), 200);
  for (int64_t i = 0; i < u.numel(); ++i) {
    EXPECT_GE(u.data()[i], -2.0f);
    EXPECT_LT(u.data()[i], 2.0f);
  }
  Tensor x = Tensor::XavierUniform(100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(x.AbsMax(), bound);
}

TEST(MatMulTest, MatchesManualComputation) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMulValue(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, TransposedVariantsAgree) {
  Rng rng(4);
  Tensor a = Tensor::RandomNormal({5, 7}, &rng);
  Tensor b = Tensor::RandomNormal({5, 3}, &rng);
  // AᵀB via explicit transpose equals MatMulTransposeAValue.
  Tensor at({7, 5});
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 7; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor expected = MatMulValue(at, b);
  Tensor got = MatMulTransposeAValue(a, b);
  ASSERT_TRUE(expected.SameShape(got));
  for (int64_t i = 0; i < expected.numel(); ++i) {
    EXPECT_NEAR(expected.data()[i], got.data()[i], 1e-4f);
  }

  Tensor c = Tensor::RandomNormal({4, 7}, &rng);
  // A·Cᵀ via explicit transpose equals MatMulTransposeBValue.
  Tensor ct({7, 4});
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 7; ++j) ct.at(j, i) = c.at(i, j);
  }
  Tensor expected2 = MatMulValue(a, ct);
  Tensor got2 = MatMulTransposeBValue(a, c);
  for (int64_t i = 0; i < expected2.numel(); ++i) {
    EXPECT_NEAR(expected2.data()[i], got2.data()[i], 1e-4f);
  }
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t({1, 20});
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[1, 20]"), std::string::npos);
}

}  // namespace
}  // namespace ba::tensor
