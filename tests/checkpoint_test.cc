// Fault-injection and crash-safety tests for training checkpoints
// (src/core/checkpoint) and GraphModel resume: a save killed at any
// fault point leaves the previous checkpoint loadable, any single-byte
// corruption fails with a clean Status, and a training run killed at
// epoch k resumes to parameters bit-identical to an uninterrupted run.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/graph_dataset.h"
#include "core/graph_model.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "util/fs.h"

namespace ba::core {
namespace {

class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_("/tmp/ba_ckpt_" + name + "_" + std::to_string(::getpid())) {}
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Temp directory for checkpoint_dir tests (removed with its contents).
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_("/tmp/ba_ckptdir_" + name + "_" + std::to_string(::getpid())) {
    ::mkdir(path_.c_str(), 0755);
  }
  ~TempDir() {
    std::remove(CheckpointPath(path_).c_str());
    std::remove((CheckpointPath(path_) + ".tmp").c_str());
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class FaultGuard {
 public:
  FaultGuard() { util::FaultInjector::Instance().DisarmAll(); }
  ~FaultGuard() { util::FaultInjector::Instance().DisarmAll(); }
};

std::string Slurp(const std::string& path) {
  auto r = util::ReadFileToString(path);
  EXPECT_TRUE(r.ok());
  return r.ValueOr("");
}

void Spew(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

/// A small synthetic training state: two parameters, an Adam optimizer
/// with populated moments, and an advanced RNG.
struct SyntheticState {
  std::vector<tensor::Var> params;
  std::unique_ptr<tensor::Adam> adam;
  Rng rng{7};

  explicit SyntheticState(float scale) {
    Rng init(5);
    params = {
        tensor::Param(tensor::Tensor::RandomNormal({3, 4}, &init, scale)),
        tensor::Param(tensor::Tensor::RandomNormal({2}, &init, scale))};
    adam = std::make_unique<tensor::Adam>(params, 1e-2f);
    // Two optimizer steps so both moment maps and the step counter are
    // non-trivial.
    for (int step = 0; step < 2; ++step) {
      for (auto& p : params) {
        p->grad = tensor::Tensor::Full(p->value.shape(), 0.5f);
        p->grad_ready = true;
      }
      adam->Step();
    }
    rng.Next();  // advance the stream off its seed position
  }
};

void ExpectTensorEq(const tensor::Tensor& a, const tensor::Tensor& b,
                    const std::string& what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0)
      << what << ": payload differs";
}

TEST(TrainingCheckpointTest, RoundTripRestoresEverythingBitExactly) {
  SyntheticState original(1.0f);
  TempPath file("roundtrip");
  const auto ckpt = CaptureTrainingCheckpoint(original.params, *original.adam,
                                              original.rng, /*epoch=*/11);
  ASSERT_TRUE(SaveTrainingCheckpoint(ckpt, file.path()).ok());

  SyntheticState restored(3.0f);  // different values everywhere
  auto loaded = LoadTrainingCheckpoint(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  int epoch = 0;
  ASSERT_TRUE(RestoreTrainingCheckpoint(*loaded, restored.params,
                                        restored.adam.get(), &restored.rng,
                                        &epoch)
                  .ok());
  EXPECT_EQ(epoch, 11);
  EXPECT_EQ(restored.adam->step(), original.adam->step());
  for (size_t i = 0; i < original.params.size(); ++i) {
    ExpectTensorEq(restored.params[i]->value, original.params[i]->value,
                   "param " + std::to_string(i));
  }
  ASSERT_EQ(restored.adam->moments_m().size(),
            original.adam->moments_m().size());
  for (const auto& [index, t] : original.adam->moments_m()) {
    ExpectTensorEq(restored.adam->moments_m().at(index), t, "adam m");
  }
  for (const auto& [index, t] : original.adam->moments_v()) {
    ExpectTensorEq(restored.adam->moments_v().at(index), t, "adam v");
  }
  // The restored RNG continues the original stream bit-exactly.
  Rng original_copy(7);
  original_copy.Next();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(restored.rng.Next(), original_copy.Next());
  }
}

TEST(TrainingCheckpointTest, KilledSaveAtEveryFaultPointKeepsPrevious) {
  FaultGuard guard;
  TempPath file("killed_save");
  SyntheticState old_state(1.0f);
  const auto old_ckpt = CaptureTrainingCheckpoint(
      old_state.params, *old_state.adam, old_state.rng, /*epoch=*/3);
  ASSERT_TRUE(SaveTrainingCheckpoint(old_ckpt, file.path()).ok());
  const std::string old_bytes = Slurp(file.path());

  SyntheticState new_state(2.0f);
  const auto new_ckpt = CaptureTrainingCheckpoint(
      new_state.params, *new_state.adam, new_state.rng, /*epoch=*/4);

  for (const std::string& point : util::AtomicFileWriter::FaultPoints()) {
    util::FaultInjector::Instance().Arm(point);
    const Status st = SaveTrainingCheckpoint(new_ckpt, file.path());
    EXPECT_FALSE(st.ok()) << "fault point " << point << " did not fire";
    util::FaultInjector::Instance().DisarmAll();
    // The previous checkpoint is byte-identical and still loads.
    EXPECT_EQ(Slurp(file.path()), old_bytes) << "after fault at " << point;
    auto reloaded = LoadTrainingCheckpoint(file.path());
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    EXPECT_EQ(reloaded->epoch, 3);
  }

  // Also kill each individual body write (header, tensors, moments,
  // trailer): every torn position must leave the old file intact.
  int write_calls = 0;
  {
    util::FaultInjector::Instance().DisarmAll();
    TempPath probe("probe");
    ASSERT_TRUE(SaveTrainingCheckpoint(new_ckpt, probe.path()).ok());
    write_calls = util::FaultInjector::Instance().HitCount(
        util::AtomicFileWriter::kFaultWrite);
    ASSERT_GT(write_calls, 10);
  }
  for (int nth = 1; nth <= write_calls; ++nth) {
    util::FaultInjector::Instance().DisarmAll();
    util::FaultInjector::Instance().Arm(util::AtomicFileWriter::kFaultWrite,
                                        nth);
    EXPECT_FALSE(SaveTrainingCheckpoint(new_ckpt, file.path()).ok());
    util::FaultInjector::Instance().DisarmAll();
    EXPECT_EQ(Slurp(file.path()), old_bytes) << "torn at write " << nth;
  }
  ASSERT_TRUE(LoadTrainingCheckpoint(file.path()).ok());

  // With no fault armed the replacement goes through.
  ASSERT_TRUE(SaveTrainingCheckpoint(new_ckpt, file.path()).ok());
  auto replaced = LoadTrainingCheckpoint(file.path());
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced->epoch, 4);
}

TEST(TrainingCheckpointTest, EverySingleByteFlipIsDetected) {
  TempPath file("byte_flip");
  SyntheticState state(1.0f);
  ASSERT_TRUE(SaveTrainingCheckpoint(
                  CaptureTrainingCheckpoint(state.params, *state.adam,
                                            state.rng, 1),
                  file.path())
                  .ok());
  const std::string good = Slurp(file.path());
  ASSERT_GT(good.size(), 50u);
  TempPath corrupt("byte_flip_bad");
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    Spew(corrupt.path(), bad);
    const auto loaded = LoadTrainingCheckpoint(corrupt.path());
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << i << " loaded silently";
  }
}

TEST(TrainingCheckpointTest, TruncationsFailCleanly) {
  TempPath file("trunc");
  SyntheticState state(1.0f);
  ASSERT_TRUE(SaveTrainingCheckpoint(
                  CaptureTrainingCheckpoint(state.params, *state.adam,
                                            state.rng, 1),
                  file.path())
                  .ok());
  const std::string good = Slurp(file.path());
  TempPath cut("trunc_cut");
  for (const size_t len :
       {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{8}, size_t{17},
        good.size() / 2, good.size() - 5, good.size() - 1}) {
    Spew(cut.path(), good.substr(0, len));
    const auto loaded = LoadTrainingCheckpoint(cut.path());
    EXPECT_FALSE(loaded.ok()) << "truncation to " << len << " bytes loaded";
  }
}

TEST(TrainingCheckpointTest, ArchitectureMismatchRejected) {
  TempPath file("arch");
  SyntheticState state(1.0f);
  ASSERT_TRUE(SaveTrainingCheckpoint(
                  CaptureTrainingCheckpoint(state.params, *state.adam,
                                            state.rng, 1),
                  file.path())
                  .ok());
  auto loaded = LoadTrainingCheckpoint(file.path());
  ASSERT_TRUE(loaded.ok());

  // Different parameter count.
  std::vector<tensor::Var> fewer{tensor::Param(tensor::Tensor({3, 4}))};
  tensor::Adam fewer_adam(fewer);
  Rng rng(1);
  int epoch = 0;
  EXPECT_FALSE(
      RestoreTrainingCheckpoint(*loaded, fewer, &fewer_adam, &rng, &epoch)
          .ok());

  // Same count, wrong shape.
  std::vector<tensor::Var> wrong{tensor::Param(tensor::Tensor({4, 3})),
                                 tensor::Param(tensor::Tensor({2}))};
  tensor::Adam wrong_adam(wrong);
  EXPECT_FALSE(
      RestoreTrainingCheckpoint(*loaded, wrong, &wrong_adam, &rng, &epoch)
          .ok());
}

/// Shared small economy for the GraphModel resume tests.
class GraphModelResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 23;
    config.num_blocks = 100;
    config.num_retail_users = 30;
    config.miners_per_pool = 12;
    config.gamblers_per_house = 6;
    datagen::Simulator simulator(config);
    ASSERT_TRUE(simulator.Run().ok());
    auto labeled = simulator.CollectLabeledAddresses(3);
    Rng rng(1);
    labeled = datagen::StratifiedSample(labeled, 60, &rng);

    GraphDatasetOptions opts;
    opts.construction.slice_size = 20;
    opts.k_hops = 2;
    GraphDatasetBuilder builder(opts);
    samples_ = new std::vector<AddressSample>(
        builder.Build(simulator.ledger(), labeled));
    ASSERT_GT(samples_->size(), 10u);
  }

  static void TearDownTestSuite() {
    delete samples_;
    samples_ = nullptr;
  }

  static GraphModelOptions BaseOptions() {
    GraphModelOptions o;
    o.encoder = GraphEncoderKind::kGfn;
    o.epochs = 4;
    o.hidden_dim = 16;
    o.embed_dim = 8;
    o.dropout = 0.1f;  // exercises the RNG stream during training
    o.seed = 3;
    return o;
  }

  static std::vector<float> Flatten(const GraphModel& model) {
    std::vector<float> out;
    for (const auto& p : model.Parameters()) {
      out.insert(out.end(), p->value.data(),
                 p->value.data() + p->value.numel());
    }
    return out;
  }

  static std::vector<AddressSample>* samples_;
};

std::vector<AddressSample>* GraphModelResumeTest::samples_ = nullptr;

TEST_F(GraphModelResumeTest, ResumedRunMatchesUninterruptedBitExactly) {
  // Baseline: 4 epochs in one go, no checkpointing.
  GraphModel baseline(BaseOptions());
  ASSERT_TRUE(baseline.Train(*samples_).ok());
  const std::vector<float> expected = Flatten(baseline);

  // Interrupted: run 2 of 4 epochs (the process then "dies")...
  TempDir dir("resume");
  GraphModelOptions first_half = BaseOptions();
  first_half.checkpoint_dir = dir.path();
  first_half.epochs = 2;
  {
    GraphModel partial(first_half);
    ASSERT_TRUE(partial.Train(*samples_).ok());
  }
  ASSERT_TRUE(util::FileExists(CheckpointPath(dir.path())));

  // ...and a fresh process resumes from the checkpoint to epoch 4.
  GraphModelOptions full = BaseOptions();
  full.checkpoint_dir = dir.path();
  GraphModel resumed(full);
  std::vector<EpochStat> history;
  ASSERT_TRUE(resumed.Train(*samples_, nullptr, &history).ok());
  ASSERT_EQ(history.size(), 2u);  // only epochs 3 and 4 ran
  EXPECT_EQ(history.front().epoch, 3);

  const std::vector<float> actual = Flatten(resumed);
  ASSERT_EQ(actual.size(), expected.size());
  ASSERT_EQ(std::memcmp(actual.data(), expected.data(),
                        actual.size() * sizeof(float)),
            0)
      << "resumed parameters diverge from the uninterrupted run";
}

TEST_F(GraphModelResumeTest, ThreadedResumeMatchesSerialBitExactly) {
  // The data-parallel Train path reduces per-example gradients in fixed
  // example order, so lane count must not affect the numbers: a run
  // killed after 2 epochs at 3 lanes and resumed at 2 lanes has to land
  // on the same parameters as an uninterrupted serial run.
  GraphModel baseline(BaseOptions());
  ASSERT_TRUE(baseline.Train(*samples_).ok());
  const std::vector<float> expected = Flatten(baseline);

  TempDir dir("resume_mt");
  GraphModelOptions first_half = BaseOptions();
  first_half.checkpoint_dir = dir.path();
  first_half.epochs = 2;
  first_half.num_threads = 3;
  {
    GraphModel partial(first_half);
    ASSERT_TRUE(partial.Train(*samples_).ok());
  }
  ASSERT_TRUE(util::FileExists(CheckpointPath(dir.path())));

  GraphModelOptions full = BaseOptions();
  full.checkpoint_dir = dir.path();
  full.num_threads = 2;
  GraphModel resumed(full);
  ASSERT_TRUE(resumed.Train(*samples_).ok());

  const std::vector<float> actual = Flatten(resumed);
  ASSERT_EQ(actual.size(), expected.size());
  ASSERT_EQ(std::memcmp(actual.data(), expected.data(),
                        actual.size() * sizeof(float)),
            0)
      << "threaded resume diverges from the serial uninterrupted run";
}

TEST_F(GraphModelResumeTest, FullyTrainedCheckpointShortCircuits) {
  TempDir dir("done");
  GraphModelOptions opts = BaseOptions();
  opts.checkpoint_dir = dir.path();
  GraphModel model(opts);
  ASSERT_TRUE(model.Train(*samples_).ok());
  const std::vector<float> after = Flatten(model);

  // Re-running Train resumes at epoch == epochs and changes nothing.
  GraphModel again(opts);
  ASSERT_TRUE(again.Train(*samples_).ok());
  EXPECT_EQ(Flatten(again), after);
}

TEST_F(GraphModelResumeTest, CorruptedCheckpointFailsTrainCleanly) {
  TempDir dir("corrupt");
  Spew(CheckpointPath(dir.path()), "BACKgarbage that is not a checkpoint");
  GraphModelOptions opts = BaseOptions();
  opts.checkpoint_dir = dir.path();
  GraphModel model(opts);
  const Status st = model.Train(*samples_);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphModelResumeTest, KilledCheckpointSaveFailsTrainButKeepsPrior) {
  FaultGuard guard;
  TempDir dir("kill_during_train");
  GraphModelOptions opts = BaseOptions();
  opts.checkpoint_dir = dir.path();
  opts.epochs = 1;
  {
    GraphModel model(opts);
    ASSERT_TRUE(model.Train(*samples_).ok());
  }
  const std::string before = Slurp(CheckpointPath(dir.path()));

  opts.epochs = 2;
  for (const std::string& point : util::AtomicFileWriter::FaultPoints()) {
    util::FaultInjector::Instance().Arm(point);
    GraphModel model(opts);
    EXPECT_FALSE(model.Train(*samples_).ok())
        << "fault point " << point << " did not surface";
    util::FaultInjector::Instance().DisarmAll();
    EXPECT_EQ(Slurp(CheckpointPath(dir.path())), before)
        << "prior checkpoint damaged by fault at " << point;
  }
}

}  // namespace
}  // namespace ba::core
