// Reverse-mode autograd correctness: every differentiable op is checked
// against central-difference numeric gradients, plus optimizer
// convergence tests.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/autograd.h"
#include "tensor/optimizer.h"
#include "util/rng.h"

namespace ba::tensor {
namespace {

/// Checks d(loss)/d(param) against central differences for every
/// element of every parameter. `loss_fn` must rebuild the tape from the
/// current parameter values on each call.
void CheckGradients(const std::vector<Var>& params,
                    const std::function<Var()>& loss_fn, float eps = 1e-3f,
                    float tol = 2e-2f) {
  Var loss = loss_fn();
  ZeroGrad(params);
  Backward(loss);
  for (size_t p = 0; p < params.size(); ++p) {
    ASSERT_TRUE(params[p]->grad_ready) << "param " << p << " has no grad";
    for (int64_t i = 0; i < params[p]->value.numel(); ++i) {
      const float saved = params[p]->value.data()[i];
      params[p]->value.data()[i] = saved + eps;
      const float up = loss_fn()->value.item();
      params[p]->value.data()[i] = saved - eps;
      const float down = loss_fn()->value.item();
      params[p]->value.data()[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float analytic = params[p]->grad.data()[i];
      EXPECT_NEAR(analytic, numeric,
                  tol * std::max(1.0f, std::abs(numeric)))
          << "param " << p << " element " << i;
    }
  }
}

TEST(AutogradTest, ConstantHasNoGradient) {
  Var c = Constant(Tensor::Ones({2, 2}));
  EXPECT_FALSE(c->requires_grad);
  Var p = Param(Tensor::Ones({2, 2}));
  EXPECT_TRUE(p->requires_grad);
}

TEST(AutogradTest, BackwardThroughAddChain) {
  Var a = Param(Tensor({1, 1}, {2.0f}));
  Var b = Param(Tensor({1, 1}, {3.0f}));
  Var loss = MeanAll(Add(a, b));
  Backward(loss);
  EXPECT_FLOAT_EQ(a->grad.item(), 1.0f);
  EXPECT_FLOAT_EQ(b->grad.item(), 1.0f);
}

TEST(AutogradTest, GradientsAccumulateAcrossBackwardCalls) {
  Var a = Param(Tensor({1, 1}, {2.0f}));
  Var loss1 = MeanAll(Scale(a, 3.0f));
  Backward(loss1);
  EXPECT_FLOAT_EQ(a->grad.item(), 3.0f);
  Var loss2 = MeanAll(Scale(a, 3.0f));
  Backward(loss2);
  EXPECT_FLOAT_EQ(a->grad.item(), 6.0f);
  ZeroGrad({a});
  EXPECT_FALSE(a->grad_ready);
}

TEST(AutogradTest, ReusedNodeReceivesSummedGradient) {
  // loss = mean(a + a) => dloss/da = 2/numel elementwise.
  Var a = Param(Tensor({1, 2}, {1.0f, 2.0f}));
  Var loss = MeanAll(Add(a, a));
  Backward(loss);
  EXPECT_FLOAT_EQ(a->grad.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(a->grad.at(0, 1), 1.0f);
}

TEST(GradCheckTest, MatMul) {
  Rng rng(1);
  Var a = Param(Tensor::RandomNormal({3, 4}, &rng, 0.0f, 0.5f));
  Var b = Param(Tensor::RandomNormal({4, 2}, &rng, 0.0f, 0.5f));
  CheckGradients({a, b}, [&] { return MeanAll(MatMul(a, b)); });
}

TEST(GradCheckTest, AddBroadcastBias) {
  Rng rng(2);
  Var x = Param(Tensor::RandomNormal({4, 3}, &rng));
  Var bias = Param(Tensor::RandomNormal({1, 3}, &rng));
  CheckGradients({x, bias}, [&] { return MeanAll(Add(x, bias)); });
}

TEST(GradCheckTest, SubAndMul) {
  Rng rng(3);
  Var a = Param(Tensor::RandomNormal({2, 5}, &rng));
  Var b = Param(Tensor::RandomNormal({2, 5}, &rng));
  CheckGradients({a, b}, [&] { return MeanAll(Mul(Sub(a, b), a)); });
}

TEST(GradCheckTest, ActivationsOnSmoothRegion) {
  Rng rng(4);
  // Keep values away from ReLU's kink for clean numeric gradients.
  Var a = Param(Tensor::RandomUniform({3, 3}, &rng, 0.2f, 1.5f));
  CheckGradients({a}, [&] { return MeanAll(Relu(a)); });
  Var b = Param(Tensor::RandomNormal({3, 3}, &rng));
  CheckGradients({b}, [&] { return MeanAll(Sigmoid(b)); });
  Var c = Param(Tensor::RandomNormal({3, 3}, &rng));
  CheckGradients({c}, [&] { return MeanAll(Tanh(c)); });
}

TEST(GradCheckTest, SoftmaxRowsAndCols) {
  Rng rng(5);
  Var a = Param(Tensor::RandomNormal({3, 4}, &rng));
  Var w = Constant(Tensor::RandomNormal({3, 4}, &rng));
  CheckGradients({a}, [&] { return MeanAll(Mul(Softmax(a, 1), w)); });
  CheckGradients({a}, [&] { return MeanAll(Mul(Softmax(a, 0), w)); });
}

TEST(GradCheckTest, SoftmaxCrossEntropy) {
  Rng rng(6);
  Var logits = Param(Tensor::RandomNormal({5, 4}, &rng));
  const std::vector<int> labels{0, 2, 1, 3, 2};
  CheckGradients({logits},
                 [&] { return SoftmaxCrossEntropy(logits, labels); });
}

TEST(GradCheckTest, ConcatRowsAndCols) {
  Rng rng(7);
  Var a = Param(Tensor::RandomNormal({2, 3}, &rng));
  Var b = Param(Tensor::RandomNormal({4, 3}, &rng));
  Var w = Constant(Tensor::RandomNormal({6, 3}, &rng));
  CheckGradients({a, b},
                 [&] { return MeanAll(Mul(ConcatRows({a, b}), w)); });
  Var c = Param(Tensor::RandomNormal({2, 5}, &rng));
  Var w2 = Constant(Tensor::RandomNormal({2, 8}, &rng));
  CheckGradients({a, c},
                 [&] { return MeanAll(Mul(ConcatCols({a, c}), w2)); });
}

TEST(GradCheckTest, Reductions) {
  Rng rng(8);
  Var a = Param(Tensor::RandomNormal({4, 3}, &rng));
  Var w = Constant(Tensor::RandomNormal({1, 3}, &rng));
  CheckGradients({a}, [&] { return MeanAll(Mul(SumRows(a), w)); });
  CheckGradients({a}, [&] { return MeanAll(Mul(MeanRows(a), w)); });
  CheckGradients({a}, [&] { return MeanAll(Mul(MaxRows(a), w)); });
}

TEST(GradCheckTest, SliceAndTranspose) {
  Rng rng(9);
  Var a = Param(Tensor::RandomNormal({5, 3}, &rng));
  Var w = Constant(Tensor::RandomNormal({2, 3}, &rng));
  CheckGradients({a}, [&] { return MeanAll(Mul(SliceRows(a, 1, 3), w)); });
  Var w2 = Constant(Tensor::RandomNormal({3, 5}, &rng));
  CheckGradients({a}, [&] { return MeanAll(Mul(Transpose(a), w2)); });
}

TEST(GradCheckTest, SpMM) {
  Rng rng(10);
  auto s = std::make_shared<const graph::SparseMatrix>(
      graph::SparseMatrix::FromTriplets(
          3, 4,
          {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, -1.0f}, {2, 3, 0.5f}}));
  Var x = Param(Tensor::RandomNormal({4, 2}, &rng));
  CheckGradients({x}, [&] { return MeanAll(SpMM(s, x)); });
}

TEST(GradCheckTest, L2Penalty) {
  Rng rng(11);
  Var a = Param(Tensor::RandomNormal({3, 3}, &rng));
  CheckGradients({a}, [&] { return L2Penalty(a); });
}

TEST(GradCheckTest, CompositeTwoLayerNetwork) {
  Rng rng(12);
  Var x = Constant(Tensor::RandomNormal({6, 4}, &rng));
  Var w1 = Param(Tensor::XavierUniform(4, 5, &rng));
  Var b1 = Param(Tensor({1, 5}));
  Var w2 = Param(Tensor::XavierUniform(5, 3, &rng));
  Var b2 = Param(Tensor({1, 3}));
  const std::vector<int> labels{0, 1, 2, 0, 1, 2};
  CheckGradients({w1, b1, w2, b2}, [&] {
    Var h = Tanh(Add(MatMul(x, w1), b1));
    Var logits = Add(MatMul(h, w2), b2);
    return SoftmaxCrossEntropy(logits, labels);
  });
}

TEST(DropoutTest, IdentityInInference) {
  Rng rng(13);
  Var a = Param(Tensor::RandomNormal({4, 4}, &rng));
  Var out = Dropout(a, 0.5f, &rng, /*training=*/false);
  EXPECT_EQ(out.get(), a.get());
}

TEST(DropoutTest, InvertedScalingPreservesExpectation) {
  Rng rng(14);
  Var a = Constant(Tensor::Ones({200, 50}));
  Var out = Dropout(a, 0.3f, &rng, /*training=*/true);
  // Mean of inverted-dropout output approximates the input mean.
  EXPECT_NEAR(out->value.Sum() / out->value.numel(), 1.0, 0.05);
  // Entries are either 0 or 1/keep.
  for (int64_t i = 0; i < out->value.numel(); ++i) {
    const float v = out->value.data()[i];
    EXPECT_TRUE(std::abs(v) < 1e-6 || std::abs(v - 1.0f / 0.7f) < 1e-5);
  }
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  // minimize (w - 3)^2 via autograd.
  Var w = Param(Tensor({1, 1}, {0.0f}));
  Sgd sgd({w}, /*lr=*/0.1f);
  for (int i = 0; i < 100; ++i) {
    sgd.ZeroGrad();
    Var target = Constant(Tensor({1, 1}, {3.0f}));
    Var diff = Sub(w, target);
    Var loss = MeanAll(Mul(diff, diff));
    Backward(loss);
    sgd.Step();
  }
  EXPECT_NEAR(w->value.item(), 3.0f, 1e-3f);
}

TEST(OptimizerTest, SgdMomentumConvergesFasterOnIllConditioned) {
  auto run = [](float momentum) {
    Var w = Param(Tensor({1, 2}, {5.0f, 5.0f}));
    Sgd sgd({w}, 0.02f, momentum);
    float loss_v = 0.0f;
    for (int i = 0; i < 60; ++i) {
      sgd.ZeroGrad();
      // loss = w0^2 + 10 * w1^2 (anisotropic quadratic)
      Var scale = Constant(Tensor({1, 2}, {1.0f, std::sqrt(10.0f)}));
      Var scaled = Mul(w, scale);
      Var loss = MeanAll(Mul(scaled, scaled));
      loss_v = loss->value.item();
      Backward(loss);
      sgd.Step();
    }
    return loss_v;
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(OptimizerTest, AdamConvergesOnLogisticToy) {
  Rng rng(15);
  // Linearly separable 2-class blobs.
  const int n = 60;
  Tensor x({n, 2});
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    x.at(i, 0) = static_cast<float>(rng.Gaussian(cls ? 2.0 : -2.0, 0.4));
    x.at(i, 1) = static_cast<float>(rng.Gaussian(cls ? -1.0 : 1.0, 0.4));
    y[static_cast<size_t>(i)] = cls;
  }
  Var w = Param(Tensor::XavierUniform(2, 2, &rng));
  Var b = Param(Tensor({1, 2}));
  Adam adam({w, b}, 0.05f);
  float final_loss = 1e9f;
  for (int epoch = 0; epoch < 120; ++epoch) {
    adam.ZeroGrad();
    Var logits = Add(MatMul(Constant(x), w), b);
    Var loss = SoftmaxCrossEntropy(logits, y);
    final_loss = loss->value.item();
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(final_loss, 0.05f);
}

TEST(OptimizerTest, StepSkipsParamsWithoutGradient) {
  Var used = Param(Tensor({1, 1}, {1.0f}));
  Var unused = Param(Tensor({1, 1}, {7.0f}));
  Adam adam({used, unused}, 0.1f);
  adam.ZeroGrad();
  Var loss = MeanAll(Mul(used, used));
  Backward(loss);
  adam.Step();
  EXPECT_FLOAT_EQ(unused->value.item(), 7.0f);
  EXPECT_NE(used->value.item(), 1.0f);
}

}  // namespace
}  // namespace ba::tensor
