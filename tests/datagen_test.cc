// Tests for the behavioral economy simulator and dataset assembly
// (src/datagen): the substitution for the paper's crawled corpus.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "util/fs.h"

namespace ba::datagen {
namespace {

ScenarioConfig SmallConfig(uint64_t seed = 42) {
  ScenarioConfig config;
  config.seed = seed;
  config.num_blocks = 120;
  config.num_mining_pools = 2;
  config.miners_per_pool = 25;
  config.num_exchanges = 2;
  config.num_gambling_houses = 2;
  config.gamblers_per_house = 10;
  config.num_services = 2;
  config.num_retail_users = 40;
  return config;
}

class SimulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    simulator_ = new Simulator(SmallConfig());
    ASSERT_TRUE(simulator_->Run().ok());
  }
  static void TearDownTestSuite() {
    delete simulator_;
    simulator_ = nullptr;
  }
  static Simulator* simulator_;
};

Simulator* SimulatorTest::simulator_ = nullptr;

TEST_F(SimulatorTest, ProducesExpectedBlockCount) {
  EXPECT_EQ(simulator_->ledger().height(), 120u);
  EXPECT_GT(simulator_->ledger().num_transactions(), 120u);
}

TEST_F(SimulatorTest, ConservationHoldsAfterFullRun) {
  EXPECT_TRUE(simulator_->ledger().CheckConservation().ok());
}

TEST_F(SimulatorTest, AllFourBehaviorsPresent) {
  const auto labeled = simulator_->CollectLabeledAddresses(/*min_txs=*/2);
  const auto counts = CountByLabel(labeled);
  for (int c = 0; c < kNumBehaviors; ++c) {
    EXPECT_GT(counts[static_cast<size_t>(c)], 0)
        << "missing class " << BehaviorName(static_cast<BehaviorLabel>(c));
  }
}

TEST_F(SimulatorTest, LabelsAreDisjointAndHaveHistory) {
  const auto labeled = simulator_->CollectLabeledAddresses(2);
  std::set<chain::AddressId> seen;
  for (const auto& a : labeled) {
    EXPECT_TRUE(seen.insert(a.address).second) << "duplicate label";
    EXPECT_GE(simulator_->ledger().TransactionsOf(a.address).size(), 2u);
  }
}

TEST_F(SimulatorTest, MiningAddressesSeeLargeFanOutTransactions) {
  const auto labeled = simulator_->CollectLabeledAddresses(2);
  size_t max_outputs = 0;
  for (const auto& a : labeled) {
    if (a.label != BehaviorLabel::kMining) continue;
    for (chain::TxId id : simulator_->ledger().TransactionsOf(a.address)) {
      max_outputs =
          std::max(max_outputs, simulator_->ledger().tx(id).outputs.size());
    }
  }
  // Pool payouts fan out to a large fraction of 25 miners.
  EXPECT_GE(max_outputs, 10u);
}

TEST_F(SimulatorTest, SkippedActionsAreMinority) {
  EXPECT_LT(simulator_->skipped_actions(),
            static_cast<int64_t>(simulator_->ledger().num_transactions()));
}

TEST(SimulatorDeterminismTest, SameSeedSameEconomy) {
  Simulator a(SmallConfig(7));
  Simulator b(SmallConfig(7));
  ASSERT_TRUE(a.Run().ok());
  ASSERT_TRUE(b.Run().ok());
  EXPECT_EQ(a.ledger().num_transactions(), b.ledger().num_transactions());
  EXPECT_EQ(a.ledger().total_minted(), b.ledger().total_minted());
  EXPECT_EQ(a.ledger().total_fees(), b.ledger().total_fees());
  const auto la = a.CollectLabeledAddresses(2);
  const auto lb = b.CollectLabeledAddresses(2);
  ASSERT_EQ(la.size(), lb.size());
  for (size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].address, lb[i].address);
    EXPECT_EQ(la[i].label, lb[i].label);
  }
}

TEST(SimulatorDeterminismTest, DifferentSeedsDiffer) {
  Simulator a(SmallConfig(1));
  Simulator b(SmallConfig(2));
  ASSERT_TRUE(a.Run().ok());
  ASSERT_TRUE(b.Run().ok());
  EXPECT_NE(a.ledger().num_transactions(), b.ledger().num_transactions());
}

TEST(SimulatorFaultTest, KilledRunResumesToTheIdenticalEconomy) {
  // Arm the per-block fault point mid-run: Run() must fail cleanly,
  // then a second Run() on the same simulator picks up at the next
  // unsealed block and lands on exactly the uninterrupted economy.
  util::FaultInjector::Instance().DisarmAll();
  Simulator uninterrupted(SmallConfig(7));
  ASSERT_TRUE(uninterrupted.Run().ok());

  Simulator killed(SmallConfig(7));
  util::FaultInjector::Instance().Arm(Simulator::kFaultRunStep, /*nth=*/40);
  const Status st = killed.Run();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find(Simulator::kFaultRunStep), std::string::npos);
  EXPECT_LT(killed.ledger().num_transactions(),
            uninterrupted.ledger().num_transactions());
  util::FaultInjector::Instance().DisarmAll();

  ASSERT_TRUE(killed.Run().ok());
  EXPECT_EQ(killed.ledger().num_transactions(),
            uninterrupted.ledger().num_transactions());
  EXPECT_EQ(killed.ledger().total_minted(),
            uninterrupted.ledger().total_minted());
  EXPECT_EQ(killed.ledger().total_fees(),
            uninterrupted.ledger().total_fees());

  // Once complete, further Run() calls are idempotent.
  ASSERT_TRUE(killed.Run().ok());
  EXPECT_EQ(killed.ledger().num_transactions(),
            uninterrupted.ledger().num_transactions());
}

TEST_F(SimulatorTest, EntityLabelsConsistentWithBehaviorLabels) {
  const auto behavior = simulator_->CollectLabeledAddresses(2);
  const auto entity = simulator_->CollectEntityLabels(2);
  ASSERT_EQ(behavior.size(), entity.size());
  std::unordered_map<chain::AddressId, BehaviorLabel> by_addr;
  for (const auto& a : behavior) by_addr[a.address] = a.label;
  std::unordered_map<int, BehaviorLabel> entity_behavior;
  for (const auto& e : entity) {
    ASSERT_GE(e.entity_id, 0);
    // Behavior labels agree between the two views.
    auto it = by_addr.find(e.address);
    ASSERT_NE(it, by_addr.end());
    EXPECT_EQ(it->second, e.behavior);
    // All addresses of one entity share one behavior.
    auto [eit, inserted] = entity_behavior.emplace(e.entity_id, e.behavior);
    EXPECT_EQ(eit->second, e.behavior);
  }
  // Several distinct entities exist.
  EXPECT_GE(entity_behavior.size(), 6u);
}

TEST(SimulatorBankTest, UndergroundBanksAreLabeledService) {
  ScenarioConfig config = SmallConfig(99);
  config.num_underground_banks = 2;
  config.bank_mix_prob = 0.5;
  Simulator sim(config);
  ASSERT_TRUE(sim.Run().ok());
  // With banks, the Service class must gain exchange-machinery
  // addresses; entity view shows Service entities beyond the mixers.
  const auto entity = sim.CollectEntityLabels(2);
  std::set<int> service_entities;
  for (const auto& e : entity) {
    if (e.behavior == BehaviorLabel::kService) {
      service_entities.insert(e.entity_id);
    }
  }
  EXPECT_GT(service_entities.size(),
            static_cast<size_t>(config.num_services));
}

TEST(SimulatorBankTest, NoBanksMeansNoExtraServiceEntities) {
  ScenarioConfig config = SmallConfig(99);
  config.num_underground_banks = 0;
  Simulator sim(config);
  ASSERT_TRUE(sim.Run().ok());
  const auto entity = sim.CollectEntityLabels(2);
  std::set<int> service_entities;
  for (const auto& e : entity) {
    if (e.behavior == BehaviorLabel::kService) {
      service_entities.insert(e.entity_id);
    }
  }
  EXPECT_LE(service_entities.size(),
            static_cast<size_t>(config.num_services));
}

TEST(DatasetTest, CountByLabelCounts) {
  std::vector<LabeledAddress> v{{1, BehaviorLabel::kExchange},
                                {2, BehaviorLabel::kExchange},
                                {3, BehaviorLabel::kService}};
  const auto counts = CountByLabel(v);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(counts[1], 0);
}

TEST(DatasetTest, StratifiedSamplePreservesProportions) {
  Rng rng(5);
  std::vector<LabeledAddress> pool;
  for (int i = 0; i < 600; ++i) pool.push_back({static_cast<chain::AddressId>(i), BehaviorLabel::kExchange});
  for (int i = 600; i < 900; ++i) pool.push_back({static_cast<chain::AddressId>(i), BehaviorLabel::kGambling});
  for (int i = 900; i < 1000; ++i) pool.push_back({static_cast<chain::AddressId>(i), BehaviorLabel::kMining});
  const auto sample = StratifiedSample(pool, 100, &rng);
  const auto counts = CountByLabel(sample);
  EXPECT_NEAR(static_cast<double>(counts[0]), 60.0, 1.0);
  EXPECT_NEAR(static_cast<double>(counts[2]), 30.0, 1.0);
  EXPECT_NEAR(static_cast<double>(counts[1]), 10.0, 1.0);
}

TEST(DatasetTest, StratifiedSampleReturnsAllWhenSmall) {
  Rng rng(5);
  std::vector<LabeledAddress> pool{{1, BehaviorLabel::kMining}};
  EXPECT_EQ(StratifiedSample(pool, 100, &rng).size(), 1u);
}

TEST(DatasetTest, StratifiedSplitFractionsAndDisjointness) {
  Rng rng(9);
  std::vector<LabeledAddress> pool;
  for (int i = 0; i < 200; ++i) {
    pool.push_back({static_cast<chain::AddressId>(i),
                    static_cast<BehaviorLabel>(i % 4)});
  }
  const auto split = StratifiedSplit(pool, 0.8, &rng);
  EXPECT_EQ(split.train.size() + split.test.size(), 200u);
  EXPECT_NEAR(static_cast<double>(split.train.size()), 160.0, 4.0);
  std::set<chain::AddressId> train_set;
  for (const auto& a : split.train) train_set.insert(a.address);
  for (const auto& a : split.test) {
    EXPECT_EQ(train_set.count(a.address), 0u);
  }
  // Each class appears on both sides.
  const auto train_counts = CountByLabel(split.train);
  const auto test_counts = CountByLabel(split.test);
  for (int c = 0; c < kNumBehaviors; ++c) {
    EXPECT_GT(train_counts[static_cast<size_t>(c)], 0);
    EXPECT_GT(test_counts[static_cast<size_t>(c)], 0);
  }
}

TEST(DatasetTest, StratifiedSplitKeepsTinyClassesOnBothSides) {
  Rng rng(11);
  std::vector<LabeledAddress> pool{{1, BehaviorLabel::kMining},
                                   {2, BehaviorLabel::kMining}};
  const auto split = StratifiedSplit(pool, 0.8, &rng);
  EXPECT_EQ(split.train.size(), 1u);
  EXPECT_EQ(split.test.size(), 1u);
}

TEST(DatasetTest, ActiveAddressSeriesCoversChainAndCountsUniques) {
  Simulator sim(SmallConfig(13));
  ASSERT_TRUE(sim.Run().ok());
  const auto series =
      ActiveAddressSeries(sim.ledger(), /*bucket_seconds=*/600 * 24);
  ASSERT_FALSE(series.empty());
  int64_t total_active = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_GT(series[i].active_addresses, 0);
    if (i > 0) {
      EXPECT_GT(series[i].bucket_start, series[i - 1].bucket_start);
    }
    total_active += series[i].active_addresses;
  }
  // At least as many active-address observations as blocks with txs.
  EXPECT_GT(total_active, static_cast<int64_t>(series.size()));
}

}  // namespace
}  // namespace ba::datagen
