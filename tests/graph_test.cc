// Unit and property tests for src/graph: CSR sparse matrix and the
// centrality measures used by graph structure augmentation (Eq. 8-11).

#include <gtest/gtest.h>

#include <cmath>

#include "graph/centrality.h"
#include "graph/sparse_matrix.h"
#include "util/rng.h"

namespace ba::graph {
namespace {

TEST(SparseMatrixTest, FromTripletsSumsDuplicates) {
  auto m = SparseMatrix::FromTriplets(
      2, 3, {{0, 1, 1.0f}, {0, 1, 2.5f}, {1, 2, -1.0f}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_FLOAT_EQ(m.At(0, 1), 3.5f);
  EXPECT_FLOAT_EQ(m.At(1, 2), -1.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
}

TEST(SparseMatrixTest, RowAccessSortedByColumn) {
  auto m = SparseMatrix::FromTriplets(
      1, 5, {{0, 4, 4.0f}, {0, 0, 1.0f}, {0, 2, 2.0f}});
  const auto idx = m.RowIndices(0);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 2);
  EXPECT_EQ(idx[2], 4);
  const auto vals = m.RowValues(0);
  EXPECT_FLOAT_EQ(vals[1], 2.0f);
}

TEST(SparseMatrixTest, MultiplyDenseMatchesManual) {
  // [[1, 0], [2, 3]] * [[1, 2], [3, 4]] = [[1, 2], [11, 16]]
  auto m = SparseMatrix::FromTriplets(2, 2,
                                      {{0, 0, 1.0f}, {1, 0, 2.0f}, {1, 1, 3.0f}});
  const float x[] = {1.0f, 2.0f, 3.0f, 4.0f};
  float y[4] = {};
  m.MultiplyDense(x, 2, y);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 11.0f);
  EXPECT_FLOAT_EQ(y[3], 16.0f);
}

TEST(SparseMatrixTest, TransposeSwapsIndices) {
  auto m = SparseMatrix::FromTriplets(2, 3, {{0, 2, 5.0f}, {1, 0, 7.0f}});
  auto t = m.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_FLOAT_EQ(t.At(2, 0), 5.0f);
  EXPECT_FLOAT_EQ(t.At(0, 1), 7.0f);
}

TEST(SparseMatrixTest, SparseMultiplyMatchesDense) {
  Rng rng(5);
  const int64_t n = 12;
  std::vector<Triplet> ta, tb;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.3)) {
        ta.push_back({i, j, static_cast<float>(rng.UniformInt(1, 5))});
      }
      if (rng.Bernoulli(0.3)) {
        tb.push_back({i, j, static_cast<float>(rng.UniformInt(1, 5))});
      }
    }
  }
  auto a = SparseMatrix::FromTriplets(n, n, ta);
  auto b = SparseMatrix::FromTriplets(n, n, tb);
  auto c = a.Multiply(b);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double expected = 0.0;
      for (int64_t k = 0; k < n; ++k) {
        expected += static_cast<double>(a.At(i, k)) * b.At(k, j);
      }
      EXPECT_NEAR(c.At(i, j), expected, 1e-4) << i << "," << j;
    }
  }
}

TEST(SparseMatrixTest, SimilarityPatternOfEq3) {
  // A: 3 addresses x 3 transactions; addr0 & addr1 share both txs,
  // addr2 shares one with addr0.
  auto a = SparseMatrix::FromTriplets(3, 3,
                                      {{0, 0, 1.0f},
                                       {0, 1, 1.0f},
                                       {1, 0, 1.0f},
                                       {1, 1, 1.0f},
                                       {2, 1, 1.0f},
                                       {2, 2, 1.0f}});
  auto s = a.Multiply(a.Transpose());
  EXPECT_FLOAT_EQ(s.At(0, 0), 2.0f);  // degree of addr0
  EXPECT_FLOAT_EQ(s.At(0, 1), 2.0f);  // 2 common txs
  EXPECT_FLOAT_EQ(s.At(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(s.At(1, 2), 1.0f);
  EXPECT_FLOAT_EQ(s.At(2, 2), 2.0f);
}

AdjacencyList PathGraph(int64_t n) {
  AdjacencyList g(n);
  for (int64_t i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

AdjacencyList StarGraph(int64_t leaves) {
  AdjacencyList g(leaves + 1);
  for (int64_t i = 1; i <= leaves; ++i) g.AddEdge(0, i);
  return g;
}

TEST(CentralityTest, DegreeOnStar) {
  const auto d = DegreeCentrality(StarGraph(5));
  EXPECT_DOUBLE_EQ(d[0], 5.0);
  for (int i = 1; i <= 5; ++i) EXPECT_DOUBLE_EQ(d[i], 1.0);
}

TEST(CentralityTest, ClosenessOnPath) {
  // Path 0-1-2: center has distance sum 2, ends 3.
  const auto c = ClosenessCentrality(PathGraph(3));
  EXPECT_DOUBLE_EQ(c[1], 1.0);        // (2)/(2) -> 2/2=1
  EXPECT_DOUBLE_EQ(c[0], 2.0 / 3.0);  // 2/(1+2)
  EXPECT_DOUBLE_EQ(c[2], 2.0 / 3.0);
}

TEST(CentralityTest, ClosenessHandlesDisconnected) {
  AdjacencyList g(4);
  g.AddEdge(0, 1);  // component {0,1}; 2 and 3 isolated
  const auto c = ClosenessCentrality(g);
  EXPECT_GT(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[2], 0.0);
  EXPECT_DOUBLE_EQ(c[3], 0.0);
  // Wasserman-Faust: only 1 of 3 others reachable.
  EXPECT_DOUBLE_EQ(c[0], (1.0 / 3.0) * 1.0);
}

TEST(CentralityTest, BetweennessOnPath) {
  // Path 0-1-2-3-4: betweenness of node i counts pairs routed via it.
  const auto b = BetweennessCentrality(PathGraph(5));
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[4], 0.0);
  EXPECT_DOUBLE_EQ(b[1], 3.0);  // pairs (0,2),(0,3),(0,4)
  EXPECT_DOUBLE_EQ(b[2], 4.0);  // (0,3),(0,4),(1,3),(1,4)
}

TEST(CentralityTest, BetweennessOnStarCenter) {
  const int64_t leaves = 6;
  const auto b = BetweennessCentrality(StarGraph(leaves));
  // Center mediates all leaf pairs: C(6,2) = 15.
  EXPECT_DOUBLE_EQ(b[0], 15.0);
  for (int64_t i = 1; i <= leaves; ++i) EXPECT_DOUBLE_EQ(b[i], 0.0);
}

TEST(CentralityTest, BetweennessCountsMultipleShortestPaths) {
  // 4-cycle: two shortest paths between opposite corners; each middle
  // node gets 1/2 per opposite pair.
  AdjacencyList g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  const auto b = BetweennessCentrality(g);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(b[i], 0.5);
}

TEST(CentralityTest, PageRankSumsToOne) {
  Rng rng(3);
  AdjacencyList g(30);
  for (int i = 0; i < 60; ++i) {
    g.AddEdge(static_cast<int64_t>(rng.UniformInt(30)),
              static_cast<int64_t>(rng.UniformInt(30)));
  }
  const auto pr = PageRank(g);
  double total = 0.0;
  for (double v : pr) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(CentralityTest, PageRankUniformOnRegularGraph) {
  // Cycle: every node identical by symmetry.
  AdjacencyList g(8);
  for (int64_t i = 0; i < 8; ++i) g.AddEdge(i, (i + 1) % 8);
  const auto pr = PageRank(g);
  for (double v : pr) EXPECT_NEAR(v, 1.0 / 8.0, 1e-9);
}

TEST(CentralityTest, PageRankHubDominates) {
  const auto pr = PageRank(StarGraph(9));
  for (size_t i = 1; i < pr.size(); ++i) EXPECT_GT(pr[0], pr[i]);
}

TEST(CentralityTest, PageRankHandlesDanglingNodes) {
  AdjacencyList g(3);
  g.AddEdge(0, 1);  // node 2 isolated (dangling)
  const auto pr = PageRank(g);
  double total = 0.0;
  for (double v : pr) total += v;
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(NormalizedAdjacencyTest, SymmetricWithSelfLoops) {
  AdjacencyList g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const auto norm = NormalizedAdjacency(g);
  EXPECT_EQ(norm.rows(), 3);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_GT(norm.At(i, i), 0.0f);  // self loops present
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(norm.At(i, j), norm.At(j, i));
    }
  }
  // Exact entries: Ã_ij = 1 / sqrt(d̃_i · d̃_j) with d̃ = degree + 1.
  // Path 0-1-2: d̃ = {2, 3, 2}.
  EXPECT_NEAR(norm.At(0, 0), 1.0f / 2.0f, 1e-6f);
  EXPECT_NEAR(norm.At(1, 1), 1.0f / 3.0f, 1e-6f);
  EXPECT_NEAR(norm.At(0, 1), 1.0f / std::sqrt(6.0f), 1e-6f);
  EXPECT_FLOAT_EQ(norm.At(0, 2), 0.0f);
}

TEST(NormalizedAdjacencyTest, UniformDegreeRowSumsToOne) {
  AdjacencyList g(4);  // 4-cycle: all degrees 2 (+self loop -> 3)
  for (int64_t i = 0; i < 4; ++i) g.AddEdge(i, (i + 1) % 4);
  const auto norm = NormalizedAdjacency(g);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(norm.RowSum(i), 1.0f, 1e-5f);
}

// Property suite over random graphs.
class CentralityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CentralityPropertyTest, InvariantsHold) {
  Rng rng(GetParam());
  const int64_t n = 5 + static_cast<int64_t>(rng.UniformInt(40));
  AdjacencyList g(n);
  const int64_t edges = n + static_cast<int64_t>(rng.UniformInt(
                                static_cast<uint64_t>(2 * n)));
  for (int64_t e = 0; e < edges; ++e) {
    int64_t u = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
    int64_t v = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
    if (u != v) g.AddEdge(u, v);
  }
  const auto degree = DegreeCentrality(g);
  const auto closeness = ClosenessCentrality(g);
  const auto betweenness = BetweennessCentrality(g);
  const auto pagerank = PageRank(g);

  double pr_total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_GE(degree[static_cast<size_t>(i)], 0.0);
    EXPECT_GE(closeness[static_cast<size_t>(i)], 0.0);
    EXPECT_LE(closeness[static_cast<size_t>(i)], 1.0 + 1e-9);
    EXPECT_GE(betweenness[static_cast<size_t>(i)], -1e-9);
    pr_total += pagerank[static_cast<size_t>(i)];
    // Degree-zero nodes have zero closeness and betweenness.
    if (degree[static_cast<size_t>(i)] == 0.0) {
      EXPECT_DOUBLE_EQ(closeness[static_cast<size_t>(i)], 0.0);
      EXPECT_DOUBLE_EQ(betweenness[static_cast<size_t>(i)], 0.0);
    }
  }
  EXPECT_NEAR(pr_total, 1.0, 1e-7);
  // Total betweenness is bounded by the number of ordered pairs / 2.
  double b_total = 0.0;
  for (double b : betweenness) b_total += b;
  EXPECT_LE(b_total,
            static_cast<double>(n) * static_cast<double>(n - 1) / 2.0 *
                static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CentralityPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ba::graph
