// Tests for the four-stage address graph construction pipeline
// (§III-A): slicing, single- and multi-transaction compression, and
// structure augmentation.

#include <gtest/gtest.h>

#include <set>

#include "chain/ledger.h"
#include "chain/wallet.h"
#include "core/gfn_features.h"
#include "core/graph_builder.h"
#include "core/graph_dataset.h"

namespace ba::core {
namespace {

using chain::AddressId;
using chain::Amount;
using chain::Ledger;
using chain::LedgerOptions;
using chain::OutPoint;
using chain::TxDraft;

constexpr Amount kCoin = 100'000'000;

/// Fixture economy: a "pool-like" target address that receives
/// coinbases and pays many recipients per transaction.
class GraphBuilderTest : public ::testing::Test {
 protected:
  GraphBuilderTest() : ledger_(LedgerOptions{.block_subsidy = 100 * kCoin}) {}

  /// Funds `target` with one coinbase and seals a block.
  chain::TxId FundTarget(AddressId target, chain::Timestamp t) {
    auto cb = ledger_.ApplyCoinbase(t, target);
    EXPECT_TRUE(cb.ok());
    EXPECT_TRUE(ledger_.SealBlock(t).ok());
    return cb.value();
  }

  Ledger ledger_;
};

TEST_F(GraphBuilderTest, EmptyHistoryYieldsNoGraphs) {
  const AddressId a = ledger_.NewAddress();
  GraphConstructor constructor;
  EXPECT_TRUE(constructor.BuildGraphs(ledger_, a).empty());
}

TEST_F(GraphBuilderTest, SlicingProducesCeilGraphs) {
  const AddressId target = ledger_.NewAddress();
  // 7 transactions, slice size 3 -> 3 graphs (3, 3, 1).
  for (int i = 0; i < 7; ++i) FundTarget(target, i * 600);
  GraphConstructorOptions opts;
  opts.slice_size = 3;
  opts.enable_single_compression = false;
  opts.enable_multi_compression = false;
  opts.enable_augmentation = false;
  GraphConstructor constructor(opts);
  const auto graphs = constructor.BuildGraphs(ledger_, target);
  ASSERT_EQ(graphs.size(), 3u);
  EXPECT_EQ(graphs[0].CountKind(NodeKind::kTransaction), 3);
  EXPECT_EQ(graphs[1].CountKind(NodeKind::kTransaction), 3);
  EXPECT_EQ(graphs[2].CountKind(NodeKind::kTransaction), 1);
  for (const auto& g : graphs) {
    EXPECT_EQ(g.target, target);
    EXPECT_EQ(g.nodes[static_cast<size_t>(g.target_node)].address, target);
  }
  EXPECT_EQ(graphs[2].slice_index, 2);
}

TEST_F(GraphBuilderTest, OriginalGraphEdgesMatchLedger) {
  const AddressId target = ledger_.NewAddress();
  const auto cb = FundTarget(target, 0);
  // One payment: target -> {b, c} + change.
  const AddressId b = ledger_.NewAddress();
  const AddressId c = ledger_.NewAddress();
  TxDraft draft;
  draft.timestamp = 600;
  draft.inputs = {OutPoint{cb, 0}};
  draft.outputs = {{b, 30 * kCoin}, {c, 20 * kCoin}, {target, 50 * kCoin}};
  ASSERT_TRUE(ledger_.ApplyTransaction(draft).ok());
  ASSERT_TRUE(ledger_.SealBlock(600).ok());

  GraphConstructorOptions opts;
  opts.enable_single_compression = false;
  opts.enable_multi_compression = false;
  opts.enable_augmentation = false;
  GraphConstructor constructor(opts);
  const auto graphs = constructor.BuildGraphs(ledger_, target);
  ASSERT_EQ(graphs.size(), 1u);
  const AddressGraph& g = graphs[0];
  // Nodes: target, b, c addresses + 2 tx nodes.
  EXPECT_EQ(g.CountKind(NodeKind::kAddress), 3);
  EXPECT_EQ(g.CountKind(NodeKind::kTransaction), 2);
  // Edge values in BTC: coinbase output 100; spend input 100 + outputs.
  double total_value = 0.0;
  int input_edges = 0;
  for (const auto& e : g.edges) {
    total_value += e.value;
    input_edges += e.is_input;
  }
  EXPECT_EQ(input_edges, 1);  // only the target funds the payment
  EXPECT_NEAR(total_value, 100.0 + 100.0 + 30.0 + 20.0 + 50.0, 1e-9);
}

TEST_F(GraphBuilderTest, NodeFeaturesAreWellFormed) {
  const AddressId target = ledger_.NewAddress();
  FundTarget(target, 0);
  GraphConstructor constructor;
  const auto graphs = constructor.BuildGraphs(ledger_, target);
  ASSERT_EQ(graphs.size(), 1u);
  for (const auto& node : graphs[0].nodes) {
    ASSERT_EQ(node.features.size(), static_cast<size_t>(kNodeFeatureDim));
    // Exactly one kind flag set.
    double kind_sum = 0.0;
    for (int k = 0; k < kNumNodeKinds; ++k) {
      kind_sum += node.features[static_cast<size_t>(k)];
    }
    EXPECT_DOUBLE_EQ(kind_sum, 1.0);
    for (double f : node.features) EXPECT_TRUE(std::isfinite(f));
  }
}

TEST_F(GraphBuilderTest, SingleCompressionMergesFanOut) {
  const AddressId target = ledger_.NewAddress();
  const auto cb = FundTarget(target, 0);
  // Payout with 20 one-shot recipients (single-transaction addresses).
  TxDraft draft;
  draft.timestamp = 600;
  draft.inputs = {OutPoint{cb, 0}};
  for (int i = 0; i < 20; ++i) {
    draft.outputs.push_back({ledger_.NewAddress(), 5 * kCoin});
  }
  ASSERT_TRUE(ledger_.ApplyTransaction(draft).ok());
  ASSERT_TRUE(ledger_.SealBlock(600).ok());

  GraphConstructorOptions opts;
  opts.enable_multi_compression = false;
  opts.enable_augmentation = false;
  GraphConstructor constructor(opts);
  const auto graphs = constructor.BuildGraphs(ledger_, target);
  ASSERT_EQ(graphs.size(), 1u);
  const AddressGraph& g = graphs[0];
  // The 20 recipients merge into ONE single-transaction hyper node.
  EXPECT_EQ(g.CountKind(NodeKind::kSingleHyper), 1);
  EXPECT_EQ(g.CountKind(NodeKind::kAddress), 1);  // only the target
  // Hyper node records how many addresses it represents.
  for (const auto& node : g.nodes) {
    if (node.kind == NodeKind::kSingleHyper) {
      EXPECT_EQ(node.merged_count, 20);
    }
  }
  // Value is conserved through the merge: the hyper edge sums members.
  double hyper_out = 0.0;
  for (const auto& e : g.edges) {
    if (g.nodes[static_cast<size_t>(e.to)].kind == NodeKind::kSingleHyper) {
      hyper_out += e.value;
    }
  }
  EXPECT_NEAR(hyper_out, 100.0, 1e-9);
}

TEST_F(GraphBuilderTest, SingleCompressionNeverMergesTarget) {
  const AddressId target = ledger_.NewAddress();
  const auto cb = FundTarget(target, 0);
  TxDraft draft;
  draft.timestamp = 600;
  draft.inputs = {OutPoint{cb, 0}};
  draft.outputs = {{ledger_.NewAddress(), 50 * kCoin},
                   {ledger_.NewAddress(), 50 * kCoin}};
  ASSERT_TRUE(ledger_.ApplyTransaction(draft).ok());
  ASSERT_TRUE(ledger_.SealBlock(600).ok());

  GraphConstructor constructor;
  const auto graphs = constructor.BuildGraphs(ledger_, target);
  ASSERT_EQ(graphs.size(), 1u);
  const auto& g = graphs[0];
  EXPECT_EQ(g.nodes[static_cast<size_t>(g.target_node)].address, target);
  EXPECT_EQ(g.nodes[static_cast<size_t>(g.target_node)].kind,
            NodeKind::kAddress);
}

TEST_F(GraphBuilderTest, MultiCompressionMergesCoOccurringAddresses) {
  // Mining-pool pattern: the same 10 "miners" are paid in every payout.
  const AddressId target = ledger_.NewAddress();
  std::vector<AddressId> miners;
  for (int i = 0; i < 10; ++i) miners.push_back(ledger_.NewAddress());
  for (int round = 0; round < 4; ++round) {
    const auto cb = FundTarget(target, round * 1200);
    TxDraft draft;
    draft.timestamp = round * 1200 + 600;
    draft.inputs = {OutPoint{cb, 0}};
    for (AddressId m : miners) draft.outputs.push_back({m, 10 * kCoin});
    ASSERT_TRUE(ledger_.ApplyTransaction(draft).ok());
    ASSERT_TRUE(ledger_.SealBlock(draft.timestamp).ok());
  }

  GraphConstructorOptions opts;
  opts.enable_single_compression = false;
  opts.enable_augmentation = false;
  opts.similarity_threshold = 0.5;
  opts.sigma = 1;
  GraphConstructor constructor(opts);
  const auto graphs = constructor.BuildGraphs(ledger_, target);
  ASSERT_EQ(graphs.size(), 1u);
  const AddressGraph& g = graphs[0];
  // All 10 miners co-occur in all 4 payouts: similarity 1 > Ψ -> one
  // multi-transaction hyper node.
  EXPECT_EQ(g.CountKind(NodeKind::kMultiHyper), 1);
  EXPECT_EQ(g.CountKind(NodeKind::kAddress), 1);  // target only
  for (const auto& node : g.nodes) {
    if (node.kind == NodeKind::kMultiHyper) {
      EXPECT_EQ(node.merged_count, 10);
    }
  }
}

TEST_F(GraphBuilderTest, MultiCompressionRespectsThreshold) {
  // Two disjoint miner cliques paid by disjoint transaction sets: the
  // cliques must merge separately, never together.
  const AddressId target = ledger_.NewAddress();
  std::vector<AddressId> clique_a, clique_b;
  for (int i = 0; i < 5; ++i) clique_a.push_back(ledger_.NewAddress());
  for (int i = 0; i < 5; ++i) clique_b.push_back(ledger_.NewAddress());
  for (int round = 0; round < 4; ++round) {
    const auto cb = FundTarget(target, round * 1200);
    TxDraft draft;
    draft.timestamp = round * 1200 + 600;
    draft.inputs = {OutPoint{cb, 0}};
    const auto& clique = (round % 2 == 0) ? clique_a : clique_b;
    for (AddressId m : clique) draft.outputs.push_back({m, 20 * kCoin});
    ASSERT_TRUE(ledger_.ApplyTransaction(draft).ok());
    ASSERT_TRUE(ledger_.SealBlock(draft.timestamp).ok());
  }

  GraphConstructorOptions opts;
  opts.enable_single_compression = false;
  opts.enable_augmentation = false;
  GraphConstructor constructor(opts);
  const auto graphs = constructor.BuildGraphs(ledger_, target);
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_EQ(graphs[0].CountKind(NodeKind::kMultiHyper), 2);
}

TEST_F(GraphBuilderTest, SparseAndDenseSimilarityBackendsAgree) {
  // Randomized economy shape: overlapping miner subsets per payout.
  const AddressId target = ledger_.NewAddress();
  std::vector<AddressId> miners;
  for (int i = 0; i < 16; ++i) miners.push_back(ledger_.NewAddress());
  Rng rng(77);
  for (int round = 0; round < 6; ++round) {
    const auto cb = FundTarget(target, round * 1200);
    TxDraft draft;
    draft.timestamp = round * 1200 + 600;
    draft.inputs = {OutPoint{cb, 0}};
    for (AddressId m : miners) {
      if (rng.Bernoulli(0.7)) draft.outputs.push_back({m, 5 * kCoin});
    }
    if (draft.outputs.empty()) draft.outputs.push_back({miners[0], 5 * kCoin});
    ASSERT_TRUE(ledger_.ApplyTransaction(draft).ok());
    ASSERT_TRUE(ledger_.SealBlock(draft.timestamp).ok());
  }

  for (double psi : {0.3, 0.5, 0.8}) {
    GraphConstructorOptions dense_opts;
    dense_opts.similarity_threshold = psi;
    dense_opts.use_sparse_similarity = false;
    GraphConstructorOptions sparse_opts = dense_opts;
    sparse_opts.use_sparse_similarity = true;
    GraphConstructor dense(dense_opts), sparse(sparse_opts);
    const auto gd = dense.BuildGraphs(ledger_, target);
    const auto gs = sparse.BuildGraphs(ledger_, target);
    ASSERT_EQ(gd.size(), gs.size());
    for (size_t g = 0; g < gd.size(); ++g) {
      EXPECT_EQ(gd[g].num_nodes(), gs[g].num_nodes()) << "psi=" << psi;
      EXPECT_EQ(gd[g].num_edges(), gs[g].num_edges()) << "psi=" << psi;
      EXPECT_EQ(gd[g].CountKind(NodeKind::kMultiHyper),
                gs[g].CountKind(NodeKind::kMultiHyper))
          << "psi=" << psi;
    }
  }
}

TEST_F(GraphBuilderTest, AugmentationFillsCentralitySlots) {
  const AddressId target = ledger_.NewAddress();
  const auto cb = FundTarget(target, 0);
  TxDraft draft;
  draft.timestamp = 600;
  draft.inputs = {OutPoint{cb, 0}};
  for (int i = 0; i < 5; ++i) {
    draft.outputs.push_back({ledger_.NewAddress(), 20 * kCoin});
  }
  ASSERT_TRUE(ledger_.ApplyTransaction(draft).ok());
  ASSERT_TRUE(ledger_.SealBlock(600).ok());

  GraphConstructor constructor;  // all stages on
  const auto graphs = constructor.BuildGraphs(ledger_, target);
  ASSERT_EQ(graphs.size(), 1u);
  const int base = kCentralityFeatureOffset;
  bool any_degree = false;
  for (const auto& node : graphs[0].nodes) {
    // Degree slot: log1p(degree) >= 0; connected nodes > 0.
    EXPECT_GE(node.features[static_cast<size_t>(base)], 0.0);
    if (node.features[static_cast<size_t>(base)] > 0.0) any_degree = true;
    // PageRank slot present and finite.
    EXPECT_TRUE(std::isfinite(node.features[static_cast<size_t>(base + 3)]));
  }
  EXPECT_TRUE(any_degree);
}

TEST_F(GraphBuilderTest, TimingsAccumulatePerStage) {
  const AddressId target = ledger_.NewAddress();
  for (int i = 0; i < 5; ++i) FundTarget(target, i * 600);
  GraphConstructor constructor;
  ASSERT_FALSE(constructor.BuildGraphs(ledger_, target).empty());
  const StageTimings& t = constructor.timings();
  EXPECT_GT(t.extract_seconds, 0.0);
  EXPECT_GT(t.TotalSeconds(), 0.0);
  EXPECT_GE(t.single_compress_seconds, 0.0);
  constructor.ResetTimings();
  EXPECT_DOUBLE_EQ(constructor.timings().TotalSeconds(), 0.0);
}

TEST_F(GraphBuilderTest, DeterministicAcrossRuns) {
  const AddressId target = ledger_.NewAddress();
  const auto cb = FundTarget(target, 0);
  TxDraft draft;
  draft.timestamp = 600;
  draft.inputs = {OutPoint{cb, 0}};
  for (int i = 0; i < 8; ++i) {
    draft.outputs.push_back({ledger_.NewAddress(), 10 * kCoin});
  }
  ASSERT_TRUE(ledger_.ApplyTransaction(draft).ok());
  ASSERT_TRUE(ledger_.SealBlock(600).ok());

  GraphConstructor c1, c2;
  const auto g1 = c1.BuildGraphs(ledger_, target);
  const auto g2 = c2.BuildGraphs(ledger_, target);
  ASSERT_EQ(g1.size(), g2.size());
  ASSERT_EQ(g1[0].num_nodes(), g2[0].num_nodes());
  ASSERT_EQ(g1[0].num_edges(), g2[0].num_edges());
  for (int i = 0; i < g1[0].num_nodes(); ++i) {
    EXPECT_EQ(g1[0].nodes[static_cast<size_t>(i)].features,
              g2[0].nodes[static_cast<size_t>(i)].features);
  }
}

TEST_F(GraphBuilderTest, MaxTxCapLimitsSliceCount) {
  const AddressId target = ledger_.NewAddress();
  for (int i = 0; i < 30; ++i) FundTarget(target, i * 600);
  GraphConstructorOptions opts;
  opts.slice_size = 10;
  opts.max_txs_per_address = 15;
  GraphConstructor constructor(opts);
  const auto graphs = constructor.BuildGraphs(ledger_, target);
  EXPECT_EQ(graphs.size(), 2u);  // ceil(15 / 10)
}

TEST_F(GraphBuilderTest, GfnTensorsHaveAugmentedWidth) {
  const AddressId target = ledger_.NewAddress();
  FundTarget(target, 0);
  GraphConstructor constructor;
  const auto graphs = constructor.BuildGraphs(ledger_, target);
  ASSERT_EQ(graphs.size(), 1u);
  for (int k : {0, 1, 2, 3}) {
    const GraphTensors gt = PrepareGraphTensors(graphs[0], k);
    EXPECT_EQ(gt.base_features.dim(1), kNodeFeatureDim);
    EXPECT_EQ(gt.augmented.dim(1), AugmentedDim(k));
    EXPECT_EQ(gt.augmented.dim(0), graphs[0].num_nodes());
    EXPECT_EQ(gt.norm_adj->rows(), graphs[0].num_nodes());
    // Hop-0 block of the augmented features equals the base features.
    for (int64_t i = 0; i < gt.base_features.dim(0); ++i) {
      for (int64_t j = 0; j < kNodeFeatureDim; ++j) {
        EXPECT_FLOAT_EQ(gt.augmented.at(i, 1 + j), gt.base_features.at(i, j));
      }
    }
  }
}

TEST_F(GraphBuilderTest, DatasetBuilderDropsEmptyAndKeepsLabels) {
  const AddressId active = ledger_.NewAddress();
  const AddressId silent = ledger_.NewAddress();
  FundTarget(active, 0);
  GraphDatasetBuilder builder;
  const auto samples = builder.Build(
      ledger_, {{active, datagen::BehaviorLabel::kMining},
                {silent, datagen::BehaviorLabel::kExchange}});
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].address, active);
  EXPECT_EQ(samples[0].label, static_cast<int>(datagen::BehaviorLabel::kMining));
  EXPECT_EQ(samples[0].graphs.size(), samples[0].tensors.size());
  EXPECT_GT(builder.timings().TotalSeconds(), 0.0);
}

TEST_F(GraphBuilderTest, ParallelDatasetBuildMatchesSerial) {
  std::vector<datagen::LabeledAddress> addresses;
  for (int a = 0; a < 6; ++a) {
    const AddressId target = ledger_.NewAddress();
    for (int i = 0; i < 3; ++i) {
      FundTarget(target, (a * 10 + i) * 600);
    }
    addresses.push_back({target, datagen::BehaviorLabel::kMining});
  }
  GraphDatasetOptions serial_opts;
  GraphDatasetBuilder serial(serial_opts);
  GraphDatasetOptions parallel_opts;
  parallel_opts.num_threads = 4;
  GraphDatasetBuilder parallel(parallel_opts);
  const auto s = serial.Build(ledger_, addresses);
  const auto p = parallel.Build(ledger_, addresses);
  ASSERT_EQ(s.size(), p.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].address, p[i].address);
    ASSERT_EQ(s[i].graphs.size(), p[i].graphs.size());
    for (size_t g = 0; g < s[i].graphs.size(); ++g) {
      EXPECT_EQ(s[i].graphs[g].num_nodes(), p[i].graphs[g].num_nodes());
      EXPECT_EQ(s[i].graphs[g].num_edges(), p[i].graphs[g].num_edges());
    }
  }
}

}  // namespace
}  // namespace ba::core
