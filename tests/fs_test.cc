// Tests for the durability layer (src/util/fs): CRC32, atomic file
// writes, bounds-checked buffer reads and named fault injection.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "util/fs.h"

namespace ba::util {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/ba_fs_" + name + "_" + std::to_string(::getpid())) {}
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string Slurp(const std::string& path) {
  auto r = ReadFileToString(path);
  return r.ok() ? r.value() : "<unreadable>";
}

/// Every fault-injection test must leave the global injector clean.
class FaultGuard {
 public:
  FaultGuard() { FaultInjector::Instance().DisarmAll(); }
  ~FaultGuard() { FaultInjector::Instance().DisarmAll(); }
};

TEST(Crc32Test, MatchesKnownVectors) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32(std::string("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  const std::string data = "incremental checksum over two chunks";
  const uint32_t one_shot = Crc32(data);
  const uint32_t part1 = Crc32(data.data(), 10);
  const uint32_t chained = Crc32(data.data() + 10, data.size() - 10, part1);
  EXPECT_EQ(one_shot, chained);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "some artifact payload";
  const uint32_t before = Crc32(data);
  data[7] ^= 0x01;
  EXPECT_NE(Crc32(data), before);
}

TEST(AtomicFileWriterTest, CommitWritesContentAndRemovesTmp) {
  TempFile file("commit");
  AtomicFileWriter w(file.path());
  ASSERT_TRUE(w.Open().ok());
  ASSERT_TRUE(w.Append("hello ").ok());
  ASSERT_TRUE(w.Append("world").ok());
  EXPECT_EQ(w.bytes_written(), 11u);
  EXPECT_EQ(w.crc(), Crc32(std::string("hello world")));
  ASSERT_TRUE(w.Commit().ok());
  EXPECT_EQ(Slurp(file.path()), "hello world");
  EXPECT_FALSE(FileExists(w.tmp_path()));
}

TEST(AtomicFileWriterTest, AbortLeavesNoFile) {
  TempFile file("abort");
  {
    AtomicFileWriter w(file.path());
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("partial").ok());
    // Destructor aborts an uncommitted write.
  }
  EXPECT_FALSE(FileExists(file.path()));
  EXPECT_FALSE(FileExists(file.path() + ".tmp"));
}

TEST(AtomicFileWriterTest, FailedWriteNeverTearsExistingFile) {
  TempFile file("no_tear");
  {
    AtomicFileWriter w(file.path());
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("version one").ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  {
    AtomicFileWriter w(file.path());
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("version tw").ok());
    // Abandon before commit: the old content must be intact.
  }
  EXPECT_EQ(Slurp(file.path()), "version one");
}

TEST(AtomicFileWriterTest, WriteBeforeOpenFailsCleanly) {
  TempFile file("not_open");
  AtomicFileWriter w(file.path());
  EXPECT_EQ(w.Append("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(w.Commit().code(), StatusCode::kFailedPrecondition);
}

TEST(FaultInjectorTest, ArmedPointFailsExactlyOnce) {
  FaultGuard guard;
  auto& injector = FaultInjector::Instance();
  injector.Arm("test.point");
  EXPECT_TRUE(injector.ShouldFail("test.point"));
  EXPECT_FALSE(injector.ShouldFail("test.point"));
  EXPECT_EQ(injector.HitCount("test.point"), 2);
}

TEST(FaultInjectorTest, NthHitFails) {
  FaultGuard guard;
  auto& injector = FaultInjector::Instance();
  injector.Arm("test.nth", 3);
  EXPECT_FALSE(injector.ShouldFail("test.nth"));
  EXPECT_FALSE(injector.ShouldFail("test.nth"));
  EXPECT_TRUE(injector.ShouldFail("test.nth"));
  EXPECT_FALSE(injector.ShouldFail("test.nth"));
}

TEST(FaultInjectorTest, EveryFaultPointKillsASaveWithoutTearing) {
  FaultGuard guard;
  TempFile file("kill");
  {
    AtomicFileWriter w(file.path());
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("survivor").ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  for (const std::string& point : AtomicFileWriter::FaultPoints()) {
    FaultInjector::Instance().Arm(point);
    AtomicFileWriter w(file.path());
    Status st = w.Open();
    if (st.ok()) st = w.Append("replacement content");
    if (st.ok()) st = w.Commit();
    EXPECT_FALSE(st.ok()) << "fault point " << point << " did not fire";
    EXPECT_NE(st.message().find(point), std::string::npos) << st.ToString();
    // The previous artifact is fully intact and no temp file remains.
    EXPECT_EQ(Slurp(file.path()), "survivor") << "after fault at " << point;
    EXPECT_FALSE(FileExists(file.path() + ".tmp"));
    FaultInjector::Instance().DisarmAll();
  }
}

TEST(FaultInjectorTest, NthWriteKillsMidSequence) {
  FaultGuard guard;
  TempFile file("mid");
  FaultInjector::Instance().Arm(AtomicFileWriter::kFaultWrite, 2);
  AtomicFileWriter w(file.path());
  ASSERT_TRUE(w.Open().ok());
  EXPECT_TRUE(w.Append("first").ok());
  EXPECT_FALSE(w.Append("second").ok());
  EXPECT_FALSE(FileExists(file.path()));
}

TEST(BufferReaderTest, ReadsAndBoundsChecks) {
  const std::string buf("\x01\x00\x00\x00rest", 8);
  BufferReader r(buf);
  uint32_t v = 0;
  ASSERT_TRUE(r.ReadPod(&v));
  EXPECT_EQ(v, 1u);
  char text[4];
  ASSERT_TRUE(r.ReadBytes(text, 4));
  EXPECT_EQ(std::string(text, 4), "rest");
  EXPECT_EQ(r.remaining(), 0u);
  uint8_t byte = 0;
  EXPECT_FALSE(r.ReadPod(&byte));  // exhausted
}

TEST(BufferReaderTest, TruncateShrinksWindow) {
  const std::string buf = "abcdef";
  BufferReader r(buf);
  r.Truncate(3);
  char out[4];
  EXPECT_FALSE(r.ReadBytes(out, 4));
  EXPECT_TRUE(r.ReadBytes(out, 3));
}

TEST(ReadFileToStringTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadFileToString("/no/such/ba_file").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ba::util
