// Tests for the durability layer (src/util/fs): CRC32, atomic file
// writes, bounds-checked buffer reads and named fault injection.

#include <dirent.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/fs.h"

namespace ba::util {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/ba_fs_" + name + "_" + std::to_string(::getpid())) {}
  ~TempFile() {
    std::remove(path_.c_str());
    for (const std::string& tmp : TmpLitter()) std::remove(tmp.c_str());
  }
  const std::string& path() const { return path_; }

  /// Every `<path>.tmp*` scratch file currently in the directory —
  /// empty whenever the writer honored its no-litter contract.
  std::vector<std::string> TmpLitter() const {
    std::vector<std::string> found;
    const size_t slash = path_.rfind('/');
    const std::string dir = path_.substr(0, slash);
    const std::string prefix = path_.substr(slash + 1) + ".tmp";
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return found;
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.rfind(prefix, 0) == 0) found.push_back(dir + "/" + name);
    }
    ::closedir(d);
    return found;
  }

 private:
  std::string path_;
};

std::string Slurp(const std::string& path) {
  auto r = ReadFileToString(path);
  return r.ok() ? r.value() : "<unreadable>";
}

/// Every fault-injection test must leave the global injector clean.
class FaultGuard {
 public:
  FaultGuard() { FaultInjector::Instance().DisarmAll(); }
  ~FaultGuard() { FaultInjector::Instance().DisarmAll(); }
};

TEST(Crc32Test, MatchesKnownVectors) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32(std::string("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  const std::string data = "incremental checksum over two chunks";
  const uint32_t one_shot = Crc32(data);
  const uint32_t part1 = Crc32(data.data(), 10);
  const uint32_t chained = Crc32(data.data() + 10, data.size() - 10, part1);
  EXPECT_EQ(one_shot, chained);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "some artifact payload";
  const uint32_t before = Crc32(data);
  data[7] ^= 0x01;
  EXPECT_NE(Crc32(data), before);
}

TEST(AtomicFileWriterTest, CommitWritesContentAndRemovesTmp) {
  TempFile file("commit");
  AtomicFileWriter w(file.path());
  ASSERT_TRUE(w.Open().ok());
  ASSERT_TRUE(w.Append("hello ").ok());
  ASSERT_TRUE(w.Append("world").ok());
  EXPECT_EQ(w.bytes_written(), 11u);
  EXPECT_EQ(w.crc(), Crc32(std::string("hello world")));
  ASSERT_TRUE(w.Commit().ok());
  EXPECT_EQ(Slurp(file.path()), "hello world");
  EXPECT_FALSE(FileExists(w.tmp_path()));
}

TEST(AtomicFileWriterTest, AbortLeavesNoFile) {
  TempFile file("abort");
  {
    AtomicFileWriter w(file.path());
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("partial").ok());
    // Destructor aborts an uncommitted write.
  }
  EXPECT_FALSE(FileExists(file.path()));
  EXPECT_FALSE(FileExists(file.path() + ".tmp"));
}

TEST(AtomicFileWriterTest, FailedWriteNeverTearsExistingFile) {
  TempFile file("no_tear");
  {
    AtomicFileWriter w(file.path());
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("version one").ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  {
    AtomicFileWriter w(file.path());
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("version tw").ok());
    // Abandon before commit: the old content must be intact.
  }
  EXPECT_EQ(Slurp(file.path()), "version one");
}

TEST(AtomicFileWriterTest, WriteBeforeOpenFailsCleanly) {
  TempFile file("not_open");
  AtomicFileWriter w(file.path());
  EXPECT_EQ(w.Append("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(w.Commit().code(), StatusCode::kFailedPrecondition);
}

TEST(FaultInjectorTest, ArmedPointFailsExactlyOnce) {
  FaultGuard guard;
  auto& injector = FaultInjector::Instance();
  injector.Arm("test.point");
  EXPECT_TRUE(injector.ShouldFail("test.point"));
  EXPECT_FALSE(injector.ShouldFail("test.point"));
  EXPECT_EQ(injector.HitCount("test.point"), 2);
}

TEST(FaultInjectorTest, NthHitFails) {
  FaultGuard guard;
  auto& injector = FaultInjector::Instance();
  injector.Arm("test.nth", 3);
  EXPECT_FALSE(injector.ShouldFail("test.nth"));
  EXPECT_FALSE(injector.ShouldFail("test.nth"));
  EXPECT_TRUE(injector.ShouldFail("test.nth"));
  EXPECT_FALSE(injector.ShouldFail("test.nth"));
}

TEST(FaultInjectorTest, EveryFaultPointKillsASaveWithoutTearing) {
  FaultGuard guard;
  TempFile file("kill");
  {
    AtomicFileWriter w(file.path());
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("survivor").ok());
    ASSERT_TRUE(w.Commit().ok());
  }
  for (const std::string& point : AtomicFileWriter::FaultPoints()) {
    FaultInjector::Instance().Arm(point);
    AtomicFileWriter w(file.path());
    Status st = w.Open();
    if (st.ok()) st = w.Append("replacement content");
    if (st.ok()) st = w.Commit();
    EXPECT_FALSE(st.ok()) << "fault point " << point << " did not fire";
    EXPECT_NE(st.message().find(point), std::string::npos) << st.ToString();
    // The previous artifact is fully intact and no temp file remains.
    EXPECT_EQ(Slurp(file.path()), "survivor") << "after fault at " << point;
    EXPECT_TRUE(file.TmpLitter().empty()) << "after fault at " << point;
    FaultInjector::Instance().DisarmAll();
  }
}

TEST(FaultInjectorTest, NthWriteKillsMidSequence) {
  FaultGuard guard;
  TempFile file("mid");
  FaultInjector::Instance().Arm(AtomicFileWriter::kFaultWrite, 2);
  AtomicFileWriter w(file.path());
  ASSERT_TRUE(w.Open().ok());
  EXPECT_TRUE(w.Append("first").ok());
  EXPECT_FALSE(w.Append("second").ok());
  EXPECT_FALSE(FileExists(file.path()));
}

TEST(FaultInjectorTest, ProbabilisticModeIsDeterministicPerSeed) {
  FaultGuard guard;
  auto& injector = FaultInjector::Instance();
  auto sample = [&](double p, uint64_t seed) {
    injector.Disarm("test.prob");
    injector.ArmProbabilistic("test.prob", p, seed);
    std::vector<bool> verdicts;
    for (int i = 0; i < 200; ++i) {
      verdicts.push_back(injector.ShouldFail("test.prob"));
    }
    return verdicts;
  };
  // Same seed reproduces the verdict stream exactly; the extremes are
  // exact, and a middling p fires neither never nor always.
  EXPECT_EQ(sample(0.3, 42), sample(0.3, 42));
  const auto never = sample(0.0, 7);
  EXPECT_EQ(std::count(never.begin(), never.end(), true), 0);
  const auto always = sample(1.0, 7);
  EXPECT_EQ(std::count(always.begin(), always.end(), true), 200);
  const auto mid = sample(0.5, 9);
  const auto fired = std::count(mid.begin(), mid.end(), true);
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 200);
}

TEST(FaultInjectorTest, EveryNthModeFiresPeriodically) {
  FaultGuard guard;
  auto& injector = FaultInjector::Instance();
  injector.ArmEveryNth("test.periodic", 3);
  for (int hit = 1; hit <= 12; ++hit) {
    EXPECT_EQ(injector.ShouldFail("test.periodic"), hit % 3 == 0)
        << "hit " << hit;
  }
  EXPECT_EQ(injector.HitCount("test.periodic"), 12);
}

TEST(FaultInjectorTest, LatencyComposesWithFailureModes) {
  FaultGuard guard;
  auto& injector = FaultInjector::Instance();
  // Latency alone: slow but healthy.
  injector.ArmLatency("test.slow", 0.02);
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(injector.ShouldFail("test.slow"));
  EXPECT_GE(std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count(),
            0.02);
  // Latency on top of a failure mode: slow-then-fail.
  injector.ArmEveryNth("test.slow", 1);
  start = std::chrono::steady_clock::now();
  EXPECT_TRUE(injector.ShouldFail("test.slow"));
  EXPECT_GE(std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count(),
            0.02);
  // Disarm clears latency, mode and hit counter together.
  injector.Disarm("test.slow");
  EXPECT_FALSE(injector.ShouldFail("test.slow"));
  EXPECT_EQ(injector.HitCount("test.slow"), 1);
}

// Regression: with one shared `<path>.tmp` scratch name, a second
// writer's Open truncated the first writer's half-written scratch and
// a racing Commit could rename torn bytes over the destination. Unique
// per-writer suffixes keep interleaved writers independent.
TEST(AtomicFileWriterTest, InterleavedWritersToOnePathDontClobber) {
  TempFile file("interleave");
  AtomicFileWriter w1(file.path());
  AtomicFileWriter w2(file.path());
  EXPECT_NE(w1.tmp_path(), w2.tmp_path());
  ASSERT_TRUE(w1.Open().ok());
  ASSERT_TRUE(w2.Open().ok());
  ASSERT_TRUE(w1.Append("first writer payload").ok());
  ASSERT_TRUE(w2.Append("second writer payload").ok());
  ASSERT_TRUE(w1.Commit().ok());
  // w1's commit is complete and untorn despite w2's open scratch.
  EXPECT_EQ(Slurp(file.path()), "first writer payload");
  ASSERT_TRUE(w2.Commit().ok());
  // Last successful commit wins, still untorn.
  EXPECT_EQ(Slurp(file.path()), "second writer payload");
  EXPECT_TRUE(file.TmpLitter().empty());
}

TEST(AtomicFileWriterTest, ConcurrentWritersAlwaysLeaveACompletePayload) {
  TempFile file("race");
  constexpr int kWriters = 8;
  constexpr int kRounds = 20;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      const std::string payload(128, static_cast<char>('A' + t));
      for (int r = 0; r < kRounds; ++r) {
        AtomicFileWriter w(file.path());
        if (!w.Open().ok()) continue;
        if (!w.Append(payload).ok()) continue;
        (void)w.Commit();
      }
    });
  }
  for (auto& t : writers) t.join();
  // The destination is exactly one writer's complete payload — never a
  // mix, never truncated — and nobody littered scratch files.
  const std::string contents = Slurp(file.path());
  ASSERT_EQ(contents.size(), 128u);
  for (char c : contents) EXPECT_EQ(c, contents[0]);
  EXPECT_TRUE(file.TmpLitter().empty());
}

TEST(AtomicFileWriterTest, DestructionWithoutCommitRemovesUniqueTmp) {
  TempFile file("drop");
  std::string tmp_path;
  {
    AtomicFileWriter w(file.path());
    tmp_path = w.tmp_path();
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(w.Append("abandoned mid-save").ok());
    ASSERT_TRUE(FileExists(tmp_path));
  }
  EXPECT_FALSE(FileExists(tmp_path));
  EXPECT_FALSE(FileExists(file.path()));
  EXPECT_TRUE(file.TmpLitter().empty());
}

TEST(BufferReaderTest, ReadsAndBoundsChecks) {
  const std::string buf("\x01\x00\x00\x00rest", 8);
  BufferReader r(buf);
  uint32_t v = 0;
  ASSERT_TRUE(r.ReadPod(&v));
  EXPECT_EQ(v, 1u);
  char text[4];
  ASSERT_TRUE(r.ReadBytes(text, 4));
  EXPECT_EQ(std::string(text, 4), "rest");
  EXPECT_EQ(r.remaining(), 0u);
  uint8_t byte = 0;
  EXPECT_FALSE(r.ReadPod(&byte));  // exhausted
}

TEST(BufferReaderTest, TruncateShrinksWindow) {
  const std::string buf = "abcdef";
  BufferReader r(buf);
  r.Truncate(3);
  char out[4];
  EXPECT_FALSE(r.ReadBytes(out, 4));
  EXPECT_TRUE(r.ReadBytes(out, 3));
}

TEST(ReadFileToStringTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadFileToString("/no/such/ba_file").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ba::util
