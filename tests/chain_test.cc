// Unit tests for the UTXO ledger and wallet substrate (src/chain),
// including the validation rules and the change mechanism of §II-A.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "chain/ledger.h"
#include "chain/types.h"
#include "chain/wallet.h"
#include "util/rng.h"

namespace ba::chain {
namespace {

constexpr Amount kSubsidy = 625'000'000;

Ledger MakeLedger(uint64_t maturity = 0) {
  LedgerOptions opts;
  opts.block_subsidy = kSubsidy;
  opts.coinbase_maturity = maturity;
  return Ledger(opts);
}

TEST(TypesTest, FormatAddressDeterministicAndDistinct) {
  EXPECT_EQ(FormatAddress(1), FormatAddress(1));
  EXPECT_NE(FormatAddress(1), FormatAddress(2));
  const std::string s = FormatAddress(12345);
  EXPECT_EQ(s.size(), 27u);
  EXPECT_EQ(s[0], '1');
}

TEST(TypesTest, OutPointKeyRoundTrips) {
  OutPoint a{7, 13};
  OutPoint b{7, 14};
  EXPECT_NE(a.Key(), b.Key());
  EXPECT_EQ(a.Key() >> 20, 7u);
  EXPECT_EQ(a.Key() & 0xFFFFF, 13u);
}

TEST(TransactionTest, FeeIsInMinusOut) {
  Transaction tx;
  tx.inputs.push_back({OutPoint{0, 0}, 1, 1000});
  tx.inputs.push_back({OutPoint{0, 1}, 2, 500});
  tx.outputs.push_back({3, 1200});
  EXPECT_EQ(tx.InputValue(), 1500);
  EXPECT_EQ(tx.OutputValue(), 1200);
  EXPECT_EQ(tx.Fee(), 300);
}

TEST(LedgerTest, CoinbaseMintsSubsidy) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  ASSERT_TRUE(ledger.ApplyCoinbase(100, a).ok());
  ASSERT_TRUE(ledger.SealBlock(100).ok());
  EXPECT_EQ(ledger.BalanceOf(a), kSubsidy);
  EXPECT_EQ(ledger.total_minted(), kSubsidy);
  EXPECT_TRUE(ledger.CheckConservation().ok());
}

TEST(LedgerTest, SecondCoinbaseInSameBlockRejected) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  ASSERT_TRUE(ledger.ApplyCoinbase(100, a).ok());
  EXPECT_EQ(ledger.ApplyCoinbase(100, a).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(LedgerTest, SplitCoinbasePayoutsConserveSubsidy) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  const AddressId b = ledger.NewAddress();
  const AddressId c = ledger.NewAddress();
  ASSERT_TRUE(
      ledger.ApplyCoinbase(1, {a, b, c}, {0.5, 0.3, 0.2}).ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  EXPECT_EQ(ledger.BalanceOf(a) + ledger.BalanceOf(b) + ledger.BalanceOf(c),
            kSubsidy);
  EXPECT_NEAR(static_cast<double>(ledger.BalanceOf(a)),
              0.5 * kSubsidy, 2.0);
}

// Property test for the largest-remainder payout split: over random
// weight vectors, the minted outputs must sum to exactly the subsidy
// (no drift, no lost satoshis) and each payout must sit within one
// satoshi of its real-valued quota.
TEST(LedgerTest, SplitCoinbasePayoutsAreExactUnderRandomWeights) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    Ledger ledger = MakeLedger();
    const int n = static_cast<int>(rng.UniformInt(1, 8));
    std::vector<AddressId> payouts;
    std::vector<double> weights;
    double weight_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      payouts.push_back(ledger.NewAddress());
      // Skewed magnitudes stress the fractional-part ordering.
      weights.push_back(rng.Uniform(0.0, rng.Bernoulli(0.3) ? 1e-6 : 1.0));
      weight_sum += weights.back();
    }
    if (weight_sum <= 0.0) continue;  // all-zero draw: nothing to split
    auto cb = ledger.ApplyCoinbase(1, payouts, weights);
    ASSERT_TRUE(cb.ok()) << cb.status().message();
    ASSERT_TRUE(ledger.SealBlock(1).ok());

    const Transaction& tx = ledger.tx(cb.value());
    Amount total = 0;
    for (const auto& out : tx.outputs) total += out.value;
    ASSERT_EQ(total, kSubsidy) << "trial " << trial;
    ASSERT_EQ(ledger.total_minted(), kSubsidy);
    ASSERT_TRUE(ledger.CheckConservation().ok());

    // Each payout within 1 satoshi of its quota (largest-remainder
    // guarantee); an address's balance aggregates its repeated weights.
    std::vector<double> quota(static_cast<size_t>(n), 0.0);
    for (int i = 0; i < n; ++i) {
      quota[static_cast<size_t>(i)] =
          weights[static_cast<size_t>(i)] / weight_sum *
          static_cast<double>(kSubsidy);
    }
    std::vector<Amount> minted(static_cast<size_t>(n), 0);
    for (const auto& out : tx.outputs) {
      minted[static_cast<size_t>(out.address)] += out.value;
    }
    std::vector<double> quota_of_addr(static_cast<size_t>(n), 0.0);
    for (int i = 0; i < n; ++i) {
      quota_of_addr[static_cast<size_t>(payouts[static_cast<size_t>(i)])] +=
          quota[static_cast<size_t>(i)];
    }
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(static_cast<double>(minted[static_cast<size_t>(i)]),
                  quota_of_addr[static_cast<size_t>(i)], 1.0)
          << "trial " << trial << " address " << i;
    }
  }
}

TEST(LedgerTest, CoinbaseRejectsNonFiniteAndNegativeWeights) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  {
    Ledger ledger = MakeLedger();
    const AddressId a = ledger.NewAddress();
    const AddressId b = ledger.NewAddress();
    EXPECT_EQ(ledger.ApplyCoinbase(1, {a, b}, {0.5, nan}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(ledger.ApplyCoinbase(1, {a, b}, {inf, 1.0}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(ledger.ApplyCoinbase(1, {a, b}, {0.5, -0.1}).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(ledger.ApplyCoinbase(1, {a, b}, {0.0, 0.0}).status().code(),
              StatusCode::kInvalidArgument);
    // A rejected split leaves nothing behind: the valid retry works.
    EXPECT_TRUE(ledger.ApplyCoinbase(1, {a, b}, {0.5, 0.5}).ok());
    EXPECT_TRUE(ledger.SealBlock(1).ok());
    EXPECT_EQ(ledger.BalanceOf(a) + ledger.BalanceOf(b), kSubsidy);
  }
}

TEST(LedgerTest, CoinbaseToUnknownAddressFails) {
  Ledger ledger = MakeLedger();
  EXPECT_EQ(ledger.ApplyCoinbase(1, 99).status().code(),
            StatusCode::kNotFound);
}

TEST(LedgerTest, SpendRequiresExistingUnspentOutput) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  const AddressId b = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, a);
  ASSERT_TRUE(cb.ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());

  TxDraft draft;
  draft.timestamp = 2;
  draft.inputs = {OutPoint{cb.value(), 0}};
  draft.outputs = {{b, kSubsidy}};
  ASSERT_TRUE(ledger.ApplyTransaction(draft).ok());
  // Double spend of the same outpoint must fail.
  EXPECT_EQ(ledger.ApplyTransaction(draft).status().code(),
            StatusCode::kNotFound);
}

TEST(LedgerTest, DuplicateInputWithinDraftRejected) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, a);
  ASSERT_TRUE(cb.ok());
  TxDraft draft;
  draft.timestamp = 1;
  draft.inputs = {OutPoint{cb.value(), 0}, OutPoint{cb.value(), 0}};
  draft.outputs = {{a, kSubsidy}};
  EXPECT_EQ(ledger.ApplyTransaction(draft).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LedgerTest, OutputsCannotExceedInputs) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, a);
  ASSERT_TRUE(cb.ok());
  TxDraft draft;
  draft.timestamp = 1;
  draft.inputs = {OutPoint{cb.value(), 0}};
  draft.outputs = {{a, kSubsidy + 1}};
  EXPECT_EQ(ledger.ApplyTransaction(draft).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LedgerTest, NonPositiveOutputRejected) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, a);
  ASSERT_TRUE(cb.ok());
  TxDraft draft;
  draft.timestamp = 1;
  draft.inputs = {OutPoint{cb.value(), 0}};
  draft.outputs = {{a, 0}};
  EXPECT_FALSE(ledger.ApplyTransaction(draft).ok());
}

TEST(LedgerTest, EmptyDraftRejected) {
  Ledger ledger = MakeLedger();
  TxDraft draft;
  draft.timestamp = 1;
  EXPECT_FALSE(ledger.ApplyTransaction(draft).ok());
}

TEST(LedgerTest, CoinbaseMaturityEnforced) {
  Ledger ledger = MakeLedger(/*maturity=*/2);
  const AddressId a = ledger.NewAddress();
  const AddressId b = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, a);
  ASSERT_TRUE(cb.ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());

  TxDraft draft;
  draft.timestamp = 2;
  draft.inputs = {OutPoint{cb.value(), 0}};
  draft.outputs = {{b, kSubsidy}};
  // Height 1 < confirmed(0) + maturity(2): immature.
  EXPECT_EQ(ledger.ApplyTransaction(draft).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ledger.BalanceOf(a), 0);  // immature balance hidden
  ASSERT_TRUE(ledger.SealBlock(3).ok());
  EXPECT_EQ(ledger.BalanceOf(a), kSubsidy);
  EXPECT_TRUE(ledger.ApplyTransaction(draft).ok());
}

TEST(LedgerTest, FeesAreBurnedAndTracked) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  const AddressId b = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, a);
  ASSERT_TRUE(cb.ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  TxDraft draft;
  draft.timestamp = 2;
  draft.inputs = {OutPoint{cb.value(), 0}};
  draft.outputs = {{b, kSubsidy - 5000}};
  ASSERT_TRUE(ledger.ApplyTransaction(draft).ok());
  EXPECT_EQ(ledger.total_fees(), 5000);
  EXPECT_TRUE(ledger.CheckConservation().ok());
}

TEST(LedgerTest, BlockTimestampsMustBeMonotone) {
  Ledger ledger = MakeLedger();
  ASSERT_TRUE(ledger.SealBlock(100).ok());
  EXPECT_FALSE(ledger.SealBlock(99).ok());
  EXPECT_TRUE(ledger.SealBlock(100).ok());
}

TEST(LedgerTest, AddressIndexListsTouchingTransactionsOnce) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, a);
  ASSERT_TRUE(cb.ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  // Self-payment: a appears as input and output, but indexed once.
  TxDraft draft;
  draft.timestamp = 2;
  draft.inputs = {OutPoint{cb.value(), 0}};
  draft.outputs = {{a, kSubsidy / 2}, {a, kSubsidy / 2}};
  ASSERT_TRUE(ledger.ApplyTransaction(draft).ok());
  EXPECT_EQ(ledger.TransactionsOf(a).size(), 2u);
}

TEST(WalletTest, ChangeGoesToFreshAddressByDefault) {
  Ledger ledger = MakeLedger();
  Wallet wallet(&ledger);
  const AddressId a = wallet.CreateAddress();
  ASSERT_TRUE(ledger.ApplyCoinbase(1, a).ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());

  Wallet payee(&ledger);
  const AddressId dest = payee.CreateAddress();
  const size_t addresses_before = wallet.addresses().size();
  auto tx = wallet.Send(2, {{dest, kSubsidy / 4}}, 1000,
                        ChangePolicy::kFreshAddress);
  ASSERT_TRUE(tx.ok());
  // A fresh change address was created and holds the remainder.
  EXPECT_EQ(wallet.addresses().size(), addresses_before + 1);
  const AddressId change = wallet.last_change_address();
  EXPECT_NE(change, a);
  EXPECT_EQ(ledger.BalanceOf(change), kSubsidy - kSubsidy / 4 - 1000);
  // Original address is fully drained (the "zero off" of §II-A).
  EXPECT_EQ(ledger.BalanceOf(a), 0);
}

TEST(WalletTest, ReuseSourceChangePolicyKeepsAddressStable) {
  Ledger ledger = MakeLedger();
  Wallet wallet(&ledger);
  const AddressId a = wallet.CreateAddress();
  ASSERT_TRUE(ledger.ApplyCoinbase(1, a).ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());

  Wallet payee(&ledger);
  const AddressId dest = payee.CreateAddress();
  ASSERT_TRUE(
      wallet.Send(2, {{dest, kSubsidy / 4}}, 0, ChangePolicy::kReuseSource)
          .ok());
  EXPECT_EQ(wallet.addresses().size(), 1u);
  EXPECT_EQ(ledger.BalanceOf(a), kSubsidy - kSubsidy / 4);
}

TEST(WalletTest, InsufficientFundsFailsCleanly) {
  Ledger ledger = MakeLedger();
  Wallet wallet(&ledger);
  wallet.CreateAddress();
  Wallet payee(&ledger);
  const AddressId dest = payee.CreateAddress();
  auto r = wallet.Send(1, {{dest, 1000}}, 0);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WalletTest, SendSpansMultipleUtxos) {
  Ledger ledger = MakeLedger();
  Wallet wallet(&ledger);
  const AddressId a = wallet.CreateAddress();
  ASSERT_TRUE(ledger.ApplyCoinbase(1, a).ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  ASSERT_TRUE(ledger.ApplyCoinbase(2, a).ok());
  ASSERT_TRUE(ledger.SealBlock(2).ok());
  Wallet payee(&ledger);
  const AddressId dest = payee.CreateAddress();
  // Needs both coinbase outputs.
  ASSERT_TRUE(
      wallet
          .Send(3, {{dest, kSubsidy + kSubsidy / 2}}, 0,
                ChangePolicy::kReuseSource)
          .ok());
  EXPECT_EQ(ledger.BalanceOf(dest), kSubsidy + kSubsidy / 2);
  EXPECT_TRUE(ledger.CheckConservation().ok());
}

TEST(WalletTest, SweepMovesEntireBalanceMinusFee) {
  Ledger ledger = MakeLedger();
  Wallet wallet(&ledger);
  const AddressId a = wallet.CreateAddress();
  const AddressId b = wallet.CreateAddress();
  ASSERT_TRUE(ledger.ApplyCoinbase(1, a).ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  ASSERT_TRUE(ledger.ApplyCoinbase(2, b).ok());
  ASSERT_TRUE(ledger.SealBlock(2).ok());

  Wallet vault(&ledger);
  const AddressId cold = vault.CreateAddress();
  ASSERT_TRUE(wallet.SweepTo(3, cold, 700).ok());
  EXPECT_EQ(wallet.Balance(), 0);
  EXPECT_EQ(ledger.BalanceOf(cold), 2 * kSubsidy - 700);
}

TEST(WalletTest, OldestFirstSelectionSpendsEarliestUtxo) {
  Ledger ledger = MakeLedger();
  Wallet wallet(&ledger);
  const AddressId a = wallet.CreateAddress();
  auto cb1 = ledger.ApplyCoinbase(1, a);
  ASSERT_TRUE(cb1.ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  auto cb2 = ledger.ApplyCoinbase(2, a);
  ASSERT_TRUE(cb2.ok());
  ASSERT_TRUE(ledger.SealBlock(2).ok());

  Wallet payee(&ledger);
  const AddressId dest = payee.CreateAddress();
  auto tx = wallet.Send(3, {{dest, kSubsidy / 10}}, 0,
                        ChangePolicy::kReuseSource,
                        CoinSelection::kOldestFirst);
  ASSERT_TRUE(tx.ok());
  EXPECT_EQ(ledger.tx(tx.value()).inputs[0].prevout.txid, cb1.value());
}

// Property: a randomized workload of valid sends never breaks
// conservation and never creates money.
TEST(LedgerPropertyTest, RandomWorkloadConservesValue) {
  Rng rng(2024);
  Ledger ledger = MakeLedger();
  std::vector<Wallet> wallets;
  for (int i = 0; i < 6; ++i) {
    wallets.emplace_back(&ledger);
    wallets.back().CreateAddress();
  }
  for (int block = 0; block < 40; ++block) {
    const size_t miner = rng.UniformInt(wallets.size());
    ASSERT_TRUE(
        ledger.ApplyCoinbase(block * 600, wallets[miner].addresses()[0]).ok());
    for (int t = 0; t < 5; ++t) {
      Wallet& from = wallets[rng.UniformInt(wallets.size())];
      Wallet& to = wallets[rng.UniformInt(wallets.size())];
      const Amount balance = from.Balance();
      if (balance < 10'000) continue;
      const Amount v = 1 + static_cast<Amount>(rng.UniformInt(
                               static_cast<uint64_t>(balance / 2)));
      auto r = from.Send(block * 600 + t, {{to.addresses()[0], v}}, 100,
                         rng.Bernoulli(0.5) ? ChangePolicy::kFreshAddress
                                            : ChangePolicy::kReuseSource);
      // May fail only for insufficient funds (fee inclusive).
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
      }
    }
    ASSERT_TRUE(ledger.SealBlock(block * 600).ok());
    ASSERT_TRUE(ledger.CheckConservation().ok());
  }
  Amount wallet_total = 0;
  for (auto& w : wallets) wallet_total += w.Balance();
  EXPECT_EQ(wallet_total, ledger.total_minted() - ledger.total_fees());
}

}  // namespace
}  // namespace ba::chain
