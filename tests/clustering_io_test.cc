// Tests for the address-clustering heuristics (src/chain/clustering)
// and the CSV ledger / label round-trip (src/chain/io, datagen I/O).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "chain/clustering.h"
#include "chain/io.h"
#include "chain/ledger.h"
#include "chain/wallet.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "util/fs.h"

namespace ba::chain {
namespace {

constexpr Amount kCoin = 100'000'000;

/// Temp-file helper that cleans up after itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/ba_test_" + name + "_" +
              std::to_string(::getpid())) {}
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string Slurp(const std::string& path) {
  auto r = util::ReadFileToString(path);
  EXPECT_TRUE(r.ok());
  return r.ValueOr("");
}

void Spew(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

/// A tiny two-block ledger (one coinbase, one spend) for I/O tests.
Ledger TinyLedger() {
  Ledger ledger(LedgerOptions{.block_subsidy = 10 * kCoin});
  const AddressId a = ledger.NewAddress();
  const AddressId b = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, a);
  BA_CHECK(cb.ok());
  BA_CHECK(ledger.SealBlock(1).ok());
  TxDraft draft;
  draft.timestamp = 2;
  draft.inputs = {OutPoint{cb.value(), 0}};
  draft.outputs = {{b, 10 * kCoin}};
  BA_CHECK(ledger.ApplyTransaction(draft).ok());
  BA_CHECK(ledger.SealBlock(2).ok());
  return ledger;
}

TEST(AddressClustererTest, UnionFindBasics) {
  AddressClusterer c(5);
  EXPECT_EQ(c.NumClusters(), 5u);
  EXPECT_FALSE(c.SameCluster(0, 1));
  c.Union(0, 1);
  c.Union(3, 4);
  EXPECT_TRUE(c.SameCluster(0, 1));
  EXPECT_TRUE(c.SameCluster(3, 4));
  EXPECT_FALSE(c.SameCluster(1, 3));
  EXPECT_EQ(c.NumClusters(), 3u);
  c.Union(1, 4);
  EXPECT_TRUE(c.SameCluster(0, 3));
  EXPECT_EQ(c.NumClusters(), 2u);
}

TEST(AddressClustererTest, ClustersSortedBySize) {
  AddressClusterer c(6);
  c.Union(0, 1);
  c.Union(1, 2);
  c.Union(3, 4);
  const auto clusters = c.Clusters(2);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size(), 3u);
  EXPECT_EQ(clusters[1].size(), 2u);
}

TEST(AddressClustererTest, CommonInputHeuristicMergesCoSpenders) {
  Ledger ledger(LedgerOptions{.block_subsidy = 10 * kCoin});
  const AddressId a = ledger.NewAddress();
  const AddressId b = ledger.NewAddress();
  const AddressId dest = ledger.NewAddress();
  auto cb1 = ledger.ApplyCoinbase(1, a);
  ASSERT_TRUE(cb1.ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  auto cb2 = ledger.ApplyCoinbase(2, b);
  ASSERT_TRUE(cb2.ok());
  ASSERT_TRUE(ledger.SealBlock(2).ok());
  // a and b co-sign one transaction.
  TxDraft draft;
  draft.timestamp = 3;
  draft.inputs = {OutPoint{cb1.value(), 0}, OutPoint{cb2.value(), 0}};
  draft.outputs = {{dest, 20 * kCoin}};
  ASSERT_TRUE(ledger.ApplyTransaction(draft).ok());
  ASSERT_TRUE(ledger.SealBlock(3).ok());

  const auto clusterer = AddressClusterer::FromLedger(ledger);
  EXPECT_TRUE(clusterer.SameCluster(a, b));
  EXPECT_FALSE(clusterer.SameCluster(a, dest));
}

TEST(AddressClustererTest, ChangeHeuristicLinksFreshChange) {
  Ledger ledger(LedgerOptions{.block_subsidy = 10 * kCoin});
  const AddressId payer = ledger.NewAddress();
  const AddressId payee = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, payer);
  ASSERT_TRUE(cb.ok());
  // Make payee "seen" before the spend.
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  auto cb2 = ledger.ApplyCoinbase(2, payee);
  ASSERT_TRUE(cb2.ok());
  ASSERT_TRUE(ledger.SealBlock(2).ok());
  // Spend with a brand-new change output.
  const AddressId change = ledger.NewAddress();
  TxDraft draft;
  draft.timestamp = 3;
  draft.inputs = {OutPoint{cb.value(), 0}};
  draft.outputs = {{payee, 4 * kCoin}, {change, 6 * kCoin}};
  ASSERT_TRUE(ledger.ApplyTransaction(draft).ok());
  ASSERT_TRUE(ledger.SealBlock(3).ok());

  AddressClusterer::Options with_change;
  with_change.change_heuristic = true;
  const auto on = AddressClusterer::FromLedger(ledger, with_change);
  EXPECT_TRUE(on.SameCluster(payer, change));
  EXPECT_FALSE(on.SameCluster(payer, payee));

  const auto off = AddressClusterer::FromLedger(ledger);
  EXPECT_FALSE(off.SameCluster(payer, change));
}

TEST(AddressClustererTest, ChangeHeuristicSkipsAmbiguousOutputs) {
  // Both outputs fresh => ambiguous, no merge.
  Ledger ledger(LedgerOptions{.block_subsidy = 10 * kCoin});
  const AddressId payer = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, payer);
  ASSERT_TRUE(cb.ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  const AddressId out1 = ledger.NewAddress();
  const AddressId out2 = ledger.NewAddress();
  TxDraft draft;
  draft.timestamp = 2;
  draft.inputs = {OutPoint{cb.value(), 0}};
  draft.outputs = {{out1, 4 * kCoin}, {out2, 6 * kCoin}};
  ASSERT_TRUE(ledger.ApplyTransaction(draft).ok());
  ASSERT_TRUE(ledger.SealBlock(2).ok());

  AddressClusterer::Options with_change;
  with_change.change_heuristic = true;
  const auto clusterer = AddressClusterer::FromLedger(ledger, with_change);
  EXPECT_FALSE(clusterer.SameCluster(payer, out1));
  EXPECT_FALSE(clusterer.SameCluster(payer, out2));
}

TEST(AddressClustererTest, WalletSpendsClusterOwnAddresses) {
  // A wallet paying from several of its UTXOs links its addresses via
  // the common-input heuristic — the real-world basis of the method.
  Ledger ledger(LedgerOptions{.block_subsidy = 10 * kCoin});
  Wallet wallet(&ledger);
  const AddressId a1 = wallet.CreateAddress();
  const AddressId a2 = wallet.CreateAddress();
  ASSERT_TRUE(ledger.ApplyCoinbase(1, a1).ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  ASSERT_TRUE(ledger.ApplyCoinbase(2, a2).ok());
  ASSERT_TRUE(ledger.SealBlock(2).ok());
  Wallet payee(&ledger);
  const AddressId dest = payee.CreateAddress();
  ASSERT_TRUE(
      wallet.Send(3, {{dest, 15 * kCoin}}, 1000, ChangePolicy::kReuseSource)
          .ok());
  ASSERT_TRUE(ledger.SealBlock(3).ok());
  const auto clusterer = AddressClusterer::FromLedger(ledger);
  EXPECT_TRUE(clusterer.SameCluster(a1, a2));
}

TEST(LedgerIoTest, RoundTripPreservesEverything) {
  datagen::ScenarioConfig config;
  config.seed = 31;
  config.num_blocks = 60;
  config.num_retail_users = 30;
  config.miners_per_pool = 10;
  config.gamblers_per_house = 5;
  datagen::Simulator simulator(config);
  ASSERT_TRUE(simulator.Run().ok());
  const Ledger& original = simulator.ledger();

  TempFile file("ledger_roundtrip");
  ASSERT_TRUE(ExportLedgerCsv(original, file.path()).ok());
  auto imported = ImportLedgerCsv(file.path());
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  const Ledger& copy = imported.value();

  EXPECT_EQ(copy.num_transactions(), original.num_transactions());
  EXPECT_EQ(copy.num_addresses(), original.num_addresses());
  EXPECT_EQ(copy.height(), original.height());
  EXPECT_EQ(copy.total_minted(), original.total_minted());
  EXPECT_EQ(copy.total_fees(), original.total_fees());
  EXPECT_TRUE(copy.CheckConservation().ok());
  // Spot-check transactions and per-address balances.
  for (TxId id = 0; id < 20 && id < copy.num_transactions(); ++id) {
    const Transaction& a = original.tx(id);
    const Transaction& b = copy.tx(id);
    EXPECT_EQ(a.timestamp, b.timestamp);
    EXPECT_EQ(a.coinbase, b.coinbase);
    EXPECT_EQ(a.outputs.size(), b.outputs.size());
    EXPECT_EQ(a.InputValue(), b.InputValue());
    EXPECT_EQ(a.OutputValue(), b.OutputValue());
  }
  for (AddressId a = 0; a < 50 && a < original.num_addresses(); ++a) {
    EXPECT_EQ(copy.BalanceOf(a), original.BalanceOf(a)) << "address " << a;
  }
}

TEST(LedgerIoTest, ImportRejectsGarbage) {
  TempFile file("ledger_garbage");
  {
    std::ofstream out(file.path());
    out << "not a ledger\n";
  }
  EXPECT_FALSE(ImportLedgerCsv(file.path()).ok());
  EXPECT_EQ(ImportLedgerCsv("/nonexistent/path.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(LedgerIoTest, ImportRejectsTamperedValues) {
  Ledger ledger(LedgerOptions{.block_subsidy = 10 * kCoin});
  const AddressId a = ledger.NewAddress();
  const AddressId b = ledger.NewAddress();
  auto cb = ledger.ApplyCoinbase(1, a);
  ASSERT_TRUE(cb.ok());
  ASSERT_TRUE(ledger.SealBlock(1).ok());
  TxDraft draft;
  draft.timestamp = 2;
  draft.inputs = {OutPoint{cb.value(), 0}};
  draft.outputs = {{b, 10 * kCoin}};
  ASSERT_TRUE(ledger.ApplyTransaction(draft).ok());
  ASSERT_TRUE(ledger.SealBlock(2).ok());

  TempFile file("ledger_tampered");
  ASSERT_TRUE(ExportLedgerCsv(ledger, file.path()).ok());
  // Inflate the spend's output beyond its input: validation must fail.
  std::string text;
  {
    std::ifstream in(file.path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("T,", 0) == 0) {
        const auto pos = line.rfind("1000000000");
        ASSERT_NE(pos, std::string::npos);
        line.replace(pos, 10, "9000000000");
      }
      text += line + "\n";
    }
  }
  {
    std::ofstream out(file.path());
    out << text;
  }
  EXPECT_FALSE(ImportLedgerCsv(file.path()).ok());
}

TEST(LedgerIoTest, ExportWritesV2HeaderAndCrcTrailer) {
  TempFile file("ledger_format");
  ASSERT_TRUE(ExportLedgerCsv(TinyLedger(), file.path()).ok());
  const std::string text = Slurp(file.path());
  EXPECT_EQ(text.rfind("# ba-ledger v2,", 0), 0u);
  // Last line is the CRC trailer.
  const auto last_nl = text.rfind('\n', text.size() - 2);
  EXPECT_EQ(text.compare(last_nl + 1, 8, "# crc32,"), 0);
}

TEST(LedgerIoTest, EverySingleByteFlipIsDetected) {
  TempFile file("ledger_flip");
  ASSERT_TRUE(ExportLedgerCsv(TinyLedger(), file.path()).ok());
  const std::string good = Slurp(file.path());
  ASSERT_GT(good.size(), 40u);
  TempFile bad_file("ledger_flip_bad");
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    Spew(bad_file.path(), bad);
    EXPECT_FALSE(ImportLedgerCsv(bad_file.path()).ok())
        << "flip at byte " << i << " imported silently";
  }
}

TEST(LedgerIoTest, MissingTrailerReportsTruncation) {
  TempFile file("ledger_trunc");
  ASSERT_TRUE(ExportLedgerCsv(TinyLedger(), file.path()).ok());
  std::string text = Slurp(file.path());
  // Drop the trailer line: a v2 file without it is a truncated file.
  const auto last_nl = text.rfind('\n', text.size() - 2);
  text.resize(last_nl + 1);
  Spew(file.path(), text);
  const auto imported = ImportLedgerCsv(file.path());
  ASSERT_FALSE(imported.ok());
  EXPECT_NE(imported.status().message().find("missing crc32 trailer"),
            std::string::npos)
      << imported.status().ToString();
}

TEST(LedgerIoTest, BadHeaderNamesLineOne) {
  TempFile file("ledger_bad_header");
  Spew(file.path(), "totally,not,a,ledger\nB,1,100\n");
  const auto imported = ImportLedgerCsv(file.path());
  ASSERT_FALSE(imported.ok());
  EXPECT_NE(imported.status().message().find("line 1:"), std::string::npos)
      << imported.status().ToString();
}

TEST(LedgerIoTest, GarbageLineNamesItsLineNumber) {
  // Legacy v1 content (no trailer required) with a garbage third line.
  TempFile file("ledger_garbage_line");
  Spew(file.path(),
       "# ba-ledger v1,1000000000,2\n"
       "B,1,100\n"
       "Z,this is not a record\n");
  const auto imported = ImportLedgerCsv(file.path());
  ASSERT_FALSE(imported.ok());
  EXPECT_NE(imported.status().message().find("line 3:"), std::string::npos)
      << imported.status().ToString();
  EXPECT_NE(imported.status().message().find("unknown record kind"),
            std::string::npos);
}

TEST(LedgerIoTest, ConservationViolationNamesItsLineNumber) {
  // The spend on line 5 emits twice its input value.
  TempFile file("ledger_conservation");
  Spew(file.path(),
       "# ba-ledger v1,1000000000,2\n"
       "B,1,100\n"
       "C,100,0:1000000000\n"
       "B,2,200\n"
       "T,200,0:0,1:2000000000\n");
  const auto imported = ImportLedgerCsv(file.path());
  ASSERT_FALSE(imported.ok());
  EXPECT_NE(imported.status().message().find("line 5:"), std::string::npos)
      << imported.status().ToString();
}

TEST(LedgerIoTest, LegacyV1WithoutTrailerStillImports) {
  TempFile file("ledger_v1");
  Spew(file.path(),
       "# ba-ledger v1,1000000000,2\n"
       "B,1,100\n"
       "C,100,0:1000000000\n"
       "B,2,200\n"
       "T,200,0:0,1:1000000000\n");
  const auto imported = ImportLedgerCsv(file.path());
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->num_transactions(), 2u);
  EXPECT_EQ(imported->BalanceOf(1), 1000000000);
}

TEST(LedgerIoTest, ExportIsAtomicUnderFaultInjection) {
  const Ledger ledger = TinyLedger();
  TempFile file("ledger_atomic");
  ASSERT_TRUE(ExportLedgerCsv(ledger, file.path()).ok());
  const std::string before = Slurp(file.path());
  for (const std::string& point : util::AtomicFileWriter::FaultPoints()) {
    util::FaultInjector::Instance().Arm(point);
    EXPECT_FALSE(ExportLedgerCsv(ledger, file.path()).ok());
    util::FaultInjector::Instance().DisarmAll();
    EXPECT_EQ(Slurp(file.path()), before) << "torn by fault at " << point;
    ASSERT_TRUE(ImportLedgerCsv(file.path()).ok());
  }
}

TEST(LabelsIoTest, RoundTrip) {
  std::vector<datagen::LabeledAddress> labels{
      {1, datagen::BehaviorLabel::kExchange},
      {7, datagen::BehaviorLabel::kMining},
      {9, datagen::BehaviorLabel::kService}};
  TempFile file("labels_roundtrip");
  ASSERT_TRUE(datagen::ExportLabelsCsv(labels, file.path()).ok());
  auto imported = datagen::ImportLabelsCsv(file.path());
  ASSERT_TRUE(imported.ok());
  ASSERT_EQ(imported->size(), labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ((*imported)[i].address, labels[i].address);
    EXPECT_EQ((*imported)[i].label, labels[i].label);
  }
}

TEST(LabelsIoTest, RejectsUnknownLabel) {
  TempFile file("labels_bad");
  {
    std::ofstream out(file.path());
    out << "address,label\n42,Casino\n";
  }
  auto imported = datagen::ImportLabelsCsv(file.path());
  EXPECT_FALSE(imported.ok());
}

TEST(LabelsIoTest, EverySingleByteFlipIsDetected) {
  std::vector<datagen::LabeledAddress> labels{
      {1, datagen::BehaviorLabel::kExchange},
      {7, datagen::BehaviorLabel::kMining}};
  TempFile file("labels_flip");
  ASSERT_TRUE(datagen::ExportLabelsCsv(labels, file.path()).ok());
  const std::string good = Slurp(file.path());
  TempFile bad_file("labels_flip_bad");
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    Spew(bad_file.path(), bad);
    EXPECT_FALSE(datagen::ImportLabelsCsv(bad_file.path()).ok())
        << "flip at byte " << i << " imported silently";
  }
}

TEST(LabelsIoTest, ContentAfterTrailerRejected) {
  std::vector<datagen::LabeledAddress> labels{
      {1, datagen::BehaviorLabel::kExchange}};
  TempFile file("labels_after_trailer");
  ASSERT_TRUE(datagen::ExportLabelsCsv(labels, file.path()).ok());
  std::string text = Slurp(file.path());
  text += "9,Mining\n";
  Spew(file.path(), text);
  const auto imported = datagen::ImportLabelsCsv(file.path());
  ASSERT_FALSE(imported.ok());
  EXPECT_NE(imported.status().message().find("content after crc32 trailer"),
            std::string::npos)
      << imported.status().ToString();
}

TEST(LabelsIoTest, CrcMismatchNamesTrailerLine) {
  std::vector<datagen::LabeledAddress> labels{
      {1, datagen::BehaviorLabel::kExchange},
      {2, datagen::BehaviorLabel::kGambling}};
  TempFile file("labels_crc_line");
  ASSERT_TRUE(datagen::ExportLabelsCsv(labels, file.path()).ok());
  std::string text = Slurp(file.path());
  // Tamper a body value without touching the trailer.
  const auto pos = text.find("2,Gambling");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = '3';
  Spew(file.path(), text);
  const auto imported = datagen::ImportLabelsCsv(file.path());
  ASSERT_FALSE(imported.ok());
  EXPECT_NE(imported.status().message().find("crc32 mismatch"),
            std::string::npos)
      << imported.status().ToString();
  EXPECT_NE(imported.status().message().find("line 4:"), std::string::npos);
}

}  // namespace
}  // namespace ba::chain
