// Integration tests: the full BAClassifier pipeline (Fig 2) on a small
// simulated economy — graph models, aggregators, flat features and the
// end-to-end facade.

#include <gtest/gtest.h>

#include <memory>

#include "core/aggregator.h"
#include "core/classifier.h"
#include "core/flat_features.h"
#include "core/graph_dataset.h"
#include "core/graph_model.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"

namespace ba::core {
namespace {

/// Shared fixture: one small economy, materialized once per suite.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 17;
    config.num_blocks = 150;
    config.num_mining_pools = 2;
    config.miners_per_pool = 20;
    config.num_exchanges = 2;
    config.num_gambling_houses = 2;
    config.gamblers_per_house = 10;
    config.num_services = 2;
    config.num_retail_users = 40;
    simulator_ = new datagen::Simulator(config);
    ASSERT_TRUE(simulator_->Run().ok());

    auto labeled = simulator_->CollectLabeledAddresses(3);
    Rng rng(1);
    labeled = datagen::StratifiedSample(labeled, 160, &rng);
    const auto split = datagen::StratifiedSplit(labeled, 0.8, &rng);

    GraphDatasetOptions opts;
    opts.construction.slice_size = 20;
    opts.k_hops = 2;
    GraphDatasetBuilder builder(opts);
    train_ = new std::vector<AddressSample>(
        builder.Build(simulator_->ledger(), split.train));
    test_ = new std::vector<AddressSample>(
        builder.Build(simulator_->ledger(), split.test));
    ASSERT_GT(train_->size(), 40u);
    ASSERT_GT(test_->size(), 10u);
  }

  static void TearDownTestSuite() {
    delete simulator_;
    delete train_;
    delete test_;
    simulator_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
  }

  static GraphModelOptions FastModelOptions(GraphEncoderKind kind) {
    GraphModelOptions o;
    o.encoder = kind;
    o.epochs = 6;
    o.hidden_dim = 32;
    o.embed_dim = 16;
    o.seed = 3;
    return o;
  }

  static datagen::Simulator* simulator_;
  static std::vector<AddressSample>* train_;
  static std::vector<AddressSample>* test_;
};

datagen::Simulator* PipelineTest::simulator_ = nullptr;
std::vector<AddressSample>* PipelineTest::train_ = nullptr;
std::vector<AddressSample>* PipelineTest::test_ = nullptr;

TEST_F(PipelineTest, SamplesHaveAlignedTensors) {
  for (const auto& s : *train_) {
    EXPECT_GE(s.label, 0);
    EXPECT_LT(s.label, datagen::kNumBehaviors);
    ASSERT_EQ(s.graphs.size(), s.tensors.size());
    for (size_t g = 0; g < s.graphs.size(); ++g) {
      EXPECT_EQ(s.tensors[g].base_features.dim(0), s.graphs[g].num_nodes());
      EXPECT_EQ(s.tensors[g].augmented.dim(1), AugmentedDim(2));
    }
  }
}

TEST_F(PipelineTest, GfnModelLearnsGraphLevelStructure) {
  GraphModel model(FastModelOptions(GraphEncoderKind::kGfn));
  std::vector<EpochStat> history;
  model.Train(*train_, test_, &history);
  ASSERT_EQ(history.size(), 6u);
  // Loss decreases and time accumulates monotonically.
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_GE(history[i].seconds, history[i - 1].seconds);
  }
  // Graph-level weighted F1 comfortably beats the 4-class chance level.
  EXPECT_GT(history.back().eval_f1, 0.5);
}

TEST_F(PipelineTest, GcnDiffPoolAndGatTrainToo) {
  for (auto kind : {GraphEncoderKind::kGcn, GraphEncoderKind::kDiffPool,
                    GraphEncoderKind::kGat}) {
    GraphModel model(FastModelOptions(kind));
    model.Train(*train_);
    const auto cm = model.EvaluateGraphLevel(*test_);
    EXPECT_GT(cm.Accuracy(), 0.4) << GraphEncoderName(kind);
  }
}

TEST_F(PipelineTest, EmbeddingsAreFiniteAndShaped) {
  GraphModel model(FastModelOptions(GraphEncoderKind::kGfn));
  model.Train(*train_);
  const auto sequences = BuildEmbeddingSequences(model, *test_);
  ASSERT_EQ(sequences.size(), test_->size());
  for (size_t i = 0; i < sequences.size(); ++i) {
    EXPECT_EQ(sequences[i].embeddings.dim(0), (*test_)[i].num_graphs());
    EXPECT_EQ(sequences[i].embeddings.dim(1), model.embed_dim());
    for (int64_t k = 0; k < sequences[i].embeddings.numel(); ++k) {
      EXPECT_TRUE(std::isfinite(sequences[i].embeddings.data()[k]));
    }
  }
}

TEST_F(PipelineTest, EmbeddingScalerNormalizes) {
  GraphModel model(FastModelOptions(GraphEncoderKind::kGfn));
  model.Train(*train_);
  auto sequences = BuildEmbeddingSequences(model, *train_);
  const EmbeddingScaler scaler = EmbeddingScaler::Fit(sequences);
  scaler.Apply(&sequences);
  // Post-scaling: global mean ~0, variance ~1 per dimension.
  const int64_t dim = sequences[0].embeddings.dim(1);
  for (int64_t c = 0; c < dim; ++c) {
    double sum = 0.0, sq = 0.0;
    int64_t rows = 0;
    for (const auto& s : sequences) {
      for (int64_t r = 0; r < s.embeddings.dim(0); ++r) {
        sum += s.embeddings.at(r, c);
        sq += static_cast<double>(s.embeddings.at(r, c)) *
              s.embeddings.at(r, c);
        ++rows;
      }
    }
    EXPECT_NEAR(sum / static_cast<double>(rows), 0.0, 1e-3);
    EXPECT_NEAR(sq / static_cast<double>(rows), 1.0, 1e-2);
  }
}

TEST_F(PipelineTest, EveryAggregatorTrainsAndPredicts) {
  GraphModel model(FastModelOptions(GraphEncoderKind::kGfn));
  model.Train(*train_);
  auto train_seq = BuildEmbeddingSequences(model, *train_);
  auto test_seq = BuildEmbeddingSequences(model, *test_);
  const EmbeddingScaler scaler = EmbeddingScaler::Fit(train_seq);
  scaler.Apply(&train_seq);
  scaler.Apply(&test_seq);

  auto kinds = AllAggregators();
  kinds.push_back(AggregatorKind::kSelfAttention);
  for (AggregatorKind kind : kinds) {
    AggregatorOptions opts;
    opts.kind = kind;
    opts.embed_dim = model.embed_dim();
    opts.epochs = 10;
    opts.seed = 5;
    AggregatorModel agg(opts);
    agg.Train(train_seq);
    const auto cm = agg.Evaluate(test_seq);
    EXPECT_GT(cm.Accuracy(), 0.4) << AggregatorName(kind);
  }
}

TEST_F(PipelineTest, AggregatorHistoryRecordsEpochs) {
  GraphModel model(FastModelOptions(GraphEncoderKind::kGfn));
  model.Train(*train_);
  auto train_seq = BuildEmbeddingSequences(model, *train_);
  auto test_seq = BuildEmbeddingSequences(model, *test_);
  const EmbeddingScaler scaler = EmbeddingScaler::Fit(train_seq);
  scaler.Apply(&train_seq);
  scaler.Apply(&test_seq);
  AggregatorOptions opts;
  opts.embed_dim = model.embed_dim();
  opts.epochs = 5;
  AggregatorModel agg(opts);
  std::vector<EpochStat> history;
  agg.Train(train_seq, &test_seq, &history);
  ASSERT_EQ(history.size(), 5u);
  EXPECT_GE(history.back().eval_f1, 0.0);
  EXPECT_GT(history.back().seconds, 0.0);
}

TEST_F(PipelineTest, EndToEndFacadeBeatsChance) {
  BaClassifier::Options opts;
  opts.dataset.construction.slice_size = 20;
  opts.graph_model.epochs = 6;
  opts.graph_model.hidden_dim = 32;
  opts.graph_model.embed_dim = 16;
  opts.aggregator.epochs = 12;
  BaClassifier clf(opts);
  ASSERT_TRUE(clf.TrainOnSamples(*train_).ok());
  metrics::ConfusionMatrix cm(opts.graph_model.num_classes);
  ASSERT_TRUE(clf.EvaluateSamples(*test_, &cm).ok());
  // Four balanced-ish classes: chance ~0.3; the pipeline must clear it.
  EXPECT_GT(cm.Accuracy(), 0.5);
  EXPECT_GT(cm.WeightedAverage().f1, 0.5);
}

TEST_F(PipelineTest, FacadeRejectsEmptyTraining) {
  BaClassifier::Options opts;
  BaClassifier clf(opts);
  EXPECT_FALSE(clf.TrainOnSamples({}).ok());
}

TEST_F(PipelineTest, PredictSampleIsDeterministic) {
  BaClassifier::Options opts;
  opts.graph_model.epochs = 3;
  opts.aggregator.epochs = 5;
  BaClassifier clf(opts);
  ASSERT_TRUE(clf.TrainOnSamples(*train_).ok());
  const AddressSample& s = (*test_)[0];
  int first = -1, second = -1;
  ASSERT_TRUE(clf.PredictSample(s, &first).ok());
  ASSERT_TRUE(clf.PredictSample(s, &second).ok());
  EXPECT_EQ(first, second);
}

TEST_F(PipelineTest, GraphModelTrainingIsDeterministic) {
  GraphModelOptions opts = FastModelOptions(GraphEncoderKind::kGfn);
  opts.dropout = 0.1f;  // dropout draws come from the seeded model RNG
  GraphModel a(opts), b(opts);
  a.Train(*train_);
  b.Train(*train_);
  for (const auto& s : *test_) {
    for (const auto& gt : s.tensors) {
      EXPECT_EQ(a.PredictGraph(gt), b.PredictGraph(gt));
    }
  }
}

TEST_F(PipelineTest, GraphModelParametersExposedForCheckpointing) {
  for (auto kind : {GraphEncoderKind::kGfn, GraphEncoderKind::kGcn,
                    GraphEncoderKind::kDiffPool, GraphEncoderKind::kGat}) {
    GraphModel model(FastModelOptions(kind));
    const auto params = model.Parameters();
    EXPECT_FALSE(params.empty()) << GraphEncoderName(kind);
    int64_t count = 0;
    for (const auto& p : params) count += p->value.numel();
    EXPECT_EQ(count, model.NumParameters()) << GraphEncoderName(kind);
  }
}

TEST_F(PipelineTest, FlatFeaturesWellFormed) {
  const auto matrix = FlatFeatureMatrix(*train_);
  ASSERT_EQ(matrix.size(), train_->size());
  for (const auto& row : matrix) {
    ASSERT_EQ(static_cast<int64_t>(row.size()), kFlatFeatureDim);
    for (float v : row) EXPECT_TRUE(std::isfinite(v));
  }
  // Rows differ across samples (features carry signal).
  EXPECT_NE(matrix[0], matrix[1]);
}

TEST_F(PipelineTest, GraphEncoderNamesStable) {
  EXPECT_STREQ(GraphEncoderName(GraphEncoderKind::kGfn), "GFN");
  EXPECT_STREQ(GraphEncoderName(GraphEncoderKind::kGcn), "GCN");
  EXPECT_STREQ(GraphEncoderName(GraphEncoderKind::kDiffPool), "DiffPool");
  EXPECT_STREQ(GraphEncoderName(GraphEncoderKind::kGat), "GAT");
  EXPECT_STREQ(AggregatorName(AggregatorKind::kLstm), "LSTM+MLP");
  EXPECT_EQ(AllAggregators().size(), 6u);
}

}  // namespace
}  // namespace ba::core
