// Wire protocol tests: round trips for every versioned serving type,
// the relative-budget deadline encoding, and a fuzz-ish suite against
// the frame decoder — truncated frames, bad magic, wrong version,
// flipped CRC bits, oversized length claims, byte-at-a-time delivery.
// Every hostile input must yield a descriptive Status (and a sticky
// failed decoder), never a crash, hang, or silently-decoded garbage.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>

#include "serve/protocol.h"
#include "util/fs.h"
#include "util/status.h"

namespace ba {
namespace {

using serve::ClassifyOptions;
using serve::ClassifyRequest;
using serve::ClassifyResponse;
using serve::ClassifyResult;
using serve::EncodeFrame;
using serve::Frame;
using serve::FrameDecoder;
using serve::MessageType;
using serve::RequestOutcome;
using serve::RequestTimeline;
using Clock = std::chrono::steady_clock;

ClassifyResult SampleResult() {
  ClassifyResult r;
  r.predicted = 3;
  r.cache_hit = true;
  r.slices_reused = 7;
  r.slices_built = 2;
  r.tx_count = 41;
  r.degraded = true;
  r.epoch_lag = 5;
  return r;
}

void ExpectSameResult(const ClassifyResult& a, const ClassifyResult& b) {
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_EQ(a.cache_hit, b.cache_hit);
  EXPECT_EQ(a.slices_reused, b.slices_reused);
  EXPECT_EQ(a.slices_built, b.slices_built);
  EXPECT_EQ(a.tx_count, b.tx_count);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.epoch_lag, b.epoch_lag);
}

TEST(ProtocolTest, RequestRoundTripsThroughPayload) {
  const auto now = Clock::now();
  ClassifyRequest req;
  req.request_id = 0xDEADBEEFCAFE;
  req.address = 12345;
  req.options.allow_degraded = true;
  req.options.priority = 2;

  ClassifyRequest back;
  ASSERT_TRUE(
      ClassifyRequest::Decode(req.EncodePayload(now), now, &back).ok());
  EXPECT_EQ(back.request_id, req.request_id);
  EXPECT_EQ(back.address, req.address);
  EXPECT_TRUE(back.options.allow_degraded);
  EXPECT_EQ(back.options.priority, 2);
  EXPECT_FALSE(back.options.has_deadline());
}

TEST(ProtocolTest, DeadlineCrossesTheWireAsRelativeBudget) {
  // A 250ms budget encoded at `now` and decoded at `now + 100ms` must
  // leave ~150ms — queueing and transit spend the request's own budget.
  const auto encode_now = Clock::now();
  ClassifyRequest req;
  req.options.deadline = encode_now + std::chrono::milliseconds(250);

  const auto decode_now = encode_now + std::chrono::milliseconds(100);
  ClassifyRequest back;
  ASSERT_TRUE(ClassifyRequest::Decode(req.EncodePayload(encode_now),
                                      decode_now, &back)
                  .ok());
  ASSERT_TRUE(back.options.has_deadline());
  const double remaining =
      std::chrono::duration<double>(back.options.deadline - decode_now)
          .count();
  EXPECT_NEAR(remaining, 0.25, 1e-3);
}

TEST(ProtocolTest, ExpiredDeadlineStaysExpiredAfterDecode) {
  const auto now = Clock::now();
  ClassifyRequest req;
  req.options.deadline = now - std::chrono::milliseconds(50);

  ClassifyRequest back;
  ASSERT_TRUE(
      ClassifyRequest::Decode(req.EncodePayload(now), now, &back).ok());
  ASSERT_TRUE(back.options.has_deadline());
  EXPECT_LT(back.options.deadline, now);
}

TEST(ProtocolTest, NoDeadlineDecodesAsNoDeadline) {
  const auto now = Clock::now();
  ClassifyRequest req;  // epoch default = none
  ClassifyRequest back;
  ASSERT_TRUE(
      ClassifyRequest::Decode(req.EncodePayload(now), now, &back).ok());
  EXPECT_FALSE(back.options.has_deadline());
}

TEST(ProtocolTest, OkResponseRoundTripsResult) {
  const ClassifyResponse resp =
      ClassifyResponse::From(99, Result<ClassifyResult>(SampleResult()));
  ClassifyResponse back;
  ASSERT_TRUE(ClassifyResponse::Decode(resp.EncodePayload(), &back).ok());
  EXPECT_EQ(back.request_id, 99u);
  ASSERT_TRUE(back.has_result);
  ExpectSameResult(back.result, SampleResult());
  const auto outcome = back.ToResult();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().predicted, 3);
}

TEST(ProtocolTest, ErrorResponseRoundTripsStatus) {
  const ClassifyResponse resp = ClassifyResponse::From(
      7, Result<ClassifyResult>(
             Status::ResourceExhausted("shedding load, try later")));
  ClassifyResponse back;
  ASSERT_TRUE(ClassifyResponse::Decode(resp.EncodePayload(), &back).ok());
  EXPECT_EQ(back.request_id, 7u);
  EXPECT_FALSE(back.has_result);
  const auto outcome = back.ToResult();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(outcome.status().message().find("shedding"),
            std::string::npos);
}

TEST(ProtocolTest, FrameRoundTripsThroughDecoder) {
  const std::string payload = "hello frame";
  const std::string bytes =
      EncodeFrame(MessageType::kClassifyRequest, payload);
  FrameDecoder decoder;
  decoder.Append(bytes);
  Frame frame;
  const auto got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok()) << got.status().message();
  ASSERT_TRUE(got.value());
  EXPECT_EQ(frame.type, MessageType::kClassifyRequest);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(ProtocolTest, DecoderReassemblesByteAtATime) {
  const std::string bytes =
      EncodeFrame(MessageType::kClassifyResponse, "slow loris");
  FrameDecoder decoder;
  Frame frame;
  for (size_t i = 0; i < bytes.size(); ++i) {
    // Before the last byte the frame must never surface.
    const auto got = decoder.Next(&frame);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(got.value()) << "frame surfaced at byte " << i;
    decoder.Append(bytes.data() + i, 1);
  }
  const auto got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(frame.payload, "slow loris");
}

TEST(ProtocolTest, DecoderHandlesBackToBackFrames) {
  FrameDecoder decoder;
  decoder.Append(EncodeFrame(MessageType::kClassifyRequest, "one"));
  decoder.Append(EncodeFrame(MessageType::kClassifyResponse, "two"));
  Frame frame;
  auto got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(frame.payload, "one");
  got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(frame.payload, "two");
  got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
}

TEST(ProtocolTest, BadMagicFailsLoudlyAndSticks) {
  FrameDecoder decoder;
  decoder.Append("XXXX0123456789abcdef");
  Frame frame;
  const auto got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("magic"), std::string::npos);

  // Sticky: even after appending a perfectly valid frame the decoder
  // keeps reporting the original corruption.
  decoder.Append(EncodeFrame(MessageType::kClassifyRequest, "late"));
  const auto again = decoder.Next(&frame);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), got.status().code());
}

TEST(ProtocolTest, WrongVersionIsRejected) {
  std::string bytes = EncodeFrame(MessageType::kClassifyRequest, "v?");
  bytes[4] = 0x42;  // version word straddles bytes 4-5
  bytes[5] = 0x42;
  FrameDecoder decoder;
  decoder.Append(bytes);
  Frame frame;
  const auto got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("version"), std::string::npos);
}

TEST(ProtocolTest, FlippedCrcBitIsRejected) {
  std::string bytes = EncodeFrame(MessageType::kClassifyRequest, "crc");
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  FrameDecoder decoder;
  decoder.Append(bytes);
  Frame frame;
  const auto got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("crc32"), std::string::npos);
}

TEST(ProtocolTest, FlippedPayloadBitIsCaughtByCrc) {
  std::string bytes =
      EncodeFrame(MessageType::kClassifyRequest, "payload");
  bytes[serve::kFrameHeaderBytes] =
      static_cast<char>(bytes[serve::kFrameHeaderBytes] ^ 0x80);
  FrameDecoder decoder;
  decoder.Append(bytes);
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame).ok());
}

TEST(ProtocolTest, OversizedLengthClaimIsRejectedBeforeBuffering) {
  // Header claims a 64MiB payload; the decoder must reject from the
  // 12 header bytes alone — no waiting for (or allocating) the claim.
  std::string bytes(serve::kWireMagic, 4);
  const uint16_t version = serve::kWireVersion;
  const uint16_t type = 1;
  const uint32_t huge = 64u << 20;
  bytes.append(reinterpret_cast<const char*>(&version), 2);
  bytes.append(reinterpret_cast<const char*>(&type), 2);
  bytes.append(reinterpret_cast<const char*>(&huge), 4);
  FrameDecoder decoder;
  decoder.Append(bytes);
  Frame frame;
  const auto got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("payload"), std::string::npos);
}

TEST(ProtocolTest, TruncatedFrameIsIncompleteNotAnError) {
  const std::string bytes =
      EncodeFrame(MessageType::kClassifyRequest, "truncated");
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size() / 2);
  Frame frame;
  const auto got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());  // the rest may still arrive
  EXPECT_FALSE(got.value());
  EXPECT_GT(decoder.buffered(), 0u);
}

TEST(ProtocolTest, TruncatedResponsePayloadDecodeFails) {
  const ClassifyResponse resp =
      ClassifyResponse::From(1, Result<ClassifyResult>(SampleResult()));
  const std::string payload = resp.EncodePayload();
  ClassifyResponse back;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(ClassifyResponse::Decode(
                     std::string_view(payload).substr(0, cut), &back)
                     .ok())
        << "decoded from " << cut << " of " << payload.size() << " bytes";
  }
}

TEST(ProtocolTest, TruncatedRequestPayloadDecodeFails) {
  const auto now = Clock::now();
  ClassifyRequest req;
  req.request_id = 5;
  req.address = 17;
  const std::string payload = req.EncodePayload(now);
  ClassifyRequest back;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(ClassifyRequest::Decode(
                     std::string_view(payload).substr(0, cut), now, &back)
                     .ok());
  }
}

TEST(ProtocolTest, ResponseMessageLengthIsBounded) {
  // A hostile response claiming a message longer than kMaxWireMessage
  // must be rejected, not allocated.
  ClassifyResponse resp;
  resp.request_id = 1;
  resp.code = static_cast<int32_t>(StatusCode::kInternal);
  resp.message = "x";
  std::string payload = resp.EncodePayload();
  // The message length field sits after u64 request_id + i32 code.
  const uint32_t bogus = serve::kMaxWireMessage + 1;
  std::memcpy(payload.data() + 12, &bogus, sizeof(bogus));
  ClassifyResponse back;
  EXPECT_FALSE(ClassifyResponse::Decode(payload, &back).ok());
}

// --- v2 trace context + timelines ------------------------------------

RequestTimeline SampleTimeline() {
  RequestTimeline tl;
  tl.trace_id = 0xABCDEF0123456789ULL;
  tl.span_id = 0x42;
  tl.enqueue_ns = 1'000;
  tl.batch_join_ns = 2'500;
  tl.lookup_ns = 9'000;
  tl.build_ns = 120'000;
  tl.aggregate_ns = 150'000;
  tl.deliver_ns = 160'000;
  tl.outcome = RequestOutcome::kDegraded;
  return tl;
}

void ExpectSameTimeline(const RequestTimeline& a, const RequestTimeline& b) {
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_EQ(a.enqueue_ns, b.enqueue_ns);
  EXPECT_EQ(a.batch_join_ns, b.batch_join_ns);
  EXPECT_EQ(a.lookup_ns, b.lookup_ns);
  EXPECT_EQ(a.build_ns, b.build_ns);
  EXPECT_EQ(a.aggregate_ns, b.aggregate_ns);
  EXPECT_EQ(a.deliver_ns, b.deliver_ns);
  EXPECT_EQ(a.outcome, b.outcome);
}

TEST(ProtocolTest, TraceContextRoundTripsInV2Request) {
  const auto now = Clock::now();
  ClassifyRequest req;
  req.request_id = 7;
  req.address = 99;
  req.options.trace_id = 0x1122334455667788ULL;
  req.options.span_id = 0x99AA;

  ClassifyRequest back;
  ASSERT_TRUE(
      ClassifyRequest::Decode(req.EncodePayload(now), now, &back).ok());
  EXPECT_EQ(back.options.trace_id, req.options.trace_id);
  EXPECT_EQ(back.options.span_id, req.options.span_id);
}

TEST(ProtocolTest, V1RequestDropsTraceContext) {
  // A v1 peer never sends trace context; encoding v1 omits it and
  // decoding v1 leaves it zeroed — the request is simply untraced.
  const auto now = Clock::now();
  ClassifyRequest req;
  req.request_id = 8;
  req.address = 100;
  req.options.trace_id = 0xFFFF;
  req.options.span_id = 0xEEEE;
  req.options.allow_degraded = true;

  const std::string v1 = req.EncodePayload(now, /*version=*/1);
  const std::string v2 = req.EncodePayload(now, /*version=*/2);
  EXPECT_EQ(v2.size(), v1.size() + 16) << "v2 appends two u64 trace ids";

  ClassifyRequest back;
  ASSERT_TRUE(ClassifyRequest::Decode(v1, now, &back, /*version=*/1).ok());
  EXPECT_EQ(back.request_id, req.request_id);
  EXPECT_TRUE(back.options.allow_degraded);
  EXPECT_EQ(back.options.trace_id, 0u);
  EXPECT_EQ(back.options.span_id, 0u);
}

TEST(ProtocolTest, RequestDecodeIsStrictPerVersion) {
  // The dispatcher passes the version the enclosing frame declared;
  // payload and version must agree in both directions.
  const auto now = Clock::now();
  ClassifyRequest req;
  req.request_id = 9;
  req.address = 5;
  ClassifyRequest back;
  // v1 payload read as v2: the decoder wants trace ids that never came.
  EXPECT_FALSE(ClassifyRequest::Decode(req.EncodePayload(now, 1), now,
                                       &back, /*version=*/2)
                   .ok());
  // v2 payload read as v1: 16 trailing bytes nobody consumed.
  const auto got = ClassifyRequest::Decode(req.EncodePayload(now, 2), now,
                                           &back, /*version=*/1);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.message().find("trailing"), std::string::npos);
}

TEST(ProtocolTest, TimelineRoundTripsThroughCodec) {
  const RequestTimeline tl = SampleTimeline();
  std::string bytes;
  tl.EncodeTo(&bytes);

  util::BufferReader reader(bytes);
  RequestTimeline back;
  ASSERT_TRUE(RequestTimeline::DecodeFrom(&reader, &back).ok());
  EXPECT_EQ(reader.remaining(), 0u);
  ExpectSameTimeline(tl, back);
}

TEST(ProtocolTest, TimelineOutcomeByteIsRangeChecked) {
  RequestTimeline tl = SampleTimeline();
  std::string bytes;
  tl.EncodeTo(&bytes);
  bytes.back() = 17;  // outcome is the trailing u8

  util::BufferReader reader(bytes);
  RequestTimeline back;
  const auto got = RequestTimeline::DecodeFrom(&reader, &back);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.message().find("outcome"), std::string::npos);
}

TEST(ProtocolTest, MonotoneRequiresDeliveryAndStageOrder) {
  RequestTimeline tl;
  EXPECT_FALSE(tl.Monotone()) << "never delivered";

  // Shed inline: only deliver_ns is stamped, every stage skipped.
  tl.deliver_ns = 100;
  EXPECT_TRUE(tl.Monotone());

  // Full pipeline, ordered.
  EXPECT_TRUE(SampleTimeline().Monotone());

  // A stamp that runs backwards across present stages.
  RequestTimeline bad = SampleTimeline();
  bad.build_ns = bad.batch_join_ns - 1;
  EXPECT_FALSE(bad.Monotone());

  // Skipped interior stages (-1) don't break the ordering check.
  RequestTimeline sparse = SampleTimeline();
  sparse.build_ns = -1;
  sparse.aggregate_ns = -1;
  EXPECT_TRUE(sparse.Monotone());
}

TEST(ProtocolTest, ResponseCarriesTimelineOnlyInV2) {
  ClassifyResponse resp = ClassifyResponse::From(
      21, Result<ClassifyResult>(SampleResult()), SampleTimeline());

  const std::string v2 = resp.EncodePayload();
  ClassifyResponse back;
  ASSERT_TRUE(ClassifyResponse::Decode(v2, &back).ok());
  ExpectSameTimeline(back.timeline, SampleTimeline());
  // The decode mirrors the wire timeline into the in-process result.
  ExpectSameTimeline(back.result.timeline, SampleTimeline());

  // v1 encoding is strictly shorter and round-trips with a default
  // (all -1) timeline.
  const std::string v1 = resp.EncodePayload(/*version=*/1);
  EXPECT_LT(v1.size(), v2.size());
  ClassifyResponse old;
  ASSERT_TRUE(ClassifyResponse::Decode(v1, &old, /*version=*/1).ok());
  EXPECT_EQ(old.timeline.trace_id, 0u);
  EXPECT_EQ(old.timeline.deliver_ns, -1);
  ExpectSameResult(old.result, resp.result);

  // Cross-version strictness mirrors the request side.
  EXPECT_FALSE(ClassifyResponse::Decode(v1, &back, /*version=*/2).ok());
  EXPECT_FALSE(ClassifyResponse::Decode(v2, &back, /*version=*/1).ok());
}

TEST(ProtocolTest, ErrorResponseStillCarriesItsTimeline) {
  // Sheds and deadline misses answer with an error *and* a timeline —
  // that's how the client learns where a rejected request spent time.
  RequestTimeline tl;
  tl.trace_id = 77;
  tl.deliver_ns = 420;
  tl.outcome = RequestOutcome::kShed;
  const ClassifyResponse resp = ClassifyResponse::From(
      33, Result<ClassifyResult>(Status::ResourceExhausted("shed")), tl);

  ClassifyResponse back;
  ASSERT_TRUE(ClassifyResponse::Decode(resp.EncodePayload(), &back).ok());
  EXPECT_FALSE(back.has_result);
  EXPECT_EQ(back.timeline.trace_id, 77u);
  EXPECT_EQ(back.timeline.deliver_ns, 420);
  EXPECT_EQ(back.timeline.outcome, RequestOutcome::kShed);
  const auto result = back.ToResult();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ProtocolTest, DecoderAcceptsBothLiveVersions) {
  // A v1 frame (pre trace-context peer) still decodes; the frame
  // reports which version it declared so the dispatcher can answer in
  // kind.
  FrameDecoder decoder;
  decoder.Append(
      EncodeFrame(MessageType::kClassifyRequest, "old", /*version=*/1));
  decoder.Append(EncodeFrame(MessageType::kClassifyRequest, "new"));
  Frame frame;
  auto got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok() && got.value());
  EXPECT_EQ(frame.version, 1);
  EXPECT_EQ(frame.payload, "old");
  got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok() && got.value());
  EXPECT_EQ(frame.version, serve::kWireVersion);
  EXPECT_EQ(frame.payload, "new");
}

TEST(ProtocolTest, FutureVersionIsRejected) {
  std::string bytes = EncodeFrame(MessageType::kClassifyRequest, "v3");
  const uint16_t future = serve::kWireVersion + 1;
  std::memcpy(bytes.data() + 4, &future, sizeof(future));
  FrameDecoder decoder;
  decoder.Append(bytes);
  Frame frame;
  const auto got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("version"), std::string::npos);
}

}  // namespace
}  // namespace ba
