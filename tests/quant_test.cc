// Unit tests for the int8 quantized inference path: weight/activation
// quantization semantics (tensor/quant.h), bit-exact kernel dispatch
// (tensor/gemm.h), the nn-level QuantizedLinear/QuantizedMlp twins,
// and the GraphModel/BaClassifier calibration surface.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/classifier.h"
#include "core/gfn_features.h"
#include "core/graph_model.h"
#include "nn/linear.h"
#include "nn/quantized.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ba {
namespace {

using tensor::Tensor;
namespace ti = tensor::internal;

TEST(QuantizeWeightsTest, PerChannelScalesAndColsums) {
  // Column 0 spans [-2, 1], column 1 is all zero, column 2 is constant.
  Tensor w({3, 3});
  w.at(0, 0) = -2.0f;
  w.at(1, 0) = 1.0f;
  w.at(2, 0) = 0.5f;
  w.at(0, 2) = w.at(1, 2) = w.at(2, 2) = 0.25f;
  const tensor::QuantizedWeights qw = tensor::QuantizeWeights(w, nullptr);
  ASSERT_EQ(qw.in_features, 3);
  ASSERT_EQ(qw.out_features, 3);
  ASSERT_EQ(qw.packed_k, ti::Int8PackedK(3));
  EXPECT_FLOAT_EQ(qw.scales[0], 2.0f / 127.0f);
  // All-zero channel: scale 1 by convention, every code 0 — exact.
  EXPECT_FLOAT_EQ(qw.scales[1], 1.0f);
  EXPECT_EQ(qw.colsums[1], 0);
  // Constant channel: absmax maps to the +-127 edge exactly.
  EXPECT_FLOAT_EQ(qw.scales[2], 0.25f / 127.0f);
  const int8_t* ch2 = qw.packed.data() + 2 * qw.packed_k;
  EXPECT_EQ(ch2[0], 127);
  EXPECT_EQ(qw.colsums[2], 3 * 127);
  // Padding lanes are zero so they cancel against any activation code.
  const int8_t* ch0 = qw.packed.data() + 0 * qw.packed_k;
  for (int64_t p = 3; p < qw.packed_k; ++p) EXPECT_EQ(ch0[p], 0);
  EXPECT_TRUE(qw.bias.empty());
}

TEST(QuantizeActivationsTest, ZeroPointRoundingAndPadding) {
  // scale 1.0: codes are clamp(round(x), -127, 127) + 128 with
  // half-away-from-zero rounding.
  Tensor x({1, 5});
  x.at(0, 0) = 0.0f;
  x.at(0, 1) = 2.5f;    // rounds away from zero -> 2.5 -> 3
  x.at(0, 2) = -2.5f;   // -> -3
  x.at(0, 3) = 300.0f;  // saturates to +127
  x.at(0, 4) = -1.0f;
  std::vector<uint8_t> codes;
  tensor::QuantizeActivations(x, /*a_scale=*/1.0f, &codes);
  ASSERT_EQ(codes.size(), static_cast<size_t>(ti::Int8PackedK(5)));
  EXPECT_EQ(codes[0], 128);
  EXPECT_EQ(codes[1], 131);
  EXPECT_EQ(codes[2], 125);
  EXPECT_EQ(codes[3], 255);
  EXPECT_EQ(codes[4], 127);
  // Padding lanes encode 0.0 (code 128).
  for (size_t p = 5; p < codes.size(); ++p) EXPECT_EQ(codes[p], 128);
}

TEST(ActivationObserverTest, TracksAbsmaxWithFlooredScale) {
  tensor::ActivationObserver obs;
  EXPECT_GT(obs.scale(), 0.0f);  // floor keeps an empty observer usable
  Tensor a({1, 2});
  a.at(0, 0) = -3.0f;
  a.at(0, 1) = 2.0f;
  obs.Observe(a);
  EXPECT_FLOAT_EQ(obs.absmax(), 3.0f);
  EXPECT_FLOAT_EQ(obs.scale(), 3.0f / 127.0f);
  Tensor b({1, 1});
  b.at(0, 0) = 1.0f;
  obs.Observe(b);  // smaller input must not shrink the range
  EXPECT_FLOAT_EQ(obs.absmax(), 3.0f);
}

/// Error bound of one int8 product term (activation quantization step
/// x weight magnitude + weight step x activation magnitude), matching
/// the derivation in bench_gemm.
double Int8Tolerance(int64_t k, float a_scale, float w_scale, float x_max,
                     float w_max) {
  const double e1 = 0.5 * (static_cast<double>(a_scale) * w_max +
                           static_cast<double>(w_scale) * x_max) +
                    0.25 * static_cast<double>(a_scale) * w_scale;
  return 4.0 * std::sqrt(static_cast<double>(k)) * e1 + 1e-6;
}

TEST(Int8LinearTest, MatchesFp32WithinQuantizationError) {
  Rng rng(7);
  for (const auto [m, k, n] :
       {std::array<int64_t, 3>{1, 8, 5}, {4, 64, 16}, {7, 130, 33},
        {3, 300, 17}}) {
    Tensor x = Tensor::RandomUniform({m, k}, &rng, -2.0f, 2.0f);
    Tensor w = Tensor::RandomUniform({k, n}, &rng, -1.0f, 1.0f);
    Tensor bias = Tensor::RandomUniform({1, n}, &rng, -0.5f, 0.5f);
    const tensor::QuantizedWeights qw = tensor::QuantizeWeights(w, &bias);
    tensor::ActivationObserver obs;
    obs.Observe(x);
    const Tensor got = tensor::Int8LinearValue(x, qw, obs.scale());
    const Tensor ref = tensor::MatMulReferenceValue(x, w);
    float w_scale = 0.0f;
    for (float s : qw.scales) w_scale = std::max(w_scale, s);
    const double tol =
        Int8Tolerance(k, obs.scale(), w_scale, x.AbsMax(), w.AbsMax());
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        ASSERT_NEAR(got.at(i, j), ref.at(i, j) + bias.at(0, j), tol)
            << "m=" << m << " k=" << k << " n=" << n << " at (" << i << ","
            << j << ")";
      }
    }
  }
}

TEST(Int8GemmTest, DispatchedKernelIsBitExactVsScalarReference) {
  // The integer core is exact in every ISA variant and the epilogue
  // uses identical fma algebra, so the dispatched kernel must agree
  // with the forced-scalar reference to the bit — not a tolerance.
  Rng rng(11);
  for (const auto [m, k, n] :
       {std::array<int64_t, 3>{1, 1, 1}, {2, 8, 14}, {5, 64, 16},
        {9, 100, 31}, {4, 256, 64}}) {
    Tensor x = Tensor::RandomUniform({m, k}, &rng, -3.0f, 3.0f);
    Tensor w = Tensor::RandomUniform({k, n}, &rng, -1.0f, 1.0f);
    Tensor bias = Tensor::RandomUniform({1, n}, &rng, -1.0f, 1.0f);
    const tensor::QuantizedWeights qw = tensor::QuantizeWeights(w, &bias);
    tensor::ActivationObserver obs;
    obs.Observe(x);
    const float a_scale = obs.scale();
    const Tensor got = tensor::Int8LinearValue(x, qw, a_scale);
    std::vector<uint8_t> codes;
    tensor::QuantizeActivations(x, a_scale, &codes);
    Tensor ref({m, n});
    ti::Int8GemmReference(codes.data(), qw.packed.data(),
                          qw.colsums.data(), qw.scales.data(),
                          qw.bias.data(), a_scale, ref.data(), m,
                          qw.packed_k, n);
    ASSERT_EQ(0, std::memcmp(got.data(), ref.data(),
                             static_cast<size_t>(m * n) * sizeof(float)))
        << "variant " << ti::Int8GemmVariantName() << " diverges at m=" << m
        << " k=" << k << " n=" << n;
  }
}

TEST(QuantizedMlpTest, TracksFp32MlpWithinQuantizationError) {
  Rng rng(13);
  nn::Mlp mlp({24, 48, 8}, &rng, nn::Activation::kRelu);
  Tensor calib = Tensor::RandomUniform({32, 24}, &rng, -1.5f, 1.5f);
  nn::QuantizedMlp qmlp(mlp, {&calib});
  ASSERT_EQ(qmlp.num_layers(), 2u);
  Tensor x = Tensor::RandomUniform({6, 24}, &rng, -1.0f, 1.0f);
  const Tensor got = qmlp.Forward(x);
  const Tensor want = mlp.Forward(tensor::Constant(x))->value;
  ASSERT_EQ(got.dim(0), 6);
  ASSERT_EQ(got.dim(1), 8);
  // Loose end-to-end bound: two quantized layers, O(1) activations.
  double max_abs = 0.0;
  for (int64_t i = 0; i < want.numel(); ++i) {
    max_abs = std::max(max_abs, static_cast<double>(
                                    std::abs(want.data()[i])));
  }
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_NEAR(got.data()[i], want.data()[i],
                0.05 * std::max(1.0, max_abs))
        << "element " << i;
  }
}

core::AddressSample FakeGfnSample(int64_t input_dim, int nodes, Rng* rng) {
  core::AddressSample sample;
  core::GraphTensors gt;
  gt.augmented = Tensor::RandomUniform({nodes, input_dim}, rng, -1.0f, 1.0f);
  sample.tensors.push_back(std::move(gt));
  return sample;
}

TEST(GraphModelQuantizeTest, QuantizedEmbedTracksFp32) {
  core::GraphModelOptions options;
  options.k_hops = 2;
  Rng rng(17);
  const int64_t input_dim = core::AugmentedDim(options.k_hops);
  core::GraphModel model(options);
  std::vector<core::AddressSample> calib;
  calib.push_back(FakeGfnSample(input_dim, 12, &rng));
  calib.push_back(FakeGfnSample(input_dim, 5, &rng));
  EXPECT_FALSE(model.quantized());
  ASSERT_TRUE(model.Quantize(calib).ok());
  EXPECT_TRUE(model.quantized());
  const core::GraphTensors& gt = calib[0].tensors[0];
  const Tensor fp32 = model.Embed(gt);
  const Tensor int8 = model.EmbedQuantized(gt);
  ASSERT_TRUE(int8.SameShape(fp32));
  for (int64_t j = 0; j < fp32.dim(1); ++j) {
    ASSERT_NEAR(int8.at(0, j), fp32.at(0, j),
                0.05 * std::max(1.0, static_cast<double>(
                                         std::abs(fp32.at(0, j)))) +
                    0.05)
        << "dim " << j;
  }
}

TEST(GraphModelQuantizeTest, RejectsNonGfnAndEmptyCalibration) {
  Rng rng(19);
  core::GraphModelOptions gcn;
  gcn.encoder = core::GraphEncoderKind::kGcn;
  core::GraphModel gcn_model(gcn);
  const Status st = gcn_model.Quantize({});
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);

  core::GraphModelOptions gfn;
  core::GraphModel gfn_model(gfn);
  const Status empty = gfn_model.Quantize({});
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(gfn_model.quantized());
}

TEST(ClassifierQuantizeTest, RequiresTraining) {
  core::BaClassifier::Options options;
  auto created = core::BaClassifier::Create(options);
  ASSERT_TRUE(created.ok());
  const Status st = created.value()->Quantize({});
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(created.value()->quantized());
}

}  // namespace
}  // namespace ba
