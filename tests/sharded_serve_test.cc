// Sharded-tier tests: the consistent-hash router must be deterministic
// and balanced, the sweep detector must mark scanners (and only
// scanners) with sticky unmarking, and ShardedEngine must agree with
// serial BaClassifier::Predict while aggregating metrics, persisting
// per-shard caches behind a shard-count manifest, and refusing
// no-promote traffic a cache slot. Run under BA_SANITIZE=thread to
// validate the cross-shard concurrency.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "obs/metrics.h"
#include "serve/router.h"
#include "serve/sharded_engine.h"
#include "util/fs.h"

namespace ba::serve {
namespace {

using chain::AddressId;

// ---------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------

TEST(ShardRouterTest, MappingIsDeterministic) {
  ShardRouter a(4), b(4);
  for (AddressId addr = 0; addr < 1000; ++addr) {
    const uint32_t shard = a.ShardOf(addr);
    EXPECT_LT(shard, 4u);
    // A pure function of (num_shards, vnodes, address): a rebuilt ring
    // routes every address identically, which is what makes per-shard
    // cache files reusable across restarts.
    EXPECT_EQ(shard, b.ShardOf(addr));
  }
}

TEST(ShardRouterTest, RingBalancesAcrossShards) {
  constexpr uint32_t kShards = 4;
  constexpr int kAddresses = 20000;
  ShardRouter router(kShards);
  std::vector<int> owned(kShards, 0);
  for (AddressId addr = 0; addr < kAddresses; ++addr) {
    ++owned[router.ShardOf(addr)];
  }
  const double fair = static_cast<double>(kAddresses) / kShards;
  for (uint32_t s = 0; s < kShards; ++s) {
    // 64 vnodes per shard keeps every shard within a loose factor of
    // its fair share — no shard is starved or doubled up.
    EXPECT_GT(owned[s], fair * 0.5) << "shard " << s << " starved";
    EXPECT_LT(owned[s], fair * 1.6) << "shard " << s << " overloaded";
  }
}

TEST(ShardRouterTest, SingleShardOwnsEverything) {
  ShardRouter router(1);
  for (AddressId addr = 0; addr < 500; ++addr) {
    EXPECT_EQ(router.ShardOf(addr), 0u);
  }
}

// ---------------------------------------------------------------------
// SweepDetector
// ---------------------------------------------------------------------

TEST(SweepDetectorTest, MarksAfterMissStreakHitResetsIt) {
  SweepDetector detector(4);
  const uint64_t client = 7;
  for (int i = 0; i < 3; ++i) detector.Observe(client, false);
  EXPECT_EQ(detector.ModeFor(client), CacheMode::kNormal);
  // A hit mid-streak resets it: three more misses are not enough.
  detector.Observe(client, true);
  for (int i = 0; i < 3; ++i) detector.Observe(client, false);
  EXPECT_EQ(detector.ModeFor(client), CacheMode::kNormal);
  EXPECT_EQ(detector.sweeping_clients(), 0u);
  // The fourth consecutive miss marks the client.
  detector.Observe(client, false);
  EXPECT_EQ(detector.ModeFor(client), CacheMode::kNoPromote);
  EXPECT_EQ(detector.sweeping_clients(), 1u);
}

TEST(SweepDetectorTest, UnmarkIsStickyAndRemarkIsFast) {
  SweepDetector detector(8);
  const uint64_t client = 3;
  for (int i = 0; i < 8; ++i) detector.Observe(client, false);
  ASSERT_EQ(detector.ModeFor(client), CacheMode::kNoPromote);

  // A scanner wrapping over its own few cached entries produces short
  // hit runs; one hit (or three) must not clear the mark.
  for (int i = 0; i < 3; ++i) {
    detector.Observe(client, true);
    EXPECT_EQ(detector.ModeFor(client), CacheMode::kNoPromote)
        << "unmarked after only " << i + 1 << " hits";
  }
  // The fourth consecutive hit clears it — a genuine working-set
  // client hits continuously and recovers normal promotion quickly.
  detector.Observe(client, true);
  EXPECT_EQ(detector.ModeFor(client), CacheMode::kNormal);
  EXPECT_EQ(detector.sweeping_clients(), 0u);

  // A repeat offender re-marks on a quarter of the threshold: the full
  // insertion budget is never sold twice.
  detector.Observe(client, false);
  EXPECT_EQ(detector.ModeFor(client), CacheMode::kNormal);
  detector.Observe(client, false);
  EXPECT_EQ(detector.ModeFor(client), CacheMode::kNoPromote);
}

TEST(SweepDetectorTest, AnonymousAndDisabledClientsAreNeverTracked) {
  SweepDetector detector(2);
  for (int i = 0; i < 10; ++i) detector.Observe(/*client_id=*/0, false);
  EXPECT_EQ(detector.ModeFor(0), CacheMode::kNormal);
  EXPECT_EQ(detector.sweeping_clients(), 0u);

  SweepDetector disabled(0);
  for (int i = 0; i < 10; ++i) disabled.Observe(5, false);
  EXPECT_EQ(disabled.ModeFor(5), CacheMode::kNormal);
  EXPECT_EQ(disabled.sweeping_clients(), 0u);
}

TEST(SweepDetectorTest, ForgetDropsClientState) {
  SweepDetector detector(3);
  for (int i = 0; i < 3; ++i) detector.Observe(11, false);
  ASSERT_EQ(detector.ModeFor(11), CacheMode::kNoPromote);
  detector.Forget(11);
  EXPECT_EQ(detector.ModeFor(11), CacheMode::kNormal);
  EXPECT_EQ(detector.sweeping_clients(), 0u);
  // A recycled connection id starts from a clean slate: the fast
  // re-mark path does not survive Forget.
  detector.Observe(11, false);
  detector.Observe(11, false);
  EXPECT_EQ(detector.ModeFor(11), CacheMode::kNormal);
}

// ---------------------------------------------------------------------
// ShardedEngine
// ---------------------------------------------------------------------

/// Owns a cache base path plus everything a sharded save derives from
/// it (per-shard files, manifest), removed on destruction.
class TempCacheBase {
 public:
  explicit TempCacheBase(const std::string& name)
      : base_("/tmp/ba_sharded_" + name + "_" + std::to_string(::getpid())) {
    Cleanup();
  }
  ~TempCacheBase() { Cleanup(); }
  const std::string& base() const { return base_; }
  std::string shard(int k) const {
    return base_ + ".shard" + std::to_string(k);
  }
  std::string manifest() const { return base_ + ".manifest"; }

 private:
  void Cleanup() {
    for (int k = 0; k < 16; ++k) std::remove(shard(k).c_str());
    std::remove(manifest().c_str());
    std::remove(base_.c_str());
  }
  std::string base_;
};

/// Shared fixture: one small economy and one trained classifier,
/// materialized once per suite (training dominates the suite's cost).
class ShardedServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 23;
    config.num_blocks = 100;
    config.num_retail_users = 30;
    config.miners_per_pool = 12;
    config.gamblers_per_house = 6;
    simulator_ = new datagen::Simulator(config);
    ASSERT_TRUE(simulator_->Run().ok());

    auto labeled = simulator_->CollectLabeledAddresses(3);
    Rng rng(1);
    const auto split = datagen::StratifiedSplit(labeled, 0.8, &rng);
    train_ = new std::vector<datagen::LabeledAddress>(split.train);
    test_ = new std::vector<datagen::LabeledAddress>(split.test);
    ASSERT_GE(test_->size(), 8u);
    ASSERT_GE(train_->size(), 16u);

    core::BaClassifier::Options opts;
    opts.dataset.construction.slice_size = 20;
    opts.graph_model.epochs = 2;
    opts.graph_model.embed_dim = 16;
    opts.graph_model.hidden_dim = 32;
    opts.aggregator.epochs = 4;
    auto created = core::BaClassifier::Create(opts);
    ASSERT_TRUE(created.ok()) << created.status().message();
    classifier_ = created.value().release();
    ASSERT_TRUE(classifier_->Train(simulator_->ledger(), *train_).ok());
  }

  static void TearDownTestSuite() {
    delete classifier_;
    delete simulator_;
    delete train_;
    delete test_;
    classifier_ = nullptr;
    simulator_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
  }

  /// Three shards over the process-wide pool by default (N private
  /// pools on a test box would be pure oversubscription).
  static std::unique_ptr<ShardedEngine> MakeSharded(
      ShardedEngineOptions options = DefaultOptions()) {
    auto engine = ShardedEngine::Create(classifier_, &simulator_->ledger(),
                                        std::move(options));
    EXPECT_TRUE(engine.ok()) << engine.status().message();
    return std::move(engine.value());
  }

  static ShardedEngineOptions DefaultOptions() {
    ShardedEngineOptions options;
    options.num_engines = 3;
    options.engine.num_threads = 0;
    return options;
  }

  static std::vector<int> SerialTruth(
      const std::vector<datagen::LabeledAddress>& addresses) {
    std::vector<int> expected;
    EXPECT_TRUE(
        classifier_->Predict(simulator_->ledger(), addresses, &expected)
            .ok());
    return expected;
  }

  static datagen::Simulator* simulator_;
  static std::vector<datagen::LabeledAddress>* train_;
  static std::vector<datagen::LabeledAddress>* test_;
  static core::BaClassifier* classifier_;
};

datagen::Simulator* ShardedServeTest::simulator_ = nullptr;
std::vector<datagen::LabeledAddress>* ShardedServeTest::train_ = nullptr;
std::vector<datagen::LabeledAddress>* ShardedServeTest::test_ = nullptr;
core::BaClassifier* ShardedServeTest::classifier_ = nullptr;

TEST_F(ShardedServeTest, OptionsValidateCatchesBadFields) {
  ShardedEngineOptions options = DefaultOptions();
  options.num_engines = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = DefaultOptions();
  options.vnodes_per_shard = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = DefaultOptions();
  options.engine.max_batch_size = 0;  // per-shard options validate too
  EXPECT_FALSE(options.Validate().ok());
  EXPECT_TRUE(DefaultOptions().Validate().ok());
}

TEST_F(ShardedServeTest, MatchesSerialPredictAcrossShards) {
  const std::vector<int> expected = SerialTruth(*test_);
  auto engine = MakeSharded();
  std::vector<AddressId> addresses;
  for (const auto& a : *test_) addresses.push_back(a.address);

  const auto results = engine->ClassifyBatch(addresses);
  ASSERT_EQ(results.size(), addresses.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().message();
    EXPECT_EQ(results[i].value().predicted, expected[i])
        << "address " << addresses[i] << " (shard "
        << engine->ShardOf(addresses[i]) << ")";
  }

  // Every request landed on the shard the ring assigns it, and more
  // than one shard did real work.
  uint64_t shard_requests = 0;
  int active_shards = 0;
  for (int k = 0; k < static_cast<int>(engine->num_shards()); ++k) {
    const auto m = engine->ShardMetrics(k);
    shard_requests += m.requests;
    active_shards += m.requests > 0 ? 1 : 0;
  }
  EXPECT_EQ(shard_requests, addresses.size());
  EXPECT_GT(active_shards, 1);
}

TEST_F(ShardedServeTest, BlockingClassifyRoutesToOwningShard) {
  auto engine = MakeSharded();
  const AddressId address = (*test_)[0].address;
  const uint32_t owner = engine->ShardOf(address);
  ASSERT_TRUE(engine->Classify(address).ok());
  for (int k = 0; k < static_cast<int>(engine->num_shards()); ++k) {
    EXPECT_EQ(engine->ShardMetrics(k).requests,
              k == static_cast<int>(owner) ? 1u : 0u)
        << "shard " << k;
  }
  // Repeat query: same shard, now a full hit from its cache.
  const auto again = engine->Classify(address);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().cache_hit);
  EXPECT_EQ(engine->ShardMetrics(static_cast<int>(owner)).full_hits, 1u);
}

TEST_F(ShardedServeTest, MetricsAggregateAcrossShards) {
  auto& reg = obs::MetricsRegistry::Instance();
  const uint64_t router_before =
      reg.GetCounter("serve.router.requests")->value();
  ShardedEngineOptions options = DefaultOptions();
  options.engine.enable_admission = true;  // exercise worst-state merge
  auto engine = MakeSharded(options);
  std::vector<AddressId> addresses;
  for (const auto& a : *test_) addresses.push_back(a.address);
  for (const auto& r : engine->ClassifyBatch(addresses)) {
    ASSERT_TRUE(r.ok());  // cold round
  }
  for (const auto& r : engine->ClassifyBatch(addresses)) {
    ASSERT_TRUE(r.ok());  // repeat round, all hits
  }

  const InferenceMetricsSnapshot agg = engine->Metrics();
  EXPECT_EQ(agg.requests, 2 * addresses.size());
  EXPECT_EQ(agg.full_hits, addresses.size());  // the repeat round
  EXPECT_EQ(agg.cache_entries, engine->CacheSize());
  EXPECT_GT(agg.hit_rate, 0.0);
  EXPECT_GT(agg.request_latency.count, 0u);
  EXPECT_GT(agg.request_latency.max_seconds, 0.0);
  // Aggregate equals the sum of the per-shard snapshots it merges.
  uint64_t sum_requests = 0;
  uint64_t sum_latency_count = 0;
  for (int k = 0; k < static_cast<int>(engine->num_shards()); ++k) {
    sum_requests += engine->ShardMetrics(k).requests;
    sum_latency_count += engine->ShardMetrics(k).request_latency.count;
  }
  EXPECT_EQ(agg.requests, sum_requests);
  EXPECT_EQ(agg.request_latency.count, sum_latency_count);
  EXPECT_EQ(agg.admission_state, "accepting");
  // The router-level counter moved once per dispatched request.
  EXPECT_EQ(reg.GetCounter("serve.router.requests")->value(),
            router_before + 2 * addresses.size());
  // The router's registry provider is live while the engine exists.
  EXPECT_NE(reg.JsonExposition().find("\"serve.router."),
            std::string::npos);
}

TEST_F(ShardedServeTest, TimelinesAndSlowlogSearchEveryShard) {
  auto engine = MakeSharded();
  ClassifyOptions options;
  options.trace_id = 0xABCD1234u;
  options.span_id = 1;
  ASSERT_TRUE(engine->Classify((*test_)[1].address, options).ok());
  const auto found = engine->FindTimeline(options.trace_id);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->timeline.trace_id, options.trace_id);
  EXPECT_FALSE(engine->FindTimeline(0xFFFF9999u).has_value());

  const std::string slowlog = engine->SlowlogJson(8);
  EXPECT_NE(slowlog.find("\"threshold_seconds\":"), std::string::npos);
  EXPECT_NE(slowlog.find("\"recent\":["), std::string::npos);
  EXPECT_NE(slowlog.find("\"slow\":["), std::string::npos);
}

TEST_F(ShardedServeTest, SaveCacheWritesShardFilesManifestAndWarmRestart) {
  TempCacheBase cache("warm");
  ShardedEngineOptions options = DefaultOptions();
  options.engine.cache_path = cache.base();

  std::vector<AddressId> addresses;
  for (const auto& a : *test_) addresses.push_back(a.address);
  {
    auto engine = MakeSharded(options);
    for (const auto& r : engine->ClassifyBatch(addresses)) {
      ASSERT_TRUE(r.ok());
    }
    ASSERT_TRUE(engine->SaveCache().ok());
  }
  for (int k = 0; k < options.num_engines; ++k) {
    EXPECT_TRUE(util::FileExists(cache.shard(k))) << cache.shard(k);
  }
  auto manifest = util::ReadFileToString(cache.manifest());
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(*manifest, "shards 3\n");

  // Warm restart with the same shard count: the ring sends every
  // address back to the shard whose file holds it — all full hits.
  auto warm = MakeSharded(options);
  for (const auto& r : warm->ClassifyBatch(addresses)) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().cache_hit);
  }
  EXPECT_EQ(warm->Metrics().full_hits, addresses.size());
  EXPECT_EQ(warm->Metrics().slices_built, 0u);
}

TEST_F(ShardedServeTest, MismatchedShardCountRestartIsRejected) {
  TempCacheBase cache("mismatch");
  ShardedEngineOptions options = DefaultOptions();
  options.engine.cache_path = cache.base();
  {
    auto engine = MakeSharded(options);
    ASSERT_TRUE(engine->Classify((*test_)[0].address).ok());
    ASSERT_TRUE(engine->SaveCache().ok());
  }

  options.num_engines = 2;
  auto rejected = ShardedEngine::Create(classifier_, &simulator_->ledger(),
                                        options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  // The diagnostic names both counts and the way out.
  EXPECT_NE(rejected.status().message().find("3-shard"), std::string::npos)
      << rejected.status().ToString();
  EXPECT_NE(rejected.status().message().find("--engines is 2"),
            std::string::npos)
      << rejected.status().ToString();

  // A corrupt manifest is also loud, not a silent cold start.
  {
    std::ofstream out(cache.manifest(), std::ios::trunc);
    out << "shards zero\n";
  }
  options.num_engines = 3;
  auto corrupt = ShardedEngine::Create(classifier_, &simulator_->ledger(),
                                       options);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("corrupt"), std::string::npos);
}

TEST_F(ShardedServeTest, SweepingClientStopsGrowingTheCache) {
  auto& reg = obs::MetricsRegistry::Instance();
  const uint64_t sweep_before =
      reg.GetCounter("serve.router.sweep_requests")->value();
  ShardedEngineOptions options = DefaultOptions();
  options.sweep_miss_streak = 4;
  auto engine = MakeSharded(options);

  // The working set is warmed anonymously (client_id 0 — batch
  // warm-up traffic is never sweep-tracked); the monitoring client
  // then polls it and only ever hits.
  std::vector<datagen::LabeledAddress> hot(test_->begin(),
                                           test_->begin() + 6);
  std::vector<AddressId> hot_addresses;
  for (const auto& a : hot) hot_addresses.push_back(a.address);
  for (const auto& r : engine->ClassifyBatch(hot_addresses)) {
    ASSERT_TRUE(r.ok());
  }
  const size_t warm_size = engine->CacheSize();
  ASSERT_EQ(warm_size, hot.size());
  ClassifyOptions monitor;
  monitor.client_id = 1;

  // A second client sweeps cold addresses: the first `threshold`
  // misses buy cache slots, then the detector flags it and every
  // later request is stamped kNoPromote — the cache stops growing.
  const std::vector<int> sweep_truth = SerialTruth(*train_);
  ClassifyOptions scanner;
  scanner.client_id = 42;
  for (size_t i = 0; i < train_->size(); ++i) {
    const auto r = engine->Classify((*train_)[i].address, scanner);
    ASSERT_TRUE(r.ok()) << r.status().message();
    // No-promote is invisible to the answer: the scan still gets the
    // exact serial prediction.
    EXPECT_EQ(r.value().predicted, sweep_truth[i]);
  }
  EXPECT_EQ(engine->sweeping_clients(), 1u);
  EXPECT_EQ(engine->CacheSize(),
            warm_size + static_cast<size_t>(options.sweep_miss_streak));
  EXPECT_EQ(reg.GetCounter("serve.router.sweep_requests")->value(),
            sweep_before + train_->size() -
                static_cast<size_t>(options.sweep_miss_streak));

  // The monitoring client's working set survived the sweep untouched.
  for (const auto& a : hot) {
    const auto r = engine->Classify(a.address, monitor);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().cache_hit) << "hot address " << a.address
                                     << " evicted by the sweep";
  }

  // Connection close drops the mark; a recycled id starts clean.
  engine->ForgetClient(scanner.client_id);
  EXPECT_EQ(engine->sweeping_clients(), 0u);
}

}  // namespace
}  // namespace ba::serve
