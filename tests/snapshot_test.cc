// Tests for the ledger's epoch/snapshot layer (chain/ledger.h): O(1)
// snapshot capture, views clamped to the pinned epoch, value-stable
// TransactionsOf across growth, historical replay via SnapshotAt, a
// chain-level writer/reader stress, and the serving-layer acceptance
// test — blocks sealed concurrently with Classify, every result
// consistent with some pinned epoch. Run under BA_SANITIZE=thread to
// validate the concurrency claims.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "chain/ledger.h"
#include "chain/types.h"
#include "chain/wallet.h"
#include "core/aggregator.h"
#include "core/classifier.h"
#include "core/gfn_features.h"
#include "core/graph_builder.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "serve/inference_engine.h"
#include "util/rng.h"

namespace ba {
namespace {

using chain::AddressId;
using chain::Amount;
using chain::Ledger;
using chain::LedgerOptions;
using chain::LedgerSnapshot;
using chain::TxId;
using chain::Utxo;

constexpr Amount kSubsidy = 625'000'000;

Ledger MakeLedger(uint64_t maturity = 0) {
  LedgerOptions opts;
  opts.block_subsidy = kSubsidy;
  opts.coinbase_maturity = maturity;
  return Ledger(opts);
}

/// Mints `blocks` coinbases to `payout`, sealing one block each.
void MineTo(Ledger* ledger, AddressId payout, int blocks,
            chain::Timestamp* now) {
  for (int i = 0; i < blocks; ++i) {
    ++*now;
    ASSERT_TRUE(ledger->ApplyCoinbase(*now, payout).ok());
    ASSERT_TRUE(ledger->SealBlock(*now).ok());
  }
}

TEST(LedgerSnapshotTest, PinsEpochAcrossGrowth) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  chain::Timestamp now = 0;
  MineTo(&ledger, a, 3, &now);

  const LedgerSnapshot snap = ledger.Snapshot();
  EXPECT_EQ(snap.height(), 3u);
  EXPECT_EQ(snap.num_transactions(), 3u);
  EXPECT_EQ(snap.num_addresses(), 1u);
  EXPECT_EQ(snap.TxCountOf(a), 3u);
  const Amount balance_then = snap.BalanceOf(a);

  // Grow the chain: the snapshot must keep answering at its epoch.
  const AddressId b = ledger.NewAddress();
  MineTo(&ledger, a, 2, &now);
  MineTo(&ledger, b, 1, &now);

  EXPECT_EQ(ledger.height(), 6u);
  EXPECT_EQ(ledger.num_transactions(), 6u);
  EXPECT_EQ(snap.height(), 3u);
  EXPECT_EQ(snap.num_transactions(), 3u);
  EXPECT_EQ(snap.TxCountOf(a), 3u);
  EXPECT_EQ(snap.TransactionsOf(a).size(), 3u);
  EXPECT_EQ(snap.BalanceOf(a), balance_then);
  // Address b postdates the snapshot: reads come back empty, not UB.
  EXPECT_EQ(snap.TxCountOf(b), 0u);
  EXPECT_TRUE(snap.TransactionsOf(b).empty());
  EXPECT_TRUE(snap.UnspentOf(b).empty());
  EXPECT_EQ(snap.BalanceOf(b), 0);
}

// Regression for the TransactionsOf dangling-reference hazard: the
// by-value result and any `tx()` references must stay valid while the
// ledger grows far enough to allocate new storage chunks (the old
// vector-backed storage reallocated and invalidated both).
TEST(LedgerSnapshotTest, TransactionsOfStaysValidAcrossChunkGrowth) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  chain::Timestamp now = 0;
  MineTo(&ledger, a, 100, &now);

  const std::vector<TxId> view = ledger.TransactionsOf(a);
  ASSERT_EQ(view.size(), 100u);
  const chain::Transaction& first = ledger.tx(view.front());
  const chain::Transaction& last = ledger.tx(view.back());
  const LedgerSnapshot snap = ledger.Snapshot();

  // 64-element first chunk + geometric growth: 300 more transactions
  // cross several chunk boundaries.
  MineTo(&ledger, a, 300, &now);
  ASSERT_EQ(ledger.num_transactions(), 400u);

  for (size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i], static_cast<TxId>(i));
  }
  // References taken before the growth still point at live storage.
  EXPECT_EQ(first.txid, view.front());
  EXPECT_EQ(last.txid, view.back());
  EXPECT_TRUE(first.coinbase);
  // And the snapshot still serves its epoch.
  EXPECT_EQ(snap.TransactionsOf(a).size(), 100u);
  EXPECT_EQ(snap.tx(view.back()).txid, view.back());
}

TEST(LedgerSnapshotTest, TransactionsOfHonorsMaxCount) {
  Ledger ledger = MakeLedger();
  const AddressId a = ledger.NewAddress();
  chain::Timestamp now = 0;
  MineTo(&ledger, a, 10, &now);
  const LedgerSnapshot snap = ledger.Snapshot();
  EXPECT_EQ(snap.TransactionsOf(a, 4).size(), 4u);
  const std::vector<TxId> capped = snap.TransactionsOf(a, 4);
  EXPECT_EQ(capped, std::vector<TxId>({0, 1, 2, 3}));
  EXPECT_EQ(snap.TransactionsOf(a, 0).size(), 0u);
  EXPECT_EQ(snap.TransactionsOf(a).size(), 10u);
}

TEST(LedgerSnapshotTest, MatchesLiveViewsWhenQuiesced) {
  Ledger ledger = MakeLedger();
  chain::Wallet wallet(&ledger);
  const AddressId a = wallet.CreateAddress();
  chain::Timestamp now = 0;
  MineTo(&ledger, a, 4, &now);
  chain::Wallet payee(&ledger);
  const AddressId dest = payee.CreateAddress();
  ++now;
  ASSERT_TRUE(wallet
                  .Send(now, {{dest, kSubsidy + kSubsidy / 2}}, 1000,
                        chain::ChangePolicy::kFreshAddress)
                  .ok());
  ASSERT_TRUE(ledger.SealBlock(now).ok());

  const LedgerSnapshot snap = ledger.Snapshot();
  for (AddressId addr = 0;
       addr < static_cast<AddressId>(ledger.num_addresses()); ++addr) {
    EXPECT_EQ(snap.TransactionsOf(addr), ledger.TransactionsOf(addr));
    EXPECT_EQ(snap.BalanceOf(addr), ledger.BalanceOf(addr));
    const std::vector<Utxo> live = ledger.UnspentOf(addr);
    const std::vector<Utxo> pinned = snap.UnspentOf(addr);
    ASSERT_EQ(pinned.size(), live.size()) << "address " << addr;
    for (size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(pinned[i].outpoint.Key(), live[i].outpoint.Key());
      EXPECT_EQ(pinned[i].value, live[i].value);
      EXPECT_EQ(pinned[i].confirmed_height, live[i].confirmed_height);
    }
  }
}

TEST(LedgerSnapshotTest, SnapshotAtReplaysSpendHistory) {
  Ledger ledger = MakeLedger();
  chain::Wallet wallet(&ledger);
  const AddressId a = wallet.CreateAddress();
  chain::Timestamp now = 0;
  MineTo(&ledger, a, 2, &now);

  // Epoch 2: two unspent coinbases.
  const LedgerSnapshot before_spend = ledger.SnapshotAt(2);
  EXPECT_EQ(before_spend.UnspentOf(a).size(), 2u);

  chain::Wallet payee(&ledger);
  const AddressId dest = payee.CreateAddress();
  ++now;
  ASSERT_TRUE(wallet
                  .Send(now, {{dest, kSubsidy / 2}}, 0,
                        chain::ChangePolicy::kReuseSource)
                  .ok());
  ASSERT_TRUE(ledger.SealBlock(now).ok());

  // The pre-spend epoch still shows both coinbase outputs unspent and
  // no history for the payee; the post-spend epoch shows the transfer.
  EXPECT_EQ(before_spend.UnspentOf(a).size(), 2u);
  EXPECT_TRUE(before_spend.TransactionsOf(dest).empty());
  const LedgerSnapshot after_spend = ledger.SnapshotAt(3);
  EXPECT_EQ(after_spend.TransactionsOf(dest).size(), 1u);
  Amount a_total = 0;
  for (const Utxo& u : after_spend.UnspentOf(a)) a_total += u.value;
  EXPECT_EQ(a_total, 2 * kSubsidy - kSubsidy / 2);
  EXPECT_EQ(after_spend.UnspentOf(dest).size(), 1u);
  EXPECT_EQ(after_spend.UnspentOf(dest)[0].value, kSubsidy / 2);
}

// Chain-level stress: one writer grows the chain (coinbases, spends,
// seals) with no locking while reader threads continuously capture
// snapshots and check internal consistency of every view. TSan watches
// the publication protocol; the assertions watch the epoch semantics.
TEST(LedgerSnapshotTest, ConcurrentWriterAndSnapshotReaders) {
  Ledger ledger = MakeLedger();
  chain::Wallet wallet(&ledger);
  constexpr int kAddresses = 8;
  std::vector<AddressId> addrs;
  for (int i = 0; i < kAddresses; ++i) addrs.push_back(wallet.CreateAddress());
  chain::Timestamp now = 0;
  MineTo(&ledger, addrs[0], 1, &now);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    Rng rng(7);
    for (int b = 0; b < 120; ++b) {
      ++now;
      const AddressId payout =
          addrs[static_cast<size_t>(rng.UniformInt(0, kAddresses - 1))];
      ASSERT_TRUE(ledger.ApplyCoinbase(now, payout).ok());
      if (b % 5 == 4) {
        // Spend something: exercises UnspentOf replay under growth.
        const AddressId dest =
            addrs[static_cast<size_t>(rng.UniformInt(0, kAddresses - 1))];
        ASSERT_TRUE(wallet
                        .Send(now, {{dest, kSubsidy / 4}}, 100,
                              chain::ChangePolicy::kReuseSource)
                        .ok());
      }
      ASSERT_TRUE(ledger.SealBlock(now).ok());
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<uint64_t> snapshots_checked{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(static_cast<uint64_t>(100 + r));
      do {
        const LedgerSnapshot snap = ledger.Snapshot();
        // The pinned triple is mutually consistent: every transaction
        // of every sealed block is published, and every transaction's
        // addresses exist at the pinned epoch.
        ASSERT_LE(snap.num_transactions(), ledger.num_transactions());
        for (uint64_t h = snap.height(); h-- > 0;) {
          const chain::Block& block = snap.block(h);
          ASSERT_EQ(block.height, h);
          for (TxId id : block.transactions) {
            ASSERT_LT(id, snap.num_transactions());
          }
          if (h + 3 < snap.height()) break;  // spot-check recent blocks
        }
        const AddressId probe =
            addrs[static_cast<size_t>(rng.UniformInt(0, kAddresses - 1))];
        const std::vector<TxId> txs = snap.TransactionsOf(probe);
        ASSERT_EQ(txs.size(), snap.TxCountOf(probe));
        for (size_t i = 0; i < txs.size(); ++i) {
          ASSERT_LT(txs[i], snap.num_transactions());
          if (i > 0) {
            ASSERT_LT(txs[i - 1], txs[i]);  // strictly ascending
          }
          const chain::Transaction& tx = snap.tx(txs[i]);
          ASSERT_EQ(tx.txid, txs[i]);
          ASSERT_LT(tx.block_height, snap.height() + 1);
        }
        // Balance is the mature subset of the unspent set.
        Amount unspent_total = 0;
        for (const Utxo& u : snap.UnspentOf(probe)) unspent_total += u.value;
        ASSERT_LE(snap.BalanceOf(probe), unspent_total);
        snapshots_checked.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(snapshots_checked.load(), 0u);
  EXPECT_TRUE(ledger.CheckConservation().ok());
}

/// Serving-layer fixture: a small trained classifier over a simulated
/// economy (sized down from serve_test's — this suite runs under TSan).
class SnapshotServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 23;
    config.num_blocks = 60;
    config.num_retail_users = 20;
    config.miners_per_pool = 8;
    config.gamblers_per_house = 4;
    simulator_ = new datagen::Simulator(config);
    ASSERT_TRUE(simulator_->Run().ok());

    auto labeled = simulator_->CollectLabeledAddresses(3);
    Rng rng(1);
    const auto split = datagen::StratifiedSplit(labeled, 0.8, &rng);
    ASSERT_GE(split.test.size(), 6u);
    watched_ = new std::vector<datagen::LabeledAddress>(split.test);

    core::BaClassifier::Options opts;
    opts.dataset.construction.slice_size = 20;
    opts.graph_model.epochs = 2;
    opts.graph_model.embed_dim = 16;
    opts.graph_model.hidden_dim = 32;
    opts.aggregator.epochs = 4;
    auto created = core::BaClassifier::Create(opts);
    ASSERT_TRUE(created.ok()) << created.status().message();
    classifier_ = created.value().release();
    ASSERT_TRUE(classifier_->Train(simulator_->ledger(), split.train).ok());
  }

  static void TearDownTestSuite() {
    delete classifier_;
    delete simulator_;
    delete watched_;
    classifier_ = nullptr;
    simulator_ = nullptr;
    watched_ = nullptr;
  }

  /// Serial re-run of the engine's inference path against the epoch
  /// where `address` has exactly `tx_count` (capped) transactions —
  /// the ground truth a snapshot-consistent result must match.
  static int PredictAtEpoch(const chain::Ledger& ledger,
                            AddressId address, uint64_t tx_count) {
    if (tx_count == 0) return 0;
    const std::vector<TxId> full = ledger.TransactionsOf(address);
    EXPECT_LE(tx_count, full.size());
    const LedgerSnapshot snap =
        ledger.SnapshotAt(full[static_cast<size_t>(tx_count) - 1] + 1);
    core::GraphConstructor ctor(classifier_->options().dataset.construction);
    const std::vector<core::AddressGraph> graphs =
        ctor.BuildGraphs(snap, address);
    if (graphs.empty()) return 0;
    const core::GraphModel& model = classifier_->graph_model();
    const int64_t embed_dim = model.embed_dim();
    std::vector<core::EmbeddingSequence> seqs(1);
    seqs[0].embeddings =
        tensor::Tensor({static_cast<int64_t>(graphs.size()), embed_dim});
    for (size_t g = 0; g < graphs.size(); ++g) {
      const core::GraphTensors gt = core::PrepareGraphTensors(
          graphs[g], classifier_->options().dataset.k_hops);
      const tensor::Tensor e = model.Embed(gt);
      for (int64_t j = 0; j < embed_dim; ++j) {
        seqs[0].embeddings.at(static_cast<int64_t>(g), j) = e.at(0, j);
      }
    }
    classifier_->scaler().Apply(&seqs);
    return classifier_->aggregator().Predict(seqs[0].embeddings);
  }

  static datagen::Simulator* simulator_;
  static std::vector<datagen::LabeledAddress>* watched_;
  static core::BaClassifier* classifier_;
};

datagen::Simulator* SnapshotServeTest::simulator_ = nullptr;
std::vector<datagen::LabeledAddress>* SnapshotServeTest::watched_ = nullptr;
core::BaClassifier* SnapshotServeTest::classifier_ = nullptr;

// The tentpole's acceptance test: blocks are sealed from one thread
// while client threads Classify overlapping addresses — no quiescing,
// no external ordering. Every result must be consistent with some
// pinned epoch: its prediction equals the serial re-run at the epoch
// identified by ClassifyResult::tx_count.
TEST_F(SnapshotServeTest, ConcurrentSealWhileClassifyIsEpochConsistent) {
  chain::Ledger* ledger = simulator_->mutable_ledger();
  serve::InferenceEngineOptions options;
  options.num_threads = 2;
  auto engine =
      serve::InferenceEngine::Create(classifier_, ledger, options);
  ASSERT_TRUE(engine.ok()) << engine.status().message();

  struct Observation {
    AddressId address;
    uint64_t tx_count;
    int predicted;
  };
  constexpr int kClients = 3;
  constexpr int kSweeps = 2;
  constexpr int kStreamBlocks = 3;
  std::vector<std::vector<Observation>> observed(kClients);

  std::thread sealer([&] {
    chain::Timestamp now = ledger->block(ledger->height() - 1).timestamp;
    Rng pick(99);
    for (int b = 0; b < kStreamBlocks; ++b) {
      now += ledger->options().block_interval_seconds;
      std::vector<AddressId> payouts;
      std::vector<double> weights;
      for (int i = 0; i < 3; ++i) {
        payouts.push_back(
            (*watched_)[static_cast<size_t>(pick.UniformInt(
                            0, static_cast<int>(watched_->size()) - 1))]
                .address);
        weights.push_back(1.0 / 3.0);
      }
      ASSERT_TRUE(ledger->ApplyCoinbase(now, payouts, weights).ok());
      ASSERT_TRUE(ledger->SealBlock(now).ok());
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        for (size_t i = static_cast<size_t>(c); i < watched_->size();
             i += kClients) {
          const AddressId address = (*watched_)[i].address;
          const auto result = engine.value()->Classify(address);
          ASSERT_TRUE(result.ok()) << result.status().message();
          observed[static_cast<size_t>(c)].push_back(
              {address, result.value().tx_count, result.value().predicted});
        }
      }
    });
  }
  sealer.join();
  for (auto& t : clients) t.join();

  // Verify serially: each observation's prediction must match a
  // re-run at the epoch its batch pinned. Memoized — concurrent
  // sweeps observe the same (address, epoch) pairs repeatedly.
  std::map<std::pair<AddressId, uint64_t>, int> expected;
  size_t total = 0;
  for (const auto& per_client : observed) {
    for (const Observation& ob : per_client) {
      ++total;
      const auto key = std::make_pair(ob.address, ob.tx_count);
      auto it = expected.find(key);
      if (it == expected.end()) {
        it = expected
                 .emplace(key,
                          PredictAtEpoch(*ledger, ob.address, ob.tx_count))
                 .first;
      }
      ASSERT_EQ(ob.predicted, it->second)
          << "address " << ob.address << " at epoch tx_count "
          << ob.tx_count;
    }
  }
  // The clients stripe the watch list disjointly, so together they
  // observe every watched address once per sweep.
  EXPECT_EQ(total, static_cast<size_t>(kSweeps) * watched_->size());
}

}  // namespace
}  // namespace ba
