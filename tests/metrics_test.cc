// Tests for the evaluation metrics of Eq. 23-25: confusion matrix,
// per-class precision/recall/F1 and macro / weighted averages.

#include <gtest/gtest.h>

#include "metrics/classification.h"

namespace ba::metrics {
namespace {

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  cm.Add(0, 1);
  cm.Add(1, 1);
  cm.Add(2, 2);
  EXPECT_EQ(cm.At(0, 0), 1);
  EXPECT_EQ(cm.At(0, 1), 1);
  EXPECT_EQ(cm.TotalCount(), 4);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.75);
}

TEST(ConfusionMatrixTest, VectorConstructor) {
  ConfusionMatrix cm(2, {0, 0, 1, 1}, {0, 1, 1, 1});
  EXPECT_EQ(cm.At(0, 0), 1);
  EXPECT_EQ(cm.At(0, 1), 1);
  EXPECT_EQ(cm.At(1, 1), 2);
}

TEST(ConfusionMatrixTest, HandComputedPrecisionRecallF1) {
  // class 0: tp=8, fp=2, fn=4 -> P=0.8, R=2/3, F1=8/11... compute:
  ConfusionMatrix cm(2);
  for (int i = 0; i < 8; ++i) cm.Add(0, 0);
  for (int i = 0; i < 4; ++i) cm.Add(0, 1);
  for (int i = 0; i < 2; ++i) cm.Add(1, 0);
  for (int i = 0; i < 6; ++i) cm.Add(1, 1);
  const ClassReport r = cm.Report(0);
  EXPECT_DOUBLE_EQ(r.precision, 0.8);
  EXPECT_DOUBLE_EQ(r.recall, 8.0 / 12.0);
  const double expected_f1 =
      2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(r.f1, expected_f1);
  EXPECT_EQ(r.support, 12);
}

TEST(ConfusionMatrixTest, PerfectClassifier) {
  ConfusionMatrix cm(4);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 5; ++i) cm.Add(c, c);
  }
  for (int c = 0; c < 4; ++c) {
    const ClassReport r = cm.Report(c);
    EXPECT_DOUBLE_EQ(r.precision, 1.0);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
    EXPECT_DOUBLE_EQ(r.f1, 1.0);
  }
  EXPECT_DOUBLE_EQ(cm.WeightedAverage().f1, 1.0);
  EXPECT_DOUBLE_EQ(cm.MacroAverage().f1, 1.0);
}

TEST(ConfusionMatrixTest, ClassNeverPredictedHasZeroPrecision) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0);
  cm.Add(1, 0);  // class 1 exists but is never predicted
  const ClassReport r = cm.Report(1);
  EXPECT_DOUBLE_EQ(r.precision, 0.0);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

TEST(ConfusionMatrixTest, AbsentClassHasZeroSupport) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  const ClassReport r = cm.Report(2);
  EXPECT_EQ(r.support, 0);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
}

TEST(ConfusionMatrixTest, WeightedAverageWeighsBySupport) {
  // class 0: 90 samples all correct; class 1: 10 samples all wrong.
  ConfusionMatrix cm(2);
  for (int i = 0; i < 90; ++i) cm.Add(0, 0);
  for (int i = 0; i < 10; ++i) cm.Add(1, 0);
  const ClassReport w = cm.WeightedAverage();
  const ClassReport m = cm.MacroAverage();
  // Weighted recall = 0.9 * 1.0 + 0.1 * 0.0 = 0.9; macro = 0.5.
  EXPECT_DOUBLE_EQ(w.recall, 0.9);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_GT(w.f1, m.f1);
}

TEST(ConfusionMatrixTest, ToStringContainsNames) {
  ConfusionMatrix cm(2);
  cm.Add(0, 1);
  const std::string s = cm.ToString({"Exchange", "Mining"});
  EXPECT_NE(s.find("Exchange"), std::string::npos);
  EXPECT_NE(s.find("Mining"), std::string::npos);
}

TEST(ConfusionMatrixTest, MergePoolsCounts) {
  ConfusionMatrix a(2), b(2);
  a.Add(0, 0);
  a.Add(1, 0);
  b.Add(0, 0);
  b.Add(1, 1);
  a.Merge(b);
  EXPECT_EQ(a.At(0, 0), 2);
  EXPECT_EQ(a.At(1, 0), 1);
  EXPECT_EQ(a.At(1, 1), 1);
  EXPECT_EQ(a.TotalCount(), 4);
  EXPECT_DOUBLE_EQ(a.Accuracy(), 0.75);
}

TEST(ConfusionMatrixTest, EmptyMatrixIsSafe) {
  ConfusionMatrix cm(3);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.WeightedAverage().f1, 0.0);
  EXPECT_DOUBLE_EQ(cm.MacroAverage().precision, 0.0);
}

}  // namespace
}  // namespace ba::metrics
