// Tests for the neural modules: Linear/MLP, LSTM (Eq. 16-21), BiLSTM,
// attention pooling, GCN, GFN and DiffPool encoders.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/centrality.h"
#include "nn/attention.h"
#include "nn/diffpool.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/gfn.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/self_attention.h"
#include "tensor/optimizer.h"

namespace ba::nn {
namespace {

using tensor::Constant;
using tensor::Tensor;
using tensor::Var;

TEST(LinearTest, ShapeAndBias) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  EXPECT_EQ(layer.in_features(), 4);
  EXPECT_EQ(layer.out_features(), 3);
  Var x = Constant(Tensor({2, 4}));
  Var y = layer.Forward(x);
  EXPECT_EQ(y->value.dim(0), 2);
  EXPECT_EQ(y->value.dim(1), 3);
  // Zero input => output equals the bias row.
  EXPECT_FLOAT_EQ(y->value.at(0, 0), y->value.at(1, 0));
}

TEST(LinearTest, ParameterCount) {
  Rng rng(2);
  Linear layer(10, 5, &rng);
  EXPECT_EQ(layer.NumParameters(), 10 * 5 + 5);
}

TEST(MlpTest, LayerStackingAndParams) {
  Rng rng(3);
  Mlp mlp({6, 8, 4, 2}, &rng);
  EXPECT_EQ(mlp.num_layers(), 3u);
  EXPECT_EQ(mlp.NumParameters(), (6 * 8 + 8) + (8 * 4 + 4) + (4 * 2 + 2));
  Var y = mlp.Forward(Constant(Tensor({5, 6})));
  EXPECT_EQ(y->value.dim(0), 5);
  EXPECT_EQ(y->value.dim(1), 2);
}

TEST(MlpTest, TrainsToFitXor) {
  Rng rng(4);
  Tensor x({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  const std::vector<int> y{0, 1, 1, 0};
  Mlp mlp({2, 12, 2}, &rng, Activation::kTanh);
  tensor::Adam adam(mlp.Parameters(), 0.05f);
  float loss_v = 1e9f;
  for (int epoch = 0; epoch < 400; ++epoch) {
    adam.ZeroGrad();
    Var loss = tensor::SoftmaxCrossEntropy(mlp.Forward(Constant(x)), y);
    loss_v = loss->value.item();
    tensor::Backward(loss);
    adam.Step();
  }
  EXPECT_LT(loss_v, 0.05f);
}

TEST(LstmCellTest, StateShapesAndBounds) {
  Rng rng(5);
  LstmCell cell(3, 4, &rng);
  Var x = Constant(Tensor({1, 3}, {1.0f, -1.0f, 0.5f}));
  Var h = Constant(Tensor({1, 4}));
  Var c = Constant(Tensor({1, 4}));
  auto [h2, c2] = cell.Step(x, h, c);
  EXPECT_EQ(h2->value.dim(1), 4);
  EXPECT_EQ(c2->value.dim(1), 4);
  // h = o * tanh(c) is bounded by (-1, 1).
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_LT(std::abs(h2->value.at(0, i)), 1.0f);
  }
}

TEST(LstmCellTest, ZeroInputZeroStatePropagatesThroughGates) {
  Rng rng(6);
  LstmCell cell(2, 3, &rng);
  Var x = Constant(Tensor({1, 2}));
  Var h = Constant(Tensor({1, 3}));
  Var c = Constant(Tensor({1, 3}));
  auto [h2, c2] = cell.Step(x, h, c);
  // With zero bias init: f=i=o=0.5, c~=tanh(0)=0 => c2=0, h2=0.
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(c2->value.at(0, i), 0.0f, 1e-6f);
    EXPECT_NEAR(h2->value.at(0, i), 0.0f, 1e-6f);
  }
}

TEST(LstmTest, ForwardAllShapesAndLastConsistency) {
  Rng rng(7);
  Lstm lstm(3, 5, &rng);
  Var seq = Constant(Tensor::RandomNormal({6, 3}, &rng));
  Var all = lstm.ForwardAll(seq);
  Var last = lstm.ForwardLast(seq);
  EXPECT_EQ(all->value.dim(0), 6);
  EXPECT_EQ(all->value.dim(1), 5);
  for (int64_t j = 0; j < 5; ++j) {
    EXPECT_FLOAT_EQ(last->value.at(0, j), all->value.at(5, j));
  }
}

TEST(LstmTest, OrderSensitivity) {
  // LSTM must distinguish a sequence from its reverse (pooling cannot).
  Rng rng(8);
  Lstm lstm(2, 4, &rng);
  Tensor fwd({3, 2}, {1, 0, 0, 1, -1, 1});
  Var out_fwd = lstm.ForwardLast(Constant(fwd));
  Var out_rev = lstm.ForwardLast(ReverseRows(Constant(fwd)));
  float diff = 0.0f;
  for (int64_t j = 0; j < 4; ++j) {
    diff += std::abs(out_fwd->value.at(0, j) - out_rev->value.at(0, j));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(LstmTest, GradientsFlowToAllGates) {
  Rng rng(9);
  Lstm lstm(2, 3, &rng);
  Var seq = Constant(Tensor::RandomNormal({4, 2}, &rng));
  Var loss = tensor::MeanAll(lstm.ForwardLast(seq));
  tensor::Backward(loss);
  int with_grad = 0;
  for (const auto& p : lstm.Parameters()) with_grad += p->grad_ready;
  EXPECT_EQ(with_grad, 8);  // 4 gates x (W, b)
}

TEST(LstmTest, LearnsLastElementTask) {
  // Predict the class of the LAST element — requires temporal memory.
  Rng rng(10);
  Lstm lstm(2, 8, &rng);
  Linear head(8, 2, &rng);
  std::vector<Var> params = lstm.Parameters();
  auto hp = head.Parameters();
  params.insert(params.end(), hp.begin(), hp.end());
  tensor::Adam adam(params, 0.02f);
  float loss_v = 1e9f;
  for (int epoch = 0; epoch < 150; ++epoch) {
    adam.ZeroGrad();
    std::vector<Var> losses;
    for (int ex = 0; ex < 8; ++ex) {
      const int cls = ex % 2;
      Tensor seq({3, 2});
      for (int64_t t = 0; t < 3; ++t) {
        seq.at(t, 0) = static_cast<float>(rng.Gaussian(0.0, 0.3));
        seq.at(t, 1) = static_cast<float>(rng.Gaussian(0.0, 0.3));
      }
      seq.at(2, cls) += 2.0f;  // signal only in the last step
      losses.push_back(tensor::SoftmaxCrossEntropy(
          head.Forward(lstm.ForwardLast(Constant(seq))), {cls}));
    }
    Var loss = losses[0];
    for (size_t k = 1; k < losses.size(); ++k) {
      loss = tensor::Add(loss, losses[k]);
    }
    loss = tensor::Scale(loss, 1.0f / 8.0f);
    loss_v = loss->value.item();
    tensor::Backward(loss);
    adam.Step();
  }
  EXPECT_LT(loss_v, 0.1f);
}

TEST(BiLstmTest, OutputConcatenatesDirections) {
  Rng rng(11);
  BiLstm bilstm(3, 4, &rng);
  EXPECT_EQ(bilstm.output_size(), 8);
  Var seq = Constant(Tensor::RandomNormal({5, 3}, &rng));
  Var out = bilstm.ForwardLast(seq);
  EXPECT_EQ(out->value.dim(1), 8);
  EXPECT_EQ(bilstm.Parameters().size(), 16u);
}

TEST(ReverseRowsTest, ReversesOrder) {
  Tensor t({3, 2}, {1, 2, 3, 4, 5, 6});
  Var r = ReverseRows(Constant(t));
  EXPECT_FLOAT_EQ(r->value.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(r->value.at(2, 1), 2.0f);
}

TEST(AttentionPoolTest, OutputIsConvexCombination) {
  Rng rng(12);
  AttentionPool pool(3, 4, &rng);
  Tensor seq({4, 3});
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t j = 0; j < 3; ++j) {
      seq.at(t, j) = static_cast<float>(rng.Uniform(0.0, 1.0));
    }
  }
  Var out = pool.Forward(Constant(seq));
  EXPECT_EQ(out->value.dim(0), 1);
  EXPECT_EQ(out->value.dim(1), 3);
  // Convex combination stays within the column-wise min/max envelope.
  for (int64_t j = 0; j < 3; ++j) {
    float lo = 1e9f, hi = -1e9f;
    for (int64_t t = 0; t < 4; ++t) {
      lo = std::min(lo, seq.at(t, j));
      hi = std::max(hi, seq.at(t, j));
    }
    EXPECT_GE(out->value.at(0, j), lo - 1e-5f);
    EXPECT_LE(out->value.at(0, j), hi + 1e-5f);
  }
}

std::shared_ptr<const graph::SparseMatrix> TriangleAdjacency() {
  graph::AdjacencyList adj(3);
  adj.AddEdge(0, 1);
  adj.AddEdge(1, 2);
  adj.AddEdge(2, 0);
  return std::make_shared<const graph::SparseMatrix>(
      graph::NormalizedAdjacency(adj));
}

TEST(GcnTest, LayerPropagatesNeighborInformation) {
  Rng rng(13);
  GcnLayer layer(2, 4, &rng);
  auto adj = TriangleAdjacency();
  Var x = Constant(Tensor::RandomNormal({3, 2}, &rng));
  Var h = layer.Forward(adj, x);
  EXPECT_EQ(h->value.dim(0), 3);
  EXPECT_EQ(h->value.dim(1), 4);
  for (int64_t i = 0; i < h->value.numel(); ++i) {
    EXPECT_GE(h->value.data()[i], 0.0f);  // ReLU output
  }
}

TEST(GcnTest, EncoderShapesAndTrainability) {
  Rng rng(14);
  GcnEncoder::Options opts;
  opts.input_dim = 2;
  opts.hidden_dim = 8;
  opts.embed_dim = 4;
  opts.num_classes = 2;
  GcnEncoder enc(opts, &rng);
  auto adj = TriangleAdjacency();
  Var x = Constant(Tensor::RandomNormal({3, 2}, &rng));
  EXPECT_EQ(enc.Embed(adj, x)->value.dim(1), 4);
  Var logits = enc.Forward(adj, x);
  EXPECT_EQ(logits->value.dim(1), 2);
  Var loss = tensor::SoftmaxCrossEntropy(logits, {1});
  tensor::Backward(loss);
  int with_grad = 0;
  for (const auto& p : enc.Parameters()) with_grad += p->grad_ready;
  EXPECT_EQ(with_grad, static_cast<int>(enc.Parameters().size()));
}

TEST(GfnTest, EmbedIsSumReadout) {
  Rng rng(15);
  GfnEncoder::Options opts;
  opts.input_dim = 3;
  opts.hidden_dim = 6;
  opts.embed_dim = 4;
  opts.num_classes = 2;
  GfnEncoder enc(opts, &rng);
  // Duplicating every node doubles the SUM readout embedding.
  Tensor x1 = Tensor::RandomNormal({4, 3}, &rng);
  Tensor x2({8, 3});
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      x2.at(i, j) = x1.at(i, j);
      x2.at(i + 4, j) = x1.at(i, j);
    }
  }
  Var e1 = enc.Embed(Constant(x1));
  Var e2 = enc.Embed(Constant(x2));
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(e2->value.at(0, j), 2.0f * e1->value.at(0, j), 1e-3f);
  }
}

TEST(GfnTest, TrainsOnSeparableGraphs) {
  Rng rng(16);
  GfnEncoder::Options opts;
  opts.input_dim = 2;
  opts.hidden_dim = 8;
  opts.embed_dim = 4;
  opts.num_classes = 2;
  GfnEncoder enc(opts, &rng);
  tensor::Adam adam(enc.Parameters(), 0.02f);
  float loss_v = 1e9f;
  for (int epoch = 0; epoch < 120; ++epoch) {
    adam.ZeroGrad();
    std::vector<Var> losses;
    for (int ex = 0; ex < 6; ++ex) {
      const int cls = ex % 2;
      const int64_t n = 3 + ex;
      Tensor x({n, 2});
      for (int64_t i = 0; i < n; ++i) {
        x.at(i, 0) = static_cast<float>(rng.Gaussian(cls ? 1.0 : -1.0, 0.2));
        x.at(i, 1) = static_cast<float>(rng.Gaussian(0.0, 0.2));
      }
      losses.push_back(
          tensor::SoftmaxCrossEntropy(enc.Forward(Constant(x)), {cls}));
    }
    Var loss = losses[0];
    for (size_t k = 1; k < losses.size(); ++k) {
      loss = tensor::Add(loss, losses[k]);
    }
    loss = tensor::Scale(loss, 1.0f / 6.0f);
    loss_v = loss->value.item();
    tensor::Backward(loss);
    adam.Step();
  }
  EXPECT_LT(loss_v, 0.1f);
}

TEST(SelfAttentionPoolTest, ShapeAndPermutationSensitivity) {
  Rng rng(31);
  SelfAttentionPool pool(3, 5, &rng);
  Var seq = Constant(Tensor::RandomNormal({4, 3}, &rng));
  Var out = pool.Forward(seq);
  EXPECT_EQ(out->value.dim(0), 1);
  EXPECT_EQ(out->value.dim(1), 5);
  // Mean-pooled self-attention is permutation-invariant over rows: the
  // reversed sequence must produce the same pooled output.
  Var rev = pool.Forward(ReverseRows(seq));
  for (int64_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(out->value.at(0, j), rev->value.at(0, j), 1e-4f);
  }
  EXPECT_EQ(pool.Parameters().size(), 6u);  // 3 linears x (W, b)
}

TEST(SelfAttentionPoolTest, GradientsFlow) {
  Rng rng(32);
  SelfAttentionPool pool(2, 4, &rng);
  Var seq = Constant(Tensor::RandomNormal({3, 2}, &rng));
  Var loss = tensor::MeanAll(pool.Forward(seq));
  tensor::Backward(loss);
  for (const auto& p : pool.Parameters()) {
    EXPECT_TRUE(p->grad_ready);
  }
}

TEST(GatTest, EdgeMaskIncludesSelfLoopsAndEdges) {
  graph::AdjacencyList adj(3);
  adj.AddEdge(0, 1);
  const auto sparse = graph::NormalizedAdjacency(adj);
  const tensor::Tensor mask = EdgeMask(sparse);
  EXPECT_FLOAT_EQ(mask.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(mask.at(2, 2), 1.0f);
  EXPECT_FLOAT_EQ(mask.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(mask.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(mask.at(0, 2), 0.0f);
}

TEST(GatTest, AttentionRespectsMask) {
  // An isolated node's output must depend only on itself: with zero
  // off-diagonal mask entries, attention collapses to identity mixing.
  Rng rng(21);
  GatLayer layer(2, 3, &rng, /*apply_elu=*/false);
  graph::AdjacencyList adj(3);
  adj.AddEdge(0, 1);  // node 2 isolated
  const auto sparse = graph::NormalizedAdjacency(adj);
  Var mask = Constant(EdgeMask(sparse));
  Tensor x1 = Tensor::RandomNormal({3, 2}, &rng);
  Tensor x2 = x1;
  // Perturb node 0's features; node 2's output must not change.
  x2.at(0, 0) += 5.0f;
  const Var out1 = layer.Forward(mask, Constant(x1));
  const Var out2 = layer.Forward(mask, Constant(x2));
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(out1->value.at(2, j), out2->value.at(2, j), 1e-5f);
    // Node 1 is connected to node 0, so its output should move.
  }
  float moved = 0.0f;
  for (int64_t j = 0; j < 3; ++j) {
    moved += std::abs(out1->value.at(1, j) - out2->value.at(1, j));
  }
  EXPECT_GT(moved, 1e-4f);
}

TEST(GatTest, EncoderTrainsAndGradientsFlow) {
  Rng rng(22);
  GatEncoder::Options opts;
  opts.input_dim = 2;
  opts.hidden_dim = 6;
  opts.embed_dim = 4;
  opts.num_classes = 2;
  GatEncoder enc(opts, &rng);
  graph::AdjacencyList adj(4);
  adj.AddEdge(0, 1);
  adj.AddEdge(1, 2);
  adj.AddEdge(2, 3);
  const auto sparse = graph::NormalizedAdjacency(adj);
  Var x = Constant(Tensor::RandomNormal({4, 2}, &rng));
  Var logits = enc.Forward(sparse, x);
  EXPECT_EQ(logits->value.dim(1), 2);
  Var loss = tensor::SoftmaxCrossEntropy(logits, {1});
  tensor::Backward(loss);
  int with_grad = 0;
  for (const auto& p : enc.Parameters()) with_grad += p->grad_ready;
  EXPECT_EQ(with_grad, static_cast<int>(enc.Parameters().size()));
}

TEST(DiffPoolTest, ShapesAndGradients) {
  Rng rng(17);
  DiffPoolEncoder::Options opts;
  opts.input_dim = 3;
  opts.hidden_dim = 6;
  opts.embed_dim = 4;
  opts.num_classes = 2;
  opts.num_clusters = 2;
  DiffPoolEncoder enc(opts, &rng);
  auto adj = TriangleAdjacency();
  Var x = Constant(Tensor::RandomNormal({3, 3}, &rng));
  Var embed = enc.Embed(adj, x);
  EXPECT_EQ(embed->value.dim(0), 1);
  EXPECT_EQ(embed->value.dim(1), 4);
  Var loss = tensor::SoftmaxCrossEntropy(enc.Forward(adj, x), {0});
  tensor::Backward(loss);
  int with_grad = 0;
  for (const auto& p : enc.Parameters()) with_grad += p->grad_ready;
  EXPECT_EQ(with_grad, static_cast<int>(enc.Parameters().size()));
}

}  // namespace
}  // namespace ba::nn
