// Tests for Statistical Feature Extraction (§III-A.2): every statistic
// against hand-computed values, plus parameterized property sweeps.

#include <gtest/gtest.h>

#include <cmath>

#include "core/sfe.h"
#include "util/rng.h"

namespace ba::core {
namespace {

TEST(SfeTest, EmptyInputIsZeroVector) {
  const auto sfe = ComputeSfe({});
  for (double v : sfe) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SfeTest, SingleValue) {
  const auto sfe = ComputeSfe({5.0});
  EXPECT_DOUBLE_EQ(sfe[kSfeMax], 5.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeMin], 5.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeSum], 5.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeMean], 5.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeCount], 1.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeRange], 0.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeMidRange], 5.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeVariance], 0.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeStdDev], 0.0);
  // Degenerate shape statistics report 0, not NaN.
  EXPECT_DOUBLE_EQ(sfe[kSfeKurtosis], 0.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeSkewness], 0.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeTilt], 0.0);
}

TEST(SfeTest, KnownValues) {
  // values = {1, 2, 3, 4}: mean 2.5, var 1.25, p75 = 3.25.
  const auto sfe = ComputeSfe({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(sfe[kSfeMax], 4.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeMin], 1.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeSum], 10.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeMean], 2.5);
  EXPECT_DOUBLE_EQ(sfe[kSfeCount], 4.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeRange], 3.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeMidRange], 2.5);
  EXPECT_DOUBLE_EQ(sfe[kSfePercentile75], 3.25);
  EXPECT_DOUBLE_EQ(sfe[kSfeVariance], 1.25);
  EXPECT_DOUBLE_EQ(sfe[kSfeStdDev], std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(sfe[kSfeMeanAbsDev], 1.0);
  EXPECT_DOUBLE_EQ(sfe[kSfeCoeffVar], std::sqrt(1.25) / 2.5);
  // Symmetric distribution: zero skew and tilt.
  EXPECT_NEAR(sfe[kSfeSkewness], 0.0, 1e-12);
  EXPECT_NEAR(sfe[kSfeTilt], 0.0, 1e-12);
}

TEST(SfeTest, UniformDistributionKurtosis) {
  // Population kurtosis of {1..N} approaches 1.8 for large N.
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(static_cast<double>(i));
  const auto sfe = ComputeSfe(v);
  EXPECT_NEAR(sfe[kSfeKurtosis], 1.8, 0.02);
}

TEST(SfeTest, SkewnessSignMatchesAsymmetry) {
  // Right-skewed data: a few large outliers.
  const auto right = ComputeSfe({1, 1, 1, 1, 1, 10});
  EXPECT_GT(right[kSfeSkewness], 0.5);
  EXPECT_GT(right[kSfeTilt], 0.0);
  const auto left = ComputeSfe({10, 10, 10, 10, 10, 1});
  EXPECT_LT(left[kSfeSkewness], -0.5);
  EXPECT_LT(left[kSfeTilt], 0.0);
}

TEST(SfeTest, CompressionIsMonotoneAndBounded) {
  const auto raw = ComputeSfe({1e6, 2e6, 3e6});
  const auto compressed = CompressSfe(raw);
  EXPECT_LT(compressed[kSfeSum], raw[kSfeSum]);
  EXPECT_NEAR(compressed[kSfeSum], std::log1p(raw[kSfeSum]), 1e-12);
  // Shape statistics are clamped to [-10, 10].
  for (int i : {kSfeCoeffVar, kSfeKurtosis, kSfeSkewness, kSfeTilt}) {
    EXPECT_LE(std::abs(compressed[static_cast<size_t>(i)]), 10.0);
  }
}

TEST(SfeTest, CompressionHandlesNegativeValues) {
  const auto raw = ComputeSfe({-5.0, -3.0, -1.0});
  const auto c = CompressSfe(raw);
  EXPECT_LT(c[kSfeMin], 0.0);  // signed log keeps the sign
  EXPECT_NEAR(c[kSfeMin], -std::log1p(5.0), 1e-12);
}

// ---- Property sweeps over random inputs ----------------------------------

class SfePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SfePropertyTest, ScaleInvariantStatsAreScaleInvariant) {
  Rng rng(GetParam());
  std::vector<double> v;
  const int n = 5 + static_cast<int>(rng.UniformInt(50));
  for (int i = 0; i < n; ++i) v.push_back(rng.LogNormal(0.0, 1.0));
  std::vector<double> scaled = v;
  const double k = 37.5;
  for (auto& x : scaled) x *= k;

  const auto a = ComputeSfe(v);
  const auto b = ComputeSfe(scaled);
  // CV, kurtosis, skewness, tilt are invariant under positive scaling.
  EXPECT_NEAR(a[kSfeCoeffVar], b[kSfeCoeffVar], 1e-9);
  EXPECT_NEAR(a[kSfeKurtosis], b[kSfeKurtosis], 1e-6);
  EXPECT_NEAR(a[kSfeSkewness], b[kSfeSkewness], 1e-6);
  EXPECT_NEAR(a[kSfeTilt], b[kSfeTilt], 1e-6);
  // Scale-carrying stats scale linearly.
  EXPECT_NEAR(b[kSfeMean], k * a[kSfeMean], 1e-6 * k * std::abs(a[kSfeMean]) + 1e-9);
  EXPECT_NEAR(b[kSfeRange], k * a[kSfeRange], 1e-6 * k * a[kSfeRange] + 1e-9);
}

TEST_P(SfePropertyTest, OrderingInvariance) {
  Rng rng(GetParam() + 100);
  std::vector<double> v;
  const int n = 3 + static_cast<int>(rng.UniformInt(30));
  for (int i = 0; i < n; ++i) v.push_back(rng.Gaussian(5.0, 2.0));
  auto shuffled = v;
  rng.Shuffle(&shuffled);
  const auto a = ComputeSfe(v);
  const auto b = ComputeSfe(shuffled);
  for (int i = 0; i < kSfeDim; ++i) {
    EXPECT_NEAR(a[static_cast<size_t>(i)], b[static_cast<size_t>(i)], 1e-9)
        << "stat " << i;
  }
}

TEST_P(SfePropertyTest, BasicBoundsHold) {
  Rng rng(GetParam() + 200);
  std::vector<double> v;
  const int n = 2 + static_cast<int>(rng.UniformInt(100));
  for (int i = 0; i < n; ++i) v.push_back(rng.LogNormal(1.0, 1.5));
  const auto s = ComputeSfe(v);
  EXPECT_GE(s[kSfeMax], s[kSfePercentile75]);
  EXPECT_GE(s[kSfePercentile75], s[kSfeMin]);
  EXPECT_GE(s[kSfeMax], s[kSfeMean]);
  EXPECT_LE(s[kSfeMin], s[kSfeMean]);
  EXPECT_GE(s[kSfeVariance], 0.0);
  EXPECT_NEAR(s[kSfeStdDev] * s[kSfeStdDev], s[kSfeVariance],
              1e-6 * s[kSfeVariance] + 1e-12);
  EXPECT_LE(s[kSfeMeanAbsDev], s[kSfeStdDev] + 1e-9);  // MAD <= stddev
  EXPECT_DOUBLE_EQ(s[kSfeCount], static_cast<double>(n));
  EXPECT_DOUBLE_EQ(s[kSfeRange], s[kSfeMax] - s[kSfeMin]);
  EXPECT_DOUBLE_EQ(s[kSfeMidRange], (s[kSfeMax] + s[kSfeMin]) / 2.0);
  // Population kurtosis >= 1 always (>= squared skewness + 1).
  if (s[kSfeVariance] > 1e-12) {
    EXPECT_GE(s[kSfeKurtosis] + 1e-9,
              s[kSfeSkewness] * s[kSfeSkewness] + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, SfePropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace ba::core
