// Tests for parameter checkpointing (src/tensor/serialize) and the
// BaClassifier save/load round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/classifier.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "nn/linear.h"
#include "tensor/serialize.h"

namespace ba::tensor {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/ba_ckpt_" + name + "_" + std::to_string(::getpid())) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SerializeTest, TensorRoundTrip) {
  Rng rng(1);
  std::vector<Var> params{Param(Tensor::RandomNormal({3, 4}, &rng)),
                          Param(Tensor::RandomNormal({1, 7}, &rng)),
                          Param(Tensor::Scalar(2.5f))};
  TempFile file("roundtrip");
  ASSERT_TRUE(SaveParameters(params, file.path()).ok());

  std::vector<Var> restored{Param(Tensor({3, 4})), Param(Tensor({1, 7})),
                            Param(Tensor())};
  ASSERT_TRUE(LoadParameters(restored, file.path()).ok());
  for (size_t p = 0; p < params.size(); ++p) {
    ASSERT_TRUE(params[p]->value.SameShape(restored[p]->value));
    for (int64_t i = 0; i < params[p]->value.numel(); ++i) {
      EXPECT_FLOAT_EQ(params[p]->value.data()[i],
                      restored[p]->value.data()[i]);
    }
  }
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(2);
  std::vector<Var> params{Param(Tensor::RandomNormal({3, 4}, &rng))};
  TempFile file("shape_mismatch");
  ASSERT_TRUE(SaveParameters(params, file.path()).ok());
  std::vector<Var> wrong_shape{Param(Tensor({4, 3}))};
  EXPECT_FALSE(LoadParameters(wrong_shape, file.path()).ok());
  std::vector<Var> wrong_count{Param(Tensor({3, 4})), Param(Tensor({1, 1}))};
  EXPECT_FALSE(LoadParameters(wrong_count, file.path()).ok());
}

TEST(SerializeTest, GarbageFileRejected) {
  TempFile file("garbage");
  {
    std::ofstream out(file.path());
    out << "this is not a checkpoint";
  }
  std::vector<Var> params{Param(Tensor({2, 2}))};
  EXPECT_FALSE(LoadParameters(params, file.path()).ok());
  EXPECT_EQ(LoadParameters(params, "/no/such/file.batn").code(),
            StatusCode::kNotFound);
}

TEST(SerializeTest, ModuleWeightsSurviveRoundTrip) {
  Rng rng(3);
  nn::Linear layer(5, 3, &rng);
  const Var x = Constant(Tensor::RandomNormal({2, 5}, &rng));
  const Tensor before = layer.Forward(x)->value;

  TempFile file("linear");
  ASSERT_TRUE(SaveParameters(layer.Parameters(), file.path()).ok());
  Rng rng2(99);  // different init
  nn::Linear restored(5, 3, &rng2);
  ASSERT_TRUE(LoadParameters(restored.Parameters(), file.path()).ok());
  const Tensor after = restored.Forward(x)->value;
  for (int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_FLOAT_EQ(before.data()[i], after.data()[i]);
  }
}

TEST(SerializeTest, BaClassifierSaveLoadPredictionsIdentical) {
  datagen::ScenarioConfig config;
  config.seed = 23;
  config.num_blocks = 100;
  config.num_retail_users = 30;
  config.miners_per_pool = 12;
  config.gamblers_per_house = 6;
  datagen::Simulator simulator(config);
  ASSERT_TRUE(simulator.Run().ok());
  auto labeled = simulator.CollectLabeledAddresses(3);
  Rng rng(1);
  const auto split = datagen::StratifiedSplit(labeled, 0.8, &rng);

  core::BaClassifier::Options opts;
  opts.graph_model.epochs = 4;
  opts.aggregator.epochs = 8;
  core::BaClassifier original(opts);
  ASSERT_TRUE(original.Train(simulator.ledger(), split.train).ok());

  TempFile file("baclassifier");
  ASSERT_TRUE(original.Save(file.path()).ok());

  core::BaClassifier restored(opts);
  ASSERT_TRUE(restored.Load(file.path()).ok());
  const auto p1 = original.Predict(simulator.ledger(), split.test);
  const auto p2 = restored.Predict(simulator.ledger(), split.test);
  EXPECT_EQ(p1, p2);
}

TEST(SerializeTest, UntrainedClassifierCannotSave) {
  core::BaClassifier::Options opts;
  core::BaClassifier clf(opts);
  EXPECT_EQ(clf.Save("/tmp/never_written.batn").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ba::tensor
