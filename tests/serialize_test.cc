// Tests for parameter checkpointing (src/tensor/serialize) and the
// BaClassifier save/load round trip.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/classifier.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "nn/linear.h"
#include "tensor/serialize.h"
#include "util/fs.h"

namespace ba::tensor {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/ba_ckpt_" + name + "_" + std::to_string(::getpid())) {}
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string Slurp(const std::string& path) {
  auto r = util::ReadFileToString(path);
  EXPECT_TRUE(r.ok());
  return r.ValueOr("");
}

void Spew(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

/// Bytes of a valid small v2 checkpoint (two tensors).
std::string SmallCheckpointBytes(const std::string& tag) {
  Rng rng(11);
  std::vector<Var> params{Param(Tensor::RandomNormal({2, 3}, &rng)),
                          Param(Tensor::RandomNormal({4}, &rng))};
  TempFile file(tag);
  EXPECT_TRUE(SaveParameters(params, file.path()).ok());
  return Slurp(file.path());
}

std::vector<Var> SmallCheckpointParams() {
  return {Param(Tensor({2, 3})), Param(Tensor({4}))};
}

TEST(SerializeTest, TensorRoundTrip) {
  Rng rng(1);
  std::vector<Var> params{Param(Tensor::RandomNormal({3, 4}, &rng)),
                          Param(Tensor::RandomNormal({1, 7}, &rng)),
                          Param(Tensor::Scalar(2.5f))};
  TempFile file("roundtrip");
  ASSERT_TRUE(SaveParameters(params, file.path()).ok());

  std::vector<Var> restored{Param(Tensor({3, 4})), Param(Tensor({1, 7})),
                            Param(Tensor())};
  ASSERT_TRUE(LoadParameters(restored, file.path()).ok());
  for (size_t p = 0; p < params.size(); ++p) {
    ASSERT_TRUE(params[p]->value.SameShape(restored[p]->value));
    for (int64_t i = 0; i < params[p]->value.numel(); ++i) {
      EXPECT_FLOAT_EQ(params[p]->value.data()[i],
                      restored[p]->value.data()[i]);
    }
  }
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(2);
  std::vector<Var> params{Param(Tensor::RandomNormal({3, 4}, &rng))};
  TempFile file("shape_mismatch");
  ASSERT_TRUE(SaveParameters(params, file.path()).ok());
  std::vector<Var> wrong_shape{Param(Tensor({4, 3}))};
  EXPECT_FALSE(LoadParameters(wrong_shape, file.path()).ok());
  std::vector<Var> wrong_count{Param(Tensor({3, 4})), Param(Tensor({1, 1}))};
  EXPECT_FALSE(LoadParameters(wrong_count, file.path()).ok());
}

TEST(SerializeTest, GarbageFileRejected) {
  TempFile file("garbage");
  {
    std::ofstream out(file.path());
    out << "this is not a checkpoint";
  }
  std::vector<Var> params{Param(Tensor({2, 2}))};
  EXPECT_FALSE(LoadParameters(params, file.path()).ok());
  EXPECT_EQ(LoadParameters(params, "/no/such/file.batn").code(),
            StatusCode::kNotFound);
}

TEST(SerializeTest, ModuleWeightsSurviveRoundTrip) {
  Rng rng(3);
  nn::Linear layer(5, 3, &rng);
  const Var x = Constant(Tensor::RandomNormal({2, 5}, &rng));
  const Tensor before = layer.Forward(x)->value;

  TempFile file("linear");
  ASSERT_TRUE(SaveParameters(layer.Parameters(), file.path()).ok());
  Rng rng2(99);  // different init
  nn::Linear restored(5, 3, &rng2);
  ASSERT_TRUE(LoadParameters(restored.Parameters(), file.path()).ok());
  const Tensor after = restored.Forward(x)->value;
  for (int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_FLOAT_EQ(before.data()[i], after.data()[i]);
  }
}

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Hand-written checkpoint bytes: magic + version + count, then caller-
/// provided tensor records. Lets corruption tests forge any header.
std::string ForgeCheckpoint(uint32_t version, uint64_t count,
                            const std::string& body) {
  std::string out = "BATN";
  AppendPod(&out, version);
  AppendPod(&out, count);
  out += body;
  return out;
}

/// One tensor record with the given header and `numel` float payload.
std::string TensorRecord(uint32_t rank, const std::vector<int64_t>& dims,
                         int64_t numel, float base) {
  std::string out;
  AppendPod(&out, rank);
  for (int64_t d : dims) AppendPod(&out, d);
  for (int64_t i = 0; i < numel; ++i) {
    AppendPod(&out, base + 0.5f * static_cast<float>(i));
  }
  return out;
}

TEST(SerializeTest, LegacyV1FormatStillLoads) {
  // A v1 file has no CRC trailer; the loader must accept it unchanged.
  const std::string bytes =
      ForgeCheckpoint(1, 2,
                      TensorRecord(2, {2, 3}, 6, 1.0f) +
                          TensorRecord(1, {4}, 4, 100.0f));
  TempFile file("v1_compat");
  Spew(file.path(), bytes);
  auto params = SmallCheckpointParams();
  const Status st = LoadParameters(params, file.path());
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FLOAT_EQ(params[0]->value.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(params[0]->value.at(1, 2), 1.0f + 0.5f * 5);
  EXPECT_FLOAT_EQ(params[1]->value[3], 100.0f + 0.5f * 3);
}

TEST(SerializeTest, EverySingleByteFlipIsRejected) {
  const std::string good = SmallCheckpointBytes("flip_src");
  ASSERT_GT(good.size(), 20u);
  TempFile file("flip");
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    Spew(file.path(), bad);
    auto params = SmallCheckpointParams();
    EXPECT_FALSE(LoadParameters(params, file.path()).ok())
        << "flip at byte " << i << " loaded silently";
  }
}

TEST(SerializeTest, TruncationAtEveryLengthRejected) {
  const std::string good = SmallCheckpointBytes("trunc_src");
  TempFile file("trunc");
  for (size_t len = 0; len < good.size(); ++len) {
    Spew(file.path(), good.substr(0, len));
    auto params = SmallCheckpointParams();
    EXPECT_FALSE(LoadParameters(params, file.path()).ok())
        << "truncation to " << len << " bytes loaded";
  }
}

TEST(SerializeTest, CorruptHeadersRejectedWithDescriptiveErrors) {
  // Forged v1 files (no CRC) exercise the plausibility bounds directly:
  // a bogus header value must fail by validation, not by allocation.
  const std::string valid_body =
      TensorRecord(2, {2, 3}, 6, 0.0f) + TensorRecord(1, {4}, 4, 0.0f);
  struct Case {
    const char* name;
    std::string bytes;
    const char* expect;  // substring of the error message
  };
  const Case cases[] = {
      {"bad magic", "XXXX" + ForgeCheckpoint(1, 2, valid_body).substr(4),
       "not a BATN checkpoint"},
      {"unsupported version", ForgeCheckpoint(7, 2, valid_body),
       "unsupported checkpoint version"},
      {"absurd tensor count",
       ForgeCheckpoint(1, uint64_t{1} << 40, valid_body),
       "implausible tensor count"},
      {"tensor count mismatch", ForgeCheckpoint(1, 1, valid_body),
       "1 tensors, model has 2"},
      {"absurd rank",
       ForgeCheckpoint(1, 2, TensorRecord(200, {2, 3}, 6, 0.0f)),
       "implausible rank"},
      {"rank mismatch",
       ForgeCheckpoint(1, 2, TensorRecord(3, {2, 3, 1}, 6, 0.0f) +
                                 TensorRecord(1, {4}, 4, 0.0f)),
       "rank mismatch"},
      {"absurd dim",
       ForgeCheckpoint(1, 2,
                       TensorRecord(2, {2, int64_t{1} << 40}, 6, 0.0f)),
       "implausible dim"},
      {"negative dim",
       ForgeCheckpoint(1, 2, TensorRecord(2, {2, -3}, 6, 0.0f)),
       "implausible dim"},
      {"shape mismatch",
       ForgeCheckpoint(1, 2, TensorRecord(2, {3, 2}, 6, 0.0f) +
                                 TensorRecord(1, {4}, 4, 0.0f)),
       "shape mismatch"},
      {"truncated payload",
       ForgeCheckpoint(1, 2, TensorRecord(2, {2, 3}, 3, 0.0f)),
       "truncated payload"},
      {"truncated mid-header",
       ForgeCheckpoint(1, 2, valid_body.substr(0, 6)), "truncated header"},
      {"trailing garbage",
       ForgeCheckpoint(1, 2, valid_body + "extra bytes"),
       "trailing garbage"},
  };
  TempFile file("forged");
  for (const Case& c : cases) {
    Spew(file.path(), c.bytes);
    auto params = SmallCheckpointParams();
    const Status st = LoadParameters(params, file.path());
    EXPECT_FALSE(st.ok()) << c.name;
    EXPECT_NE(st.message().find(c.expect), std::string::npos)
        << c.name << ": got \"" << st.ToString() << "\"";
  }
}

TEST(SerializeTest, SaveIsAtomicUnderFaultInjection) {
  Rng rng(4);
  std::vector<Var> params{Param(Tensor::RandomNormal({3, 3}, &rng))};
  TempFile file("atomic");
  ASSERT_TRUE(SaveParameters(params, file.path()).ok());
  const std::string before = Slurp(file.path());
  for (const std::string& point : util::AtomicFileWriter::FaultPoints()) {
    util::FaultInjector::Instance().Arm(point);
    EXPECT_FALSE(SaveParameters(params, file.path()).ok());
    util::FaultInjector::Instance().DisarmAll();
    EXPECT_EQ(Slurp(file.path()), before) << "torn by fault at " << point;
  }
}

TEST(SerializeTest, BaClassifierSaveLoadPredictionsIdentical) {
  datagen::ScenarioConfig config;
  config.seed = 23;
  config.num_blocks = 100;
  config.num_retail_users = 30;
  config.miners_per_pool = 12;
  config.gamblers_per_house = 6;
  datagen::Simulator simulator(config);
  ASSERT_TRUE(simulator.Run().ok());
  auto labeled = simulator.CollectLabeledAddresses(3);
  Rng rng(1);
  const auto split = datagen::StratifiedSplit(labeled, 0.8, &rng);

  core::BaClassifier::Options opts;
  opts.graph_model.epochs = 4;
  opts.aggregator.epochs = 8;
  core::BaClassifier original(opts);
  ASSERT_TRUE(original.Train(simulator.ledger(), split.train).ok());

  TempFile file("baclassifier");
  ASSERT_TRUE(original.Save(file.path()).ok());

  core::BaClassifier restored(opts);
  ASSERT_TRUE(restored.Load(file.path()).ok());
  std::vector<int> p1, p2;
  ASSERT_TRUE(original.Predict(simulator.ledger(), split.test, &p1).ok());
  ASSERT_TRUE(restored.Predict(simulator.ledger(), split.test, &p2).ok());
  EXPECT_EQ(p1, p2);
}

TEST(SerializeTest, UntrainedClassifierCannotSave) {
  core::BaClassifier::Options opts;
  core::BaClassifier clf(opts);
  EXPECT_EQ(clf.Save("/tmp/never_written.batn").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ba::tensor
