// Unit tests for src/util: Status/Result, Rng, Stopwatch, ThreadPool,
// TablePrinter, CliFlags.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>

#include "util/cli.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace ba {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("over budget").ToString(),
            "ResourceExhausted: over budget");
  EXPECT_EQ(Status::DeadlineExceeded("too late").ToString(),
            "DeadlineExceeded: too late");
}

TEST(RetryTest, DefaultPolicyRunsExactlyOnce) {
  int calls = 0;
  const Status st = util::RetryWithBackoff(
      util::RetryPolicy{}, "op", [&] {
        ++calls;
        return Status::Internal("transient");
      });
  EXPECT_EQ(calls, 1);
  // Fail-fast default: the status comes back verbatim, unannotated.
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(st.message(), "transient");
}

TEST(RetryTest, RetriesTransientFailuresUntilSuccess) {
  util::RetryPolicy policy = util::RetryPolicy::Standard(5);
  policy.initial_backoff_seconds = 1e-4;
  policy.max_backoff_seconds = 1e-3;
  int calls = 0;
  const Status st = util::RetryWithBackoff(policy, "op", [&] {
    return ++calls < 3 ? Status::ResourceExhausted("busy") : Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, NonRetryableFailureReturnsImmediately) {
  util::RetryPolicy policy = util::RetryPolicy::Standard(5);
  int calls = 0;
  const Status st = util::RetryWithBackoff(policy, "op", [&] {
    ++calls;
    return Status::InvalidArgument("permanent");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "permanent");
}

TEST(RetryTest, ExhaustedBudgetAnnotatesLastError) {
  util::RetryPolicy policy = util::RetryPolicy::Standard(3);
  policy.initial_backoff_seconds = 1e-5;
  policy.max_backoff_seconds = 1e-4;
  int calls = 0;
  const Status st = util::RetryWithBackoff(policy, "flaky save", [&] {
    ++calls;
    return Status::Internal("disk full");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("flaky save"), std::string::npos);
  EXPECT_NE(st.message().find("disk full"), std::string::npos);
  EXPECT_NE(st.message().find("max_attempts=3"), std::string::npos);
}

TEST(RetryTest, DeadlineAbandonsRemainingAttempts) {
  util::RetryPolicy policy = util::RetryPolicy::Standard(100);
  policy.initial_backoff_seconds = 0.02;
  policy.max_backoff_seconds = 0.02;
  policy.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  int calls = 0;
  const Status st = util::RetryWithBackoff(policy, "op", [&] {
    ++calls;
    return Status::Internal("down");
  });
  EXPECT_FALSE(st.ok());
  // Far fewer than 100 attempts: a backoff sleep that would land past
  // the deadline abandons the loop instead.
  EXPECT_LT(calls, 10);
  EXPECT_NE(st.message().find("deadline reached"), std::string::npos);
}

TEST(RetryTest, ValidateRejectsBadPolicies) {
  util::RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_EQ(util::RetryWithBackoff(policy, "op", [] {
              return Status::OK();
            }).code(),
            StatusCode::kInvalidArgument);
  policy = util::RetryPolicy{};
  policy.initial_backoff_seconds = -1.0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = util::RetryPolicy{};
  policy.max_backoff_seconds = policy.initial_backoff_seconds / 2.0;
  EXPECT_FALSE(policy.Validate().ok());
  EXPECT_TRUE(util::RetryPolicy::Standard().Validate().ok());
}

TEST(RetryTest, ClassifiesRetryableStatuses) {
  EXPECT_TRUE(util::IsRetryableStatus(Status::Internal("io")));
  EXPECT_TRUE(
      util::IsRetryableStatus(Status::ResourceExhausted("backpressure")));
  EXPECT_FALSE(util::IsRetryableStatus(Status::OK()));
  EXPECT_FALSE(util::IsRetryableStatus(Status::InvalidArgument("bad")));
  EXPECT_FALSE(util::IsRetryableStatus(Status::NotFound("gone")));
  EXPECT_FALSE(
      util::IsRetryableStatus(Status::DeadlineExceeded("expired")));
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int v) {
  BA_RETURN_NOT_OK(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_FALSE(Propagates(-1).ok());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::OutOfRange("not positive");
  return v;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(*good, 5);

  Result<int> bad = ParsePositive(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.ValueOr(-7), -7);
}

Result<int> Doubled(int v) {
  BA_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return 2 * x;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(Doubled(3).ok());
  EXPECT_EQ(Doubled(3).value(), 6);
  EXPECT_FALSE(Doubled(-3).ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
  for (int i = 0; i < 100; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(5);
  for (double mean : {0.5, 3.0, 20.0, 100.0}) {
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) total += static_cast<double>(rng.Poisson(mean));
    EXPECT_NEAR(total / n, mean, mean * 0.08 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(9);
  double total = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) total += rng.Exponential(2.0);
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(RngTest, ZipfFavorsSmallIndices) {
  Rng rng(3);
  int first = 0, last = 0;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Zipf(100, 1.2);
    EXPECT_LT(v, 100u);
    if (v == 0) ++first;
    if (v == 99) ++last;
  }
  EXPECT_GT(first, 20 * std::max(last, 1));
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(StopwatchTest, AccumulatesAcrossIntervals) {
  Stopwatch w;
  w.Start();
  w.Stop();
  const int64_t first = w.ElapsedNanos();
  EXPECT_GE(first, 0);
  w.Start();
  w.Stop();
  EXPECT_GE(w.ElapsedNanos(), first);
  w.Reset();
  EXPECT_EQ(w.ElapsedNanos(), 0);
}

TEST(StopwatchTest, ScopedTimerAccumulates) {
  Stopwatch w;
  {
    ScopedTimer t(&w);
    volatile int sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  }
  EXPECT_GT(w.ElapsedNanos(), 0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Shutdown();  // drains the pending task, then joins
  EXPECT_EQ(counter.load(), 1);
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1); }));
  EXPECT_EQ(counter.load(), 1);
  pool.Shutdown();  // idempotent
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ParallelForRunsInlineAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::vector<int> hits(10, 0);  // plain ints: iterations run inline
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(TablePrinterTest, RendersAlignedRows) {
  TablePrinter t({"Model", "F1"});
  t.AddRow({"GFN", "0.9769"});
  t.AddRow({"GCN", "0.9514"});
  std::ostringstream os;
  t.Print(os, "Table II");
  const std::string out = os.str();
  EXPECT_NE(out.find("Table II"), std::string::npos);
  EXPECT_NE(out.find("GFN"), std::string::npos);
  EXPECT_NE(out.find("0.9514"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsFixedPrecision) {
  EXPECT_EQ(TablePrinter::Num(0.97693, 4), "0.9769");
  EXPECT_EQ(TablePrinter::Num(1.0, 2), "1.00");
}

TEST(TablePrinterTest, CountAddsThousandsSeparators) {
  EXPECT_EQ(TablePrinter::Count(912322), "912,322");
  EXPECT_EQ(TablePrinter::Count(133), "133");
  EXPECT_EQ(TablePrinter::Count(2138657), "2,138,657");
  EXPECT_EQ(TablePrinter::Count(-1500), "-1,500");
}

TEST(CliFlagsTest, ParsesFormsAndDefaults) {
  const char* argv[] = {"prog",     "--addresses", "500",  "--seed=9",
                        "--verbose", "--rate",      "0.25"};
  CliFlags flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("addresses", 0), 500);
  EXPECT_EQ(flags.GetInt("seed", 0), 9);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 0.25);
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
}

/// Restores the process-wide logger configuration on scope exit.
class LogConfigGuard {
 public:
  LogConfigGuard() : level_(util::log::MinLevel()) {}
  ~LogConfigGuard() {
    util::log::SetMinLevel(level_);
    util::log::SetModuleFilter("");
  }

 private:
  util::log::Level level_;
};

TEST(LoggingTest, ParseLevelAcceptsNamesAndFallsBack) {
  using util::log::Level;
  using util::log::ParseLevel;
  EXPECT_EQ(ParseLevel("debug", Level::kOff), Level::kDebug);
  EXPECT_EQ(ParseLevel("INFO", Level::kOff), Level::kInfo);
  EXPECT_EQ(ParseLevel("Warn", Level::kOff), Level::kWarn);
  EXPECT_EQ(ParseLevel("warning", Level::kOff), Level::kWarn);
  EXPECT_EQ(ParseLevel("error", Level::kOff), Level::kError);
  EXPECT_EQ(ParseLevel("off", Level::kDebug), Level::kOff);
  EXPECT_EQ(ParseLevel("bogus", Level::kInfo), Level::kInfo);
}

TEST(LoggingTest, MinLevelGatesShouldLog) {
  LogConfigGuard guard;
  using util::log::Level;
  util::log::SetMinLevel(Level::kWarn);
  EXPECT_FALSE(util::log::ShouldLog(Level::kDebug, "test"));
  EXPECT_FALSE(util::log::ShouldLog(Level::kInfo, "test"));
  EXPECT_TRUE(util::log::ShouldLog(Level::kWarn, "test"));
  EXPECT_TRUE(util::log::ShouldLog(Level::kError, "test"));
  util::log::SetMinLevel(Level::kOff);
  EXPECT_FALSE(util::log::ShouldLog(Level::kError, "test"));
}

TEST(LoggingTest, ModuleFilterMatchesPrefixes) {
  LogConfigGuard guard;
  using util::log::Level;
  util::log::SetMinLevel(Level::kDebug);
  util::log::SetModuleFilter("core.train, obs");
  EXPECT_TRUE(util::log::ShouldLog(Level::kInfo, "core.train"));
  EXPECT_TRUE(util::log::ShouldLog(Level::kInfo, "core.train.epoch"));
  EXPECT_TRUE(util::log::ShouldLog(Level::kInfo, "obs.trace"));
  EXPECT_FALSE(util::log::ShouldLog(Level::kInfo, "serve"));
  util::log::SetModuleFilter("");
  EXPECT_TRUE(util::log::ShouldLog(Level::kInfo, "serve"));
}

TEST(LoggingTest, FilteredStatementSkipsOperandEvaluation) {
  LogConfigGuard guard;
  util::log::SetMinLevel(util::log::Level::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  BA_LOG(Debug, "test") << "value " << expensive();
  EXPECT_EQ(evaluations, 0);
  BA_LOG(Error, "test") << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace ba
