// End-to-end tests for the network serving front end: a real Server
// on ephemeral ports, real blocking Clients over loopback. Covers
// wire-vs-in-process answer equivalence, pipelined correlation ids,
// the admin line protocol, protocol-violation goodbyes (one kError
// frame, then close), shedding under an admission-controlled engine,
// concurrent connections, and clean Stop with requests in flight.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chain/ledger.h"
#include "core/classifier.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/inference_engine.h"
#include "util/fs.h"
#include "util/rng.h"

namespace ba {
namespace {

using chain::AddressId;
using net::Client;
using net::Server;
using net::ServerOptions;
using serve::ClassifyOptions;
using serve::InferenceEngine;
using serve::RequestOutcome;

/// Structural JSON well-formedness: every brace/bracket balances and
/// every string closes, honoring escapes. Admin replies and saved
/// traces must satisfy this even when produced under overload.
bool JsonWellFormed(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string && !text.empty();
}

/// Every fault-injection test must leave the global injector clean.
class FaultGuard {
 public:
  FaultGuard() { util::FaultInjector::Instance().DisarmAll(); }
  ~FaultGuard() { util::FaultInjector::Instance().DisarmAll(); }
};

/// One trained classifier + simulated economy shared by every test;
/// each test stands up its own engine and server on ephemeral ports.
class NetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 23;
    config.num_blocks = 60;
    config.num_retail_users = 20;
    config.miners_per_pool = 8;
    config.gamblers_per_house = 4;
    simulator_ = new datagen::Simulator(config);
    ASSERT_TRUE(simulator_->Run().ok());

    auto labeled = simulator_->CollectLabeledAddresses(3);
    Rng rng(1);
    const auto split = datagen::StratifiedSplit(labeled, 0.8, &rng);
    ASSERT_GE(split.test.size(), 6u);
    watched_ = new std::vector<datagen::LabeledAddress>(split.test);

    core::BaClassifier::Options opts;
    opts.dataset.construction.slice_size = 20;
    opts.graph_model.epochs = 2;
    opts.graph_model.embed_dim = 16;
    opts.graph_model.hidden_dim = 32;
    opts.aggregator.epochs = 4;
    auto created = core::BaClassifier::Create(opts);
    ASSERT_TRUE(created.ok()) << created.status().message();
    classifier_ = created.value().release();
    ASSERT_TRUE(classifier_->Train(simulator_->ledger(), split.train).ok());
  }

  static void TearDownTestSuite() {
    delete classifier_;
    delete simulator_;
    delete watched_;
    classifier_ = nullptr;
    simulator_ = nullptr;
    watched_ = nullptr;
  }

  static std::unique_ptr<InferenceEngine> MakeEngine(
      serve::InferenceEngineOptions options = {}) {
    options.num_threads = 2;
    auto engine = InferenceEngine::Create(
        classifier_, &simulator_->ledger(), std::move(options));
    EXPECT_TRUE(engine.ok()) << engine.status().message();
    return std::move(engine.value());
  }

  static std::unique_ptr<Server> MakeServer(InferenceEngine* engine,
                                            ServerOptions options = {}) {
    auto server =
        Server::Create(engine, &simulator_->ledger(), std::move(options));
    EXPECT_TRUE(server.ok()) << server.status().message();
    EXPECT_TRUE(server.value()->Start().ok());
    return std::move(server.value());
  }

  static Client Dial(const Server& server) {
    auto client = Client::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().message();
    return std::move(client.value());
  }

  static datagen::Simulator* simulator_;
  static std::vector<datagen::LabeledAddress>* watched_;
  static core::BaClassifier* classifier_;
};

datagen::Simulator* NetTest::simulator_ = nullptr;
std::vector<datagen::LabeledAddress>* NetTest::watched_ = nullptr;
core::BaClassifier* NetTest::classifier_ = nullptr;

TEST_F(NetTest, WireAnswersMatchInProcessClassify) {
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());
  Client client = Dial(*server);

  for (size_t i = 0; i < std::min<size_t>(watched_->size(), 6); ++i) {
    const AddressId address = (*watched_)[i].address;
    const auto wire = client.Classify(address);
    ASSERT_TRUE(wire.ok()) << wire.status().message();
    const auto local = engine->Classify(address);
    ASSERT_TRUE(local.ok()) << local.status().message();
    EXPECT_EQ(wire.value().predicted, local.value().predicted)
        << "address " << address;
    EXPECT_EQ(wire.value().tx_count, local.value().tx_count);
    // The wire query warmed the cache; the local re-ask must hit it.
    EXPECT_TRUE(local.value().cache_hit);
  }
  server->Stop();
}

TEST_F(NetTest, PipelinedResponsesCorrelateByRequestId) {
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());
  Client client = Dial(*server);

  // Burst of sends with distinctive ids, then drain: every response
  // carries an id from the burst, each exactly once, each OK.
  constexpr uint64_t kBase = 7000;
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    const AddressId address =
        (*watched_)[static_cast<size_t>(i) % watched_->size()].address;
    ASSERT_TRUE(client.Send(kBase + static_cast<uint64_t>(i), address).ok());
  }
  std::vector<bool> seen(kBurst, false);
  for (int i = 0; i < kBurst; ++i) {
    const auto resp = client.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    const uint64_t id = resp.value().request_id;
    ASSERT_GE(id, kBase);
    ASSERT_LT(id, kBase + kBurst);
    EXPECT_FALSE(seen[id - kBase]) << "duplicate response for " << id;
    seen[id - kBase] = true;
    EXPECT_TRUE(resp.value().ToResult().ok());
  }
  server->Stop();
}

TEST_F(NetTest, UnknownAddressAnswersInvalidArgumentNotDisconnect) {
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());
  Client client = Dial(*server);

  const auto bad = client.Classify(
      simulator_->ledger().num_addresses() + 1000);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // The connection survives an application-level error.
  const auto good = client.Classify((*watched_)[0].address);
  EXPECT_TRUE(good.ok()) << good.status().message();
  server->Stop();
}

TEST_F(NetTest, ExpiredDeadlineCrossesTheWireAsDeadlineExceeded) {
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());
  Client client = Dial(*server);

  ClassifyOptions options;
  options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  const auto result = client.Classify((*watched_)[0].address, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  server->Stop();
}

TEST_F(NetTest, MalformedFrameAnswersErrorFrameThenCloses) {
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());
  Client client = Dial(*server);

  ASSERT_TRUE(client.SendRaw("GARBAGE-NOT-A-FRAME-....").ok());
  const auto resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  EXPECT_FALSE(resp.value().ToResult().ok());
  EXPECT_EQ(resp.value().ToResult().status().code(),
            StatusCode::kInvalidArgument);

  // After the goodbye frame the server closes: the next read is EOF,
  // never a hang.
  const auto eof = client.ReadResponse();
  EXPECT_FALSE(eof.ok());

  // The listener is unaffected — fresh connections still serve.
  Client again = Dial(*server);
  EXPECT_TRUE(again.Classify((*watched_)[0].address).ok());
  server->Stop();
}

TEST_F(NetTest, ShedRequestsAnswerResourceExhaustedOverTheWire) {
  FaultGuard guard;
  serve::InferenceEngineOptions options;
  options.enable_admission = true;
  options.admission.max_inflight = 64;
  options.admission.high_watermark = 3;
  options.admission.low_watermark = 1;
  auto engine = MakeEngine(std::move(options));
  auto server = MakeServer(engine.get());

  // Stall the build stage so a pipelined burst stacks a backlog the
  // watermark must shed.
  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchBuild, 0.02);

  Client client = Dial(*server);
  constexpr int kBurst = 48;
  for (int i = 0; i < kBurst; ++i) {
    const AddressId address =
        (*watched_)[static_cast<size_t>(i) % watched_->size()].address;
    ASSERT_TRUE(client.Send(static_cast<uint64_t>(i + 1), address).ok());
  }
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const auto resp = client.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    const auto outcome = resp.value().ToResult();
    if (outcome.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(outcome.status().code(), StatusCode::kResourceExhausted)
          << outcome.status().message();
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0) << "burst never tripped the watermark";
  server->Stop();
}

TEST_F(NetTest, ConcurrentConnectionsAllGetTheirOwnAnswers) {
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());

  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> fleet;
  fleet.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    fleet.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < 3; ++round) {
        const size_t pick =
            static_cast<size_t>(c * 3 + round) % watched_->size();
        const auto result =
            client.value().Classify((*watched_)[pick].address);
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : fleet) t.join();
  EXPECT_EQ(failures.load(), 0);
  server->Stop();
}

TEST_F(NetTest, StopDrainsInflightRequestsBeforeReturning) {
  FaultGuard guard;
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());

  // Slow the pipeline, launch a burst, then Stop while answers are
  // still in flight: Stop must drain (no callback ever fires against
  // a destroyed server) and the already-sent requests must not wedge.
  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchBuild, 0.01);
  Client client = Dial(*server);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client
                    .Send(static_cast<uint64_t>(i + 1),
                          (*watched_)[static_cast<size_t>(i) %
                                      watched_->size()]
                              .address)
                    .ok());
  }
  server->Stop();  // must not hang, must not crash
}

TEST_F(NetTest, AdminMetricsHealthAndUnknownCommands) {
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());

  // Serve one query so the counters are non-trivial.
  Client client = Dial(*server);
  ASSERT_TRUE(client.Classify((*watched_)[0].address).ok());

  const auto health = Client::AdminCommand(
      "127.0.0.1", server->admin_port(), "health");
  ASSERT_TRUE(health.ok()) << health.status().message();
  EXPECT_NE(health.value().find("\"status\":\"ok\""), std::string::npos)
      << health.value();
  EXPECT_NE(health.value().find("\"admission\""), std::string::npos);

  const auto metrics = Client::AdminCommand(
      "127.0.0.1", server->admin_port(), "metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().message();
  EXPECT_NE(metrics.value().find("net.requests"), std::string::npos)
      << metrics.value();

  const auto unknown = Client::AdminCommand(
      "127.0.0.1", server->admin_port(), "frobnicate");
  ASSERT_TRUE(unknown.ok());
  EXPECT_NE(unknown.value().find("unknown"), std::string::npos)
      << unknown.value();
  server->Stop();
}

TEST_F(NetTest, AdminQuitRequestsShutdownAndWaitReturns)
{
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());

  const auto bye =
      Client::AdminCommand("127.0.0.1", server->admin_port(), "quit");
  ASSERT_TRUE(bye.ok()) << bye.status().message();
  EXPECT_EQ(bye.value(), "bye");
  server->Wait();  // the loop exits on quit; must not hang
  EXPECT_TRUE(server->quit_requested());
  server->Stop();
}

TEST_F(NetTest, SlowLorisByteAtATimeStillGetsAnswered) {
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());
  Client client = Dial(*server);

  serve::ClassifyRequest req;
  req.request_id = 424242;
  req.address = (*watched_)[0].address;
  const std::string frame =
      serve::EncodeFrame(serve::MessageType::kClassifyRequest,
                         req.EncodePayload(std::chrono::steady_clock::now()));
  for (char byte : frame) {
    ASSERT_TRUE(client.SendRaw(std::string_view(&byte, 1)).ok());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  EXPECT_EQ(resp.value().request_id, 424242u);
  EXPECT_TRUE(resp.value().ToResult().ok());
  server->Stop();
}

TEST_F(NetTest, WireTimelinesStitchToTraceContextAndOutcome) {
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());
  Client client = Dial(*server);

  // Nominal answer: the v2 response carries the server-side timeline,
  // echoing our trace context, with monotone stamps and an outcome
  // matching what the wire delivered.
  ClassifyOptions options;
  options.trace_id = 0xACE0FBA5E;
  options.span_id = 7;
  const auto ok = client.Classify((*watched_)[0].address, options);
  ASSERT_TRUE(ok.ok()) << ok.status().message();
  const serve::RequestTimeline& tl = ok.value().timeline;
  EXPECT_EQ(tl.trace_id, options.trace_id);
  EXPECT_EQ(tl.span_id, options.span_id);
  EXPECT_TRUE(tl.Monotone()) << tl.ToJson();
  EXPECT_EQ(tl.outcome, ok.value().degraded ? RequestOutcome::kDegraded
                                            : RequestOutcome::kOk);

  // Error answers carry their timeline too: an expired deadline comes
  // back as a DeadlineExceeded response whose timeline says kDeadline.
  ClassifyOptions expired;
  expired.trace_id = 0xDEAD;
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  ASSERT_TRUE(client.Send(31337, (*watched_)[0].address, expired).ok());
  const auto resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  EXPECT_EQ(resp.value().ToResult().status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resp.value().timeline.trace_id, 0xDEADu);
  EXPECT_EQ(resp.value().timeline.outcome, RequestOutcome::kDeadline);
  EXPECT_TRUE(resp.value().timeline.Monotone())
      << resp.value().timeline.ToJson();
  server->Stop();
}

TEST_F(NetTest, PipelinedAndShedCompletionsAllCarryMatchingTimelines) {
  FaultGuard guard;
  serve::InferenceEngineOptions options;
  options.enable_admission = true;
  options.admission.max_inflight = 64;
  options.admission.high_watermark = 3;
  options.admission.low_watermark = 1;
  auto engine = MakeEngine(std::move(options));
  auto server = MakeServer(engine.get());
  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchBuild, 0.02);

  // Pipelined burst, every request traced with a distinctive id. Each
  // completion — batched answer or inline shed — must answer with a
  // monotone timeline whose trace id and outcome label match the wire
  // response it rode in on.
  Client client = Dial(*server);
  constexpr int kBurst = 48;
  constexpr uint64_t kTraceBase = 0x7700000000000000ULL;
  for (int i = 0; i < kBurst; ++i) {
    const AddressId address =
        (*watched_)[static_cast<size_t>(i) % watched_->size()].address;
    ClassifyOptions traced;
    traced.trace_id = kTraceBase + static_cast<uint64_t>(i + 1);
    ASSERT_TRUE(
        client.Send(static_cast<uint64_t>(i + 1), address, traced).ok());
  }

  // Overload is the interesting moment for the admin surface: slowlog
  // must stay one well-formed JSON line while the burst is in flight.
  const auto mid_burst = Client::AdminCommand(
      "127.0.0.1", server->admin_port(), "slowlog 8");
  ASSERT_TRUE(mid_burst.ok()) << mid_burst.status().message();
  EXPECT_TRUE(JsonWellFormed(mid_burst.value())) << mid_burst.value();

  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const auto resp = client.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    const serve::RequestTimeline& tl = resp.value().timeline;
    EXPECT_EQ(tl.trace_id, kTraceBase + resp.value().request_id);
    EXPECT_TRUE(tl.Monotone()) << tl.ToJson();
    const auto outcome = resp.value().ToResult();
    if (outcome.ok()) {
      EXPECT_EQ(tl.outcome, outcome.value().degraded
                                ? RequestOutcome::kDegraded
                                : RequestOutcome::kOk);
      ++ok;
    } else {
      ASSERT_EQ(outcome.status().code(), StatusCode::kResourceExhausted)
          << outcome.status().message();
      EXPECT_EQ(tl.outcome, RequestOutcome::kShed);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0) << "burst never tripped the watermark";
  server->Stop();
}

TEST_F(NetTest, V1FramesStillDecodeAndClassifyAgainstV2Server) {
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());
  Client client = Dial(*server);

  // A pre-trace-context peer: hand-rolled v1 frame over the raw pipe.
  // The server must decode it, classify, and answer in v1 — which the
  // client decodes as a response with no timeline.
  serve::ClassifyRequest req;
  req.request_id = 11111;
  req.address = (*watched_)[0].address;
  const std::string frame = serve::EncodeFrame(
      serve::MessageType::kClassifyRequest,
      req.EncodePayload(std::chrono::steady_clock::now(), /*version=*/1),
      /*version=*/1);
  ASSERT_TRUE(client.SendRaw(frame).ok());

  const auto resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  EXPECT_EQ(resp.value().request_id, 11111u);
  const auto outcome = resp.value().ToResult();
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_EQ(outcome.value().predicted,
            engine->Classify(req.address).value().predicted);
  // v1 responses carry no timeline; the decode leaves the default.
  EXPECT_EQ(resp.value().timeline.deliver_ns, -1);

  // The same connection can then speak v2 — versions are per frame.
  ClassifyOptions traced;
  traced.trace_id = 5555;
  const auto v2 = client.Classify(req.address, traced);
  ASSERT_TRUE(v2.ok()) << v2.status().message();
  EXPECT_EQ(v2.value().timeline.trace_id, 5555u);
  server->Stop();
}

TEST_F(NetTest, AdminSlowlogAndTimelineAnswerJson) {
  serve::InferenceEngineOptions options;
  options.flight_recorder_capacity = 64;
  options.slow_request_threshold = 1e-9;  // everything is "slow"
  auto engine = MakeEngine(std::move(options));
  auto server = MakeServer(engine.get());

  Client client = Dial(*server);
  ClassifyOptions traced;
  traced.trace_id = 0xBEEF;
  ASSERT_TRUE(client.Classify((*watched_)[0].address, traced).ok());
  ASSERT_TRUE(client.Classify((*watched_)[1].address).ok());

  // slowlog: one well-formed JSON object with both rings; the traced
  // request shows up (threshold 1ns means every request is slow).
  const auto slowlog = Client::AdminCommand(
      "127.0.0.1", server->admin_port(), "slowlog");
  ASSERT_TRUE(slowlog.ok()) << slowlog.status().message();
  EXPECT_TRUE(JsonWellFormed(slowlog.value())) << slowlog.value();
  EXPECT_NE(slowlog.value().find("\"threshold_seconds\""),
            std::string::npos);
  EXPECT_NE(slowlog.value().find("\"slow\""), std::string::npos);
  EXPECT_NE(slowlog.value().find("\"recent\""), std::string::npos);
  EXPECT_NE(slowlog.value().find("\"trace_id\":48879"), std::string::npos)
      << slowlog.value();

  // timeline lookup: decimal and 0x-hex spellings both resolve.
  for (const char* spelling : {"timeline 48879", "timeline 0xBEEF"}) {
    const auto found = Client::AdminCommand(
        "127.0.0.1", server->admin_port(), spelling);
    ASSERT_TRUE(found.ok()) << found.status().message();
    EXPECT_TRUE(JsonWellFormed(found.value())) << found.value();
    EXPECT_NE(found.value().find("\"trace_id\":48879"), std::string::npos)
        << found.value();
    EXPECT_NE(found.value().find("\"outcome\""), std::string::npos);
  }

  // Unknown trace id: still one well-formed JSON line, not a hang or
  // an empty reply.
  const auto missing = Client::AdminCommand(
      "127.0.0.1", server->admin_port(), "timeline 424242");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(JsonWellFormed(missing.value())) << missing.value();
  EXPECT_NE(missing.value().find("not found"), std::string::npos);
  server->Stop();
}

TEST_F(NetTest, AdminTraceLifecycleUnderConcurrentLoad) {
  auto engine = MakeEngine();
  auto server = MakeServer(engine.get());
  const std::string path =
      "/tmp/ba_net_trace_" + std::to_string(::getpid()) + ".json";

  // trace start → hammer the data port from several connections →
  // trace save → trace stop. The saved file must be well-formed JSON
  // even though events were being recorded while Save ran.
  const auto started = Client::AdminCommand(
      "127.0.0.1", server->admin_port(), "trace start");
  ASSERT_TRUE(started.ok()) << started.status().message();
  EXPECT_NE(started.value().find("OK"), std::string::npos);

  constexpr int kClients = 4;
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> fleet;
  fleet.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    fleet.emplace_back([&, c] {
      auto worker = Client::Connect("127.0.0.1", server->port());
      if (!worker.ok()) {
        failures.fetch_add(1);
        return;
      }
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ClassifyOptions traced;
        traced.trace_id =
            (static_cast<uint64_t>(c) + 1) << 32 | ++i;
        const size_t pick = static_cast<size_t>(i) % watched_->size();
        if (!worker.value()
                 .Classify((*watched_)[pick].address, traced)
                 .ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  // Save mid-load, twice — the tracer must snapshot consistently while
  // the fleet keeps appending events.
  for (int round = 0; round < 2; ++round) {
    const auto saved = Client::AdminCommand(
        "127.0.0.1", server->admin_port(), "trace save " + path);
    ASSERT_TRUE(saved.ok()) << saved.status().message();
    EXPECT_NE(saved.value().find("OK"), std::string::npos)
        << saved.value();
    const auto text = util::ReadFileToString(path);
    ASSERT_TRUE(text.ok()) << text.status().message();
    EXPECT_TRUE(JsonWellFormed(text.value()))
        << "round " << round << ": saved trace is not well-formed JSON";
    EXPECT_NE(text.value().find("\"traceEvents\""), std::string::npos);
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : fleet) t.join();
  EXPECT_EQ(failures.load(), 0);

  const auto stopped = Client::AdminCommand(
      "127.0.0.1", server->admin_port(), "trace stop");
  ASSERT_TRUE(stopped.ok());
  EXPECT_NE(stopped.value().find("OK"), std::string::npos);
  std::remove(path.c_str());
  server->Stop();
}

}  // namespace
}  // namespace ba
