// Tests for the observability subsystem (src/obs): metric instruments
// and their registry, scoped-span tracing with Chrome trace-event JSON
// export, and the crash-safety of both export paths.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fs.h"

namespace ba::obs {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/ba_obs_" + name + "_" + std::to_string(::getpid())) {}
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Every fault-injection test must leave the global injector clean.
class FaultGuard {
 public:
  FaultGuard() { util::FaultInjector::Instance().DisarmAll(); }
  ~FaultGuard() { util::FaultInjector::Instance().DisarmAll(); }
};

/// Tracing tests share one process-wide tracer; each test starts from a
/// clean enabled state and leaves tracing off.
class TraceGuard {
 public:
  explicit TraceGuard(size_t capacity = Tracer::kDefaultCapacityPerThread) {
    Tracer::Instance().Enable(capacity);
  }
  ~TraceGuard() {
    Tracer::Instance().Disable();
    Tracer::Instance().Reset();
  }
};

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker — enough to assert exported documents are
// well-formed (balanced structure, legal literals), with no parser
// dependency.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Instruments

TEST(CounterTest, IncrementsAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 4000u);
}

TEST(GaugeTest, SetAndAddFromManyThreads) {
  Gauge g;
  g.Set(100);
  EXPECT_EQ(g.value(), 100);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 500; ++i) {
        g.Add(1);
        g.Add(-1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), 100);
}

TEST(HistogramTest, PercentilesOrderedAndWithinBucketRatio) {
  Histogram h;
  // Uniform 1ms..100ms observations.
  for (int i = 1; i <= 100; ++i) h.Record(i * 1e-3);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_LE(s.p50_seconds, s.p95_seconds);
  EXPECT_LE(s.p95_seconds, s.p99_seconds);
  EXPECT_LE(s.p99_seconds, s.max_seconds);
  // A percentile reports the geometric midpoint of its bucket, so it
  // must lie within one bucket-growth factor of the true value.
  EXPECT_GE(s.p50_seconds, 0.050 / Histogram::kGrowth);
  EXPECT_LE(s.p50_seconds, 0.050 * Histogram::kGrowth);
  EXPECT_GE(s.p99_seconds, 0.099 / Histogram::kGrowth);
  EXPECT_LE(s.p99_seconds, 0.099 * Histogram::kGrowth);
  EXPECT_DOUBLE_EQ(s.max_seconds, 0.1);
  EXPECT_NEAR(s.mean_seconds, 0.0505, 1e-6);
}

TEST(HistogramTest, EmptyHistogramReportsAllZeros) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 0.0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.p50_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.max_seconds, 0.0);
  // Nothing here is NaN — an empty scrape must render cleanly.
  EXPECT_FALSE(std::isnan(s.mean_seconds));
  EXPECT_FALSE(std::isnan(s.p50_seconds));
}

TEST(HistogramTest, SingleSampleDrivesEveryPercentile) {
  Histogram h;
  h.Record(5e-3);
  // With one observation, every percentile lands in the same bucket and
  // is capped at the observed maximum.
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_GT(v, 0.0) << "p" << p;
    EXPECT_LE(v, 5e-3 + 1e-12) << "p" << p;
    EXPECT_GE(v, 5e-3 / Histogram::kGrowth) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(h.Snapshot().max_seconds, 5e-3);
}

TEST(HistogramTest, NonFiniteInputsAreRejected) {
  Histogram h;
  h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Record(std::numeric_limits<double>::infinity());
  h.Record(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.TotalSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  // A poisoned recorder must not break subsequent good observations.
  h.Record(1e-3);
  EXPECT_EQ(h.Count(), 1u);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_FALSE(std::isnan(s.mean_seconds));
  EXPECT_NEAR(s.mean_seconds, 1e-3, 1e-9);
  // Negatives clamp to zero rather than corrupting the totals.
  h.Record(-1.0);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_NEAR(h.TotalSeconds(), 1e-3, 1e-9);
}

TEST(HistogramTest, ConcurrentRecordsAllCounted) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.Record(1e-4);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), 4000u);
  EXPECT_NEAR(h.TotalSeconds(), 0.4, 1e-6);
}

// ---------------------------------------------------------------------------
// Registry

TEST(MetricsRegistryTest, SameNameSameInstrument) {
  auto& reg = MetricsRegistry::Instance();
  Counter* a = reg.GetCounter("obs_test.same_name");
  Counter* b = reg.GetCounter("obs_test.same_name");
  EXPECT_EQ(a, b);
  a->Increment(7);
  EXPECT_GE(b->value(), 7u);
}

TEST(MetricsRegistryTest, ConcurrentGetAndRecord) {
  auto& reg = MetricsRegistry::Instance();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string name =
          "obs_test.concurrent." + std::to_string(t % 4);
      for (int i = 0; i < 500; ++i) {
        reg.GetCounter(name)->Increment();
        reg.GetHistogram("obs_test.concurrent.latency")->Record(1e-5);
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t total = 0;
  for (int k = 0; k < 4; ++k) {
    total += reg.GetCounter("obs_test.concurrent." + std::to_string(k))
                 ->value();
  }
  EXPECT_EQ(total, 4000u);
  EXPECT_EQ(reg.GetHistogram("obs_test.concurrent.latency")->Count(),
            4000u);
}

TEST(MetricsRegistryTest, ExpositionsContainInstruments) {
  auto& reg = MetricsRegistry::Instance();
  reg.GetCounter("obs_test.expo.counter")->Increment(3);
  reg.GetGauge("obs_test.expo.gauge")->Set(-5);
  reg.GetTimeAccumulator("obs_test.expo.time")->AddSeconds(1.5);
  reg.GetHistogram("obs_test.expo.hist")->Record(0.01);

  const std::string text = reg.TextExposition();
  EXPECT_NE(text.find("obs_test.expo.counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test.expo.gauge"), std::string::npos);

  const std::string json = reg.JsonExposition();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"obs_test.expo.counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.expo.gauge\":-5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.expo.hist\":"), std::string::npos);

  std::vector<std::string> names = reg.Names();
  bool found = false;
  for (const auto& n : names) found |= n == "obs_test.expo.counter";
  EXPECT_TRUE(found);
}

TEST(MetricsRegistryTest, ProvidersAppearUntilUnregistered) {
  auto& reg = MetricsRegistry::Instance();
  reg.RegisterProvider("obs_test.provider",
                       [] { return std::string("{\"x\":1}"); });
  std::string json = reg.JsonExposition();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"obs_test.provider\":{\"x\":1}"),
            std::string::npos);
  reg.UnregisterProvider("obs_test.provider");
  json = reg.JsonExposition();
  EXPECT_EQ(json.find("obs_test.provider"), std::string::npos);
}

TEST(MetricsRegistryTest, SaveJsonWritesValidDocument) {
  FaultGuard guard;
  TempFile file("registry");
  auto& reg = MetricsRegistry::Instance();
  reg.GetCounter("obs_test.save.counter")->Increment();
  ASSERT_TRUE(reg.SaveJson(file.path()).ok());
  auto read = util::ReadFileToString(file.path());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(JsonChecker(read.value()).Valid());
}

TEST(MetricsRegistryTest, SaveFaultPointLeavesPreviousFileIntact) {
  FaultGuard guard;
  TempFile file("registry_fault");
  auto& reg = MetricsRegistry::Instance();
  ASSERT_TRUE(reg.SaveJson(file.path()).ok());
  auto before = util::ReadFileToString(file.path());
  ASSERT_TRUE(before.ok());

  util::FaultInjector::Instance().Arm(MetricsRegistry::kFaultMetricsSave);
  reg.GetCounter("obs_test.save.counter")->Increment();
  EXPECT_FALSE(reg.SaveJson(file.path()).ok());
  util::FaultInjector::Instance().DisarmAll();

  auto after = util::ReadFileToString(file.path());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value(), after.value());
}

TEST(MetricsRegistryTest, FsFaultPointsAlsoKillTheSave) {
  FaultGuard guard;
  TempFile file("registry_fs_fault");
  auto& reg = MetricsRegistry::Instance();
  for (const std::string& point : util::AtomicFileWriter::FaultPoints()) {
    util::FaultInjector::Instance().Arm(point);
    EXPECT_FALSE(reg.SaveJson(file.path()).ok()) << point;
    util::FaultInjector::Instance().DisarmAll();
  }
}

// ---------------------------------------------------------------------------
// Tracing

TEST(TraceTest, DisabledRecordsNothing) {
  Tracer::Instance().Disable();
  Tracer::Instance().Reset();
  const size_t before = Tracer::Instance().EventCount();
  {
    BA_TRACE_SPAN("obs_test.disabled");
  }
  EXPECT_EQ(Tracer::Instance().EventCount(), before);
}

TEST(TraceTest, SpansNestAndCarryArgs) {
  TraceGuard trace;
  {
    ScopedSpan outer("obs_test.outer");
    outer.AddArg("items", 3.0);
    EXPECT_TRUE(outer.active());
    {
      BA_TRACE_SPAN("obs_test.inner");
    }
  }
  EXPECT_EQ(Tracer::Instance().EventCount(), 2u);
  const std::string json = Tracer::Instance().ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"obs_test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"items\":3"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TraceTest, ThreadsGetDistinctTracks) {
  TraceGuard trace;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t] {
      Tracer::Instance().SetCurrentThreadName("obs_test.worker." +
                                              std::to_string(t));
      for (int i = 0; i < 10; ++i) {
        BA_TRACE_SPAN("obs_test.threaded");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(Tracer::Instance().EventCount(), 30u);
  const std::string json = Tracer::Instance().ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Thread-name metadata events for each named worker.
  for (int t = 0; t < 3; ++t) {
    EXPECT_NE(json.find("obs_test.worker." + std::to_string(t)),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
}

TEST(TraceTest, CounterSamplesExportAsCounterEvents) {
  TraceGuard trace;
  Tracer::Instance().RecordCounter("obs_test.depth", 4.0);
  const std::string json = Tracer::Instance().ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":4"), std::string::npos);
}

TEST(TraceTest, RingOverflowKeepsBoundAndReportsDrop) {
  TraceGuard trace(/*capacity=*/8);
  // Record on a fresh thread: ring capacity binds when a thread's
  // buffer is first registered, and the main thread's buffer predates
  // the small-capacity Enable above.
  std::thread([] {
    for (int i = 0; i < 50; ++i) {
      BA_TRACE_SPAN("obs_test.overflow");
    }
  }).join();
  EXPECT_LE(Tracer::Instance().EventCount(), 8u);
  EXPECT_EQ(Tracer::Instance().TotalRecorded(), 50u);
  const std::string json = Tracer::Instance().ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"ba_dropped_events\":42"), std::string::npos);
}

TEST(TraceTest, AsyncFlowEventsExportAsPairedPhases) {
  TraceGuard trace;
  Tracer::Instance().RecordAsync("obs_test.flow", /*flow_id=*/0xAB,
                                 Tracer::NowNs(), /*dur_ns=*/1000);
  const std::string json = Tracer::Instance().ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // One 'b'/'e' pair on the ba.flow category, keyed by the hex id —
  // that's what lets Perfetto stitch client/server/engine extents
  // recorded on different threads into one async track.
  EXPECT_NE(json.find("\"cat\":\"ba.flow\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0xab\""), std::string::npos) << json;
}

TEST(TraceTest, AsyncWithZeroFlowIdOrDisabledRecordsNothing) {
  {
    TraceGuard trace;
    // flow id 0 means "untraced request" — never an event.
    Tracer::Instance().RecordAsync("obs_test.untraced", 0,
                                   Tracer::NowNs(), 100);
    EXPECT_EQ(Tracer::Instance().TotalRecorded(), 0u);
  }
  // Disabled tracer: same, the call is a cheap no-op.
  Tracer::Instance().RecordAsync("obs_test.disabled", 0x77,
                                 Tracer::NowNs(), 100);
  EXPECT_EQ(Tracer::Instance().EventCount(), 0u);
}

TEST(TraceTest, RingDropsIncrementRegistryCounter) {
  auto* dropped =
      MetricsRegistry::Instance().GetCounter("obs.trace.dropped");
  const uint64_t before = dropped->value();
  TraceGuard trace(/*capacity=*/8);
  std::thread([] {
    for (int i = 0; i < 50; ++i) {
      BA_TRACE_SPAN("obs_test.drop_counter");
    }
  }).join();
  // 50 spans through an 8-slot ring: 42 overwrites, each counted — the
  // counter survives the trace buffer reset, so a monitoring loop can
  // see drops long after the ring wrapped.
  EXPECT_EQ(dropped->value() - before, 42u);
}

TEST(TraceTest, SaveWritesLoadableTraceFile) {
  FaultGuard fault;
  TraceGuard trace;
  TempFile file("trace");
  {
    BA_TRACE_SPAN("obs_test.saved");
  }
  ASSERT_TRUE(Tracer::Instance().Save(file.path()).ok());
  auto read = util::ReadFileToString(file.path());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(JsonChecker(read.value()).Valid());
  EXPECT_NE(read.value().find("\"traceEvents\":["), std::string::npos);
}

TEST(TraceTest, SaveFaultPointLeavesPreviousFileIntact) {
  FaultGuard fault;
  TraceGuard trace;
  TempFile file("trace_fault");
  ASSERT_TRUE(Tracer::Instance().Save(file.path()).ok());
  auto before = util::ReadFileToString(file.path());
  ASSERT_TRUE(before.ok());

  util::FaultInjector::Instance().Arm(Tracer::kFaultTraceSave);
  {
    BA_TRACE_SPAN("obs_test.fault");
  }
  EXPECT_FALSE(Tracer::Instance().Save(file.path()).ok());
  util::FaultInjector::Instance().DisarmAll();

  auto after = util::ReadFileToString(file.path());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value(), after.value());
}

TEST(TraceTest, ConcurrentSpansAndExportAreSafe) {
  TraceGuard trace;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        BA_TRACE_SPAN("obs_test.race");
      }
    });
  }
  // Export concurrently with recording — must not crash or corrupt.
  for (int i = 0; i < 5; ++i) {
    const std::string json = Tracer::Instance().ToJson();
    EXPECT_TRUE(JsonChecker(json).Valid());
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Tracer::Instance().TotalRecorded(), 800u);
}

}  // namespace
}  // namespace ba::obs
