// Chaos harness: randomized fault injection, overload, and concurrent
// ledger growth driven against the serving engine at once, with the
// correctness bar unchanged — every successful answer (nominal or
// degraded) must equal a serial re-run of the pipeline at the epoch it
// claims (`tx_count`), and every failure must be one of the explicit,
// documented error codes. Run under BA_SANITIZE=thread
// (`scripts/check.sh chaos`) to validate the concurrency claims.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "chain/ledger.h"
#include "core/aggregator.h"
#include "core/classifier.h"
#include "core/gfn_features.h"
#include "core/graph_builder.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "serve/inference_engine.h"
#include "util/fs.h"
#include "util/retry.h"
#include "util/rng.h"

namespace ba {
namespace {

using chain::AddressId;
using chain::TxId;
using serve::ClassifyOptions;
using serve::ClassifyResult;
using serve::InferenceEngine;

/// FaultInjector arming, firing, and disarming hammered from many
/// threads at once (satellite a). The assertions are deliberately
/// weak — the test's value is running data-race-free under TSan while
/// every mode and the hit counter are exercised concurrently.
TEST(FaultInjectorChaosTest, ConcurrentArmFireDisarmIsRaceFree) {
  auto& faults = util::FaultInjector::Instance();
  faults.DisarmAll();
  constexpr const char* kPoint = "chaos.injector.hammer";
  constexpr int kArmers = 3;
  constexpr int kFirers = 5;
  constexpr int kRounds = 400;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> fired{0};
  std::vector<std::thread> threads;
  for (int a = 0; a < kArmers; ++a) {
    threads.emplace_back([&, a] {
      for (int i = 0; i < kRounds; ++i) {
        switch ((a + i) % 5) {
          case 0: faults.Arm(kPoint, 1 + i % 3); break;
          case 1: faults.ArmProbabilistic(kPoint, 0.5, i); break;
          case 2: faults.ArmEveryNth(kPoint, 1 + i % 4); break;
          case 3: faults.ArmLatency(kPoint, 1e-5); break;
          default: faults.Disarm(kPoint); break;
        }
      }
    });
  }
  for (int f = 0; f < kFirers; ++f) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (faults.ShouldFail(kPoint)) fired.fetch_add(1);
      }
    });
  }
  for (int a = 0; a < kArmers; ++a) threads[a].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kArmers; t < threads.size(); ++t) threads[t].join();

  // Armers ran to completion and firers observed a sane counter: the
  // injector's own hit count never runs behind the verdicts we saw.
  EXPECT_GE(static_cast<uint64_t>(faults.HitCount(kPoint)), fired.load());
  faults.DisarmAll();
  EXPECT_FALSE(faults.ShouldFail(kPoint));
}

/// One chaos client's view of a finished call.
struct Observation {
  AddressId address = 0;
  uint64_t tx_count = 0;
  int predicted = 0;
  bool ok = false;
  bool degraded = false;
  StatusCode code = StatusCode::kOk;
  std::string message;
};

class ChaosServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 29;
    config.num_blocks = 60;
    config.num_retail_users = 20;
    config.miners_per_pool = 8;
    config.gamblers_per_house = 4;
    simulator_ = new datagen::Simulator(config);
    ASSERT_TRUE(simulator_->Run().ok());

    auto labeled = simulator_->CollectLabeledAddresses(3);
    Rng rng(1);
    const auto split = datagen::StratifiedSplit(labeled, 0.8, &rng);
    ASSERT_GE(split.test.size(), 4u);
    watched_ = new std::vector<datagen::LabeledAddress>(split.test);

    core::BaClassifier::Options opts;
    opts.dataset.construction.slice_size = 20;
    opts.graph_model.epochs = 2;
    opts.graph_model.embed_dim = 16;
    opts.graph_model.hidden_dim = 32;
    opts.aggregator.epochs = 4;
    auto created = core::BaClassifier::Create(opts);
    ASSERT_TRUE(created.ok()) << created.status().message();
    classifier_ = created.value().release();
    ASSERT_TRUE(classifier_->Train(simulator_->ledger(), split.train).ok());
  }

  static void TearDownTestSuite() {
    delete classifier_;
    delete simulator_;
    delete watched_;
    classifier_ = nullptr;
    simulator_ = nullptr;
    watched_ = nullptr;
  }

  /// Serial re-run of the full inference path at the epoch where
  /// `address` had exactly `tx_count` capped transactions — the
  /// ground truth every successful chaos answer is held to.
  static int PredictAtEpoch(AddressId address, uint64_t tx_count) {
    if (tx_count == 0) return 0;
    const chain::Ledger& ledger = simulator_->ledger();
    const std::vector<TxId> full = ledger.TransactionsOf(address);
    EXPECT_LE(tx_count, full.size());
    const chain::LedgerSnapshot snap =
        ledger.SnapshotAt(full[static_cast<size_t>(tx_count) - 1] + 1);
    core::GraphConstructor ctor(
        classifier_->options().dataset.construction);
    const std::vector<core::AddressGraph> graphs =
        ctor.BuildGraphs(snap, address);
    if (graphs.empty()) return 0;
    const core::GraphModel& model = classifier_->graph_model();
    const int64_t embed_dim = model.embed_dim();
    std::vector<core::EmbeddingSequence> seqs(1);
    seqs[0].embeddings =
        tensor::Tensor({static_cast<int64_t>(graphs.size()), embed_dim});
    for (size_t g = 0; g < graphs.size(); ++g) {
      const core::GraphTensors gt = core::PrepareGraphTensors(
          graphs[g], classifier_->options().dataset.k_hops);
      const tensor::Tensor e = model.Embed(gt);
      for (int64_t j = 0; j < embed_dim; ++j) {
        seqs[0].embeddings.at(static_cast<int64_t>(g), j) = e.at(0, j);
      }
    }
    classifier_->scaler().Apply(&seqs);
    return classifier_->aggregator().Predict(seqs[0].embeddings);
  }

  static datagen::Simulator* simulator_;
  static std::vector<datagen::LabeledAddress>* watched_;
  static core::BaClassifier* classifier_;
};

datagen::Simulator* ChaosServeTest::simulator_ = nullptr;
std::vector<datagen::LabeledAddress>* ChaosServeTest::watched_ = nullptr;
core::BaClassifier* ChaosServeTest::classifier_ = nullptr;

/// The acceptance test from the issue: blocks sealed concurrently with
/// classification while probabilistic faults, injected latency, tight
/// deadlines, and admission control all fire at once. Invariants:
/// no hang (the ctest TIMEOUT property is the watchdog), no lost
/// request (every call returns), every success correct at its claimed
/// epoch, every failure an explicit documented code.
TEST_F(ChaosServeTest, SealWhileClassifyUnderRandomFaultsAndOverload) {
  auto& faults = util::FaultInjector::Instance();
  faults.DisarmAll();

  serve::InferenceEngineOptions options;
  options.num_threads = 2;
  options.enable_admission = true;
  options.admission.max_inflight = 64;
  options.admission.high_watermark = 12;
  options.admission.low_watermark = 2;
  options.admission.recovery_rate = 2000.0;
  options.admission.recovery_burst = 8;
  auto created = InferenceEngine::Create(
      classifier_, &simulator_->ledger(), std::move(options));
  ASSERT_TRUE(created.ok()) << created.status().message();
  auto engine = std::move(created.value());

  // ~5% of micro-batches die at build, ~5% at aggregate, and every
  // lookup boundary stalls 2ms so short deadlines genuinely expire
  // between stages.
  faults.ArmProbabilistic(InferenceEngine::kFaultBatchBuild, 0.05, 101);
  faults.ArmProbabilistic(InferenceEngine::kFaultBatchAggregate, 0.05,
                          202);
  faults.ArmLatency(InferenceEngine::kFaultBatchBuild, 0.002);

  constexpr int kClients = 4;
  constexpr int kCallsPerClient = 40;
  std::atomic<bool> seal_stop{false};

  // Writer thread: keeps sealing blocks that pay the watched
  // addresses, so their live tx counts move during the run.
  std::thread sealer([&] {
    chain::Ledger* ledger = simulator_->mutable_ledger();
    uint64_t sealed = 0;
    while (!seal_stop.load(std::memory_order_acquire)) {
      const chain::Timestamp now =
          ledger->block(ledger->height() - 1).timestamp +
          ledger->options().block_interval_seconds;
      const AddressId payout =
          (*watched_)[sealed % watched_->size()].address;
      ASSERT_TRUE(ledger->ApplyCoinbase(now, payout).ok());
      ASSERT_TRUE(ledger->SealBlock(now).ok());
      ++sealed;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Client threads vary deadline/degraded/priority per call; gtest
  // assertions are not thread-safe outside the main thread, so each
  // client only records observations for later verification.
  std::vector<std::vector<Observation>> per_client(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(997 + c));
      auto& out = per_client[static_cast<size_t>(c)];
      out.reserve(kCallsPerClient);
      for (int i = 0; i < kCallsPerClient; ++i) {
        const AddressId address =
            (*watched_)[rng.UniformInt(watched_->size())].address;
        ClassifyOptions copts;
        const int dice = static_cast<int>(rng.UniformInt(4));
        if (dice == 1) {  // tight deadline, strict
          copts.deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(1);
        } else if (dice == 2) {  // tight deadline, degraded allowed
          copts.deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(1);
          copts.allow_degraded = true;
        } else if (dice == 3) {  // priority traffic
          copts.priority = 1;
        }
        const auto result = engine->Classify(address, copts);
        Observation ob;
        ob.address = address;
        ob.ok = result.ok();
        if (result.ok()) {
          ob.tx_count = result.value().tx_count;
          ob.predicted = result.value().predicted;
          ob.degraded = result.value().degraded;
        } else {
          ob.code = result.status().code();
          ob.message = result.status().message();
        }
        out.push_back(ob);
      }
    });
  }
  for (auto& t : clients) t.join();
  seal_stop.store(true, std::memory_order_release);
  sealer.join();
  faults.DisarmAll();

  // Every request resolved — nothing hung, nothing was lost.
  size_t total = 0;
  size_t successes = 0;
  size_t degraded = 0;
  std::map<std::pair<AddressId, uint64_t>, int> verified;
  for (const auto& observations : per_client) {
    ASSERT_EQ(observations.size(),
              static_cast<size_t>(kCallsPerClient));
    for (const Observation& ob : observations) {
      ++total;
      if (ob.ok) {
        ++successes;
        if (ob.degraded) ++degraded;
        // Correct at the epoch it claims, degraded or not: tx_count
        // names the epoch the answer was computed at, so one serial
        // re-run covers nominal, stale, and late answers alike.
        auto it = verified.find({ob.address, ob.tx_count});
        if (it == verified.end()) {
          it = verified
                   .emplace(std::make_pair(ob.address, ob.tx_count),
                            PredictAtEpoch(ob.address, ob.tx_count))
                   .first;
        }
        ASSERT_EQ(ob.predicted, it->second)
            << "address " << ob.address << " at epoch " << ob.tx_count
            << (ob.degraded ? " (degraded)" : "");
      } else {
        // Failures are explicit and documented — never a silent wrong
        // answer, never an unexpected code.
        const bool expected =
            ob.code == StatusCode::kDeadlineExceeded ||
            ob.code == StatusCode::kResourceExhausted ||
            (ob.code == StatusCode::kInternal &&
             ob.message.find("injected fault") != std::string::npos);
        ASSERT_TRUE(expected)
            << "unexpected failure: " << static_cast<int>(ob.code)
            << " " << ob.message;
      }
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kClients * kCallsPerClient));
  EXPECT_GT(successes, 0u);
  // The engine's own books match what clients saw.
  const auto m = engine->Metrics();
  EXPECT_EQ(m.requests, static_cast<uint64_t>(total));
  EXPECT_EQ(m.degraded_stale + m.degraded_fallback + m.degraded_late,
            static_cast<uint64_t>(degraded));

  // Calm after the storm: faults disarmed, a plain classify succeeds
  // (the token bucket readmits within milliseconds at this rate).
  bool recovered = false;
  for (int attempt = 0; attempt < 200 && !recovered; ++attempt) {
    recovered = engine->Classify((*watched_)[0].address).ok();
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_TRUE(recovered);
}

/// Cache persistence under probabilistic save faults: a saver thread
/// races classification, every save either succeeds (possibly after
/// retries) or fails with the injected-fault error, and the survivor
/// file always warm-starts a fresh engine.
TEST_F(ChaosServeTest, CachePersistenceSurvivesRandomSaveFaults) {
  auto& faults = util::FaultInjector::Instance();
  faults.DisarmAll();
  const std::string path = "/tmp/ba_chaos_cache_" +
                           std::to_string(::getpid()) + ".bin";
  std::remove(path.c_str());

  serve::InferenceEngineOptions options;
  options.num_threads = 2;
  options.cache_path = path;
  options.save_retry = util::RetryPolicy::Standard(4);
  options.save_retry.initial_backoff_seconds = 1e-4;
  options.save_retry.max_backoff_seconds = 1e-3;
  auto created = InferenceEngine::Create(
      classifier_, &simulator_->ledger(), std::move(options));
  ASSERT_TRUE(created.ok()) << created.status().message();
  auto engine = std::move(created.value());

  faults.ArmProbabilistic(InferenceEngine::kFaultCacheSave, 0.5, 31);
  std::atomic<bool> stop{false};
  std::atomic<int> saves_ok{0};
  std::atomic<int> saves_failed{0};
  std::atomic<bool> bad_failure{false};
  std::thread saver([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const Status st = engine->SaveCache();
      if (st.ok()) {
        saves_ok.fetch_add(1);
      } else {
        saves_failed.fetch_add(1);
        if (st.message().find("injected fault") == std::string::npos) {
          bad_failure.store(true);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 3; ++i) {
    for (const auto& labeled : *watched_) {
      ASSERT_TRUE(engine->Classify(labeled.address).ok());
    }
  }
  stop.store(true, std::memory_order_release);
  saver.join();
  faults.DisarmAll();
  EXPECT_FALSE(bad_failure.load());

  // One clean save, then a fresh engine warm-starts from the file and
  // serves every watched address from cache.
  ASSERT_TRUE(engine->SaveCache().ok());
  EXPECT_GT(saves_ok.load() + saves_failed.load(), 0);
  serve::InferenceEngineOptions warm_opts;
  warm_opts.num_threads = 2;
  warm_opts.cache_path = path;
  auto warm = InferenceEngine::Create(classifier_, &simulator_->ledger(),
                                      std::move(warm_opts));
  ASSERT_TRUE(warm.ok()) << warm.status().message();
  const auto hit = warm.value()->Classify((*watched_)[0].address);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ba
