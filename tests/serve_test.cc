// Serving-layer tests: the batched concurrent InferenceEngine must
// agree with serial BaClassifier::Predict, reuse its cache correctly as
// the ledger grows, survive killed cache saves, and report sane
// metrics. Run under BA_SANITIZE=thread to validate the concurrency.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/classifier.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "obs/metrics.h"
#include "serve/inference_engine.h"
#include "serve/metrics.h"
#include "util/fs.h"

namespace ba::serve {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/ba_serve_" + name + "_" + std::to_string(::getpid())) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Shared fixture: one small economy and one trained classifier,
/// materialized once per suite (training dominates the suite's cost).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 23;
    config.num_blocks = 100;
    config.num_retail_users = 30;
    config.miners_per_pool = 12;
    config.gamblers_per_house = 6;
    simulator_ = new datagen::Simulator(config);
    ASSERT_TRUE(simulator_->Run().ok());

    auto labeled = simulator_->CollectLabeledAddresses(3);
    Rng rng(1);
    const auto split = datagen::StratifiedSplit(labeled, 0.8, &rng);
    train_ = new std::vector<datagen::LabeledAddress>(split.train);
    test_ = new std::vector<datagen::LabeledAddress>(split.test);
    ASSERT_GE(test_->size(), 10u);

    core::BaClassifier::Options opts;
    opts.dataset.construction.slice_size = 20;
    opts.graph_model.epochs = 4;
    opts.graph_model.embed_dim = 16;
    opts.graph_model.hidden_dim = 32;
    opts.aggregator.epochs = 8;
    auto created = core::BaClassifier::Create(opts);
    ASSERT_TRUE(created.ok()) << created.status().message();
    classifier_ = created.value().release();
    ASSERT_TRUE(classifier_->Train(simulator_->ledger(), *train_).ok());
  }

  static void TearDownTestSuite() {
    delete classifier_;
    delete simulator_;
    delete train_;
    delete test_;
    classifier_ = nullptr;
    simulator_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
  }

  static std::unique_ptr<InferenceEngine> MakeEngine(
      InferenceEngineOptions options = {}) {
    auto engine = InferenceEngine::Create(classifier_, &simulator_->ledger(),
                                          options);
    EXPECT_TRUE(engine.ok()) << engine.status().message();
    return std::move(engine.value());
  }

  static std::vector<int> SerialTruth(
      const std::vector<datagen::LabeledAddress>& addresses) {
    std::vector<int> expected;
    EXPECT_TRUE(
        classifier_->Predict(simulator_->ledger(), addresses, &expected)
            .ok());
    return expected;
  }

  static datagen::Simulator* simulator_;
  static std::vector<datagen::LabeledAddress>* train_;
  static std::vector<datagen::LabeledAddress>* test_;
  static core::BaClassifier* classifier_;
};

datagen::Simulator* ServeTest::simulator_ = nullptr;
std::vector<datagen::LabeledAddress>* ServeTest::train_ = nullptr;
std::vector<datagen::LabeledAddress>* ServeTest::test_ = nullptr;
core::BaClassifier* ServeTest::classifier_ = nullptr;

TEST_F(ServeTest, ConcurrentClassifyMatchesSerialPredict) {
  const std::vector<int> expected = SerialTruth(*test_);
  auto engine = MakeEngine();

  // Four client threads, each querying every test address — repeats
  // included, exactly the monitoring workload the engine batches.
  constexpr int kClients = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (size_t i = 0; i < test_->size(); ++i) {
        auto result = engine->Classify((*test_)[i].address);
        if (!result.ok() ||
            result.value().predicted != expected[i]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const InferenceMetricsSnapshot m = engine->Metrics();
  EXPECT_EQ(m.requests, kClients * test_->size());
  EXPECT_GE(m.batches, 1u);
  // Every request is accounted for exactly once...
  EXPECT_EQ(m.full_hits + m.partial_hits + m.misses + m.coalesced +
                m.empty_history,
            m.requests);
  // ...and each address is computed at most once across all four client
  // passes — repeats are cache hits or batch-coalesced.
  EXPECT_LE(m.misses + m.partial_hits, test_->size());
  EXPECT_GE(m.full_hits + m.coalesced, (kClients - 1) * test_->size());
}

TEST_F(ServeTest, ClassifyBatchMatchesSerialPredict) {
  const std::vector<int> expected = SerialTruth(*test_);
  auto engine = MakeEngine();
  std::vector<chain::AddressId> addresses;
  for (const auto& a : *test_) addresses.push_back(a.address);

  const auto results = engine->ClassifyBatch(addresses);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].value().predicted, expected[i]);
  }
}

TEST_F(ServeTest, RepeatQueryIsAFullCacheHit) {
  auto engine = MakeEngine();
  const chain::AddressId address = (*test_)[0].address;

  auto first = engine->Classify(address);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  EXPECT_GT(first.value().slices_built, 0);

  auto second = engine->Classify(address);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(second.value().slices_built, 0);
  EXPECT_EQ(second.value().predicted, first.value().predicted);

  const InferenceMetricsSnapshot m = engine->Metrics();
  EXPECT_EQ(m.full_hits, 1u);
  EXPECT_EQ(m.misses, 1u);
}

TEST_F(ServeTest, LedgerGrowthInvalidatesOnlyTheTail) {
  // Give one test address extra transactions by paying it coinbases on
  // fresh blocks; complete cached slices must survive, the tail must
  // rebuild, and the result must equal a from-scratch classification.
  const int slice_size =
      classifier_->options().dataset.construction.slice_size;
  chain::Ledger* ledger = simulator_->mutable_ledger();
  // Busiest test address; pay it coinbases until it owns at least one
  // complete slice, so the second query has a prefix worth reusing.
  datagen::LabeledAddress target = (*test_)[0];
  for (const auto& a : *test_) {
    if (ledger->TransactionsOf(a.address).size() >
        ledger->TransactionsOf(target.address).size()) {
      target = a;
    }
  }
  chain::Timestamp seed_t = ledger->block(ledger->height() - 1).timestamp;
  while (ledger->TransactionsOf(target.address).size() <
         static_cast<size_t>(slice_size)) {
    seed_t += 600;
    ASSERT_TRUE(ledger->ApplyCoinbase(seed_t, target.address).ok());
    ASSERT_TRUE(ledger->SealBlock(seed_t).ok());
  }
  const uint64_t before = ledger->TransactionsOf(target.address).size();

  auto engine = MakeEngine();
  auto first = engine->Classify(target.address);
  ASSERT_TRUE(first.ok());

  chain::Timestamp t = seed_t;
  for (int i = 0; i < 3; ++i) {
    t += 600;
    ASSERT_TRUE(ledger->ApplyCoinbase(t, target.address).ok());
    ASSERT_TRUE(ledger->SealBlock(t).ok());
  }
  ASSERT_GT(ledger->TransactionsOf(target.address).size(), before);

  auto second = engine->Classify(target.address);
  ASSERT_TRUE(second.ok());
  const ClassifyResult r = second.value();
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(r.slices_reused,
            static_cast<int>(before) / slice_size);
  EXPECT_GT(r.slices_built, 0);

  // Incremental result == cold engine (no cache) == serial facade.
  auto cold = MakeEngine();
  auto from_scratch = cold->Classify(target.address);
  ASSERT_TRUE(from_scratch.ok());
  EXPECT_EQ(r.predicted, from_scratch.value().predicted);
  EXPECT_EQ(SerialTruth({target})[0], r.predicted);

  const InferenceMetricsSnapshot m = engine->Metrics();
  EXPECT_EQ(m.partial_hits, 1u);
  EXPECT_GT(m.slices_reused, 0u);
}

TEST_F(ServeTest, MetricsAreConsistent) {
  auto engine = MakeEngine();
  for (int round = 0; round < 2; ++round) {
    for (const auto& a : *test_) {
      ASSERT_TRUE(engine->Classify(a.address).ok());
    }
  }
  const InferenceMetricsSnapshot m = engine->Metrics();
  EXPECT_EQ(m.requests, 2 * test_->size());
  EXPECT_EQ(m.full_hits + m.partial_hits + m.misses + m.coalesced +
                m.empty_history,
            m.requests);
  EXPECT_EQ(m.request_latency.count, m.requests);
  EXPECT_LE(m.request_latency.p50_seconds, m.request_latency.p95_seconds);
  EXPECT_LE(m.request_latency.p95_seconds, m.request_latency.p99_seconds);
  EXPECT_LE(m.request_latency.p99_seconds,
            m.request_latency.max_seconds + 1e-9);
  EXPECT_GT(m.hit_rate, 0.0);
  EXPECT_NE(m.ToString().find("requests"), std::string::npos);
  EXPECT_NE(m.ToJson().find("\"requests\""), std::string::npos);
}

TEST_F(ServeTest, EnginePublishesRegistryProviderWhileAlive) {
  std::string provider_name;
  {
    auto engine = MakeEngine();
    ASSERT_TRUE(engine->Classify((*test_)[0].address).ok());
    // The engine registered a uniquely named serve.engine.<n> provider;
    // its JSON in the process-wide exposition is the same snapshot the
    // engine reports directly.
    const std::string expo =
        obs::MetricsRegistry::Instance().JsonExposition();
    // Find the provider entry (its value is a JSON object, "name":{...}),
    // skipping the engine's serve.engine.<n>.* load gauges whose values
    // are plain numbers.
    size_t at = expo.find("\"serve.engine.");
    while (at != std::string::npos) {
      const size_t close = expo.find('"', at + 1);
      ASSERT_NE(close, std::string::npos) << expo;
      if (expo.compare(close, 3, "\":{") == 0) break;
      at = expo.find("\"serve.engine.", close);
    }
    ASSERT_NE(at, std::string::npos) << expo;
    provider_name = expo.substr(at + 1, expo.find('"', at + 1) - at - 1);
    EXPECT_NE(expo.find("\"requests\":"), std::string::npos);
    // The migrated snapshot keeps its meaning: same counters through
    // the registry provider as through Metrics().
    const InferenceMetricsSnapshot m = engine->Metrics();
    EXPECT_NE(expo.find("\"requests\":" + std::to_string(m.requests)),
              std::string::npos);
  }
  // Destroyed engine must have unregistered its provider. Match the
  // exact JSON key: the engine's load gauges
  // (serve.engine.<n>.pool_backlog / .queue_depth) are registry
  // instruments and legitimately outlive it.
  EXPECT_EQ(obs::MetricsRegistry::Instance().JsonExposition().find(
                "\"" + provider_name + "\":"),
            std::string::npos);
}

TEST_F(ServeTest, ThreadPoolInstrumentsCountServeWork) {
  auto& reg = obs::MetricsRegistry::Instance();
  const uint64_t tasks_before =
      reg.GetCounter("util.thread_pool.tasks")->value();
  auto engine = MakeEngine();
  for (const auto& a : *test_) {
    ASSERT_TRUE(engine->Classify(a.address).ok());
  }
  // Stage-2 fan-out submits pool tasks; the process-wide counter moved.
  EXPECT_GT(reg.GetCounter("util.thread_pool.tasks")->value(),
            tasks_before);
  // All pairs of Add(+1)/Add(-1) resolved — queue is drained.
  EXPECT_EQ(reg.GetGauge("util.thread_pool.queue_depth")->value(), 0);
}

TEST_F(ServeTest, UnknownAddressIsRejectedNotFatal) {
  auto engine = MakeEngine();
  auto result = engine->Classify(static_cast<chain::AddressId>(1u << 30));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, CachePersistsAcrossRestart) {
  TempFile cache("warm");
  InferenceEngineOptions options;
  options.cache_path = cache.path();
  {
    auto engine = MakeEngine(options);
    for (const auto& a : *test_) {
      ASSERT_TRUE(engine->Classify(a.address).ok());
    }
    ASSERT_TRUE(engine->SaveCache().ok());
  }
  // "Restarted server": a fresh engine warm-starts from the file and
  // answers every repeat query from cache.
  auto engine = MakeEngine(options);
  EXPECT_GT(engine->CacheSize(), 0u);
  for (const auto& a : *test_) {
    auto result = engine->Classify(a.address);
    ASSERT_TRUE(result.ok());
    if (!simulator_->ledger().TransactionsOf(a.address).empty()) {
      EXPECT_TRUE(result.value().cache_hit);
    }
  }
  EXPECT_EQ(engine->Metrics().misses, 0u);
}

TEST_F(ServeTest, KilledCacheSaveLeavesPreviousFileIntact) {
  TempFile cache("killed");
  InferenceEngineOptions options;
  options.cache_path = cache.path();
  auto engine = MakeEngine(options);
  ASSERT_TRUE(engine->Classify((*test_)[0].address).ok());
  ASSERT_TRUE(engine->SaveCache().ok());

  // The save path itself is fault-injectable...
  util::FaultInjector::Instance().Arm(InferenceEngine::kFaultCacheSave);
  const Status s = engine->SaveCache();
  util::FaultInjector::Instance().DisarmAll();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find(InferenceEngine::kFaultCacheSave),
            std::string::npos);

  // ...and so is every filesystem stage beneath it; a kill at any of
  // them must leave the previous cache image loadable.
  ASSERT_TRUE(engine->Classify((*test_)[1].address).ok());
  for (const std::string& point : util::AtomicFileWriter::FaultPoints()) {
    util::FaultInjector::Instance().Arm(point);
    EXPECT_FALSE(engine->SaveCache().ok()) << point;
    util::FaultInjector::Instance().DisarmAll();

    auto restarted = MakeEngine(options);
    auto hit = restarted->Classify((*test_)[0].address);
    ASSERT_TRUE(hit.ok()) << point;
    EXPECT_TRUE(hit.value().cache_hit)
        << "stale cache torn by fault at " << point;
  }
}

TEST_F(ServeTest, CorruptCacheFileFailsCreateLoudly) {
  TempFile cache("corrupt");
  InferenceEngineOptions options;
  options.cache_path = cache.path();
  {
    auto engine = MakeEngine(options);
    ASSERT_TRUE(engine->Classify((*test_)[0].address).ok());
    ASSERT_TRUE(engine->SaveCache().ok());
  }
  // Flip one byte in the middle of the file.
  auto content = util::ReadFileToString(cache.path());
  ASSERT_TRUE(content.ok());
  std::string bytes = content.value();
  bytes[bytes.size() / 2] ^= 0x40;
  {
    std::ofstream out(cache.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto engine = InferenceEngine::Create(classifier_, &simulator_->ledger(),
                                        options);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(engine.status().message().find("crc32"), std::string::npos);
}

TEST_F(ServeTest, CacheEvictionRespectsCapacity) {
  InferenceEngineOptions options;
  options.cache_capacity = 4;
  auto engine = MakeEngine(options);
  size_t classified = 0;
  for (const auto& a : *test_) {
    if (simulator_->ledger().TransactionsOf(a.address).empty()) continue;
    ASSERT_TRUE(engine->Classify(a.address).ok());
    if (++classified >= 8) break;
  }
  ASSERT_GE(classified, 5u);
  EXPECT_LE(engine->CacheSize(), options.cache_capacity);
  EXPECT_GT(engine->Metrics().cache_evictions, 0u);
}

TEST_F(ServeTest, CapacityOneCacheKeepsTheFreshEntry) {
  // At cache_capacity = 1 every insert overflows the cache, and the
  // eviction sweep must never select the entry just stored for the
  // current request: an immediate repeat query must be a full hit.
  InferenceEngineOptions options;
  options.cache_capacity = 1;
  auto engine = MakeEngine(options);
  int checked = 0;
  for (const auto& a : *test_) {
    if (simulator_->ledger().TxCountOf(a.address) == 0) continue;
    auto miss = engine->Classify(a.address);
    ASSERT_TRUE(miss.ok());
    EXPECT_FALSE(miss.value().cache_hit);
    auto hit = engine->Classify(a.address);
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(hit.value().cache_hit)
        << "fresh entry for address " << a.address
        << " was evicted by its own insert";
    EXPECT_EQ(hit.value().predicted, miss.value().predicted);
    EXPECT_LE(engine->CacheSize(), 1u);
    if (++checked >= 4) break;
  }
  ASSERT_GE(checked, 2);
}

TEST_F(ServeTest, LookupsDuringEvictionStormStayCoherent) {
  // The eviction sweep orders its candidates OUTSIDE the cache lock
  // (the full scan-and-sort used to run under cache_mu_, stalling every
  // concurrent lookup) and re-validates each candidate's recency before
  // erasing it. This hammers lookups against eviction-heavy inserts so
  // the unlocked window and the re-validation both get exercised; run
  // under BA_SANITIZE=thread for the data-race half of the claim.
  InferenceEngineOptions options;
  options.cache_capacity = 6;
  auto engine = MakeEngine(options);

  const datagen::LabeledAddress hot = (*test_)[0];
  ASSERT_GT(simulator_->ledger().TxCountOf(hot.address), 0u);
  const int expected = SerialTruth({hot})[0];
  ASSERT_TRUE(engine->Classify(hot.address).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto r = engine->Classify(hot.address);
      if (!r.ok() || r.value().predicted != expected) {
        wrong.fetch_add(1);
      }
    }
  });

  // Two writers walk the whole test split repeatedly: every insert
  // overflows the 6-entry cache, so eviction sweeps run continuously
  // while the reader keeps touching (and re-warming) the hot entry.
  constexpr int kWriters = 2;
  constexpr int kRounds = 3;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = static_cast<size_t>(w); i < test_->size();
             i += kWriters) {
          (void)engine->Classify((*test_)[i].address);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Every concurrent lookup stayed correct, the capacity bound held
  // (give or take racing inserts), and sweeps actually ran.
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_LE(engine->CacheSize(), options.cache_capacity + kWriters);
  EXPECT_GT(engine->Metrics().cache_evictions, 0u);
}

TEST_F(ServeTest, EmptyMetricsSnapshotJsonIsWellFormed) {
  // A scrape before the first request must produce clean JSON: hit_rate
  // stays 0 (not 0/0) and no "nan"/"inf" token leaks from the empty
  // latency histograms.
  auto engine = MakeEngine();
  const InferenceMetricsSnapshot m = engine->Metrics();
  EXPECT_EQ(m.requests, 0u);
  EXPECT_EQ(m.hit_rate, 0.0);
  const std::string json = m.ToJson();
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hit_rate\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"request_latency\":{\"count\":0"),
            std::string::npos)
      << json;
  // Balanced braces — the object parses structurally.
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ServeTest, FromCheckpointServesIdenticalPredictions) {
  TempFile file("bacl");
  ASSERT_TRUE(classifier_->Save(file.path()).ok());
  auto restored = core::BaClassifier::FromCheckpoint(file.path());
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  ASSERT_TRUE(restored.value()->trained());

  const std::vector<int> expected = SerialTruth(*test_);
  auto engine = InferenceEngine::Create(restored.value().get(),
                                        &simulator_->ledger(), {});
  ASSERT_TRUE(engine.ok());
  for (size_t i = 0; i < test_->size(); ++i) {
    auto result = engine.value()->Classify((*test_)[i].address);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().predicted, expected[i]);
  }
}

TEST_F(ServeTest, InjectedPoolIsUsedInsteadOfAPrivateOne) {
  // An engine with an injected pool must route its fan-out through it:
  // the pool's process-wide task counter moves while the engine serves.
  ThreadPool pool(2);
  InferenceEngineOptions options;
  options.pool = &pool;
  options.num_threads = 0;  // would otherwise mean "shared pool"
  auto engine = MakeEngine(options);
  const std::vector<int> expected = SerialTruth(*test_);
  for (size_t i = 0; i < test_->size(); ++i) {
    auto result = engine->Classify((*test_)[i].address);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().predicted, expected[i]);
  }
  // The injected pool outlives the engine (non-owning): destroying the
  // engine first must leave the pool usable.
  engine.reset();
  std::atomic<int> ran{0};
  pool.ParallelFor(4, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST_F(ServeTest, SharedPoolModeServesCorrectly) {
  // num_threads = 0 without an injected pool draws on the process-wide
  // util::SharedPool() instead of constructing a private one.
  InferenceEngineOptions options;
  options.num_threads = 0;
  auto engine = MakeEngine(options);
  const std::vector<int> expected = SerialTruth(*test_);
  for (size_t i = 0; i < test_->size(); ++i) {
    auto result = engine->Classify((*test_)[i].address);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().predicted, expected[i]);
  }
}

TEST_F(ServeTest, EngineRejectsBadSetups) {
  InferenceEngineOptions bad;
  bad.max_batch_size = 0;
  auto e1 = InferenceEngine::Create(classifier_, &simulator_->ledger(), bad);
  EXPECT_EQ(e1.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(e1.status().message().find("max_batch_size"),
            std::string::npos);

  auto e2 = InferenceEngine::Create(nullptr, &simulator_->ledger(), {});
  EXPECT_EQ(e2.status().code(), StatusCode::kInvalidArgument);

  core::BaClassifier untrained(classifier_->options());
  auto e3 =
      InferenceEngine::Create(&untrained, &simulator_->ledger(), {});
  EXPECT_EQ(e3.status().code(), StatusCode::kFailedPrecondition);

  InferenceEngineOptions negative_threshold;
  negative_threshold.slow_request_threshold = -0.5;
  auto e4 = InferenceEngine::Create(classifier_, &simulator_->ledger(),
                                    negative_threshold);
  EXPECT_EQ(e4.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(e4.status().message().find("slow_request_threshold"),
            std::string::npos);
}

TEST_F(ServeTest, BlockingClassifyRecordsMonotoneTimeline) {
  auto engine = MakeEngine();
  ClassifyOptions options;
  options.trace_id = 0xF00D;
  options.span_id = 3;
  const auto result = engine->Classify((*test_)[0].address, options);
  ASSERT_TRUE(result.ok()) << result.status().message();

  const RequestTimeline& tl = result.value().timeline;
  EXPECT_EQ(tl.trace_id, options.trace_id);
  EXPECT_EQ(tl.span_id, options.span_id);
  EXPECT_TRUE(tl.Monotone()) << tl.ToJson();
  EXPECT_EQ(tl.outcome, result.value().degraded ? RequestOutcome::kDegraded
                                                : RequestOutcome::kOk);
  // A batched answer passed through every stage — each stamp present
  // and the pipeline order visible in the offsets.
  EXPECT_GE(tl.enqueue_ns, 0);
  EXPECT_GE(tl.batch_join_ns, tl.enqueue_ns);
  EXPECT_GE(tl.lookup_ns, tl.batch_join_ns);
  EXPECT_GE(tl.deliver_ns, tl.lookup_ns);

  // The flight recorder kept it, addressable by trace id.
  ASSERT_NE(engine->flight_recorder(), nullptr);
  const auto entry = engine->flight_recorder()->Find(options.trace_id);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->address, (*test_)[0].address);
  EXPECT_EQ(entry->timeline.deliver_ns, tl.deliver_ns);
  EXPECT_FALSE(engine->flight_recorder()->Find(0xBAD).has_value());
}

TEST_F(ServeTest, SlowThresholdCopiesIntoSlowRingAndCounts) {
  InferenceEngineOptions options;
  options.flight_recorder_capacity = 32;
  options.slow_request_threshold = 1e-9;  // every request is "slow"
  auto engine = MakeEngine(options);

  const size_t n = std::min<size_t>(test_->size(), 4);
  for (size_t i = 0; i < n; ++i) {
    ClassifyOptions traced;
    traced.trace_id = 1000 + i;
    ASSERT_TRUE(engine->Classify((*test_)[i].address, traced).ok());
  }

  ASSERT_NE(engine->slow_recorder(), nullptr);
  EXPECT_EQ(engine->slow_recorder()->recorded(), n);
  EXPECT_EQ(engine->Metrics().slow_requests, n);
  const auto slowest = engine->slow_recorder()->Find(1000);
  ASSERT_TRUE(slowest.has_value());
  EXPECT_TRUE(slowest->timeline.Monotone());

  // Snapshot returns newest-first, bounded by the ask.
  const auto snap = engine->slow_recorder()->Snapshot(2);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_GT(snap[0].seq, snap[1].seq);
}

TEST_F(ServeTest, FlightRecorderCanBeDisabled) {
  InferenceEngineOptions options;
  options.flight_recorder_capacity = 0;
  auto engine = MakeEngine(options);
  EXPECT_EQ(engine->flight_recorder(), nullptr);
  EXPECT_EQ(engine->slow_recorder(), nullptr);
  // Classification is unaffected — recording is a pure observer.
  EXPECT_TRUE(engine->Classify((*test_)[0].address).ok());
}

}  // namespace
}  // namespace ba::serve
