// Facade-level tests of the Status-first public API: Options::Validate
// surfaces descriptive errors, factories reject bad configurations, and
// misuse (untrained prediction, bad checkpoints) returns Status instead
// of aborting. No model training — these stay fast.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "datagen/simulator.h"
#include "util/status.h"

namespace ba::core {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/ba_facade_" + name + "_" + std::to_string(::getpid())) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ValidateTest, DefaultsAreValid) {
  EXPECT_TRUE(BaClassifier::Options{}.Validate().ok());
  EXPECT_TRUE(GraphDatasetOptions{}.Validate().ok());
  EXPECT_TRUE(GraphModelOptions{}.Validate().ok());
  EXPECT_TRUE(AggregatorOptions{}.Validate().ok());
  EXPECT_TRUE(GraphConstructorOptions{}.Validate().ok());
}

TEST(ValidateTest, CrossStageKHopsMismatchIsNamed) {
  BaClassifier::Options opts;
  opts.dataset.k_hops = 3;
  opts.graph_model.k_hops = 2;
  const Status s = opts.Validate();
  ASSERT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("k_hops"), std::string::npos);
  EXPECT_NE(s.message().find("3"), std::string::npos);
}

TEST(ValidateTest, ConstructionFieldErrorsNameTheField) {
  GraphConstructorOptions c;
  c.slice_size = 0;
  EXPECT_NE(c.Validate().message().find("slice_size"), std::string::npos);

  c = GraphConstructorOptions{};
  c.similarity_threshold = -0.5;
  EXPECT_NE(c.Validate().message().find("similarity_threshold"),
            std::string::npos);

  c = GraphConstructorOptions{};
  c.max_txs_per_address = 0;
  EXPECT_NE(c.Validate().message().find("max_txs_per_address"),
            std::string::npos);
}

TEST(ValidateTest, ModelAndAggregatorFieldErrorsNameTheField) {
  GraphModelOptions m;
  m.embed_dim = 0;
  EXPECT_NE(m.Validate().message().find("embed_dim"), std::string::npos);

  m = GraphModelOptions{};
  m.dropout = 1.5f;
  EXPECT_NE(m.Validate().message().find("dropout"), std::string::npos);

  m = GraphModelOptions{};
  m.num_classes = 1;
  EXPECT_NE(m.Validate().message().find("num_classes"), std::string::npos);

  AggregatorOptions a;
  a.learning_rate = 0.0f;
  EXPECT_NE(a.Validate().message().find("learning_rate"),
            std::string::npos);
}

TEST(FacadeTest, CreateRejectsInvalidOptions) {
  BaClassifier::Options opts;
  opts.graph_model.hidden_dim = -1;
  const auto created = BaClassifier::Create(opts);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(created.status().message().find("hidden_dim"),
            std::string::npos);
}

TEST(FacadeTest, UntrainedMisuseReturnsFailedPrecondition) {
  datagen::ScenarioConfig config;
  config.seed = 5;
  config.num_blocks = 20;
  config.num_retail_users = 10;
  datagen::Simulator simulator(config);
  ASSERT_TRUE(simulator.Run().ok());
  const auto labeled = simulator.CollectLabeledAddresses(2);
  ASSERT_FALSE(labeled.empty());

  BaClassifier clf(BaClassifier::Options{});
  std::vector<int> predictions;
  EXPECT_EQ(clf.Predict(simulator.ledger(), labeled, &predictions).code(),
            StatusCode::kFailedPrecondition);
  metrics::ConfusionMatrix cm(4);
  EXPECT_EQ(clf.Evaluate(simulator.ledger(), labeled, &cm).code(),
            StatusCode::kFailedPrecondition);
  int predicted = -1;
  EXPECT_EQ(clf.PredictSample(AddressSample{}, &predicted).code(),
            StatusCode::kFailedPrecondition);

  // BuildSamples needs no trained weights — it must work untrained.
  std::vector<AddressSample> samples;
  ASSERT_TRUE(
      clf.BuildSamples(simulator.ledger(), labeled, &samples).ok());
  EXPECT_FALSE(samples.empty());
}

TEST(FacadeTest, OptionsCodecRoundTrips) {
  BaClassifier::Options opts;
  opts.dataset.construction.slice_size = 50;
  opts.dataset.construction.similarity_threshold = 0.75;
  opts.dataset.construction.use_sparse_similarity = true;
  opts.dataset.k_hops = 3;
  opts.graph_model.k_hops = 3;
  opts.graph_model.encoder = GraphEncoderKind::kGcn;
  opts.graph_model.embed_dim = 48;
  opts.aggregator.kind = AggregatorKind::kBiLstm;
  opts.aggregator.hidden_dim = 24;
  opts.seed = 99;

  const std::string text = EncodeClassifierOptions(opts);
  BaClassifier::Options decoded;
  ASSERT_TRUE(DecodeClassifierOptions(text, &decoded).ok());
  EXPECT_EQ(decoded.dataset.construction.slice_size, 50);
  EXPECT_DOUBLE_EQ(decoded.dataset.construction.similarity_threshold, 0.75);
  EXPECT_TRUE(decoded.dataset.construction.use_sparse_similarity);
  EXPECT_EQ(decoded.dataset.k_hops, 3);
  EXPECT_EQ(decoded.graph_model.encoder, GraphEncoderKind::kGcn);
  EXPECT_EQ(decoded.graph_model.embed_dim, 48);
  EXPECT_EQ(decoded.aggregator.kind, AggregatorKind::kBiLstm);
  EXPECT_EQ(decoded.aggregator.hidden_dim, 24);
  EXPECT_EQ(decoded.seed, 99u);
  EXPECT_TRUE(decoded.Validate().ok());
}

TEST(FacadeTest, OptionsCodecRejectsUnknownKeys) {
  BaClassifier::Options decoded;
  const Status s =
      DecodeClassifierOptions("nonsense_key=1\n", &decoded);
  ASSERT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("nonsense_key"), std::string::npos);
}

TEST(FacadeTest, FromCheckpointRejectsMissingAndBogusFiles) {
  const auto missing = BaClassifier::FromCheckpoint("/tmp/ba_no_such_file");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  TempFile file("bogus");
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << "this is not a checkpoint";
  }
  const auto bogus = BaClassifier::FromCheckpoint(file.path());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);

  // A legacy weights-only BATN file is recognized and explained.
  TempFile legacy("legacy");
  {
    std::ofstream out(legacy.path(), std::ios::binary);
    out << "BATN" << std::string(16, '\0');
  }
  const auto rejected = BaClassifier::FromCheckpoint(legacy.path());
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("legacy"), std::string::npos);
}

}  // namespace
}  // namespace ba::core
