// Tests for the serving resilience layer: the AdmissionController
// state machine (injected clock, no real sleeps on the decision path),
// per-request deadlines at every stage boundary, labeled degraded
// answers (stale cache / fallback / fresh-but-late) with epoch_lag
// verified against a serial re-run, retry-wrapped cache persistence,
// and the registry export of load gauges and admission instruments.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "chain/ledger.h"
#include "core/aggregator.h"
#include "core/classifier.h"
#include "core/gfn_features.h"
#include "core/graph_builder.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/flight_recorder.h"
#include "serve/inference_engine.h"
#include "util/fs.h"
#include "util/retry.h"
#include "util/rng.h"

namespace ba {
namespace {

using chain::AddressId;
using serve::AdmissionController;
using serve::AdmissionOptions;
using serve::ClassifyOptions;
using serve::ClassifyResult;
using serve::InferenceEngine;
using Clock = AdmissionController::Clock;
using State = AdmissionController::State;
using Ms = std::chrono::milliseconds;

/// Every fault-injection test must leave the global injector clean.
class FaultGuard {
 public:
  FaultGuard() { util::FaultInjector::Instance().DisarmAll(); }
  ~FaultGuard() { util::FaultInjector::Instance().DisarmAll(); }
};

AdmissionOptions SmallAdmission() {
  AdmissionOptions o;
  o.max_inflight = 4;
  o.high_watermark = 10;
  o.low_watermark = 2;
  o.recovery_rate = 100.0;
  o.recovery_burst = 5;
  return o;
}

TEST(AdmissionOptionsTest, ValidateCatchesBadFields) {
  EXPECT_TRUE(AdmissionOptions{}.Validate().ok());
  AdmissionOptions o;
  o.max_inflight = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = AdmissionOptions{};
  o.low_watermark = -1;
  EXPECT_FALSE(o.Validate().ok());
  o = AdmissionOptions{};
  o.high_watermark = o.low_watermark;
  EXPECT_FALSE(o.Validate().ok());
  o = AdmissionOptions{};
  o.recovery_rate = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = AdmissionOptions{};
  o.recovery_burst = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(AdmissionControllerTest, AcceptsUnderLowBacklogShedsAtHighWatermark) {
  AdmissionController ctl(SmallAdmission());
  const Clock::time_point t0 = Clock::now();
  EXPECT_TRUE(ctl.AdmitAt(t0, 0, 0).ok());
  EXPECT_EQ(ctl.state(), State::kAccepting);
  ctl.Release();

  // Backlog at the high watermark flips to shedding; the rejection is
  // ResourceExhausted and the state sticks for subsequent requests.
  const Status st = ctl.AdmitAt(t0, 10, 0);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctl.state(), State::kShedding);
  EXPECT_EQ(ctl.AdmitAt(t0, 5, 0).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctl.inflight(), 0);
  EXPECT_EQ(ctl.admitted(), 1u);
  EXPECT_EQ(ctl.shed(), 2u);
}

TEST(AdmissionControllerTest, PriorityBypassesWatermarkButNotHardCap) {
  AdmissionController ctl(SmallAdmission());
  const Clock::time_point t0 = Clock::now();
  ASSERT_FALSE(ctl.AdmitAt(t0, 50, 0).ok());
  ASSERT_EQ(ctl.state(), State::kShedding);
  // Priority traffic cuts through the shed...
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ctl.AdmitAt(t0, 50, 1).ok()) << "priority admit " << i;
  }
  // ...until the hard in-flight budget, which binds everyone.
  EXPECT_EQ(ctl.AdmitAt(t0, 50, 1).code(),
            StatusCode::kResourceExhausted);
  for (int i = 0; i < 4; ++i) ctl.Release();
}

TEST(AdmissionControllerTest, RecoversGraduallyThroughTokenBucket) {
  AdmissionController ctl(SmallAdmission());
  const Clock::time_point t0 = Clock::now();
  ASSERT_FALSE(ctl.AdmitAt(t0, 20, 0).ok());
  ASSERT_EQ(ctl.state(), State::kShedding);

  // Backlog drained: the first probe enters recovery and consumes the
  // single up-front token; an immediate second probe finds it empty.
  EXPECT_TRUE(ctl.AdmitAt(t0 + Ms(10), 0, 0).ok());
  EXPECT_EQ(ctl.state(), State::kRecovering);
  ctl.Release();
  EXPECT_EQ(ctl.AdmitAt(t0 + Ms(10), 0, 0).code(),
            StatusCode::kResourceExhausted);

  // 20ms at 100 tokens/s refills 2 tokens — two more admits, then dry.
  EXPECT_TRUE(ctl.AdmitAt(t0 + Ms(30), 3, 0).ok());
  ctl.Release();
  EXPECT_TRUE(ctl.AdmitAt(t0 + Ms(30), 3, 0).ok());
  ctl.Release();
  EXPECT_EQ(ctl.AdmitAt(t0 + Ms(30), 3, 0).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ctl.state(), State::kRecovering);

  // A re-spike mid-recovery drops straight back to shedding.
  EXPECT_FALSE(ctl.AdmitAt(t0 + Ms(40), 30, 0).ok());
  EXPECT_EQ(ctl.state(), State::kShedding);

  // Drain again, then give the bucket time to fill completely with the
  // backlog low: full acceptance resumes.
  EXPECT_TRUE(ctl.AdmitAt(t0 + Ms(50), 0, 0).ok());
  ctl.Release();
  ASSERT_EQ(ctl.state(), State::kRecovering);
  EXPECT_TRUE(ctl.AdmitAt(t0 + Ms(200), 0, 0).ok());
  EXPECT_EQ(ctl.state(), State::kAccepting);
  ctl.Release();
}

TEST(AdmissionControllerTest, ShedDecisionIsFast) {
  AdmissionController ctl(SmallAdmission());
  const Clock::time_point t0 = Clock::now();
  ASSERT_FALSE(ctl.AdmitAt(t0, 100, 0).ok());
  // 1000 shed decisions in well under a second — each is one mutex
  // hold, no sleeps, no allocation beyond the status message.
  const auto start = Clock::now();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(ctl.AdmitAt(t0, 100, 0).ok());
  }
  EXPECT_LT(std::chrono::duration<double>(Clock::now() - start).count(),
            1.0);
}

// Regression: the hard-budget rejection used to run BEFORE the state
// machine advanced, so sustained budget-exhausted overload kept the
// controller parked in `accepting` — and the instant one slot freed it
// admitted at full rate instead of metering through recovery.
TEST(AdmissionControllerTest, BudgetExhaustionStillAdvancesStateMachine) {
  AdmissionController ctl(SmallAdmission());
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ctl.AdmitAt(t0, 0, 1).ok()) << "fill slot " << i;
  }
  ASSERT_EQ(ctl.state(), State::kAccepting);

  // Budget-bound shed arriving with the backlog past high_watermark:
  // the rejection is the budget's, but the state still transitions.
  const Status budget_shed = ctl.AdmitAt(t0 + Ms(1), 50, 0);
  ASSERT_EQ(budget_shed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(budget_shed.message().find("budget"), std::string::npos)
      << budget_shed.ToString();
  EXPECT_EQ(ctl.state(), State::kShedding);

  // Backlog drains while the budget still binds: shedding -> recovering
  // happens on a budget-shed call too (and arms the one up-front token).
  EXPECT_EQ(ctl.AdmitAt(t0 + Ms(2), 0, 0).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ctl.state(), State::kRecovering);

  // Slots free with no time for the bucket to refill: exactly the
  // up-front token is admitted, then the bucket meters — the pre-fix
  // controller would still be `accepting` here and admit everything.
  for (int i = 0; i < 4; ++i) ctl.Release();
  EXPECT_TRUE(ctl.AdmitAt(t0 + Ms(2), 0, 0).ok());
  EXPECT_EQ(ctl.AdmitAt(t0 + Ms(2), 0, 0).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ctl.state(), State::kRecovering);
  ctl.Release();
}

/// Fills `recorder` with `n` entries whose seq/address/trace_id all
/// identify the record order.
void FillRecorder(serve::FlightRecorder* recorder, uint64_t n) {
  serve::RequestTimeline t;
  for (uint64_t i = 0; i < n; ++i) {
    t.trace_id = i + 1;
    t.deliver_ns = static_cast<int64_t>(i);
    recorder->Record(/*address=*/i, t);
  }
}

// Regression: Snapshot reserved `max_entries` instead of the ring
// capacity (reallocating while collecting) and fully sorted the whole
// ring even when asked for a handful of entries.
TEST(FlightRecorderTest, TruncatedSnapshotKeepsNewestEntries) {
  serve::FlightRecorder recorder(64);
  FillRecorder(&recorder, 200);

  const auto top = recorder.Snapshot(10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 0; i < top.size(); ++i) {
    // Newest first: seqs 199, 198, ... — and each entry's payload is
    // the one recorded under that seq (record i got seq i).
    EXPECT_EQ(top[i].seq, 199u - i);
    EXPECT_EQ(top[i].address, top[i].seq);
    EXPECT_EQ(top[i].timeline.trace_id, top[i].seq + 1);
  }

  // The truncated snapshot is exactly the head of the full one.
  const auto full = recorder.Snapshot(recorder.capacity());
  ASSERT_EQ(full.size(), 64u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(full[i].seq, top[i].seq);
  }
}

TEST(FlightRecorderTest, TruncatedSnapshotIsNotTaxedLikeAFullOne) {
  // Regression: Snapshot used to reserve `max_entries` (so a truncated
  // snapshot of a big ring reallocated its way through 64k collected
  // entries) and then fully sorted the whole ring before truncating —
  // Snapshot(16) cost measurably MORE than Snapshot(capacity), whose
  // reserve happened to be right. Post-fix both reserve the ring size
  // and the truncated path partial_sorts, so it can only be cheaper.
  // Walking the per-slot mutexes dominates either way, so the gate is
  // deliberately "no slower", not a large speedup.
  serve::FlightRecorder recorder(1 << 16);
  FillRecorder(&recorder, recorder.capacity());

  double truncated = 1e9;
  double full = 1e9;
  for (int attempt = 0; attempt < 7; ++attempt) {
    auto start = Clock::now();
    const auto top = recorder.Snapshot(16);
    truncated = std::min(
        truncated,
        std::chrono::duration<double>(Clock::now() - start).count());
    ASSERT_EQ(top.size(), 16u);

    start = Clock::now();
    const auto all = recorder.Snapshot(recorder.capacity());
    full = std::min(
        full, std::chrono::duration<double>(Clock::now() - start).count());
    ASSERT_EQ(all.size(), recorder.capacity());
  }
  EXPECT_LT(truncated, full * 1.05)
      << "Snapshot(16) " << truncated << "s vs full " << full << "s";
}

/// Engine fixture: one small trained classifier per suite, a growing
/// ledger, and helpers to re-run inference serially at a past epoch.
class ResilienceServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 23;
    config.num_blocks = 60;
    config.num_retail_users = 20;
    config.miners_per_pool = 8;
    config.gamblers_per_house = 4;
    simulator_ = new datagen::Simulator(config);
    ASSERT_TRUE(simulator_->Run().ok());

    auto labeled = simulator_->CollectLabeledAddresses(3);
    Rng rng(1);
    const auto split = datagen::StratifiedSplit(labeled, 0.8, &rng);
    ASSERT_GE(split.test.size(), 6u);
    watched_ = new std::vector<datagen::LabeledAddress>(split.test);

    core::BaClassifier::Options opts;
    opts.dataset.construction.slice_size = 20;
    opts.graph_model.epochs = 2;
    opts.graph_model.embed_dim = 16;
    opts.graph_model.hidden_dim = 32;
    opts.aggregator.epochs = 4;
    auto created = core::BaClassifier::Create(opts);
    ASSERT_TRUE(created.ok()) << created.status().message();
    classifier_ = created.value().release();
    ASSERT_TRUE(classifier_->Train(simulator_->ledger(), split.train).ok());
  }

  static void TearDownTestSuite() {
    delete classifier_;
    delete simulator_;
    delete watched_;
    classifier_ = nullptr;
    simulator_ = nullptr;
    watched_ = nullptr;
  }

  static std::unique_ptr<InferenceEngine> MakeEngine(
      serve::InferenceEngineOptions options = {}) {
    options.num_threads = 2;
    auto engine = InferenceEngine::Create(
        classifier_, &simulator_->ledger(), std::move(options));
    EXPECT_TRUE(engine.ok()) << engine.status().message();
    return std::move(engine.value());
  }

  /// Capped tx count of `address` on the live ledger (the engine's
  /// cache-key function, reproduced).
  static uint64_t CappedTxCount(AddressId address) {
    const size_t total = simulator_->ledger().TxCountOf(address);
    const size_t cap = static_cast<size_t>(
        classifier_->options().dataset.construction.max_txs_per_address);
    return static_cast<uint64_t>(std::min(total, cap));
  }

  /// Serial re-run of the inference path at the epoch where `address`
  /// had exactly `tx_count` (capped) transactions.
  static int PredictAtEpoch(AddressId address, uint64_t tx_count) {
    if (tx_count == 0) return 0;
    const chain::Ledger& ledger = simulator_->ledger();
    const std::vector<chain::TxId> full = ledger.TransactionsOf(address);
    EXPECT_LE(tx_count, full.size());
    const chain::LedgerSnapshot snap =
        ledger.SnapshotAt(full[static_cast<size_t>(tx_count) - 1] + 1);
    core::GraphConstructor ctor(
        classifier_->options().dataset.construction);
    const std::vector<core::AddressGraph> graphs =
        ctor.BuildGraphs(snap, address);
    if (graphs.empty()) return 0;
    const core::GraphModel& model = classifier_->graph_model();
    const int64_t embed_dim = model.embed_dim();
    std::vector<core::EmbeddingSequence> seqs(1);
    seqs[0].embeddings =
        tensor::Tensor({static_cast<int64_t>(graphs.size()), embed_dim});
    for (size_t g = 0; g < graphs.size(); ++g) {
      const core::GraphTensors gt = core::PrepareGraphTensors(
          graphs[g], classifier_->options().dataset.k_hops);
      const tensor::Tensor e = model.Embed(gt);
      for (int64_t j = 0; j < embed_dim; ++j) {
        seqs[0].embeddings.at(static_cast<int64_t>(g), j) = e.at(0, j);
      }
    }
    classifier_->scaler().Apply(&seqs);
    return classifier_->aggregator().Predict(seqs[0].embeddings);
  }

  /// Seals one block paying `address` so its live tx count moves past
  /// every cached epoch.
  static void GrowAddress(AddressId address) {
    chain::Ledger* ledger = simulator_->mutable_ledger();
    const chain::Timestamp now =
        ledger->block(ledger->height() - 1).timestamp +
        ledger->options().block_interval_seconds;
    ASSERT_TRUE(ledger->ApplyCoinbase(now, address).ok());
    ASSERT_TRUE(ledger->SealBlock(now).ok());
  }

  static ClassifyOptions ExpiredDeadline(bool allow_degraded = false) {
    ClassifyOptions o;
    o.deadline =
        std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
    o.allow_degraded = allow_degraded;
    return o;
  }

  static datagen::Simulator* simulator_;
  static std::vector<datagen::LabeledAddress>* watched_;
  static core::BaClassifier* classifier_;
};

datagen::Simulator* ResilienceServeTest::simulator_ = nullptr;
std::vector<datagen::LabeledAddress>* ResilienceServeTest::watched_ =
    nullptr;
core::BaClassifier* ResilienceServeTest::classifier_ = nullptr;

TEST_F(ResilienceServeTest, ExpiredDeadlineAtSubmitRejectsBeforeAnyWork) {
  auto engine = MakeEngine();
  const AddressId address = (*watched_)[0].address;
  const auto result = engine->Classify(address, ExpiredDeadline());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Rejected before enqueueing: no batch ran, no graph was built.
  const auto m = engine->Metrics();
  EXPECT_EQ(m.batches, 0u);
  EXPECT_EQ(m.slices_built, 0u);
  EXPECT_EQ(m.deadline_exceeded, 1u);
  EXPECT_EQ(m.requests, 1u);
}

TEST_F(ResilienceServeTest, ExpiredDeadlineAnswersDegradedFromStaleCache) {
  auto engine = MakeEngine();
  const AddressId address = (*watched_)[1].address;
  const auto warm = engine->Classify(address);
  ASSERT_TRUE(warm.ok()) << warm.status().message();
  ASSERT_GT(warm.value().tx_count, 0u);

  GrowAddress(address);
  const uint64_t live = CappedTxCount(address);
  ASSERT_GT(live, warm.value().tx_count);

  const auto stale = engine->Classify(address, ExpiredDeadline(true));
  ASSERT_TRUE(stale.ok()) << stale.status().message();
  EXPECT_TRUE(stale.value().degraded);
  EXPECT_TRUE(stale.value().cache_hit);
  // The answer is pinned at the cached epoch and labeled with its lag
  // against the live chain...
  EXPECT_EQ(stale.value().tx_count, warm.value().tx_count);
  EXPECT_EQ(stale.value().epoch_lag, live - warm.value().tx_count);
  // ...and is exactly what a serial re-run at that epoch produces.
  EXPECT_EQ(stale.value().predicted,
            PredictAtEpoch(address, stale.value().tx_count));
  EXPECT_EQ(engine->Metrics().degraded_stale, 1u);
}

TEST_F(ResilienceServeTest, ExpiredDeadlineWithColdCacheUsesFallback) {
  serve::InferenceEngineOptions options;
  std::atomic<int> fallback_calls{0};
  options.degraded_fallback = [&fallback_calls](AddressId) {
    fallback_calls.fetch_add(1);
    return 3;
  };
  auto engine = MakeEngine(std::move(options));
  const AddressId address = (*watched_)[2].address;
  const auto result = engine->Classify(address, ExpiredDeadline(true));
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result.value().degraded);
  EXPECT_FALSE(result.value().cache_hit);
  EXPECT_EQ(result.value().predicted, 3);
  EXPECT_EQ(result.value().epoch_lag, 0u);
  EXPECT_EQ(fallback_calls.load(), 1);
  EXPECT_EQ(engine->Metrics().degraded_fallback, 1u);
}

TEST_F(ResilienceServeTest,
       ExpiredDeadlineWithColdCacheAndNoFallbackStaysAnError) {
  auto engine = MakeEngine();
  const auto result =
      engine->Classify((*watched_)[3].address, ExpiredDeadline(true));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ResilienceServeTest,
       DeadlineExpiringBeforeBuildSkipsGraphConstruction) {
  FaultGuard guard;
  auto engine = MakeEngine();
  const AddressId address = (*watched_)[4].address;
  // The injected stall sits between the lookup and build stages; a
  // 5ms deadline survives the lookup but is gone at the boundary
  // re-check, so the engine must reject without building anything.
  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchBuild, 0.05);
  ClassifyOptions o;
  o.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  const auto result = engine->Classify(address, o);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  const auto m = engine->Metrics();
  EXPECT_EQ(m.batches, 1u);       // the batch ran...
  EXPECT_EQ(m.misses, 1u);        // ...and saw the cold address...
  EXPECT_EQ(m.slices_built, 0u);  // ...but never built a graph for it.
}

TEST_F(ResilienceServeTest,
       DeadlineExpiringBeforeBuildAnswersStaleWhenAllowed) {
  FaultGuard guard;
  auto engine = MakeEngine();
  const AddressId address = (*watched_)[5].address;
  const auto warm = engine->Classify(address);
  ASSERT_TRUE(warm.ok());
  ASSERT_GT(warm.value().tx_count, 0u);
  GrowAddress(address);
  const uint64_t live = CappedTxCount(address);
  const uint64_t slices_after_warm = engine->Metrics().slices_built;

  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchBuild, 0.05);
  ClassifyOptions o;
  o.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  o.allow_degraded = true;
  const auto result = engine->Classify(address, o);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result.value().degraded);
  EXPECT_EQ(result.value().tx_count, warm.value().tx_count);
  EXPECT_EQ(result.value().epoch_lag, live - warm.value().tx_count);
  EXPECT_EQ(result.value().predicted,
            PredictAtEpoch(address, result.value().tx_count));
  // The degraded answer cost no graph work beyond the warm-up's.
  EXPECT_EQ(engine->Metrics().slices_built, slices_after_warm);
}

TEST_F(ResilienceServeTest, LateCompletionIsLabeledDegraded) {
  FaultGuard guard;
  auto engine = MakeEngine();
  const AddressId address = (*watched_)[0].address;
  // Stall between build and aggregate: the answer is computed on time
  // but delivered late. With allow_degraded it comes back labeled, at
  // lag 0 (it IS the fresh epoch); without, it is an explicit error.
  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchAggregate, 0.05);
  ClassifyOptions o;
  o.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  o.allow_degraded = true;
  const auto late = engine->Classify(address, o);
  ASSERT_TRUE(late.ok()) << late.status().message();
  EXPECT_TRUE(late.value().degraded);
  EXPECT_EQ(late.value().epoch_lag, 0u);
  EXPECT_EQ(late.value().predicted,
            PredictAtEpoch(address, late.value().tx_count));
  EXPECT_EQ(engine->Metrics().degraded_late, 1u);

  util::FaultInjector::Instance().DisarmAll();
  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchAggregate, 0.05);
  ClassifyOptions strict;
  strict.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  const auto rejected = engine->Classify((*watched_)[1].address, strict);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ResilienceServeTest, InjectedBatchFaultsSurfaceAsExplicitErrors) {
  FaultGuard guard;
  auto engine = MakeEngine();
  const AddressId address = (*watched_)[2].address;
  for (const char* point : {InferenceEngine::kFaultBatchLookup,
                            InferenceEngine::kFaultBatchBuild,
                            InferenceEngine::kFaultBatchAggregate}) {
    util::FaultInjector::Instance().Arm(point);
    const auto result = engine->Classify(address);
    ASSERT_FALSE(result.ok()) << "fault point " << point;
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
    EXPECT_NE(result.status().message().find(point), std::string::npos)
        << result.status().ToString();
    util::FaultInjector::Instance().DisarmAll();
    engine->ClearCache();
  }
  // With faults gone the same address classifies fine.
  EXPECT_TRUE(engine->Classify(address).ok());
}

TEST_F(ResilienceServeTest, SaveCacheRetriesTransientFaults) {
  FaultGuard guard;
  const std::string path = "/tmp/ba_resilience_cache_" +
                           std::to_string(::getpid()) + ".bin";
  std::remove(path.c_str());
  serve::InferenceEngineOptions options;
  options.cache_path = path;
  options.save_retry = util::RetryPolicy::Standard(3);
  options.save_retry.initial_backoff_seconds = 1e-4;
  options.save_retry.max_backoff_seconds = 1e-3;
  auto engine = MakeEngine(std::move(options));
  ASSERT_TRUE(engine->Classify((*watched_)[0].address).ok());

  // The very next save attempt dies; the retry policy rides it out.
  util::FaultInjector::Instance().Arm(InferenceEngine::kFaultCacheSave, 1);
  EXPECT_TRUE(engine->SaveCache().ok());
  EXPECT_EQ(util::FaultInjector::Instance().HitCount(
                InferenceEngine::kFaultCacheSave),
            2);
  EXPECT_TRUE(util::FileExists(path));
  std::remove(path.c_str());
}

TEST_F(ResilienceServeTest, EngineShedsUnderOverloadThenRecovers) {
  FaultGuard guard;
  serve::InferenceEngineOptions options;
  options.enable_admission = true;
  options.admission.max_inflight = 64;
  options.admission.high_watermark = 3;
  options.admission.low_watermark = 1;
  options.admission.recovery_rate = 2000.0;
  options.admission.recovery_burst = 4;
  auto engine = MakeEngine(std::move(options));

  // Slow every batch so concurrent clients pile up a backlog.
  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchBuild, 0.02);
  constexpr int kClients = 8;
  constexpr int kCallsPerClient = 6;
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::atomic<int> other_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kCallsPerClient; ++i) {
        const AddressId address =
            (*watched_)[static_cast<size_t>(c * kCallsPerClient + i) %
                        watched_->size()]
                .address;
        const auto result = engine->Classify(address);
        if (result.ok()) {
          ok_count.fetch_add(1);
        } else if (result.status().code() ==
                   StatusCode::kResourceExhausted) {
          shed_count.fetch_add(1);
        } else {
          other_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // No request lost and no unexpected outcome: every call resolved to
  // success or an explicit shed.
  EXPECT_EQ(ok_count + shed_count, kClients * kCallsPerClient);
  EXPECT_EQ(other_count.load(), 0);
  EXPECT_GT(ok_count.load(), 0);
  const auto m = engine->Metrics();
  EXPECT_EQ(m.shed, static_cast<uint64_t>(shed_count.load()));

  // After the storm passes the engine readmits: the token bucket
  // refills within a few milliseconds at this recovery rate.
  util::FaultInjector::Instance().DisarmAll();
  bool recovered = false;
  for (int attempt = 0; attempt < 200 && !recovered; ++attempt) {
    recovered = engine->Classify((*watched_)[0].address).ok();
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(engine->admission()->inflight(), 0);
}

// Regression for the degraded-answer contract (protocol.h): the
// build-boundary stale path used to leave `slices_reused` at 0 while
// the submit fast path reported the cached entry's slice count — the
// same answer described two different ways depending on which stage
// produced it. Every stale answer now sets the same fields.
TEST_F(ResilienceServeTest, DegradedResultContractStaleAcrossPaths) {
  FaultGuard guard;
  auto engine = MakeEngine();
  const AddressId address = (*watched_)[2].address;
  const auto warm = engine->Classify(address);
  ASSERT_TRUE(warm.ok()) << warm.status().message();
  ASSERT_GT(warm.value().tx_count, 0u);
  GrowAddress(address);
  const uint64_t live = CappedTxCount(address);
  ASSERT_GT(live, warm.value().tx_count);

  // Path 1: dead on arrival — the submit fast path answers stale.
  const auto submit_stale = engine->Classify(address, ExpiredDeadline(true));
  ASSERT_TRUE(submit_stale.ok()) << submit_stale.status().message();

  // Path 2: alive through the cache lookup, expired at the build
  // boundary — the batch stale path answers.
  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchBuild, 0.05);
  ClassifyOptions o;
  o.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  o.allow_degraded = true;
  const auto batch_stale = engine->Classify(address, o);
  ASSERT_TRUE(batch_stale.ok()) << batch_stale.status().message();

  for (const ClassifyResult* r :
       {&submit_stale.value(), &batch_stale.value()}) {
    EXPECT_TRUE(r->degraded);
    EXPECT_TRUE(r->cache_hit);
    EXPECT_EQ(r->tx_count, warm.value().tx_count);
    EXPECT_EQ(r->epoch_lag, live - warm.value().tx_count);
    EXPECT_GT(r->slices_reused, 0);
    EXPECT_EQ(r->predicted, PredictAtEpoch(address, r->tx_count));
  }
  // Field-for-field: both paths describe the same answer identically.
  EXPECT_EQ(submit_stale.value().predicted, batch_stale.value().predicted);
  EXPECT_EQ(submit_stale.value().slices_reused,
            batch_stale.value().slices_reused);
  EXPECT_EQ(engine->Metrics().degraded_stale, 2u);
}

// Companion contract pin for the fallback leg: a cold-cache degraded
// answer reports the live epoch with no lag and no cache reuse, from
// the submit fast path and from inside the batch alike.
TEST_F(ResilienceServeTest, DegradedResultContractFallbackAcrossPaths) {
  FaultGuard guard;
  serve::InferenceEngineOptions options;
  options.degraded_fallback = [](AddressId) { return 2; };
  auto engine = MakeEngine(std::move(options));
  const AddressId address = (*watched_)[3].address;
  const uint64_t live = CappedTxCount(address);
  ASSERT_GT(live, 0u);

  const auto submit_fb = engine->Classify(address, ExpiredDeadline(true));
  ASSERT_TRUE(submit_fb.ok()) << submit_fb.status().message();

  // Expire inside the batch: the injected stall sits in front of the
  // cache lookup, so the 5ms deadline dies mid-pipeline with the cache
  // still cold for this address.
  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchLookup, 0.05);
  ClassifyOptions o;
  o.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  o.allow_degraded = true;
  const auto batch_fb = engine->Classify(address, o);
  ASSERT_TRUE(batch_fb.ok()) << batch_fb.status().message();

  for (const ClassifyResult* r : {&submit_fb.value(), &batch_fb.value()}) {
    EXPECT_TRUE(r->degraded);
    EXPECT_FALSE(r->cache_hit);
    EXPECT_EQ(r->predicted, 2);
    EXPECT_EQ(r->tx_count, live);
    EXPECT_EQ(r->epoch_lag, 0u);
    EXPECT_EQ(r->slices_reused, 0);
    EXPECT_EQ(r->slices_built, 0);
  }
  EXPECT_EQ(engine->Metrics().degraded_fallback, 2u);
}

// With max_batch_leaders = 2 a second leader drains the queue while
// the first is stuck mid-batch, so two slow singleton batches overlap
// instead of serializing (the sharded tier runs its shards this way).
TEST_F(ResilienceServeTest, SecondBatchLeaderDrainsDuringSlowBatch) {
  FaultGuard guard;
  serve::InferenceEngineOptions options;
  options.max_batch_size = 1;
  options.max_batch_leaders = 2;
  auto engine = MakeEngine(std::move(options));
  util::FaultInjector::Instance().ArmLatency(
      InferenceEngine::kFaultBatchLookup, 0.15);

  std::atomic<int> done{0};
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 2; ++i) {
    engine->ClassifyAsync(
        (*watched_)[static_cast<size_t>(i)].address, {},
        [&done](Result<ClassifyResult> outcome,
                const serve::RequestTimeline&) {
          EXPECT_TRUE(outcome.ok()) << outcome.status().message();
          done.fetch_add(1);
        });
  }
  while (done.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Serial leaders would stack the two 150ms stalls (>= 300ms); the
  // hand-off overlaps them. The bound leaves slack for the real
  // lookup/build work behind the stalls.
  EXPECT_LT(elapsed, 0.28) << "batches serialized behind one leader";
}

TEST_F(ResilienceServeTest, RegistryExportsLoadAndAdmissionInstruments) {
  serve::InferenceEngineOptions options;
  options.enable_admission = true;
  auto engine = MakeEngine(std::move(options));
  ASSERT_TRUE(engine->Classify((*watched_)[0].address).ok());
  const auto m = engine->Metrics();  // refreshes the load gauges

  auto& reg = obs::MetricsRegistry::Instance();
  const std::string expo = reg.JsonExposition();
  // Per-engine load gauges exist under the engine's registry name...
  bool saw_backlog = false;
  bool saw_queue = false;
  for (const std::string& name : reg.Names()) {
    if (name.find(".pool_backlog") != std::string::npos) {
      saw_backlog = true;
    }
    if (name.find(".queue_depth") != std::string::npos) saw_queue = true;
  }
  EXPECT_TRUE(saw_backlog);
  EXPECT_TRUE(saw_queue);
  // ...and the process-wide admission instruments moved.
  EXPECT_NE(expo.find("\"serve.admission.inflight\""), std::string::npos);
  EXPECT_GT(reg.GetCounter("serve.admission.admitted")->value(), 0u);
  // Quiesced engine: everything admitted has been released.
  EXPECT_EQ(reg.GetGauge("serve.admission.inflight")->value(), 0);
  EXPECT_EQ(m.admission_state, "accepting");
}

}  // namespace
}  // namespace ba
