#!/usr/bin/env bash
# Builds the tier-1 targets under AddressSanitizer + UBSan and runs the
# full test suite. This is the crash-safety gate: fault-injection and
# corruption tests must pass with zero sanitizer findings.
#
# Usage: scripts/check.sh [build-dir]   (default: build-sanitize)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBA_SANITIZE=ON \
  -DBA_BUILD_BENCHMARKS=OFF \
  -DBA_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
