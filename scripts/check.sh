#!/usr/bin/env bash
# Builds the tier-1 targets under a sanitizer and runs the test suite.
# This is the crash-safety gate: fault-injection and corruption tests
# must pass with zero sanitizer findings.
#
# Four configurations:
#   address (default)  ASan + UBSan over the full suite.
#   thread             TSan over the concurrency-sensitive tests
#                      (serve_test drives the batched inference engine
#                      from multiple client threads; snapshot_test
#                      seals blocks while classifying — the ledger
#                      epoch/snapshot layer's acceptance gate;
#                      parallel_train_test exercises data-parallel
#                      training and the shared pool; obs_test hammers
#                      the metrics registry and tracer concurrently).
#   trace              Smoke-tests the observability subsystem: runs the
#                      serve_monitor example with BA_TRACE_OUT set and
#                      validates that the emitted file is well-formed
#                      Chrome trace-event JSON containing spans from the
#                      core, serve and util.thread_pool subsystems.
#   chaos              TSan over the chaos/resilience suite: randomized
#                      fault injection, injected latency, deadlines and
#                      admission-controlled overload driven against the
#                      serving engine while blocks seal concurrently
#                      (chaos_test, resilience_test), plus the fault
#                      injector's own concurrency hammer and the atomic
#                      file writer under concurrent writers (fs_test).
#   net                Release-build network smoke: starts the ba_serve
#                      daemon on ephemeral ports (--port-file handshake),
#                      drives it over real sockets with bench_net_loadgen
#                      in external mode (fleet, churn and the protocol
#                      abuse suite — no lost or hung connections
#                      tolerated), scrapes health/metrics through the
#                      admin port via serve_monitor's scrape subcommand,
#                      then shuts the daemon down with an admin quit and
#                      requires a clean exit.
#   shard              Release-build sharded-serving smoke: starts the
#                      ba_serve daemon with --engines 4 (four inference
#                      engines behind the consistent-hash router),
#                      drives it with bench_net_loadgen over real
#                      sockets, scrapes the admin port for the
#                      aggregated metrics plus the serve.router.* and
#                      per-shard serve.engine.<k> instruments, then
#                      requires a clean admin-quit exit.
#   perf               Release-build perf smoke: bench_gemm (fp32 +
#                      int8 kernel parity, single-thread speedup), the
#                      training throughput bench at 1 and N lanes, and
#                      the int8 serving comparison (quantized engine
#                      must hold >= 1.3x fp32 qps with label accuracy
#                      within 0.5 points). Fails on any kernel parity
#                      mismatch, serial/threaded loss divergence, or a
#                      missed int8 gate; the JSON outputs land in the
#                      build dir, not the repo root.
#
# Usage: scripts/check.sh [address|thread|trace|chaos|net|shard|perf] [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-address}"

# Static gate, every mode: instrument/span names must follow the
# <subsystem>.<stage> convention (scripts/lint_metric_names.sh).
scripts/lint_metric_names.sh

# Every tier-1 test registered in tests/CMakeLists.txt must exist in
# the build dir after a build — a test that silently fails to build
# (or gets dropped from the target list) must fail the gate, not skip.
require_test_binaries() {
  local build_dir="$1"
  local missing=0
  while read -r name; do
    if [ ! -x "$build_dir/tests/$name" ]; then
      echo "check.sh: MISSING TEST BINARY: $build_dir/tests/$name" >&2
      missing=1
    fi
  done < <(sed -n 's/^ba_add_test(\([a-z_0-9]*\)).*/\1/p' tests/CMakeLists.txt)
  if [ "$missing" -ne 0 ]; then
    echo "check.sh: tier-1 test binaries missing after build; failing" >&2
    exit 1
  fi
}

case "$MODE" in
  address)
    BUILD_DIR="${2:-build-sanitize}"
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DBA_SANITIZE=address \
      -DBA_BUILD_BENCHMARKS=OFF \
      -DBA_BUILD_EXAMPLES=OFF
    cmake --build "$BUILD_DIR" -j "$(nproc)"
    require_test_binaries "$BUILD_DIR"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
    ;;
  thread)
    BUILD_DIR="${2:-build-tsan}"
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DBA_SANITIZE=thread \
      -DBA_BUILD_BENCHMARKS=OFF \
      -DBA_BUILD_EXAMPLES=OFF
    TSAN_TESTS="serve_test sharded_serve_test snapshot_test util_test obs_test parallel_train_test resilience_test chaos_test protocol_test net_test async_classify_test"
    # shellcheck disable=SC2086
    cmake --build "$BUILD_DIR" -j "$(nproc)" \
      --target $TSAN_TESTS
    for t in $TSAN_TESTS; do
      if [ ! -x "$BUILD_DIR/tests/$t" ]; then
        echo "check.sh: MISSING TEST BINARY: $BUILD_DIR/tests/$t" >&2
        exit 1
      fi
    done
    for t in $TSAN_TESTS; do
      "$BUILD_DIR/tests/$t"
    done
    ;;
  chaos)
    BUILD_DIR="${2:-build-tsan}"
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DBA_SANITIZE=thread \
      -DBA_BUILD_BENCHMARKS=OFF \
      -DBA_BUILD_EXAMPLES=OFF
    CHAOS_TESTS="chaos_test resilience_test fs_test"
    # shellcheck disable=SC2086
    cmake --build "$BUILD_DIR" -j "$(nproc)" \
      --target $CHAOS_TESTS
    for t in $CHAOS_TESTS; do
      if [ ! -x "$BUILD_DIR/tests/$t" ]; then
        echo "check.sh: MISSING TEST BINARY: $BUILD_DIR/tests/$t" >&2
        exit 1
      fi
    done
    for t in $CHAOS_TESTS; do
      "$BUILD_DIR/tests/$t"
    done
    ;;
  trace)
    BUILD_DIR="${2:-build}"
    TRACE_FILE="$(mktemp /tmp/ba_trace_smoke_XXXXXX.json)"
    trap 'rm -f "$TRACE_FILE"' EXIT
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" -j "$(nproc)" --target serve_monitor
    # A short serving run exercises training, graph construction, the
    # micro-batching engine and the thread pool in one process.
    BA_TRACE_OUT="$TRACE_FILE" "$BUILD_DIR"/examples/serve_monitor \
      --blocks 60 --stream 3 --clients 2 --trace-out "$TRACE_FILE" \
      --cache "$(mktemp -u /tmp/ba_trace_smoke_cache_XXXXXX.basv)"
    python3 - "$TRACE_FILE" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

events = doc["traceEvents"]
assert isinstance(events, list) and events, "no trace events"
names = {e["name"] for e in events}
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "no complete ('X') spans"
for e in spans:
    assert e["dur"] >= 0, f"negative duration: {e}"
    assert {"name", "ph", "ts", "pid", "tid"} <= e.keys(), f"missing keys: {e}"

for prefix in ("core.", "serve.", "util.thread_pool."):
    assert any(n.startswith(prefix) for n in names), \
        f"no span from subsystem {prefix!r}; saw {sorted(names)[:20]}"

print(f"trace OK: {len(events)} events, "
      f"{len({e['tid'] for e in events})} threads, "
      f"subsystems core/serve/util.thread_pool all present")
EOF
    ;;
  net)
    BUILD_DIR="${2:-build}"
    PORT_FILE="$(mktemp -u /tmp/ba_net_smoke_port_XXXXXX)"
    LOADGEN_OUT="$(mktemp -u /tmp/ba_net_smoke_bench_XXXXXX.json)"
    DAEMON_LOG="$(mktemp /tmp/ba_net_smoke_daemon_XXXXXX.log)"
    DAEMON_PID=""
    cleanup_net() {
      if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
      fi
      rm -f "$PORT_FILE" "$LOADGEN_OUT" "$DAEMON_LOG"
    }
    trap cleanup_net EXIT
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" -j "$(nproc)" \
      --target ba_serve_daemon bench_net_loadgen serve_monitor
    for bin in examples/ba_serve bench/bench_net_loadgen \
               examples/serve_monitor; do
      if [ ! -x "$BUILD_DIR/$bin" ]; then
        echo "check.sh: MISSING BINARY: $BUILD_DIR/$bin" >&2
        exit 1
      fi
    done
    # Ephemeral ports + port-file handshake: no fixed port to collide
    # with a parallel CI job.
    "$BUILD_DIR"/examples/ba_serve --port 0 --admin-port 0 \
      --port-file "$PORT_FILE" --blocks 60 --seal-every-ms 200 \
      > "$DAEMON_LOG" 2>&1 &
    DAEMON_PID="$!"
    for _ in $(seq 1 300); do
      [ -s "$PORT_FILE" ] && break
      if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "check.sh: ba_serve died during startup:" >&2
        cat "$DAEMON_LOG" >&2
        exit 1
      fi
      sleep 0.2
    done
    if [ ! -s "$PORT_FILE" ]; then
      echo "check.sh: ba_serve never wrote $PORT_FILE" >&2
      cat "$DAEMON_LOG" >&2
      exit 1
    fi
    read -r DATA_PORT ADMIN_PORT < "$PORT_FILE"
    echo "check.sh: ba_serve up (data $DATA_PORT, admin $ADMIN_PORT)"
    # Admin scrape first: health must report ok before any load.
    "$BUILD_DIR"/examples/serve_monitor scrape --admin "$ADMIN_PORT" \
      --cmd health | grep -q '"status":"ok"' \
      || { echo "check.sh: health scrape failed" >&2; exit 1; }
    # External-mode loadgen: fleet + churn + abuse against the live
    # daemon; exits non-zero when any connection is lost or hung.
    "$BUILD_DIR"/bench/bench_net_loadgen --connect "$DATA_PORT" \
      --address-max 50 --connections 8 --seconds 1 --churn-rounds 20 \
      --out "$LOADGEN_OUT"
    # The daemon served real traffic: the registry scrape must show it.
    "$BUILD_DIR"/examples/serve_monitor scrape --admin "$ADMIN_PORT" \
      --cmd metrics | grep -q 'net.requests' \
      || { echo "check.sh: metrics scrape failed" >&2; exit 1; }
    # Admin quit: the daemon must exit 0 on its own, no signal needed.
    "$BUILD_DIR"/examples/serve_monitor scrape --admin "$ADMIN_PORT" \
      --cmd quit | grep -q 'bye' \
      || { echo "check.sh: quit scrape failed" >&2; exit 1; }
    if ! wait "$DAEMON_PID"; then
      echo "check.sh: ba_serve exited non-zero after quit:" >&2
      cat "$DAEMON_LOG" >&2
      exit 1
    fi
    DAEMON_PID=""
    echo "net smoke OK (data $DATA_PORT, admin $ADMIN_PORT)"
    ;;
  shard)
    BUILD_DIR="${2:-build}"
    PORT_FILE="$(mktemp -u /tmp/ba_shard_smoke_port_XXXXXX)"
    LOADGEN_OUT="$(mktemp -u /tmp/ba_shard_smoke_bench_XXXXXX.json)"
    DAEMON_LOG="$(mktemp /tmp/ba_shard_smoke_daemon_XXXXXX.log)"
    METRICS_OUT="$(mktemp /tmp/ba_shard_smoke_metrics_XXXXXX.json)"
    DAEMON_PID=""
    cleanup_shard() {
      if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
      fi
      rm -f "$PORT_FILE" "$LOADGEN_OUT" "$DAEMON_LOG" "$METRICS_OUT"
    }
    trap cleanup_shard EXIT
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" -j "$(nproc)" \
      --target ba_serve_daemon bench_net_loadgen serve_monitor
    # The sharded tier behind the same wire protocol: four engines,
    # ephemeral ports, port-file handshake.
    "$BUILD_DIR"/examples/ba_serve --port 0 --admin-port 0 \
      --port-file "$PORT_FILE" --blocks 60 --engines 4 \
      > "$DAEMON_LOG" 2>&1 &
    DAEMON_PID="$!"
    for _ in $(seq 1 300); do
      [ -s "$PORT_FILE" ] && break
      if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "check.sh: ba_serve --engines 4 died during startup:" >&2
        cat "$DAEMON_LOG" >&2
        exit 1
      fi
      sleep 0.2
    done
    if [ ! -s "$PORT_FILE" ]; then
      echo "check.sh: ba_serve never wrote $PORT_FILE" >&2
      cat "$DAEMON_LOG" >&2
      exit 1
    fi
    read -r DATA_PORT ADMIN_PORT < "$PORT_FILE"
    echo "check.sh: sharded ba_serve up (data $DATA_PORT, admin $ADMIN_PORT)"
    "$BUILD_DIR"/examples/serve_monitor scrape --admin "$ADMIN_PORT" \
      --cmd health | grep -q '"status":"ok"' \
      || { echo "check.sh: health scrape failed" >&2; exit 1; }
    # Real socket traffic through the router (wire stability: the
    # loadgen neither knows nor cares that the engine is sharded).
    "$BUILD_DIR"/bench/bench_net_loadgen --connect "$DATA_PORT" \
      --address-max 50 --connections 8 --seconds 1 --churn-rounds 10 \
      --out "$LOADGEN_OUT"
    # The admin scrape must expose the router instruments, the router
    # provider (4 shards) and every per-shard engine provider.
    "$BUILD_DIR"/examples/serve_monitor scrape --admin "$ADMIN_PORT" \
      --cmd metrics > "$METRICS_OUT" \
      || { echo "check.sh: metrics scrape failed" >&2; exit 1; }
    grep -q 'serve.router.requests' "$METRICS_OUT" \
      || { echo "check.sh: no serve.router.requests in scrape" >&2; exit 1; }
    grep -q '"shards":4' "$METRICS_OUT" \
      || { echo "check.sh: router provider missing/shard count wrong" >&2; exit 1; }
    SHARD_PROVIDERS="$(grep -o '"serve\.engine\.[0-9]*":{' "$METRICS_OUT" | sort -u | wc -l)"
    if [ "$SHARD_PROVIDERS" -lt 4 ]; then
      echo "check.sh: expected 4 per-shard providers, saw $SHARD_PROVIDERS" >&2
      exit 1
    fi
    "$BUILD_DIR"/examples/serve_monitor scrape --admin "$ADMIN_PORT" \
      --cmd quit | grep -q 'bye' \
      || { echo "check.sh: quit scrape failed" >&2; exit 1; }
    if ! wait "$DAEMON_PID"; then
      echo "check.sh: sharded ba_serve exited non-zero after quit:" >&2
      cat "$DAEMON_LOG" >&2
      exit 1
    fi
    DAEMON_PID=""
    echo "shard smoke OK (4 engines, $SHARD_PROVIDERS shard providers)"
    ;;
  perf)
    BUILD_DIR="${2:-build}"
    THREADS="${BA_THREADS:-$(nproc)}"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" -j "$(nproc)" \
      --target bench_gemm bench_train_throughput bench_serve_throughput
    # Kernel parity + single-thread speedup (the acceptance gate), then
    # the row-panel split at N threads. bench_gemm exits non-zero on any
    # parity mismatch — fp32 tolerance parity, and bit-exact int8
    # parity across ISA variants.
    "$BUILD_DIR"/bench/bench_gemm --threads 1 --reps-ms 80 \
      --out "$BUILD_DIR/BENCH_gemm.json"
    "$BUILD_DIR"/bench/bench_gemm --threads "$THREADS" --reps-ms 80 \
      --out "$BUILD_DIR/BENCH_gemm_mt.json"
    # Serial vs data-parallel training on a reduced economy; exits
    # non-zero when per-epoch losses diverge between lane counts.
    "$BUILD_DIR"/bench/bench_train_throughput --threads "$THREADS" \
      --blocks 150 --addresses 200 --epochs 2 \
      --out "$BUILD_DIR/BENCH_train.json"
    # Int8 serving gates: the quantized engine must hold >= 1.3x the
    # fp32 engine's cold-cache qps, with label accuracy within 0.5
    # points (bench_serve_throughput exits non-zero on either miss).
    "$BUILD_DIR"/bench/bench_serve_throughput --precision int8 \
      --out "$BUILD_DIR/BENCH_serve_int8.json"
    echo "perf smoke OK (threads=$THREADS)"
    ;;
  *)
    echo "usage: scripts/check.sh [address|thread|trace|chaos|net|shard|perf] [build-dir]" >&2
    exit 2
    ;;
esac
