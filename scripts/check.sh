#!/usr/bin/env bash
# Builds the tier-1 targets under a sanitizer and runs the test suite.
# This is the crash-safety gate: fault-injection and corruption tests
# must pass with zero sanitizer findings.
#
# Three configurations:
#   address (default)  ASan + UBSan over the full suite.
#   thread             TSan over the concurrency-sensitive tests
#                      (serve_test drives the batched inference engine
#                      from multiple client threads; obs_test hammers
#                      the metrics registry and tracer concurrently).
#   trace              Smoke-tests the observability subsystem: runs the
#                      serve_monitor example with BA_TRACE_OUT set and
#                      validates that the emitted file is well-formed
#                      Chrome trace-event JSON containing spans from the
#                      core, serve and util.thread_pool subsystems.
#
# Usage: scripts/check.sh [address|thread|trace] [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-address}"

case "$MODE" in
  address)
    BUILD_DIR="${2:-build-sanitize}"
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DBA_SANITIZE=address \
      -DBA_BUILD_BENCHMARKS=OFF \
      -DBA_BUILD_EXAMPLES=OFF
    cmake --build "$BUILD_DIR" -j "$(nproc)"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
    ;;
  thread)
    BUILD_DIR="${2:-build-tsan}"
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DBA_SANITIZE=thread \
      -DBA_BUILD_BENCHMARKS=OFF \
      -DBA_BUILD_EXAMPLES=OFF
    cmake --build "$BUILD_DIR" -j "$(nproc)" --target serve_test util_test obs_test
    "$BUILD_DIR"/tests/serve_test
    "$BUILD_DIR"/tests/util_test
    "$BUILD_DIR"/tests/obs_test
    ;;
  trace)
    BUILD_DIR="${2:-build}"
    TRACE_FILE="$(mktemp /tmp/ba_trace_smoke_XXXXXX.json)"
    trap 'rm -f "$TRACE_FILE"' EXIT
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" -j "$(nproc)" --target serve_monitor
    # A short serving run exercises training, graph construction, the
    # micro-batching engine and the thread pool in one process.
    BA_TRACE_OUT="$TRACE_FILE" "$BUILD_DIR"/examples/serve_monitor \
      --blocks 60 --stream 3 --clients 2 --trace-out "$TRACE_FILE" \
      --cache "$(mktemp -u /tmp/ba_trace_smoke_cache_XXXXXX.basv)"
    python3 - "$TRACE_FILE" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

events = doc["traceEvents"]
assert isinstance(events, list) and events, "no trace events"
names = {e["name"] for e in events}
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "no complete ('X') spans"
for e in spans:
    assert e["dur"] >= 0, f"negative duration: {e}"
    assert {"name", "ph", "ts", "pid", "tid"} <= e.keys(), f"missing keys: {e}"

for prefix in ("core.", "serve.", "util.thread_pool."):
    assert any(n.startswith(prefix) for n in names), \
        f"no span from subsystem {prefix!r}; saw {sorted(names)[:20]}"

print(f"trace OK: {len(events)} events, "
      f"{len({e['tid'] for e in events})} threads, "
      f"subsystems core/serve/util.thread_pool all present")
EOF
    ;;
  *)
    echo "usage: scripts/check.sh [address|thread|trace] [build-dir]" >&2
    exit 2
    ;;
esac
