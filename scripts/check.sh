#!/usr/bin/env bash
# Builds the tier-1 targets under a sanitizer and runs the test suite.
# This is the crash-safety gate: fault-injection and corruption tests
# must pass with zero sanitizer findings.
#
# Two configurations:
#   address (default)  ASan + UBSan over the full suite.
#   thread             TSan over the concurrency-sensitive tests
#                      (serve_test drives the batched inference engine
#                      from multiple client threads).
#
# Usage: scripts/check.sh [address|thread] [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-address}"

case "$MODE" in
  address)
    BUILD_DIR="${2:-build-sanitize}"
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DBA_SANITIZE=address \
      -DBA_BUILD_BENCHMARKS=OFF \
      -DBA_BUILD_EXAMPLES=OFF
    cmake --build "$BUILD_DIR" -j "$(nproc)"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
    ;;
  thread)
    BUILD_DIR="${2:-build-tsan}"
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DBA_SANITIZE=thread \
      -DBA_BUILD_BENCHMARKS=OFF \
      -DBA_BUILD_EXAMPLES=OFF
    cmake --build "$BUILD_DIR" -j "$(nproc)" --target serve_test util_test
    "$BUILD_DIR"/tests/serve_test
    "$BUILD_DIR"/tests/util_test
    ;;
  *)
    echo "usage: scripts/check.sh [address|thread] [build-dir]" >&2
    exit 2
    ;;
esac
