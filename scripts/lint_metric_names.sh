#!/usr/bin/env bash
# Enforces the instrument/span naming convention across every literal
# registered with the metrics registry or the tracer:
#
#   <subsystem>.<stage>[.<detail>...]
#
# where <subsystem> is one of the known top-level namespaces and every
# following segment is lowercase [a-z0-9_]. One convention keeps admin
# `metrics` output greppable (`serve.` pulls one subsystem), lets
# dashboards match on stable prefixes, and makes the Perfetto span
# names sort next to their subsystem's counters.
#
# Scope: production sources (src/, examples/, bench/). Tests register
# deliberately-namespaced scratch instruments (obs_test.*) and are
# exempt.
#
# Usage: scripts/lint_metric_names.sh   (exits non-zero on offenders)
set -euo pipefail
cd "$(dirname "$0")/.."

SUBSYSTEMS='core|serve|net|obs|util|chain|sim|tensor|bench'
NAME_RE="^(${SUBSYSTEMS})(\.[a-z0-9_]+)+\$"

# Every call that registers a named instrument or emits a named span /
# flow event. The first string literal argument is the name.
CALLS='GetCounter|GetGauge|GetHistogram|RegisterProvider|BA_TRACE_SPAN|RecordCounter|RecordComplete|RecordAsync'

fail=0
count=0
while IFS= read -r hit; do
  # hit looks like  path:line:Call("name"
  location="$(printf '%s' "$hit" | sed -E 's/:('"$CALLS"')\(".*$//')"
  name="$(printf '%s' "$hit" | sed -E 's/^.*:('"$CALLS"')\("//')"
  name="${name%\"}"
  count=$((count + 1))
  if ! printf '%s' "$name" | grep -qE "$NAME_RE"; then
    echo "lint_metric_names: BAD NAME \"$name\" at $location" >&2
    echo "  want: <subsystem>.<stage> with subsystem in {${SUBSYSTEMS//|/, }}" >&2
    fail=1
  fi
done < <(grep -rnoE "(${CALLS})\(\"[^\"]*\"" src/ examples/ bench/)

if [ "$count" -eq 0 ]; then
  echo "lint_metric_names: found no instrument registrations at all — the grep is broken" >&2
  exit 1
fi
if [ "$fail" -ne 0 ]; then
  exit 1
fi

# Load-bearing span names: dashboards and the perf gates grep for
# these literals, so a rename must fail here instead of silently
# breaking them. (tensor.gemm covers the fp32 dispatch path,
# tensor.gemm.int8 the quantized kernels, core.quant.calibrate the
# post-training calibration pass; the serve.router.* family is the
# sharded tier's dispatch span and counters, scraped by the shard
# smoke mode of check.sh.)
for required in core.quant.calibrate tensor.gemm tensor.gemm.int8 \
                serve.router.dispatch serve.router.requests \
                serve.router.sweep_requests; do
  if ! grep -rqF "\"$required\"" src/; then
    echo "lint_metric_names: REQUIRED SPAN \"$required\" missing from src/" >&2
    exit 1
  fi
done

echo "lint_metric_names OK: $count instrument/span names conform"
