#pragma once

#include <cstdint>
#include <vector>

#include "ml/model.h"
#include "util/rng.h"

/// \file decision_tree.h
/// \brief CART decision tree (Table II baseline) and the axis-aligned
/// regression tree underlying GBDT / XGBoost.

namespace ba::ml {

/// \brief Gini-impurity CART classifier with exact greedy splits.
class DecisionTree : public MlModel {
 public:
  struct Options {
    int max_depth = 12;
    int min_samples_split = 4;
    int min_samples_leaf = 2;
    /// Features examined per split; -1 = all (random forests pass
    /// sqrt(d)).
    int max_features = -1;
    uint64_t seed = 1;
  };

  DecisionTree() : DecisionTree(Options()) {}
  explicit DecisionTree(Options options) : options_(options) {}

  std::string Name() const override { return "Decision Tree"; }

  void Fit(const MlDataset& train) override;

  /// Fits on a subset of rows (bootstrap support for forests).
  void FitIndices(const MlDataset& train,
                  const std::vector<int64_t>& indices);

  int Predict(const std::vector<float>& row) const override;

  /// Class-frequency distribution at the row's leaf.
  const std::vector<double>& PredictDistribution(
      const std::vector<float>& row) const;

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  struct Node {
    int feature = -1;  // -1 = leaf
    float threshold = 0.0f;
    int left = -1;
    int right = -1;
    int label = 0;
    std::vector<double> distribution;  // normalized class frequencies
  };

  int BuildNode(const MlDataset& train, std::vector<int64_t>* indices,
                int64_t begin, int64_t end, int depth, Rng* rng);
  int LeafIndex(const std::vector<float>& row) const;

  Options options_;
  int num_classes_ = 0;
  std::vector<Node> nodes_;
};

/// \brief Regression tree for gradient boosting. Supports first-order
/// leaves (mean residual — classic GBDT) and second-order leaves
/// (-G/(H+λ) with gain-based splits — the XGBoost objective).
class RegressionTree {
 public:
  struct Options {
    int max_depth = 3;
    int min_samples_leaf = 2;
    /// L2 regularization λ on leaf weights (second-order mode).
    double lambda = 1.0;
    /// Minimum split gain γ (second-order mode).
    double min_gain = 0.0;
  };

  RegressionTree() : RegressionTree(Options()) {}
  explicit RegressionTree(Options options) : options_(options) {}

  /// Classic GBDT: fits `targets` (negative gradients) by variance
  /// reduction; leaf value = mean target.
  void FitFirstOrder(const std::vector<std::vector<float>>& x,
                     const std::vector<double>& targets,
                     const std::vector<int64_t>& indices);

  /// XGBoost-style: per-row gradient/hessian; leaf weight -G/(H+λ),
  /// split score G²/(H+λ) gain.
  void FitSecondOrder(const std::vector<std::vector<float>>& x,
                      const std::vector<double>& grad,
                      const std::vector<double>& hess,
                      const std::vector<int64_t>& indices);

  double Predict(const std::vector<float>& row) const;

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  struct Node {
    int feature = -1;
    float threshold = 0.0f;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };

  int BuildFirst(const std::vector<std::vector<float>>& x,
                 const std::vector<double>& targets,
                 std::vector<int64_t>* indices, int64_t begin, int64_t end,
                 int depth);
  int BuildSecond(const std::vector<std::vector<float>>& x,
                  const std::vector<double>& grad,
                  const std::vector<double>& hess,
                  std::vector<int64_t>* indices, int64_t begin, int64_t end,
                  int depth);

  Options options_;
  std::vector<Node> nodes_;
};

}  // namespace ba::ml
