#include "ml/linear_models.h"

#include <algorithm>
#include <cmath>

namespace ba::ml {

void LogisticRegression::Fit(const MlDataset& train) {
  train.Check();
  num_classes_ = train.num_classes;
  dim_ = train.num_features();
  weights_.assign(static_cast<size_t>(num_classes_ * dim_), 0.0f);
  bias_.assign(static_cast<size_t>(num_classes_), 0.0f);

  const int64_t n = train.size();
  std::vector<double> probs(static_cast<size_t>(num_classes_));
  std::vector<double> grad_w(weights_.size());
  std::vector<double> grad_b(bias_.size());

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(grad_w.begin(), grad_w.end(), 0.0);
    std::fill(grad_b.begin(), grad_b.end(), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      const auto& row = train.x[static_cast<size_t>(i)];
      // Softmax over class scores.
      double max_s = -1e30;
      for (int c = 0; c < num_classes_; ++c) {
        double s = bias_[static_cast<size_t>(c)];
        const float* w = weights_.data() + c * dim_;
        for (int64_t j = 0; j < dim_; ++j) s += w[j] * row[static_cast<size_t>(j)];
        probs[static_cast<size_t>(c)] = s;
        max_s = std::max(max_s, s);
      }
      double total = 0.0;
      for (int c = 0; c < num_classes_; ++c) {
        probs[static_cast<size_t>(c)] =
            std::exp(probs[static_cast<size_t>(c)] - max_s);
        total += probs[static_cast<size_t>(c)];
      }
      for (int c = 0; c < num_classes_; ++c) {
        const double p = probs[static_cast<size_t>(c)] / total;
        const double err =
            p - (c == train.y[static_cast<size_t>(i)] ? 1.0 : 0.0);
        grad_b[static_cast<size_t>(c)] += err;
        double* gw = grad_w.data() + c * dim_;
        for (int64_t j = 0; j < dim_; ++j) {
          gw[j] += err * row[static_cast<size_t>(j)];
        }
      }
    }
    const float lr = options_.learning_rate;
    for (size_t k = 0; k < weights_.size(); ++k) {
      weights_[k] -= lr * static_cast<float>(grad_w[k] / static_cast<double>(n) +
                                             options_.l2 * weights_[k]);
    }
    for (size_t k = 0; k < bias_.size(); ++k) {
      bias_[k] -= lr * static_cast<float>(grad_b[k] / static_cast<double>(n));
    }
  }
}

std::vector<double> LogisticRegression::PredictProba(
    const std::vector<float>& row) const {
  std::vector<double> probs(static_cast<size_t>(num_classes_));
  double max_s = -1e30;
  for (int c = 0; c < num_classes_; ++c) {
    double s = bias_[static_cast<size_t>(c)];
    const float* w = weights_.data() + c * dim_;
    for (int64_t j = 0; j < dim_; ++j) s += w[j] * row[static_cast<size_t>(j)];
    probs[static_cast<size_t>(c)] = s;
    max_s = std::max(max_s, s);
  }
  double total = 0.0;
  for (auto& p : probs) {
    p = std::exp(p - max_s);
    total += p;
  }
  for (auto& p : probs) p /= total;
  return probs;
}

int LogisticRegression::Predict(const std::vector<float>& row) const {
  const auto probs = PredictProba(row);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

void LinearSvm::Fit(const MlDataset& train) {
  train.Check();
  num_classes_ = train.num_classes;
  dim_ = train.num_features();
  weights_.assign(static_cast<size_t>(num_classes_ * dim_), 0.0f);
  bias_.assign(static_cast<size_t>(num_classes_), 0.0f);

  Rng rng(options_.seed);
  const int64_t n = train.size();
  std::vector<size_t> order(static_cast<size_t>(n));
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const float lr =
        options_.learning_rate / (1.0f + 0.1f * static_cast<float>(epoch));
    for (size_t i : order) {
      const auto& row = train.x[i];
      for (int c = 0; c < num_classes_; ++c) {
        const float target = train.y[i] == c ? 1.0f : -1.0f;
        float* w = weights_.data() + c * dim_;
        double score = bias_[static_cast<size_t>(c)];
        for (int64_t j = 0; j < dim_; ++j) {
          score += w[j] * row[static_cast<size_t>(j)];
        }
        // Subgradient of hinge + L2.
        if (target * score < 1.0) {
          for (int64_t j = 0; j < dim_; ++j) {
            w[j] += lr * (target * row[static_cast<size_t>(j)] -
                          options_.l2 * w[j]);
          }
          bias_[static_cast<size_t>(c)] += lr * target;
        } else {
          for (int64_t j = 0; j < dim_; ++j) {
            w[j] -= lr * options_.l2 * w[j];
          }
        }
      }
    }
  }
}

double LinearSvm::Margin(int cls, const std::vector<float>& row) const {
  const float* w = weights_.data() + cls * dim_;
  double score = bias_[static_cast<size_t>(cls)];
  for (int64_t j = 0; j < dim_; ++j) score += w[j] * row[static_cast<size_t>(j)];
  return score;
}

int LinearSvm::Predict(const std::vector<float>& row) const {
  int best = 0;
  double best_margin = Margin(0, row);
  for (int c = 1; c < num_classes_; ++c) {
    const double m = Margin(c, row);
    if (m > best_margin) {
      best_margin = m;
      best = c;
    }
  }
  return best;
}

}  // namespace ba::ml
