#pragma once

#include <string>
#include <vector>

#include "metrics/classification.h"
#include "ml/dataset.h"

/// \file model.h
/// \brief Common interface of the classical ML classifiers compared in
/// Table II (LR, MLP, SVM, Bernoulli/Gaussian NB, KNN, Decision Tree,
/// GBDT, XGBoost) and the Table IV comparators.

namespace ba::ml {

/// \brief A trainable flat-feature classifier.
class MlModel {
 public:
  virtual ~MlModel() = default;

  /// Model name as it appears in the paper's tables.
  virtual std::string Name() const = 0;

  /// Fits on the training split. Inputs are expected pre-standardized
  /// where the model benefits from it (the harness handles scaling).
  virtual void Fit(const MlDataset& train) = 0;

  /// Predicted class of one row.
  virtual int Predict(const std::vector<float>& row) const = 0;

  /// Predicted classes of a whole matrix.
  std::vector<int> PredictAll(
      const std::vector<std::vector<float>>& x) const {
    std::vector<int> out;
    out.reserve(x.size());
    for (const auto& row : x) out.push_back(Predict(row));
    return out;
  }

  /// Confusion matrix on a labeled split.
  metrics::ConfusionMatrix Evaluate(const MlDataset& test) const {
    metrics::ConfusionMatrix cm(test.num_classes);
    for (int64_t i = 0; i < test.size(); ++i) {
      cm.Add(test.y[static_cast<size_t>(i)],
             Predict(test.x[static_cast<size_t>(i)]));
    }
    return cm;
  }
};

}  // namespace ba::ml
