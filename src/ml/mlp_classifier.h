#pragma once

#include <memory>
#include <vector>

#include "ml/model.h"
#include "nn/linear.h"
#include "tensor/optimizer.h"

/// \file mlp_classifier.h
/// \brief Plain MLP over flat features — both the "MLP" baseline of
/// Table II and the "ANN" half of the Lee et al. comparator (Table IV).

namespace ba::ml {

/// \brief Batch-trained feed-forward classifier on flat features.
class MlpClassifier : public MlModel {
 public:
  struct Options {
    std::vector<int64_t> hidden = {64, 32};
    int epochs = 80;
    int batch_size = 32;
    float learning_rate = 1e-3f;
    uint64_t seed = 1;
    std::string name = "MLP";
  };

  MlpClassifier() : MlpClassifier(Options()) {}
  explicit MlpClassifier(Options options) : options_(options) {}

  std::string Name() const override { return options_.name; }
  void Fit(const MlDataset& train) override;
  int Predict(const std::vector<float>& row) const override;

 private:
  Options options_;
  int num_classes_ = 0;
  int64_t dim_ = 0;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace ba::ml
