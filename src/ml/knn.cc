#include "ml/knn.h"

#include <algorithm>
#include <cmath>

namespace ba::ml {

void Knn::Fit(const MlDataset& train) {
  train.Check();
  BA_CHECK_GT(train.size(), 0);
  train_ = train;
}

int Knn::Predict(const std::vector<float>& row) const {
  const int64_t n = train_.size();
  const int k = std::min<int>(k_, static_cast<int>(n));
  std::vector<std::pair<double, int>> dist_label(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const auto& x = train_.x[static_cast<size_t>(i)];
    double d = 0.0;
    for (size_t j = 0; j < row.size(); ++j) {
      const double diff = x[j] - row[j];
      d += diff * diff;
    }
    dist_label[static_cast<size_t>(i)] = {d, train_.y[static_cast<size_t>(i)]};
  }
  std::partial_sort(dist_label.begin(), dist_label.begin() + k,
                    dist_label.end());
  // Distance-weighted vote (1 / (eps + d)).
  std::vector<double> votes(static_cast<size_t>(train_.num_classes), 0.0);
  for (int i = 0; i < k; ++i) {
    votes[static_cast<size_t>(dist_label[static_cast<size_t>(i)].second)] +=
        1.0 / (1e-9 + std::sqrt(dist_label[static_cast<size_t>(i)].first));
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

}  // namespace ba::ml
