#pragma once

#include <vector>

#include "ml/kmeans.h"
#include "ml/model.h"

/// \file bitscope.h
/// \brief BitScope comparator [84] (Table IV): multi-resolution
/// clustering for bitcoin address de-anonymization.
///
/// The original is closed-source; per its description ("a layered
/// approach exploiting domain-specific structures … multi-resolution
/// clustering"), this reconstruction clusters hand features at several
/// granularities, labels each cluster by the majority class of its
/// training members, and predicts by resolution-weighted cluster
/// voting. It is deliberately a clustering pipeline, not an end-to-end
/// learner — the class of method the paper outperforms.

namespace ba::ml {

/// \brief Multi-resolution cluster-vote classifier.
class BitScope : public MlModel {
 public:
  struct Options {
    /// Cluster counts per resolution layer (coarse → fine).
    std::vector<int> resolutions = {8, 24, 64};
    int max_iters = 40;
    uint64_t seed = 1;
  };

  BitScope() : BitScope(Options()) {}
  explicit BitScope(Options options) : options_(options) {}

  std::string Name() const override { return "BitScope"; }
  void Fit(const MlDataset& train) override;
  int Predict(const std::vector<float>& row) const override;

 private:
  struct Layer {
    KMeans clusters;
    /// Per-cluster class-vote distribution from the training split.
    std::vector<std::vector<double>> cluster_votes;
  };

  Options options_;
  int num_classes_ = 0;
  std::vector<Layer> layers_;
};

}  // namespace ba::ml
