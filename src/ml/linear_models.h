#pragma once

#include <vector>

#include "ml/model.h"
#include "util/rng.h"

/// \file linear_models.h
/// \brief Linear baselines of Table II: multinomial logistic regression
/// and a one-vs-rest linear SVM trained with hinge-loss SGD.

namespace ba::ml {

/// \brief Multinomial (softmax) logistic regression, full-batch
/// gradient descent with L2 regularization.
class LogisticRegression : public MlModel {
 public:
  struct Options {
    int epochs = 200;
    float learning_rate = 0.1f;
    float l2 = 1e-4f;
    uint64_t seed = 1;
  };

  LogisticRegression() : LogisticRegression(Options()) {}
  explicit LogisticRegression(Options options) : options_(options) {}

  std::string Name() const override { return "LR"; }
  void Fit(const MlDataset& train) override;
  int Predict(const std::vector<float>& row) const override;

  /// Class probabilities for one row (softmax).
  std::vector<double> PredictProba(const std::vector<float>& row) const;

 private:
  Options options_;
  int num_classes_ = 0;
  int64_t dim_ = 0;
  std::vector<float> weights_;  // (classes x dim), row-major
  std::vector<float> bias_;     // (classes)
};

/// \brief One-vs-rest linear SVM: hinge loss + L2, SGD with epoch decay.
class LinearSvm : public MlModel {
 public:
  struct Options {
    int epochs = 60;
    float learning_rate = 0.01f;
    float l2 = 1e-4f;
    uint64_t seed = 1;
  };

  LinearSvm() : LinearSvm(Options()) {}
  explicit LinearSvm(Options options) : options_(options) {}

  std::string Name() const override { return "SVM"; }
  void Fit(const MlDataset& train) override;
  int Predict(const std::vector<float>& row) const override;

  /// Raw margin of one binary classifier.
  double Margin(int cls, const std::vector<float>& row) const;

 private:
  Options options_;
  int num_classes_ = 0;
  int64_t dim_ = 0;
  std::vector<float> weights_;  // (classes x dim)
  std::vector<float> bias_;
};

}  // namespace ba::ml
