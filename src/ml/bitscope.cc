#include "ml/bitscope.h"

#include <algorithm>

namespace ba::ml {

void BitScope::Fit(const MlDataset& train) {
  train.Check();
  num_classes_ = train.num_classes;
  layers_.clear();
  uint64_t seed = options_.seed;
  for (int k : options_.resolutions) {
    Layer layer{KMeans(KMeans::Options{k, options_.max_iters, seed++}), {}};
    layer.clusters.Fit(train.x);
    layer.cluster_votes.assign(
        static_cast<size_t>(layer.clusters.k()),
        std::vector<double>(static_cast<size_t>(num_classes_), 0.0));
    for (int64_t i = 0; i < train.size(); ++i) {
      const int c = layer.clusters.Assign(train.x[static_cast<size_t>(i)]);
      layer.cluster_votes[static_cast<size_t>(c)][static_cast<size_t>(
          train.y[static_cast<size_t>(i)])] += 1.0;
    }
    // Normalize to per-cluster class distributions (uniform when the
    // cluster received no training members).
    for (auto& votes : layer.cluster_votes) {
      double total = 0.0;
      for (double v : votes) total += v;
      if (total <= 0.0) {
        std::fill(votes.begin(), votes.end(),
                  1.0 / static_cast<double>(num_classes_));
      } else {
        for (double& v : votes) v /= total;
      }
    }
    layers_.push_back(std::move(layer));
  }
}

int BitScope::Predict(const std::vector<float>& row) const {
  std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
  // Finer resolutions carry more weight.
  double weight = 1.0;
  for (const auto& layer : layers_) {
    const int c = layer.clusters.Assign(row);
    const auto& dist = layer.cluster_votes[static_cast<size_t>(c)];
    for (int y = 0; y < num_classes_; ++y) {
      votes[static_cast<size_t>(y)] += weight * dist[static_cast<size_t>(y)];
    }
    weight *= 1.5;
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

}  // namespace ba::ml
