#include "ml/boosting.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ba::ml {

namespace {

/// Row-wise softmax of an (n x k) score matrix.
void SoftmaxRows(std::vector<std::vector<double>>* scores) {
  for (auto& row : *scores) {
    const double max_s = *std::max_element(row.begin(), row.end());
    double total = 0.0;
    for (auto& s : row) {
      s = std::exp(s - max_s);
      total += s;
    }
    for (auto& s : row) s /= total;
  }
}

}  // namespace

void Gbdt::Fit(const MlDataset& train) {
  train.Check();
  num_classes_ = train.num_classes;
  rounds_.clear();
  const int64_t n = train.size();
  std::vector<int64_t> all(static_cast<size_t>(n));
  std::iota(all.begin(), all.end(), 0);

  std::vector<std::vector<double>> scores(
      static_cast<size_t>(n),
      std::vector<double>(static_cast<size_t>(num_classes_), 0.0));
  std::vector<double> targets(static_cast<size_t>(n));

  for (int round = 0; round < options_.num_rounds; ++round) {
    auto probs = scores;
    SoftmaxRows(&probs);
    std::vector<RegressionTree> round_trees;
    round_trees.reserve(static_cast<size_t>(num_classes_));
    for (int c = 0; c < num_classes_; ++c) {
      for (int64_t i = 0; i < n; ++i) {
        const double y =
            train.y[static_cast<size_t>(i)] == c ? 1.0 : 0.0;
        // Negative gradient of softmax cross-entropy.
        targets[static_cast<size_t>(i)] =
            y - probs[static_cast<size_t>(i)][static_cast<size_t>(c)];
      }
      RegressionTree::Options topt;
      topt.max_depth = options_.max_depth;
      topt.min_samples_leaf = options_.min_samples_leaf;
      RegressionTree tree(topt);
      tree.FitFirstOrder(train.x, targets, all);
      for (int64_t i = 0; i < n; ++i) {
        scores[static_cast<size_t>(i)][static_cast<size_t>(c)] +=
            options_.learning_rate *
            tree.Predict(train.x[static_cast<size_t>(i)]);
      }
      round_trees.push_back(std::move(tree));
    }
    rounds_.push_back(std::move(round_trees));
  }
}

std::vector<double> Gbdt::Scores(const std::vector<float>& row) const {
  std::vector<double> scores(static_cast<size_t>(num_classes_), 0.0);
  for (const auto& round : rounds_) {
    for (int c = 0; c < num_classes_; ++c) {
      scores[static_cast<size_t>(c)] +=
          options_.learning_rate * round[static_cast<size_t>(c)].Predict(row);
    }
  }
  return scores;
}

int Gbdt::Predict(const std::vector<float>& row) const {
  const auto scores = Scores(row);
  return static_cast<int>(std::max_element(scores.begin(), scores.end()) -
                          scores.begin());
}

void XgBoost::Fit(const MlDataset& train) {
  train.Check();
  num_classes_ = train.num_classes;
  rounds_.clear();
  const int64_t n = train.size();
  std::vector<int64_t> all(static_cast<size_t>(n));
  std::iota(all.begin(), all.end(), 0);

  std::vector<std::vector<double>> scores(
      static_cast<size_t>(n),
      std::vector<double>(static_cast<size_t>(num_classes_), 0.0));
  std::vector<double> grad(static_cast<size_t>(n));
  std::vector<double> hess(static_cast<size_t>(n));

  for (int round = 0; round < options_.num_rounds; ++round) {
    auto probs = scores;
    SoftmaxRows(&probs);
    std::vector<RegressionTree> round_trees;
    round_trees.reserve(static_cast<size_t>(num_classes_));
    for (int c = 0; c < num_classes_; ++c) {
      for (int64_t i = 0; i < n; ++i) {
        const double p =
            probs[static_cast<size_t>(i)][static_cast<size_t>(c)];
        const double y =
            train.y[static_cast<size_t>(i)] == c ? 1.0 : 0.0;
        grad[static_cast<size_t>(i)] = p - y;
        hess[static_cast<size_t>(i)] = std::max(p * (1.0 - p), 1e-6);
      }
      RegressionTree::Options topt;
      topt.max_depth = options_.max_depth;
      topt.min_samples_leaf = options_.min_samples_leaf;
      topt.lambda = options_.lambda;
      topt.min_gain = options_.min_gain;
      RegressionTree tree(topt);
      tree.FitSecondOrder(train.x, grad, hess, all);
      for (int64_t i = 0; i < n; ++i) {
        scores[static_cast<size_t>(i)][static_cast<size_t>(c)] +=
            options_.learning_rate *
            tree.Predict(train.x[static_cast<size_t>(i)]);
      }
      round_trees.push_back(std::move(tree));
    }
    rounds_.push_back(std::move(round_trees));
  }
}

std::vector<double> XgBoost::Scores(const std::vector<float>& row) const {
  std::vector<double> scores(static_cast<size_t>(num_classes_), 0.0);
  for (const auto& round : rounds_) {
    for (int c = 0; c < num_classes_; ++c) {
      scores[static_cast<size_t>(c)] +=
          options_.learning_rate * round[static_cast<size_t>(c)].Predict(row);
    }
  }
  return scores;
}

int XgBoost::Predict(const std::vector<float>& row) const {
  const auto scores = Scores(row);
  return static_cast<int>(std::max_element(scores.begin(), scores.end()) -
                          scores.begin());
}

}  // namespace ba::ml
