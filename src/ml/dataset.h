#pragma once

#include <cstdint>
#include <vector>

#include "util/logging.h"

/// \file dataset.h
/// \brief Flat-feature dataset handling for the classical ML baselines
/// of Table II and the Table IV comparators.

namespace ba::ml {

/// \brief A dense feature matrix with integer class labels.
struct MlDataset {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  int num_classes = 0;

  int64_t size() const { return static_cast<int64_t>(x.size()); }
  int64_t num_features() const {
    return x.empty() ? 0 : static_cast<int64_t>(x[0].size());
  }

  void Check() const {
    BA_CHECK_EQ(x.size(), y.size());
    for (const auto& row : x) {
      BA_CHECK_EQ(row.size(), x[0].size());
    }
    for (int label : y) {
      BA_CHECK_GE(label, 0);
      BA_CHECK_LT(label, num_classes);
    }
  }
};

/// \brief Per-feature standardization (zero mean, unit variance), fit
/// on the training split only.
class StandardScaler {
 public:
  /// Computes feature means and standard deviations.
  void Fit(const std::vector<std::vector<float>>& x);

  /// Standardizes rows in place. Requires Fit first.
  void Transform(std::vector<std::vector<float>>* x) const;

  std::vector<float> TransformRow(const std::vector<float>& row) const;

  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& stddev() const { return stddev_; }

 private:
  std::vector<float> mean_;
  std::vector<float> stddev_;
};

}  // namespace ba::ml
