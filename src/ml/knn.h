#pragma once

#include <vector>

#include "ml/model.h"

/// \file knn.h
/// \brief k-nearest-neighbors baseline (Table II): brute-force
/// Euclidean search with majority vote, distance-weighted ties.

namespace ba::ml {

/// \brief KNN classifier on standardized features.
class Knn : public MlModel {
 public:
  explicit Knn(int k = 5) : k_(k) {}

  std::string Name() const override { return "KNN"; }
  void Fit(const MlDataset& train) override;
  int Predict(const std::vector<float>& row) const override;

 private:
  int k_;
  MlDataset train_;
};

}  // namespace ba::ml
