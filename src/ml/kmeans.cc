#include "ml/kmeans.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace ba::ml {

double KMeans::Distance2(const std::vector<float>& a,
                         const std::vector<float>& b) {
  double d = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    const double diff = a[j] - b[j];
    d += diff * diff;
  }
  return d;
}

void KMeans::Fit(const std::vector<std::vector<float>>& x) {
  BA_CHECK(!x.empty());
  const int k = std::min<int>(options_.k, static_cast<int>(x.size()));
  Rng rng(options_.seed);

  // k-means++ seeding.
  centroids_.clear();
  centroids_.push_back(x[rng.UniformInt(x.size())]);
  std::vector<double> min_dist(x.size(),
                               std::numeric_limits<double>::infinity());
  while (static_cast<int>(centroids_.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      min_dist[i] =
          std::min(min_dist[i], Distance2(x[i], centroids_.back()));
      total += min_dist[i];
    }
    if (total <= 0.0) break;  // all points coincide with centroids
    double u = rng.Uniform() * total;
    size_t pick = x.size() - 1;
    for (size_t i = 0; i < x.size(); ++i) {
      u -= min_dist[i];
      if (u <= 0.0) {
        pick = i;
        break;
      }
    }
    centroids_.push_back(x[pick]);
  }

  // Lloyd iterations.
  std::vector<int> assignment(x.size(), -1);
  for (int iter = 0; iter < options_.max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < x.size(); ++i) {
      const int a = Assign(x[i]);
      if (a != assignment[i]) {
        assignment[i] = a;
        changed = true;
      }
    }
    if (!changed) break;
    // Recompute centroids; empty clusters keep their position.
    std::vector<std::vector<double>> sums(
        centroids_.size(), std::vector<double>(x[0].size(), 0.0));
    std::vector<int64_t> counts(centroids_.size(), 0);
    for (size_t i = 0; i < x.size(); ++i) {
      const size_t a = static_cast<size_t>(assignment[i]);
      ++counts[a];
      for (size_t j = 0; j < x[i].size(); ++j) sums[a][j] += x[i][j];
    }
    for (size_t c = 0; c < centroids_.size(); ++c) {
      if (counts[c] == 0) continue;
      for (size_t j = 0; j < centroids_[c].size(); ++j) {
        centroids_[c][j] =
            static_cast<float>(sums[c][j] / static_cast<double>(counts[c]));
      }
    }
  }
}

int KMeans::Assign(const std::vector<float>& row) const {
  BA_CHECK(!centroids_.empty());
  int best = 0;
  double best_d = Distance2(row, centroids_[0]);
  for (size_t c = 1; c < centroids_.size(); ++c) {
    const double d = Distance2(row, centroids_[c]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace ba::ml
