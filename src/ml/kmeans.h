#pragma once

#include <vector>

#include "util/rng.h"

/// \file kmeans.h
/// \brief Lloyd's k-means with k-means++ seeding — the clustering core
/// of the BitScope comparator.

namespace ba::ml {

/// \brief K-means clustering over dense float rows.
class KMeans {
 public:
  struct Options {
    int k = 8;
    int max_iters = 50;
    uint64_t seed = 1;
  };

  KMeans() : KMeans(Options()) {}
  explicit KMeans(Options options) : options_(options) {}

  /// Runs k-means++ init then Lloyd iterations until assignment
  /// convergence or max_iters.
  void Fit(const std::vector<std::vector<float>>& x);

  /// Index of the nearest centroid.
  int Assign(const std::vector<float>& row) const;

  const std::vector<std::vector<float>>& centroids() const {
    return centroids_;
  }

  int k() const { return options_.k; }

 private:
  static double Distance2(const std::vector<float>& a,
                          const std::vector<float>& b);

  Options options_;
  std::vector<std::vector<float>> centroids_;
};

}  // namespace ba::ml
