#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ba::ml {

namespace {

/// Gini impurity of a class-count histogram with `total` samples.
double Gini(const std::vector<int64_t>& counts, int64_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (int64_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

void DecisionTree::Fit(const MlDataset& train) {
  std::vector<int64_t> indices(static_cast<size_t>(train.size()));
  std::iota(indices.begin(), indices.end(), 0);
  FitIndices(train, indices);
}

void DecisionTree::FitIndices(const MlDataset& train,
                              const std::vector<int64_t>& indices) {
  train.Check();
  BA_CHECK(!indices.empty());
  num_classes_ = train.num_classes;
  nodes_.clear();
  Rng rng(options_.seed);
  std::vector<int64_t> work = indices;
  BuildNode(train, &work, 0, static_cast<int64_t>(work.size()), 0, &rng);
}

int DecisionTree::BuildNode(const MlDataset& train,
                            std::vector<int64_t>* indices, int64_t begin,
                            int64_t end, int depth, Rng* rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  // Class histogram of this node.
  std::vector<int64_t> counts(static_cast<size_t>(num_classes_), 0);
  for (int64_t i = begin; i < end; ++i) {
    ++counts[static_cast<size_t>(
        train.y[static_cast<size_t>((*indices)[static_cast<size_t>(i)])])];
  }
  const int64_t total = end - begin;
  {
    Node& node = nodes_[static_cast<size_t>(node_id)];
    node.label = static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    node.distribution.resize(static_cast<size_t>(num_classes_));
    for (int c = 0; c < num_classes_; ++c) {
      node.distribution[static_cast<size_t>(c)] =
          static_cast<double>(counts[static_cast<size_t>(c)]) /
          static_cast<double>(total);
    }
  }

  const bool pure =
      *std::max_element(counts.begin(), counts.end()) == total;
  if (pure || depth >= options_.max_depth ||
      total < options_.min_samples_split) {
    return node_id;
  }

  // Candidate features (random subset if max_features is set).
  const int64_t dim = train.num_features();
  std::vector<int64_t> features(static_cast<size_t>(dim));
  std::iota(features.begin(), features.end(), 0);
  int64_t feature_budget = dim;
  if (options_.max_features > 0 && options_.max_features < dim) {
    rng->Shuffle(&features);
    feature_budget = options_.max_features;
  }

  // Exact greedy split search.
  double best_impurity = 1e300;
  int best_feature = -1;
  float best_threshold = 0.0f;
  const double parent_gini = Gini(counts, total);
  std::vector<std::pair<float, int>> sorted_vals(
      static_cast<size_t>(total));
  std::vector<int64_t> left_counts(static_cast<size_t>(num_classes_));

  for (int64_t fi = 0; fi < feature_budget; ++fi) {
    const int64_t f = features[static_cast<size_t>(fi)];
    for (int64_t i = begin; i < end; ++i) {
      const int64_t row = (*indices)[static_cast<size_t>(i)];
      sorted_vals[static_cast<size_t>(i - begin)] = {
          train.x[static_cast<size_t>(row)][static_cast<size_t>(f)],
          train.y[static_cast<size_t>(row)]};
    }
    std::sort(sorted_vals.begin(), sorted_vals.end());
    std::fill(left_counts.begin(), left_counts.end(), 0);
    for (int64_t i = 0; i + 1 < total; ++i) {
      ++left_counts[static_cast<size_t>(sorted_vals[static_cast<size_t>(i)]
                                            .second)];
      if (sorted_vals[static_cast<size_t>(i)].first ==
          sorted_vals[static_cast<size_t>(i + 1)].first) {
        continue;  // cannot split between equal values
      }
      const int64_t n_left = i + 1;
      const int64_t n_right = total - n_left;
      if (n_left < options_.min_samples_leaf ||
          n_right < options_.min_samples_leaf) {
        continue;
      }
      std::vector<int64_t> right_counts(counts);
      for (int c = 0; c < num_classes_; ++c) {
        right_counts[static_cast<size_t>(c)] -=
            left_counts[static_cast<size_t>(c)];
      }
      const double impurity =
          (static_cast<double>(n_left) * Gini(left_counts, n_left) +
           static_cast<double>(n_right) * Gini(right_counts, n_right)) /
          static_cast<double>(total);
      if (impurity < best_impurity) {
        best_impurity = impurity;
        best_feature = static_cast<int>(f);
        best_threshold =
            (sorted_vals[static_cast<size_t>(i)].first +
             sorted_vals[static_cast<size_t>(i + 1)].first) /
            2.0f;
      }
    }
  }

  if (best_feature < 0 || best_impurity >= parent_gini - 1e-12) {
    return node_id;  // no useful split
  }

  // Partition indices in place.
  const auto mid_it = std::partition(
      indices->begin() + begin, indices->begin() + end, [&](int64_t row) {
        return train.x[static_cast<size_t>(row)]
                   [static_cast<size_t>(best_feature)] <= best_threshold;
      });
  const int64_t mid = mid_it - indices->begin();
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  const int left = BuildNode(train, indices, begin, mid, depth + 1, rng);
  const int right = BuildNode(train, indices, mid, end, depth + 1, rng);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

int DecisionTree::LeafIndex(const std::vector<float>& row) const {
  BA_CHECK(!nodes_.empty());
  int i = 0;
  while (nodes_[static_cast<size_t>(i)].feature >= 0) {
    const Node& node = nodes_[static_cast<size_t>(i)];
    i = row[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                                 : node.right;
  }
  return i;
}

int DecisionTree::Predict(const std::vector<float>& row) const {
  return nodes_[static_cast<size_t>(LeafIndex(row))].label;
}

const std::vector<double>& DecisionTree::PredictDistribution(
    const std::vector<float>& row) const {
  return nodes_[static_cast<size_t>(LeafIndex(row))].distribution;
}

void RegressionTree::FitFirstOrder(const std::vector<std::vector<float>>& x,
                                   const std::vector<double>& targets,
                                   const std::vector<int64_t>& indices) {
  BA_CHECK(!indices.empty());
  nodes_.clear();
  std::vector<int64_t> work = indices;
  BuildFirst(x, targets, &work, 0, static_cast<int64_t>(work.size()), 0);
}

int RegressionTree::BuildFirst(const std::vector<std::vector<float>>& x,
                               const std::vector<double>& targets,
                               std::vector<int64_t>* indices, int64_t begin,
                               int64_t end, int depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  const int64_t total = end - begin;

  double sum = 0.0;
  for (int64_t i = begin; i < end; ++i) {
    sum += targets[static_cast<size_t>((*indices)[static_cast<size_t>(i)])];
  }
  nodes_[static_cast<size_t>(node_id)].value =
      sum / static_cast<double>(total);

  if (depth >= options_.max_depth ||
      total < 2 * options_.min_samples_leaf) {
    return node_id;
  }

  // Variance-reduction split: maximize sum_l²/n_l + sum_r²/n_r.
  const int64_t dim = static_cast<int64_t>(x[0].size());
  double best_score = -1e300;
  int best_feature = -1;
  float best_threshold = 0.0f;
  std::vector<std::pair<float, double>> sorted_vals(
      static_cast<size_t>(total));
  for (int64_t f = 0; f < dim; ++f) {
    for (int64_t i = begin; i < end; ++i) {
      const int64_t row = (*indices)[static_cast<size_t>(i)];
      sorted_vals[static_cast<size_t>(i - begin)] = {
          x[static_cast<size_t>(row)][static_cast<size_t>(f)],
          targets[static_cast<size_t>(row)]};
    }
    std::sort(sorted_vals.begin(), sorted_vals.end());
    double left_sum = 0.0;
    for (int64_t i = 0; i + 1 < total; ++i) {
      left_sum += sorted_vals[static_cast<size_t>(i)].second;
      if (sorted_vals[static_cast<size_t>(i)].first ==
          sorted_vals[static_cast<size_t>(i + 1)].first) {
        continue;
      }
      const int64_t n_left = i + 1;
      const int64_t n_right = total - n_left;
      if (n_left < options_.min_samples_leaf ||
          n_right < options_.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double score =
          left_sum * left_sum / static_cast<double>(n_left) +
          right_sum * right_sum / static_cast<double>(n_right);
      if (score > best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = (sorted_vals[static_cast<size_t>(i)].first +
                          sorted_vals[static_cast<size_t>(i + 1)].first) /
                         2.0f;
      }
    }
  }
  const double parent_score = sum * sum / static_cast<double>(total);
  if (best_feature < 0 || best_score <= parent_score + 1e-12) {
    return node_id;
  }

  const auto mid_it = std::partition(
      indices->begin() + begin, indices->begin() + end, [&](int64_t row) {
        return x[static_cast<size_t>(row)][static_cast<size_t>(best_feature)] <=
               best_threshold;
      });
  const int64_t mid = mid_it - indices->begin();
  if (mid == begin || mid == end) return node_id;

  const int left = BuildFirst(x, targets, indices, begin, mid, depth + 1);
  const int right = BuildFirst(x, targets, indices, mid, end, depth + 1);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

void RegressionTree::FitSecondOrder(const std::vector<std::vector<float>>& x,
                                    const std::vector<double>& grad,
                                    const std::vector<double>& hess,
                                    const std::vector<int64_t>& indices) {
  BA_CHECK(!indices.empty());
  nodes_.clear();
  std::vector<int64_t> work = indices;
  BuildSecond(x, grad, hess, &work, 0, static_cast<int64_t>(work.size()), 0);
}

int RegressionTree::BuildSecond(const std::vector<std::vector<float>>& x,
                                const std::vector<double>& grad,
                                const std::vector<double>& hess,
                                std::vector<int64_t>* indices, int64_t begin,
                                int64_t end, int depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  const int64_t total = end - begin;

  double g_sum = 0.0, h_sum = 0.0;
  for (int64_t i = begin; i < end; ++i) {
    const int64_t row = (*indices)[static_cast<size_t>(i)];
    g_sum += grad[static_cast<size_t>(row)];
    h_sum += hess[static_cast<size_t>(row)];
  }
  nodes_[static_cast<size_t>(node_id)].value =
      -g_sum / (h_sum + options_.lambda);

  if (depth >= options_.max_depth ||
      total < 2 * options_.min_samples_leaf) {
    return node_id;
  }

  const double parent_obj = g_sum * g_sum / (h_sum + options_.lambda);
  const int64_t dim = static_cast<int64_t>(x[0].size());
  double best_gain = options_.min_gain;
  int best_feature = -1;
  float best_threshold = 0.0f;
  struct Entry {
    float value;
    double g;
    double h;
    bool operator<(const Entry& o) const { return value < o.value; }
  };
  std::vector<Entry> sorted_vals(static_cast<size_t>(total));
  for (int64_t f = 0; f < dim; ++f) {
    for (int64_t i = begin; i < end; ++i) {
      const int64_t row = (*indices)[static_cast<size_t>(i)];
      sorted_vals[static_cast<size_t>(i - begin)] = {
          x[static_cast<size_t>(row)][static_cast<size_t>(f)],
          grad[static_cast<size_t>(row)], hess[static_cast<size_t>(row)]};
    }
    std::sort(sorted_vals.begin(), sorted_vals.end());
    double gl = 0.0, hl = 0.0;
    for (int64_t i = 0; i + 1 < total; ++i) {
      gl += sorted_vals[static_cast<size_t>(i)].g;
      hl += sorted_vals[static_cast<size_t>(i)].h;
      if (sorted_vals[static_cast<size_t>(i)].value ==
          sorted_vals[static_cast<size_t>(i + 1)].value) {
        continue;
      }
      const int64_t n_left = i + 1;
      const int64_t n_right = total - n_left;
      if (n_left < options_.min_samples_leaf ||
          n_right < options_.min_samples_leaf) {
        continue;
      }
      const double gr = g_sum - gl;
      const double hr = h_sum - hl;
      const double gain = gl * gl / (hl + options_.lambda) +
                          gr * gr / (hr + options_.lambda) - parent_obj;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (sorted_vals[static_cast<size_t>(i)].value +
                          sorted_vals[static_cast<size_t>(i + 1)].value) /
                         2.0f;
      }
    }
  }
  if (best_feature < 0) return node_id;

  const auto mid_it = std::partition(
      indices->begin() + begin, indices->begin() + end, [&](int64_t row) {
        return x[static_cast<size_t>(row)][static_cast<size_t>(best_feature)] <=
               best_threshold;
      });
  const int64_t mid = mid_it - indices->begin();
  if (mid == begin || mid == end) return node_id;

  const int left = BuildSecond(x, grad, hess, indices, begin, mid, depth + 1);
  const int right = BuildSecond(x, grad, hess, indices, mid, end, depth + 1);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double RegressionTree::Predict(const std::vector<float>& row) const {
  BA_CHECK(!nodes_.empty());
  int i = 0;
  while (nodes_[static_cast<size_t>(i)].feature >= 0) {
    const Node& node = nodes_[static_cast<size_t>(i)];
    i = row[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                                 : node.right;
  }
  return nodes_[static_cast<size_t>(i)].value;
}

}  // namespace ba::ml
