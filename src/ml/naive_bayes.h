#pragma once

#include <vector>

#include "ml/model.h"

/// \file naive_bayes.h
/// \brief Bernoulli and Gaussian naive Bayes — Table II baselines.

namespace ba::ml {

/// \brief Bernoulli NB over features binarized at the per-feature
/// training median (continuous inputs ⇒ median split), with Laplace
/// smoothing.
class BernoulliNb : public MlModel {
 public:
  std::string Name() const override { return "Bernoulli NB"; }
  void Fit(const MlDataset& train) override;
  int Predict(const std::vector<float>& row) const override;

 private:
  int num_classes_ = 0;
  std::vector<float> thresholds_;      // per-feature binarization point
  std::vector<double> log_prior_;      // per class
  std::vector<double> log_p_one_;      // (classes x dim) log P(x_j=1|c)
  std::vector<double> log_p_zero_;     // (classes x dim) log P(x_j=0|c)
  int64_t dim_ = 0;
};

/// \brief Gaussian NB: per-(class, feature) normal likelihoods with
/// variance smoothing.
class GaussianNb : public MlModel {
 public:
  std::string Name() const override { return "Gaussian NB"; }
  void Fit(const MlDataset& train) override;
  int Predict(const std::vector<float>& row) const override;

 private:
  int num_classes_ = 0;
  int64_t dim_ = 0;
  std::vector<double> log_prior_;
  std::vector<double> mean_;  // (classes x dim)
  std::vector<double> var_;   // (classes x dim)
};

}  // namespace ba::ml
