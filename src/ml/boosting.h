#pragma once

#include <vector>

#include "ml/decision_tree.h"

/// \file boosting.h
/// \brief Gradient-boosted trees: classic first-order GBDT [31] and the
/// second-order regularized XGBoost objective [32] — the two strongest
/// classical baselines in Table II.
///
/// Both use a one-tree-per-class multiclass softmax objective: at each
/// round, K regression trees fit the per-class (negative) gradients of
/// the softmax cross-entropy.

namespace ba::ml {

/// \brief Shared boosting configuration.
struct BoostingOptions {
  int num_rounds = 40;
  int max_depth = 3;
  int min_samples_leaf = 2;
  float learning_rate = 0.2f;
  /// L2 on leaf weights (XGBoost mode only).
  double lambda = 1.0;
  /// Minimum split gain γ (XGBoost mode only).
  double min_gain = 0.0;
};

/// \brief Classic GBDT: trees fit negative gradients, leaf values are
/// mean residuals scaled by the learning rate.
class Gbdt : public MlModel {
 public:
  explicit Gbdt(BoostingOptions options = {}) : options_(options) {}

  std::string Name() const override { return "GBDT"; }
  void Fit(const MlDataset& train) override;
  int Predict(const std::vector<float>& row) const override;

  /// Per-class raw scores (pre-softmax) for one row.
  std::vector<double> Scores(const std::vector<float>& row) const;

 private:
  BoostingOptions options_;
  int num_classes_ = 0;
  std::vector<std::vector<RegressionTree>> rounds_;  // [round][class]
};

/// \brief XGBoost-style boosting: second-order leaf weights -G/(H+λ)
/// and gain-based splits.
class XgBoost : public MlModel {
 public:
  explicit XgBoost(BoostingOptions options = {}) : options_(options) {}

  std::string Name() const override { return "XGBoost"; }
  void Fit(const MlDataset& train) override;
  int Predict(const std::vector<float>& row) const override;

  std::vector<double> Scores(const std::vector<float>& row) const;

 private:
  BoostingOptions options_;
  int num_classes_ = 0;
  std::vector<std::vector<RegressionTree>> rounds_;
};

}  // namespace ba::ml
