#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

namespace ba::ml {

void RandomForest::Fit(const MlDataset& train) {
  train.Check();
  num_classes_ = train.num_classes;
  trees_.clear();
  trees_.reserve(static_cast<size_t>(options_.num_trees));
  Rng rng(options_.seed);
  const int64_t n = train.size();
  const int max_features =
      options_.max_features > 0
          ? options_.max_features
          : std::max<int>(1, static_cast<int>(std::sqrt(
                                 static_cast<double>(train.num_features()))));

  for (int t = 0; t < options_.num_trees; ++t) {
    std::vector<int64_t> bootstrap(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      bootstrap[static_cast<size_t>(i)] =
          static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
    }
    DecisionTree::Options topt;
    topt.max_depth = options_.max_depth;
    topt.min_samples_leaf = options_.min_samples_leaf;
    topt.min_samples_split = 2 * options_.min_samples_leaf;
    topt.max_features = max_features;
    topt.seed = rng.Next();
    DecisionTree tree(topt);
    tree.FitIndices(train, bootstrap);
    trees_.push_back(std::move(tree));
  }
}

int RandomForest::Predict(const std::vector<float>& row) const {
  std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto& dist = tree.PredictDistribution(row);
    for (int c = 0; c < num_classes_; ++c) {
      votes[static_cast<size_t>(c)] += dist[static_cast<size_t>(c)];
    }
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

}  // namespace ba::ml
