#include "ml/dataset.h"

#include <cmath>

namespace ba::ml {

void StandardScaler::Fit(const std::vector<std::vector<float>>& x) {
  BA_CHECK(!x.empty());
  const size_t dim = x[0].size();
  std::vector<double> sum(dim, 0.0);
  std::vector<double> sq(dim, 0.0);
  for (const auto& row : x) {
    BA_CHECK_EQ(row.size(), dim);
    for (size_t j = 0; j < dim; ++j) {
      sum[j] += row[j];
      sq[j] += static_cast<double>(row[j]) * row[j];
    }
  }
  const double n = static_cast<double>(x.size());
  mean_.resize(dim);
  stddev_.resize(dim);
  for (size_t j = 0; j < dim; ++j) {
    const double m = sum[j] / n;
    const double var = std::max(sq[j] / n - m * m, 1e-12);
    mean_[j] = static_cast<float>(m);
    stddev_[j] = static_cast<float>(std::sqrt(var));
  }
}

void StandardScaler::Transform(std::vector<std::vector<float>>* x) const {
  for (auto& row : *x) row = TransformRow(row);
}

std::vector<float> StandardScaler::TransformRow(
    const std::vector<float>& row) const {
  BA_CHECK_EQ(row.size(), mean_.size());
  std::vector<float> out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / stddev_[j];
  }
  return out;
}

}  // namespace ba::ml
