#include "ml/lee_features.h"

#include <cmath>
#include <unordered_set>

#include "core/sfe.h"
#include "util/logging.h"

namespace ba::ml {

namespace {

constexpr double kSatoshisPerCoin = 100'000'000.0;

/// Eight summary statistics of one facet — the first eight SFE entries,
/// log-compressed for scale stability.
void AppendStats(const std::vector<double>& values,
                 std::vector<float>* out) {
  const auto sfe = core::ComputeCompressedSfe(values);
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<float>(sfe[static_cast<size_t>(i)]));
  }
}

}  // namespace

std::vector<float> LeeFeatures(const chain::Ledger& ledger,
                               chain::AddressId address) {
  const std::vector<chain::TxId> txids = ledger.TransactionsOf(address);

  std::vector<double> received, sent, time_gaps, input_counts, output_counts,
      counterparties, fees, balances, hours, block_gaps;

  double balance = 0.0;
  chain::Timestamp prev_time = 0;
  uint64_t prev_height = 0;
  bool first = true;
  for (chain::TxId id : txids) {
    const chain::Transaction& tx = ledger.tx(id);
    double in_v = 0.0, out_v = 0.0;
    std::unordered_set<chain::AddressId> others;
    for (const auto& in : tx.inputs) {
      if (in.address == address) {
        in_v += static_cast<double>(in.value) / kSatoshisPerCoin;
      } else {
        others.insert(in.address);
      }
    }
    for (const auto& out : tx.outputs) {
      if (out.address == address) {
        out_v += static_cast<double>(out.value) / kSatoshisPerCoin;
      } else {
        others.insert(out.address);
      }
    }
    if (out_v > 0.0) received.push_back(out_v);
    if (in_v > 0.0) sent.push_back(in_v);
    balance += out_v - in_v;
    balances.push_back(balance);
    input_counts.push_back(static_cast<double>(tx.inputs.size()));
    output_counts.push_back(static_cast<double>(tx.outputs.size()));
    counterparties.push_back(static_cast<double>(others.size()));
    fees.push_back(static_cast<double>(tx.Fee()) / kSatoshisPerCoin);
    hours.push_back(
        static_cast<double>((tx.timestamp / 3600) % 24));
    if (!first) {
      time_gaps.push_back(
          static_cast<double>(tx.timestamp - prev_time) / 3600.0);
      block_gaps.push_back(
          static_cast<double>(tx.block_height - prev_height));
    }
    prev_time = tx.timestamp;
    prev_height = tx.block_height;
    first = false;
  }

  std::vector<float> out;
  out.reserve(static_cast<size_t>(kLeeFeatureDim));
  AppendStats(received, &out);
  AppendStats(sent, &out);
  AppendStats(time_gaps, &out);
  AppendStats(input_counts, &out);
  AppendStats(output_counts, &out);
  AppendStats(counterparties, &out);
  AppendStats(fees, &out);
  AppendStats(balances, &out);
  AppendStats(hours, &out);
  AppendStats(block_gaps, &out);
  BA_CHECK_EQ(static_cast<int64_t>(out.size()), kLeeFeatureDim);
  return out;
}

std::vector<std::vector<float>> LeeFeatureMatrix(
    const chain::Ledger& ledger,
    const std::vector<chain::AddressId>& addresses) {
  std::vector<std::vector<float>> out;
  out.reserve(addresses.size());
  for (chain::AddressId a : addresses) {
    out.push_back(LeeFeatures(ledger, a));
  }
  return out;
}

}  // namespace ba::ml
