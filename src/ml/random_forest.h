#pragma once

#include <memory>
#include <vector>

#include "ml/decision_tree.h"

/// \file random_forest.h
/// \brief Bagged random forest — the stronger half of the Lee et al.
/// comparator in Table IV ("Lee et al. with Random Forest").

namespace ba::ml {

/// \brief Random forest: bootstrap bagging + per-split feature
/// subsampling, soft (distribution-averaged) voting.
class RandomForest : public MlModel {
 public:
  struct Options {
    int num_trees = 50;
    int max_depth = 12;
    int min_samples_leaf = 2;
    /// Per-split feature budget; -1 = floor(sqrt(d)).
    int max_features = -1;
    uint64_t seed = 1;
  };

  RandomForest() : RandomForest(Options()) {}
  explicit RandomForest(Options options) : options_(options) {}

  std::string Name() const override { return "Random Forest"; }
  void Fit(const MlDataset& train) override;
  int Predict(const std::vector<float>& row) const override;

 private:
  Options options_;
  int num_classes_ = 0;
  std::vector<DecisionTree> trees_;
};

}  // namespace ba::ml
