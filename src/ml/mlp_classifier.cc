#include "ml/mlp_classifier.h"

#include <algorithm>

namespace ba::ml {

void MlpClassifier::Fit(const MlDataset& train) {
  train.Check();
  num_classes_ = train.num_classes;
  dim_ = train.num_features();
  rng_ = std::make_unique<Rng>(options_.seed);

  std::vector<int64_t> dims;
  dims.push_back(dim_);
  for (int64_t h : options_.hidden) dims.push_back(h);
  dims.push_back(num_classes_);
  mlp_ = std::make_unique<nn::Mlp>(dims, rng_.get());

  tensor::Adam optimizer(mlp_->Parameters(), options_.learning_rate);
  const int64_t n = train.size();
  std::vector<size_t> order(static_cast<size_t>(n));
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_->Shuffle(&order);
    size_t i = 0;
    while (i < order.size()) {
      const size_t batch_end = std::min(
          order.size(), i + static_cast<size_t>(options_.batch_size));
      const int64_t batch = static_cast<int64_t>(batch_end - i);
      tensor::Tensor x({batch, dim_});
      std::vector<int> labels(static_cast<size_t>(batch));
      for (int64_t b = 0; b < batch; ++b) {
        const auto& row = train.x[order[i + static_cast<size_t>(b)]];
        for (int64_t j = 0; j < dim_; ++j) {
          x.at(b, j) = row[static_cast<size_t>(j)];
        }
        labels[static_cast<size_t>(b)] =
            train.y[order[i + static_cast<size_t>(b)]];
      }
      optimizer.ZeroGrad();
      const tensor::Var logits = mlp_->Forward(tensor::Constant(x));
      const tensor::Var loss = tensor::SoftmaxCrossEntropy(logits, labels);
      tensor::Backward(loss);
      optimizer.Step();
      i = batch_end;
    }
  }
}

int MlpClassifier::Predict(const std::vector<float>& row) const {
  BA_CHECK(mlp_ != nullptr);
  tensor::Tensor x({1, dim_});
  for (int64_t j = 0; j < dim_; ++j) x.at(0, j) = row[static_cast<size_t>(j)];
  const tensor::Var logits = mlp_->Forward(tensor::Constant(x));
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (logits->value.at(0, c) > logits->value.at(0, best)) best = c;
  }
  return best;
}

}  // namespace ba::ml
