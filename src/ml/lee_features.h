#pragma once

#include <vector>

#include "chain/ledger.h"

/// \file lee_features.h
/// \brief The Lee et al. [20] comparator's feature engineering
/// (Table IV): 80 hand-crafted transaction-history summary features per
/// address, fed to Random Forest or an ANN.
///
/// Following the paper's description ("extracts 80 features from the
/// bitcoin transactions"), ten history facets are each summarized by
/// eight statistics (count, sum, mean, min, max, range, mid-range, 75th
/// percentile): received amounts, sent amounts, inter-transaction time
/// gaps, input counts, output counts, distinct counterparties per
/// transaction, fees, running balance, hour-of-day, and block gaps.
/// Crucially — and this is the information loss BAClassifier exploits —
/// no topology and no temporal ordering survives the summarization.

namespace ba::ml {

/// Number of Lee et al. features (10 facets x 8 statistics).
inline constexpr int64_t kLeeFeatureDim = 80;

/// \brief Extracts the 80-dimensional summary for one address.
std::vector<float> LeeFeatures(const chain::Ledger& ledger,
                               chain::AddressId address);

/// Extracts features for a list of addresses (rows align with input).
std::vector<std::vector<float>> LeeFeatureMatrix(
    const chain::Ledger& ledger,
    const std::vector<chain::AddressId>& addresses);

}  // namespace ba::ml
