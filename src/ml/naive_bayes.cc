#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

namespace ba::ml {

void BernoulliNb::Fit(const MlDataset& train) {
  train.Check();
  num_classes_ = train.num_classes;
  dim_ = train.num_features();
  const int64_t n = train.size();

  // Per-feature median as the binarization threshold.
  thresholds_.resize(static_cast<size_t>(dim_));
  std::vector<float> column(static_cast<size_t>(n));
  for (int64_t j = 0; j < dim_; ++j) {
    for (int64_t i = 0; i < n; ++i) {
      column[static_cast<size_t>(i)] =
          train.x[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
    std::nth_element(column.begin(), column.begin() + n / 2, column.end());
    thresholds_[static_cast<size_t>(j)] = column[static_cast<size_t>(n / 2)];
  }

  std::vector<int64_t> class_count(static_cast<size_t>(num_classes_), 0);
  std::vector<int64_t> ones(static_cast<size_t>(num_classes_ * dim_), 0);
  for (int64_t i = 0; i < n; ++i) {
    const int c = train.y[static_cast<size_t>(i)];
    ++class_count[static_cast<size_t>(c)];
    for (int64_t j = 0; j < dim_; ++j) {
      if (train.x[static_cast<size_t>(i)][static_cast<size_t>(j)] >
          thresholds_[static_cast<size_t>(j)]) {
        ++ones[static_cast<size_t>(c * dim_ + j)];
      }
    }
  }

  log_prior_.resize(static_cast<size_t>(num_classes_));
  log_p_one_.resize(static_cast<size_t>(num_classes_ * dim_));
  log_p_zero_.resize(static_cast<size_t>(num_classes_ * dim_));
  for (int c = 0; c < num_classes_; ++c) {
    log_prior_[static_cast<size_t>(c)] =
        std::log((static_cast<double>(class_count[static_cast<size_t>(c)]) +
                  1.0) /
                 (static_cast<double>(n) + num_classes_));
    for (int64_t j = 0; j < dim_; ++j) {
      const double p =
          (static_cast<double>(ones[static_cast<size_t>(c * dim_ + j)]) +
           1.0) /
          (static_cast<double>(class_count[static_cast<size_t>(c)]) + 2.0);
      log_p_one_[static_cast<size_t>(c * dim_ + j)] = std::log(p);
      log_p_zero_[static_cast<size_t>(c * dim_ + j)] = std::log(1.0 - p);
    }
  }
}

int BernoulliNb::Predict(const std::vector<float>& row) const {
  int best = 0;
  double best_score = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    double score = log_prior_[static_cast<size_t>(c)];
    for (int64_t j = 0; j < dim_; ++j) {
      const bool one =
          row[static_cast<size_t>(j)] > thresholds_[static_cast<size_t>(j)];
      score += one ? log_p_one_[static_cast<size_t>(c * dim_ + j)]
                   : log_p_zero_[static_cast<size_t>(c * dim_ + j)];
    }
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

void GaussianNb::Fit(const MlDataset& train) {
  train.Check();
  num_classes_ = train.num_classes;
  dim_ = train.num_features();
  const int64_t n = train.size();

  std::vector<int64_t> count(static_cast<size_t>(num_classes_), 0);
  mean_.assign(static_cast<size_t>(num_classes_ * dim_), 0.0);
  var_.assign(static_cast<size_t>(num_classes_ * dim_), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const int c = train.y[static_cast<size_t>(i)];
    ++count[static_cast<size_t>(c)];
    for (int64_t j = 0; j < dim_; ++j) {
      mean_[static_cast<size_t>(c * dim_ + j)] +=
          train.x[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
  }
  for (int c = 0; c < num_classes_; ++c) {
    const double cnt =
        std::max<double>(1.0, static_cast<double>(count[static_cast<size_t>(c)]));
    for (int64_t j = 0; j < dim_; ++j) {
      mean_[static_cast<size_t>(c * dim_ + j)] /= cnt;
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    const int c = train.y[static_cast<size_t>(i)];
    for (int64_t j = 0; j < dim_; ++j) {
      const double d =
          train.x[static_cast<size_t>(i)][static_cast<size_t>(j)] -
          mean_[static_cast<size_t>(c * dim_ + j)];
      var_[static_cast<size_t>(c * dim_ + j)] += d * d;
    }
  }
  log_prior_.resize(static_cast<size_t>(num_classes_));
  for (int c = 0; c < num_classes_; ++c) {
    const double cnt =
        std::max<double>(1.0, static_cast<double>(count[static_cast<size_t>(c)]));
    log_prior_[static_cast<size_t>(c)] = std::log(
        (static_cast<double>(count[static_cast<size_t>(c)]) + 1.0) /
        (static_cast<double>(n) + num_classes_));
    for (int64_t j = 0; j < dim_; ++j) {
      var_[static_cast<size_t>(c * dim_ + j)] =
          var_[static_cast<size_t>(c * dim_ + j)] / cnt + 1e-6;
    }
  }
}

int GaussianNb::Predict(const std::vector<float>& row) const {
  int best = 0;
  double best_score = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    double score = log_prior_[static_cast<size_t>(c)];
    for (int64_t j = 0; j < dim_; ++j) {
      const double v = var_[static_cast<size_t>(c * dim_ + j)];
      const double d =
          row[static_cast<size_t>(j)] - mean_[static_cast<size_t>(c * dim_ + j)];
      score += -0.5 * (std::log(2.0 * M_PI * v) + d * d / v);
    }
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

}  // namespace ba::ml
