#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

/// \file rng.h
/// \brief Deterministic, seedable pseudo-random number generation.
///
/// Every stochastic component in this project takes an explicit seed so
/// experiments are exactly reproducible. The generator is
/// xoshiro256** seeded through splitmix64, which has good statistical
/// quality and is much faster than std::mt19937_64.

namespace ba {

/// \brief Complete serializable state of an Rng — everything needed to
/// continue a stream bit-exactly (checkpoint/resume). The Zipf CDF
/// cache is excluded: it is a pure function of the next (n, s) request
/// and rebuilds identically after a restore.
struct RngState {
  uint64_t s[4] = {};
  bool gaussian_cached = false;
  double gaussian_cache = 0.0;
};

/// \brief xoshiro256** PRNG with convenience sampling helpers.
class Rng {
 public:
  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the full 256-bit state via splitmix64 expansion.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
    gaussian_cached_ = false;
  }

  /// Next raw 64-bit output.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    BA_CHECK_GT(n, 0u);
    // Lemire's nearly-divisionless bounded sampling.
    __uint128_t m = static_cast<__uint128_t>(Next()) * n;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < n) {
      uint64_t threshold = (~n + 1) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    BA_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box-Muller (cached pair).
  double Gaussian() {
    if (gaussian_cached_) {
      gaussian_cached_ = false;
      return gaussian_cache_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    gaussian_cache_ = r * std::sin(theta);
    gaussian_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Log-normal draw: exp(N(mu, sigma)). Heavy-tailed, always positive —
  /// the natural model for transaction amounts.
  double LogNormal(double mu, double sigma) {
    return std::exp(Gaussian(mu, sigma));
  }

  /// Exponential with rate lambda (mean 1/lambda).
  double Exponential(double lambda) {
    BA_CHECK_GT(lambda, 0.0);
    double u = 0.0;
    while (u <= 1e-300) u = Uniform();
    return -std::log(u) / lambda;
  }

  /// Poisson draw (Knuth for small mean, normal approximation for large).
  int64_t Poisson(double mean) {
    BA_CHECK_GE(mean, 0.0);
    if (mean <= 0.0) return 0;
    if (mean > 60.0) {
      const double v = Gaussian(mean, std::sqrt(mean));
      return v < 0 ? 0 : static_cast<int64_t>(std::llround(v));
    }
    const double limit = std::exp(-mean);
    double prod = Uniform();
    int64_t n = 0;
    while (prod > limit) {
      prod *= Uniform();
      ++n;
    }
    return n;
  }

  /// Zipf-like draw over [0, n): pmf(k) proportional to 1/(k+1)^s.
  /// Used for heavy-tailed counterparty popularity.
  uint64_t Zipf(uint64_t n, double s) {
    BA_CHECK_GT(n, 0u);
    // Rejection-inversion (Hörmann) would be faster; for bench sizes a
    // simple inverse-CDF over a cached table is adequate and exact.
    if (zipf_table_n_ != n || zipf_table_s_ != s) {
      zipf_cdf_.resize(n);
      double acc = 0.0;
      for (uint64_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
        zipf_cdf_[k] = acc;
      }
      for (auto& v : zipf_cdf_) v /= acc;
      zipf_table_n_ = n;
      zipf_table_s_ = s;
    }
    const double u = Uniform();
    auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    if (it == zipf_cdf_.end()) return n - 1;
    return static_cast<uint64_t>(it - zipf_cdf_.begin());
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples an index according to non-negative weights. Requires a
  /// positive total weight.
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) {
      BA_CHECK_GE(w, 0.0);
      total += w;
    }
    BA_CHECK_GT(total, 0.0);
    double u = Uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      u -= weights[i];
      if (u <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent child generator; useful for giving each
  /// parallel task its own stream.
  Rng Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

  /// Snapshots the full generator state for checkpointing.
  RngState SaveState() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.gaussian_cached = gaussian_cached_;
    st.gaussian_cache = gaussian_cache_;
    return st;
  }

  /// Restores a snapshot; the stream continues bit-exactly from it.
  void RestoreState(const RngState& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    gaussian_cached_ = st.gaussian_cached;
    gaussian_cache_ = st.gaussian_cache;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool gaussian_cached_ = false;
  double gaussian_cache_ = 0.0;
  uint64_t zipf_table_n_ = 0;
  double zipf_table_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace ba
