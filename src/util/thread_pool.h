#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// \brief Fixed-size worker pool used to parallelize address-graph
/// construction, which the paper notes is a CPU-bound,
/// embarrassingly-parallel task (§IV-E.1), plus the process-wide
/// shared pool (`util::SharedPool`) that serving, training and the
/// tensor GEMM kernels draw workers from so co-resident subsystems
/// don't oversubscribe the machine.
///
/// Observability: every pool maintains the process-wide
/// `util.thread_pool.queue_depth` gauge and `util.thread_pool.tasks`
/// counter (obs::MetricsRegistry), and with tracing enabled each task
/// emits a `util.thread_pool.wait` span (submit → dequeue) and a
/// `util.thread_pool.task` span (execution) on the worker's track.

namespace ba {

/// \brief A simple fixed-size thread pool with a ParallelFor helper.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains pending tasks and joins all workers. Idempotent; called by
  /// the destructor. After Shutdown, Submit rejects new work.
  void Shutdown();

  /// Enqueues a task for asynchronous execution. Returns false (and
  /// drops the task) when the pool has been shut down.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. On a shared pool
  /// this waits for *all* submitters' tasks; prefer ParallelFor (which
  /// waits only for its own work) when the pool may be shared.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet finished (queued + running) — a
  /// backlog gauge for serving metrics.
  size_t in_flight() const;

  /// Runs `body(i)` for i in [0, n), distributing contiguous chunks
  /// over the pool, and blocks until all iterations complete. The body
  /// must be safe to invoke concurrently for distinct indices.
  ///
  /// Completion is tracked per call (not via pool-wide Wait), so
  /// concurrent ParallelFor calls on one shared pool never block on
  /// each other's unrelated work. When invoked from inside one of this
  /// pool's own workers, or on a shut-down pool, the iterations run
  /// inline on the calling thread — nested data parallelism degrades
  /// to serial instead of deadlocking.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// True when the calling thread is a worker of *any* ThreadPool.
  /// Lets nested parallel regions (e.g. a large GEMM reached from a
  /// training worker) fall back to serial execution instead of
  /// submitting to — and then waiting on — an already-busy pool.
  static bool InWorkerThread();

 private:
  struct PendingTask {
    std::function<void()> fn;
    /// Trace-epoch submit time; -1 when tracing was off at Submit (no
    /// wait span is emitted for the task then).
    int64_t enqueue_ns = -1;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<PendingTask> tasks_;
  mutable std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

namespace util {

/// \brief Overrides the size of the process-wide shared pool. Only
/// effective before the pool's first use (it is created lazily and
/// never resized); returns false — and changes nothing — once
/// SharedPool() has materialized. Benches call this from `--threads`.
bool SetSharedPoolThreads(size_t num_threads);

/// \brief The number of workers SharedPool() has (or will be created
/// with): the SetSharedPoolThreads override if any, else the
/// `BA_THREADS` environment variable, else hardware_concurrency.
size_t SharedPoolThreads();

/// \brief Process-wide default worker pool, created on first use.
///
/// Every subsystem that wants background parallelism (serving engines,
/// data-parallel training, large GEMMs) should draw from this pool
/// rather than constructing private ones, so one process hosting a
/// trainer *and* an engine runs `SharedPoolThreads()` workers total
/// instead of the sum of private pool sizes. Work scheduled here must
/// use ParallelFor or per-call completion tracking — never pool-wide
/// Wait() — so independent submitters don't serialize on each other.
ThreadPool& SharedPool();

}  // namespace util

}  // namespace ba
