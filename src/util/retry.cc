#include "util/retry.h"

#include <algorithm>
#include <thread>

#include "obs/metrics.h"

namespace ba::util {

namespace {

/// splitmix64 step — small and deterministic; keeps retry.h free of a
/// heavier RNG dependency.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double UniformIn(uint64_t* state, double lo, double hi) {
  const double u =
      static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
  return lo + (hi - lo) * u;
}

}  // namespace

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument(
        "RetryPolicy.max_attempts must be >= 1, got " +
        std::to_string(max_attempts));
  }
  if (initial_backoff_seconds < 0.0) {
    return Status::InvalidArgument(
        "RetryPolicy.initial_backoff_seconds must be >= 0, got " +
        std::to_string(initial_backoff_seconds));
  }
  if (max_backoff_seconds < initial_backoff_seconds) {
    return Status::InvalidArgument(
        "RetryPolicy.max_backoff_seconds (" +
        std::to_string(max_backoff_seconds) +
        ") must be >= initial_backoff_seconds (" +
        std::to_string(initial_backoff_seconds) + ")");
  }
  return Status::OK();
}

bool IsRetryableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

Status RetryWithBackoff(const RetryPolicy& policy, const std::string& op_name,
                        const std::function<Status()>& op) {
  BA_RETURN_NOT_OK(policy.Validate());
  if (policy.max_attempts == 1) return op();

  static obs::Counter* retries =
      obs::MetricsRegistry::Instance().GetCounter("util.retry.attempts");
  static obs::Counter* exhausted =
      obs::MetricsRegistry::Instance().GetCounter("util.retry.exhausted");

  uint64_t jitter_state = policy.jitter_seed;
  double prev_sleep = policy.initial_backoff_seconds;
  Status last;
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    last = op();
    if (last.ok()) return last;
    // Permanent failures (validation, corruption, expired deadlines)
    // come back verbatim — sleeping would not change them.
    if (!IsRetryableStatus(last)) return last;
    if (attempt == policy.max_attempts) break;

    // Decorrelated jitter: each sleep is drawn fresh from
    // [base, 3 * previous sleep], capped — concurrent failers spread
    // out instead of retrying in lockstep.
    const double lo = policy.initial_backoff_seconds;
    const double hi =
        std::min(policy.max_backoff_seconds,
                 std::max(lo, 3.0 * prev_sleep));
    const double sleep_seconds = UniformIn(&jitter_state, lo, hi);
    prev_sleep = sleep_seconds;
    if (policy.has_deadline()) {
      const auto wake =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(sleep_seconds));
      if (wake >= policy.deadline) {
        exhausted->Increment();
        return Status(last.code(),
                      op_name + ": " + last.message() +
                          " (deadline reached after " +
                          std::to_string(attempt) + " attempt(s))");
      }
    }
    retries->Increment();
    if (sleep_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(sleep_seconds));
    }
  }
  exhausted->Increment();
  return Status(last.code(), op_name + ": " + last.message() +
                                 " (retry budget exhausted, max_attempts=" +
                                 std::to_string(policy.max_attempts) + ")");
}

}  // namespace ba::util
