#pragma once

#include <string>
#include <utility>
#include <variant>

/// \file status.h
/// \brief Arrow-style error handling: `Status` for fallible void
/// operations and `Result<T>` for fallible value-returning operations.
///
/// Library code in this project does not throw exceptions on expected
/// failure paths (bad input, capacity limits, validation errors); it
/// returns `Status` / `Result<T>` instead. Programmer errors (broken
/// invariants) abort via the BA_CHECK macros in logging.h.

namespace ba {

/// \brief Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  /// The request was refused because a capacity budget (in-flight
  /// limit, queue watermark, token bucket) is exhausted. Retryable
  /// after backoff — see util::RetryWithBackoff.
  kResourceExhausted,
  /// The request's deadline expired before (or while) it was served.
  /// Not retryable with the same deadline.
  kDeadlineExceeded,
};

/// \brief Returns a short human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation that produces no value.
///
/// A default-constructed Status is OK. Failure statuses carry a code
/// and a message. Statuses are cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Renders "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Outcome of a fallible operation that produces a `T` on success.
///
/// Holds either a value or a non-OK Status. Accessing the value of a
/// failed Result aborts (programmer error); call ok() first or use
/// ValueOr().
template <typename T>
class Result {
 public:
  /// Implicit construction from a success value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a failure status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The failure status, or OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// \brief The held value. Aborts if !ok().
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value, or `fallback` when this result failed.
  T ValueOr(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace ba

/// Propagates a non-OK Status from the current function.
#define BA_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::ba::Status _ba_status = (expr);         \
    if (!_ba_status.ok()) return _ba_status;  \
  } while (false)

#define BA_CONCAT_IMPL(x, y) x##y
#define BA_CONCAT(x, y) BA_CONCAT_IMPL(x, y)

/// Assigns the value of a Result<T> expression to `lhs`, propagating a
/// non-OK status. `lhs` may include a declaration, e.g.
/// `BA_ASSIGN_OR_RETURN(auto tx, ledger.GetTransaction(id));`
#define BA_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  auto BA_CONCAT(_ba_result_, __LINE__) = (rexpr);              \
  if (!BA_CONCAT(_ba_result_, __LINE__).ok())                   \
    return BA_CONCAT(_ba_result_, __LINE__).status();           \
  lhs = std::move(BA_CONCAT(_ba_result_, __LINE__)).value()
