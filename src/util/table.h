#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

/// \file table.h
/// \brief Plain-text table rendering for the benchmark harnesses, which
/// must print the same rows the paper's tables report.

namespace ba {

/// \brief Column-aligned plain-text table builder.
///
/// Usage:
/// \code
///   TablePrinter t({"Model", "Precision", "Recall", "F1-score"});
///   t.AddRow({"GFN (ours)", "0.9815", "0.9725", "0.9769"});
///   t.Print(std::cout);
/// \endcode
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Adds a horizontal separator at the current position.
  void AddSeparator() { separators_.push_back(rows_.size()); }

  /// Renders the table with a title banner.
  void Print(std::ostream& os, const std::string& title = "") const {
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    size_t total = 1;
    for (size_t w : widths) total += w + 3;

    if (!title.empty()) {
      os << "\n" << title << "\n";
    }
    const std::string rule(total, '-');
    os << rule << "\n";
    PrintRow(os, header_, widths);
    os << rule << "\n";
    size_t sep_idx = 0;
    for (size_t r = 0; r < rows_.size(); ++r) {
      while (sep_idx < separators_.size() && separators_[sep_idx] == r) {
        os << rule << "\n";
        ++sep_idx;
      }
      PrintRow(os, rows_[r], widths);
    }
    os << rule << "\n";
  }

  /// Formats a double with fixed precision — the paper reports 4 digits.
  static std::string Num(double v, int precision = 4) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  /// Formats an integer with thousands separators, matching Table I.
  static std::string Count(int64_t v) {
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
      if (run != 0 && run % 3 == 0) out.push_back(',');
      out.push_back(*it);
      ++run;
    }
    if (v < 0) out.push_back('-');
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  static void PrintRow(std::ostream& os, const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << " |";
    }
    os << "\n";
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> separators_;
};

}  // namespace ba
