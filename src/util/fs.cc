#include "util/fs.h"

#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

namespace ba::util {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string buf;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::Internal("cannot stat: " + path);
  in.seekg(0, std::ios::beg);
  buf.resize(static_cast<size_t>(size));
  in.read(buf.data(), size);
  if (!in.good() && size > 0) return Status::Internal("read failed: " + path);
  return buf;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& point, int nth) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  state.mode = PointState::Mode::kOneShot;
  state.remaining = nth;
}

void FaultInjector::ArmProbabilistic(const std::string& point, double p,
                                     uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  state.mode = PointState::Mode::kProbabilistic;
  state.probability = p;
  state.rng_state = seed;
}

void FaultInjector::ArmEveryNth(const std::string& point, int n) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  state.mode = PointState::Mode::kEveryNth;
  state.period = n < 1 ? 1 : n;
}

void FaultInjector::ArmLatency(const std::string& point, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  points_[point].latency_seconds = seconds < 0.0 ? 0.0 : seconds;
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(point);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

bool FaultInjector::ShouldFail(const std::string& point) {
  bool fail = false;
  double latency = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PointState& state = points_[point];
    ++state.hits;
    latency = state.latency_seconds;
    switch (state.mode) {
      case PointState::Mode::kNone:
        break;
      case PointState::Mode::kOneShot:
        fail = state.remaining > 0 && --state.remaining == 0;
        break;
      case PointState::Mode::kProbabilistic: {
        // splitmix64 — deterministic per-point stream.
        uint64_t z = (state.rng_state += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        z ^= z >> 31;
        const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
        fail = u < state.probability;
        break;
      }
      case PointState::Mode::kEveryNth:
        fail = state.hits % state.period == 0;
        break;
    }
  }
  // Sleep outside the lock: a slow point must not serialize every
  // other thread's fault-point checks behind it.
  if (latency > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(latency));
  }
  return fail;
}

int FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

const std::vector<std::string>& AtomicFileWriter::FaultPoints() {
  static const std::vector<std::string>* points = new std::vector<std::string>{
      kFaultOpen, kFaultWrite, kFaultFlush, kFaultRename};
  return *points;
}

AtomicFileWriter::AtomicFileWriter(std::string path) : path_(std::move(path)) {
  // Unique per writer: concurrent saves to one destination each get a
  // private scratch file instead of truncating each other's.
  static std::atomic<uint64_t> next_seq{0};
  tmp_path_ = path_ + ".tmp." + std::to_string(::getpid()) + "." +
              std::to_string(next_seq.fetch_add(1));
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) Abort();
}

Status AtomicFileWriter::Open() {
  if (FaultInjector::Instance().ShouldFail(kFaultOpen)) {
    return Status::Internal("fault injected at " + std::string(kFaultOpen) +
                            ": " + tmp_path_);
  }
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot open for write: " + tmp_path_);
  }
  return Status::OK();
}

Status AtomicFileWriter::Write(const void* data, size_t len) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer not open: " + path_);
  }
  if (FaultInjector::Instance().ShouldFail(kFaultWrite)) {
    Abort();
    return Status::Internal("fault injected at " + std::string(kFaultWrite) +
                            ": " + tmp_path_);
  }
  if (len > 0 && std::fwrite(data, 1, len, file_) != len) {
    Abort();
    return Status::Internal("write failed: " + tmp_path_);
  }
  crc_ = Crc32(data, len, crc_);
  bytes_ += len;
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer not open: " + path_);
  }
  if (FaultInjector::Instance().ShouldFail(kFaultFlush)) {
    Abort();
    return Status::Internal("fault injected at " + std::string(kFaultFlush) +
                            ": " + tmp_path_);
  }
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    Abort();
    return Status::Internal("flush failed: " + tmp_path_);
  }
  std::fclose(file_);
  file_ = nullptr;
  if (FaultInjector::Instance().ShouldFail(kFaultRename)) {
    std::remove(tmp_path_.c_str());
    return Status::Internal("fault injected at " + std::string(kFaultRename) +
                            ": " + tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::Internal("rename failed: " + tmp_path_ + " -> " + path_);
  }
  committed_ = true;
  return Status::OK();
}

void AtomicFileWriter::Abort() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!committed_) std::remove(tmp_path_.c_str());
}

bool BufferReader::ReadBytes(void* out, size_t len) {
  if (len > remaining()) return false;
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
  return true;
}

}  // namespace ba::util
