#include "util/fs.h"

#include <unistd.h>

#include <array>
#include <cstring>
#include <fstream>

namespace ba::util {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string buf;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::Internal("cannot stat: " + path);
  in.seekg(0, std::ios::beg);
  buf.resize(static_cast<size_t>(size));
  in.read(buf.data(), size);
  if (!in.good() && size > 0) return Status::Internal("read failed: " + path);
  return buf;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& point, int nth) {
  std::lock_guard<std::mutex> lock(mu_);
  points_[point].remaining = nth;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

bool FaultInjector::ShouldFail(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) {
    points_[point].hits = 1;
    return false;
  }
  ++it->second.hits;
  if (it->second.remaining > 0 && --it->second.remaining == 0) {
    return true;
  }
  return false;
}

int FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

const std::vector<std::string>& AtomicFileWriter::FaultPoints() {
  static const std::vector<std::string>* points = new std::vector<std::string>{
      kFaultOpen, kFaultWrite, kFaultFlush, kFaultRename};
  return *points;
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) Abort();
}

Status AtomicFileWriter::Open() {
  if (FaultInjector::Instance().ShouldFail(kFaultOpen)) {
    return Status::Internal("fault injected at " + std::string(kFaultOpen) +
                            ": " + tmp_path_);
  }
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot open for write: " + tmp_path_);
  }
  return Status::OK();
}

Status AtomicFileWriter::Write(const void* data, size_t len) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer not open: " + path_);
  }
  if (FaultInjector::Instance().ShouldFail(kFaultWrite)) {
    Abort();
    return Status::Internal("fault injected at " + std::string(kFaultWrite) +
                            ": " + tmp_path_);
  }
  if (len > 0 && std::fwrite(data, 1, len, file_) != len) {
    Abort();
    return Status::Internal("write failed: " + tmp_path_);
  }
  crc_ = Crc32(data, len, crc_);
  bytes_ += len;
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer not open: " + path_);
  }
  if (FaultInjector::Instance().ShouldFail(kFaultFlush)) {
    Abort();
    return Status::Internal("fault injected at " + std::string(kFaultFlush) +
                            ": " + tmp_path_);
  }
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    Abort();
    return Status::Internal("flush failed: " + tmp_path_);
  }
  std::fclose(file_);
  file_ = nullptr;
  if (FaultInjector::Instance().ShouldFail(kFaultRename)) {
    std::remove(tmp_path_.c_str());
    return Status::Internal("fault injected at " + std::string(kFaultRename) +
                            ": " + tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::Internal("rename failed: " + tmp_path_ + " -> " + path_);
  }
  committed_ = true;
  return Status::OK();
}

void AtomicFileWriter::Abort() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!committed_) std::remove(tmp_path_.c_str());
}

bool BufferReader::ReadBytes(void* out, size_t len) {
  if (len > remaining()) return false;
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
  return true;
}

}  // namespace ba::util
