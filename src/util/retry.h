#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "util/status.h"

/// \file retry.h
/// \brief Reusable bounded-retry policy: exponential backoff with
/// decorrelated jitter, deadline-aware.
///
/// Persistence paths (cache saves, training checkpoints, metrics
/// dumps) fail transiently — a full disk that a log rotation frees, an
/// NFS hiccup, an injected chaos fault. `RetryWithBackoff` turns such
/// an operation into a bounded loop: attempt, classify the failure,
/// sleep with decorrelated jitter (sleep_k ~ Uniform(base, 3·sleep_{k-1}),
/// capped), and try again until the attempt budget or the deadline is
/// exhausted. Jitter is drawn from a deterministic per-call stream so
/// tests reproduce exactly.
///
/// The default policy (`max_attempts = 1`) performs no retries at all —
/// call sites that wire a `RetryPolicy` through keep their existing
/// fail-fast semantics until an operator opts in.

namespace ba::util {

/// \brief Bounded-retry tunables. Value-semantic; safe to embed in
/// Options structs.
struct RetryPolicy {
  /// Total attempts including the first. 1 disables retries entirely
  /// (the operation runs once and its status is returned verbatim).
  int max_attempts = 1;
  /// Lower bound of every backoff sleep.
  double initial_backoff_seconds = 0.002;
  /// Upper cap on any single backoff sleep.
  double max_backoff_seconds = 0.250;
  /// Seed of the deterministic jitter stream.
  uint64_t jitter_seed = 0x5DEECE66DULL;
  /// Optional hard deadline: a retry whose backoff sleep would land
  /// past it is abandoned and the last error returned. The epoch
  /// default means "no deadline".
  std::chrono::steady_clock::time_point deadline{};

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }

  /// \brief A policy that retries `attempts` times with the default
  /// backoff shape — the sensible starting point for persistence paths.
  static RetryPolicy Standard(int attempts = 3) {
    RetryPolicy p;
    p.max_attempts = attempts;
    return p;
  }

  /// \brief OK when every field is usable, or a descriptive
  /// InvalidArgument naming the offending field.
  Status Validate() const;
};

/// \brief True for failure categories worth retrying: transient
/// conditions (kInternal I/O failures, kResourceExhausted capacity
/// rejections). Validation errors, missing files and expired deadlines
/// are permanent and returned immediately.
bool IsRetryableStatus(const Status& status);

/// \brief Runs `op` under `policy`: retries retryable failures with
/// decorrelated-jitter backoff until success, the attempt budget, a
/// non-retryable failure, or the policy deadline. Returns the first OK
/// or the last failure (annotated with `op_name` and the attempt count
/// when more than one attempt ran). Counts every retry sleep in the
/// process-wide `util.retry.attempts` counter and every exhausted
/// budget in `util.retry.exhausted`.
Status RetryWithBackoff(const RetryPolicy& policy, const std::string& op_name,
                        const std::function<Status()>& op);

}  // namespace ba::util
