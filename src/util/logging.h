#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// \file logging.h
/// \brief Invariant-check macros and a minimal leveled logger.
///
/// BA_CHECK* abort the process on violated invariants — they guard
/// against programmer error, not expected runtime failures (those use
/// Status/Result from status.h).

namespace ba::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const std::string& message) {
  std::fprintf(stderr, "[FATAL] %s:%d  %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace ba::internal

/// Aborts with a message when `cond` is false.
#define BA_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::ba::internal::CheckFailed(__FILE__, __LINE__,                       \
                                  "check failed: " #cond);                  \
    }                                                                       \
  } while (false)

#define BA_CHECK_OP(a, b, op)                                               \
  do {                                                                      \
    auto _ba_a = (a);                                                       \
    auto _ba_b = (b);                                                       \
    if (!(_ba_a op _ba_b)) {                                                \
      std::ostringstream _ba_os;                                            \
      _ba_os << "check failed: " #a " " #op " " #b " (" << _ba_a << " vs "  \
             << _ba_b << ")";                                               \
      ::ba::internal::CheckFailed(__FILE__, __LINE__, _ba_os.str());        \
    }                                                                       \
  } while (false)

#define BA_CHECK_EQ(a, b) BA_CHECK_OP(a, b, ==)
#define BA_CHECK_NE(a, b) BA_CHECK_OP(a, b, !=)
#define BA_CHECK_LT(a, b) BA_CHECK_OP(a, b, <)
#define BA_CHECK_LE(a, b) BA_CHECK_OP(a, b, <=)
#define BA_CHECK_GT(a, b) BA_CHECK_OP(a, b, >)
#define BA_CHECK_GE(a, b) BA_CHECK_OP(a, b, >=)

/// Aborts when a Status expression is not OK.
#define BA_CHECK_OK(expr)                                                   \
  do {                                                                      \
    ::ba::Status _ba_st = (expr);                                           \
    if (!_ba_st.ok()) {                                                     \
      ::ba::internal::CheckFailed(__FILE__, __LINE__,                       \
                                  "status not OK: " + _ba_st.ToString());   \
    }                                                                       \
  } while (false)
