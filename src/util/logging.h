#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// \file logging.h
/// \brief Invariant-check macros and a minimal leveled logger.
///
/// BA_CHECK* abort the process on violated invariants — they guard
/// against programmer error, not expected runtime failures (those use
/// Status/Result from status.h).

namespace ba::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const std::string& message) {
  std::fprintf(stderr, "[FATAL] %s:%d  %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace ba::internal

/// Aborts with a message when `cond` is false.
#define BA_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::ba::internal::CheckFailed(__FILE__, __LINE__,                       \
                                  "check failed: " #cond);                  \
    }                                                                       \
  } while (false)

#define BA_CHECK_OP(a, b, op)                                               \
  do {                                                                      \
    auto _ba_a = (a);                                                       \
    auto _ba_b = (b);                                                       \
    if (!(_ba_a op _ba_b)) {                                                \
      std::ostringstream _ba_os;                                            \
      _ba_os << "check failed: " #a " " #op " " #b " (" << _ba_a << " vs "  \
             << _ba_b << ")";                                               \
      ::ba::internal::CheckFailed(__FILE__, __LINE__, _ba_os.str());        \
    }                                                                       \
  } while (false)

#define BA_CHECK_EQ(a, b) BA_CHECK_OP(a, b, ==)
#define BA_CHECK_NE(a, b) BA_CHECK_OP(a, b, !=)
#define BA_CHECK_LT(a, b) BA_CHECK_OP(a, b, <)
#define BA_CHECK_LE(a, b) BA_CHECK_OP(a, b, <=)
#define BA_CHECK_GT(a, b) BA_CHECK_OP(a, b, >)
#define BA_CHECK_GE(a, b) BA_CHECK_OP(a, b, >=)

/// Aborts when a Status expression is not OK.
#define BA_CHECK_OK(expr)                                                   \
  do {                                                                      \
    ::ba::Status _ba_st = (expr);                                           \
    if (!_ba_st.ok()) {                                                     \
      ::ba::internal::CheckFailed(__FILE__, __LINE__,                       \
                                  "status not OK: " + _ba_st.ToString());   \
    }                                                                       \
  } while (false)

namespace ba::util::log {

/// Severity levels for BA_LOG, in increasing order. kOff disables
/// everything.
enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// returns `fallback` on anything else.
Level ParseLevel(const std::string& text, Level fallback);

/// Sets the process-wide minimum severity. Thread-safe. The initial
/// value comes from the BA_LOG environment variable (default: warn, so
/// library code stays quiet unless something is wrong).
void SetMinLevel(Level level);
Level MinLevel();

/// Restricts logging to modules whose name starts with one of the
/// comma-separated prefixes ("core,obs.trace"); empty re-allows all.
/// Initial value comes from BA_LOG_MODULES. Thread-safe.
void SetModuleFilter(const std::string& comma_separated_prefixes);

/// True when a BA_LOG(level, module) statement would emit.
bool ShouldLog(Level level, const char* module);

namespace internal {

/// One log statement: buffers the streamed message, then writes a
/// single line to stderr in the destructor.
class LogMessage {
 public:
  LogMessage(Level level, const char* module);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return os_; }

 private:
  Level level_;
  const char* module_;
  std::ostringstream os_;
};

/// Swallows the stream expression in BA_LOG's disabled branch so the
/// macro stays a single expression (no dangling-else hazard).
struct Voidify {
  void operator&(std::ostream&) const {}
};

}  // namespace internal

}  // namespace ba::util::log

/// Leveled, module-tagged logging:
///   BA_LOG(Warn, "obs.trace") << "dropped " << n << " events";
/// Severity is one of Debug/Info/Warn/Error; `module` is a
/// `<subsystem>[.<stage>]` string matched by SetModuleFilter /
/// BA_LOG_MODULES. Stream operands are not evaluated when filtered out.
#define BA_LOG(severity, module)                                            \
  !::ba::util::log::ShouldLog(::ba::util::log::Level::k##severity,          \
                              (module))                                     \
      ? (void)0                                                             \
      : ::ba::util::log::internal::Voidify() &                              \
            ::ba::util::log::internal::LogMessage(                          \
                ::ba::util::log::Level::k##severity, (module))              \
                .stream()
