#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "util/status.h"

/// \file fs.h
/// \brief Crash-safe file persistence: atomic writes, CRC32 integrity,
/// bounds-checked parsing and a test-only fault injector.
///
/// Every artifact this project releases (checkpoints, ledger CSVs,
/// label CSVs) is written through `AtomicFileWriter`: content goes to
/// `<path>.tmp`, is flushed and fsync'd, and only then renamed over the
/// destination. A reader therefore sees either the complete old file or
/// the complete new file — never a torn write. Writers accumulate a
/// CRC32 of everything written so formats can append an integrity
/// trailer, and readers re-verify it so a bit-flip fails loudly instead
/// of loading silently.
///
/// `FaultInjector` lets tests kill a save at any registered fault point
/// (`fs.open`, `fs.write`, `fs.flush`, `fs.rename`), proving the
/// previous artifact survives every mid-flight failure.

namespace ba::util {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of
/// `len` bytes, continuing from `seed` (0 for a fresh checksum).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// \brief Crc32 over a string's bytes.
inline uint32_t Crc32(const std::string& s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

/// \brief Reads a whole file into memory. NotFound when it cannot be
/// opened, Internal on read errors.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief True when `path` exists (any file type).
bool FileExists(const std::string& path);

/// \brief Test-only fault injection at named persistence and serving
/// fault points.
///
/// Production code calls `ShouldFail(point)` at each fault point; the
/// call is a cheap counter bump unless a test armed the point. Four
/// arming modes:
///
///  * `Arm(point, nth)`           — the nth upcoming hit fails, once
///                                  (1 = the very next), so a test can
///                                  step a multi-write save and kill it
///                                  at any byte boundary.
///  * `ArmProbabilistic(point,p)` — every hit fails independently with
///                                  probability p, from a deterministic
///                                  per-point stream (chaos suites).
///  * `ArmEveryNth(point, n)`     — every nth hit fails, periodically.
///  * `ArmLatency(point, secs)`   — every hit sleeps `secs` before
///                                  returning its verdict. Composes
///                                  with any failure mode armed on the
///                                  same point (slow-then-fail).
///
/// The injector is a process-wide singleton safe for concurrent
/// arming, firing and querying from any number of threads (the chaos
/// harness hammers it from sealer, client and saver threads at once);
/// injected latency is slept outside the injector lock so concurrent
/// hits of a slow point do not serialize. Tests must `DisarmAll()`
/// when done.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `point` so its `nth` upcoming hit reports failure (once).
  void Arm(const std::string& point, int nth = 1);

  /// Arms `point` so every upcoming hit fails independently with
  /// probability `p` in [0, 1], drawn from a deterministic stream
  /// seeded by `seed`.
  void ArmProbabilistic(const std::string& point, double p,
                        uint64_t seed = 1);

  /// Arms `point` so every `n`-th hit fails (the n-th, 2n-th, ...).
  void ArmEveryNth(const std::string& point, int n);

  /// Injects `seconds` of latency into every upcoming hit of `point`.
  /// Keeps whatever failure mode is armed; pass 0 to remove latency.
  void ArmLatency(const std::string& point, double seconds);

  /// Clears the failure mode, latency and hit counter of one point.
  void Disarm(const std::string& point);

  /// Clears every armed fault and hit counter.
  void DisarmAll();

  /// True when this hit of `point` must fail; a one-shot fault is
  /// consumed, probabilistic and every-nth faults keep firing.
  bool ShouldFail(const std::string& point);

  /// Number of times `point` was hit since the last Disarm/DisarmAll.
  int HitCount(const std::string& point) const;

 private:
  FaultInjector() = default;

  struct PointState {
    enum class Mode { kNone, kOneShot, kProbabilistic, kEveryNth };
    Mode mode = Mode::kNone;
    int remaining = 0;       ///< one-shot: hits until failure
    double probability = 0.0;
    uint64_t rng_state = 0;  ///< splitmix64 stream (probabilistic)
    int period = 0;          ///< every-nth period
    double latency_seconds = 0.0;
    int hits = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, PointState> points_;
};

/// \brief Writes a file atomically: content goes to a uniquely named
/// temporary (`<path>.tmp.<pid>.<seq>`), and `Commit()` flushes,
/// fsyncs and renames it over `path`. If the writer is destroyed (or
/// any step fails) before Commit succeeds, the destination is
/// untouched and the temporary is removed — a failed or abandoned
/// write never litters the directory.
///
/// The unique suffix makes concurrent writers to one destination safe:
/// each owns a private scratch file and the last successful Commit
/// wins the rename. (With a shared `<path>.tmp`, one writer's Open
/// would truncate another's half-written scratch and a racing Commit
/// could rename torn bytes into place.)
///
/// The writer maintains a running CRC32 of every byte written, so
/// formats can close with an integrity trailer:
/// \code
///   AtomicFileWriter w(path);
///   BA_RETURN_NOT_OK(w.Open());
///   BA_RETURN_NOT_OK(w.Append(body));
///   const uint32_t crc = w.crc();           // CRC of the body only
///   BA_RETURN_NOT_OK(w.Write(&crc, sizeof(crc)));
///   return w.Commit();
/// \endcode
class AtomicFileWriter {
 public:
  /// Names of the fault points this writer passes through, in order.
  static constexpr const char* kFaultOpen = "fs.open";
  static constexpr const char* kFaultWrite = "fs.write";
  static constexpr const char* kFaultFlush = "fs.flush";
  static constexpr const char* kFaultRename = "fs.rename";

  /// Every registered fault point — tests iterate this list to kill a
  /// save at each stage.
  static const std::vector<std::string>& FaultPoints();

  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Creates the temporary file. Must be called (successfully) before
  /// Write/Append/Commit.
  Status Open();

  /// Appends `len` raw bytes, updating the running CRC.
  Status Write(const void* data, size_t len);

  /// Appends a string's bytes.
  Status Append(const std::string& s) { return Write(s.data(), s.size()); }

  /// Flushes, fsyncs and atomically renames the temporary over the
  /// destination. After OK the writer is closed and the file durable.
  Status Commit();

  /// Discards the temporary; the destination stays untouched.
  void Abort();

  /// CRC32 of every byte written so far.
  uint32_t crc() const { return crc_; }

  /// Bytes written so far.
  uint64_t bytes_written() const { return bytes_; }

  const std::string& path() const { return path_; }
  const std::string& tmp_path() const { return tmp_path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  uint32_t crc_ = 0;
  uint64_t bytes_ = 0;
  bool committed_ = false;
};

/// \brief Bounds-checked cursor over an in-memory buffer — the load
/// side of the durability layer. Every read checks remaining bytes, so
/// a truncated or corrupted header can never drive an out-of-bounds
/// read or an absurd allocation.
class BufferReader {
 public:
  BufferReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit BufferReader(const std::string& buf)
      : BufferReader(buf.data(), buf.size()) {}

  /// Reads a trivially-copyable value; false when not enough bytes.
  template <typename T>
  bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(value, sizeof(T));
  }

  /// Copies `len` raw bytes; false when not enough remain.
  bool ReadBytes(void* out, size_t len);

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  /// Shrinks the readable window (e.g. to exclude a CRC trailer).
  void Truncate(size_t new_size) {
    if (new_size < size_) size_ = new_size;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace ba::util
