#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <utility>

#include "util/logging.h"

/// \file chunked_vector.h
/// \brief Append-only, reallocation-stable storage with lock-free reads.
///
/// `std::vector` invalidates every reference on growth, which makes it
/// unusable as the backing store for data served to concurrent readers
/// while a writer appends (the `chain::Ledger` snapshot model). A
/// ChunkedVector instead allocates geometrically growing chunks that
/// are never moved or freed before destruction:
///
///  * an element, once published, has a stable address for the life of
///    the container;
///  * `push_back`/`Append` never touch previously published elements;
///  * `size()` is an acquire load and publication is a release store,
///    so a reader that observes `size() == n` also observes the fully
///    written contents of elements `[0, n)`.
///
/// Concurrency contract: any number of reader threads may call the
/// const interface (`size`, `operator[]`) concurrently with ONE writer
/// thread calling the mutating interface. Multiple concurrent writers,
/// or any access concurrent with move construction/assignment or
/// destruction, is a data race.

namespace ba::util {

template <typename T>
class ChunkedVector {
 public:
  /// Elements in chunk 0; chunk `c` holds `kFirstChunkElems << c`
  /// elements, so 48 chunks cover ~1.8e16 elements.
  static constexpr size_t kFirstChunkElems = 64;
  static constexpr int kMaxChunks = 48;

  ChunkedVector() = default;

  ~ChunkedVector() { Free(); }

  ChunkedVector(const ChunkedVector&) = delete;
  ChunkedVector& operator=(const ChunkedVector&) = delete;

  /// Moves steal the chunk pointers; neither side may have concurrent
  /// readers or writers during the move.
  ChunkedVector(ChunkedVector&& other) noexcept { StealFrom(&other); }

  ChunkedVector& operator=(ChunkedVector&& other) noexcept {
    if (this != &other) {
      Free();
      StealFrom(&other);
    }
    return *this;
  }

  /// Published element count (acquire: pairs with the release store in
  /// `push_back`/`Append`, making elements `[0, size())` visible).
  size_t size() const { return size_.load(std::memory_order_acquire); }

  bool empty() const { return size() == 0; }

  /// The element at `i`, which must be `< size()` as previously
  /// observed by this thread. Safe concurrently with the writer.
  const T& operator[](size_t i) const {
    size_t offset = 0;
    const int c = ChunkOf(i, &offset);
    return chunks_[static_cast<size_t>(c)].load(
        std::memory_order_acquire)[offset];
  }

  /// Writer-side mutable access to a published element. The writer must
  /// not mutate elements readers may be looking at; intended for
  /// elements that are themselves internally synchronized (e.g. a
  /// ChunkedVector of ChunkedVectors).
  T& MutableAt(size_t i) {
    size_t offset = 0;
    const int c = ChunkOf(i, &offset);
    return chunks_[static_cast<size_t>(c)].load(
        std::memory_order_relaxed)[offset];
  }

  const T& back() const { return (*this)[size() - 1]; }

  /// Appends a copy/move of `value` (writer thread only).
  void push_back(T value) {
    T& slot = PrepareNext();
    slot = std::move(value);
    CommitNext();
  }

  /// Publishes one default-constructed element and returns it (writer
  /// thread only). The element is visible to readers immediately, so
  /// only types that are internally synchronized (or never read before
  /// some later publication point) should be filled in afterwards.
  T& Append() {
    T& slot = PrepareNext();
    CommitNext();
    return slot;
  }

 private:
  /// Chunk index of element `i`; writes the offset within the chunk.
  static int ChunkOf(size_t i, size_t* offset) {
    const size_t j = i / kFirstChunkElems + 1;
    const int c = std::bit_width(j) - 1;
    *offset = i - kFirstChunkElems * ((size_t{1} << c) - 1);
    return c;
  }

  T& PrepareNext() {
    const size_t i = size_.load(std::memory_order_relaxed);
    size_t offset = 0;
    const int c = ChunkOf(i, &offset);
    BA_CHECK_LT(c, kMaxChunks);
    T* chunk = chunks_[static_cast<size_t>(c)].load(
        std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new T[kFirstChunkElems << c]();
      chunks_[static_cast<size_t>(c)].store(chunk,
                                            std::memory_order_release);
    }
    return chunk[offset];
  }

  void CommitNext() {
    size_.store(size_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  void Free() {
    for (auto& c : chunks_) {
      delete[] c.load(std::memory_order_relaxed);
      c.store(nullptr, std::memory_order_relaxed);
    }
    size_.store(0, std::memory_order_relaxed);
  }

  void StealFrom(ChunkedVector* other) {
    for (int c = 0; c < kMaxChunks; ++c) {
      chunks_[static_cast<size_t>(c)].store(
          other->chunks_[static_cast<size_t>(c)].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
      other->chunks_[static_cast<size_t>(c)].store(
          nullptr, std::memory_order_relaxed);
    }
    size_.store(other->size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    other->size_.store(0, std::memory_order_relaxed);
  }

  std::array<std::atomic<T*>, kMaxChunks> chunks_{};
  std::atomic<size_t> size_{0};
};

}  // namespace ba::util
