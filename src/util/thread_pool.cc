#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ba {

namespace {

/// Process-wide instruments shared by every pool (several engines may
/// each own one); Add(+1)/Add(-1) pairs keep the aggregate depth right.
/// Pointers are cached once — instruments live forever.
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Instance().GetGauge(
      "util.thread_pool.queue_depth");
  return gauge;
}

obs::Counter* TasksCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Instance().GetCounter("util.thread_pool.tasks");
  return counter;
}

/// Set for the lifetime of every WorkerLoop, so nested parallel
/// regions can detect they are already running on pool capacity.
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  BA_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

bool ThreadPool::Submit(std::function<void()> task) {
  PendingTask pending;
  pending.fn = std::move(task);
  if (obs::Tracer::Instance().enabled()) {
    pending.enqueue_ns = obs::Tracer::NowNs();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return false;
    tasks_.push(std::move(pending));
    ++in_flight_;
  }
  QueueDepthGauge()->Add(1);
  TasksCounter()->Increment();
  task_available_.notify_one();
  return true;
}

size_t ThreadPool::in_flight() const {
  std::unique_lock<std::mutex> lock(mu_);
  return in_flight_;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  // A worker calling back into its own (or any) pool must not block on
  // pool capacity — every worker could end up waiting for tasks only
  // the waiting workers themselves would run. Degrade to serial.
  if (t_in_pool_worker) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const size_t chunks = std::min(n, std::max<size_t>(workers_.size(), 1) * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;

  // Per-call completion latch: on a shared pool, Wait() would also
  // block on unrelated submitters' tasks. Only this call's chunks are
  // counted here.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
  } latch;

  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    {
      std::unique_lock<std::mutex> lock(latch.mu);
      ++latch.remaining;
    }
    const bool accepted = Submit([begin, end, &body, &latch] {
      for (size_t i = begin; i < end; ++i) body(i);
      std::unique_lock<std::mutex> lock(latch.mu);
      if (--latch.remaining == 0) latch.cv.notify_all();
    });
    if (!accepted) {
      // Pool already shut down: degrade to inline execution.
      for (size_t i = begin; i < end; ++i) body(i);
      std::unique_lock<std::mutex> lock(latch.mu);
      --latch.remaining;
    }
  }
  std::unique_lock<std::mutex> lock(latch.mu);
  latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  obs::Tracer::Instance().SetCurrentThreadName("ba.pool.worker");
  t_in_pool_worker = true;
  for (;;) {
    PendingTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    QueueDepthGauge()->Add(-1);
    obs::Tracer& tracer = obs::Tracer::Instance();
    if (task.enqueue_ns >= 0 && tracer.enabled()) {
      // The wait span lands on the worker's track, abutting the task
      // span that follows — queueing delay reads straight off the
      // timeline.
      tracer.RecordComplete("util.thread_pool.wait", task.enqueue_ns,
                            obs::Tracer::NowNs() - task.enqueue_ns);
    }
    {
      BA_TRACE_SPAN("util.thread_pool.task");
      task.fn();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace util {

namespace {

std::mutex g_shared_pool_mu;
ThreadPool* g_shared_pool = nullptr;      // leaked singleton, LSan-reachable
size_t g_shared_pool_override = 0;        // 0 = no override

size_t DefaultSharedPoolThreads() {
  if (const char* env = std::getenv("BA_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<size_t>(parsed);
    }
    BA_LOG(Warn, "util.thread_pool")
        << "ignoring unparseable BA_THREADS=\"" << env << "\"";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

}  // namespace

bool SetSharedPoolThreads(size_t num_threads) {
  if (num_threads < 1) return false;
  std::unique_lock<std::mutex> lock(g_shared_pool_mu);
  if (g_shared_pool != nullptr) return false;  // already materialized
  g_shared_pool_override = num_threads;
  return true;
}

size_t SharedPoolThreads() {
  std::unique_lock<std::mutex> lock(g_shared_pool_mu);
  if (g_shared_pool != nullptr) return g_shared_pool->num_threads();
  if (g_shared_pool_override >= 1) return g_shared_pool_override;
  return DefaultSharedPoolThreads();
}

ThreadPool& SharedPool() {
  std::unique_lock<std::mutex> lock(g_shared_pool_mu);
  if (g_shared_pool == nullptr) {
    const size_t n = g_shared_pool_override >= 1 ? g_shared_pool_override
                                                 : DefaultSharedPoolThreads();
    // Leaked deliberately (like Tracer / MetricsRegistry): workers must
    // outlive every static-destruction-order client, and the pointer
    // stays reachable so LSan is quiet.
    g_shared_pool = new ThreadPool(n);
  }
  return *g_shared_pool;
}

}  // namespace util

}  // namespace ba
