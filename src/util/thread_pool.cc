#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace ba {

ThreadPool::ThreadPool(size_t num_threads) {
  BA_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
  return true;
}

size_t ThreadPool::in_flight() const {
  std::unique_lock<std::mutex> lock(mu_);
  return in_flight_;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  const size_t chunks = std::min(n, std::max<size_t>(workers_.size(), 1) * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    const bool accepted = Submit([begin, end, &body] {
      for (size_t i = begin; i < end; ++i) body(i);
    });
    if (!accepted) {
      // Pool already shut down: degrade to inline execution.
      for (size_t i = begin; i < end; ++i) body(i);
    }
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace ba
