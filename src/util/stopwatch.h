#pragma once

#include <chrono>
#include <cstdint>

/// \file stopwatch.h
/// \brief Wall-clock timing helpers used by the per-stage
/// instrumentation behind Table V and the Fig 5/6 learning-curve
/// harnesses.

namespace ba {

/// \brief Accumulating wall-clock stopwatch.
///
/// Supports repeated Start/Stop cycles; Elapsed* report the total
/// accumulated time plus any currently-running interval.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts (or restarts) the current interval.
  void Start() {
    start_ = Clock::now();
    running_ = true;
  }

  /// Stops the current interval and folds it into the accumulated total.
  void Stop() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  /// Clears the accumulated total and stops the watch.
  void Reset() {
    accumulated_ = Clock::duration::zero();
    running_ = false;
  }

  /// Accumulated time in nanoseconds.
  int64_t ElapsedNanos() const {
    auto total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(total)
        .count();
  }

  /// Accumulated time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Accumulated time in milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  Clock::time_point start_{};
  Clock::duration accumulated_ = Clock::duration::zero();
  bool running_ = false;
};

/// \brief RAII guard that accumulates its lifetime into a Stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch* watch) : watch_(watch) { watch_->Start(); }
  ~ScopedTimer() { watch_->Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch* watch_;
};

}  // namespace ba
