#pragma once

#include <cstdint>
#include <map>
#include <string>

/// \file cli.h
/// \brief Minimal `--flag value` / `--flag=value` parser for the bench
/// and example binaries, so every experiment can be rescaled from the
/// command line (e.g. `--addresses 20000 --seed 7`).

namespace ba {

/// \brief Parses argv into a flag map with typed getters and defaults.
class CliFlags {
 public:
  CliFlags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[arg] = argv[++i];
      } else {
        flags_[arg] = "true";
      }
    }
  }

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : std::stoll(it->second);
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : std::stod(it->second);
  }

  bool GetBool(const std::string& name, bool fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace ba
