#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstring>
#include <mutex>
#include <vector>

namespace ba::util::log {

namespace {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

struct State {
  std::atomic<int> min_level;
  /// True while no module filter is installed — lets ShouldLog skip the
  /// mutex on the common path.
  std::atomic<bool> all_modules;
  std::mutex mu;
  std::vector<std::string> prefixes;

  State()
      : min_level(static_cast<int>(Level::kWarn)), all_modules(true) {
    const char* env_level = std::getenv("BA_LOG");
    if (env_level != nullptr && env_level[0] != '\0') {
      min_level.store(
          static_cast<int>(ParseLevel(env_level, Level::kWarn)),
          std::memory_order_relaxed);
    }
    const char* env_modules = std::getenv("BA_LOG_MODULES");
    if (env_modules != nullptr && env_modules[0] != '\0') {
      SetPrefixes(env_modules);
    }
  }

  void SetPrefixes(const std::string& comma_separated) {
    std::vector<std::string> parsed;
    std::string current;
    for (char c : comma_separated) {
      if (c == ',') {
        if (!current.empty()) parsed.push_back(current);
        current.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        current.push_back(c);
      }
    }
    if (!current.empty()) parsed.push_back(current);
    {
      std::unique_lock<std::mutex> lock(mu);
      prefixes = std::move(parsed);
      all_modules.store(prefixes.empty(), std::memory_order_relaxed);
    }
  }

  bool ModuleEnabled(const char* module) {
    if (all_modules.load(std::memory_order_relaxed)) return true;
    std::unique_lock<std::mutex> lock(mu);
    for (const std::string& p : prefixes) {
      if (std::strncmp(module, p.c_str(), p.size()) == 0) return true;
    }
    return false;
  }
};

State& GetState() {
  // Leaked: log statements may run from atexit hooks and detached
  // threads after static destruction would have torn this down.
  static State* state = new State();
  return *state;
}

}  // namespace

Level ParseLevel(const std::string& text, Level fallback) {
  const std::string t = ToLower(text);
  if (t == "debug") return Level::kDebug;
  if (t == "info") return Level::kInfo;
  if (t == "warn" || t == "warning") return Level::kWarn;
  if (t == "error") return Level::kError;
  if (t == "off" || t == "none") return Level::kOff;
  return fallback;
}

void SetMinLevel(Level level) {
  GetState().min_level.store(static_cast<int>(level),
                             std::memory_order_relaxed);
}

Level MinLevel() {
  return static_cast<Level>(
      GetState().min_level.load(std::memory_order_relaxed));
}

void SetModuleFilter(const std::string& comma_separated_prefixes) {
  GetState().SetPrefixes(comma_separated_prefixes);
}

bool ShouldLog(Level level, const char* module) {
  State& state = GetState();
  if (static_cast<int>(level) <
      state.min_level.load(std::memory_order_relaxed)) {
    return false;
  }
  if (level == Level::kOff) return false;
  return state.ModuleEnabled(module);
}

namespace internal {

LogMessage::LogMessage(Level level, const char* module)
    : level_(level), module_(module) {}

LogMessage::~LogMessage() {
  // One fprintf per line keeps concurrent log statements from
  // interleaving mid-line.
  std::fprintf(stderr, "[%s %s] %s\n", LevelName(level_), module_,
               os_.str().c_str());
}

}  // namespace internal

}  // namespace ba::util::log
