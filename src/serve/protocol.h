#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/fs.h"
#include "util/status.h"

/// \file protocol.h
/// \brief Versioned, wire-stable serving types and the length-prefixed
/// binary frame protocol that carries them.
///
/// `ClassifyOptions` / `ClassifyResult` started as in-process structs
/// on `InferenceEngine::Classify`; promoting them here makes them the
/// *protocol* surface shared by the engine, the network server
/// (`net::Server`), the client library (`net::Client`) and the loadgen
/// — one definition, one encoding, one version number.
///
/// Encoding rules (all integers little-endian, explicitly sized —
/// never a struct memcpy, so the layout survives compiler/ABI drift):
///
///  * Each type writes its fields in a fixed documented order via
///    `EncodeTo` and reads them back with a bounds-checked
///    `DecodeFrom` (util::BufferReader — a truncated or hostile buffer
///    yields a descriptive Status, never an out-of-bounds read).
///  * Deadlines cross the wire as a **relative budget** in
///    microseconds (steady_clock time_points are meaningless in
///    another process): `EncodeTo` converts `deadline - now` at encode
///    time, `DecodeFrom` re-anchors `now + budget` at decode time, so
///    a request spends its queueing and transit time out of its own
///    budget. -1 encodes "no deadline".
///
/// Frame layout (12-byte header + payload + 4-byte trailer):
///
///     magic   'BANP'      4 bytes
///     version uint16      protocol version (kWireVersion)
///     type    uint16      MessageType
///     length  uint32      payload byte count (<= max payload)
///     payload ...         `length` bytes
///     crc32   uint32      util::Crc32 over header + payload
///
/// The decoder (`FrameDecoder`) is an incremental reassembler for
/// non-blocking sockets: feed it arbitrary byte chunks, poll frames
/// out. It validates magic and version from the first 8 bytes and the
/// declared length from the header *before* buffering a payload, so an
/// oversized or garbage length is rejected without allocation; the CRC
/// is verified before a frame is surfaced, so a flipped bit fails
/// loudly instead of decoding garbage. Every failure is a descriptive
/// Status — a hostile peer can never crash or hang the decoder.

namespace ba::serve {

/// First bytes of every frame.
inline constexpr char kWireMagic[4] = {'B', 'A', 'N', 'P'};

/// Protocol version carried in every frame header. Bump when any wire
/// layout below changes; decoders reject other versions loudly.
inline constexpr uint16_t kWireVersion = 1;

/// Default ceiling on a frame's declared payload length. A header
/// claiming more is a protocol error, rejected before any buffering.
inline constexpr uint32_t kMaxWirePayload = 1u << 20;

/// Ceiling on a status message string carried in a response.
inline constexpr uint32_t kMaxWireMessage = 1u << 16;

/// Frame header + CRC trailer sizes (fixed by the layout above).
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kFrameTrailerBytes = 4;

/// \brief What a frame carries. Unknown values decode fine at the
/// frame layer (forward compatibility); the dispatcher answers them
/// with kError.
enum class MessageType : uint16_t {
  kClassifyRequest = 1,
  kClassifyResponse = 2,
  /// Server-to-client: the request could not even be decoded (payload
  /// is a ClassifyResponse with request_id 0 when the id was
  /// unreadable).
  kError = 3,
};

/// \brief Per-request serving options (wire type, version 1).
///
/// Wire layout: i64 deadline budget in microseconds (-1 = none, may be
/// negative = already expired), u8 allow_degraded, i32 priority.
struct ClassifyOptions {
  /// Hard per-request deadline; the epoch default means "none".
  /// Checked at submit, at cache lookup and between batch stages —
  /// an expired request never pays for graph construction.
  std::chrono::steady_clock::time_point deadline{};
  /// Permits labeled non-nominal answers (stale cache / fallback /
  /// fresh-but-late) instead of a DeadlineExceeded or
  /// ResourceExhausted error.
  bool allow_degraded = false;
  /// > 0 bypasses watermark shedding (not the hard in-flight budget).
  int priority = 0;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }

  /// Convenience: a deadline `seconds` from now.
  static ClassifyOptions WithTimeout(double seconds) {
    ClassifyOptions o;
    o.deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
    return o;
  }

  /// Appends the wire encoding, converting the absolute deadline into
  /// a budget relative to `now`.
  void EncodeTo(std::string* out,
                std::chrono::steady_clock::time_point now) const;

  /// Reads the wire encoding, re-anchoring the budget against `now`.
  static Status DecodeFrom(util::BufferReader* in,
                           std::chrono::steady_clock::time_point now,
                           ClassifyOptions* out);
};

/// \brief Outcome of one classification query (wire type, version 1).
///
/// Wire layout: i32 predicted, u8 cache_hit, i32 slices_reused,
/// i32 slices_built, u64 tx_count, u8 degraded, u64 epoch_lag.
struct ClassifyResult {
  int predicted = 0;
  /// Served entirely from cache (no graph/encoder work).
  bool cache_hit = false;
  /// Complete-slice embeddings reused from the cache.
  int slices_reused = 0;
  /// Slices built and embedded for this query.
  int slices_built = 0;
  /// The address's capped transaction count at the epoch this result
  /// was computed against (the micro-batch's pinned snapshot). Lets a
  /// caller racing ledger growth identify which epoch answered it.
  uint64_t tx_count = 0;
  /// True for every non-nominal labeled answer: stale cache, fallback
  /// classifier, or a fresh result delivered past its deadline. Only
  /// possible with `ClassifyOptions::allow_degraded`.
  bool degraded = false;
  /// How far behind the live epoch the answer is: the address's capped
  /// tx count now minus the capped tx count the answer was computed at
  /// (0 for fresh and fallback answers).
  uint64_t epoch_lag = 0;

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(util::BufferReader* in, ClassifyResult* out);
};

/// \brief One classification request as sent over the wire.
///
/// Wire layout: u64 request_id, u64 address, ClassifyOptions fields.
struct ClassifyRequest {
  /// Client-chosen correlation id, echoed verbatim in the response so
  /// a client may pipeline many requests on one connection.
  uint64_t request_id = 0;
  uint64_t address = 0;
  ClassifyOptions options;

  /// The full frame payload for this request.
  std::string EncodePayload(std::chrono::steady_clock::time_point now) const;
  static Status Decode(std::string_view payload,
                       std::chrono::steady_clock::time_point now,
                       ClassifyRequest* out);
};

/// \brief One classification response as sent over the wire.
///
/// Wire layout: u64 request_id, i32 status code, string message
/// (u32 length + bytes, <= kMaxWireMessage), u8 has_result,
/// ClassifyResult fields when has_result.
struct ClassifyResponse {
  uint64_t request_id = 0;
  /// StatusCode of the outcome (kOk carries a result).
  int32_t code = 0;
  std::string message;
  bool has_result = false;
  ClassifyResult result;

  /// Builds a response from an engine outcome.
  static ClassifyResponse From(uint64_t request_id,
                               const Result<ClassifyResult>& outcome);

  /// The outcome this response carries, as the engine would have
  /// returned it in process.
  Result<ClassifyResult> ToResult() const;

  std::string EncodePayload() const;
  static Status Decode(std::string_view payload, ClassifyResponse* out);
};

/// \brief One decoded frame.
struct Frame {
  uint16_t version = kWireVersion;
  MessageType type = MessageType::kError;
  std::string payload;
};

/// \brief Encodes a complete frame (header + payload + CRC trailer).
std::string EncodeFrame(MessageType type, std::string_view payload);

/// \brief Incremental frame reassembler for a byte stream.
///
/// Feed bytes with `Append` as they arrive (any chunking — a slow
/// peer may deliver one byte at a time); extract frames with `Next`.
/// After `Next` returns a non-OK Status the stream is corrupt and the
/// connection should be closed — the decoder stays in the failed
/// state and keeps returning the same error.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxWirePayload)
      : max_payload_(max_payload) {}

  void Append(const char* data, size_t len);
  void Append(std::string_view bytes) { Append(bytes.data(), bytes.size()); }

  /// OK(true): `*out` holds the next frame. OK(false): incomplete —
  /// feed more bytes. Non-OK: the stream is corrupt (bad magic, wrong
  /// version, oversized length, CRC mismatch), described in the
  /// message.
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed by a returned frame.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;
  Status failed_ = Status::OK();
};

}  // namespace ba::serve
