#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/fs.h"
#include "util/status.h"

/// \file protocol.h
/// \brief Versioned, wire-stable serving types and the length-prefixed
/// binary frame protocol that carries them.
///
/// `ClassifyOptions` / `ClassifyResult` started as in-process structs
/// on `InferenceEngine::Classify`; promoting them here makes them the
/// *protocol* surface shared by the engine, the network server
/// (`net::Server`), the client library (`net::Client`) and the loadgen
/// — one definition, one encoding, one version number.
///
/// Encoding rules (all integers little-endian, explicitly sized —
/// never a struct memcpy, so the layout survives compiler/ABI drift):
///
///  * Each type writes its fields in a fixed documented order via
///    `EncodeTo` and reads them back with a bounds-checked
///    `DecodeFrom` (util::BufferReader — a truncated or hostile buffer
///    yields a descriptive Status, never an out-of-bounds read).
///  * Deadlines cross the wire as a **relative budget** in
///    microseconds (steady_clock time_points are meaningless in
///    another process): `EncodeTo` converts `deadline - now` at encode
///    time, `DecodeFrom` re-anchors `now + budget` at decode time, so
///    a request spends its queueing and transit time out of its own
///    budget. -1 encodes "no deadline".
///
/// Frame layout (12-byte header + payload + 4-byte trailer):
///
///     magic   'BANP'      4 bytes
///     version uint16      protocol version (kMinWireVersion..kWireVersion)
///     type    uint16      MessageType
///     length  uint32      payload byte count (<= max payload)
///     payload ...         `length` bytes
///     crc32   uint32      util::Crc32 over header + payload
///
/// Version history. v1 is the PR 7 layout. v2 adds request-scoped
/// trace context: `ClassifyOptions` carries a client-generated 64-bit
/// `trace_id`/`span_id` pair and every `ClassifyResponse` appends the
/// server-side `RequestTimeline` for the request it answers. Decoders
/// accept both versions (a v1 peer keeps classifying against a v2
/// server — it just gets no timeline back); encoders take the version
/// to speak, defaulting to the latest. Payload decoding is strict per
/// version: v1 payloads must not carry the v2 tail and vice versa, so
/// a mislabeled frame fails loudly instead of decoding garbage.
///
/// The decoder (`FrameDecoder`) is an incremental reassembler for
/// non-blocking sockets: feed it arbitrary byte chunks, poll frames
/// out. It validates magic and version from the first 8 bytes and the
/// declared length from the header *before* buffering a payload, so an
/// oversized or garbage length is rejected without allocation; the CRC
/// is verified before a frame is surfaced, so a flipped bit fails
/// loudly instead of decoding garbage. Every failure is a descriptive
/// Status — a hostile peer can never crash or hang the decoder.

namespace ba::serve {

/// First bytes of every frame.
inline constexpr char kWireMagic[4] = {'B', 'A', 'N', 'P'};

/// Protocol version carried in every frame header and spoken by
/// default. Bump when any wire layout below changes; keep the old
/// decode path alive and raise `kMinWireVersion` only when a version
/// is truly retired.
inline constexpr uint16_t kWireVersion = 2;

/// Oldest version decoders still accept. v1 frames (pre trace-context)
/// decode and classify against a v2 server.
inline constexpr uint16_t kMinWireVersion = 1;

/// Default ceiling on a frame's declared payload length. A header
/// claiming more is a protocol error, rejected before any buffering.
inline constexpr uint32_t kMaxWirePayload = 1u << 20;

/// Ceiling on a status message string carried in a response.
inline constexpr uint32_t kMaxWireMessage = 1u << 16;

/// Frame header + CRC trailer sizes (fixed by the layout above).
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kFrameTrailerBytes = 4;

/// \brief What a frame carries. Unknown values decode fine at the
/// frame layer (forward compatibility); the dispatcher answers them
/// with kError.
enum class MessageType : uint16_t {
  kClassifyRequest = 1,
  kClassifyResponse = 2,
  /// Server-to-client: the request could not even be decoded (payload
  /// is a ClassifyResponse with request_id 0 when the id was
  /// unreadable).
  kError = 3,
};

/// \brief How a request ended — the wire-stable outcome label carried
/// in every `RequestTimeline`. Matches the resilience contract's four
/// explicit endings plus kError for injected faults and invalid
/// addresses.
enum class RequestOutcome : uint8_t {
  kOk = 0,        ///< nominal answer
  kShed = 1,      ///< ResourceExhausted from admission control
  kDeadline = 2,  ///< DeadlineExceeded, no degraded answer available
  kDegraded = 3,  ///< labeled degraded answer (stale/fallback/late)
  kError = 4,     ///< anything else (injected fault, unknown address)
};

/// "ok" / "shed" / "deadline" / "degraded" / "error".
const char* RequestOutcomeName(RequestOutcome outcome);

/// \brief How a request interacts with the engine's embedding cache.
/// In-process routing metadata — never encoded on the wire (a remote
/// peer cannot be trusted to classify its own traffic as hot-set).
enum class CacheMode : uint8_t {
  /// Normal: hits refresh LRU recency, computed results are inserted.
  kNormal = 0,
  /// Scan traffic (mixer_hunt-style cold sweeps, as flagged by the
  /// router's per-connection miss-streak detector): lookups still read
  /// the cache but never refresh recency, and computed results update
  /// an existing entry in place without inserting new ones — a full
  /// sweep cannot evict the hot working set.
  kNoPromote = 1,
};

/// \brief Compact per-request timeline: where one request spent its
/// life, stamped by the engine as the request crosses each stage.
///
/// Stamps are nanosecond offsets from submit (the admit decision); -1
/// means the stage was never reached (a shed request has only
/// `deliver_ns`, a full cache hit never builds or aggregates). Present
/// stamps are monotone non-decreasing in stage order. The engine
/// records every finished timeline into its flight recorder and
/// returns it on `ClassifyResult`; v2 responses carry it back over the
/// wire.
///
/// Wire layout: u64 trace_id, u64 span_id, i64 enqueue_ns,
/// i64 batch_join_ns, i64 lookup_ns, i64 build_ns, i64 aggregate_ns,
/// i64 deliver_ns, u8 outcome.
struct RequestTimeline {
  /// Client-generated trace context (0 = untraced request). Rides the
  /// wire in `ClassifyOptions` and is echoed here so the client can
  /// stitch its own span to the server-side flow.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  int64_t enqueue_ns = -1;     ///< pushed onto the engine queue
  int64_t batch_join_ns = -1;  ///< drained into a micro-batch
  int64_t lookup_ns = -1;      ///< cache-lookup stage done
  int64_t build_ns = -1;       ///< build/embed stage done
  int64_t aggregate_ns = -1;   ///< aggregate stage done
  int64_t deliver_ns = -1;     ///< callback about to fire (total latency)
  RequestOutcome outcome = RequestOutcome::kOk;

  /// True when every present (>= 0) stamp is ordered by stage and the
  /// timeline was delivered — the invariant tests assert per request.
  bool Monotone() const;

  /// Single-line JSON object (slowlog / timeline admin output).
  std::string ToJson() const;

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(util::BufferReader* in, RequestTimeline* out);
};

/// \brief Per-request serving options (wire type; trace context is the
/// v2 addition).
///
/// Wire layout: i64 deadline budget in microseconds (-1 = none, may be
/// negative = already expired), u8 allow_degraded, i32 priority;
/// v2 appends u64 trace_id, u64 span_id.
struct ClassifyOptions {
  /// Hard per-request deadline; the epoch default means "none".
  /// Checked at submit, at cache lookup and between batch stages —
  /// an expired request never pays for graph construction.
  std::chrono::steady_clock::time_point deadline{};
  /// Permits labeled non-nominal answers (stale cache / fallback /
  /// fresh-but-late) instead of a DeadlineExceeded or
  /// ResourceExhausted error.
  bool allow_degraded = false;
  /// > 0 bypasses watermark shedding (not the hard in-flight budget).
  int priority = 0;
  /// Client-generated 64-bit trace context (0 = untraced). Propagated
  /// through admission and every batch stage, echoed in the response
  /// timeline, and used as the Perfetto flow id so client, server and
  /// engine extents stitch into one async track.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  /// In-process only (never on the wire): a stable caller identity —
  /// the net server stamps its connection id — that the sharded
  /// router's sweep detector keys per-connection miss streaks on.
  /// 0 = anonymous (no sweep tracking).
  uint64_t client_id = 0;
  /// In-process only (never on the wire): set to kNoPromote by the
  /// router once a client's miss streak marks it as a cold sweep.
  CacheMode cache_mode = CacheMode::kNormal;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }

  /// Convenience: a deadline `seconds` from now.
  static ClassifyOptions WithTimeout(double seconds) {
    ClassifyOptions o;
    o.deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
    return o;
  }

  /// Appends the wire encoding for `version`, converting the absolute
  /// deadline into a budget relative to `now`. v1 omits the trace
  /// context.
  void EncodeTo(std::string* out, std::chrono::steady_clock::time_point now,
                uint16_t version = kWireVersion) const;

  /// Reads the `version` wire encoding, re-anchoring the budget
  /// against `now`. Decoding v1 leaves the trace context zeroed.
  static Status DecodeFrom(util::BufferReader* in,
                           std::chrono::steady_clock::time_point now,
                           ClassifyOptions* out,
                           uint16_t version = kWireVersion);
};

/// \brief Outcome of one classification query (wire type, version 1).
///
/// Wire layout: i32 predicted, u8 cache_hit, i32 slices_reused,
/// i32 slices_built, u64 tx_count, u8 degraded, u64 epoch_lag.
///
/// **Degraded-answer contract** (pinned by
/// resilience_test DegradedResultContract*): every degraded answer
/// sets the same fields the same way no matter which pipeline stage
/// produced it — submit fast path, cache-lookup stage, build-boundary
/// recheck, or delivery:
///
///  * **stale**  (cached prediction from an older epoch):
///    `cache_hit = true`, `tx_count` = the epoch the answer was
///    computed at, `epoch_lag` = live capped count − `tx_count` (> 0),
///    `slices_reused` = the cached entry's slice count.
///  * **fallback** (flat-feature hook): `cache_hit = false`,
///    `tx_count` = the live capped count, `epoch_lag = 0`,
///    `slices_reused = 0`.
///  * **late** (fresh result past its deadline): identical to the
///    nominal result — `tx_count` = the batch epoch, `epoch_lag = 0`,
///    real `slices_reused`/`slices_built` — except `degraded = true`.
struct ClassifyResult {
  int predicted = 0;
  /// Served entirely from cache (no graph/encoder work).
  bool cache_hit = false;
  /// Complete-slice embeddings reused from the cache.
  int slices_reused = 0;
  /// Slices built and embedded for this query.
  int slices_built = 0;
  /// The address's capped transaction count at the epoch this result
  /// was computed against (the micro-batch's pinned snapshot). Lets a
  /// caller racing ledger growth identify which epoch answered it.
  uint64_t tx_count = 0;
  /// True for every non-nominal labeled answer: stale cache, fallback
  /// classifier, or a fresh result delivered past its deadline. Only
  /// possible with `ClassifyOptions::allow_degraded`.
  bool degraded = false;
  /// How far behind the live epoch the answer is: the address's capped
  /// tx count now minus the capped tx count the answer was computed at
  /// (0 for fresh and fallback answers).
  uint64_t epoch_lag = 0;
  /// Where this request spent its life (in-process field — on the wire
  /// the timeline travels once at the `ClassifyResponse` layer, and
  /// the client decode copies it back here).
  RequestTimeline timeline;

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(util::BufferReader* in, ClassifyResult* out);
};

/// \brief One classification request as sent over the wire.
///
/// Wire layout: u64 request_id, u64 address, ClassifyOptions fields.
struct ClassifyRequest {
  /// Client-chosen correlation id, echoed verbatim in the response so
  /// a client may pipeline many requests on one connection.
  uint64_t request_id = 0;
  uint64_t address = 0;
  ClassifyOptions options;

  /// The full frame payload for this request, in the `version` layout.
  std::string EncodePayload(std::chrono::steady_clock::time_point now,
                            uint16_t version = kWireVersion) const;
  /// Strict per-version decode: the dispatcher passes the version the
  /// enclosing frame declared.
  static Status Decode(std::string_view payload,
                       std::chrono::steady_clock::time_point now,
                       ClassifyRequest* out,
                       uint16_t version = kWireVersion);
};

/// \brief One classification response as sent over the wire.
///
/// Wire layout: u64 request_id, i32 status code, string message
/// (u32 length + bytes, <= kMaxWireMessage), u8 has_result,
/// ClassifyResult fields when has_result; v2 appends the
/// RequestTimeline fields — error outcomes (shed, deadline) carry
/// their timeline too, which is how the acceptance invariant "every
/// wire completion yields a timeline matching its outcome" holds for
/// inline sheds.
struct ClassifyResponse {
  uint64_t request_id = 0;
  /// StatusCode of the outcome (kOk carries a result).
  int32_t code = 0;
  std::string message;
  bool has_result = false;
  ClassifyResult result;
  /// Server-side timeline for the request this answers (v2 only on
  /// the wire; all stamps -1 for responses synthesized without one,
  /// e.g. protocol errors). Decode mirrors it into `result.timeline`.
  RequestTimeline timeline;

  /// Builds a response from an engine outcome and its timeline (the
  /// two arguments ClassifyCallback delivers).
  static ClassifyResponse From(uint64_t request_id,
                               const Result<ClassifyResult>& outcome,
                               const RequestTimeline& timeline = {});

  /// The outcome this response carries, as the engine would have
  /// returned it in process.
  Result<ClassifyResult> ToResult() const;

  std::string EncodePayload(uint16_t version = kWireVersion) const;
  static Status Decode(std::string_view payload, ClassifyResponse* out,
                       uint16_t version = kWireVersion);
};

/// \brief One decoded frame.
struct Frame {
  uint16_t version = kWireVersion;
  MessageType type = MessageType::kError;
  std::string payload;
};

/// \brief Encodes a complete frame (header + payload + CRC trailer)
/// declaring `version` — the payload must already be in that version's
/// layout. Tests and legacy peers pass kMinWireVersion.
std::string EncodeFrame(MessageType type, std::string_view payload,
                        uint16_t version = kWireVersion);

/// \brief Incremental frame reassembler for a byte stream.
///
/// Feed bytes with `Append` as they arrive (any chunking — a slow
/// peer may deliver one byte at a time); extract frames with `Next`.
/// After `Next` returns a non-OK Status the stream is corrupt and the
/// connection should be closed — the decoder stays in the failed
/// state and keeps returning the same error.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxWirePayload)
      : max_payload_(max_payload) {}

  void Append(const char* data, size_t len);
  void Append(std::string_view bytes) { Append(bytes.data(), bytes.size()); }

  /// OK(true): `*out` holds the next frame. OK(false): incomplete —
  /// feed more bytes. Non-OK: the stream is corrupt (bad magic, wrong
  /// version, oversized length, CRC mismatch), described in the
  /// message.
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed by a returned frame.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;
  Status failed_ = Status::OK();
};

}  // namespace ba::serve
