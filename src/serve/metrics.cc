#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ba::serve {

double LatencyHistogram::UpperBound(int i) {
  return kFirstUpperBound * std::pow(kGrowth, i);
}

int LatencyHistogram::BucketOf(double seconds) {
  if (seconds <= kFirstUpperBound) return 0;
  const int i = static_cast<int>(
                    std::ceil(std::log(seconds / kFirstUpperBound) /
                              std::log(kGrowth)));
  return std::min(i, kNumBuckets - 1);
}

void LatencyHistogram::Record(double seconds) {
  seconds = std::max(seconds, 0.0);
  buckets_[static_cast<size_t>(BucketOf(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const int64_t nanos = static_cast<int64_t>(seconds * 1e9);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  int64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::Percentile(double p) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[static_cast<size_t>(i)].load(
        std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 *
                                         static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= target) {
      const double upper = UpperBound(i);
      const double lower = i == 0 ? 0.0 : UpperBound(i - 1);
      // Geometric midpoint (arithmetic for the first bucket, whose
      // lower bound is 0).
      const double estimate =
          i == 0 ? upper / 2.0 : std::sqrt(lower * upper);
      // Never report beyond the observed maximum (the top bucket is
      // unbounded).
      const double max_s = static_cast<double>(max_nanos_.load(
                               std::memory_order_relaxed)) *
                           1e-9;
      return std::min(estimate, max_s);
    }
  }
  return static_cast<double>(
             max_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = Count();
  s.total_seconds = TotalSeconds();
  s.mean_seconds =
      s.count == 0 ? 0.0 : s.total_seconds / static_cast<double>(s.count);
  s.p50_seconds = Percentile(50.0);
  s.p95_seconds = Percentile(95.0);
  s.p99_seconds = Percentile(99.0);
  s.max_seconds = static_cast<double>(
                      max_nanos_.load(std::memory_order_relaxed)) *
                  1e-9;
  return s;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3gs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3gms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gus", seconds * 1e6);
  }
  return buf;
}

}  // namespace ba::serve
