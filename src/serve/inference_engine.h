#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/ledger.h"
#include "core/classifier.h"
#include "serve/admission.h"
#include "serve/flight_recorder.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/thread_pool.h"

/// \file inference_engine.h
/// \brief Concurrent serving layer over a trained BaClassifier.
///
/// A monitoring deployment of the paper's system (think: watch every
/// address that touched the mempool this block) issues many small
/// classification queries against a slowly growing ledger, with heavy
/// repetition — the same addresses come back block after block. The
/// engine exploits all three properties:
///
///  * **Micro-batching.** Concurrent Classify() callers enqueue their
///    request; the first caller becomes the batch leader, drains up to
///    `max_batch_size` requests, and fans the expensive graph
///    construction + encoder forward passes out over a shared
///    `util::ThreadPool`. Followers block until the leader fulfills
///    their request (group commit).
///
///  * **Incremental caching.** Results are cached per address, keyed on
///    the length of the address's transaction history (a proxy for
///    ledger height that is exact for that address). Because the ledger
///    is append-only and graph slices are fixed-size chronological
///    chunks, every *complete* slice of a cached history is immutable:
///    a repeat query is answered from cache outright, and a query after
///    the address gained transactions reuses the cached per-slice
///    embeddings and rebuilds only the tail (GraphConstructor::
///    BuildGraphsFrom). The cache persists to disk through the
///    crash-safe AtomicFileWriter, so a killed server restarts warm.
///
///  * **Observability.** Counters, per-stage wall-clock accumulators
///    and latency histograms (p50/p95/p99) are collected into an
///    `InferenceMetricsSnapshot`, printable or JSON-exportable. Each
///    engine also publishes that snapshot as a JSON provider named
///    `serve.engine.<n>` in the process-wide obs::MetricsRegistry, and
///    the batch lifecycle emits trace spans (`serve.request`,
///    `serve.batch` + per-stage children) when tracing is enabled — see
///    DESIGN.md §6.
///
/// Thread-safety contract (snapshot model):
/// Classify/ClassifyBatch/ClassifyAsync/Metrics/SaveCache may be called
/// concurrently
/// from any number of threads, and — new with the epoch layer — the
/// ledger's single writer may grow the chain (NewAddress /
/// ApplyTransaction / SealBlock) at any time with **no external
/// ordering**. Each micro-batch pins a `chain::LedgerSnapshot` when the
/// leader starts processing it; every result in the batch is computed
/// against that pinned epoch, reported in `ClassifyResult::tx_count`.
/// Queries are therefore not linearizable across a concurrent seal — a
/// request racing a seal may be answered from the epoch just before or
/// just after it — but every answer is exactly what a quiesced engine
/// would have produced at some epoch the chain actually passed through
/// between enqueue and completion. The cache needs no notification:
/// keys are snapshot-clamped tx counts, so entries from older epochs
/// are reused only for their immutable complete slices.
///
/// Resilience contract (see DESIGN.md "Overload & failure model"):
/// every request ends in exactly one of four explicit outcomes —
///
///  * **nominal**: the exact answer at the batch's pinned epoch;
///  * **degraded** (`ClassifyResult::degraded`, only with
///    `ClassifyOptions::allow_degraded`): a labeled non-nominal answer —
///    a stale cached prediction at its last pinned epoch
///    (`epoch_lag` > 0), a flat-feature fallback, or a fresh result
///    delivered past its deadline;
///  * **DeadlineExceeded**: the per-request deadline expired and no
///    degraded answer was allowed/available. Deadlines are checked at
///    submit, at cache lookup (before any graph construction) and again
///    at every batch-stage boundary;
///  * **ResourceExhausted**: the `AdmissionController` shed the request
///    in well under a millisecond because the engine is overloaded.
///
/// Nothing hangs, nothing is silently dropped, and every degraded
/// answer is counted (`serve.degraded.*`).

namespace ba::serve {

/// \brief Numeric precision of the engine's embed stage.
enum class Precision {
  kFp32,  ///< the trained model's native path (default)
  kInt8,  ///< quantized node-MLP path — requires a calibrated
          ///< (BaClassifier::Quantize) classifier
};

const char* PrecisionName(Precision p);

/// \brief Engine tunables.
struct InferenceEngineOptions {
  /// Requests the batch leader drains per micro-batch.
  int max_batch_size = 32;
  /// Concurrent batch leaders. With 1 (the default, the historical
  /// behavior) a slow batch serializes every arrival behind it; with
  /// more, a leader that takes a batch while queued work remains hands
  /// off mid-drain — it spawns a fresh leader on the pool before
  /// processing, so arrivals keep draining while the slow batch runs.
  /// The sharded tier defaults each shard to 2.
  int max_batch_leaders = 1;
  /// Embed-stage precision. kInt8 runs the quantized encoder path;
  /// Create() fails when the classifier has not been quantized. Cached
  /// embeddings are precision-specific (the cache file records which
  /// path produced it and refuses a mismatched warm start).
  Precision precision = Precision::kFp32;
  /// Worker threads for graph construction + encoder passes. 0 draws
  /// on the process-wide `util::SharedPool()` instead of creating a
  /// private pool — the right choice when an engine coexists with
  /// training or other engines in one process (no oversubscription).
  int num_threads = 2;
  /// Injected worker pool (non-owning; must outlive the engine). When
  /// set, `num_threads` is ignored and no private pool is created.
  ThreadPool* pool = nullptr;
  /// Maximum cached addresses; least-recently-used entries are evicted
  /// beyond it.
  size_t cache_capacity = 1 << 16;
  /// Cache persistence file. Empty disables persistence; otherwise
  /// Create() warm-starts from an existing file and SaveCache() writes
  /// it atomically.
  std::string cache_path;
  /// Retry policy for SaveCache(). The default (max_attempts = 1)
  /// keeps fail-fast semantics; a multi-attempt policy rides out
  /// transient write failures.
  util::RetryPolicy save_retry;
  /// Enables the AdmissionController: overloaded engines shed requests
  /// fast with ResourceExhausted instead of queueing without bound.
  /// Off by default — an engine without an operator-chosen budget
  /// accepts everything, as before.
  bool enable_admission = false;
  /// Budget and watermarks (used only with enable_admission).
  AdmissionOptions admission;
  /// Optional flat-feature fallback: when a request is shed or past
  /// deadline with `allow_degraded` and no cached answer exists, this
  /// hook supplies a cheap prediction (labeled degraded, epoch_lag 0).
  /// Must be thread-safe; called outside engine locks.
  std::function<int(chain::AddressId)> degraded_fallback;
  /// Flight-recorder capacity: the last N request timelines stay
  /// queryable (admin `slowlog` / `timeline <trace_id>`). Cheap enough
  /// to leave on (see flight_recorder.h); 0 disables recording.
  size_t flight_recorder_capacity = 1024;
  /// Requests whose total latency reaches this many seconds are copied
  /// into a separate slow ring and logged as one structured
  /// `BA_LOG(Warn, serve.slowlog)` line. 0 disables slow-request
  /// capture (the main recorder still records everything).
  double slow_request_threshold = 0.0;

  /// \brief Returns OK when every field is usable, or a descriptive
  /// InvalidArgument naming the offending field and value.
  Status Validate() const;
};

// ClassifyOptions / ClassifyResult moved to serve/protocol.h (the
// versioned wire-stable protocol surface shared with the network
// layer); including it here keeps every existing caller compiling
// unchanged.

/// \brief Completion hook of `ClassifyAsync`. Invoked exactly once per
/// submitted request — either synchronously on the submitting thread
/// (fast-path rejections: unknown address, shed, deadline expired at
/// submit) or later on an engine worker thread. The second argument is
/// the request's timeline — identical to `result.timeline` on ok
/// outcomes, and the only way to observe the timeline of an error
/// outcome (a Status cannot carry one); its `outcome` field always
/// matches the delivered result. The callback must not block and must
/// not call the engine's *blocking* methods (Classify / ClassifyBatch
/// / ~InferenceEngine) — it runs on the thread that drains batches, so
/// blocking there deadlocks the engine.
using ClassifyCallback =
    std::function<void(Result<ClassifyResult>, const RequestTimeline&)>;

/// \brief Point-in-time view of every engine metric.
struct InferenceMetricsSnapshot {
  uint64_t requests = 0;
  uint64_t full_hits = 0;     ///< answered from cache outright
  uint64_t partial_hits = 0;  ///< tail rebuilt, prefix reused
  uint64_t misses = 0;
  /// Batch-duplicate requests folded onto another request's work.
  uint64_t coalesced = 0;
  uint64_t empty_history = 0;  ///< addresses with no transactions
  uint64_t batches = 0;
  uint64_t slices_built = 0;
  uint64_t slices_reused = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_evictions = 0;
  uint64_t pool_backlog = 0;  ///< thread-pool tasks in flight now
  uint64_t queue_depth = 0;   ///< requests enqueued, not yet in a batch
  uint64_t shed = 0;          ///< rejected by admission control
  uint64_t deadline_exceeded = 0;  ///< rejected on an expired deadline
  uint64_t degraded_stale = 0;     ///< answered from a stale cache entry
  uint64_t degraded_fallback = 0;  ///< answered by the fallback hook
  uint64_t degraded_late = 0;      ///< fresh result past its deadline
  /// Requests at or past `slow_request_threshold` (0 when disabled).
  uint64_t slow_requests = 0;
  /// Admission state name ("accepting"/"shedding"/"recovering"), or
  /// "disabled" when admission control is off.
  std::string admission_state;
  /// (full + partial + coalesced) / (requests - empty_history), 0 when
  /// undefined.
  double hit_rate = 0.0;
  double build_seconds = 0.0;      ///< graph construction (all workers)
  double embed_seconds = 0.0;      ///< tensor prep + encoder forward
  double aggregate_seconds = 0.0;  ///< scaler + LSTM head + cache write
  HistogramSnapshot request_latency;
  HistogramSnapshot batch_latency;

  /// Multi-line human-readable rendering (monitoring loops print this).
  std::string ToString() const;
  /// Single JSON object (same fields; histograms flattened).
  std::string ToJson() const;
};

/// \brief Abstract serving surface shared by the single
/// `InferenceEngine` and the sharded tier (`serve::ShardedEngine`).
/// `net::Server`, the daemon and the monitoring tools program against
/// this interface, so swapping one engine for N behind a router
/// changes none of them — the wire protocol, admin commands and
/// metrics JSON all keep their shapes.
class Engine {
 public:
  virtual ~Engine() = default;

  /// See InferenceEngine::ClassifyAsync for the full contract.
  virtual void ClassifyAsync(chain::AddressId address,
                             const ClassifyOptions& options,
                             ClassifyCallback done) = 0;

  /// Blocking single-address classification.
  virtual Result<ClassifyResult> Classify(
      chain::AddressId address, const ClassifyOptions& options = {}) = 0;

  /// Blocking multi-address classification; results align with input.
  virtual std::vector<Result<ClassifyResult>> ClassifyBatch(
      const std::vector<chain::AddressId>& addresses,
      const ClassifyOptions& options = {}) = 0;

  /// Persists the embedding cache (no-op OK when disabled).
  virtual Status SaveCache() const = 0;

  /// Entries currently cached (summed across shards).
  virtual size_t CacheSize() const = 0;

  /// Drops every cached entry (metrics keep counting).
  virtual void ClearCache() = 0;

  /// Point-in-time metrics (aggregated across shards).
  virtual InferenceMetricsSnapshot Metrics() const = 0;

  /// The admin `slowlog` payload: one JSON object
  /// {"threshold_seconds":…,"slow":[…],"recent":[…]} with up to
  /// `max_entries` timelines per ring (merged across shards).
  virtual std::string SlowlogJson(size_t max_entries) const = 0;

  /// The most recent recorded timeline carrying `trace_id`, searching
  /// the flight and slow rings (of every shard), or nullopt.
  virtual std::optional<FlightRecorder::Entry> FindTimeline(
      uint64_t trace_id) const = 0;

  /// A client (`ClassifyOptions::client_id`) went away — the net
  /// server calls this on connection close. Default no-op; the sharded
  /// tier drops the client's sweep-detector state so a recycled
  /// connection id never inherits a stale miss streak.
  virtual void ForgetClient(uint64_t client_id) { (void)client_id; }
};

/// \brief Batched, cached, instrumented classification server.
class InferenceEngine : public Engine {
 public:
  using Options = InferenceEngineOptions;

  /// Fault points of the cache-persist path (see util::FaultInjector):
  /// armed, SaveCache/warm-start fail before touching the filesystem —
  /// on top of the fs.* points inside AtomicFileWriter.
  static constexpr const char* kFaultCacheSave = "serve.cache.save";
  static constexpr const char* kFaultCacheLoad = "serve.cache.load";
  /// Batch-pipeline fault points, each consulted once per micro-batch
  /// at its stage boundary. A firing point fails every request still
  /// undecided in the batch with an explicit injected Internal error
  /// (never a hang or a wrong answer); ArmLatency on one stalls the
  /// stage, which is how chaos tests force deadlines to expire between
  /// stages.
  static constexpr const char* kFaultBatchLookup = "serve.batch.lookup";
  static constexpr const char* kFaultBatchBuild = "serve.batch.build";
  static constexpr const char* kFaultBatchAggregate =
      "serve.batch.aggregate";

  /// \brief Validating factory. Fails on null/untrained classifier,
  /// invalid engine or classifier options, or (when `cache_path` names
  /// an existing file) a cache file that is corrupt or was built under
  /// different model options. `classifier` and `ledger` must outlive
  /// the engine.
  static Result<std::unique_ptr<InferenceEngine>> Create(
      const core::BaClassifier* classifier, const chain::Ledger* ledger,
      Options options);

  /// Blocks until every in-flight request has completed and its
  /// callback returned — an engine is never destroyed out from under a
  /// pending `ClassifyAsync`.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// \brief Classifies one address, delivering the outcome to `done`
  /// (see ClassifyCallback for the invocation contract). This is the
  /// primitive the network server drives — one epoll thread keeps
  /// thousands of requests in flight without burning a thread per
  /// request — and the blocking Classify/ClassifyBatch are thin
  /// wrappers over it. Micro-batching, caching, deadlines, admission
  /// and degraded answers behave exactly as documented on Classify.
  void ClassifyAsync(chain::AddressId address, const ClassifyOptions& options,
                     ClassifyCallback done) override;

  /// \brief Classifies one address (blocking). Thread-safe; concurrent
  /// callers are micro-batched. An address with no transactions
  /// predicts class 0 without touching the models. With a deadline or
  /// under overload the call can instead return DeadlineExceeded /
  /// ResourceExhausted, or a labeled degraded answer when
  /// `options.allow_degraded` permits one (see the resilience contract
  /// above). Implemented as a wrapper over ClassifyAsync; the calling
  /// thread becomes the batch leader when none is active, so blocking
  /// callers keep their pre-async latency profile.
  Result<ClassifyResult> Classify(chain::AddressId address,
                                  const ClassifyOptions& options = {}) override;

  /// \brief Classifies many addresses through the same batching path
  /// (the whole list is enqueued before processing starts, so a single
  /// caller still gets batched execution). Results align with input;
  /// `options` applies to every request in the list.
  std::vector<Result<ClassifyResult>> ClassifyBatch(
      const std::vector<chain::AddressId>& addresses,
      const ClassifyOptions& options = {}) override;

  /// \brief Persists the cache to `options().cache_path` atomically
  /// (no-op OK when persistence is disabled). Safe to call while
  /// queries run.
  Status SaveCache() const override;

  /// Entries currently cached.
  size_t CacheSize() const override;

  /// Drops every cached entry (metrics keep counting).
  void ClearCache() override;

  InferenceMetricsSnapshot Metrics() const override;

  std::string SlowlogJson(size_t max_entries) const override;

  std::optional<FlightRecorder::Entry> FindTimeline(
      uint64_t trace_id) const override;

  /// The admission controller, or nullptr when `enable_admission` is
  /// off (monitoring loops report its state).
  const AdmissionController* admission() const { return admission_.get(); }

  /// Ring of the last `flight_recorder_capacity` request timelines —
  /// every outcome, including sheds and deadline rejections. nullptr
  /// when the capacity option is 0.
  const FlightRecorder* flight_recorder() const { return recorder_.get(); }

  /// Ring of requests that crossed `slow_request_threshold`. nullptr
  /// when slow capture is disabled (threshold 0 or no recorder).
  const FlightRecorder* slow_recorder() const {
    return slow_recorder_.get();
  }

  const Options& options() const { return options_; }

 private:
  struct CacheEntry {
    /// Transaction-history length the entry was computed at (after the
    /// max_txs_per_address cap).
    uint64_t tx_count = 0;
    /// Per-slice graph embeddings, unscaled, in chronological slice
    /// order (embed_dim floats each). The first tx_count/slice_size of
    /// them cover complete — hence immutable — slices.
    std::vector<std::vector<float>> slice_embeddings;
    int predicted = 0;
    uint64_t last_used = 0;  ///< LRU tick
  };

  /// One in-flight request. Heap-allocated at submit, owned by the
  /// engine until its callback fires (async callers hold nothing).
  struct Request {
    chain::AddressId address = chain::kInvalidAddress;
    std::chrono::steady_clock::time_point deadline{};
    bool allow_degraded = false;
    /// kNoPromote for router-flagged sweep traffic: lookups skip the
    /// LRU touch and results never insert new cache entries.
    CacheMode cache_mode = CacheMode::kNormal;
    ClassifyResult result;
    /// Non-OK when the request ended in an explicit error outcome
    /// (DeadlineExceeded, injected Internal) instead of a result.
    Status status;
    /// Completion hook; consumes the request.
    ClassifyCallback done;
    /// True when this request holds an admission slot to release.
    bool admitted = false;
    /// Submit time, for the request-latency histogram, trace span and
    /// the timeline's stamp origin.
    std::chrono::steady_clock::time_point submitted{};
    /// Stage stamps accumulated as the request crosses the pipeline
    /// (offsets from `submitted`; trace context copied from options).
    RequestTimeline tl;

    bool has_deadline() const {
      return deadline != std::chrono::steady_clock::time_point{};
    }
    bool expired(std::chrono::steady_clock::time_point now) const {
      return has_deadline() && now >= deadline;
    }
    int64_t SinceSubmitNs(std::chrono::steady_clock::time_point now) const {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 now - submitted)
          .count();
    }
  };

  InferenceEngine(const core::BaClassifier* classifier,
                  const chain::Ledger* ledger, Options options);

  /// Submit-side fast paths (validation, admission, expired-at-submit).
  /// Returns a heap request ready to enqueue, or nullptr after
  /// delivering the early outcome to `done`.
  Request* MakeRequest(chain::AddressId address,
                       const ClassifyOptions& options,
                       ClassifyCallback done);

  /// Pushes prepared requests onto the queue in one critical section
  /// (a multi-request submit is batched as a unit) and ensures a
  /// leader is running: dispatched to the worker pool when
  /// `inline_leader` is false (async submit — the caller must not
  /// block), run on the calling thread when true and no leader is
  /// active (blocking submit — keeps the pre-async latency profile and
  /// stays deadlock-free when the caller *is* a pool worker).
  void Enqueue(const std::vector<Request*>& requests, bool inline_leader);

  /// Completes one request: releases its admission slot, records
  /// request metrics, fires the callback and frees it.
  void FinishRequest(Request* req);

  /// Leader loop: drains the queue in micro-batches until empty.
  /// Entered and left with `queue_mu_` held; callbacks fire with the
  /// lock released.
  void RunLeader(std::unique_lock<std::mutex>* lock);

  /// Executes one micro-batch (no queue lock held).
  void ProcessBatch(const std::vector<Request*>& batch);

  /// Capped chronological tx count of `address` at the pinned epoch —
  /// the cache key.
  uint64_t TxCountOf(const chain::LedgerSnapshot& snapshot,
                     chain::AddressId address) const;

  /// Inserts/overwrites the entry and evicts past capacity. With
  /// `no_promote` an existing entry is refreshed in place (recency
  /// untouched) and a new address is not inserted at all — sweep
  /// traffic cannot trigger eviction. Candidate ordering for an
  /// eviction sweep runs outside `cache_mu_` so concurrent lookups
  /// never stall behind the O(size) scan's nth_element. Caller must
  /// not hold `cache_mu_`.
  void StoreEntry(chain::AddressId address, CacheEntry entry,
                  bool no_promote);

  Status LoadCacheFile(const std::string& path);

  /// One save attempt (SaveCache wraps this in `options().save_retry`).
  Status SaveCacheOnce() const;

  /// Best labeled answer for a request that cannot run the nominal
  /// path (shed, or past deadline before any work): a stale cached
  /// prediction, the fallback hook, or — when neither exists — `why`
  /// verbatim. An exact-epoch cache hit comes back non-degraded.
  Result<ClassifyResult> TryDegradedAnswer(chain::AddressId address,
                                           const Status& why,
                                           CacheMode cache_mode);

  /// Completes a submit-side fast path (shed, expired-at-submit,
  /// unknown address) with a timeline: deliver stamp, outcome label,
  /// flight-recorder entry, then the callback. Mirrors FinishRequest
  /// for requests that never got a heap Request.
  void DeliverEarly(chain::AddressId address,
                    std::chrono::steady_clock::time_point submit,
                    const ClassifyOptions& options,
                    Result<ClassifyResult> outcome,
                    const ClassifyCallback& done);

  /// Delivery-side bookkeeping shared by FinishRequest and
  /// DeliverEarly: flight recorder, slow-ring + slowlog line, Perfetto
  /// flow event.
  void RecordDelivery(chain::AddressId address, const RequestTimeline& tl);

  /// Live backlog signal for admission: enqueued requests plus pool
  /// tasks in flight.
  int64_t Backlog() const {
    return queue_depth_.load(std::memory_order_relaxed) +
           static_cast<int64_t>(pool_->in_flight());
  }

  const core::BaClassifier* classifier_;
  const chain::Ledger* ledger_;
  Options options_;
  int slice_size_;
  int k_hops_;
  int64_t embed_dim_;
  /// Set only when the engine owns a private pool (num_threads >= 1
  /// and no injected pool); declared before pool_ so pool_ can alias it.
  std::unique_ptr<ThreadPool> owned_pool_;
  /// The pool work actually runs on: injected, shared, or owned_pool_.
  ThreadPool* pool_;

  mutable std::mutex cache_mu_;
  std::unordered_map<chain::AddressId, CacheEntry> cache_;
  uint64_t lru_tick_ = 0;

  std::mutex queue_mu_;
  /// Signals queue-drained (destructor) and leader handoff.
  std::condition_variable done_cv_;
  std::deque<Request*> queue_;
  /// Leaders currently draining (<= options_.max_batch_leaders).
  int active_leaders_ = 0;
  /// Requests submitted but not yet finished (callback not returned) —
  /// the destructor drains this to zero before tearing down.
  int64_t inflight_requests_ = 0;
  /// Mirrors queue_.size() without the lock — the admission backlog
  /// signal must be readable in nanoseconds from any thread.
  std::atomic<int64_t> queue_depth_{0};

  /// Set only with options_.enable_admission.
  std::unique_ptr<AdmissionController> admission_;

  /// Last-N timeline ring (null when flight_recorder_capacity is 0).
  std::unique_ptr<FlightRecorder> recorder_;
  /// Timelines at or past the slow threshold (null when disabled).
  std::unique_ptr<FlightRecorder> slow_recorder_;
  /// options_.slow_request_threshold in nanoseconds (0 = disabled).
  int64_t slow_threshold_ns_ = 0;

  struct Stats {
    Counter requests;
    Counter full_hits;
    Counter partial_hits;
    Counter misses;
    Counter coalesced;
    Counter empty_history;
    Counter batches;
    Counter slices_built;
    Counter slices_reused;
    Counter evictions;
    Counter shed;
    Counter deadline_exceeded;
    Counter degraded_stale;
    Counter degraded_fallback;
    Counter degraded_late;
    Counter slow_requests;
    TimeAccumulator build_seconds;
    TimeAccumulator embed_seconds;
    TimeAccumulator aggregate_seconds;
    LatencyHistogram request_latency;
    LatencyHistogram batch_latency;
  };
  mutable Stats stats_;

  /// Name this engine's snapshot provider is registered under in
  /// obs::MetricsRegistry ("serve.engine.<n>", unique per process).
  std::string registry_provider_name_;
  /// Registry gauges mirroring live load — "serve.engine.<n>.
  /// pool_backlog" / ".queue_depth" — refreshed per batch and on every
  /// Metrics() scrape.
  Gauge* backlog_gauge_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;
};

}  // namespace ba::serve
