#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "util/status.h"

/// \file admission.h
/// \brief Bounded-budget admission control with watermark shedding and
/// token-bucket recovery.
///
/// An overloaded engine that accepts every request converts overload
/// into unbounded queueing: every caller — including the ones that
/// arrived before the spike — waits behind the backlog, and p99 latency
/// grows without bound. The controller turns that failure mode into an
/// explicit, cheap rejection (`ResourceExhausted` in well under a
/// millisecond) so callers can retry, degrade, or route elsewhere while
/// the admitted work keeps its latency profile.
///
/// Three-state machine, driven by the caller-supplied backlog signal
/// (for the inference engine: queued requests + thread-pool tasks in
/// flight — the live generalization of the snapshot-only
/// `pool_backlog` metric):
///
///   kAccepting --backlog >= high_watermark--> kShedding
///   kShedding  --backlog <= low_watermark--> kRecovering
///   kRecovering --bucket full && backlog low--> kAccepting
///   kRecovering --backlog >= high_watermark--> kShedding
///
/// While kShedding every normal-priority request is rejected fast.
/// While kRecovering a token bucket (`recovery_rate` tokens/s, capacity
/// `recovery_burst`) meters requests back in gradually, so a backlog
/// that only just drained is not immediately re-buried by the thundering
/// herd that piled up behind the shed. Requests with `priority > 0`
/// bypass watermark shedding entirely but still respect the hard
/// `max_inflight` budget — the one limit that protects memory.
///
/// Thread-safe; decisions take one short mutex hold. Process-wide
/// instruments: gauge `serve.admission.inflight`, counters
/// `serve.admission.admitted` / `serve.admission.shed`.

namespace ba::serve {

/// \brief Admission tunables. Value-semantic; embeddable in Options.
struct AdmissionOptions {
  /// Hard cap on concurrently admitted (not yet released) requests.
  int64_t max_inflight = 256;
  /// Backlog at or above which normal-priority admission stops.
  int64_t high_watermark = 128;
  /// Backlog at or below which a shedding controller starts recovering.
  int64_t low_watermark = 32;
  /// Token-bucket refill rate (admissions per second) while recovering.
  double recovery_rate = 200.0;
  /// Token-bucket capacity; recovery ends (full acceptance resumes)
  /// once the bucket refills completely with the backlog still low.
  int64_t recovery_burst = 16;

  /// \brief OK when every field is usable, or a descriptive
  /// InvalidArgument naming the offending field.
  Status Validate() const;
};

/// \brief The watermark/token-bucket admission state machine.
class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State { kAccepting, kShedding, kRecovering };

  /// Human-readable state name ("accepting", "shedding", "recovering").
  static const char* StateName(State state);

  /// `options` must already Validate() OK (the engine validates its
  /// embedded copy); an invalid policy aborts.
  explicit AdmissionController(AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// \brief Decides one request now. OK admits (pair with `Release()`
  /// when the request completes); ResourceExhausted sheds, naming the
  /// reason (budget vs. overload). `backlog` is the caller's live load
  /// signal; `priority > 0` bypasses watermark shedding.
  Status Admit(int64_t backlog, int priority = 0);

  /// Admit with an injected clock — the testable core.
  Status AdmitAt(Clock::time_point now, int64_t backlog, int priority);

  /// Releases one admitted request. Every OK Admit must be released
  /// exactly once.
  void Release();

  State state() const;
  int64_t inflight() const;
  uint64_t admitted() const;
  uint64_t shed() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  const AdmissionOptions options_;

  mutable std::mutex mu_;
  State state_ = State::kAccepting;
  int64_t inflight_ = 0;
  double tokens_ = 0.0;
  Clock::time_point last_refill_{};
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
};

}  // namespace ba::serve
