#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chain/ledger.h"
#include "serve/protocol.h"

/// \file router.h
/// \brief Address-space partitioning and sweep detection for the
/// sharded serving tier (serve::ShardedEngine).
///
/// **ShardRouter** — a consistent-hash ring over the address space.
/// Each shard owns `vnodes_per_shard` points on a 64-bit ring
/// (splitmix64 of shard ordinal × vnode ordinal); an address maps to
/// the shard owning the first ring point at or after its hash. Two
/// properties matter for the serving tier:
///
///  * **Determinism.** The mapping is a pure function of
///    (num_shards, vnodes_per_shard, address), so a restarted router
///    sends every address back to the shard whose persisted cache
///    already holds its embeddings.
///  * **Balance.** With 64 vnodes per shard the largest shard's
///    expected share is within a few percent of 1/N, so per-shard
///    caches and leaders load evenly without a rebalancing protocol.
///
/// **SweepDetector** — per-client cold-sweep classification. A
/// monitoring client polls a stable working set and hits the cache
/// almost every query; a mixer_hunt-style scan walks the whole address
/// space and misses almost every query. The detector keeps one miss
/// streak per `ClassifyOptions::client_id` (the net server stamps its
/// connection id): a full or partial cache hit resets the streak, a
/// computed-from-scratch result extends it, and once the streak
/// reaches `miss_streak_threshold` the client is marked *sweeping* —
/// the router then stamps its requests `CacheMode::kNoPromote` so the
/// scan reads the cache but can no longer evict the hot working set.
/// Unmarking is deliberately sticky (a run of consecutive hits, not
/// one), and a client that was marked before re-marks on a much
/// shorter streak — see Observe.

namespace ba::serve {

/// \brief Deterministic consistent-hash ring: address -> shard.
class ShardRouter {
 public:
  /// `num_shards` >= 1; `vnodes_per_shard` >= 1 (64 gives a few
  /// percent balance — see file comment).
  ShardRouter(uint32_t num_shards, uint32_t vnodes_per_shard = 64);

  /// The shard owning `address` (in [0, num_shards)).
  uint32_t ShardOf(chain::AddressId address) const;

  uint32_t num_shards() const { return num_shards_; }

 private:
  uint32_t num_shards_;
  /// Ring points sorted by hash; .second is the owning shard.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

/// \brief Per-client miss-streak tracking (thread-safe).
class SweepDetector {
 public:
  /// Consecutive computed-from-scratch results before a client is
  /// classified as sweeping. `threshold` < 1 disables detection
  /// entirely (every client stays kNormal).
  explicit SweepDetector(int threshold);

  /// Cache mode for the next request of `client_id` (kNoPromote once
  /// the client is marked sweeping; anonymous clients — id 0 — are
  /// never tracked).
  CacheMode ModeFor(uint64_t client_id) const;

  /// Feeds one completed request back: `reused_cache` is true when the
  /// answer reused any cached state (full or partial hit, coalesced,
  /// stale). Errors and empty-history answers should not be reported.
  void Observe(uint64_t client_id, bool reused_cache);

  /// Drops a departed client's state (the net server calls this on
  /// connection close so ids recycled by a long-lived process never
  /// inherit a stale streak).
  void Forget(uint64_t client_id);

  /// Clients currently classified as sweeping.
  uint64_t sweeping_clients() const;

 private:
  struct ClientState {
    int streak = 0;      ///< consecutive computed-from-scratch answers
    int hit_streak = 0;  ///< consecutive reuses while marked sweeping
    bool sweeping = false;
    /// Marked at least once: re-marking then needs only a quarter of
    /// the threshold (min 2) — a scanner wrapping over its own few
    /// cached entries must not buy the full insertion budget again.
    bool ever_swept = false;
  };

  /// Consecutive cache reuses required to clear an active sweeping
  /// mark (see Observe for why one hit is not enough).
  static constexpr int kUnmarkHitRun = 4;

  /// Ceiling on tracked clients: past it, new clients are not tracked
  /// (they stay kNormal) instead of growing the map without bound.
  static constexpr size_t kMaxClients = 1 << 16;

  const int threshold_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, ClientState> clients_;
};

}  // namespace ba::serve
