#include "serve/inference_engine.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/gfn_features.h"
#include "core/graph_builder.h"
#include "obs/trace.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace ba::serve {
namespace {

constexpr char kCacheMagic[4] = {'B', 'A', 'S', 'V'};
/// v2 added the precision byte: fp32 and int8 embeddings differ, so a
/// cache built under one path must not warm-start an engine on the
/// other. v1 files are rejected (a cold start, not data loss).
constexpr uint32_t kCacheVersion = 2;
/// Ceiling on per-entry slice counts accepted from a cache file, so a
/// corrupted length can never drive a huge allocation.
constexpr uint32_t kMaxSlicesPerEntry = 1u << 20;

template <typename T>
void AppendPod(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Process-wide degraded-answer counters (serve.degraded.*), shared by
/// every engine in the process; each engine also keeps local copies in
/// its Stats for the per-engine snapshot.
obs::Counter* DegradedStaleCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Instance().GetCounter("serve.degraded.stale");
  return c;
}

obs::Counter* DegradedFallbackCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Instance().GetCounter("serve.degraded.fallback");
  return c;
}

obs::Counter* DegradedLateCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Instance().GetCounter("serve.degraded.late");
  return c;
}

/// Process-wide slow-request counter, shared by every engine; each
/// engine also keeps a local copy for its per-engine snapshot.
obs::Counter* SlowRequestCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Instance().GetCounter("serve.slow_requests");
  return c;
}

/// Timeline outcome label of a non-OK delivery. Derived from the
/// Status actually handed to the callback, so the recorded outcome
/// matches the wire response by construction.
RequestOutcome OutcomeOfStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      return RequestOutcome::kShed;
    case StatusCode::kDeadlineExceeded:
      return RequestOutcome::kDeadline;
    default:
      return RequestOutcome::kError;
  }
}

using SteadyClock = std::chrono::steady_clock;

}  // namespace

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kInt8:
      return "int8";
  }
  return "unknown";
}

Status InferenceEngineOptions::Validate() const {
  if (max_batch_size < 1) {
    return Status::InvalidArgument(
        "InferenceEngineOptions.max_batch_size must be >= 1, got " +
        std::to_string(max_batch_size));
  }
  if (max_batch_leaders < 1) {
    return Status::InvalidArgument(
        "InferenceEngineOptions.max_batch_leaders must be >= 1, got " +
        std::to_string(max_batch_leaders));
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "InferenceEngineOptions.num_threads must be >= 0 (0 = shared "
        "pool), got " +
        std::to_string(num_threads));
  }
  if (cache_capacity < 1) {
    return Status::InvalidArgument(
        "InferenceEngineOptions.cache_capacity must be >= 1, got 0");
  }
  if (!(slow_request_threshold >= 0.0)) {
    return Status::InvalidArgument(
        "InferenceEngineOptions.slow_request_threshold must be >= 0, got " +
        std::to_string(slow_request_threshold));
  }
  BA_RETURN_NOT_OK(save_retry.Validate());
  if (enable_admission) BA_RETURN_NOT_OK(admission.Validate());
  return Status::OK();
}

Result<std::unique_ptr<InferenceEngine>> InferenceEngine::Create(
    const core::BaClassifier* classifier, const chain::Ledger* ledger,
    Options options) {
  if (classifier == nullptr) {
    return Status::InvalidArgument("InferenceEngine: classifier is null");
  }
  if (ledger == nullptr) {
    return Status::InvalidArgument("InferenceEngine: ledger is null");
  }
  BA_RETURN_NOT_OK(options.Validate());
  BA_RETURN_NOT_OK(classifier->options().Validate());
  if (!classifier->trained()) {
    return Status::FailedPrecondition(
        "InferenceEngine: classifier is untrained; Train() or "
        "FromCheckpoint() first");
  }
  if (options.precision == Precision::kInt8 && !classifier->quantized()) {
    return Status::FailedPrecondition(
        "InferenceEngine: precision=int8 but the classifier has no "
        "quantized encoder; call BaClassifier::Quantize() first");
  }
  std::unique_ptr<InferenceEngine> engine(
      new InferenceEngine(classifier, ledger, std::move(options)));
  if (!engine->options_.cache_path.empty() &&
      util::FileExists(engine->options_.cache_path)) {
    BA_RETURN_NOT_OK(engine->LoadCacheFile(engine->options_.cache_path));
  }
  return engine;
}

InferenceEngine::InferenceEngine(const core::BaClassifier* classifier,
                                 const chain::Ledger* ledger, Options options)
    : classifier_(classifier),
      ledger_(ledger),
      options_(std::move(options)),
      slice_size_(classifier->options().dataset.construction.slice_size),
      k_hops_(classifier->options().dataset.k_hops),
      embed_dim_(classifier->graph_model().embed_dim()),
      owned_pool_(options_.pool == nullptr && options_.num_threads >= 1
                      ? std::make_unique<ThreadPool>(
                            static_cast<size_t>(options_.num_threads))
                      : nullptr),
      pool_(options_.pool != nullptr  ? options_.pool
            : owned_pool_ != nullptr ? owned_pool_.get()
                                     : &util::SharedPool()) {
  // Unique per process so several engines (tests, A/B deployments) can
  // coexist in one registry scrape.
  static std::atomic<uint64_t> next_engine_id{0};
  registry_provider_name_ =
      "serve.engine." + std::to_string(next_engine_id.fetch_add(1));
  obs::MetricsRegistry::Instance().RegisterProvider(
      registry_provider_name_, [this] { return Metrics().ToJson(); });
  backlog_gauge_ = obs::MetricsRegistry::Instance().GetGauge(
      registry_provider_name_ + ".pool_backlog");
  queue_depth_gauge_ = obs::MetricsRegistry::Instance().GetGauge(
      registry_provider_name_ + ".queue_depth");
  if (options_.enable_admission) {
    admission_ = std::make_unique<AdmissionController>(options_.admission);
  }
  if (options_.flight_recorder_capacity > 0) {
    recorder_ =
        std::make_unique<FlightRecorder>(options_.flight_recorder_capacity);
    if (options_.slow_request_threshold > 0) {
      slow_recorder_ = std::make_unique<FlightRecorder>(
          options_.flight_recorder_capacity);
      slow_threshold_ns_ =
          static_cast<int64_t>(options_.slow_request_threshold * 1e9);
    }
  }
}

InferenceEngine::~InferenceEngine() {
  // First thing: a concurrent scrape must not run the provider while
  // the engine tears down under it.
  obs::MetricsRegistry::Instance().UnregisterProvider(
      registry_provider_name_);
  // Drain: async callers hold no handle to wait on — the engine owns
  // every in-flight request, so teardown blocks until the last
  // callback has returned.
  std::unique_lock<std::mutex> lock(queue_mu_);
  done_cv_.wait(lock, [this] {
    return queue_.empty() && active_leaders_ == 0 && inflight_requests_ == 0;
  });
}

uint64_t InferenceEngine::TxCountOf(const chain::LedgerSnapshot& snapshot,
                                    chain::AddressId address) const {
  const size_t total = snapshot.TxCountOf(address);
  const size_t cap = static_cast<size_t>(
      classifier_->options().dataset.construction.max_txs_per_address);
  return static_cast<uint64_t>(std::min(total, cap));
}

Result<ClassifyResult> InferenceEngine::TryDegradedAnswer(
    chain::AddressId address, const Status& why, CacheMode cache_mode) {
  const chain::LedgerSnapshot snapshot = ledger_->Snapshot();
  const uint64_t n = TxCountOf(snapshot, address);
  if (n == 0) {
    // The empty-history answer is free and exact — no need to degrade.
    ClassifyResult r;
    r.predicted = 0;
    r.tx_count = 0;
    stats_.empty_history.Increment();
    return r;
  }
  {
    std::unique_lock<std::mutex> lock(cache_mu_);
    auto it = cache_.find(address);
    if (it != cache_.end() && it->second.tx_count <= n) {
      if (cache_mode != CacheMode::kNoPromote) {
        it->second.last_used = ++lru_tick_;
      }
      ClassifyResult r;
      r.predicted = it->second.predicted;
      r.cache_hit = true;
      r.tx_count = it->second.tx_count;
      r.slices_reused =
          static_cast<int>(it->second.slice_embeddings.size());
      r.epoch_lag = n - it->second.tx_count;
      r.degraded = r.epoch_lag > 0;
      if (r.degraded) {
        stats_.degraded_stale.Increment();
        DegradedStaleCounter()->Increment();
      } else {
        stats_.full_hits.Increment();
      }
      return r;
    }
  }
  if (options_.degraded_fallback) {
    ClassifyResult r;
    r.predicted = options_.degraded_fallback(address);
    r.tx_count = n;
    r.degraded = true;
    r.epoch_lag = 0;
    stats_.degraded_fallback.Increment();
    DegradedFallbackCounter()->Increment();
    return r;
  }
  return why;
}

InferenceEngine::Request* InferenceEngine::MakeRequest(
    chain::AddressId address, const ClassifyOptions& options,
    ClassifyCallback done) {
  const auto submit = SteadyClock::now();
  if (static_cast<size_t>(address) >= ledger_->num_addresses()) {
    DeliverEarly(address, submit, options,
                 Result<ClassifyResult>(Status::InvalidArgument(
                     "InferenceEngine: unknown address id " +
                     std::to_string(address))),
                 done);
    return nullptr;
  }

  // Admission: an overloaded engine answers in well under a
  // millisecond — a labeled degraded answer when permitted, otherwise
  // an explicit ResourceExhausted — instead of queueing unboundedly.
  bool admitted = false;
  if (admission_ != nullptr) {
    const Status st = admission_->Admit(Backlog(), options.priority);
    if (!st.ok()) {
      stats_.shed.Increment();
      stats_.requests.Increment();
      DeliverEarly(address, submit, options,
                   options.allow_degraded
                       ? TryDegradedAnswer(address, st, options.cache_mode)
                       : Result<ClassifyResult>(st),
                   done);
      return nullptr;
    }
    admitted = true;
  }

  // A deadline that is already gone never pays for enqueueing, let
  // alone graph construction.
  if (options.has_deadline() && SteadyClock::now() >= options.deadline) {
    stats_.requests.Increment();
    const Status expired = Status::DeadlineExceeded(
        "InferenceEngine: deadline expired at submit");
    Result<ClassifyResult> r =
        options.allow_degraded
            ? TryDegradedAnswer(address, expired, options.cache_mode)
            : Result<ClassifyResult>(expired);
    if (!r.ok()) stats_.deadline_exceeded.Increment();
    if (admitted) admission_->Release();
    DeliverEarly(address, submit, options, std::move(r), done);
    return nullptr;
  }

  Request* req = new Request;
  req->address = address;
  req->deadline = options.deadline;
  req->allow_degraded = options.allow_degraded;
  req->cache_mode = options.cache_mode;
  req->done = std::move(done);
  req->admitted = admitted;
  req->submitted = submit;
  req->tl.trace_id = options.trace_id;
  req->tl.span_id = options.span_id;
  return req;
}

void InferenceEngine::DeliverEarly(
    chain::AddressId address, std::chrono::steady_clock::time_point submit,
    const ClassifyOptions& options, Result<ClassifyResult> outcome,
    const ClassifyCallback& done) {
  RequestTimeline tl;
  tl.trace_id = options.trace_id;
  tl.span_id = options.span_id;
  tl.deliver_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      SteadyClock::now() - submit)
                      .count();
  tl.outcome = outcome.ok()
                   ? (outcome.value().degraded ? RequestOutcome::kDegraded
                                               : RequestOutcome::kOk)
                   : OutcomeOfStatus(outcome.status());
  if (outcome.ok()) outcome.value().timeline = tl;
  RecordDelivery(address, tl);
  done(std::move(outcome), tl);
}

void InferenceEngine::RecordDelivery(chain::AddressId address,
                                     const RequestTimeline& tl) {
  if (recorder_ != nullptr) recorder_->Record(address, tl);
  if (slow_recorder_ != nullptr && tl.deliver_ns >= slow_threshold_ns_) {
    slow_recorder_->Record(address, tl);
    stats_.slow_requests.Increment();
    SlowRequestCounter()->Increment();
    BA_LOG(Warn, "serve.slowlog")
        << "{\"address\":" << address << ",\"timeline\":" << tl.ToJson()
        << "}";
  }
  obs::Tracer& tracer = obs::Tracer::Instance();
  if (tl.trace_id != 0 && tracer.enabled()) {
    // The engine's extent of the request flow: submit -> deliver,
    // stitched with the client/server spans via the shared trace_id.
    const int64_t end_ns = obs::Tracer::NowNs();
    tracer.RecordAsync("serve.request", tl.trace_id,
                       end_ns - tl.deliver_ns, tl.deliver_ns);
  }
}

void InferenceEngine::Enqueue(const std::vector<Request*>& requests,
                              bool inline_leader) {
  // One clock read stamps the whole submit batch — timelines must not
  // tax the enqueue path with a syscall per request.
  const auto now = SteadyClock::now();
  for (Request* r : requests) r->tl.enqueue_ns = r->SinceSubmitNs(now);
  std::unique_lock<std::mutex> lock(queue_mu_);
  inflight_requests_ += static_cast<int64_t>(requests.size());
  for (Request* r : requests) {
    queue_.push_back(r);
    queue_depth_.fetch_add(1, std::memory_order_relaxed);
  }
  if (active_leaders_ >= options_.max_batch_leaders) return;
  ++active_leaders_;
  if (inline_leader) {
    RunLeader(&lock);
    return;
  }
  // Async submit: the leader runs on the worker pool so the caller
  // (e.g. an epoll thread) never blocks on inference. A shut-down pool
  // rejects the task; drain inline rather than strand queued requests.
  if (!pool_->Submit([this] {
        std::unique_lock<std::mutex> leader_lock(queue_mu_);
        RunLeader(&leader_lock);
      })) {
    RunLeader(&lock);
  }
}

void InferenceEngine::FinishRequest(Request* req) {
  if (req->admitted && admission_ != nullptr) admission_->Release();
  stats_.requests.Increment();
  const auto now = SteadyClock::now();
  stats_.request_latency.Record(
      std::chrono::duration<double>(now - req->submitted).count());
  req->tl.deliver_ns = req->SinceSubmitNs(now);
  req->tl.outcome = req->status.ok()
                        ? (req->result.degraded ? RequestOutcome::kDegraded
                                                : RequestOutcome::kOk)
                        : OutcomeOfStatus(req->status);
  req->result.timeline = req->tl;
  RecordDelivery(req->address, req->tl);
  ClassifyCallback done = std::move(req->done);
  const RequestTimeline tl = req->tl;
  Result<ClassifyResult> outcome =
      req->status.ok() ? Result<ClassifyResult>(req->result)
                       : Result<ClassifyResult>(req->status);
  delete req;
  done(std::move(outcome), tl);
}

void InferenceEngine::ClassifyAsync(chain::AddressId address,
                                    const ClassifyOptions& options,
                                    ClassifyCallback done) {
  Request* req = MakeRequest(address, options, std::move(done));
  if (req != nullptr) Enqueue({req}, /*inline_leader=*/false);
}

Result<ClassifyResult> InferenceEngine::Classify(
    chain::AddressId address, const ClassifyOptions& options) {
  BA_TRACE_SPAN("serve.request");
  // Blocking wrapper over the async submit path: a stack latch stands
  // in for the caller's continuation.
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<ClassifyResult> outcome{
        Status::Internal("InferenceEngine: request never completed")};
  } state;
  Request* req = MakeRequest(
      address, options,
      [&state](Result<ClassifyResult> r, const RequestTimeline&) {
        std::lock_guard<std::mutex> lk(state.mu);
        state.outcome = std::move(r);
        state.done = true;
        state.cv.notify_one();
      });
  if (req != nullptr) {
    Enqueue({req}, /*inline_leader=*/true);
    std::unique_lock<std::mutex> lk(state.mu);
    state.cv.wait(lk, [&state] { return state.done; });
  }
  return std::move(state.outcome);
}

std::vector<Result<ClassifyResult>> InferenceEngine::ClassifyBatch(
    const std::vector<chain::AddressId>& addresses,
    const ClassifyOptions& options) {
  const size_t n = addresses.size();
  // Submit-side decisions (validation, admission, expired deadlines)
  // run per request; survivors are enqueued as one unit so a single
  // caller still gets batched execution.
  struct BatchState {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
  } state;
  state.remaining = n;
  std::vector<std::unique_ptr<Result<ClassifyResult>>> outcomes(n);
  std::vector<Request*> to_enqueue;
  to_enqueue.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Request* req = MakeRequest(
        addresses[i], options,
        [&state, &outcomes, i](Result<ClassifyResult> r,
                               const RequestTimeline&) {
          std::lock_guard<std::mutex> lk(state.mu);
          outcomes[i] =
              std::make_unique<Result<ClassifyResult>>(std::move(r));
          if (--state.remaining == 0) state.cv.notify_one();
        });
    if (req != nullptr) to_enqueue.push_back(req);
  }
  if (!to_enqueue.empty()) Enqueue(to_enqueue, /*inline_leader=*/true);
  {
    std::unique_lock<std::mutex> lk(state.mu);
    state.cv.wait(lk, [&state] { return state.remaining == 0; });
  }
  std::vector<Result<ClassifyResult>> out;
  out.reserve(n);
  for (auto& o : outcomes) out.push_back(std::move(*o));
  return out;
}

void InferenceEngine::RunLeader(std::unique_lock<std::mutex>* lock) {
  while (!queue_.empty()) {
    std::vector<Request*> batch;
    const size_t limit = static_cast<size_t>(options_.max_batch_size);
    while (!queue_.empty() && batch.size() < limit) {
      batch.push_back(queue_.front());
      queue_.pop_front();
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    }
    const auto joined = SteadyClock::now();
    for (Request* r : batch) r->tl.batch_join_ns = r->SinceSubmitNs(joined);
    // Mid-drain hand-off: queued work remains and a leader slot is
    // free — spawn the successor *before* processing this batch, so
    // one slow batch never serializes the arrivals (or the remainder
    // of the queue) behind it.
    if (!queue_.empty() && active_leaders_ < options_.max_batch_leaders) {
      ++active_leaders_;
      if (!pool_->Submit([this] {
            std::unique_lock<std::mutex> leader_lock(queue_mu_);
            RunLeader(&leader_lock);
          })) {
        --active_leaders_;  // pool shut down: this leader drains alone
      }
    }
    lock->unlock();
    ProcessBatch(batch);
    // Callbacks fire with the queue lock released — a callback may
    // submit follow-up async work without self-deadlocking.
    for (Request* r : batch) FinishRequest(r);
    lock->lock();
    inflight_requests_ -= static_cast<int64_t>(batch.size());
    done_cv_.notify_all();
  }
  --active_leaders_;
  done_cv_.notify_all();
}

void InferenceEngine::ProcessBatch(const std::vector<Request*>& batch) {
  obs::ScopedSpan batch_span("serve.batch");
  batch_span.AddArg("batch_size", static_cast<double>(batch.size()));
  Stopwatch batch_sw;
  batch_sw.Start();
  stats_.batches.Increment();
  util::FaultInjector& faults = util::FaultInjector::Instance();

  // The whole micro-batch reads one pinned epoch (O(1) to capture), so
  // its results are mutually consistent and immune to a SealBlock /
  // ApplyTransaction racing the batch.
  const chain::LedgerSnapshot snapshot = ledger_->Snapshot();

  // Answers `req` from a stale prediction computed at `stale_tx_count`
  // over `stale_slices` cached slice embeddings, labeled degraded with
  // its epoch lag against `now_tx_count`. Sets exactly the fields the
  // degraded-answer contract (protocol.h, ClassifyResult) promises for
  // a stale answer — matching TryDegradedAnswer's stale path, which
  // serves the same answer from the submit fast paths.
  auto answer_stale = [this](Request* req, int predicted,
                             uint64_t stale_tx_count, uint64_t now_tx_count,
                             int stale_slices) {
    req->result.predicted = predicted;
    req->result.cache_hit = true;
    req->result.tx_count = stale_tx_count;
    req->result.degraded = true;
    req->result.epoch_lag = now_tx_count - stale_tx_count;
    req->result.slices_reused = stale_slices;
    stats_.degraded_stale.Increment();
    DegradedStaleCounter()->Increment();
  };
  auto reject_deadline = [this](Request* req, const char* where) {
    req->status = Status::DeadlineExceeded(
        std::string("InferenceEngine: deadline expired ") + where);
    stats_.deadline_exceeded.Increment();
  };

  // A lookup-stage fault decides the whole batch: every request gets an
  // explicit injected error — never a hang, never a wrong answer.
  if (faults.ShouldFail(kFaultBatchLookup)) {
    const Status st = Status::Internal(std::string("injected fault at ") +
                                       kFaultBatchLookup);
    for (Request* req : batch) req->status = st;
    batch_sw.Stop();
    stats_.batch_latency.Record(batch_sw.ElapsedSeconds());
    return;
  }

  // Stage 1 — cache lookup (serial, one short critical section).
  // Duplicate addresses within the batch coalesce onto one Work unit —
  // N monitoring clients polling the same address cost one computation.
  // Requests already past deadline are decided here, before any graph
  // construction: stale cached answer (allow_degraded), fallback
  // (queued for after the lock), or DeadlineExceeded.
  struct Work {
    std::vector<Request*> reqs;
    chain::AddressId address = chain::kInvalidAddress;
    uint64_t tx_count = 0;
    int reuse_slices = 0;
    int built = 0;
    /// Reused complete-slice embeddings; workers append the rebuilt
    /// tail behind them.
    std::vector<std::vector<float>> rows;
    /// Stale prediction stashed at lookup, answering any member whose
    /// deadline expires at a later stage boundary.
    bool has_stale = false;
    int stale_predicted = 0;
    uint64_t stale_tx_count = 0;
    int stale_slices = 0;
    /// True only while every requester is router-flagged sweep
    /// traffic; one normal requester earns the result a cache slot.
    bool no_promote = true;
  };
  std::vector<Work> work;
  work.reserve(batch.size());
  std::unordered_map<chain::AddressId, size_t> work_index;
  std::vector<Request*> fallback_pending;
  {
    BA_TRACE_SPAN("serve.batch.lookup");
    std::unique_lock<std::mutex> lock(cache_mu_);
    for (Request* req : batch) {
      const uint64_t n = TxCountOf(snapshot, req->address);
      if (n == 0) {
        // Free and exact regardless of deadline or overload.
        req->result.predicted = 0;
        req->result.tx_count = 0;
        stats_.empty_history.Increment();
        continue;
      }
      if (req->expired(SteadyClock::now())) {
        if (!req->allow_degraded) {
          reject_deadline(req, "at cache lookup");
          continue;
        }
        auto it = cache_.find(req->address);
        if (it != cache_.end() && it->second.tx_count <= n) {
          if (req->cache_mode != CacheMode::kNoPromote) {
            it->second.last_used = ++lru_tick_;
          }
          if (it->second.tx_count == n) {
            // Exact at this epoch: a full hit, not a degraded answer.
            req->result.predicted = it->second.predicted;
            req->result.cache_hit = true;
            req->result.tx_count = n;
            req->result.slices_reused =
                static_cast<int>(it->second.slice_embeddings.size());
            stats_.full_hits.Increment();
            stats_.slices_reused.Increment(
                it->second.slice_embeddings.size());
          } else {
            answer_stale(req, it->second.predicted, it->second.tx_count, n,
                         static_cast<int>(it->second.slice_embeddings.size()));
          }
        } else {
          // Fallback hook runs outside the cache lock.
          req->result.tx_count = n;
          fallback_pending.push_back(req);
        }
        continue;
      }
      auto dup = work_index.find(req->address);
      if (dup != work_index.end()) {
        Work& shared = work[dup->second];
        shared.reqs.push_back(req);
        shared.no_promote =
            shared.no_promote && req->cache_mode == CacheMode::kNoPromote;
        stats_.coalesced.Increment();
        continue;
      }
      auto it = cache_.find(req->address);
      if (it != cache_.end() && it->second.tx_count == n) {
        if (req->cache_mode != CacheMode::kNoPromote) {
          it->second.last_used = ++lru_tick_;
        }
        req->result.predicted = it->second.predicted;
        req->result.cache_hit = true;
        req->result.tx_count = n;
        req->result.slices_reused =
            static_cast<int>(it->second.slice_embeddings.size());
        stats_.full_hits.Increment();
        stats_.slices_reused.Increment(it->second.slice_embeddings.size());
        continue;
      }
      Work w;
      w.reqs.push_back(req);
      w.address = req->address;
      w.tx_count = n;
      w.no_promote = req->cache_mode == CacheMode::kNoPromote;
      // An entry computed at a shorter history can donate its complete
      // slices — they are immutable on the append-only ledger. (An
      // entry *ahead* of the live ledger can only mean the ledger was
      // swapped out from under the cache; treat it as a plain miss.)
      const int complete =
          it == cache_.end() || it->second.tx_count > n
              ? 0
              : static_cast<int>(it->second.tx_count /
                                 static_cast<uint64_t>(slice_size_));
      if (it != cache_.end() && it->second.tx_count <= n) {
        w.has_stale = true;
        w.stale_predicted = it->second.predicted;
        w.stale_tx_count = it->second.tx_count;
        w.stale_slices =
            static_cast<int>(it->second.slice_embeddings.size());
      }
      if (complete > 0) {
        w.reuse_slices = complete;
        w.rows.assign(it->second.slice_embeddings.begin(),
                      it->second.slice_embeddings.begin() + complete);
        stats_.partial_hits.Increment();
      } else {
        stats_.misses.Increment();
      }
      work_index.emplace(req->address, work.size());
      work.push_back(std::move(w));
    }
  }
  {
    // Lookup-stage stamp for every request still alive in the batch,
    // including those decided here (hits, degraded, rejections) — one
    // clock read for the batch.
    const auto now = SteadyClock::now();
    for (Request* req : batch) req->tl.lookup_ns = req->SinceSubmitNs(now);
  }
  for (Request* req : fallback_pending) {
    if (options_.degraded_fallback) {
      req->result.predicted = options_.degraded_fallback(req->address);
      req->result.degraded = true;
      req->result.epoch_lag = 0;
      stats_.degraded_fallback.Increment();
      DegradedFallbackCounter()->Increment();
    } else {
      reject_deadline(req, "at cache lookup");
    }
  }

  // Stage boundary lookup -> build: the injected build fault (and any
  // armed latency) lands here, then deadlines are re-checked so a
  // request that expired while queued behind the lookup never pays for
  // graph construction.
  const bool build_fault = faults.ShouldFail(kFaultBatchBuild);
  {
    const auto now = SteadyClock::now();
    std::vector<Request*> keep;
    for (Work& w : work) {
      keep.clear();
      for (Request* req : w.reqs) {
        if (!req->expired(now)) {
          keep.push_back(req);
          continue;
        }
        if (req->allow_degraded && w.has_stale) {
          answer_stale(req, w.stale_predicted, w.stale_tx_count, w.tx_count,
                       w.stale_slices);
        } else if (req->allow_degraded && options_.degraded_fallback) {
          req->result.predicted = options_.degraded_fallback(req->address);
          req->result.tx_count = w.tx_count;
          req->result.degraded = true;
          req->result.epoch_lag = 0;
          stats_.degraded_fallback.Increment();
          DegradedFallbackCounter()->Increment();
        } else {
          reject_deadline(req, "before graph construction");
        }
      }
      w.reqs.swap(keep);
    }
    // Units whose every requester was decided are dropped whole — no
    // speculative graph work on behalf of nobody.
    work.erase(std::remove_if(work.begin(), work.end(),
                              [](const Work& w) { return w.reqs.empty(); }),
               work.end());
  }
  if (build_fault) {
    const Status st = Status::Internal(std::string("injected fault at ") +
                                       kFaultBatchBuild);
    for (Work& w : work) {
      for (Request* req : w.reqs) req->status = st;
    }
    work.clear();
  }

  // Stage 2 — graph construction + encoder forward for the tail slices
  // of every miss, fanned out over the pool. The classifier's inference
  // paths are const and share frozen weights, so workers may embed
  // concurrently.
  if (!work.empty()) {
    BA_TRACE_SPAN("serve.batch.build_embed");
    const core::GraphModel& model = classifier_->graph_model();
    const bool int8 = options_.precision == Precision::kInt8;
    pool_->ParallelFor(work.size(), [&](size_t i) {
      Work& w = work[i];
      core::GraphConstructor ctor(
          classifier_->options().dataset.construction);
      const std::vector<core::AddressGraph> graphs =
          ctor.BuildGraphsFrom(snapshot, w.address, w.reuse_slices);
      stats_.build_seconds.AddSeconds(ctor.timings().TotalSeconds());
      Stopwatch embed_sw;
      embed_sw.Start();
      for (const core::AddressGraph& g : graphs) {
        const core::GraphTensors gt = core::PrepareGraphTensors(g, k_hops_);
        const tensor::Tensor e =
            int8 ? model.EmbedQuantized(gt) : model.Embed(gt);
        std::vector<float> row(static_cast<size_t>(embed_dim_));
        for (int64_t j = 0; j < embed_dim_; ++j) {
          row[static_cast<size_t>(j)] = e.at(0, j);
        }
        w.rows.push_back(std::move(row));
        ++w.built;
      }
      embed_sw.Stop();
      stats_.embed_seconds.AddSeconds(embed_sw.ElapsedSeconds());
    });
    const auto built = SteadyClock::now();
    for (Work& w : work) {
      for (Request* req : w.reqs) {
        req->tl.build_ns = req->SinceSubmitNs(built);
      }
    }
  }

  // Stage boundary build -> aggregate: injected aggregate fault.
  if (!work.empty() && faults.ShouldFail(kFaultBatchAggregate)) {
    const Status st = Status::Internal(std::string("injected fault at ") +
                                       kFaultBatchAggregate);
    for (Work& w : work) {
      for (Request* req : w.reqs) req->status = st;
    }
    work.clear();
  }

  // Stage 3 — scale + aggregate each full embedding sequence, publish
  // results and refresh the cache (serial; the LSTM head is tiny next
  // to stage 2). A deadline that expired during the build still yields
  // the freshly computed answer — labeled degraded (late) when allowed,
  // DeadlineExceeded otherwise — and the cache is refreshed either way:
  // the work is done, future stale answers might as well benefit.
  {
    BA_TRACE_SPAN("serve.batch.aggregate");
    Stopwatch agg_sw;
    agg_sw.Start();
    for (Work& w : work) {
      stats_.slices_built.Increment(static_cast<uint64_t>(w.built));
      stats_.slices_reused.Increment(static_cast<uint64_t>(w.reuse_slices));
      int predicted = 0;
      if (!w.rows.empty()) {
        std::vector<core::EmbeddingSequence> seqs(1);
        seqs[0].embeddings = tensor::Tensor(
            {static_cast<int64_t>(w.rows.size()), embed_dim_});
        for (size_t r = 0; r < w.rows.size(); ++r) {
          for (int64_t j = 0; j < embed_dim_; ++j) {
            seqs[0].embeddings.at(static_cast<int64_t>(r), j) =
                w.rows[r][static_cast<size_t>(j)];
          }
        }
        classifier_->scaler().Apply(&seqs);
        predicted = classifier_->aggregator().Predict(seqs[0].embeddings);
      }
      const auto now = SteadyClock::now();
      for (Request* req : w.reqs) {
        if (req->expired(now) && !req->allow_degraded) {
          reject_deadline(req, "during embedding");
          continue;
        }
        req->result.predicted = predicted;
        req->result.slices_reused = w.reuse_slices;
        req->result.slices_built = w.built;
        req->result.tx_count = w.tx_count;
        if (req->expired(now)) {
          req->result.degraded = true;
          req->result.epoch_lag = 0;
          stats_.degraded_late.Increment();
          DegradedLateCounter()->Increment();
        }
      }
      if (!w.rows.empty()) {
        CacheEntry entry;
        entry.tx_count = w.tx_count;
        entry.slice_embeddings = std::move(w.rows);
        entry.predicted = predicted;
        StoreEntry(w.address, std::move(entry), w.no_promote);
      }
    }
    const auto aggregated = SteadyClock::now();
    for (Work& w : work) {
      for (Request* req : w.reqs) {
        req->tl.aggregate_ns = req->SinceSubmitNs(aggregated);
      }
    }
    agg_sw.Stop();
    stats_.aggregate_seconds.AddSeconds(agg_sw.ElapsedSeconds());
  }
  batch_sw.Stop();
  stats_.batch_latency.Record(batch_sw.ElapsedSeconds());
  backlog_gauge_->Set(static_cast<int64_t>(pool_->in_flight()));
  queue_depth_gauge_->Set(queue_depth_.load(std::memory_order_relaxed));
}

void InferenceEngine::StoreEntry(chain::AddressId address, CacheEntry entry,
                                 bool no_promote) {
  std::vector<std::pair<uint64_t, chain::AddressId>> order;
  size_t want_evicted = 0;
  {
    std::unique_lock<std::mutex> lock(cache_mu_);
    if (no_promote) {
      // Sweep traffic: refresh an entry the hot set already earned
      // (same recency — reading it was not a working-set signal), but
      // never insert, so a full-chain scan cannot trigger eviction.
      auto it = cache_.find(address);
      if (it == cache_.end()) return;
      const uint64_t last_used = it->second.last_used;
      it->second = std::move(entry);
      it->second.last_used = last_used;
      return;
    }
    entry.last_used = ++lru_tick_;
    cache_[address] = std::move(entry);
    if (cache_.size() <= options_.cache_capacity) return;
    // Evict the least-recently-used ~10% in one sweep so the scan cost
    // amortizes over many inserts instead of paying O(size) per
    // insert. Only the O(size) candidate *copy* runs under the lock;
    // the nth_element ordering runs after release so concurrent
    // lookups never stall behind it.
    const size_t target =
        std::max<size_t>(1, options_.cache_capacity -
                                options_.cache_capacity / 10);
    // The entry just stored for the current request is structurally
    // excluded from the candidate list: it must survive its own insert
    // even at cache_capacity = 1, where it is also the freshest entry.
    order.reserve(cache_.size() - 1);
    for (const auto& [addr, e] : cache_) {
      if (addr == address) continue;
      order.emplace_back(e.last_used, addr);
    }
    want_evicted = std::min(order.size(), cache_.size() - target);
  }
  if (want_evicted == 0) return;
  std::nth_element(order.begin(),
                   order.begin() + static_cast<ptrdiff_t>(want_evicted),
                   order.end());
  uint64_t evicted = 0;
  {
    std::unique_lock<std::mutex> lock(cache_mu_);
    for (size_t i = 0; i < want_evicted; ++i) {
      // A candidate touched (or replaced) between the scan and this
      // erase earned a reprieve: evict only entries whose recency
      // still matches what the scan saw.
      auto it = cache_.find(order[i].second);
      if (it == cache_.end() || it->second.last_used != order[i].first) {
        continue;
      }
      cache_.erase(it);
      ++evicted;
    }
  }
  stats_.evictions.Increment(evicted);
}

size_t InferenceEngine::CacheSize() const {
  std::unique_lock<std::mutex> lock(cache_mu_);
  return cache_.size();
}

void InferenceEngine::ClearCache() {
  std::unique_lock<std::mutex> lock(cache_mu_);
  cache_.clear();
}

Status InferenceEngine::SaveCache() const {
  if (options_.cache_path.empty()) return Status::OK();
  return util::RetryWithBackoff(options_.save_retry, "serve cache save",
                                [this] { return SaveCacheOnce(); });
}

Status InferenceEngine::SaveCacheOnce() const {
  if (util::FaultInjector::Instance().ShouldFail(kFaultCacheSave)) {
    return Status::Internal(std::string("injected fault at ") +
                            kFaultCacheSave);
  }
  // Snapshot under the lock, serialize and write outside it so queries
  // keep flowing during the (possibly slow) disk write.
  std::vector<std::pair<chain::AddressId, CacheEntry>> entries;
  {
    std::unique_lock<std::mutex> lock(cache_mu_);
    entries.assign(cache_.begin(), cache_.end());
  }
  std::string body;
  body.append(kCacheMagic, sizeof(kCacheMagic));
  AppendPod(&body, kCacheVersion);
  AppendPod(&body, static_cast<int32_t>(slice_size_));
  AppendPod(&body, static_cast<int32_t>(k_hops_));
  AppendPod(&body, static_cast<int64_t>(embed_dim_));
  AppendPod(&body, static_cast<uint8_t>(options_.precision));
  AppendPod(&body, static_cast<uint64_t>(entries.size()));
  for (const auto& [address, entry] : entries) {
    AppendPod(&body, static_cast<uint64_t>(address));
    AppendPod(&body, entry.tx_count);
    AppendPod(&body, static_cast<int32_t>(entry.predicted));
    AppendPod(&body,
              static_cast<uint32_t>(entry.slice_embeddings.size()));
    for (const std::vector<float>& row : entry.slice_embeddings) {
      body.append(reinterpret_cast<const char*>(row.data()),
                  row.size() * sizeof(float));
    }
  }
  util::AtomicFileWriter out(options_.cache_path);
  BA_RETURN_NOT_OK(out.Open());
  BA_RETURN_NOT_OK(out.Append(body));
  const uint32_t crc = out.crc();
  BA_RETURN_NOT_OK(out.Write(&crc, sizeof(crc)));
  return out.Commit();
}

Status InferenceEngine::LoadCacheFile(const std::string& path) {
  if (util::FaultInjector::Instance().ShouldFail(kFaultCacheLoad)) {
    return Status::Internal(std::string("injected fault at ") +
                            kFaultCacheLoad);
  }
  BA_ASSIGN_OR_RETURN(const std::string buf, util::ReadFileToString(path));
  if (buf.size() < sizeof(kCacheMagic) + sizeof(uint32_t)) {
    return Status::InvalidArgument("truncated serve cache: " + path);
  }
  const uint32_t stored_crc = [&] {
    uint32_t v = 0;
    std::memcpy(&v, buf.data() + buf.size() - sizeof(v), sizeof(v));
    return v;
  }();
  const uint32_t computed_crc =
      util::Crc32(buf.data(), buf.size() - sizeof(uint32_t));
  if (stored_crc != computed_crc) {
    return Status::InvalidArgument(
        "serve cache crc32 mismatch (stored " + std::to_string(stored_crc) +
        ", computed " + std::to_string(computed_crc) + "): " + path);
  }
  util::BufferReader reader(buf);
  reader.Truncate(buf.size() - sizeof(uint32_t));
  char magic[4];
  if (!reader.ReadBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kCacheMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not a serve cache (bad magic): " + path);
  }
  uint32_t version = 0;
  if (!reader.ReadPod(&version) || version != kCacheVersion) {
    return Status::InvalidArgument(
        "unsupported serve cache version " + std::to_string(version) +
        ": " + path);
  }
  int32_t slice_size = 0;
  int32_t k_hops = 0;
  int64_t embed_dim = 0;
  uint8_t precision = 0;
  uint64_t count = 0;
  if (!reader.ReadPod(&slice_size) || !reader.ReadPod(&k_hops) ||
      !reader.ReadPod(&embed_dim) || !reader.ReadPod(&precision) ||
      !reader.ReadPod(&count)) {
    return Status::InvalidArgument("truncated serve cache header: " + path);
  }
  if (precision != static_cast<uint8_t>(options_.precision)) {
    return Status::InvalidArgument(
        "serve cache was built under a different precision (cache " +
        std::to_string(precision) + ", engine " +
        std::string(PrecisionName(options_.precision)) +
        "); fp32 and int8 embeddings must not mix: " + path);
  }
  if (slice_size != slice_size_ || k_hops != k_hops_ ||
      embed_dim != embed_dim_) {
    return Status::InvalidArgument(
        "serve cache was built under different options (slice_size=" +
        std::to_string(slice_size) + ", k_hops=" + std::to_string(k_hops) +
        ", embed_dim=" + std::to_string(embed_dim) + "; engine has " +
        std::to_string(slice_size_) + ", " + std::to_string(k_hops_) +
        ", " + std::to_string(embed_dim_) + "): " + path);
  }
  std::unordered_map<chain::AddressId, CacheEntry> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t address = 0;
    CacheEntry entry;
    int32_t predicted = 0;
    uint32_t num_slices = 0;
    if (!reader.ReadPod(&address) || !reader.ReadPod(&entry.tx_count) ||
        !reader.ReadPod(&predicted) || !reader.ReadPod(&num_slices)) {
      return Status::InvalidArgument(
          "truncated serve cache entry " + std::to_string(i) + ": " + path);
    }
    if (num_slices > kMaxSlicesPerEntry) {
      return Status::InvalidArgument(
          "serve cache entry " + std::to_string(i) +
          " claims an absurd slice count " + std::to_string(num_slices) +
          ": " + path);
    }
    entry.predicted = predicted;
    entry.slice_embeddings.resize(num_slices);
    for (uint32_t s = 0; s < num_slices; ++s) {
      entry.slice_embeddings[s].resize(static_cast<size_t>(embed_dim_));
      if (!reader.ReadBytes(entry.slice_embeddings[s].data(),
                            static_cast<size_t>(embed_dim_) *
                                sizeof(float))) {
        return Status::InvalidArgument(
            "truncated serve cache entry " + std::to_string(i) + ": " +
            path);
      }
    }
    loaded[static_cast<chain::AddressId>(address)] = std::move(entry);
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(
        "serve cache has " + std::to_string(reader.remaining()) +
        " trailing bytes: " + path);
  }
  std::unique_lock<std::mutex> lock(cache_mu_);
  for (auto& [address, entry] : loaded) {
    entry.last_used = ++lru_tick_;
    cache_[address] = std::move(entry);
  }
  return Status::OK();
}

InferenceMetricsSnapshot InferenceEngine::Metrics() const {
  InferenceMetricsSnapshot s;
  s.requests = stats_.requests.value();
  s.full_hits = stats_.full_hits.value();
  s.partial_hits = stats_.partial_hits.value();
  s.misses = stats_.misses.value();
  s.coalesced = stats_.coalesced.value();
  s.empty_history = stats_.empty_history.value();
  s.batches = stats_.batches.value();
  s.slices_built = stats_.slices_built.value();
  s.slices_reused = stats_.slices_reused.value();
  s.cache_evictions = stats_.evictions.value();
  s.cache_entries = CacheSize();
  s.pool_backlog = pool_->in_flight();
  s.queue_depth = static_cast<uint64_t>(
      std::max<int64_t>(0, queue_depth_.load(std::memory_order_relaxed)));
  s.shed = stats_.shed.value();
  s.deadline_exceeded = stats_.deadline_exceeded.value();
  s.degraded_stale = stats_.degraded_stale.value();
  s.degraded_fallback = stats_.degraded_fallback.value();
  s.degraded_late = stats_.degraded_late.value();
  s.slow_requests = stats_.slow_requests.value();
  s.admission_state =
      admission_ == nullptr
          ? "disabled"
          : AdmissionController::StateName(admission_->state());
  backlog_gauge_->Set(static_cast<int64_t>(s.pool_backlog));
  queue_depth_gauge_->Set(static_cast<int64_t>(s.queue_depth));
  const uint64_t classified =
      s.requests >= s.empty_history ? s.requests - s.empty_history : 0;
  // Coalesced requests avoided their own computation, so they count as
  // hits too.
  s.hit_rate =
      classified == 0
          ? 0.0
          : static_cast<double>(s.full_hits + s.partial_hits + s.coalesced) /
                static_cast<double>(classified);
  s.build_seconds = stats_.build_seconds.Seconds();
  s.embed_seconds = stats_.embed_seconds.Seconds();
  s.aggregate_seconds = stats_.aggregate_seconds.Seconds();
  s.request_latency = stats_.request_latency.Snapshot();
  s.batch_latency = stats_.batch_latency.Snapshot();
  return s;
}

std::string InferenceEngine::SlowlogJson(size_t max_entries) const {
  std::ostringstream os;
  os << "{\"threshold_seconds\":" << options_.slow_request_threshold
     << ",\"slow\":"
     << (slow_recorder_ != nullptr ? slow_recorder_->ToJson(max_entries)
                                   : "[]")
     << ",\"recent\":"
     << (recorder_ != nullptr ? recorder_->ToJson(max_entries) : "[]")
     << "}";
  return os.str();
}

std::optional<FlightRecorder::Entry> InferenceEngine::FindTimeline(
    uint64_t trace_id) const {
  // Most recent entry wins; the slow ring keeps entries alive after the
  // main ring has wrapped past them.
  std::optional<FlightRecorder::Entry> hit;
  if (recorder_ != nullptr) hit = recorder_->Find(trace_id);
  if (!hit.has_value() && slow_recorder_ != nullptr) {
    hit = slow_recorder_->Find(trace_id);
  }
  return hit;
}

std::string InferenceMetricsSnapshot::ToString() const {
  std::ostringstream os;
  os << "serve metrics\n"
     << "  requests          " << requests << " (" << empty_history
     << " empty-history)\n"
     << "  cache             " << full_hits << " full + " << partial_hits
     << " partial hits, " << misses << " misses, " << coalesced
     << " coalesced (hit rate "
     << static_cast<int>(hit_rate * 100.0 + 0.5) << "%), " << cache_entries
     << " entries, " << cache_evictions << " evictions\n"
     << "  slices            " << slices_built << " built, "
     << slices_reused << " reused\n"
     << "  batches           " << batches << " (pool backlog "
     << pool_backlog << ", queue depth " << queue_depth << ")\n"
     << "  resilience        " << shed << " shed, " << deadline_exceeded
     << " deadline-exceeded, degraded " << degraded_stale << " stale + "
     << degraded_fallback << " fallback + " << degraded_late
     << " late, " << slow_requests << " slow (admission " << admission_state
     << ")\n"
     << "  stage seconds     build " << FormatSeconds(build_seconds)
     << ", embed " << FormatSeconds(embed_seconds) << ", aggregate "
     << FormatSeconds(aggregate_seconds) << "\n"
     << "  request latency   p50 " << FormatSeconds(request_latency.p50_seconds)
     << ", p95 " << FormatSeconds(request_latency.p95_seconds) << ", p99 "
     << FormatSeconds(request_latency.p99_seconds) << ", max "
     << FormatSeconds(request_latency.max_seconds) << "\n"
     << "  batch latency     p50 " << FormatSeconds(batch_latency.p50_seconds)
     << ", p95 " << FormatSeconds(batch_latency.p95_seconds) << ", max "
     << FormatSeconds(batch_latency.max_seconds) << "\n";
  return os.str();
}

namespace {

void AppendHistogramJson(std::ostringstream* os, const char* name,
                         const HistogramSnapshot& h) {
  *os << "\"" << name << "\":{\"count\":" << h.count
      << ",\"mean_s\":" << h.mean_seconds << ",\"p50_s\":" << h.p50_seconds
      << ",\"p95_s\":" << h.p95_seconds << ",\"p99_s\":" << h.p99_seconds
      << ",\"max_s\":" << h.max_seconds << "}";
}

}  // namespace

std::string InferenceMetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"requests\":" << requests << ",\"full_hits\":" << full_hits
     << ",\"partial_hits\":" << partial_hits << ",\"misses\":" << misses
     << ",\"coalesced\":" << coalesced
     << ",\"empty_history\":" << empty_history << ",\"batches\":" << batches
     << ",\"slices_built\":" << slices_built
     << ",\"slices_reused\":" << slices_reused
     << ",\"cache_entries\":" << cache_entries
     << ",\"cache_evictions\":" << cache_evictions
     << ",\"pool_backlog\":" << pool_backlog
     << ",\"queue_depth\":" << queue_depth << ",\"shed\":" << shed
     << ",\"deadline_exceeded\":" << deadline_exceeded
     << ",\"degraded_stale\":" << degraded_stale
     << ",\"degraded_fallback\":" << degraded_fallback
     << ",\"degraded_late\":" << degraded_late
     << ",\"slow_requests\":" << slow_requests
     << ",\"admission_state\":\"" << admission_state << "\""
     << ",\"hit_rate\":" << hit_rate
     << ",\"build_seconds\":" << build_seconds
     << ",\"embed_seconds\":" << embed_seconds
     << ",\"aggregate_seconds\":" << aggregate_seconds << ",";
  AppendHistogramJson(&os, "request_latency", request_latency);
  os << ",";
  AppendHistogramJson(&os, "batch_latency", batch_latency);
  os << "}";
  return os.str();
}

}  // namespace ba::serve
