#include "serve/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <utility>

#include "obs/trace.h"
#include "util/fs.h"
#include "util/logging.h"

namespace ba::serve {

namespace {

/// Severity order for aggregating per-shard admission states: the
/// aggregate reports the *worst* shard, so a monitoring loop watching
/// one field still sees "shedding" when any shard is overloaded.
int AdmissionRank(const std::string& state) {
  if (state == "shedding") return 3;
  if (state == "recovering") return 2;
  if (state == "accepting") return 1;
  return 0;  // disabled
}

/// Count-weighted merge of per-shard latency histograms. Percentiles
/// from different shards cannot be combined exactly without the raw
/// buckets; the count-weighted average is the standard dashboard
/// approximation (exact when shards are identically loaded), and max
/// merges exactly.
HistogramSnapshot MergeHistograms(const HistogramSnapshot& a,
                                  const HistogramSnapshot& b) {
  HistogramSnapshot out;
  out.count = a.count + b.count;
  out.total_seconds = a.total_seconds + b.total_seconds;
  out.max_seconds = std::max(a.max_seconds, b.max_seconds);
  if (out.count > 0) {
    const double wa = static_cast<double>(a.count);
    const double wb = static_cast<double>(b.count);
    const double wsum = wa + wb;
    out.mean_seconds = out.total_seconds / static_cast<double>(out.count);
    out.p50_seconds = (a.p50_seconds * wa + b.p50_seconds * wb) / wsum;
    out.p95_seconds = (a.p95_seconds * wa + b.p95_seconds * wb) / wsum;
    out.p99_seconds = (a.p99_seconds * wa + b.p99_seconds * wb) / wsum;
  }
  return out;
}

}  // namespace

Status ShardedEngineOptions::Validate() const {
  if (num_engines < 1) {
    return Status::InvalidArgument(
        "ShardedEngineOptions.num_engines must be >= 1, got " +
        std::to_string(num_engines));
  }
  if (vnodes_per_shard < 1) {
    return Status::InvalidArgument(
        "ShardedEngineOptions.vnodes_per_shard must be >= 1, got " +
        std::to_string(vnodes_per_shard));
  }
  return engine.Validate();
}

std::string ShardedEngine::ManifestPath(const std::string& cache_base) {
  return cache_base + ".manifest";
}

Status ShardedEngine::CheckManifest(const std::string& cache_base,
                                    int num_engines) {
  if (cache_base.empty()) return Status::OK();
  const std::string path = ManifestPath(cache_base);
  if (!util::FileExists(path)) return Status::OK();  // cold start
  auto body = util::ReadFileToString(path);
  BA_RETURN_NOT_OK(body.status());
  std::istringstream is(*body);
  std::string tag;
  int persisted = 0;
  if (!(is >> tag >> persisted) || tag != "shards" || persisted < 1) {
    return Status::InvalidArgument("sharded cache manifest " + path +
                                   " is corrupt (expected \"shards <N>\")");
  }
  if (persisted != num_engines) {
    return Status::InvalidArgument(
        "sharded cache manifest " + path + " was written by a " +
        std::to_string(persisted) + "-shard deployment but --engines is " +
        std::to_string(num_engines) +
        ": the consistent-hash ring would route addresses away from the "
        "shard files holding their embeddings. Restart with " +
        std::to_string(persisted) +
        " engines, or delete the per-shard cache files (and this "
        "manifest) to start cold");
  }
  return Status::OK();
}

Status ShardedEngine::WriteManifest() const {
  if (options_.engine.cache_path.empty()) return Status::OK();
  util::AtomicFileWriter out(ManifestPath(options_.engine.cache_path));
  BA_RETURN_NOT_OK(out.Open());
  BA_RETURN_NOT_OK(
      out.Append("shards " + std::to_string(options_.num_engines) + "\n"));
  return out.Commit();
}

ShardedEngine::ShardedEngine(Options options)
    : options_(std::move(options)),
      router_(static_cast<uint32_t>(options_.num_engines),
              options_.vnodes_per_shard),
      detector_(options_.sweep_miss_streak) {
  auto& reg = obs::MetricsRegistry::Instance();
  requests_ = reg.GetCounter("serve.router.requests");
  sweep_requests_ = reg.GetCounter("serve.router.sweep_requests");
  // Unique per process, mirroring the per-engine providers.
  static std::atomic<uint64_t> next_router_id{0};
  registry_provider_name_ =
      "serve.router." + std::to_string(next_router_id.fetch_add(1));
  reg.RegisterProvider(registry_provider_name_, [this] {
    std::ostringstream os;
    os << "{\"shards\":" << router_.num_shards()
       << ",\"sweeping_clients\":" << detector_.sweeping_clients() << "}";
    return os.str();
  });
}

ShardedEngine::~ShardedEngine() {
  // Same ordering rule as the single engine: no scrape may run the
  // provider while members tear down under it.
  obs::MetricsRegistry::Instance().UnregisterProvider(
      registry_provider_name_);
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const core::BaClassifier* classifier, const chain::Ledger* ledger,
    Options options) {
  BA_RETURN_NOT_OK(options.Validate());
  // Refuse a mismatched warm restart before any shard loads a file.
  BA_RETURN_NOT_OK(
      CheckManifest(options.engine.cache_path, options.num_engines));
  auto sharded = std::unique_ptr<ShardedEngine>(new ShardedEngine(options));
  for (int k = 0; k < options.num_engines; ++k) {
    InferenceEngineOptions shard_options = options.engine;
    if (!shard_options.cache_path.empty()) {
      shard_options.cache_path += ".shard" + std::to_string(k);
    }
    auto engine =
        InferenceEngine::Create(classifier, ledger, std::move(shard_options));
    if (!engine.ok()) {
      return Status(engine.status().code(),
                    "ShardedEngine: shard " + std::to_string(k) + ": " +
                        engine.status().message());
    }
    sharded->shards_.push_back(std::move(*engine));
  }
  return sharded;
}

void ShardedEngine::ClassifyAsync(chain::AddressId address,
                                  const ClassifyOptions& options,
                                  ClassifyCallback done) {
  BA_TRACE_SPAN("serve.router.dispatch");
  requests_->Increment();
  ClassifyOptions routed = options;
  routed.cache_mode = detector_.ModeFor(options.client_id);
  if (routed.cache_mode == CacheMode::kNoPromote) {
    sweep_requests_->Increment();
  }
  const uint64_t client_id = options.client_id;
  shards_[router_.ShardOf(address)]->ClassifyAsync(
      address, routed,
      [this, client_id, done = std::move(done)](Result<ClassifyResult> r,
                                                const RequestTimeline& tl) {
        // Feed the sweep detector before delivery so the *next* request
        // of a scanning client already sees the updated mode. Errors
        // (shed, deadline) and empty-history answers say nothing about
        // cache temperature and are not observed.
        if (client_id != 0 && r.ok() && r->tx_count > 0) {
          detector_.Observe(client_id,
                            r->cache_hit || r->slices_reused > 0);
        }
        done(std::move(r), tl);
      });
}

Result<ClassifyResult> ShardedEngine::Classify(chain::AddressId address,
                                               const ClassifyOptions& options) {
  BA_TRACE_SPAN("serve.router.dispatch");
  requests_->Increment();
  ClassifyOptions routed = options;
  routed.cache_mode = detector_.ModeFor(options.client_id);
  if (routed.cache_mode == CacheMode::kNoPromote) {
    sweep_requests_->Increment();
  }
  // The shard's blocking path lets this thread become its batch leader,
  // so a lone blocking caller keeps the unsharded latency profile.
  Result<ClassifyResult> r =
      shards_[router_.ShardOf(address)]->Classify(address, routed);
  if (options.client_id != 0 && r.ok() && r->tx_count > 0) {
    detector_.Observe(options.client_id,
                      r->cache_hit || r->slices_reused > 0);
  }
  return r;
}

std::vector<Result<ClassifyResult>> ShardedEngine::ClassifyBatch(
    const std::vector<chain::AddressId>& addresses,
    const ClassifyOptions& options) {
  const size_t n = addresses.size();
  // Fan out through the async path: each shard micro-batches the slice
  // of the list it owns, and shards run concurrently.
  struct BatchState {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
  } state;
  state.remaining = n;
  std::vector<std::unique_ptr<Result<ClassifyResult>>> outcomes(n);
  for (size_t i = 0; i < n; ++i) {
    ClassifyAsync(addresses[i], options,
                  [&state, &outcomes, i](Result<ClassifyResult> r,
                                         const RequestTimeline&) {
                    std::lock_guard<std::mutex> lk(state.mu);
                    outcomes[i] =
                        std::make_unique<Result<ClassifyResult>>(std::move(r));
                    if (--state.remaining == 0) state.cv.notify_one();
                  });
  }
  if (n > 0) {
    std::unique_lock<std::mutex> lk(state.mu);
    state.cv.wait(lk, [&state] { return state.remaining == 0; });
  }
  std::vector<Result<ClassifyResult>> out;
  out.reserve(n);
  for (auto& o : outcomes) out.push_back(std::move(*o));
  return out;
}

Status ShardedEngine::SaveCache() const {
  // Attempt every shard even after a failure — a partially persisted
  // fleet restarts warmer than an unpersisted one — and report the
  // first error.
  Status first = Status::OK();
  for (size_t k = 0; k < shards_.size(); ++k) {
    Status s = shards_[k]->SaveCache();
    if (!s.ok() && first.ok()) {
      first = Status(s.code(), "shard " + std::to_string(k) + ": " +
                                   s.message());
    }
  }
  if (first.ok()) first = WriteManifest();
  return first;
}

size_t ShardedEngine::CacheSize() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->CacheSize();
  return n;
}

void ShardedEngine::ClearCache() {
  for (auto& shard : shards_) shard->ClearCache();
}

InferenceMetricsSnapshot ShardedEngine::ShardMetrics(int shard) const {
  BA_CHECK(shard >= 0 && shard < static_cast<int>(shards_.size()));
  return shards_[static_cast<size_t>(shard)]->Metrics();
}

InferenceMetricsSnapshot ShardedEngine::Metrics() const {
  InferenceMetricsSnapshot agg;
  agg.admission_state = "disabled";
  int worst_rank = 0;
  for (const auto& shard : shards_) {
    const InferenceMetricsSnapshot s = shard->Metrics();
    agg.requests += s.requests;
    agg.full_hits += s.full_hits;
    agg.partial_hits += s.partial_hits;
    agg.misses += s.misses;
    agg.coalesced += s.coalesced;
    agg.empty_history += s.empty_history;
    agg.batches += s.batches;
    agg.slices_built += s.slices_built;
    agg.slices_reused += s.slices_reused;
    agg.cache_entries += s.cache_entries;
    agg.cache_evictions += s.cache_evictions;
    agg.pool_backlog += s.pool_backlog;
    agg.queue_depth += s.queue_depth;
    agg.shed += s.shed;
    agg.deadline_exceeded += s.deadline_exceeded;
    agg.degraded_stale += s.degraded_stale;
    agg.degraded_fallback += s.degraded_fallback;
    agg.degraded_late += s.degraded_late;
    agg.slow_requests += s.slow_requests;
    agg.build_seconds += s.build_seconds;
    agg.embed_seconds += s.embed_seconds;
    agg.aggregate_seconds += s.aggregate_seconds;
    agg.request_latency = MergeHistograms(agg.request_latency,
                                          s.request_latency);
    agg.batch_latency = MergeHistograms(agg.batch_latency, s.batch_latency);
    const int rank = AdmissionRank(s.admission_state);
    if (rank > worst_rank) {
      worst_rank = rank;
      agg.admission_state = s.admission_state;
    }
  }
  const uint64_t classified = agg.requests >= agg.empty_history
                                  ? agg.requests - agg.empty_history
                                  : 0;
  agg.hit_rate = classified == 0
                     ? 0.0
                     : static_cast<double>(agg.full_hits + agg.partial_hits +
                                           agg.coalesced) /
                           static_cast<double>(classified);
  return agg;
}

std::string ShardedEngine::SlowlogJson(size_t max_entries) const {
  // Same shape as the single engine's payload; each array holds up to
  // max_entries entries per shard, in shard-major order (per-recorder
  // seq values are not comparable across shards).
  std::ostringstream os;
  os << "{\"threshold_seconds\":" << options_.engine.slow_request_threshold;
  for (const char* ring : {"slow", "recent"}) {
    os << ",\"" << ring << "\":[";
    bool first = true;
    for (const auto& shard : shards_) {
      const FlightRecorder* rec = ring[0] == 's'
                                      ? shard->slow_recorder()
                                      : shard->flight_recorder();
      if (rec == nullptr) continue;
      for (const FlightRecorder::Entry& e : rec->Snapshot(max_entries)) {
        if (!first) os << ",";
        first = false;
        os << e.ToJson();
      }
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

std::optional<FlightRecorder::Entry> ShardedEngine::FindTimeline(
    uint64_t trace_id) const {
  for (const auto& shard : shards_) {
    auto hit = shard->FindTimeline(trace_id);
    if (hit.has_value()) return hit;
  }
  return std::nullopt;
}

void ShardedEngine::ForgetClient(uint64_t client_id) {
  detector_.Forget(client_id);
}

}  // namespace ba::serve
