#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"

/// \file flight_recorder.h
/// \brief Always-on ring of the last N per-request timelines.
///
/// Tracing answers "what is the process doing" but has to be switched
/// on before the interesting request arrives. The flight recorder is
/// the complement: it is cheap enough to leave on in production (one
/// relaxed fetch_add plus one uncontended per-slot mutex per request,
/// ~100 bytes per slot), so when a tail-latency complaint lands the
/// last N timelines — including the slow one — are already captured
/// and queryable over the admin port (`slowlog` / `timeline
/// <trace_id>`), no reproduction needed.
///
/// Concurrency: writers never share a lock. `Record` claims a slot
/// with a relaxed fetch_add on the head counter and takes only that
/// slot's mutex, so concurrent deliveries from different batch leaders
/// proceed in parallel; the per-slot mutex exists solely to keep an
/// admin snapshot from reading a half-written entry (and stays
/// TSan-clean, unlike a seqlock over plain fields). A reader walking
/// all slots momentarily delays at most one writer per slot.

namespace ba::serve {

/// \brief Fixed-capacity timeline ring shared by writers (request
/// deliveries) and readers (admin queries).
class FlightRecorder {
 public:
  struct Entry {
    /// Monotone record index — orders entries without timestamps and
    /// tells a reader how much history the ring has seen.
    uint64_t seq = 0;
    /// The classified address (slowlog triage usually starts here).
    uint64_t address = 0;
    RequestTimeline timeline;

    /// Single-line JSON object.
    std::string ToJson() const;
  };

  /// `capacity` is clamped to >= 1.
  explicit FlightRecorder(size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one finished request, overwriting the oldest entry once
  /// the ring is full. Safe from any number of threads.
  void Record(uint64_t address, const RequestTimeline& timeline);

  /// Most-recent-first snapshot of up to `max_entries` entries.
  std::vector<Entry> Snapshot(size_t max_entries) const;

  /// The most recent entry whose timeline carries `trace_id`, or
  /// nullopt when it has aged out (or never arrived).
  std::optional<Entry> Find(uint64_t trace_id) const;

  size_t capacity() const { return capacity_; }

  /// Total entries ever recorded (>= capacity means the ring wrapped).
  uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// JSON array of `Snapshot(max_entries)`, newest first, one line.
  std::string ToJson(size_t max_entries) const;

 private:
  struct Slot {
    mutable std::mutex mu;
    Entry entry;
    bool filled = false;
  };

  size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};
};

}  // namespace ba::serve
