#include "serve/admission.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ba::serve {

namespace {

/// Process-wide instruments, shared by every controller in the process
/// (an A/B pair of engines contributes to one admission picture).
obs::Gauge* InflightGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Instance().GetGauge("serve.admission.inflight");
  return g;
}

obs::Counter* AdmittedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Instance().GetCounter("serve.admission.admitted");
  return c;
}

obs::Counter* ShedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Instance().GetCounter("serve.admission.shed");
  return c;
}

}  // namespace

Status AdmissionOptions::Validate() const {
  if (max_inflight < 1) {
    return Status::InvalidArgument(
        "AdmissionOptions.max_inflight must be >= 1, got " +
        std::to_string(max_inflight));
  }
  if (low_watermark < 0) {
    return Status::InvalidArgument(
        "AdmissionOptions.low_watermark must be >= 0, got " +
        std::to_string(low_watermark));
  }
  if (high_watermark <= low_watermark) {
    return Status::InvalidArgument(
        "AdmissionOptions.high_watermark (" + std::to_string(high_watermark) +
        ") must exceed low_watermark (" + std::to_string(low_watermark) +
        ")");
  }
  if (!(recovery_rate > 0.0)) {
    return Status::InvalidArgument(
        "AdmissionOptions.recovery_rate must be positive, got " +
        std::to_string(recovery_rate));
  }
  if (recovery_burst < 1) {
    return Status::InvalidArgument(
        "AdmissionOptions.recovery_burst must be >= 1, got " +
        std::to_string(recovery_burst));
  }
  return Status::OK();
}

const char* AdmissionController::StateName(State state) {
  switch (state) {
    case State::kAccepting:
      return "accepting";
    case State::kShedding:
      return "shedding";
    case State::kRecovering:
      return "recovering";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  BA_CHECK(options_.Validate().ok());
}

Status AdmissionController::Admit(int64_t backlog, int priority) {
  return AdmitAt(Clock::now(), backlog, priority);
}

Status AdmissionController::AdmitAt(Clock::time_point now, int64_t backlog,
                                    int priority) {
  std::lock_guard<std::mutex> lock(mu_);

  // Advance the state machine on the live backlog signal BEFORE the
  // hard-budget check. The budget rejection must not short-circuit the
  // transition: under sustained budget-exhausted overload every call
  // would return early and the controller would sit parked in
  // `accepting` while the backlog screamed past high_watermark — then
  // the instant one slot freed it would admit at full rate instead of
  // entering shedding/recovery.
  switch (state_) {
    case State::kAccepting:
      if (backlog >= options_.high_watermark) state_ = State::kShedding;
      break;
    case State::kShedding:
      if (backlog <= options_.low_watermark) {
        state_ = State::kRecovering;
        // One token up front: the first probe after the backlog drains
        // is admitted immediately, then the bucket meters the rest.
        tokens_ = 1.0;
        last_refill_ = now;
      }
      break;
    case State::kRecovering: {
      const double dt =
          std::chrono::duration<double>(now - last_refill_).count();
      if (dt > 0.0) {
        tokens_ = std::min(static_cast<double>(options_.recovery_burst),
                           tokens_ + options_.recovery_rate * dt);
        last_refill_ = now;
      }
      if (backlog >= options_.high_watermark) {
        state_ = State::kShedding;
      } else if (tokens_ >=
                     static_cast<double>(options_.recovery_burst) &&
                 backlog <= options_.low_watermark) {
        state_ = State::kAccepting;
      }
      break;
    }
  }

  // The hard budget binds everyone, including priority traffic: it is
  // the limit that bounds memory, not a quality-of-service knob.
  if (inflight_ >= options_.max_inflight) {
    ++shed_;
    ShedCounter()->Increment();
    return Status::ResourceExhausted(
        "admission: in-flight budget exhausted (" +
        std::to_string(inflight_) + "/" +
        std::to_string(options_.max_inflight) + ")");
  }

  bool admit = priority > 0;
  if (!admit) {
    switch (state_) {
      case State::kAccepting:
        admit = true;
        break;
      case State::kShedding:
        admit = false;
        break;
      case State::kRecovering:
        admit = tokens_ >= 1.0;
        if (admit) tokens_ -= 1.0;
        break;
    }
  }
  if (!admit) {
    ++shed_;
    ShedCounter()->Increment();
    return Status::ResourceExhausted(
        "admission: shedding under overload (backlog " +
        std::to_string(backlog) + ", state " + StateName(state_) + ")");
  }
  ++inflight_;
  ++admitted_;
  InflightGauge()->Add(1);
  AdmittedCounter()->Increment();
  return Status::OK();
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  BA_CHECK_GT(inflight_, 0);
  --inflight_;
  InflightGauge()->Add(-1);
}

AdmissionController::State AdmissionController::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

uint64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

}  // namespace ba::serve
