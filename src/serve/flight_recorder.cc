#include "serve/flight_recorder.h"

#include <algorithm>

namespace ba::serve {

std::string FlightRecorder::Entry::ToJson() const {
  std::string out;
  out += "{\"seq\":" + std::to_string(seq);
  out += ",\"address\":" + std::to_string(address);
  out += ",\"timeline\":" + timeline.ToJson() + "}";
  return out;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void FlightRecorder::Record(uint64_t address,
                            const RequestTimeline& timeline) {
  const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.entry.seq = seq;
  slot.entry.address = address;
  slot.entry.timeline = timeline;
  slot.filled = true;
}

std::vector<FlightRecorder::Entry> FlightRecorder::Snapshot(
    size_t max_entries) const {
  std::vector<Entry> entries;
  // The collection loop visits every slot regardless of max_entries, so
  // reserve for the worst case — reserving min(capacity, max_entries)
  // would just reallocate mid-loop on a full ring. Only the top
  // max_entries by seq are wanted; partial_sort stops ordering there
  // instead of fully sorting all `capacity_` entries for an admin query
  // that asked for 32.
  entries.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.filled) entries.push_back(slot.entry);
  }
  const auto newer = [](const Entry& a, const Entry& b) {
    return a.seq > b.seq;
  };
  if (entries.size() > max_entries) {
    std::partial_sort(entries.begin(),
                      entries.begin() + static_cast<ptrdiff_t>(max_entries),
                      entries.end(), newer);
    entries.resize(max_entries);
  } else {
    std::sort(entries.begin(), entries.end(), newer);
  }
  return entries;
}

std::optional<FlightRecorder::Entry> FlightRecorder::Find(
    uint64_t trace_id) const {
  std::optional<Entry> best;
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (!slot.filled || slot.entry.timeline.trace_id != trace_id) continue;
    if (!best.has_value() || slot.entry.seq > best->seq) best = slot.entry;
  }
  return best;
}

std::string FlightRecorder::ToJson(size_t max_entries) const {
  const std::vector<Entry> entries = Snapshot(max_entries);
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ",";
    out += entries[i].ToJson();
  }
  out += "]";
  return out;
}

}  // namespace ba::serve
