#pragma once

#include "obs/metrics.h"

/// \file metrics.h
/// \brief Serving-layer aliases for the process-wide observability
/// instruments in obs/metrics.h.
///
/// These types started here as engine-local primitives (PR 2) and were
/// generalized into `src/obs` so every subsystem shares one taxonomy
/// and one registry. The serving code keeps its original spellings —
/// `LatencyHistogram` is obs::Histogram under its dominant use — and
/// the per-engine snapshot semantics are unchanged: each engine still
/// owns its own instrument instances, and additionally publishes a
/// JSON provider into obs::MetricsRegistry (see inference_engine.h).

namespace ba::serve {

using Counter = obs::Counter;
using Gauge = obs::Gauge;
using TimeAccumulator = obs::TimeAccumulator;
using HistogramSnapshot = obs::HistogramSnapshot;
using LatencyHistogram = obs::Histogram;

using obs::FormatSeconds;

}  // namespace ba::serve
