#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

/// \file metrics.h
/// \brief Lock-free serving observability primitives: monotonic
/// counters and log-bucketed latency histograms with percentile
/// estimation. The inference engine aggregates these into a printable /
/// scrapeable `InferenceMetricsSnapshot` (see inference_engine.h) — the
/// BitScope-style monitoring loop (repeated queries over a growing
/// ledger) reads them to watch throughput, tail latency and cache
/// effectiveness.
///
/// All mutators are safe to call concurrently from request threads;
/// readers observe a (momentarily) consistent-enough view without
/// stopping the world, which is what a metrics scrape wants.

namespace ba::serve {

/// \brief A monotonically increasing event counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Accumulates wall-clock seconds from concurrent recorders
/// (per-stage pipeline timings). Stored as integer nanoseconds so the
/// accumulation is a plain atomic add.
class TimeAccumulator {
 public:
  void AddSeconds(double seconds) {
    nanos_.fetch_add(static_cast<int64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
  }

  double Seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }

 private:
  std::atomic<int64_t> nanos_{0};
};

/// \brief Point-in-time summary of one latency histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double total_seconds = 0.0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
};

/// \brief Fixed log-spaced latency histogram (1µs … ~3.5h upper bucket)
/// with interpolation-free percentile estimation: a percentile reports
/// the geometric midpoint of the bucket containing it, so estimates are
/// within one bucket ratio (×1.5) of the true value — plenty for
/// serving dashboards, with zero allocation and no locks on the record
/// path.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 56;
  static constexpr double kFirstUpperBound = 1e-6;  // 1µs
  static constexpr double kGrowth = 1.5;

  /// Records one observation (thread-safe, lock-free).
  void Record(double seconds);

  /// Summarizes the current contents (concurrent-safe; the snapshot is
  /// approximate under concurrent writes).
  HistogramSnapshot Snapshot() const;

  /// Estimated percentile in seconds, p in (0, 100].
  double Percentile(double p) const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  double TotalSeconds() const {
    return static_cast<double>(
               total_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }

 private:
  /// Upper bound of bucket `i` in seconds; the final bucket is
  /// unbounded and reports its lower bound.
  static double UpperBound(int i);
  static int BucketOf(double seconds);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> total_nanos_{0};
  std::atomic<int64_t> max_nanos_{0};
};

/// Renders seconds as a human-scaled string ("1.23ms", "45.6µs").
std::string FormatSeconds(double seconds);

}  // namespace ba::serve
