#include "serve/protocol.h"

#include <cstring>

namespace ba::serve {
namespace {

template <typename T>
void AppendPod(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

using Micros = std::chrono::microseconds;

}  // namespace

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kShed:
      return "shed";
    case RequestOutcome::kDeadline:
      return "deadline";
    case RequestOutcome::kDegraded:
      return "degraded";
    case RequestOutcome::kError:
      return "error";
  }
  return "unknown";
}

bool RequestTimeline::Monotone() const {
  if (deliver_ns < 0) return false;  // never delivered: not a timeline
  const int64_t stamps[] = {enqueue_ns, batch_join_ns, lookup_ns,
                            build_ns,   aggregate_ns,  deliver_ns};
  int64_t last = 0;
  for (const int64_t s : stamps) {
    if (s < 0) continue;  // stage never reached
    if (s < last) return false;
    last = s;
  }
  return true;
}

std::string RequestTimeline::ToJson() const {
  std::string out;
  out += "{\"trace_id\":" + std::to_string(trace_id);
  out += ",\"span_id\":" + std::to_string(span_id);
  out += ",\"outcome\":\"";
  out += RequestOutcomeName(outcome);
  out += "\",\"enqueue_ns\":" + std::to_string(enqueue_ns);
  out += ",\"batch_join_ns\":" + std::to_string(batch_join_ns);
  out += ",\"lookup_ns\":" + std::to_string(lookup_ns);
  out += ",\"build_ns\":" + std::to_string(build_ns);
  out += ",\"aggregate_ns\":" + std::to_string(aggregate_ns);
  out += ",\"deliver_ns\":" + std::to_string(deliver_ns) + "}";
  return out;
}

void RequestTimeline::EncodeTo(std::string* out) const {
  AppendPod(out, trace_id);
  AppendPod(out, span_id);
  AppendPod(out, enqueue_ns);
  AppendPod(out, batch_join_ns);
  AppendPod(out, lookup_ns);
  AppendPod(out, build_ns);
  AppendPod(out, aggregate_ns);
  AppendPod(out, deliver_ns);
  AppendPod(out, static_cast<uint8_t>(outcome));
}

Status RequestTimeline::DecodeFrom(util::BufferReader* in,
                                   RequestTimeline* out) {
  RequestTimeline tl;
  uint8_t outcome = 0;
  if (!in->ReadPod(&tl.trace_id) || !in->ReadPod(&tl.span_id) ||
      !in->ReadPod(&tl.enqueue_ns) || !in->ReadPod(&tl.batch_join_ns) ||
      !in->ReadPod(&tl.lookup_ns) || !in->ReadPod(&tl.build_ns) ||
      !in->ReadPod(&tl.aggregate_ns) || !in->ReadPod(&tl.deliver_ns) ||
      !in->ReadPod(&outcome)) {
    return Status::InvalidArgument("truncated RequestTimeline encoding");
  }
  if (outcome > static_cast<uint8_t>(RequestOutcome::kError)) {
    return Status::InvalidArgument(
        "RequestTimeline.outcome out of range: " + std::to_string(outcome));
  }
  tl.outcome = static_cast<RequestOutcome>(outcome);
  *out = tl;
  return Status::OK();
}

void ClassifyOptions::EncodeTo(std::string* out,
                               std::chrono::steady_clock::time_point now,
                               uint16_t version) const {
  int64_t budget_micros = -1;
  if (has_deadline()) {
    // A deadline already behind `now` encodes as a negative budget and
    // decodes as already-expired — exactly the submit-time rejection
    // the receiver should apply.
    budget_micros =
        std::chrono::duration_cast<Micros>(deadline - now).count();
  }
  AppendPod(out, budget_micros);
  AppendPod(out, static_cast<uint8_t>(allow_degraded ? 1 : 0));
  AppendPod(out, static_cast<int32_t>(priority));
  if (version >= 2) {
    AppendPod(out, trace_id);
    AppendPod(out, span_id);
  }
}

Status ClassifyOptions::DecodeFrom(
    util::BufferReader* in, std::chrono::steady_clock::time_point now,
    ClassifyOptions* out, uint16_t version) {
  int64_t budget_micros = 0;
  uint8_t allow = 0;
  int32_t priority = 0;
  if (!in->ReadPod(&budget_micros) || !in->ReadPod(&allow) ||
      !in->ReadPod(&priority)) {
    return Status::InvalidArgument("truncated ClassifyOptions encoding");
  }
  if (allow > 1) {
    return Status::InvalidArgument(
        "ClassifyOptions.allow_degraded must encode as 0 or 1, got " +
        std::to_string(allow));
  }
  *out = ClassifyOptions{};
  if (budget_micros >= 0) {
    out->deadline = now + Micros(budget_micros);
  } else if (budget_micros != -1) {
    // Negative budget: the deadline expired in transit. Anchor it just
    // behind `now` so the receiver's expiry checks fire.
    out->deadline = now - Micros(1);
  }
  out->allow_degraded = allow != 0;
  out->priority = priority;
  if (version >= 2 &&
      (!in->ReadPod(&out->trace_id) || !in->ReadPod(&out->span_id))) {
    return Status::InvalidArgument(
        "truncated ClassifyOptions trace context (v2)");
  }
  return Status::OK();
}

void ClassifyResult::EncodeTo(std::string* out) const {
  AppendPod(out, static_cast<int32_t>(predicted));
  AppendPod(out, static_cast<uint8_t>(cache_hit ? 1 : 0));
  AppendPod(out, static_cast<int32_t>(slices_reused));
  AppendPod(out, static_cast<int32_t>(slices_built));
  AppendPod(out, tx_count);
  AppendPod(out, static_cast<uint8_t>(degraded ? 1 : 0));
  AppendPod(out, epoch_lag);
}

Status ClassifyResult::DecodeFrom(util::BufferReader* in,
                                  ClassifyResult* out) {
  int32_t predicted = 0;
  uint8_t cache_hit = 0;
  int32_t slices_reused = 0;
  int32_t slices_built = 0;
  uint64_t tx_count = 0;
  uint8_t degraded = 0;
  uint64_t epoch_lag = 0;
  if (!in->ReadPod(&predicted) || !in->ReadPod(&cache_hit) ||
      !in->ReadPod(&slices_reused) || !in->ReadPod(&slices_built) ||
      !in->ReadPod(&tx_count) || !in->ReadPod(&degraded) ||
      !in->ReadPod(&epoch_lag)) {
    return Status::InvalidArgument("truncated ClassifyResult encoding");
  }
  *out = ClassifyResult{};
  out->predicted = predicted;
  out->cache_hit = cache_hit != 0;
  out->slices_reused = slices_reused;
  out->slices_built = slices_built;
  out->tx_count = tx_count;
  out->degraded = degraded != 0;
  out->epoch_lag = epoch_lag;
  return Status::OK();
}

std::string ClassifyRequest::EncodePayload(
    std::chrono::steady_clock::time_point now, uint16_t version) const {
  std::string payload;
  AppendPod(&payload, request_id);
  AppendPod(&payload, address);
  options.EncodeTo(&payload, now, version);
  return payload;
}

Status ClassifyRequest::Decode(std::string_view payload,
                               std::chrono::steady_clock::time_point now,
                               ClassifyRequest* out, uint16_t version) {
  util::BufferReader reader(payload.data(), payload.size());
  ClassifyRequest req;
  if (!reader.ReadPod(&req.request_id) || !reader.ReadPod(&req.address)) {
    return Status::InvalidArgument("truncated ClassifyRequest payload");
  }
  BA_RETURN_NOT_OK(
      ClassifyOptions::DecodeFrom(&reader, now, &req.options, version));
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(
        "ClassifyRequest payload has " +
        std::to_string(reader.remaining()) + " trailing bytes");
  }
  *out = std::move(req);
  return Status::OK();
}

ClassifyResponse ClassifyResponse::From(
    uint64_t request_id, const Result<ClassifyResult>& outcome,
    const RequestTimeline& timeline) {
  ClassifyResponse resp;
  resp.request_id = request_id;
  resp.timeline = timeline;
  if (outcome.ok()) {
    resp.code = static_cast<int32_t>(StatusCode::kOk);
    resp.has_result = true;
    resp.result = outcome.value();
    resp.result.timeline = timeline;
  } else {
    resp.code = static_cast<int32_t>(outcome.status().code());
    resp.message = outcome.status().message();
    if (resp.message.size() > kMaxWireMessage) {
      resp.message.resize(kMaxWireMessage);
    }
  }
  return resp;
}

Result<ClassifyResult> ClassifyResponse::ToResult() const {
  if (code == static_cast<int32_t>(StatusCode::kOk) && has_result) {
    return result;
  }
  if (code == static_cast<int32_t>(StatusCode::kOk)) {
    return Status::Internal("ClassifyResponse: OK code without a result");
  }
  return Status(static_cast<StatusCode>(code), message);
}

std::string ClassifyResponse::EncodePayload(uint16_t version) const {
  std::string payload;
  AppendPod(&payload, request_id);
  AppendPod(&payload, code);
  AppendPod(&payload, static_cast<uint32_t>(message.size()));
  payload.append(message);
  AppendPod(&payload, static_cast<uint8_t>(has_result ? 1 : 0));
  if (has_result) result.EncodeTo(&payload);
  if (version >= 2) timeline.EncodeTo(&payload);
  return payload;
}

Status ClassifyResponse::Decode(std::string_view payload,
                                ClassifyResponse* out, uint16_t version) {
  util::BufferReader reader(payload.data(), payload.size());
  ClassifyResponse resp;
  uint32_t message_len = 0;
  if (!reader.ReadPod(&resp.request_id) || !reader.ReadPod(&resp.code) ||
      !reader.ReadPod(&message_len)) {
    return Status::InvalidArgument("truncated ClassifyResponse payload");
  }
  if (message_len > kMaxWireMessage) {
    return Status::InvalidArgument(
        "ClassifyResponse message claims an absurd length " +
        std::to_string(message_len));
  }
  if (reader.remaining() < message_len) {
    return Status::InvalidArgument("truncated ClassifyResponse message");
  }
  resp.message.resize(message_len);
  if (message_len > 0 &&
      !reader.ReadBytes(resp.message.data(), message_len)) {
    return Status::InvalidArgument("truncated ClassifyResponse message");
  }
  uint8_t has_result = 0;
  if (!reader.ReadPod(&has_result)) {
    return Status::InvalidArgument("truncated ClassifyResponse payload");
  }
  if (has_result > 1) {
    return Status::InvalidArgument(
        "ClassifyResponse.has_result must encode as 0 or 1, got " +
        std::to_string(has_result));
  }
  resp.has_result = has_result != 0;
  if (resp.has_result) {
    BA_RETURN_NOT_OK(ClassifyResult::DecodeFrom(&reader, &resp.result));
  }
  if (version >= 2) {
    BA_RETURN_NOT_OK(RequestTimeline::DecodeFrom(&reader, &resp.timeline));
    resp.result.timeline = resp.timeline;
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(
        "ClassifyResponse payload has " +
        std::to_string(reader.remaining()) + " trailing bytes");
  }
  *out = std::move(resp);
  return Status::OK();
}

std::string EncodeFrame(MessageType type, std::string_view payload,
                        uint16_t version) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  frame.append(kWireMagic, sizeof(kWireMagic));
  AppendPod(&frame, version);
  AppendPod(&frame, static_cast<uint16_t>(type));
  AppendPod(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload.data(), payload.size());
  const uint32_t crc = util::Crc32(frame.data(), frame.size());
  AppendPod(&frame, crc);
  return frame;
}

void FrameDecoder::Append(const char* data, size_t len) {
  if (!failed_.ok()) return;  // corrupt stream: drop further bytes
  // Compact the consumed prefix before it dominates the buffer, so a
  // long-lived connection's memory stays proportional to in-flight
  // bytes, not lifetime traffic.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, len);
}

Result<bool> FrameDecoder::Next(Frame* out) {
  if (!failed_.ok()) return failed_;
  const size_t avail = buf_.size() - pos_;
  if (avail < 8) return false;  // magic + version + type first
  const char* head = buf_.data() + pos_;
  if (std::memcmp(head, kWireMagic, sizeof(kWireMagic)) != 0) {
    failed_ = Status::InvalidArgument(
        "frame decode: bad magic (not a BANP stream)");
    return failed_;
  }
  uint16_t version = 0;
  uint16_t type = 0;
  std::memcpy(&version, head + 4, sizeof(version));
  std::memcpy(&type, head + 6, sizeof(type));
  if (version < kMinWireVersion || version > kWireVersion) {
    failed_ = Status::InvalidArgument(
        "frame decode: unsupported protocol version " +
        std::to_string(version) + " (this peer speaks " +
        std::to_string(kMinWireVersion) + ".." +
        std::to_string(kWireVersion) + ")");
    return failed_;
  }
  if (avail < kFrameHeaderBytes) return false;
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, head + 8, sizeof(payload_len));
  // Validated straight from the header — an oversized claim is
  // rejected before any payload is buffered or allocated.
  if (payload_len > max_payload_) {
    failed_ = Status::InvalidArgument(
        "frame decode: declared payload length " +
        std::to_string(payload_len) + " exceeds the " +
        std::to_string(max_payload_) + " byte limit");
    return failed_;
  }
  const size_t total =
      kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
  if (avail < total) return false;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, head + kFrameHeaderBytes + payload_len,
              sizeof(stored_crc));
  const uint32_t computed_crc =
      util::Crc32(head, kFrameHeaderBytes + payload_len);
  if (stored_crc != computed_crc) {
    failed_ = Status::InvalidArgument(
        "frame decode: crc32 mismatch (stored " +
        std::to_string(stored_crc) + ", computed " +
        std::to_string(computed_crc) + ")");
    return failed_;
  }
  out->version = version;
  out->type = static_cast<MessageType>(type);
  out->payload.assign(head + kFrameHeaderBytes, payload_len);
  pos_ += total;
  return true;
}

}  // namespace ba::serve
