#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chain/ledger.h"
#include "core/classifier.h"
#include "serve/inference_engine.h"
#include "serve/router.h"

/// \file sharded_engine.h
/// \brief N inference engines behind a consistent-hash router, served
/// through the same `serve::Engine` surface as one.
///
/// A single `InferenceEngine` tops out on two serial resources: the
/// batch-leader pipeline (even with hand-off, every request crosses one
/// queue mutex) and the embedding cache's `cache_mu_`. The sharded tier
/// scales past both by partitioning the *address space*: each of N
/// engines owns the cache, queue, leaders and admission slots for its
/// consistent-hash slice, so engines share nothing per-request and
/// throughput on a cache-friendly workload scales near-linearly (the
/// `--engines N` mode of bench_serve_throughput gates on >= 3x at
/// N = 4).
///
/// Routing is deterministic (see router.h): the same address always
/// lands on the same shard, which is what makes per-shard caches
/// *correct* — an address's embeddings are only ever read and written
/// by its owning shard, and a warm restart sends it straight back to
/// the shard whose cache file holds it.
///
/// **Eviction-aware admission.** The router also runs a SweepDetector:
/// a client whose requests keep computing from scratch (a
/// mixer_hunt-style cold sweep over the whole address space) is
/// classified as *sweeping* and its requests are stamped
/// `CacheMode::kNoPromote` — they read the cache and refresh entries in
/// place, but never insert or promote, so a full-chain scan cannot
/// evict the monitoring working set (bench gate: hot-set hit rate with
/// a concurrent sweep stays >= 90% of its no-sweep value).
///
/// **Wire stability.** ShardedEngine implements `serve::Engine`, so
/// `net::Server`, the `ba_serve` daemon (`--engines N`) and the admin
/// port work unchanged: `metrics` reports one aggregated
/// InferenceMetricsSnapshot (counters summed, histograms merged
/// count-weighted, admission state = worst shard), `slowlog` /
/// `timeline` search every shard's rings, and SaveCache persists one
/// BASV v2 file per shard (`<cache_path>.shard<k>`) plus a manifest
/// recording the shard count — a restart with a different `--engines`
/// is rejected descriptively instead of silently splitting every
/// address's history across two caches.

namespace ba::serve {

/// \brief Sharded-tier tunables.
struct ShardedEngineOptions {
  ShardedEngineOptions() {
    // Each shard sees 1/N of the load but still benefits from draining
    // while a slow batch runs; two leaders per shard is the measured
    // sweet spot at bench scale.
    engine.max_batch_leaders = 2;
  }

  /// Number of InferenceEngine shards (>= 1; 1 is a valid degenerate
  /// deployment that still runs the router + sweep detector).
  int num_engines = 2;

  /// Per-shard engine options. `cache_path` is treated as a *base*
  /// path: shard k persists to `<cache_path>.shard<k>`, and the shard
  /// count is recorded in `<cache_path>.manifest`. `num_threads` /
  /// `pool` apply per shard — prefer an injected shared pool (or
  /// num_threads = 0 for the process-wide pool) so N shards don't
  /// create N private pools.
  InferenceEngineOptions engine;

  /// Ring points per shard (see ShardRouter).
  uint32_t vnodes_per_shard = 64;

  /// Consecutive computed-from-scratch answers before a client is
  /// classified as sweeping (see SweepDetector); < 1 disables sweep
  /// detection.
  int sweep_miss_streak = 32;

  Status Validate() const;
};

/// \brief Consistent-hash router over N InferenceEngine shards.
class ShardedEngine : public Engine {
 public:
  using Options = ShardedEngineOptions;

  /// \brief Validating factory. Fails on invalid options, on anything
  /// per-shard engine creation fails on, and on a persisted manifest
  /// whose shard count differs from `options.num_engines`.
  static Result<std::unique_ptr<ShardedEngine>> Create(
      const core::BaClassifier* classifier, const chain::Ledger* ledger,
      Options options);

  /// Destroys shards in turn; each drains its in-flight requests first.
  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Routes to the owning shard. On top of the per-engine contract the
  /// router stamps `options.cache_mode` from its sweep detector (keyed
  /// on `options.client_id`) and feeds the outcome back into it.
  void ClassifyAsync(chain::AddressId address, const ClassifyOptions& options,
                     ClassifyCallback done) override;

  /// Blocking wrapper: routes, then runs the shard's blocking path
  /// (the calling thread can become that shard's batch leader, keeping
  /// single-caller latency identical to the unsharded engine).
  Result<ClassifyResult> Classify(chain::AddressId address,
                                  const ClassifyOptions& options = {}) override;

  /// Fans the list out through ClassifyAsync (per-shard micro-batching
  /// happens naturally) and blocks for all results; results align with
  /// input. Must not be called from an engine pool thread.
  std::vector<Result<ClassifyResult>> ClassifyBatch(
      const std::vector<chain::AddressId>& addresses,
      const ClassifyOptions& options = {}) override;

  /// Saves every shard's cache file, then the manifest. Returns the
  /// first error but still attempts every shard.
  Status SaveCache() const override;

  size_t CacheSize() const override;

  void ClearCache() override;

  /// One aggregated snapshot: counters summed across shards,
  /// latency histograms merged count-weighted (max of maxes),
  /// admission_state = the worst shard's state.
  InferenceMetricsSnapshot Metrics() const override;

  /// Merged admin payload: same shape as the single engine's, with
  /// each ring array holding up to `max_entries` entries per shard in
  /// shard-major order.
  std::string SlowlogJson(size_t max_entries) const override;

  std::optional<FlightRecorder::Entry> FindTimeline(
      uint64_t trace_id) const override;

  /// Drops a departed client from the sweep detector (the net server
  /// calls this on connection close).
  void ForgetClient(uint64_t client_id) override;

  /// Per-shard snapshot (monitoring; `shard` in [0, num_shards())).
  InferenceMetricsSnapshot ShardMetrics(int shard) const;

  uint32_t num_shards() const { return router_.num_shards(); }

  /// The shard that owns `address` (tests pin routing determinism).
  uint32_t ShardOf(chain::AddressId address) const {
    return router_.ShardOf(address);
  }

  /// Clients currently classified as sweeping.
  uint64_t sweeping_clients() const { return detector_.sweeping_clients(); }

  const Options& options() const { return options_; }

 private:
  ShardedEngine(Options options);

  /// `<cache_path>.manifest` body ("shards <N>\n"); parsing + mismatch
  /// diagnostics live in one place.
  static std::string ManifestPath(const std::string& cache_base);
  static Status CheckManifest(const std::string& cache_base, int num_engines);
  Status WriteManifest() const;

  Options options_;
  ShardRouter router_;
  mutable SweepDetector detector_;
  std::vector<std::unique_ptr<InferenceEngine>> shards_;

  /// Router-level instruments (process-wide registry).
  Counter* requests_ = nullptr;        ///< serve.router.requests
  Counter* sweep_requests_ = nullptr;  ///< serve.router.sweep_requests
  /// Name the router's JSON provider is registered under.
  std::string registry_provider_name_;
};

}  // namespace ba::serve
