#include "serve/router.h"

#include <algorithm>

#include "util/logging.h"

namespace ba::serve {
namespace {

/// splitmix64 — the same cheap, well-mixed 64-bit finalizer the fault
/// injector's probabilistic streams use. Good enough avalanche that
/// sequential AddressIds land uniformly on the ring.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouter::ShardRouter(uint32_t num_shards, uint32_t vnodes_per_shard)
    : num_shards_(std::max<uint32_t>(num_shards, 1)) {
  const uint32_t vnodes = std::max<uint32_t>(vnodes_per_shard, 1);
  ring_.reserve(static_cast<size_t>(num_shards_) * vnodes);
  for (uint32_t shard = 0; shard < num_shards_; ++shard) {
    for (uint32_t v = 0; v < vnodes; ++v) {
      // Point identity mixes shard and vnode ordinals; the odd
      // multiplier keeps distinct (shard, vnode) pairs from colliding
      // before the mix.
      const uint64_t key =
          (static_cast<uint64_t>(shard) << 32) | (v * 2654435761u);
      ring_.emplace_back(Mix64(key), shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

uint32_t ShardRouter::ShardOf(chain::AddressId address) const {
  const uint64_t h = Mix64(static_cast<uint64_t>(address));
  // Successor on the ring, wrapping past the largest point.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<uint64_t, uint32_t>& p, uint64_t value) {
        return p.first < value;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

SweepDetector::SweepDetector(int threshold) : threshold_(threshold) {}

CacheMode SweepDetector::ModeFor(uint64_t client_id) const {
  if (threshold_ < 1 || client_id == 0) return CacheMode::kNormal;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client_id);
  return it != clients_.end() && it->second.sweeping
             ? CacheMode::kNoPromote
             : CacheMode::kNormal;
}

void SweepDetector::Observe(uint64_t client_id, bool reused_cache) {
  if (threshold_ < 1 || client_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client_id);
  if (it == clients_.end()) {
    if (clients_.size() >= kMaxClients) return;
    it = clients_.emplace(client_id, ClientState{}).first;
  }
  ClientState& c = it->second;
  if (reused_cache) {
    c.streak = 0;
    // Unmarking is sticky: a scanner that wraps back over the handful
    // of entries it cached before being caught produces a short hit
    // run, and unmarking on the first hit would let it alternate
    // between marked and unmarked forever — inserting (and evicting
    // the hot set) on every wrap. A genuine working-set client hits
    // continuously and clears the mark within kUnmarkHitRun requests.
    if (c.sweeping && ++c.hit_streak >= kUnmarkHitRun) {
      c.sweeping = false;
      c.hit_streak = 0;
    }
    return;
  }
  c.hit_streak = 0;
  // A repeat offender re-marks on a much shorter streak: the first
  // detection paid the full threshold of cold insertions, there is no
  // reason to sell that many hot entries again.
  const int effective = c.ever_swept
                            ? std::max(2, threshold_ / 4)
                            : threshold_;
  if (++c.streak >= effective) {
    c.sweeping = true;
    c.ever_swept = true;
  }
}

void SweepDetector::Forget(uint64_t client_id) {
  if (client_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  clients_.erase(client_id);
}

uint64_t SweepDetector::sweeping_clients() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [id, c] : clients_) n += c.sweeping ? 1 : 0;
  return n;
}

}  // namespace ba::serve
