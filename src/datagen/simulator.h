#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "chain/ledger.h"
#include "chain/wallet.h"
#include "datagen/behavior.h"
#include "datagen/scenario.h"
#include "util/rng.h"
#include "util/status.h"

/// \file simulator.h
/// \brief Behavioral economy simulator: drives exchange, mining,
/// gambling, service (mixer) and retail actors over a real UTXO ledger,
/// producing the labeled address dataset that substitutes for the
/// paper's crawled 2M-address corpus (see DESIGN.md §1).

namespace ba::datagen {

/// \brief Runs one simulated economy and exposes the resulting ledger
/// plus ground-truth behavior labels.
class Simulator {
 public:
  explicit Simulator(const ScenarioConfig& config);

  /// Fault point hit once per simulated block (see util::FaultInjector):
  /// armed, Run() stops with Internal *before* stepping that block. All
  /// economy state (ledger, wallets, RNG) remains consistent at the
  /// block boundary, and a later Run() call resumes from the block that
  /// failed — long generations can be killed and resumed like
  /// GraphModel::Train.
  static constexpr const char* kFaultRunStep = "sim.run.step";

  /// \brief Simulates blocks up to `config.num_blocks`, resuming from
  /// wherever a previous interrupted call stopped. Idempotent once
  /// complete (extra calls simulate nothing and re-verify conservation).
  Status Run();

  const chain::Ledger& ledger() const { return ledger_; }
  chain::Ledger* mutable_ledger() { return &ledger_; }

  /// \brief Ground-truth labeled addresses with at least `min_txs`
  /// ledger transactions. Every returned address belongs to exactly one
  /// behavior class by construction.
  std::vector<LabeledAddress> CollectLabeledAddresses(int min_txs = 2) const;

  /// \brief Entity-resolved label: which concrete actor (exchange #2,
  /// pool #0, ...) owns the address — the ground truth for the paper's
  /// future-work entity-identification task ("is this address
  /// Coinbase or Binance?").
  struct EntityLabeledAddress {
    chain::AddressId address = chain::kInvalidAddress;
    BehaviorLabel behavior = BehaviorLabel::kExchange;
    /// Dense id, unique across all actors of all classes.
    int entity_id = -1;
  };

  /// Entity-resolved labels for addresses with >= `min_txs` history.
  std::vector<EntityLabeledAddress> CollectEntityLabels(int min_txs = 2) const;

  /// Number of transactions the simulation skipped for insolvency
  /// (diagnostic; should stay a small fraction).
  int64_t skipped_actions() const { return skipped_actions_; }

 private:
  struct Miner {
    chain::Wallet wallet;
    chain::AddressId reward_address = chain::kInvalidAddress;
    int exchange = 0;  // index of the exchange this miner cashes out at
    chain::AddressId deposit_address = chain::kInvalidAddress;
  };

  struct MiningPool {
    chain::Wallet wallet;
    chain::AddressId reward_address = chain::kInvalidAddress;
    std::vector<int> miner_indices = {};  // indices into miners_
    // Per-pool heterogeneity: pools differ in payout cadence and the
    // fraction of miners each payout covers.
    int payout_interval = 12;
    double payout_fraction = 0.6;
  };

  struct Exchange {
    chain::Wallet hot_wallet;
    chain::AddressId hot_address = chain::kInvalidAddress;
    chain::Wallet cold_wallet;
    chain::AddressId cold_address = chain::kInvalidAddress;
    chain::Wallet deposit_wallet;  // owns all per-user deposit addresses
    /// Underground banks run the same machinery but are labeled
    /// Service and launder their float through the mixers.
    bool is_underground = false;
    // Per-exchange heterogeneity: operational parameters differ across
    // exchanges, so the class is not identified by a single signature.
    int withdrawal_batch = 4;
    int sweep_interval = 18;
    double amount_scale = 1.0;
  };

  struct GamblingHouse {
    chain::Wallet wallet;
    chain::AddressId house_address = chain::kInvalidAddress;
    std::vector<int> gambler_indices = {};  // indices into users_
    // Winnings owed, paid out in batched transactions (like an
    // exchange's batched withdrawals — deliberate class overlap).
    std::deque<chain::TxOut> pending_payouts = {};
    int payout_batch = 3;
    double amount_scale = 1.0;
  };

  struct PendingBet {
    int house = 0;
    int gambler = 0;  // index into users_
    chain::Amount amount = 0;
    int resolve_block = 0;
  };

  struct Service {
    chain::Wallet wallet;
    /// Rotating pool of reused mixing addresses — what gives service
    /// addresses their rich split/merge histories.
    std::vector<chain::AddressId> mix_addresses = {};
    /// Owed client deliveries when the service batches payouts (an
    /// underground bank behaving like an exchange hot wallet).
    std::deque<chain::TxOut> pending_payouts = {};
    double batch_payout_prob = 0.4;
    double amount_scale = 1.0;
  };

  struct PendingMix {
    int service = 0;
    int client = 0;   ///< index into users_, or -1 when a bank is the client
    int client_bank = -1;  ///< index into exchanges_ when a bank mixes
    int hops_left = 0;
    /// Addresses (within the service's rotating pool) currently holding
    /// this mix's funds.
    std::vector<chain::AddressId> holding;
    chain::Amount amount = 0;  // remaining value net of fees
  };

  /// A retail participant; gamblers and mix clients are users too.
  struct User {
    chain::Wallet wallet;
    chain::AddressId primary_address = chain::kInvalidAddress;
    bool is_gambler = false;
    /// Few users know the underground banks; most deposit at real
    /// exchanges only.
    bool uses_banks = false;
    chain::AddressId gambling_address = chain::kInvalidAddress;
    /// Persistent per-exchange deposit address (exchanges assign each
    /// customer one reusable deposit address), kInvalidAddress until
    /// first used.
    std::vector<chain::AddressId> deposit_addresses = {};
  };

  void SetupActors();
  void StepBlock(int height);

  void MineCoinbase(int height);
  void PoolPayouts(int height);
  void MinerDeposits(int height);
  void ExchangeSweeps(int height);
  void ExchangeWithdrawals(int height);
  void ExchangeColdSweeps(int height);
  void RetailPayments(int height);
  void PlaceBets(int height);
  void ResolveBets(int height);
  void StartMixes(int height);
  void AdvanceMixes(int height);
  void ServiceBatchPayouts(int height);

  chain::Timestamp BlockTime(int height) const;
  chain::Timestamp NextTxTime(int height);
  chain::Amount SampleAmount(chain::Amount median);
  /// Sends from `wallet`, counting a skip when funds are insufficient.
  bool TrySend(chain::Wallet* wallet, chain::Timestamp when,
               const std::vector<chain::TxOut>& outs,
               chain::ChangePolicy policy);

  ScenarioConfig config_;
  Rng rng_;
  chain::Ledger ledger_;
  std::vector<MiningPool> pools_;
  std::vector<Miner> miners_;
  std::vector<Exchange> exchanges_;
  std::vector<GamblingHouse> houses_;
  std::vector<Service> services_;
  std::vector<User> users_;
  std::deque<PendingBet> pending_bets_;
  std::deque<PendingMix> pending_mixes_;
  int tx_in_block_ = 0;
  int64_t skipped_actions_ = 0;
  /// Next block Run() will simulate — the resume cursor after an
  /// injected fault (== config.num_blocks once complete).
  int next_block_ = 0;
};

}  // namespace ba::datagen
