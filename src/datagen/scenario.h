#pragma once

#include <cstdint>

#include "chain/types.h"

/// \file scenario.h
/// \brief Tunables of the behavioral economy simulated on the UTXO
/// ledger. Defaults produce a small but realistic economy in seconds;
/// every bench exposes the interesting knobs as CLI flags.

namespace ba::datagen {

/// \brief Configuration of one simulated bitcoin economy.
///
/// The simulation drives five actor families over `num_blocks` blocks:
/// mining pools (coinbase → mass payouts), exchanges (deposit /
/// withdrawal / cold sweeps), gambling houses (rapid small bets with a
/// house edge), mixing services (split-delay-merge chains — the
/// "underground bank" of §III) and retail users (background traffic).
struct ScenarioConfig {
  uint64_t seed = 42;

  // Simulation length.
  int num_blocks = 600;
  chain::Timestamp genesis_time = 1'293'840'000;  // 2011-01-01
  int64_t block_interval_seconds = 600;

  // Actor population.
  int num_mining_pools = 2;
  int miners_per_pool = 120;
  int num_exchanges = 3;
  int num_gambling_houses = 2;
  int gamblers_per_house = 40;
  int num_services = 3;
  /// Underground banks: Service-labeled entities that operate the full
  /// exchange machinery (deposits, sweeps, batched withdrawals, cold
  /// storage) — the §III "underground bank" workflow. They are what
  /// makes Service the hardest class, as in the paper's tables: in
  /// isolation their addresses look exactly like exchange addresses;
  /// only their entanglement with mixing flows betrays them.
  int num_underground_banks = 2;
  /// Probability that a mix is commissioned by an underground bank
  /// (laundering its float) rather than a retail client.
  double bank_mix_prob = 0.4;
  int num_retail_users = 150;

  // Mining dynamics.
  int pool_payout_interval_blocks = 12;
  /// Fraction of a pool's miners paid in one payout transaction. The
  /// paper notes real payouts reach thousands of outputs; scaled here.
  double pool_payout_fraction = 0.6;
  /// Probability per block that a paid miner deposits to an exchange.
  double miner_deposit_prob = 0.08;

  // Exchange dynamics.
  int exchange_sweep_interval_blocks = 18;
  /// Deposits arriving per exchange per block (Poisson mean).
  double exchange_deposits_per_block = 1.2;
  /// Withdrawals issued per exchange per block (Poisson mean); each
  /// withdrawal batch transaction has several outputs.
  double exchange_withdrawals_per_block = 0.8;
  int exchange_withdrawal_batch = 4;
  int exchange_cold_sweep_interval_blocks = 60;

  // Gambling dynamics.
  /// Bets placed per house per block (Poisson mean).
  double bets_per_block = 3.0;
  double bet_win_prob = 0.47;
  double bet_payout_multiplier = 2.0;

  // Service (mixer) dynamics.
  double mixes_per_block = 0.9;
  int mix_min_hops = 2;
  int mix_max_hops = 4;
  int mix_max_splits = 5;
  /// Probability a mix gets a freshly generated entry address instead
  /// of a rotating pool address.
  double mix_fresh_entry_prob = 0.5;

  // Retail background traffic.
  double retail_payments_per_block = 4.0;

  // Value scales (satoshis). Transaction amounts are log-normal around
  // these medians, giving the heavy-tailed value distributions SFE
  // exploits.
  // Medians deliberately close together: between-class separation in
  // raw amounts is weak, within-class (per-actor) variance is wide —
  // classification has to come from structure and order, as the paper
  // argues, not from value magnitude alone.
  chain::Amount retail_payment_median = 20'000'000;      // 0.2 BTC
  chain::Amount bet_median = 15'000'000;                 // 0.15 BTC
  chain::Amount mix_median = 40'000'000;                 // 0.4 BTC
  chain::Amount deposit_median = 30'000'000;             // 0.3 BTC
  double amount_sigma = 1.0;
  /// Log-std of the per-actor amount multiplier (within-class spread).
  double actor_scale_sigma = 1.0;
  /// Probability a bet comes from a walk-in (unlabeled retail) user
  /// rather than a regular gambler.
  double walk_in_bet_prob = 0.3;
  /// Probability a mix payout is deposited straight to the client's
  /// exchange deposit address ("mix then deposit").
  double mix_to_exchange_prob = 0.3;

  /// \brief Behavioral noise in [0, 1): probability that an actor
  /// performs an action borrowed from another class's repertoire
  /// (services consolidating like exchanges, exchanges fanning out like
  /// pools, ...). Raises class confusion — Service degrades first, as
  /// in the paper's Tables III/IV.
  double behavior_noise = 0.12;

  /// Fee charged per transaction (flat, satoshis).
  chain::Amount fee = 20'000;
};

}  // namespace ba::datagen
