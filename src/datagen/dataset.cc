#include "datagen/dataset.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_set>

#include "util/fs.h"
#include "util/logging.h"

namespace ba::datagen {

std::array<int64_t, kNumBehaviors> CountByLabel(
    const std::vector<LabeledAddress>& addresses) {
  std::array<int64_t, kNumBehaviors> counts{};
  for (const auto& a : addresses) {
    ++counts[static_cast<size_t>(a.label)];
  }
  return counts;
}

namespace {

std::array<std::vector<LabeledAddress>, kNumBehaviors> GroupByLabel(
    const std::vector<LabeledAddress>& addresses) {
  std::array<std::vector<LabeledAddress>, kNumBehaviors> groups;
  for (const auto& a : addresses) {
    groups[static_cast<size_t>(a.label)].push_back(a);
  }
  return groups;
}

}  // namespace

std::vector<LabeledAddress> StratifiedSample(
    const std::vector<LabeledAddress>& addresses, int64_t target_total,
    Rng* rng) {
  BA_CHECK_GE(target_total, 0);
  auto groups = GroupByLabel(addresses);
  const int64_t total = static_cast<int64_t>(addresses.size());
  if (total <= target_total) return addresses;

  std::vector<LabeledAddress> out;
  out.reserve(static_cast<size_t>(target_total));
  for (auto& group : groups) {
    if (group.empty()) continue;
    int64_t take = target_total * static_cast<int64_t>(group.size()) / total;
    take = std::max<int64_t>(take, 1);
    take = std::min<int64_t>(take, static_cast<int64_t>(group.size()));
    rng->Shuffle(&group);
    out.insert(out.end(), group.begin(), group.begin() + take);
  }
  return out;
}

TrainTestSplit StratifiedSplit(const std::vector<LabeledAddress>& addresses,
                               double train_fraction, Rng* rng) {
  BA_CHECK_GT(train_fraction, 0.0);
  BA_CHECK_LT(train_fraction, 1.0);
  TrainTestSplit split;
  auto groups = GroupByLabel(addresses);
  for (auto& group : groups) {
    if (group.empty()) continue;
    rng->Shuffle(&group);
    // Ensure both sides get at least one example of a non-trivial class.
    int64_t cut = static_cast<int64_t>(
        train_fraction * static_cast<double>(group.size()));
    if (group.size() >= 2) {
      cut = std::clamp<int64_t>(cut, 1,
                                static_cast<int64_t>(group.size()) - 1);
    }
    split.train.insert(split.train.end(), group.begin(), group.begin() + cut);
    split.test.insert(split.test.end(), group.begin() + cut, group.end());
  }
  rng->Shuffle(&split.train);
  rng->Shuffle(&split.test);
  return split;
}

std::vector<ActivityPoint> ActiveAddressSeries(const chain::Ledger& ledger,
                                               int64_t bucket_seconds) {
  BA_CHECK_GT(bucket_seconds, 0);
  std::map<chain::Timestamp, std::unordered_set<chain::AddressId>> buckets;
  for (uint64_t h = 0; h < ledger.height(); ++h) {
    const chain::Block& block = ledger.block(h);
    for (chain::TxId id : block.transactions) {
      const chain::Transaction& tx = ledger.tx(id);
      const chain::Timestamp bucket =
          tx.timestamp - (tx.timestamp % bucket_seconds);
      auto& active = buckets[bucket];
      for (const auto& in : tx.inputs) active.insert(in.address);
      for (const auto& out : tx.outputs) active.insert(out.address);
    }
  }
  std::vector<ActivityPoint> series;
  series.reserve(buckets.size());
  for (const auto& [start, active] : buckets) {
    series.push_back({start, static_cast<int64_t>(active.size())});
  }
  return series;
}

}  // namespace ba::datagen

namespace ba::datagen {

namespace {

constexpr char kCrcTrailerPrefix[] = "# crc32,";

std::string CrcHex(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

}  // namespace

Status ExportLabelsCsv(const std::vector<LabeledAddress>& labels,
                       const std::string& path) {
  util::AtomicFileWriter out(path);
  BA_RETURN_NOT_OK(out.Open());
  BA_RETURN_NOT_OK(out.Append("address,label\n"));
  std::ostringstream body;
  for (const auto& a : labels) {
    body << a.address << "," << BehaviorName(a.label) << "\n";
  }
  BA_RETURN_NOT_OK(out.Append(body.str()));
  // Integrity trailer over every byte above this line.
  BA_RETURN_NOT_OK(out.Append(kCrcTrailerPrefix + CrcHex(out.crc()) + "\n"));
  return out.Commit();
}

Result<std::vector<LabeledAddress>> ImportLabelsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string line;
  if (!std::getline(in, line) || line != "address,label") {
    return Status::InvalidArgument("line 1: missing labels header");
  }
  uint32_t crc = util::Crc32(line + "\n");
  const auto names = BehaviorNames();
  std::vector<LabeledAddress> out;
  int line_no = 1;
  bool saw_trailer = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (saw_trailer) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": content after crc32 trailer");
    }
    if (line.rfind(kCrcTrailerPrefix, 0) == 0) {
      const std::string stored = line.substr(sizeof(kCrcTrailerPrefix) - 1);
      const std::string computed = CrcHex(crc);
      if (stored != computed) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": crc32 mismatch (stored " +
            stored + ", computed " + computed + "): file corrupted");
      }
      saw_trailer = true;
      continue;
    }
    crc = util::Crc32(line + "\n", crc);
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": missing comma");
    }
    LabeledAddress entry;
    try {
      entry.address = static_cast<chain::AddressId>(
          std::stoul(line.substr(0, comma)));
    } catch (const std::exception&) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad address");
    }
    const std::string label = line.substr(comma + 1);
    bool found = false;
    for (int c = 0; c < kNumBehaviors; ++c) {
      if (names[static_cast<size_t>(c)] == label) {
        entry.label = static_cast<BehaviorLabel>(c);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown label " + label);
    }
    out.push_back(entry);
  }
  return out;
}

}  // namespace ba::datagen
