#pragma once

#include <array>
#include <string>

#include "chain/types.h"

/// \file behavior.h
/// \brief The four address-behavior classes of the paper's dataset
/// (§IV-B): Exchange, Mining, Gambling and Service.

namespace ba::datagen {

/// \brief Behavior class of a bitcoin address (Table I).
enum class BehaviorLabel : int {
  kExchange = 0,
  kMining = 1,
  kGambling = 2,
  kService = 3,
};

inline constexpr int kNumBehaviors = 4;

/// Human-readable class name, matching the paper's tables.
inline const char* BehaviorName(BehaviorLabel label) {
  switch (label) {
    case BehaviorLabel::kExchange:
      return "Exchange";
    case BehaviorLabel::kMining:
      return "Mining";
    case BehaviorLabel::kGambling:
      return "Gambling";
    case BehaviorLabel::kService:
      return "Service";
  }
  return "Unknown";
}

/// All class names in label order.
inline std::array<std::string, kNumBehaviors> BehaviorNames() {
  return {"Exchange", "Mining", "Gambling", "Service"};
}

/// \brief A labeled bitcoin address: the unit of the dataset.
struct LabeledAddress {
  chain::AddressId address = chain::kInvalidAddress;
  BehaviorLabel label = BehaviorLabel::kExchange;
};

}  // namespace ba::datagen
