#include "datagen/simulator.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/fs.h"
#include "util/logging.h"

namespace ba::datagen {

using chain::Amount;
using chain::AddressId;
using chain::ChangePolicy;
using chain::TxOut;

Simulator::Simulator(const ScenarioConfig& config)
    : config_(config),
      rng_(config.seed),
      ledger_(chain::LedgerOptions{
          .block_subsidy = 625'000'000,
          .coinbase_maturity = 0,
          .block_interval_seconds = config.block_interval_seconds}) {
  SetupActors();
}

void Simulator::SetupActors() {
  pools_.reserve(static_cast<size_t>(config_.num_mining_pools));
  for (int p = 0; p < config_.num_mining_pools; ++p) {
    MiningPool pool{.wallet = chain::Wallet(&ledger_)};
    pool.reward_address = pool.wallet.CreateAddress();
    pool.payout_interval = std::max(
        2, config_.pool_payout_interval_blocks +
               static_cast<int>(rng_.UniformInt(-4, 4)));
    pool.payout_fraction =
        std::clamp(config_.pool_payout_fraction * rng_.Uniform(0.5, 1.4),
                   0.1, 1.0);
    pools_.push_back(std::move(pool));
  }

  exchanges_.reserve(static_cast<size_t>(config_.num_exchanges +
                                          config_.num_underground_banks));
  for (int e = 0;
       e < config_.num_exchanges + config_.num_underground_banks; ++e) {
    Exchange ex{chain::Wallet(&ledger_), chain::kInvalidAddress,
                chain::Wallet(&ledger_), chain::kInvalidAddress,
                chain::Wallet(&ledger_)};
    ex.hot_address = ex.hot_wallet.CreateAddress();
    ex.cold_address = ex.cold_wallet.CreateAddress();
    ex.withdrawal_batch =
        2 + static_cast<int>(rng_.UniformInt(
                static_cast<uint64_t>(3 * config_.exchange_withdrawal_batch)));
    ex.sweep_interval = std::max(
        4, config_.exchange_sweep_interval_blocks +
               static_cast<int>(rng_.UniformInt(-8, 8)));
    ex.amount_scale = rng_.LogNormal(0.0, config_.actor_scale_sigma);
    if (e >= config_.num_exchanges) {
      // Underground bank: same machinery, smaller float, Service label.
      ex.is_underground = true;
      ex.amount_scale *= 0.6;
    }
    exchanges_.push_back(std::move(ex));
  }

  miners_.reserve(static_cast<size_t>(config_.num_mining_pools) *
                  config_.miners_per_pool);
  for (int p = 0; p < config_.num_mining_pools; ++p) {
    for (int m = 0; m < config_.miners_per_pool; ++m) {
      Miner miner{chain::Wallet(&ledger_)};
      miner.reward_address = miner.wallet.CreateAddress();
      miner.exchange = static_cast<int>(rng_.UniformInt(
          static_cast<uint64_t>(config_.num_exchanges)));  // real only
      // Exchanges assign each customer a reusable deposit address.
      miner.deposit_address = exchanges_[static_cast<size_t>(miner.exchange)]
                                  .deposit_wallet.CreateAddress();
      pools_[static_cast<size_t>(p)].miner_indices.push_back(
          static_cast<int>(miners_.size()));
      miners_.push_back(std::move(miner));
    }
  }

  const int num_gamblers =
      config_.num_gambling_houses * config_.gamblers_per_house;
  users_.reserve(
      static_cast<size_t>(config_.num_retail_users + num_gamblers));
  for (int u = 0; u < config_.num_retail_users + num_gamblers; ++u) {
    User user{.wallet = chain::Wallet(&ledger_)};
    user.primary_address = user.wallet.CreateAddress();
    user.uses_banks = rng_.Bernoulli(0.15);
    user.deposit_addresses.assign(
        static_cast<size_t>(config_.num_exchanges +
                            config_.num_underground_banks),
        chain::kInvalidAddress);
    users_.push_back(std::move(user));
  }

  houses_.reserve(static_cast<size_t>(config_.num_gambling_houses));
  int gambler_cursor = config_.num_retail_users;
  for (int h = 0; h < config_.num_gambling_houses; ++h) {
    GamblingHouse house{.wallet = chain::Wallet(&ledger_)};
    house.house_address = house.wallet.CreateAddress();
    house.payout_batch = 1 + static_cast<int>(rng_.UniformInt(6));
    house.amount_scale = rng_.LogNormal(0.0, config_.actor_scale_sigma);
    for (int g = 0; g < config_.gamblers_per_house; ++g) {
      User& user = users_[static_cast<size_t>(gambler_cursor)];
      user.is_gambler = true;
      user.gambling_address = user.wallet.CreateAddress();
      house.gambler_indices.push_back(gambler_cursor);
      ++gambler_cursor;
    }
    houses_.push_back(std::move(house));
  }

  services_.reserve(static_cast<size_t>(config_.num_services));
  for (int s = 0; s < config_.num_services; ++s) {
    Service service{.wallet = chain::Wallet(&ledger_)};
    service.batch_payout_prob = rng_.Uniform(0.15, 0.65);
    service.amount_scale = rng_.LogNormal(0.0, config_.actor_scale_sigma);
    const int rotating = 10 + static_cast<int>(rng_.UniformInt(8));
    for (int a = 0; a < rotating; ++a) {
      service.mix_addresses.push_back(service.wallet.CreateAddress());
    }
    services_.push_back(std::move(service));
  }
}

Status Simulator::Run() {
  for (; next_block_ < config_.num_blocks; ++next_block_) {
    // Checked before the block mutates anything, so a failed Run()
    // leaves the economy consistent at the previous block boundary and
    // the next call resumes from exactly this block.
    if (util::FaultInjector::Instance().ShouldFail(kFaultRunStep)) {
      return Status::Internal("fault injected at " +
                              std::string(kFaultRunStep) + ": block " +
                              std::to_string(next_block_));
    }
    StepBlock(next_block_);
    BA_RETURN_NOT_OK(ledger_.SealBlock(BlockTime(next_block_)));
  }
  return ledger_.CheckConservation();
}

void Simulator::StepBlock(int height) {
  tx_in_block_ = 0;
  MineCoinbase(height);
  PoolPayouts(height);
  MinerDeposits(height);
  ExchangeSweeps(height);
  ExchangeWithdrawals(height);
  ExchangeColdSweeps(height);
  ResolveBets(height);
  RetailPayments(height);
  PlaceBets(height);
  AdvanceMixes(height);
  ServiceBatchPayouts(height);
  StartMixes(height);
}

chain::Timestamp Simulator::BlockTime(int height) const {
  return config_.genesis_time +
         static_cast<chain::Timestamp>(height) *
             config_.block_interval_seconds;
}

chain::Timestamp Simulator::NextTxTime(int height) {
  // Spread transactions a second apart inside the block so the
  // chronological order used by graph slicing is total.
  return BlockTime(height) + (tx_in_block_++);
}

Amount Simulator::SampleAmount(Amount median) {
  const double v = static_cast<double>(median) *
                   rng_.LogNormal(0.0, config_.amount_sigma);
  return std::max<Amount>(10'000, static_cast<Amount>(v));
}

namespace {
Amount ScaleAmount(Amount v, double scale) {
  return std::max<Amount>(10'000,
                          static_cast<Amount>(static_cast<double>(v) * scale));
}
}  // namespace

bool Simulator::TrySend(chain::Wallet* wallet, chain::Timestamp when,
                        const std::vector<TxOut>& outs, ChangePolicy policy) {
  auto result = wallet->Send(when, outs, config_.fee, policy);
  if (!result.ok()) {
    ++skipped_actions_;
    return false;
  }
  return true;
}

void Simulator::MineCoinbase(int height) {
  // Pools win blocks with slightly uneven hash power.
  std::vector<double> power(pools_.size());
  for (size_t p = 0; p < pools_.size(); ++p) {
    power[p] = 1.0 + 0.3 * static_cast<double>(p);
  }
  const size_t winner = rng_.WeightedIndex(power);
  auto result =
      ledger_.ApplyCoinbase(NextTxTime(height), pools_[winner].reward_address);
  BA_CHECK(result.ok());
}

void Simulator::PoolPayouts(int height) {
  for (auto& pool : pools_) {
    if (height == 0 || height % pool.payout_interval != 0) {
      continue;
    }
    const Amount balance = pool.wallet.Balance();
    if (balance < config_.fee * 10) continue;

    if (rng_.Bernoulli(config_.behavior_noise)) {
      // Noise: pay one miner directly, like a plain payment.
      const int m = pool.miner_indices[static_cast<size_t>(
          rng_.UniformInt(pool.miner_indices.size()))];
      const Amount v = std::min<Amount>(balance / 4, SampleAmount(balance / 8));
      if (v > 0) {
        TrySend(&pool.wallet, NextTxTime(height),
                {{miners_[static_cast<size_t>(m)].reward_address, v}},
                ChangePolicy::kReuseSource);
      }
      continue;
    }

    // Mass payout: one transaction paying a large subset of miners —
    // the huge fan-out signature of mining addresses.
    std::vector<int> paid;
    for (int m : pool.miner_indices) {
      if (rng_.Bernoulli(pool.payout_fraction)) paid.push_back(m);
    }
    if (paid.empty()) continue;
    const Amount distributable = balance - config_.fee;
    const Amount base_share =
        distributable / static_cast<Amount>(paid.size());
    if (base_share < 10'000) continue;
    std::vector<TxOut> outs;
    outs.reserve(paid.size());
    Amount used = 0;
    for (size_t i = 0; i + 1 < paid.size(); ++i) {
      // Hash-power jitter around the even share.
      const Amount v = std::max<Amount>(
          10'000,
          static_cast<Amount>(static_cast<double>(base_share) *
                              rng_.Uniform(0.6, 1.4)));
      outs.push_back(
          {miners_[static_cast<size_t>(paid[i])].reward_address, v});
      used += v;
      if (used + 10'000 > distributable) break;
    }
    const Amount rest = distributable - used;
    if (rest >= 10'000) {
      outs.push_back(
          {miners_[static_cast<size_t>(paid.back())].reward_address, rest});
    }
    if (outs.empty()) continue;
    TrySend(&pool.wallet, NextTxTime(height), outs,
            ChangePolicy::kReuseSource);
  }
}

void Simulator::MinerDeposits(int height) {
  for (auto& miner : miners_) {
    if (!rng_.Bernoulli(config_.miner_deposit_prob)) continue;
    const Amount balance = miner.wallet.Balance();
    if (balance < config_.fee * 20) continue;
    // Miners cash out most of their accumulated rewards.
    const Amount v = static_cast<Amount>(
        static_cast<double>(balance - config_.fee) * rng_.Uniform(0.7, 1.0));
    if (v < 10'000) continue;
    TrySend(&miner.wallet, NextTxTime(height), {{miner.deposit_address, v}},
            ChangePolicy::kReuseSource);
  }
}

void Simulator::ExchangeSweeps(int height) {
  for (auto& ex : exchanges_) {
    if (height == 0 || height % ex.sweep_interval != 0) {
      continue;
    }
    // Consolidate customer deposits into the hot wallet in bounded-size
    // chunks (real exchanges cap transaction sizes) — which also makes
    // a sweep look like a mixer merge at the flat-feature level.
    std::vector<chain::OutPoint> inputs;
    Amount gathered = 0;
    const size_t chunk =
        4 + static_cast<size_t>(rng_.UniformInt(9));  // 4..12 inputs
    auto flush = [&]() {
      if (inputs.empty() || gathered <= config_.fee) return;
      chain::TxDraft draft;
      draft.timestamp = NextTxTime(height);
      draft.inputs = std::move(inputs);
      draft.outputs = {{ex.hot_address, gathered - config_.fee}};
      if (!ledger_.ApplyTransaction(draft).ok()) ++skipped_actions_;
      inputs.clear();
      gathered = 0;
    };
    for (AddressId a : ex.deposit_wallet.addresses()) {
      for (const auto& u : ledger_.UnspentOf(a)) {
        inputs.push_back(u.outpoint);
        gathered += u.value;
        if (inputs.size() >= chunk) flush();
      }
    }
    flush();
  }
}

void Simulator::ExchangeWithdrawals(int height) {
  for (auto& ex : exchanges_) {
    const int64_t n = rng_.Poisson(config_.exchange_withdrawals_per_block);
    for (int64_t w = 0; w < n; ++w) {
      const Amount hot = ex.hot_wallet.Balance();
      if (hot < config_.fee * 50) break;
      int batch = ex.withdrawal_batch;
      if (rng_.Bernoulli(config_.behavior_noise)) {
        batch *= 8;  // noise: mass fan-out resembling a pool payout
      }
      std::vector<TxOut> outs;
      Amount total = 0;
      for (int b = 0; b < batch; ++b) {
        User& user =
            users_[static_cast<size_t>(rng_.UniformInt(users_.size()))];
        const Amount v =
            ScaleAmount(SampleAmount(config_.deposit_median), ex.amount_scale);
        if (total + v + config_.fee > hot) break;
        outs.push_back({user.primary_address, v});
        total += v;
      }
      if (outs.empty()) continue;
      TrySend(&ex.hot_wallet, NextTxTime(height), outs,
              ChangePolicy::kReuseSource);
    }
  }
}

void Simulator::ExchangeColdSweeps(int height) {
  for (auto& ex : exchanges_) {
    if (height == 0 ||
        height % config_.exchange_cold_sweep_interval_blocks != 0) {
      continue;
    }
    const Amount hot = ex.hot_wallet.Balance();
    if (hot < 10 * config_.deposit_median) continue;
    // Keep a working float in the hot wallet, vault the rest.
    const Amount v = (hot * 7) / 10;
    TrySend(&ex.hot_wallet, NextTxTime(height), {{ex.cold_address, v}},
            ChangePolicy::kReuseSource);
  }
}

void Simulator::RetailPayments(int height) {
  const int64_t n = rng_.Poisson(config_.retail_payments_per_block);
  for (int64_t i = 0; i < n; ++i) {
    User& from = users_[static_cast<size_t>(rng_.UniformInt(users_.size()))];
    const Amount balance = from.wallet.Balance();
    if (balance < config_.fee * 10) continue;
    const Amount v = std::min<Amount>(
        SampleAmount(config_.retail_payment_median), balance / 2);
    if (v < 10'000) continue;
    if (rng_.Bernoulli(0.25)) {
      // Deposit back to an exchange: each customer reuses the deposit
      // address the exchange assigned them. Underground banks only see
      // their small clientele.
      size_t e;
      if (from.uses_banks && config_.num_underground_banks > 0 &&
          rng_.Bernoulli(0.4)) {
        e = static_cast<size_t>(config_.num_exchanges) +
            rng_.UniformInt(
                static_cast<uint64_t>(config_.num_underground_banks));
      } else {
        e = rng_.UniformInt(static_cast<uint64_t>(config_.num_exchanges));
      }
      Exchange& ex = exchanges_[e];
      if (from.deposit_addresses[e] == chain::kInvalidAddress) {
        from.deposit_addresses[e] = ex.deposit_wallet.CreateAddress();
      }
      TrySend(&from.wallet, NextTxTime(height),
              {{from.deposit_addresses[e], v}}, ChangePolicy::kFreshAddress);
    } else {
      // Plain payment; occasionally pays several parties at once, which
      // overlaps with small withdrawal / payout batches.
      std::vector<TxOut> outs;
      const int payees =
          rng_.Bernoulli(0.3) ? 2 + static_cast<int>(rng_.UniformInt(3)) : 1;
      Amount remaining = v;
      for (int k = 0; k < payees && remaining >= 10'000; ++k) {
        User& to =
            users_[static_cast<size_t>(rng_.UniformInt(users_.size()))];
        const Amount part =
            k + 1 == payees
                ? remaining
                : std::max<Amount>(10'000, remaining /
                                               static_cast<Amount>(payees));
        outs.push_back({to.primary_address, std::min(part, remaining)});
        remaining -= outs.back().value;
      }
      TrySend(&from.wallet, NextTxTime(height), outs,
              ChangePolicy::kFreshAddress);
    }
  }
}

void Simulator::PlaceBets(int height) {
  for (size_t h = 0; h < houses_.size(); ++h) {
    auto& house = houses_[h];
    const int64_t n = rng_.Poisson(config_.bets_per_block);
    for (int64_t b = 0; b < n; ++b) {
      int g;
      if (rng_.Bernoulli(config_.walk_in_bet_prob)) {
        g = static_cast<int>(rng_.UniformInt(users_.size()));
      } else {
        g = house.gambler_indices[static_cast<size_t>(
            rng_.UniformInt(house.gambler_indices.size()))];
      }
      User& gambler = users_[static_cast<size_t>(g)];
      const Amount balance = gambler.wallet.Balance();
      if (balance < config_.fee * 10) continue;
      const Amount v = std::min<Amount>(
          ScaleAmount(SampleAmount(config_.bet_median), house.amount_scale),
          balance / 3);
      if (v < 10'000) continue;
      if (!TrySend(&gambler.wallet, NextTxTime(height),
                   {{house.house_address, v}}, ChangePolicy::kReuseSource)) {
        continue;
      }
      pending_bets_.push_back(
          {static_cast<int>(h), g, v, height + 1});
    }
  }
}

void Simulator::ResolveBets(int height) {
  while (!pending_bets_.empty() &&
         pending_bets_.front().resolve_block <= height) {
    const PendingBet bet = pending_bets_.front();
    pending_bets_.pop_front();
    if (!rng_.Bernoulli(config_.bet_win_prob)) continue;  // house keeps it
    auto& house = houses_[static_cast<size_t>(bet.house)];
    User& gambler = users_[static_cast<size_t>(bet.gambler)];
    const Amount payout = static_cast<Amount>(
        static_cast<double>(bet.amount) * config_.bet_payout_multiplier);
    const AddressId payee = gambler.is_gambler ? gambler.gambling_address
                                               : gambler.primary_address;
    house.pending_payouts.push_back({payee, payout});
  }
  // Houses settle winners in batched transactions (overlapping with the
  // exchange-withdrawal signature).
  for (auto& house : houses_) {
    while (!house.pending_payouts.empty()) {
      std::vector<TxOut> outs;
      Amount total = 0;
      const Amount balance = house.wallet.Balance();
      while (!house.pending_payouts.empty() &&
             static_cast<int>(outs.size()) < house.payout_batch) {
        const TxOut& next = house.pending_payouts.front();
        if (total + next.value + config_.fee > balance) break;
        outs.push_back(next);
        total += next.value;
        house.pending_payouts.pop_front();
      }
      if (outs.empty()) {
        ++skipped_actions_;
        break;  // insolvent for the next payout; retry next block
      }
      TrySend(&house.wallet, NextTxTime(height), outs,
              ChangePolicy::kReuseSource);
    }
  }
}

void Simulator::StartMixes(int height) {
  const int64_t n = rng_.Poisson(config_.mixes_per_block *
                                 static_cast<double>(services_.size()));
  for (int64_t i = 0; i < n; ++i) {
    const int s =
        static_cast<int>(rng_.UniformInt(services_.size()));
    auto& service = services_[static_cast<size_t>(s)];

    // Underground banks launder their float through the mixers; this
    // coupling is the relational cue that separates them from real
    // exchanges.
    if (config_.num_underground_banks > 0 &&
        rng_.Bernoulli(config_.bank_mix_prob)) {
      const int b = config_.num_exchanges +
                    static_cast<int>(rng_.UniformInt(
                        static_cast<uint64_t>(config_.num_underground_banks)));
      Exchange& bank = exchanges_[static_cast<size_t>(b)];
      const Amount bank_balance = bank.hot_wallet.Balance();
      if (bank_balance < config_.fee * 30) continue;
      const Amount v = std::min<Amount>(
          ScaleAmount(SampleAmount(config_.mix_median), service.amount_scale),
          (bank_balance * 2) / 3);
      if (v < config_.fee * 20) continue;
      const AddressId entry =
          rng_.Bernoulli(config_.mix_fresh_entry_prob)
              ? service.wallet.CreateAddress()
              : service.mix_addresses[static_cast<size_t>(
                    rng_.UniformInt(service.mix_addresses.size()))];
      auto sent = bank.hot_wallet.Send(NextTxTime(height), {{entry, v}},
                                       config_.fee,
                                       ChangePolicy::kReuseSource);
      if (!sent.ok()) {
        ++skipped_actions_;
        continue;
      }
      PendingMix mix;
      mix.service = s;
      mix.client = -1;
      mix.client_bank = b;
      mix.hops_left = static_cast<int>(
          rng_.UniformInt(config_.mix_min_hops, config_.mix_max_hops));
      mix.holding = {entry};
      mix.amount = v;
      pending_mixes_.push_back(std::move(mix));
      continue;
    }

    const int u =
        static_cast<int>(rng_.UniformInt(users_.size()));
    User& client = users_[static_cast<size_t>(u)];
    const Amount balance = client.wallet.Balance();
    if (balance < config_.fee * 30) continue;
    const Amount v =
        std::min<Amount>(SampleAmount(config_.mix_median), (balance * 2) / 3);
    if (v < config_.fee * 20) continue;
    // Mixers hand each client a deposit address: often a freshly
    // generated one (unlinkable), sometimes a rotating pool address.
    const AddressId entry =
        rng_.Bernoulli(config_.mix_fresh_entry_prob)
            ? service.wallet.CreateAddress()
            : service.mix_addresses[static_cast<size_t>(
                  rng_.UniformInt(service.mix_addresses.size()))];
    if (!TrySend(&client.wallet, NextTxTime(height), {{entry, v}},
                 ChangePolicy::kFreshAddress)) {
      continue;
    }
    PendingMix mix;
    mix.service = s;
    mix.client = u;
    mix.hops_left = static_cast<int>(
        rng_.UniformInt(config_.mix_min_hops, config_.mix_max_hops));
    mix.holding = {entry};
    mix.amount = v;
    pending_mixes_.push_back(std::move(mix));
  }
}

void Simulator::AdvanceMixes(int height) {
  const size_t count = pending_mixes_.size();
  for (size_t i = 0; i < count; ++i) {
    PendingMix mix = std::move(pending_mixes_.front());
    pending_mixes_.pop_front();
    auto& service = services_[static_cast<size_t>(mix.service)];

    // Gather this mix's funds: spend from the holding addresses only.
    std::vector<chain::OutPoint> inputs;
    Amount gathered = 0;
    for (AddressId a : mix.holding) {
      for (const auto& u : ledger_.UnspentOf(a)) {
        inputs.push_back(u.outpoint);
        gathered += u.value;
      }
    }
    if (inputs.empty() || gathered <= config_.fee * 2) {
      ++skipped_actions_;
      continue;  // drained by a concurrent mix sharing the address
    }
    const Amount net = std::min(gathered, mix.amount) - config_.fee;
    const Amount extra = gathered - std::min(gathered, mix.amount);

    chain::TxDraft draft;
    draft.timestamp = NextTxTime(height);
    draft.inputs = std::move(inputs);

    if (mix.hops_left <= 1) {
      if (mix.client_bank >= 0) {
        // Laundered bank float returns as an ordinary-looking customer
        // deposit of the bank.
        Exchange& bank = exchanges_[static_cast<size_t>(mix.client_bank)];
        const AddressId dest = bank.deposit_wallet.CreateAddress();
        draft.outputs.push_back({dest, net + extra});
        if (!ledger_.ApplyTransaction(draft).ok()) ++skipped_actions_;
        continue;
      }
      User& client = users_[static_cast<size_t>(mix.client)];
      AddressId dest;
      if (rng_.Bernoulli(config_.mix_to_exchange_prob)) {
        // "Mix then deposit": deliver straight into the client's
        // exchange deposit address, entangling Service and Exchange
        // neighborhoods.
        const size_t e =
            rng_.UniformInt(static_cast<uint64_t>(config_.num_exchanges));
        if (client.deposit_addresses[e] == chain::kInvalidAddress) {
          client.deposit_addresses[e] =
              exchanges_[e].deposit_wallet.CreateAddress();
        }
        dest = client.deposit_addresses[e];
      } else {
        dest = client.wallet.CreateAddress();
      }
      if (rng_.Bernoulli(service.batch_payout_prob)) {
        // Batch mode: park funds on a rotating address and owe the
        // client; ServiceBatchPayouts settles several clients in one
        // transaction (the underground-bank-as-exchange overlap).
        const AddressId park = service.mix_addresses[static_cast<size_t>(
            rng_.UniformInt(service.mix_addresses.size()))];
        draft.outputs.push_back({park, net + extra});
        auto result = ledger_.ApplyTransaction(draft);
        if (!result.ok()) {
          ++skipped_actions_;
          continue;
        }
        service.pending_payouts.push_back({dest, net});
        continue;
      }
      // Direct delivery to a fresh client address (unlinkable).
      draft.outputs.push_back({dest, net});
      if (extra > 0) {
        // Return co-mingled funds to the service pool.
        draft.outputs.push_back(
            {service.mix_addresses[static_cast<size_t>(rng_.UniformInt(
                 service.mix_addresses.size()))],
             extra});
      }
      auto result = ledger_.ApplyTransaction(draft);
      if (!result.ok()) ++skipped_actions_;
      continue;
    }

    // Intermediate hop: split across rotating service addresses.
    const int splits = 1 + static_cast<int>(rng_.UniformInt(
                               static_cast<uint64_t>(config_.mix_max_splits)));
    std::vector<AddressId> next_holding;
    Amount remaining = net + extra;
    for (int sp = 0; sp < splits && remaining > 10'000; ++sp) {
      const AddressId hop = service.mix_addresses[static_cast<size_t>(
          rng_.UniformInt(service.mix_addresses.size()))];
      Amount part = (sp + 1 == splits)
                        ? remaining
                        : static_cast<Amount>(static_cast<double>(remaining) *
                                              rng_.Uniform(0.2, 0.6));
      part = std::min(part, remaining);
      if (part < 10'000) continue;
      draft.outputs.push_back({hop, part});
      next_holding.push_back(hop);
      remaining -= part;
    }
    if (draft.outputs.empty()) {
      ++skipped_actions_;
      continue;
    }
    auto result = ledger_.ApplyTransaction(draft);
    if (!result.ok()) {
      ++skipped_actions_;
      continue;
    }
    mix.holding = std::move(next_holding);
    mix.amount = net + extra;
    --mix.hops_left;
    pending_mixes_.push_back(std::move(mix));

    // Noise: services occasionally consolidate their rotating pool like
    // an exchange sweep.
    if (rng_.Bernoulli(config_.behavior_noise * 0.2)) {
      const AddressId sink = service.mix_addresses[0];
      auto sweep = service.wallet.SweepTo(NextTxTime(height), sink,
                                          config_.fee);
      if (!sweep.ok()) ++skipped_actions_;
    }
  }
}

void Simulator::ServiceBatchPayouts(int height) {
  for (auto& service : services_) {
    if (service.pending_payouts.size() <
        3 + static_cast<size_t>(rng_.UniformInt(3))) {
      continue;  // wait for enough owed clients to batch
    }
    std::vector<TxOut> outs;
    Amount total = 0;
    const Amount balance = service.wallet.Balance();
    while (!service.pending_payouts.empty() && outs.size() < 6) {
      const TxOut& next = service.pending_payouts.front();
      if (total + next.value + config_.fee > balance) break;
      outs.push_back(next);
      total += next.value;
      service.pending_payouts.pop_front();
    }
    if (outs.empty()) {
      ++skipped_actions_;
      continue;
    }
    TrySend(&service.wallet, NextTxTime(height), outs,
            ChangePolicy::kReuseSource);
  }
}

std::vector<LabeledAddress> Simulator::CollectLabeledAddresses(
    int min_txs) const {
  std::vector<LabeledAddress> out;
  std::unordered_map<AddressId, BehaviorLabel> labels;
  auto add = [&](AddressId a, BehaviorLabel label) {
    if (a == chain::kInvalidAddress) return;
    labels.emplace(a, label);  // first label wins; roles are disjoint
  };

  for (const auto& ex : exchanges_) {
    // Underground banks run the exchange machinery but are Services.
    const BehaviorLabel label =
        ex.is_underground ? BehaviorLabel::kService : BehaviorLabel::kExchange;
    add(ex.hot_address, label);
    add(ex.cold_address, label);
    for (AddressId a : ex.deposit_wallet.addresses()) {
      add(a, label);
    }
    // Change addresses spun up by hot-wallet sends keep the label.
    for (AddressId a : ex.hot_wallet.addresses()) {
      add(a, label);
    }
  }
  for (const auto& pool : pools_) {
    add(pool.reward_address, BehaviorLabel::kMining);
    for (AddressId a : pool.wallet.addresses()) {
      add(a, BehaviorLabel::kMining);
    }
  }
  for (const auto& miner : miners_) {
    add(miner.reward_address, BehaviorLabel::kMining);
  }
  for (const auto& house : houses_) {
    add(house.house_address, BehaviorLabel::kGambling);
    for (AddressId a : house.wallet.addresses()) {
      add(a, BehaviorLabel::kGambling);
    }
  }
  for (const auto& user : users_) {
    if (user.is_gambler) {
      add(user.gambling_address, BehaviorLabel::kGambling);
    }
  }
  for (const auto& service : services_) {
    for (AddressId a : service.wallet.addresses()) {
      add(a, BehaviorLabel::kService);
    }
  }

  for (const auto& [address, label] : labels) {
    if (static_cast<int>(ledger_.TxCountOf(address)) >= min_txs) {
      out.push_back({address, label});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LabeledAddress& a, const LabeledAddress& b) {
              return a.address < b.address;
            });
  return out;
}

}  // namespace ba::datagen

namespace ba::datagen {

std::vector<Simulator::EntityLabeledAddress> Simulator::CollectEntityLabels(
    int min_txs) const {
  std::vector<EntityLabeledAddress> out;
  std::unordered_map<AddressId, EntityLabeledAddress> labels;
  int entity = 0;
  auto add = [&](AddressId a, BehaviorLabel behavior, int id) {
    if (a == chain::kInvalidAddress) return;
    labels.emplace(a, EntityLabeledAddress{a, behavior, id});
  };

  for (const auto& ex : exchanges_) {
    const BehaviorLabel label =
        ex.is_underground ? BehaviorLabel::kService : BehaviorLabel::kExchange;
    add(ex.hot_address, label, entity);
    add(ex.cold_address, label, entity);
    for (AddressId a : ex.deposit_wallet.addresses()) add(a, label, entity);
    for (AddressId a : ex.hot_wallet.addresses()) add(a, label, entity);
    ++entity;
  }
  for (size_t p = 0; p < pools_.size(); ++p) {
    add(pools_[p].reward_address, BehaviorLabel::kMining, entity);
    for (AddressId a : pools_[p].wallet.addresses()) {
      add(a, BehaviorLabel::kMining, entity);
    }
    // Miners belong to their pool's entity.
    for (int m : pools_[p].miner_indices) {
      add(miners_[static_cast<size_t>(m)].reward_address,
          BehaviorLabel::kMining, entity);
    }
    ++entity;
  }
  for (size_t h = 0; h < houses_.size(); ++h) {
    add(houses_[h].house_address, BehaviorLabel::kGambling, entity);
    for (AddressId a : houses_[h].wallet.addresses()) {
      add(a, BehaviorLabel::kGambling, entity);
    }
    for (int g : houses_[h].gambler_indices) {
      add(users_[static_cast<size_t>(g)].gambling_address,
          BehaviorLabel::kGambling, entity);
    }
    ++entity;
  }
  for (const auto& service : services_) {
    for (AddressId a : service.wallet.addresses()) {
      add(a, BehaviorLabel::kService, entity);
    }
    ++entity;
  }

  for (const auto& [address, entry] : labels) {
    if (static_cast<int>(ledger_.TxCountOf(address)) >= min_txs) {
      out.push_back(entry);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EntityLabeledAddress& a, const EntityLabeledAddress& b) {
              return a.address < b.address;
            });
  return out;
}

}  // namespace ba::datagen
