#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "chain/ledger.h"
#include "datagen/behavior.h"
#include "util/rng.h"
#include "util/status.h"

/// \file dataset.h
/// \brief Dataset assembly utilities mirroring the paper's protocol
/// (§IV-B): label counts (Table I), stratified subsampling of ~10k
/// addresses and the stratified 80/20 train/test split, plus the
/// active-address time series of Fig 1.

namespace ba::datagen {

/// Per-class address counts, indexed by BehaviorLabel.
std::array<int64_t, kNumBehaviors> CountByLabel(
    const std::vector<LabeledAddress>& addresses);

/// \brief Random stratified sample preserving class proportions.
/// Returns min(target_total, available) addresses; per-class counts are
/// proportional to the input distribution (at least 1 per non-empty
/// class).
std::vector<LabeledAddress> StratifiedSample(
    const std::vector<LabeledAddress>& addresses, int64_t target_total,
    Rng* rng);

/// \brief A stratified train/test partition.
struct TrainTestSplit {
  std::vector<LabeledAddress> train;
  std::vector<LabeledAddress> test;
};

/// \brief Stratified split: each class independently shuffled and cut
/// at `train_fraction` (the paper uses 0.8).
TrainTestSplit StratifiedSplit(const std::vector<LabeledAddress>& addresses,
                               double train_fraction, Rng* rng);

/// \brief One point of the Fig 1 series: bucket start time and the
/// number of distinct addresses active (as tx input or output) in it.
struct ActivityPoint {
  chain::Timestamp bucket_start = 0;
  int64_t active_addresses = 0;
};

/// Unique-active-address counts per time bucket over the whole chain.
std::vector<ActivityPoint> ActiveAddressSeries(const chain::Ledger& ledger,
                                               int64_t bucket_seconds);

/// \brief Writes "address,label_name" rows (with header) to `path` —
/// the released-labels half of the dataset artifact.
Status ExportLabelsCsv(const std::vector<LabeledAddress>& labels,
                       const std::string& path);

/// Reads labels written by ExportLabelsCsv.
Result<std::vector<LabeledAddress>> ImportLabelsCsv(const std::string& path);

}  // namespace ba::datagen
