#pragma once

#include <vector>

#include "nn/gcn.h"
#include "nn/module.h"

/// \file diffpool.h
/// \brief DiffPool (Ying et al. [65]) graph encoder — the hierarchical
/// pooling baseline of Table II and Fig 5.
///
/// Single pooling level: a GCN produces node embeddings Z and a second
/// GCN produces a soft cluster assignment S (row-softmax). The coarse
/// graph is X' = Sᵀ·Z, A' = Sᵀ·Ã·S; a dense message-passing layer over
/// A' is followed by SUM readout and an MLP head.

namespace ba::nn {

/// \brief One-level DiffPool encoder for graph classification.
class DiffPoolEncoder : public Module {
 public:
  struct Options {
    int64_t input_dim = 0;
    int64_t hidden_dim = 64;
    int64_t embed_dim = 32;
    int64_t num_classes = 4;
    /// Number of clusters after pooling.
    int64_t num_clusters = 8;
  };

  DiffPoolEncoder(const Options& options, Rng* rng)
      : embed_gnn_(options.input_dim, options.hidden_dim, rng),
        assign_gnn_(options.input_dim, options.num_clusters, rng,
                    /*apply_relu=*/false),
        coarse_linear_(options.hidden_dim, options.embed_dim, rng),
        head_({options.embed_dim, options.hidden_dim, options.num_classes},
              rng),
        options_(options) {}

  /// Graph embedding (1, embed_dim) after pooling + coarse convolution.
  Var Embed(const SparseMatrixPtr& norm_adj, const Var& node_features) const {
    using namespace tensor;  // NOLINT(build/namespaces)
    const Var z = embed_gnn_.Forward(norm_adj, node_features);  // (n, h)
    const Var s = Softmax(assign_gnn_.Forward(norm_adj, node_features),
                          /*axis=*/1);                          // (n, k)
    const Var st = Transpose(s);                                // (k, n)
    const Var x_coarse = MatMul(st, z);                         // (k, h)
    // A' = Sᵀ·Ã·S, computed as Sᵀ·(Ã·S) to keep the sparse product.
    const Var a_coarse = MatMul(st, SpMM(norm_adj, s));         // (k, k)
    // Dense message passing on the coarse graph.
    const Var h = Relu(MatMul(a_coarse, coarse_linear_.Forward(x_coarse)));
    return SumRows(h);
  }

  /// Class logits (1, num_classes).
  Var Forward(const SparseMatrixPtr& norm_adj,
              const Var& node_features) const {
    return head_.Forward(Embed(norm_adj, node_features));
  }

  int64_t embed_dim() const { return options_.embed_dim; }

  std::vector<Var> Parameters() const override {
    return CollectParameters(
        {&embed_gnn_, &assign_gnn_, &coarse_linear_, &head_});
  }

 private:
  GcnLayer embed_gnn_;
  GcnLayer assign_gnn_;
  Linear coarse_linear_;
  Mlp head_;
  Options options_;
};

}  // namespace ba::nn
