#pragma once

#include <memory>
#include <vector>

#include "graph/sparse_matrix.h"
#include "nn/linear.h"
#include "nn/module.h"

/// \file gcn.h
/// \brief Graph convolutional network (Kipf & Welling) — the GCN
/// baseline of Table II and Fig 5, and the message-passing layer reused
/// inside DiffPool.

namespace ba::nn {

using SparseMatrixPtr = std::shared_ptr<const graph::SparseMatrix>;

/// \brief One graph convolution: H' = act(Ã·H·W + b).
class GcnLayer : public Module {
 public:
  GcnLayer(int64_t in_features, int64_t out_features, Rng* rng,
           bool apply_relu = true)
      : linear_(in_features, out_features, rng), apply_relu_(apply_relu) {}

  /// Propagates node features through the (constant) normalized
  /// adjacency Ã of Eq. 12.
  Var Forward(const SparseMatrixPtr& norm_adj, const Var& x) const {
    Var h = tensor::SpMM(norm_adj, linear_.Forward(x));
    return apply_relu_ ? tensor::Relu(h) : h;
  }

  std::vector<Var> Parameters() const override { return linear_.Parameters(); }

 private:
  Linear linear_;
  bool apply_relu_;
};

/// \brief Graph-classification GCN: two convolutions, SUM readout,
/// MLP head. Exposes the pre-head graph embedding for the
/// address-classification stage.
class GcnEncoder : public Module {
 public:
  struct Options {
    int64_t input_dim = 0;
    int64_t hidden_dim = 64;
    int64_t embed_dim = 32;
    int64_t num_classes = 4;
  };

  GcnEncoder(const Options& options, Rng* rng)
      : conv1_(options.input_dim, options.hidden_dim, rng),
        conv2_(options.hidden_dim, options.embed_dim, rng),
        head_({options.embed_dim, options.hidden_dim, options.num_classes},
              rng),
        options_(options) {}

  /// Graph embedding (1, embed_dim): conv → conv → SUM readout.
  Var Embed(const SparseMatrixPtr& norm_adj, const Var& node_features) const {
    Var h = conv1_.Forward(norm_adj, node_features);
    h = conv2_.Forward(norm_adj, h);
    return tensor::SumRows(h);
  }

  /// Class logits (1, num_classes).
  Var Forward(const SparseMatrixPtr& norm_adj,
              const Var& node_features) const {
    return head_.Forward(Embed(norm_adj, node_features));
  }

  int64_t embed_dim() const { return options_.embed_dim; }

  std::vector<Var> Parameters() const override {
    return CollectParameters({&conv1_, &conv2_, &head_});
  }

 private:
  GcnLayer conv1_;
  GcnLayer conv2_;
  Mlp head_;
  Options options_;
};

}  // namespace ba::nn
