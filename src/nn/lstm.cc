#include "nn/lstm.h"

namespace ba::nn {

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      forget_gate_(hidden_size + input_size, hidden_size, rng),
      input_gate_(hidden_size + input_size, hidden_size, rng),
      candidate_(hidden_size + input_size, hidden_size, rng),
      output_gate_(hidden_size + input_size, hidden_size, rng) {}

std::pair<Var, Var> LstmCell::Step(const Var& x, const Var& h,
                                   const Var& c) const {
  using namespace tensor;  // NOLINT(build/namespaces)
  const Var hx = ConcatCols({h, x});                     // [h_{t-1}, x_t]
  const Var f = Sigmoid(forget_gate_.Forward(hx));       // Eq. 16
  const Var i = Sigmoid(input_gate_.Forward(hx));        // Eq. 17
  const Var c_tilde = Tanh(candidate_.Forward(hx));      // Eq. 18
  const Var c_new = Add(Mul(f, c), Mul(i, c_tilde));     // Eq. 19
  const Var o = Sigmoid(output_gate_.Forward(hx));       // Eq. 20
  const Var h_new = Mul(o, Tanh(c_new));                 // Eq. 21
  return {h_new, c_new};
}

std::vector<Var> LstmCell::Parameters() const {
  return CollectParameters(
      {&forget_gate_, &input_gate_, &candidate_, &output_gate_});
}

Var Lstm::InitialState() const {
  return tensor::Constant(tensor::Tensor({1, cell_.hidden_size()}));
}

Var Lstm::ForwardAll(const Var& sequence) const {
  BA_CHECK_EQ(sequence->value.rank(), 2);
  BA_CHECK_EQ(sequence->value.dim(1), cell_.input_size());
  const int64_t t_steps = sequence->value.dim(0);
  BA_CHECK_GT(t_steps, 0);
  Var h = InitialState();
  Var c = InitialState();
  std::vector<Var> hiddens;
  hiddens.reserve(static_cast<size_t>(t_steps));
  for (int64_t t = 0; t < t_steps; ++t) {
    const Var x = tensor::SliceRows(sequence, t, t + 1);
    std::tie(h, c) = cell_.Step(x, h, c);
    hiddens.push_back(h);
  }
  return tensor::ConcatRows(hiddens);
}

Var Lstm::ForwardLast(const Var& sequence) const {
  const Var all = ForwardAll(sequence);
  const int64_t t_steps = all->value.dim(0);
  return tensor::SliceRows(all, t_steps - 1, t_steps);
}

Var ReverseRows(const Var& sequence) {
  const int64_t t_steps = sequence->value.dim(0);
  std::vector<Var> rows;
  rows.reserve(static_cast<size_t>(t_steps));
  for (int64_t t = t_steps - 1; t >= 0; --t) {
    rows.push_back(tensor::SliceRows(sequence, t, t + 1));
  }
  return tensor::ConcatRows(rows);
}

Var BiLstm::ForwardLast(const Var& sequence) const {
  const Var fwd = forward_.ForwardLast(sequence);
  const Var bwd = backward_.ForwardLast(ReverseRows(sequence));
  return tensor::ConcatCols({fwd, bwd});
}

}  // namespace ba::nn
