#include "nn/quantized.h"

#include <cmath>

#include "util/logging.h"

namespace ba::nn {

namespace {

/// fp32 value-level affine forward (no tape): y = x·W + b. Used only
/// during calibration, where the fp32 trajectory is what the observers
/// must see.
tensor::Tensor LinearValue(const tensor::Tensor& x, const Linear& layer) {
  tensor::Tensor y = tensor::MatMulValue(x, layer.weight_value());
  const tensor::Tensor& b = layer.bias_value();
  const int64_t m = y.dim(0), n = y.dim(1);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) y.at(i, j) += b.at(0, j);
  }
  return y;
}

/// Value-level hidden nonlinearity, matching nn::Activate's Var ops.
void ActivateValue(tensor::Tensor* t, Activation act) {
  float* d = t->data();
  const int64_t n = t->numel();
  switch (act) {
    case Activation::kRelu:
      for (int64_t i = 0; i < n; ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
      break;
    case Activation::kTanh:
      for (int64_t i = 0; i < n; ++i) d[i] = std::tanh(d[i]);
      break;
    case Activation::kSigmoid:
      for (int64_t i = 0; i < n; ++i) d[i] = 1.0f / (1.0f + std::exp(-d[i]));
      break;
  }
}

}  // namespace

QuantizedMlp::QuantizedMlp(
    const Mlp& mlp, const std::vector<const tensor::Tensor*>& calibration)
    : activation_(mlp.activation()) {
  const size_t depth = mlp.num_layers();
  BA_CHECK_GE(depth, 1u);
  // An uncalibrated activation grid would saturate everything to the
  // edge codes; refuse to build a silently broken model.
  BA_CHECK(!calibration.empty());
  std::vector<tensor::ActivationObserver> observers(depth);
  for (const tensor::Tensor* x : calibration) {
    tensor::Tensor h = *x;
    for (size_t i = 0; i < depth; ++i) {
      observers[i].Observe(h);
      h = LinearValue(h, mlp.layer(i));
      if (i + 1 < depth) ActivateValue(&h, activation_);
    }
  }
  layers_.reserve(depth);
  for (size_t i = 0; i < depth; ++i) {
    layers_.emplace_back(mlp.layer(i), observers[i].scale());
  }
}

tensor::Tensor QuantizedMlp::Forward(const tensor::Tensor& x) const {
  tensor::Tensor h = layers_[0].Forward(x);
  for (size_t i = 1; i < layers_.size(); ++i) {
    ActivateValue(&h, activation_);
    h = layers_[i].Forward(h);
  }
  return h;
}

}  // namespace ba::nn
