#pragma once

#include <vector>

#include "tensor/autograd.h"

/// \file module.h
/// \brief Base protocol for neural modules: expose trainable parameters
/// so optimizers can collect them across composed models.

namespace ba::nn {

using tensor::Var;

/// \brief A trainable component with a parameter list.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameter nodes of this module (and submodules).
  virtual std::vector<Var> Parameters() const = 0;

  /// Total scalar parameter count.
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p->value.numel();
    return n;
  }
};

/// Concatenates the parameter lists of several modules.
inline std::vector<Var> CollectParameters(
    std::initializer_list<const Module*> modules) {
  std::vector<Var> out;
  for (const Module* m : modules) {
    auto p = m->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace ba::nn
