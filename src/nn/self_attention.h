#pragma once

#include <cmath>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

/// \file self_attention.h
/// \brief Single-head scaled dot-product self-attention over a
/// sequence, followed by mean pooling — a Transformer-style sequence
/// aggregator (the paper's background cites Transformer [35]; this is
/// an extension beyond the six aggregators of Table III).

namespace ba::nn {

/// \brief One self-attention block with mean-pooled output.
class SelfAttentionPool : public Module {
 public:
  SelfAttentionPool(int64_t input_size, int64_t model_size, Rng* rng)
      : query_(input_size, model_size, rng),
        key_(input_size, model_size, rng),
        value_(input_size, model_size, rng),
        scale_(1.0f / std::sqrt(static_cast<float>(model_size))) {}

  /// Pools a (T, input) sequence into (1, model_size).
  Var Forward(const Var& sequence) const {
    using namespace tensor;  // NOLINT(build/namespaces)
    const Var q = query_.Forward(sequence);   // (T, m)
    const Var k = key_.Forward(sequence);     // (T, m)
    const Var v = value_.Forward(sequence);   // (T, m)
    const Var attn =
        Softmax(Scale(MatMul(q, Transpose(k)), scale_), /*axis=*/1);
    return MeanRows(MatMul(attn, v));         // (1, m)
  }

  std::vector<Var> Parameters() const override {
    return CollectParameters({&query_, &key_, &value_});
  }

 private:
  Linear query_;
  Linear key_;
  Linear value_;
  float scale_;
};

}  // namespace ba::nn
