#pragma once

#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

/// \file attention.h
/// \brief Additive attention pooling over a sequence of graph
/// embeddings — the Attention+MLP comparator of Table III.

namespace ba::nn {

/// \brief Attention pooling: alpha = softmax(tanh(H·W + b)·u),
/// output = alphaᵀ·H, shape (1, d).
class AttentionPool : public Module {
 public:
  AttentionPool(int64_t input_size, int64_t attn_size, Rng* rng)
      : proj_(input_size, attn_size, rng),
        context_(tensor::Param(
            tensor::Tensor::XavierUniform(attn_size, 1, rng))) {}

  /// Pools a (T, input) sequence into (1, input).
  Var Forward(const Var& sequence) const {
    using namespace tensor;  // NOLINT(build/namespaces)
    const Var scores =
        MatMul(Tanh(proj_.Forward(sequence)), context_);  // (T, 1)
    const Var alpha = Softmax(scores, /*axis=*/0);        // column softmax
    return MatMul(Transpose(alpha), sequence);            // (1, input)
  }

  std::vector<Var> Parameters() const override {
    std::vector<Var> out = proj_.Parameters();
    out.push_back(context_);
    return out;
  }

 private:
  Linear proj_;
  Var context_;
};

}  // namespace ba::nn
