#pragma once

#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

/// \file lstm.h
/// \brief LSTM (Eq. 16-21) and bidirectional LSTM sequence encoders for
/// the address-classification stage (§III-C): an address's chronological
/// list of graph embeddings is folded into one vector.

namespace ba::nn {

/// \brief A single LSTM cell with the paper's gate structure
/// (forget/input/output gates over [h_{t-1}, x_t], Eq. 16-21).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

  /// One step: consumes x_t (1, input), (h, c) each (1, hidden);
  /// returns the new (h, c).
  std::pair<Var, Var> Step(const Var& x, const Var& h, const Var& c) const;

  std::vector<Var> Parameters() const override;

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  // Gate weights over the concatenated [h_{t-1}, x_t] (Eq. 16-18, 20).
  Linear forget_gate_;
  Linear input_gate_;
  Linear candidate_;
  Linear output_gate_;
};

/// \brief Unidirectional LSTM over a (T, input) sequence.
class Lstm : public Module {
 public:
  Lstm(int64_t input_size, int64_t hidden_size, Rng* rng)
      : cell_(input_size, hidden_size, rng) {}

  int64_t hidden_size() const { return cell_.hidden_size(); }

  /// Runs the full sequence; returns all hidden states stacked (T, hidden).
  Var ForwardAll(const Var& sequence) const;

  /// Runs the full sequence; returns the final hidden state (1, hidden).
  Var ForwardLast(const Var& sequence) const;

  std::vector<Var> Parameters() const override { return cell_.Parameters(); }

 private:
  Var InitialState() const;

  LstmCell cell_;
};

/// \brief Bidirectional LSTM: forward and reverse passes concatenated,
/// the BiLSTM+MLP comparator of Table III.
class BiLstm : public Module {
 public:
  BiLstm(int64_t input_size, int64_t hidden_size, Rng* rng)
      : forward_(input_size, hidden_size, rng),
        backward_(input_size, hidden_size, rng) {}

  /// Output feature width (2 * hidden).
  int64_t output_size() const { return 2 * forward_.hidden_size(); }

  /// Concatenated [h_fwd_last, h_bwd_last], shape (1, 2*hidden).
  Var ForwardLast(const Var& sequence) const;

  std::vector<Var> Parameters() const override {
    std::vector<Var> out = forward_.Parameters();
    auto b = backward_.Parameters();
    out.insert(out.end(), b.begin(), b.end());
    return out;
  }

 private:
  Lstm forward_;
  Lstm backward_;
};

/// Reverses the row order of a (T, d) sequence (constant-capable op).
Var ReverseRows(const Var& sequence);

}  // namespace ba::nn
