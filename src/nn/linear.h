#pragma once

#include <vector>

#include "nn/module.h"
#include "util/rng.h"

/// \file linear.h
/// \brief Affine layer and multi-layer perceptron — the building blocks
/// of the GFN classifier head (Eq. 14) and the final MLP of Eq. 22.

namespace ba::nn {

/// \brief y = x·W + b with Xavier-initialized W.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng)
      : weight_(tensor::Param(
            tensor::Tensor::XavierUniform(in_features, out_features, rng))),
        bias_(tensor::Param(tensor::Tensor({1, out_features}))) {}

  Var Forward(const Var& x) const {
    return tensor::Add(tensor::MatMul(x, weight_), bias_);
  }

  std::vector<Var> Parameters() const override { return {weight_, bias_}; }

  int64_t in_features() const { return weight_->value.dim(0); }
  int64_t out_features() const { return weight_->value.dim(1); }

  /// Trained parameter values — read-only views for deploy-time
  /// transforms (int8 quantization snapshots these, never mutates).
  const tensor::Tensor& weight_value() const { return weight_->value; }
  const tensor::Tensor& bias_value() const { return bias_->value; }

 private:
  Var weight_;
  Var bias_;
};

/// \brief Nonlinearity selector for Mlp hidden layers.
enum class Activation { kRelu, kTanh, kSigmoid };

inline Var Activate(const Var& x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return tensor::Relu(x);
    case Activation::kTanh:
      return tensor::Tanh(x);
    case Activation::kSigmoid:
      return tensor::Sigmoid(x);
  }
  return x;
}

/// \brief Feed-forward stack: Linear(+activation) per hidden layer,
/// plain Linear output layer, optional inverted dropout between layers.
class Mlp : public Module {
 public:
  /// `dims` = {in, hidden..., out}; at least {in, out}.
  Mlp(const std::vector<int64_t>& dims, Rng* rng,
      Activation activation = Activation::kRelu, float dropout = 0.0f)
      : activation_(activation), dropout_(dropout) {
    BA_CHECK_GE(dims.size(), 2u);
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
      layers_.emplace_back(dims[i], dims[i + 1], rng);
    }
  }

  /// Forward pass; `rng` and `training` control dropout.
  Var Forward(const Var& x, Rng* rng = nullptr, bool training = false) const {
    Var h = x;
    for (size_t i = 0; i < layers_.size(); ++i) {
      h = layers_[i].Forward(h);
      if (i + 1 < layers_.size()) {
        h = Activate(h, activation_);
        if (dropout_ > 0.0f && training && rng != nullptr) {
          h = tensor::Dropout(h, dropout_, rng, training);
        }
      }
    }
    return h;
  }

  std::vector<Var> Parameters() const override {
    std::vector<Var> out;
    for (const auto& l : layers_) {
      auto p = l.Parameters();
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  size_t num_layers() const { return layers_.size(); }

  /// Per-layer read access (quantization walks the stack layer by
  /// layer to calibrate each layer's input range).
  const Linear& layer(size_t i) const { return layers_[i]; }
  Activation activation() const { return activation_; }

 private:
  std::vector<Linear> layers_;
  Activation activation_;
  float dropout_;
};

}  // namespace ba::nn
