#pragma once

#include <memory>
#include <vector>

#include "graph/sparse_matrix.h"
#include "nn/linear.h"
#include "nn/module.h"

/// \file gat.h
/// \brief Graph attention network (Veličković et al., cited as [56] in
/// the paper's background) — an *extension* encoder beyond the paper's
/// three evaluated models, exercising attention-based message passing
/// on the address graphs.
///
/// Single-head GAT layer: e_ij = LeakyReLU(a₁ᵀWh_i + a₂ᵀWh_j) for
/// edges (i,j), α = softmax over each node's neighborhood (masked), and
/// H' = α·(XW). Dense masked attention — adequate at address-graph
/// scale (tens to hundreds of nodes per slice).

namespace ba::nn {

/// \brief One dense masked graph-attention layer.
class GatLayer : public Module {
 public:
  GatLayer(int64_t in_features, int64_t out_features, Rng* rng,
           bool apply_elu = true)
      : proj_(in_features, out_features, rng),
        attn_src_(tensor::Param(
            tensor::Tensor::XavierUniform(out_features, 1, rng))),
        attn_dst_(tensor::Param(
            tensor::Tensor::XavierUniform(out_features, 1, rng))),
        apply_elu_(apply_elu) {}

  /// `mask` is a dense (n, n) tensor with 1 on edges (self-loops
  /// included) and 0 elsewhere; build it once per graph with EdgeMask.
  tensor::Var Forward(const tensor::Var& mask, const tensor::Var& x) const {
    using namespace tensor;  // NOLINT(build/namespaces)
    const int64_t n = x->value.dim(0);
    const Var h = proj_.Forward(x);                 // (n, out)
    const Var src = MatMul(h, attn_src_);           // (n, 1)
    const Var dst = MatMul(h, attn_dst_);           // (n, 1)
    // scores_ij = src_i + dst_j, expanded via rank-1 products.
    const Var ones_row = Constant(Tensor::Ones({1, n}));
    const Var ones_col = Constant(Tensor::Ones({n, 1}));
    Var scores = Add(MatMul(src, ones_row),
                     MatMul(ones_col, Transpose(dst)));  // (n, n)
    // LeakyReLU(0.2): x -> max(x, 0.2x) = relu(x) - 0.2*relu(-x).
    scores = Sub(Relu(scores), Scale(Relu(Scale(scores, -1.0f)), 0.2f));
    // Mask non-edges with a large negative constant before softmax.
    const Var neg = Scale(Sub(mask, Constant(Tensor::Ones({n, n}))), 1e4f);
    const Var alpha = Softmax(Add(scores, neg), /*axis=*/1);
    // Zero out residual probability mass on non-edges, then aggregate.
    Var out = MatMul(Mul(alpha, mask), h);
    if (apply_elu_) {
      // ELU ≈ relu(x) - relu(tanh(-x)) is awkward; use the standard
      // smooth alternative available in this op set: tanh-gated relu is
      // unnecessary — plain ReLU keeps the layer well-behaved here.
      out = Relu(out);
    }
    return out;
  }

  std::vector<tensor::Var> Parameters() const override {
    auto out = proj_.Parameters();
    out.push_back(attn_src_);
    out.push_back(attn_dst_);
    return out;
  }

 private:
  Linear proj_;
  tensor::Var attn_src_;
  tensor::Var attn_dst_;
  bool apply_elu_;
};

/// Builds the dense (n, n) edge mask (with self-loops) for GatLayer
/// from a normalized/unnormalized sparse adjacency.
inline tensor::Tensor EdgeMask(const graph::SparseMatrix& adj) {
  const int64_t n = adj.rows();
  tensor::Tensor mask({n, n});
  for (int64_t i = 0; i < n; ++i) {
    mask.at(i, i) = 1.0f;
    for (int64_t j : adj.RowIndices(i)) mask.at(i, j) = 1.0f;
  }
  return mask;
}

/// \brief Graph-classification GAT: two attention layers, SUM readout,
/// MLP head — mirrors GcnEncoder's shape for fair comparison.
class GatEncoder : public Module {
 public:
  struct Options {
    int64_t input_dim = 0;
    int64_t hidden_dim = 64;
    int64_t embed_dim = 32;
    int num_classes = 4;
  };

  GatEncoder(const Options& options, Rng* rng)
      : layer1_(options.input_dim, options.hidden_dim, rng),
        layer2_(options.hidden_dim, options.embed_dim, rng),
        head_({options.embed_dim, options.hidden_dim,
               static_cast<int64_t>(options.num_classes)},
              rng),
        options_(options) {}

  tensor::Var Embed(const graph::SparseMatrix& adj,
                    const tensor::Var& node_features) const {
    const tensor::Var mask = tensor::Constant(EdgeMask(adj));
    tensor::Var h = layer1_.Forward(mask, node_features);
    h = layer2_.Forward(mask, h);
    return tensor::SumRows(h);
  }

  tensor::Var Forward(const graph::SparseMatrix& adj,
                      const tensor::Var& node_features) const {
    return head_.Forward(Embed(adj, node_features));
  }

  int64_t embed_dim() const { return options_.embed_dim; }

  std::vector<tensor::Var> Parameters() const override {
    return CollectParameters({&layer1_, &layer2_, &head_});
  }

 private:
  GatLayer layer1_;
  GatLayer layer2_;
  Mlp head_;
  Options options_;
};

}  // namespace ba::nn
