#pragma once

#include <vector>

#include "nn/linear.h"
#include "tensor/quant.h"

/// \file quantized.h
/// \brief Int8 inference twins of Linear / Mlp (DESIGN.md §7
/// "Quantized inference").
///
/// A QuantizedMlp is a deploy-time snapshot of a *trained* Mlp: weights
/// are re-encoded per output channel on the symmetric int8 grid, and
/// each layer's input gets a per-tensor activation scale observed on a
/// calibration set during construction. The source Mlp is only read —
/// training, checkpointing and every fp32 inference path keep working
/// on the original module, so quantization is an opt-in serving
/// optimization, never a model mutation.
///
/// Forward passes are value-only (Tensor in, Tensor out): the int8 path
/// exists for inference, where no gradient tape is needed. Hidden
/// activations come back to fp32 after every layer (the GEMM epilogue
/// dequantizes), so the nonlinearity runs in fp32 exactly like the
/// source model's.

namespace ba::nn {

/// \brief Int8 snapshot of one trained Linear layer plus the
/// calibrated scale of its input activations.
class QuantizedLinear {
 public:
  /// Quantizes `layer`'s weights per output channel; `a_scale` is the
  /// calibrated per-tensor scale of this layer's input (see
  /// tensor::ActivationObserver::scale()).
  QuantizedLinear(const Linear& layer, float a_scale)
      : weights_(tensor::QuantizeWeights(layer.weight_value(),
                                         &layer.bias_value())),
        a_scale_(a_scale) {}

  /// y = x·W + b through the int8 kernel family; x is fp32 (m, in),
  /// the result fp32 (m, out).
  tensor::Tensor Forward(const tensor::Tensor& x) const {
    return tensor::Int8LinearValue(x, weights_, a_scale_);
  }

  int64_t in_features() const { return weights_.in_features; }
  int64_t out_features() const { return weights_.out_features; }
  float a_scale() const { return a_scale_; }
  const tensor::QuantizedWeights& weights() const { return weights_; }

 private:
  tensor::QuantizedWeights weights_;
  float a_scale_;
};

/// \brief Int8 snapshot of a trained Mlp, calibrated on representative
/// inputs at construction.
class QuantizedMlp {
 public:
  /// Builds the int8 twin of `mlp`. `calibration` must be non-empty:
  /// each tensor is run through the *fp32* layers once, recording the
  /// absmax of every layer's input, before weights are quantized.
  /// (Calibrating on the fp32 trajectory keeps the observed ranges
  /// independent of quantization order; out-of-range activations at
  /// inference saturate to the grid edge instead of wrapping.)
  QuantizedMlp(const Mlp& mlp,
               const std::vector<const tensor::Tensor*>& calibration);

  /// Inference forward through every layer on the int8 path (dropout,
  /// a training-only regularizer, does not apply).
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  size_t num_layers() const { return layers_.size(); }
  const QuantizedLinear& layer(size_t i) const { return layers_[i]; }

 private:
  std::vector<QuantizedLinear> layers_;
  Activation activation_;
};

}  // namespace ba::nn
