#pragma once

#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

/// \file gfn.h
/// \brief Graph Feature Network (Chen et al. [69]) — the paper's chosen
/// graph-representation model (§III-B).
///
/// GFN's insight, which this reproduction preserves: move the graph
/// structure out of the network. Node features are *pre-augmented* with
/// structural information (degree + centralities) and propagated
/// features Ã¹X … ÃᵏX (Eq. 13) by the data pipeline; the network itself
/// is then a pure MLP over nodes followed by a SUM readout (Eq. 14-15),
/// which is why it trains markedly faster than GCN per epoch (Fig 5).

namespace ba::nn {

/// \brief GFN graph encoder: node MLP → SUM readout → MLP head.
class GfnEncoder : public Module {
 public:
  struct Options {
    /// Width of the augmented node features X^G (set by the pipeline:
    /// structural features + (k+1) copies of the base features).
    int64_t input_dim = 0;
    int64_t hidden_dim = 64;
    /// Graph-embedding width fed to the address classifier.
    int64_t embed_dim = 32;
    int64_t num_classes = 4;
    float dropout = 0.0f;
  };

  GfnEncoder(const Options& options, Rng* rng)
      : node_mlp_({options.input_dim, options.hidden_dim, options.embed_dim},
                  rng, Activation::kRelu, options.dropout),
        head_({options.embed_dim, options.hidden_dim, options.num_classes},
              rng),
        options_(options) {}

  /// Graph embedding rep^G (1, embed_dim): per-node MLP then SUM
  /// readout (Eq. 15).
  Var Embed(const Var& augmented_node_features, Rng* rng = nullptr,
            bool training = false) const {
    Var h = node_mlp_.Forward(augmented_node_features, rng, training);
    return tensor::SumRows(h);
  }

  /// Class logits (1, num_classes) — Eq. 14's classifier.
  Var Forward(const Var& augmented_node_features, Rng* rng = nullptr,
              bool training = false) const {
    return head_.Forward(Embed(augmented_node_features, rng, training), rng,
                         training);
  }

  int64_t embed_dim() const { return options_.embed_dim; }
  int64_t input_dim() const { return options_.input_dim; }

  /// The per-node MLP — the embed path's entire compute, which is what
  /// int8 quantization snapshots (the SUM readout stays fp32).
  const Mlp& node_mlp() const { return node_mlp_; }

  std::vector<Var> Parameters() const override {
    return CollectParameters({&node_mlp_, &head_});
  }

 private:
  Mlp node_mlp_;
  Mlp head_;
  Options options_;
};

}  // namespace ba::nn
