#pragma once

#include <cstdint>
#include <vector>

#include "graph/sparse_matrix.h"

/// \file centrality.h
/// \brief Network-centrality measures used by graph structure
/// augmentation (§III-A.3, Eq. 8-11): degree, closeness, betweenness
/// (Brandes) and PageRank, plus the symmetric normalized adjacency
/// Ã = D̃^{-1/2}(A+I)D̃^{-1/2} of Eq. 12.

namespace ba::graph {

/// \brief Undirected graph as adjacency lists over nodes [0, n).
///
/// Parallel edges are permitted and counted by degree; self-loops are
/// ignored by the shortest-path based measures.
class AdjacencyList {
 public:
  explicit AdjacencyList(int64_t num_nodes)
      : neighbors_(static_cast<size_t>(num_nodes)) {}

  /// Adds the undirected edge {u, v}.
  void AddEdge(int64_t u, int64_t v) {
    BA_CHECK_LT(u, num_nodes());
    BA_CHECK_LT(v, num_nodes());
    neighbors_[static_cast<size_t>(u)].push_back(v);
    if (u != v) neighbors_[static_cast<size_t>(v)].push_back(u);
  }

  int64_t num_nodes() const {
    return static_cast<int64_t>(neighbors_.size());
  }

  int64_t num_edges() const {
    int64_t total = 0;
    for (const auto& nbrs : neighbors_) total += static_cast<int64_t>(nbrs.size());
    return total / 2;  // counts self-loops as half-integer free: none added twice
  }

  const std::vector<int64_t>& Neighbors(int64_t u) const {
    BA_CHECK_LT(u, num_nodes());
    return neighbors_[static_cast<size_t>(u)];
  }

 private:
  std::vector<std::vector<int64_t>> neighbors_;
};

/// Degree centrality (Eq. 8): C_D(v) = degree(v).
std::vector<double> DegreeCentrality(const AdjacencyList& g);

/// \brief Closeness centrality (Eq. 9), computed with a BFS per node.
///
/// Disconnected graphs use the Wasserman-Faust correction: centrality
/// is scaled by the fraction of nodes reachable from v. Isolated nodes
/// get 0.
std::vector<double> ClosenessCentrality(const AdjacencyList& g);

/// \brief Betweenness centrality (Eq. 10) via Brandes' algorithm,
/// O(V·E) for unweighted graphs. Endpoint pairs are not counted; values
/// are halved for undirected graphs per convention.
std::vector<double> BetweennessCentrality(const AdjacencyList& g);

/// \brief PageRank (Eq. 11) with damping `alpha`, power iteration until
/// L1 change < `tol` or `max_iters`. Dangling mass is redistributed
/// uniformly so the result always sums to 1.
std::vector<double> PageRank(const AdjacencyList& g, double alpha = 0.85,
                             int max_iters = 100, double tol = 1e-10);

/// \brief Symmetric normalized adjacency with self-loops (Eq. 12):
/// Ã = D̃^{-1/2}(A+I)D̃^{-1/2}, where D̃ is the degree matrix of A+I.
/// Parallel edges collapse to weight-summed entries.
SparseMatrix NormalizedAdjacency(const AdjacencyList& g);

}  // namespace ba::graph
