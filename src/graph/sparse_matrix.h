#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"

/// \file sparse_matrix.h
/// \brief Compressed-sparse-row matrix used for adjacency structure:
/// the similarity computation S = A·Aᵀ of multi-transaction compression
/// (Eq. 3) and the propagated features ÃᵏX of GFN feature augmentation
/// (Eq. 12-13).

namespace ba::graph {

/// \brief One (row, col, value) entry used to build a SparseMatrix.
struct Triplet {
  int64_t row = 0;
  int64_t col = 0;
  float value = 0.0f;
};

/// \brief Immutable CSR float matrix.
class SparseMatrix {
 public:
  /// Empty matrix of the given shape.
  SparseMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), row_ptr_(static_cast<size_t>(rows) + 1, 0) {
    BA_CHECK_GE(rows, 0);
    BA_CHECK_GE(cols, 0);
  }

  /// \brief Builds from triplets; duplicate (row, col) entries are
  /// summed. Triplets may be in any order.
  static SparseMatrix FromTriplets(int64_t rows, int64_t cols,
                                   std::vector<Triplet> triplets);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// Column indices of row `r`, sorted ascending.
  std::span<const int64_t> RowIndices(int64_t r) const {
    BA_CHECK_LT(r, rows_);
    return {col_idx_.data() + row_ptr_[r],
            static_cast<size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// Values of row `r`, aligned with RowIndices(r).
  std::span<const float> RowValues(int64_t r) const {
    BA_CHECK_LT(r, rows_);
    return {values_.data() + row_ptr_[r],
            static_cast<size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// Value at (r, c); zero when the entry is absent. O(log nnz(row)).
  float At(int64_t r, int64_t c) const;

  /// \brief Dense product `Y = this * X`, where X is row-major
  /// (cols() x x_cols) and Y is row-major (rows() x x_cols).
  void MultiplyDense(const float* x, int64_t x_cols, float* y) const;

  /// Transposed copy.
  SparseMatrix Transpose() const;

  /// \brief Sparse product `this * other`. Used by the similarity
  /// computation S = A·Aᵀ; sizes in this project keep the result small
  /// because compression runs per 100-transaction slice.
  SparseMatrix Multiply(const SparseMatrix& other) const;

  /// Sum of values in row `r`.
  float RowSum(int64_t r) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace ba::graph
