#include "graph/centrality.h"

#include <cmath>
#include <deque>
#include <queue>

namespace ba::graph {

std::vector<double> DegreeCentrality(const AdjacencyList& g) {
  const int64_t n = g.num_nodes();
  std::vector<double> out(static_cast<size_t>(n), 0.0);
  for (int64_t v = 0; v < n; ++v) {
    out[static_cast<size_t>(v)] =
        static_cast<double>(g.Neighbors(v).size());
  }
  return out;
}

std::vector<double> ClosenessCentrality(const AdjacencyList& g) {
  const int64_t n = g.num_nodes();
  std::vector<double> out(static_cast<size_t>(n), 0.0);
  if (n <= 1) return out;
  std::vector<int64_t> dist(static_cast<size_t>(n));
  std::deque<int64_t> queue;
  for (int64_t s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[static_cast<size_t>(s)] = 0;
    queue.clear();
    queue.push_back(s);
    int64_t reachable = 0;  // excluding s
    int64_t dist_sum = 0;
    while (!queue.empty()) {
      const int64_t u = queue.front();
      queue.pop_front();
      for (int64_t w : g.Neighbors(u)) {
        if (dist[static_cast<size_t>(w)] < 0) {
          dist[static_cast<size_t>(w)] = dist[static_cast<size_t>(u)] + 1;
          dist_sum += dist[static_cast<size_t>(w)];
          ++reachable;
          queue.push_back(w);
        }
      }
    }
    if (reachable == 0 || dist_sum == 0) continue;
    // Wasserman-Faust: (r / (n-1)) * (r / dist_sum), where r = reachable.
    const double r = static_cast<double>(reachable);
    out[static_cast<size_t>(s)] =
        (r / static_cast<double>(n - 1)) * (r / static_cast<double>(dist_sum));
  }
  return out;
}

std::vector<double> BetweennessCentrality(const AdjacencyList& g) {
  const int64_t n = g.num_nodes();
  std::vector<double> bc(static_cast<size_t>(n), 0.0);
  std::vector<int64_t> dist(static_cast<size_t>(n));
  std::vector<double> sigma(static_cast<size_t>(n));
  std::vector<double> delta(static_cast<size_t>(n));
  std::vector<std::vector<int64_t>> preds(static_cast<size_t>(n));
  std::vector<int64_t> order;
  order.reserve(static_cast<size_t>(n));
  std::deque<int64_t> queue;

  for (int64_t s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : preds) p.clear();
    order.clear();
    queue.clear();

    dist[static_cast<size_t>(s)] = 0;
    sigma[static_cast<size_t>(s)] = 1.0;
    queue.push_back(s);
    while (!queue.empty()) {
      const int64_t u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (int64_t w : g.Neighbors(u)) {
        if (w == u) continue;
        auto& dw = dist[static_cast<size_t>(w)];
        if (dw < 0) {
          dw = dist[static_cast<size_t>(u)] + 1;
          queue.push_back(w);
        }
        if (dw == dist[static_cast<size_t>(u)] + 1) {
          sigma[static_cast<size_t>(w)] += sigma[static_cast<size_t>(u)];
          preds[static_cast<size_t>(w)].push_back(u);
        }
      }
    }
    // Dependency accumulation in reverse BFS order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const int64_t w = *it;
      for (int64_t u : preds[static_cast<size_t>(w)]) {
        delta[static_cast<size_t>(u)] +=
            sigma[static_cast<size_t>(u)] / sigma[static_cast<size_t>(w)] *
            (1.0 + delta[static_cast<size_t>(w)]);
      }
      if (w != s) bc[static_cast<size_t>(w)] += delta[static_cast<size_t>(w)];
    }
  }
  // Undirected graphs count each pair twice.
  for (auto& v : bc) v *= 0.5;
  return bc;
}

std::vector<double> PageRank(const AdjacencyList& g, double alpha,
                             int max_iters, double tol) {
  const int64_t n = g.num_nodes();
  if (n == 0) return {};
  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(static_cast<size_t>(n), uniform);
  std::vector<double> next(static_cast<size_t>(n));
  for (int iter = 0; iter < max_iters; ++iter) {
    double dangling = 0.0;
    for (int64_t v = 0; v < n; ++v) {
      if (g.Neighbors(v).empty()) dangling += rank[static_cast<size_t>(v)];
    }
    std::fill(next.begin(), next.end(),
              (1.0 - alpha) * uniform + alpha * dangling * uniform);
    for (int64_t v = 0; v < n; ++v) {
      const auto& nbrs = g.Neighbors(v);
      if (nbrs.empty()) continue;
      const double share = alpha * rank[static_cast<size_t>(v)] /
                           static_cast<double>(nbrs.size());
      for (int64_t w : nbrs) next[static_cast<size_t>(w)] += share;
    }
    double change = 0.0;
    for (int64_t v = 0; v < n; ++v) {
      change += std::abs(next[static_cast<size_t>(v)] -
                         rank[static_cast<size_t>(v)]);
    }
    rank.swap(next);
    if (change < tol) break;
  }
  return rank;
}

SparseMatrix NormalizedAdjacency(const AdjacencyList& g) {
  const int64_t n = g.num_nodes();
  std::vector<Triplet> triplets;
  for (int64_t u = 0; u < n; ++u) {
    triplets.push_back({u, u, 1.0f});  // self-loop (A + I)
    for (int64_t w : g.Neighbors(u)) {
      triplets.push_back({u, w, 1.0f});
    }
  }
  SparseMatrix a_plus_i = SparseMatrix::FromTriplets(n, n, std::move(triplets));
  std::vector<double> inv_sqrt_deg(static_cast<size_t>(n), 0.0);
  for (int64_t u = 0; u < n; ++u) {
    const double d = a_plus_i.RowSum(u);
    inv_sqrt_deg[static_cast<size_t>(u)] = d > 0 ? 1.0 / std::sqrt(d) : 0.0;
  }
  std::vector<Triplet> scaled;
  scaled.reserve(static_cast<size_t>(a_plus_i.nnz()));
  for (int64_t u = 0; u < n; ++u) {
    const auto idx = a_plus_i.RowIndices(u);
    const auto vals = a_plus_i.RowValues(u);
    for (size_t k = 0; k < idx.size(); ++k) {
      scaled.push_back(
          {u, idx[k],
           static_cast<float>(vals[k] * inv_sqrt_deg[static_cast<size_t>(u)] *
                              inv_sqrt_deg[static_cast<size_t>(idx[k])])});
    }
  }
  return SparseMatrix::FromTriplets(n, n, std::move(scaled));
}

}  // namespace ba::graph
