#include "graph/sparse_matrix.h"

#include <algorithm>
#include <cstring>

namespace ba::graph {

SparseMatrix SparseMatrix::FromTriplets(int64_t rows, int64_t cols,
                                        std::vector<Triplet> triplets) {
  SparseMatrix m(rows, cols);
  for (const auto& t : triplets) {
    BA_CHECK_GE(t.row, 0);
    BA_CHECK_LT(t.row, rows);
    BA_CHECK_GE(t.col, 0);
    BA_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Merge duplicates and fill CSR arrays.
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  size_t i = 0;
  for (int64_t r = 0; r < rows; ++r) {
    m.row_ptr_[static_cast<size_t>(r)] =
        static_cast<int64_t>(m.col_idx_.size());
    while (i < triplets.size() && triplets[i].row == r) {
      const int64_t c = triplets[i].col;
      float v = 0.0f;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
  }
  m.row_ptr_[static_cast<size_t>(rows)] =
      static_cast<int64_t>(m.col_idx_.size());
  return m;
}

float SparseMatrix::At(int64_t r, int64_t c) const {
  const auto idx = RowIndices(r);
  const auto it = std::lower_bound(idx.begin(), idx.end(), c);
  if (it == idx.end() || *it != c) return 0.0f;
  return values_[static_cast<size_t>(row_ptr_[r] + (it - idx.begin()))];
}

void SparseMatrix::MultiplyDense(const float* x, int64_t x_cols,
                                 float* y) const {
  std::memset(y, 0, sizeof(float) * static_cast<size_t>(rows_ * x_cols));
  for (int64_t r = 0; r < rows_; ++r) {
    float* y_row = y + r * x_cols;
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const float v = values_[static_cast<size_t>(k)];
      const float* x_row = x + col_idx_[static_cast<size_t>(k)] * x_cols;
      for (int64_t c = 0; c < x_cols; ++c) y_row[c] += v * x_row[c];
    }
  }
}

SparseMatrix SparseMatrix::Transpose() const {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(nnz()));
  for (int64_t r = 0; r < rows_; ++r) {
    const auto idx = RowIndices(r);
    const auto vals = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      triplets.push_back({idx[k], r, vals[k]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

SparseMatrix SparseMatrix::Multiply(const SparseMatrix& other) const {
  BA_CHECK_EQ(cols_, other.rows_);
  std::vector<Triplet> triplets;
  // Row-by-row expansion with a dense accumulator over other.cols().
  std::vector<float> acc(static_cast<size_t>(other.cols_), 0.0f);
  std::vector<int64_t> touched;
  for (int64_t r = 0; r < rows_; ++r) {
    touched.clear();
    const auto idx = RowIndices(r);
    const auto vals = RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      const int64_t mid = idx[k];
      const float v = vals[k];
      const auto oidx = other.RowIndices(mid);
      const auto ovals = other.RowValues(mid);
      for (size_t j = 0; j < oidx.size(); ++j) {
        const size_t c = static_cast<size_t>(oidx[j]);
        if (acc[c] == 0.0f) touched.push_back(oidx[j]);
        acc[c] += v * ovals[j];
      }
    }
    for (int64_t c : touched) {
      const size_t ci = static_cast<size_t>(c);
      if (acc[ci] != 0.0f) {
        triplets.push_back({r, c, acc[ci]});
      }
      acc[ci] = 0.0f;
    }
  }
  return FromTriplets(rows_, other.cols_, std::move(triplets));
}

float SparseMatrix::RowSum(int64_t r) const {
  float s = 0.0f;
  for (float v : RowValues(r)) s += v;
  return s;
}

}  // namespace ba::graph
