#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/socket.h"
#include "serve/protocol.h"

/// \file client.h
/// \brief Blocking client for the frame protocol and the admin port.
///
/// The loadgen, the check.sh smoke probe and the tests all speak
/// through this: a connected `Client` sends ClassifyRequest frames
/// (optionally pipelined — many Sends, then matching ReadResponses)
/// and reassembles response frames with the same FrameDecoder the
/// server uses. `SendRaw` exists for the abuse suite: it writes
/// arbitrary bytes, which is exactly what a protocol-robustness probe
/// needs and exactly what the typed API forbids.
///
/// Trace context: set `ClassifyOptions::trace_id` (and optionally
/// `span_id`) before Classify/Send and the ids ride the v2 frame to
/// the server, come back in `ClassifyResult::timeline`, and — when
/// process tracing is enabled — `Classify` records the round trip as a
/// `net.client.request` flow event keyed by the trace_id, which
/// Perfetto stitches with the server's and engine's flow events.

namespace ba::net {

class Client {
 public:
  /// Connects to a data port. `timeout_seconds` bounds every blocking
  /// read (0 = wait forever) so a wedged server fails the caller
  /// loudly instead of hanging it.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                double timeout_seconds = 10.0);

  /// One request/response round trip.
  Result<serve::ClassifyResult> Classify(
      uint64_t address, const serve::ClassifyOptions& options = {});

  /// Pipelining: send without waiting. `request_id` correlates the
  /// eventual response.
  Status Send(uint64_t request_id, uint64_t address,
              const serve::ClassifyOptions& options = {});

  /// Blocks until one complete response/error frame arrives.
  Result<serve::ClassifyResponse> ReadResponse();

  /// Writes raw bytes verbatim (abuse/robustness probes).
  Status SendRaw(std::string_view bytes);

  /// Half-closes the write side (EOF to the server) — lets a probe
  /// verify the server drops the connection cleanly.
  Status ShutdownWrite();

  int fd() const { return sock_.fd(); }

  /// One-shot admin round trip: connects to the admin port, sends
  /// `command` + '\n', returns the single reply line.
  static Result<std::string> AdminCommand(const std::string& host,
                                          uint16_t port,
                                          const std::string& command,
                                          double timeout_seconds = 10.0);

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  Socket sock_;
  serve::FrameDecoder decoder_;
  uint64_t next_request_id_ = 1;
};

}  // namespace ba::net
