#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ba::net {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ListenTcp(uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket()");
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) != 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind(port " + std::to_string(port) + ")");
  }
  if (::listen(sock.fd(), backlog) != 0) return Errno("listen()");
  return sock;
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("ConnectTcp: not an IPv4 address: " +
                                   host);
  }
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return sock;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname()");
  }
  return ntohs(addr.sin_port);
}

Status SetNonBlocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) != 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Status SetRecvTimeout(int fd, double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

}  // namespace ba::net
