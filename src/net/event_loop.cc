#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace ba::net {

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  const int wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) {
    const Status st = Status::Internal(std::string("eventfd: ") +
                                       std::strerror(errno));
    ::close(epoll_fd);
    return st;
  }
  auto loop =
      std::unique_ptr<EventLoop>(new EventLoop(epoll_fd, wake_fd));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(wakeup): ") +
                            std::strerror(errno));
  }
  return loop;
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, IoCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(add): ") +
                            std::strerror(errno));
  }
  callbacks_[fd] = std::move(cb);
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(mod): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; short writes
  // cannot happen on an 8-byte eventfd.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainTasks() {
  // Swap under the lock, run outside it: a task may Post() follow-ups
  // (they run next round) without deadlocking.
  std::deque<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Run() {
  std::vector<epoll_event> events(64);
  while (!stop_.load(std::memory_order_relaxed)) {
    const int timeout = tick_ ? tick_period_ms_ : -1;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure: fall through to drain
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<size_t>(i)].data.fd;
      if (fd == wake_fd_) {
        uint64_t count = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &count, sizeof(count));
        continue;
      }
      // A callback earlier in this round may have removed this fd (and
      // the kernel may even have reused it — but not within one
      // dispatch round, since nothing here accepts or opens sockets
      // except via callbacks that register through Add on this map).
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      it->second(events[static_cast<size_t>(i)].events);
    }
    DrainTasks();
    if (tick_) tick_();
    if (n == static_cast<int>(events.size())) {
      events.resize(events.size() * 2);
    }
  }
  // Completions posted between the final dispatch and Stop() still run:
  // a stopping server flushes, never silently drops.
  DrainTasks();
}

}  // namespace ba::net
