#include "net/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.h"

namespace ba::net {

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               double timeout_seconds) {
  BA_ASSIGN_OR_RETURN(Socket sock, ConnectTcp(host, port));
  BA_RETURN_NOT_OK(SetNoDelay(sock.fd()));
  if (timeout_seconds > 0) {
    BA_RETURN_NOT_OK(SetRecvTimeout(sock.fd(), timeout_seconds));
  }
  return Client(std::move(sock));
}

Status Client::SendRaw(std::string_view bytes) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t n = ::send(sock_.fd(), bytes.data() + offset,
                             bytes.size() - offset, MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("send: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status Client::Send(uint64_t request_id, uint64_t address,
                    const serve::ClassifyOptions& options) {
  serve::ClassifyRequest req;
  req.request_id = request_id;
  req.address = address;
  req.options = options;
  return SendRaw(serve::EncodeFrame(
      serve::MessageType::kClassifyRequest,
      req.EncodePayload(std::chrono::steady_clock::now())));
}

Result<serve::ClassifyResponse> Client::ReadResponse() {
  char buf[16 * 1024];
  while (true) {
    serve::Frame frame;
    BA_ASSIGN_OR_RETURN(const bool have, decoder_.Next(&frame));
    if (have) {
      if (frame.type != serve::MessageType::kClassifyResponse &&
          frame.type != serve::MessageType::kError) {
        return Status::Internal(
            "client: unexpected frame type " +
            std::to_string(static_cast<int>(frame.type)));
      }
      serve::ClassifyResponse resp;
      BA_RETURN_NOT_OK(serve::ClassifyResponse::Decode(
          frame.payload, &resp, frame.version));
      return resp;
    }
    const ssize_t n = ::recv(sock_.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Internal(
          "client: server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded(
          "client: read timed out waiting for a response frame");
    }
    return Status::Internal(std::string("recv: ") +
                            std::strerror(errno));
  }
}

Result<serve::ClassifyResult> Client::Classify(
    uint64_t address, const serve::ClassifyOptions& options) {
  obs::Tracer& tracer = obs::Tracer::Instance();
  const int64_t start_ns = (options.trace_id != 0 && tracer.enabled())
                               ? obs::Tracer::NowNs()
                               : -1;
  const uint64_t id = next_request_id_++;
  BA_RETURN_NOT_OK(Send(id, address, options));
  BA_ASSIGN_OR_RETURN(const serve::ClassifyResponse resp, ReadResponse());
  if (start_ns >= 0) {
    // The client's extent of the request flow: send → response read.
    tracer.RecordAsync("net.client.request", options.trace_id, start_ns,
                       obs::Tracer::NowNs() - start_ns);
  }
  if (resp.request_id != id) {
    return Status::Internal(
        "client: response correlates to request " +
        std::to_string(resp.request_id) + ", expected " +
        std::to_string(id) +
        " (pipelined reads must use Send/ReadResponse)");
  }
  return resp.ToResult();
}

Status Client::ShutdownWrite() {
  if (::shutdown(sock_.fd(), SHUT_WR) != 0) {
    return Status::Internal(std::string("shutdown: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<std::string> Client::AdminCommand(const std::string& host,
                                         uint16_t port,
                                         const std::string& command,
                                         double timeout_seconds) {
  BA_ASSIGN_OR_RETURN(Socket sock, ConnectTcp(host, port));
  if (timeout_seconds > 0) {
    BA_RETURN_NOT_OK(SetRecvTimeout(sock.fd(), timeout_seconds));
  }
  const std::string line = command + "\n";
  size_t offset = 0;
  while (offset < line.size()) {
    const ssize_t n = ::send(sock.fd(), line.data() + offset,
                             line.size() - offset, MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("send: ") +
                            std::strerror(errno));
  }
  std::string reply;
  char buf[16 * 1024];
  while (reply.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(sock.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      reply.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;  // server closed after replying (quit)
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded(
          "admin: read timed out waiting for a reply line");
    }
    return Status::Internal(std::string("recv: ") +
                            std::strerror(errno));
  }
  const size_t nl = reply.find('\n');
  if (nl != std::string::npos) reply.resize(nl);
  if (reply.empty()) {
    return Status::Internal("admin: connection closed with no reply");
  }
  return reply;
}

}  // namespace ba::net
