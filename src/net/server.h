#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "chain/ledger.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "serve/inference_engine.h"
#include "serve/protocol.h"

/// \file server.h
/// \brief The network serving front end: one epoll thread, two
/// listeners, zero threads per request.
///
/// **Data port** — the binary frame protocol of serve/protocol.h. Each
/// connection owns a non-blocking read state machine (FrameDecoder
/// reassembling frames from arbitrary chunks) and a write state
/// machine (immediate write, overflow buffered, EPOLLOUT armed only
/// while bytes are pending). A decoded ClassifyRequest dispatches into
/// `serve::Engine::ClassifyAsync`; the completion callback — running
/// on an engine worker thread — encodes the response frame and posts
/// it back to the loop, which writes it out. Because dispatch is
/// non-blocking, *backpressure is the engine's admission controller*:
/// when it sheds, the callback fires synchronously and the connection
/// answers ResourceExhausted in well under a millisecond instead of
/// queueing bytes behind a saturated pipeline.
///
/// A protocol violation (bad magic, wrong version, oversized length,
/// CRC mismatch) answers one kError frame naming the violation, then
/// closes after the flush — a hostile or confused peer gets a
/// diagnosis, never a hang. A connection whose outbound buffer exceeds
/// `max_write_buffer` (a reader that stopped reading) is dropped.
///
/// **Admin port** — a GET-style line protocol (one command in, one
/// line out) for operators and scrape sidecars:
///
///     metrics             → obs::MetricsRegistry JSON exposition
///     health              → {"status","admission","epoch",...}
///     trace start         → enable process tracing
///     trace save <path>   → write collected spans (Perfetto JSON)
///     trace stop          → disable tracing
///     slowlog [n]         → one JSON line: the engine's slow-request
///                           ring plus the n most recent timelines
///                           (flight recorder), default n = 32
///     timeline <trace_id> → one JSON line: the most recent recorded
///                           timeline for that trace id (decimal or
///                           0x-hex), or {"error":...} when unknown
///     quit                → "bye", then the server drains and stops
///
/// Instruments (naming convention `net.<stage>`, DESIGN.md §6):
/// `net.connections_accepted/active`, `net.frames_received/sent`,
/// `net.requests`, `net.responses`, `net.protocol_errors`,
/// `net.slow_consumer_drops`, `net.admin_commands`; spans `net.request`
/// (dispatch → response enqueued) when tracing is enabled, plus an
/// async flow event per traced request (`net.request` keyed by the
/// request's trace_id) that stitches with the client's and engine's
/// flow events into one Perfetto track.
///
/// **Wire versions** — the server decodes each data-port frame in the
/// version its header declares (v1 legacy, v2 trace-context) and
/// answers in that same version, so a v1 peer keeps classifying
/// against a v2 server and never sees bytes it cannot parse.

namespace ba::net {

struct ServerOptions {
  /// Data port; 0 binds a kernel-assigned ephemeral port (read it back
  /// with `port()` — how tests and the check.sh smoke mode avoid
  /// collisions).
  uint16_t port = 0;
  /// Admin port (0 = ephemeral). Only bound when `enable_admin`.
  uint16_t admin_port = 0;
  bool enable_admin = true;
  /// Outbound bytes a connection may have pending before it is dropped
  /// as a slow consumer.
  size_t max_write_buffer = 8u << 20;
  /// Largest frame payload accepted (protocol violations beyond it).
  size_t max_payload = serve::kMaxWirePayload;
  /// Connections with no traffic and no in-flight requests for this
  /// many seconds are closed; 0 disables the sweep.
  int idle_timeout_sec = 0;

  Status Validate() const;
};

/// \brief TCP front end over one serve::Engine — a single
/// InferenceEngine or the sharded router, interchangeably. Create →
/// Start → (serve) → Stop. `engine` and `ledger` must outlive the
/// server;
/// `ledger` may be null (health then omits the epoch watermark).
class Server {
 public:
  static Result<std::unique_ptr<Server>> Create(
      serve::Engine* engine, const chain::Ledger* ledger,
      ServerOptions options);

  /// Stops and drains (idempotent with Stop()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the loop thread and begins accepting.
  Status Start();

  /// Stops accepting, stops the loop, joins the thread, then blocks
  /// until every dispatched ClassifyAsync callback has fired — no
  /// engine callback ever runs against a destroyed server. Idempotent;
  /// callable from any thread except the loop thread itself (the admin
  /// `quit` command instead stops the loop and lets the owner's
  /// Wait()/Stop() finish the teardown).
  void Stop();

  /// Blocks until the loop thread exits (SIGINT via EventLoop::Stop,
  /// or an admin `quit`). The caller still runs Stop() (or the
  /// destructor) afterwards to drain.
  void Wait();

  /// Async-signal-safe stop request (atomic store + eventfd write):
  /// the daemon's SIGINT/SIGTERM handler calls this, then the main
  /// thread's Wait() returns and the owner finishes with Stop().
  void RequestStop() {
    quit_requested_.store(true, std::memory_order_relaxed);
    loop_->Stop();
  }

  /// Bound data / admin ports (valid after Create).
  uint16_t port() const { return port_; }
  uint16_t admin_port() const { return admin_port_; }

  /// Lets the daemon observe an admin `quit` asynchronously.
  bool quit_requested() const {
    return quit_requested_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state. Owned by the loop thread; looked up by id
  /// (never by raw pointer) from posted completions, so a connection
  /// that died with requests in flight is simply absent — its
  /// responses are dropped, never written to a reused fd.
  struct Connection {
    uint64_t id = 0;
    Socket sock;
    bool admin = false;
    serve::FrameDecoder decoder;
    /// Admin byte accumulator (line protocol).
    std::string line;
    /// Outbound bytes not yet accepted by the kernel.
    std::string out;
    size_t out_pos = 0;
    /// EPOLLOUT currently armed.
    bool want_write = false;
    /// Set while ProcessFrames drains a read burst: responses append
    /// to `out` instead of hitting the kernel one by one, and the
    /// whole burst flushes with a single send() at the end — on a
    /// pipelined connection that turns N syscalls into one.
    bool corked = false;
    /// Flush `out`, then close (protocol-error goodbyes).
    bool closing = false;
    /// Fatal condition seen mid-handler (peer reset, slow-consumer
    /// overflow). Handlers only set this; the event entry points do
    /// the actual close, so no raw Connection* is ever left dangling
    /// inside a call chain.
    bool dead = false;
    /// ClassifyAsync dispatches not yet answered.
    int64_t inflight = 0;
    std::chrono::steady_clock::time_point last_active{};
  };

  Server(serve::Engine* engine, const chain::Ledger* ledger,
         ServerOptions options);

  void OnAcceptable(Socket* listener, bool admin);
  void OnConnectionEvent(uint64_t conn_id, uint32_t events);
  /// Closes the connection if a handler marked it dead (or closing
  /// with everything flushed). Every event entry point ends here.
  void FinishEvent(uint64_t conn_id);
  void OnReadable(Connection* conn);
  void OnWritable(Connection* conn);

  /// Pulls every complete frame out of the decoder and dispatches it.
  void ProcessFrames(Connection* conn);
  void DispatchClassify(Connection* conn, const serve::Frame& frame);
  void HandleAdminLine(Connection* conn, const std::string& line);

  /// Queues bytes on the connection: writes immediately while the
  /// socket accepts them, buffers the rest, arms EPOLLOUT.
  void SendBytes(Connection* conn, std::string_view bytes);
  /// One kError frame carrying `why`, encoded in `version` (the
  /// request frame's version when known), then close-after-flush.
  void SendProtocolError(Connection* conn, uint64_t request_id,
                         const Status& why,
                         uint16_t version = serve::kWireVersion);

  void CloseConnection(uint64_t conn_id);
  /// Runs on the loop thread (posted from engine callbacks).
  void CompleteClassify(uint64_t conn_id, std::string frame_bytes);
  /// Response bookkeeping + send, without the close check — used
  /// directly when the engine answered synchronously on the loop
  /// thread (admission sheds, invalid addresses), where `conn` is
  /// still held live by the calling handler and FinishEvent belongs
  /// to the event entry point.
  void CompleteClassifyInline(Connection* conn, std::string frame_bytes);
  void SweepIdle();

  std::string HealthJson() const;

  serve::Engine* engine_;
  const chain::Ledger* ledger_;
  ServerOptions options_;

  std::unique_ptr<EventLoop> loop_;
  Socket data_listener_;
  Socket admin_listener_;
  uint16_t port_ = 0;
  uint16_t admin_port_ = 0;

  std::thread loop_thread_;
  /// Lets engine callbacks detect they fired synchronously on the loop
  /// thread (shed / reject fast paths) and answer without the eventfd
  /// round trip — under overload that round trip is most of the shed
  /// latency.
  std::atomic<std::thread::id> loop_thread_id_{};
  /// Serializes the join between Wait() and Stop().
  std::mutex join_mu_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> quit_requested_{false};

  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;

  /// ClassifyAsync callbacks not yet fired, across all connections.
  /// Stop() drains this to zero before tearing the loop down; guarded
  /// by its own mutex because callbacks fire on engine worker threads.
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  int64_t pending_classifies_ = 0;

  struct Instruments {
    obs::Counter* connections_accepted;
    obs::Gauge* connections_active;
    obs::Counter* frames_received;
    obs::Counter* frames_sent;
    obs::Counter* requests;
    obs::Counter* responses;
    obs::Counter* protocol_errors;
    obs::Counter* slow_consumer_drops;
    obs::Counter* admin_commands;
  };
  Instruments net_;
};

}  // namespace ba::net
