#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

/// \file socket.h
/// \brief Thin RAII + error-mapping layer over BSD TCP sockets.
///
/// Everything the event loop and client need from the OS lives here:
/// owned file descriptors that close themselves, listeners bound to an
/// ephemeral or fixed port, blocking client connects, and the two
/// fcntl/setsockopt rituals (non-blocking mode, TCP_NODELAY) that the
/// serving path depends on. Every failure is a Status carrying
/// strerror(errno) — callers never read errno themselves.

namespace ba::net {

/// \brief An owned socket file descriptor (move-only; closes on
/// destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  void Close();

  /// Transfers ownership of the descriptor to the caller.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// \brief Opens a TCP listener on `port` (0 = kernel-assigned
/// ephemeral port; read it back with LocalPort). Binds the loopback
/// interface — this front end serves co-located clients and benches,
/// not the open internet — with SO_REUSEADDR so restarts don't trip
/// over TIME_WAIT.
Result<Socket> ListenTcp(uint16_t port, int backlog = 128);

/// \brief Blocking TCP connect to `host:port` (host is a dotted-quad
/// address; this layer has no resolver).
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// The locally bound port of a socket (listener or connected).
Result<uint16_t> LocalPort(int fd);

/// Switches the descriptor to non-blocking mode.
Status SetNonBlocking(int fd);

/// Disables Nagle's algorithm. Request/response frames are far smaller
/// than a segment; without this every response waits on a delayed ACK
/// and loopback throughput craters.
Status SetNoDelay(int fd);

/// Sets SO_RCVTIMEO so a blocking read fails with a timeout Status
/// instead of hanging forever on a dead peer. `seconds <= 0` clears it.
Status SetRecvTimeout(int fd, double seconds);

}  // namespace ba::net
