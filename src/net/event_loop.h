#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/status.h"

/// \file event_loop.h
/// \brief Single-threaded epoll reactor with a cross-thread task queue.
///
/// One thread calls `Run()`; it sleeps in epoll_wait and dispatches
/// readiness events to per-fd callbacks. Everything that touches
/// connection state happens on that thread — the server needs no
/// per-connection locks. Other threads interact through exactly two
/// thread-safe entry points:
///
///  * `Post(task)`: enqueue a closure and wake the loop via an eventfd.
///    This is how InferenceEngine completion callbacks (which run on
///    engine worker threads) hand response bytes back to the loop.
///  * `Stop()`: request shutdown. Only an atomic store plus an eventfd
///    write, so it is safe even from a signal handler — which is how
///    the `ba_serve` daemon turns SIGINT into a clean drain.
///
/// `Run()` also invokes an optional `tick` callback at a fixed period
/// (idle-connection sweeps), implemented as the epoll_wait timeout.

namespace ba::net {

class EventLoop {
 public:
  /// Readiness callback: `events` is the raw epoll event mask
  /// (EPOLLIN / EPOLLOUT / EPOLLHUP / EPOLLERR bits).
  using IoCallback = std::function<void(uint32_t events)>;

  /// Fails when the kernel refuses epoll_create1 or eventfd.
  static Result<std::unique_ptr<EventLoop>> Create();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events`; `cb` fires on the loop thread.
  Status Add(int fd, uint32_t events, IoCallback cb);

  /// Changes the interest mask of a registered fd.
  Status Modify(int fd, uint32_t events);

  /// Deregisters `fd`. Safe to call from inside its own callback; any
  /// readiness already harvested for it this iteration is dropped.
  void Remove(int fd);

  /// Enqueues `task` to run on the loop thread (thread-safe; wakes the
  /// loop). Tasks run in FIFO order after the current dispatch round.
  void Post(std::function<void()> task);

  /// Dispatches until Stop(). Pending posted tasks are drained before
  /// returning so no completion is lost at shutdown.
  void Run();

  /// Requests Run() to return. Async-signal-safe (atomic store +
  /// eventfd write); callable from any thread, including the loop's
  /// own callbacks.
  void Stop();

  bool stopped() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Periodic callback invoked on the loop thread roughly every
  /// `period_ms` while Run() is dispatching. Set before Run().
  void SetTick(std::function<void()> tick, int period_ms) {
    tick_ = std::move(tick);
    tick_period_ms_ = period_ms;
  }

 private:
  EventLoop(int epoll_fd, int wake_fd)
      : epoll_fd_(epoll_fd), wake_fd_(wake_fd) {}

  void DrainTasks();

  int epoll_fd_ = -1;
  /// eventfd: written by Post()/Stop() to interrupt epoll_wait.
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};

  /// Callbacks live here, not in epoll user data, so Remove() during a
  /// dispatch round invalidates them race-free (the map is only
  /// touched on the loop thread or before Run()).
  std::unordered_map<int, IoCallback> callbacks_;

  std::mutex tasks_mu_;
  std::deque<std::function<void()>> tasks_;

  std::function<void()> tick_;
  int tick_period_ms_ = -1;
};

}  // namespace ba::net
