#include "net/server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace ba::net {
namespace {

/// Per-event read cap: level-triggered epoll re-notifies, so a
/// firehose peer shares the loop instead of starving it.
constexpr int kMaxReadsPerEvent = 4;
constexpr size_t kReadChunk = 64 * 1024;
constexpr size_t kMaxAdminLine = 4096;

/// Best effort: the request_id is the first 8 payload bytes; a payload
/// too short to carry one answers with id 0.
uint64_t PeekRequestId(const std::string& payload) {
  if (payload.size() < sizeof(uint64_t)) return 0;
  uint64_t id = 0;
  std::memcpy(&id, payload.data(), sizeof(id));
  return id;
}

}  // namespace

Status ServerOptions::Validate() const {
  if (max_write_buffer < (64u << 10)) {
    return Status::InvalidArgument(
        "ServerOptions.max_write_buffer must be at least 64KiB, got " +
        std::to_string(max_write_buffer));
  }
  if (max_payload == 0 || max_payload > serve::kMaxWirePayload) {
    return Status::InvalidArgument(
        "ServerOptions.max_payload must be in (0, " +
        std::to_string(serve::kMaxWirePayload) + "], got " +
        std::to_string(max_payload));
  }
  if (idle_timeout_sec < 0) {
    return Status::InvalidArgument(
        "ServerOptions.idle_timeout_sec must be >= 0, got " +
        std::to_string(idle_timeout_sec));
  }
  return Status::OK();
}

Server::Server(serve::Engine* engine, const chain::Ledger* ledger,
               ServerOptions options)
    : engine_(engine), ledger_(ledger), options_(options) {
  auto& reg = obs::MetricsRegistry::Instance();
  net_.connections_accepted = reg.GetCounter("net.connections_accepted");
  net_.connections_active = reg.GetGauge("net.connections_active");
  net_.frames_received = reg.GetCounter("net.frames_received");
  net_.frames_sent = reg.GetCounter("net.frames_sent");
  net_.requests = reg.GetCounter("net.requests");
  net_.responses = reg.GetCounter("net.responses");
  net_.protocol_errors = reg.GetCounter("net.protocol_errors");
  net_.slow_consumer_drops = reg.GetCounter("net.slow_consumer_drops");
  net_.admin_commands = reg.GetCounter("net.admin_commands");
}

Result<std::unique_ptr<Server>> Server::Create(
    serve::Engine* engine, const chain::Ledger* ledger,
    ServerOptions options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("Server: engine must not be null");
  }
  BA_RETURN_NOT_OK(options.Validate());
  auto server = std::unique_ptr<Server>(
      new Server(engine, ledger, options));
  BA_ASSIGN_OR_RETURN(server->loop_, EventLoop::Create());

  BA_ASSIGN_OR_RETURN(server->data_listener_, ListenTcp(options.port));
  BA_RETURN_NOT_OK(SetNonBlocking(server->data_listener_.fd()));
  BA_ASSIGN_OR_RETURN(server->port_,
                      LocalPort(server->data_listener_.fd()));
  Server* raw = server.get();
  BA_RETURN_NOT_OK(server->loop_->Add(
      server->data_listener_.fd(), EPOLLIN, [raw](uint32_t) {
        raw->OnAcceptable(&raw->data_listener_, /*admin=*/false);
      }));

  if (options.enable_admin) {
    BA_ASSIGN_OR_RETURN(server->admin_listener_,
                        ListenTcp(options.admin_port));
    BA_RETURN_NOT_OK(SetNonBlocking(server->admin_listener_.fd()));
    BA_ASSIGN_OR_RETURN(server->admin_port_,
                        LocalPort(server->admin_listener_.fd()));
    BA_RETURN_NOT_OK(server->loop_->Add(
        server->admin_listener_.fd(), EPOLLIN, [raw](uint32_t) {
          raw->OnAcceptable(&raw->admin_listener_, /*admin=*/true);
        }));
  }
  if (options.idle_timeout_sec > 0) {
    server->loop_->SetTick([raw] { raw->SweepIdle(); }, /*period_ms=*/1000);
  }
  return server;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("Server: already started");
  }
  loop_thread_ = std::thread([this] {
    loop_thread_id_.store(std::this_thread::get_id(),
                          std::memory_order_relaxed);
    loop_->Run();
  });
  return Status::OK();
}

void Server::Wait() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (loop_thread_.joinable()) loop_thread_.join();
}

void Server::Stop() {
  if (stopped_.exchange(true)) return;
  loop_->Stop();
  Wait();
  // Engine callbacks still in flight capture `this` and post to the
  // loop; both must stay alive until the last one has fired.
  {
    std::unique_lock<std::mutex> lock(pending_mu_);
    pending_cv_.wait(lock, [this] { return pending_classifies_ == 0; });
  }
  // Loop thread is dead: connection state is ours to tear down.
  for (auto& [id, conn] : conns_) {
    loop_->Remove(conn->sock.fd());
    net_.connections_active->Add(-1);
  }
  conns_.clear();
}

void Server::OnAcceptable(Socket* listener, bool admin) {
  while (true) {
    const int fd = ::accept(listener->fd(), nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN: drained (other errnos: retry on
                         // the next level-triggered notification)
    if (!SetNonBlocking(fd).ok() || (!admin && !SetNoDelay(fd).ok())) {
      ::close(fd);
      continue;
    }
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>();
    conn->id = id;
    conn->sock = Socket(fd);
    conn->admin = admin;
    conn->decoder = serve::FrameDecoder(options_.max_payload);
    conn->last_active = std::chrono::steady_clock::now();
    const Status added = loop_->Add(
        fd, EPOLLIN,
        [this, id](uint32_t events) { OnConnectionEvent(id, events); });
    if (!added.ok()) continue;  // conn's Socket closes the fd
    conns_[id] = std::move(conn);
    net_.connections_accepted->Increment();
    net_.connections_active->Add(1);
  }
}

void Server::FinishEvent(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  if (conn->dead ||
      (conn->closing && conn->out_pos >= conn->out.size())) {
    CloseConnection(conn_id);
  }
}

void Server::OnConnectionEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConnection(conn_id);
    return;
  }
  if ((events & EPOLLIN) != 0) OnReadable(conn);
  if ((events & EPOLLOUT) != 0 && !conn->dead) OnWritable(conn);
  FinishEvent(conn_id);
}

void Server::OnReadable(Connection* conn) {
  char buf[kReadChunk];
  conn->last_active = std::chrono::steady_clock::now();
  for (int round = 0; round < kMaxReadsPerEvent && !conn->dead &&
                      !conn->closing;
       ++round) {
    const ssize_t n = ::read(conn->sock.fd(), buf, sizeof(buf));
    if (n > 0) {
      if (conn->admin) {
        conn->line.append(buf, static_cast<size_t>(n));
        if (conn->line.size() > kMaxAdminLine) {
          net_.protocol_errors->Increment();
          SendBytes(conn, "ERR admin line exceeds 4096 bytes\n");
          conn->closing = true;
          break;
        }
        size_t nl = 0;
        while (!conn->dead && !conn->closing &&
               (nl = conn->line.find('\n')) != std::string::npos) {
          std::string line = conn->line.substr(0, nl);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          conn->line.erase(0, nl + 1);
          HandleAdminLine(conn, line);
        }
      } else {
        conn->decoder.Append(buf, static_cast<size_t>(n));
      }
      if (static_cast<size_t>(n) < sizeof(buf)) break;  // drained
      continue;
    }
    if (n == 0) {  // peer closed; in-flight responses will be dropped
      conn->dead = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->dead = true;
    return;
  }
  if (!conn->admin && !conn->dead) ProcessFrames(conn);
}

void Server::ProcessFrames(Connection* conn) {
  conn->corked = true;  // one flush for the whole burst of responses
  while (!conn->closing && !conn->dead) {
    serve::Frame frame;
    Result<bool> next = conn->decoder.Next(&frame);
    if (!next.ok()) {
      // Corrupt stream: one diagnostic frame, then goodbye. The
      // decoder is sticky-failed, so nothing further decodes.
      net_.protocol_errors->Increment();
      SendProtocolError(conn, 0, next.status());
      conn->closing = true;
      break;
    }
    if (!next.value()) break;  // incomplete: wait for more bytes
    net_.frames_received->Increment();
    switch (frame.type) {
      case serve::MessageType::kClassifyRequest:
        DispatchClassify(conn, frame);
        break;
      default:
        net_.protocol_errors->Increment();
        SendProtocolError(
            conn, PeekRequestId(frame.payload),
            Status::InvalidArgument(
                "unsupported message type " +
                std::to_string(static_cast<int>(frame.type))),
            frame.version);
        break;
    }
  }
  conn->corked = false;
  if (!conn->dead && conn->out_pos < conn->out.size()) {
    OnWritable(conn);  // uncork: flush the burst in one send
  }
}

void Server::DispatchClassify(Connection* conn,
                              const serve::Frame& frame) {
  serve::ClassifyRequest req;
  const Status decoded = serve::ClassifyRequest::Decode(
      frame.payload, std::chrono::steady_clock::now(), &req, frame.version);
  if (!decoded.ok()) {
    // The frame itself was well-formed (magic/CRC passed), so the
    // connection survives — only this request is answered with an
    // error.
    net_.protocol_errors->Increment();
    SendProtocolError(conn, PeekRequestId(frame.payload), decoded,
                      frame.version);
    return;
  }
  net_.requests->Increment();
  // Stamp the connection id as the in-process client identity: the
  // sharded router's sweep detector keys its per-client miss streaks
  // on it. Never decoded from the wire — a client cannot claim another
  // connection's identity.
  req.options.client_id = conn->id;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    ++pending_classifies_;
  }
  ++conn->inflight;
  auto& tracer = obs::Tracer::Instance();
  const int64_t start_ns = tracer.enabled() ? obs::Tracer::NowNs() : -1;
  const uint64_t conn_id = conn->id;
  const uint64_t request_id = req.request_id;
  // The response is encoded in the version the request arrived in: a
  // v1 peer never sees v2 bytes.
  const uint16_t wire_version = frame.version;
  engine_->ClassifyAsync(
      static_cast<chain::AddressId>(req.address), req.options,
      [this, conn, conn_id, request_id, start_ns, wire_version](
          Result<serve::ClassifyResult> outcome,
          const serve::RequestTimeline& tl) {
        // Runs on an engine worker thread — or synchronously right
        // here on the loop thread for fast-path rejections (admission
        // sheds, invalid addresses), which is the backpressure story:
        // a shed answers within microseconds of the decision.
        std::string frame_bytes = serve::EncodeFrame(
            serve::MessageType::kClassifyResponse,
            serve::ClassifyResponse::From(request_id, outcome, tl)
                .EncodePayload(wire_version),
            wire_version);
        if (start_ns >= 0) {
          const int64_t end_ns = obs::Tracer::NowNs();
          obs::Tracer::Instance().RecordComplete("net.request", start_ns,
                                                 end_ns - start_ns);
          // Flow event keyed by the request's trace context — stitches
          // with the engine's serve.request and the client's
          // net.client.request extents in Perfetto.
          obs::Tracer::Instance().RecordAsync("net.request", tl.trace_id,
                                              start_ns, end_ns - start_ns);
        }
        if (std::this_thread::get_id() ==
            loop_thread_id_.load(std::memory_order_relaxed)) {
          // Synchronous: we are still inside DispatchClassify, so
          // `conn` is alive and the caller's event entry point owns
          // the FinishEvent. Answering directly skips an eventfd wake
          // plus a task-queue round — under a shed flood that round
          // trip dominates the client-observed rejection latency.
          CompleteClassifyInline(conn, std::move(frame_bytes));
        } else {
          loop_->Post([this, conn_id, frame_bytes]() mutable {
            CompleteClassify(conn_id, std::move(frame_bytes));
          });
        }
        // Last touch of `this`: once pending hits zero, Stop() may
        // tear the server down.
        std::lock_guard<std::mutex> lock(pending_mu_);
        --pending_classifies_;
        pending_cv_.notify_all();
      });
}

void Server::CompleteClassify(uint64_t conn_id, std::string frame_bytes) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection died before the answer
  CompleteClassifyInline(it->second.get(), std::move(frame_bytes));
  FinishEvent(conn_id);
}

void Server::CompleteClassifyInline(Connection* conn,
                                    std::string frame_bytes) {
  --conn->inflight;
  net_.responses->Increment();
  net_.frames_sent->Increment();
  SendBytes(conn, frame_bytes);
}

void Server::HandleAdminLine(Connection* conn, const std::string& line) {
  net_.admin_commands->Increment();
  std::istringstream is(line);
  std::string cmd;
  is >> cmd;
  if (cmd == "metrics") {
    SendBytes(conn,
              obs::MetricsRegistry::Instance().JsonExposition() + "\n");
  } else if (cmd == "health") {
    SendBytes(conn, HealthJson() + "\n");
  } else if (cmd == "trace") {
    std::string verb;
    is >> verb;
    if (verb == "start") {
      obs::Tracer::Instance().Enable();
      SendBytes(conn, "OK tracing enabled\n");
    } else if (verb == "stop") {
      obs::Tracer::Instance().Disable();
      SendBytes(conn, "OK tracing disabled\n");
    } else if (verb == "save") {
      std::string path;
      is >> path;
      if (path.empty()) {
        SendBytes(conn, "ERR usage: trace save <path>\n");
      } else {
        const Status saved = obs::Tracer::Instance().Save(path);
        SendBytes(conn, saved.ok() ? "OK trace saved to " + path + "\n"
                                   : "ERR " + saved.message() + "\n");
      }
    } else {
      SendBytes(conn, "ERR usage: trace start|stop|save <path>\n");
    }
  } else if (cmd == "slowlog") {
    size_t max_entries = 32;
    if (size_t n = 0; is >> n) max_entries = std::max<size_t>(n, 1);
    // The engine composes the payload (and, sharded, merges every
    // shard's rings) — the server no longer reaches into recorders.
    SendBytes(conn, engine_->SlowlogJson(max_entries) + "\n");
  } else if (cmd == "timeline") {
    std::string arg;
    is >> arg;
    const uint64_t trace_id = std::strtoull(arg.c_str(), nullptr, 0);
    if (trace_id == 0) {
      SendBytes(conn, "ERR usage: timeline <trace_id>\n");
    } else {
      std::optional<serve::FlightRecorder::Entry> hit =
          engine_->FindTimeline(trace_id);
      SendBytes(conn, hit.has_value()
                          ? hit->ToJson() + "\n"
                          : "{\"error\":\"trace_id not found\","
                            "\"trace_id\":" +
                                std::to_string(trace_id) + "}\n");
    }
  } else if (cmd == "quit") {
    SendBytes(conn, "bye\n");
    conn->closing = true;
    quit_requested_.store(true, std::memory_order_relaxed);
    // Stops the loop; the owner (daemon main) observes Wait() return
    // and finishes the teardown — Stop() joins, so it cannot run here.
    loop_->Stop();
  } else if (cmd.empty()) {
    // Blank line: ignore (lets `printf 'health\n\n' | nc` work).
  } else {
    SendBytes(conn, "ERR unknown command '" + cmd +
                        "' (try: metrics, health, trace, slowlog, "
                        "timeline, quit)\n");
  }
}

std::string Server::HealthJson() const {
  const auto snapshot = engine_->Metrics();
  std::ostringstream os;
  os << "{\"status\":\"ok\",\"admission\":\"" << snapshot.admission_state
     << "\",\"requests\":" << snapshot.requests
     << ",\"shed\":" << snapshot.shed;
  if (ledger_ != nullptr) {
    os << ",\"epoch_height\":" << ledger_->height()
       << ",\"epoch_transactions\":" << ledger_->num_transactions();
  }
  os << ",\"connections\":" << conns_.size() << "}";
  return os.str();
}

void Server::SendBytes(Connection* conn, std::string_view bytes) {
  if (conn->dead) return;
  size_t offset = 0;
  // Fast path: nothing buffered and not corked — hand bytes straight
  // to the kernel.
  if (!conn->corked && conn->out_pos >= conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
    while (offset < bytes.size()) {
      const ssize_t n = ::send(conn->sock.fd(), bytes.data() + offset,
                               bytes.size() - offset, MSG_NOSIGNAL);
      if (n > 0) {
        offset += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      conn->dead = true;  // peer gone mid-write
      return;
    }
    if (offset == bytes.size()) return;
  }
  conn->out.append(bytes.data() + offset, bytes.size() - offset);
  if (conn->out.size() - conn->out_pos > options_.max_write_buffer) {
    // The peer stopped reading; buffering further would let one slow
    // consumer hold the server's memory hostage.
    net_.slow_consumer_drops->Increment();
    conn->dead = true;
    return;
  }
  // Corked: the uncork flush at the end of ProcessFrames arms
  // EPOLLOUT if anything is left over.
  if (!conn->corked && !conn->want_write) {
    conn->want_write = true;
    if (!loop_->Modify(conn->sock.fd(), EPOLLIN | EPOLLOUT).ok()) {
      conn->dead = true;
    }
  }
}

void Server::OnWritable(Connection* conn) {
  while (conn->out_pos < conn->out.size()) {
    const ssize_t n =
        ::send(conn->sock.fd(), conn->out.data() + conn->out_pos,
               conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full mid-flush; make sure EPOLLOUT is armed
      // (it won't be when called as the uncork flush).
      if (!conn->want_write) {
        conn->want_write = true;
        if (!loop_->Modify(conn->sock.fd(), EPOLLIN | EPOLLOUT).ok()) {
          conn->dead = true;
        }
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    conn->dead = true;
    return;
  }
  conn->out.clear();
  conn->out_pos = 0;
  if (conn->closing) return;  // FinishEvent closes now that we flushed
  if (conn->want_write) {
    conn->want_write = false;
    if (!loop_->Modify(conn->sock.fd(), EPOLLIN).ok()) {
      conn->dead = true;
    }
  }
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  loop_->Remove(it->second->sock.fd());
  conns_.erase(it);
  net_.connections_active->Add(-1);
  // Drop any sweep-detector state keyed on this connection id.
  engine_->ForgetClient(conn_id);
}

void Server::SendProtocolError(Connection* conn, uint64_t request_id,
                               const Status& why, uint16_t version) {
  serve::ClassifyResponse resp;
  resp.request_id = request_id;
  resp.code = static_cast<int32_t>(why.code());
  resp.message = why.message();
  if (resp.message.size() > serve::kMaxWireMessage) {
    resp.message.resize(serve::kMaxWireMessage);
  }
  net_.frames_sent->Increment();
  SendBytes(conn, serve::EncodeFrame(serve::MessageType::kError,
                                     resp.EncodePayload(version), version));
}

void Server::SweepIdle() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::seconds(options_.idle_timeout_sec);
  std::vector<uint64_t> stale;
  for (const auto& [id, conn] : conns_) {
    if (conn->inflight == 0 && conn->out_pos >= conn->out.size() &&
        now - conn->last_active > limit) {
      stale.push_back(id);
    }
  }
  for (const uint64_t id : stale) CloseConnection(id);
}

}  // namespace ba::net
