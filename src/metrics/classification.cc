#include "metrics/classification.h"

#include <sstream>

#include "util/logging.h"

namespace ba::metrics {

ConfusionMatrix::ConfusionMatrix(int num_classes,
                                 const std::vector<int>& truth,
                                 const std::vector<int>& predicted)
    : ConfusionMatrix(num_classes) {
  BA_CHECK_EQ(truth.size(), predicted.size());
  for (size_t i = 0; i < truth.size(); ++i) Add(truth[i], predicted[i]);
}

void ConfusionMatrix::Add(int true_label, int predicted_label) {
  BA_CHECK_GE(true_label, 0);
  BA_CHECK_LT(true_label, num_classes_);
  BA_CHECK_GE(predicted_label, 0);
  BA_CHECK_LT(predicted_label, num_classes_);
  ++counts_[static_cast<size_t>(true_label) * num_classes_ + predicted_label];
}

void ConfusionMatrix::Merge(const ConfusionMatrix& other) {
  BA_CHECK_EQ(num_classes_, other.num_classes_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

int64_t ConfusionMatrix::At(int true_label, int predicted_label) const {
  BA_CHECK_LT(true_label, num_classes_);
  BA_CHECK_LT(predicted_label, num_classes_);
  return counts_[static_cast<size_t>(true_label) * num_classes_ +
                 predicted_label];
}

int64_t ConfusionMatrix::TotalCount() const {
  int64_t total = 0;
  for (int64_t c : counts_) total += c;
  return total;
}

double ConfusionMatrix::Accuracy() const {
  const int64_t total = TotalCount();
  if (total == 0) return 0.0;
  int64_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += At(c, c);
  return static_cast<double>(correct) / static_cast<double>(total);
}

ClassReport ConfusionMatrix::Report(int label) const {
  ClassReport r;
  int64_t tp = At(label, label);
  int64_t fp = 0;
  int64_t fn = 0;
  for (int c = 0; c < num_classes_; ++c) {
    if (c == label) continue;
    fp += At(c, label);
    fn += At(label, c);
  }
  r.support = tp + fn;
  r.precision = (tp + fp) > 0
                    ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                    : 0.0;
  r.recall = (tp + fn) > 0
                 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                 : 0.0;
  r.f1 = (r.precision + r.recall) > 0.0
             ? 2.0 * r.precision * r.recall / (r.precision + r.recall)
             : 0.0;
  return r;
}

std::vector<ClassReport> ConfusionMatrix::AllReports() const {
  std::vector<ClassReport> out;
  out.reserve(static_cast<size_t>(num_classes_));
  for (int c = 0; c < num_classes_; ++c) out.push_back(Report(c));
  return out;
}

ClassReport ConfusionMatrix::MacroAverage() const {
  ClassReport avg;
  for (const auto& r : AllReports()) {
    avg.precision += r.precision;
    avg.recall += r.recall;
    avg.f1 += r.f1;
    avg.support += r.support;
  }
  if (num_classes_ > 0) {
    avg.precision /= num_classes_;
    avg.recall /= num_classes_;
    avg.f1 /= num_classes_;
  }
  return avg;
}

ClassReport ConfusionMatrix::WeightedAverage() const {
  ClassReport avg;
  int64_t total = 0;
  for (const auto& r : AllReports()) {
    avg.precision += r.precision * static_cast<double>(r.support);
    avg.recall += r.recall * static_cast<double>(r.support);
    avg.f1 += r.f1 * static_cast<double>(r.support);
    total += r.support;
    avg.support += r.support;
  }
  if (total > 0) {
    avg.precision /= static_cast<double>(total);
    avg.recall /= static_cast<double>(total);
    avg.f1 /= static_cast<double>(total);
  }
  return avg;
}

std::string ConfusionMatrix::ToString(
    const std::vector<std::string>& class_names) const {
  std::ostringstream os;
  os << "confusion (rows = truth, cols = predicted):\n";
  for (int t = 0; t < num_classes_; ++t) {
    if (static_cast<size_t>(t) < class_names.size()) {
      os << class_names[static_cast<size_t>(t)] << ":";
    } else {
      os << t << ":";
    }
    for (int p = 0; p < num_classes_; ++p) os << "\t" << At(t, p);
    os << "\n";
  }
  return os.str();
}

}  // namespace ba::metrics
