#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file classification.h
/// \brief Evaluation metrics of §IV-A.b: per-class precision, recall
/// and F1-score (Eq. 23-25), plus macro and support-weighted averages —
/// the "Weighted Avg" rows of Tables III and IV.

namespace ba::metrics {

/// \brief Per-class and aggregate classification scores.
struct ClassReport {
  int64_t support = 0;  ///< number of true instances of the class
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// \brief Square count matrix: entry (t, p) counts instances of true
/// class t predicted as class p.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes)
      : num_classes_(num_classes),
        counts_(static_cast<size_t>(num_classes) * num_classes, 0) {}

  /// Builds directly from parallel label vectors.
  ConfusionMatrix(int num_classes, const std::vector<int>& truth,
                  const std::vector<int>& predicted);

  void Add(int true_label, int predicted_label);

  /// Adds every count of `other` (same class count required) — used to
  /// pool results across trials/seeds.
  void Merge(const ConfusionMatrix& other);

  int64_t At(int true_label, int predicted_label) const;

  int num_classes() const { return num_classes_; }

  int64_t TotalCount() const;

  /// Fraction of instances on the diagonal.
  double Accuracy() const;

  /// Precision/recall/F1 for one class (one-vs-rest). Classes with no
  /// predictions (or no instances) get precision (recall) of 0.
  ClassReport Report(int label) const;

  /// Reports for every class, index-aligned with labels.
  std::vector<ClassReport> AllReports() const;

  /// Unweighted mean of per-class scores.
  ClassReport MacroAverage() const;

  /// Support-weighted mean of per-class scores — the paper's
  /// "Weighted Avg".
  ClassReport WeightedAverage() const;

  /// Multi-line plain-text rendering for debugging.
  std::string ToString(const std::vector<std::string>& class_names = {}) const;

 private:
  int num_classes_;
  std::vector<int64_t> counts_;
};

}  // namespace ba::metrics
