#pragma once

#include <vector>

#include "chain/ledger.h"
#include "chain/types.h"
#include "util/status.h"

/// \file wallet.h
/// \brief Client-side key/UTXO management, including the *change
/// mechanism* the paper highlights (§II-A): when a wallet spends, it
/// zeroes out the selected UTXOs and routes any remainder to a change
/// address — by default a freshly generated one, which is exactly what
/// makes address behavior analysis hard.

namespace ba::chain {

/// \brief Where a wallet sends transaction change.
enum class ChangePolicy {
  /// Generate a brand-new address for every change output (the privacy-
  /// preserving default of real bitcoin wallets).
  kFreshAddress,
  /// Return change to the first spending address (common for service
  /// hot wallets that deliberately reuse addresses).
  kReuseSource,
};

/// \brief How a wallet picks UTXOs to fund a payment.
enum class CoinSelection {
  /// Spend largest UTXOs first (fewest inputs).
  kLargestFirst,
  /// Spend oldest UTXOs first (FIFO).
  kOldestFirst,
};

/// \brief A collection of addresses managed as one economic entity.
///
/// The wallet owns no coins itself — it only records which ledger
/// addresses belong to it and composes valid TxDrafts, mirroring the
/// paper's description of bitcoin wallets as pure key managers.
class Wallet {
 public:
  explicit Wallet(Ledger* ledger) : ledger_(ledger) {}

  /// Creates and tracks a fresh receiving address.
  AddressId CreateAddress();

  /// Adopts an already-created ledger address into this wallet.
  void AdoptAddress(AddressId address);

  const std::vector<AddressId>& addresses() const { return addresses_; }

  /// Total spendable balance across all wallet addresses.
  Amount Balance() const;

  /// \brief Composes, validates and applies a payment.
  ///
  /// Selects UTXOs per `selection` until `sum(payments) + fee` is
  /// covered, emits the payment outputs, and routes any remainder above
  /// `fee` to a change output per `policy`. Returns the confirmed TxId.
  Result<TxId> Send(Timestamp timestamp, const std::vector<TxOut>& payments,
                    Amount fee, ChangePolicy policy = ChangePolicy::kFreshAddress,
                    CoinSelection selection = CoinSelection::kLargestFirst);

  /// \brief Sweeps the entire balance of this wallet into `destination`
  /// (minus `fee`). Used by exchange cold-storage consolidation.
  Result<TxId> SweepTo(Timestamp timestamp, AddressId destination, Amount fee);

  /// Address of the most recent change output, or kInvalidAddress.
  AddressId last_change_address() const { return last_change_address_; }

 private:
  struct Selected {
    std::vector<OutPoint> inputs;
    Amount total = 0;
    AddressId first_source = kInvalidAddress;
  };

  /// Gathers mature UTXOs across wallet addresses until `target` is
  /// covered; fails with FailedPrecondition on insufficient funds.
  Result<Selected> SelectCoins(Amount target, CoinSelection selection) const;

  Ledger* ledger_;
  std::vector<AddressId> addresses_;
  AddressId last_change_address_ = kInvalidAddress;
};

}  // namespace ba::chain
