#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file types.h
/// \brief Core value types of the Bitcoin UTXO substrate (§II-A of the
/// paper): amounts, addresses, outpoints, transactions and blocks.

namespace ba::chain {

/// Monetary amount in satoshis (1 BTC = 100,000,000 sat).
using Amount = int64_t;

/// One bitcoin, in satoshis.
inline constexpr Amount kCoin = 100'000'000;

/// Dense identifier of a bitcoin address. Addresses are created through
/// Ledger::NewAddress() and are contiguous, which lets every index in
/// the system be a flat vector.
using AddressId = uint32_t;

inline constexpr AddressId kInvalidAddress = static_cast<AddressId>(-1);

/// Dense identifier of a transaction, assigned in apply order.
using TxId = uint64_t;

/// Unix timestamp in seconds.
using Timestamp = int64_t;

/// Renders a deterministic base58-looking string for an address id, so
/// logs and examples read like real bitcoin addresses.
std::string FormatAddress(AddressId id);

/// \brief Reference to a specific output of a prior transaction.
struct OutPoint {
  TxId txid = 0;
  uint32_t index = 0;

  bool operator==(const OutPoint&) const = default;

  /// Packs the outpoint into a single map key. Output indices fit in 20
  /// bits (max ~1M outputs per transaction, far above any real tx).
  uint64_t Key() const { return (txid << 20) | index; }
};

/// \brief A transaction output: `value` satoshis locked to `address`.
struct TxOut {
  AddressId address = kInvalidAddress;
  Amount value = 0;

  bool operator==(const TxOut&) const = default;
};

/// \brief A transaction input: the outpoint it spends plus the resolved
/// owner/value of that outpoint (filled in by the ledger at apply time).
struct TxIn {
  OutPoint prevout;
  AddressId address = kInvalidAddress;
  Amount value = 0;
};

/// \brief A confirmed transaction.
///
/// Invariants maintained by the Ledger: inputs reference previously
/// unspent outputs; sum(inputs) >= sum(outputs); coinbase transactions
/// have no inputs. The difference sum(in) - sum(out) is the fee.
struct Transaction {
  TxId txid = 0;
  Timestamp timestamp = 0;
  uint64_t block_height = 0;
  bool coinbase = false;
  std::vector<TxIn> inputs;
  std::vector<TxOut> outputs;

  Amount InputValue() const {
    Amount v = 0;
    for (const auto& in : inputs) v += in.value;
    return v;
  }

  Amount OutputValue() const {
    Amount v = 0;
    for (const auto& out : outputs) v += out.value;
    return v;
  }

  /// Fee paid to miners (burned in this simulation): in minus out.
  Amount Fee() const { return coinbase ? 0 : InputValue() - OutputValue(); }
};

/// \brief A sealed block: a height, a timestamp and the transactions
/// confirmed in it.
struct Block {
  uint64_t height = 0;
  Timestamp timestamp = 0;
  std::vector<TxId> transactions;
};

/// \brief An unspent output owned by some address, as returned by
/// Ledger::UnspentOf.
struct Utxo {
  OutPoint outpoint;
  Amount value = 0;
  uint64_t confirmed_height = 0;
};

/// \brief A transaction request submitted to the ledger for validation.
///
/// `inputs` name the outpoints being spent; the ledger resolves their
/// owners and values and rejects double-spends.
struct TxDraft {
  Timestamp timestamp = 0;
  std::vector<OutPoint> inputs;
  std::vector<TxOut> outputs;
};

}  // namespace ba::chain
