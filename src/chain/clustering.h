#pragma once

#include <cstdint>
#include <vector>

#include "chain/ledger.h"
#include "chain/types.h"

/// \file clustering.h
/// \brief Classic bitcoin address-clustering heuristics — the
/// foundation of the clustering-based analysis line the paper's
/// introduction surveys (Ermilov et al. [18], Kang et al. [19],
/// BitScope [84]).
///
/// Two standard heuristics over a union-find structure:
///  - *Common-input-ownership*: all input addresses of one transaction
///    are controlled by the same wallet (they were co-signed).
///  - *Change heuristic*: in a 2-output spend, an output address seen
///    for the first time ever (and never reused as a payment target in
///    the same transaction pattern) is likely the payer's change.
/// Both are implemented exactly as analysts run them on the real chain,
/// and both hold by construction for this repository's Wallet — which
/// makes ground-truth evaluation possible (see bench_clustering).

namespace ba::chain {

/// \brief Union-find address clusterer.
class AddressClusterer {
 public:
  struct Options {
    /// Apply the common-input-ownership heuristic.
    bool common_input = true;
    /// Apply the change-address heuristic (more aggressive; can over-
    /// merge when payees receive at fresh addresses).
    bool change_heuristic = false;
  };

  /// Initializes singleton clusters for `num_addresses` addresses.
  explicit AddressClusterer(size_t num_addresses);

  /// Runs the configured heuristics over every confirmed transaction.
  static AddressClusterer FromLedger(const Ledger& ledger, Options options);

  /// Same with default options (common-input heuristic only).
  static AddressClusterer FromLedger(const Ledger& ledger) {
    return FromLedger(ledger, Options{});
  }

  /// Feeds one transaction through the heuristics. `first_seen` must
  /// return true the first time an address appears on-chain (the
  /// FromLedger driver maintains this automatically).
  void AddTransaction(const Transaction& tx, bool output0_first_seen,
                      bool output1_first_seen, const Options& options);

  /// Merges the clusters of two addresses.
  void Union(AddressId a, AddressId b);

  /// Representative address of `a`'s cluster (path-compressed).
  AddressId Find(AddressId a) const;

  /// True when two addresses are in the same cluster.
  bool SameCluster(AddressId a, AddressId b) const {
    return Find(a) == Find(b);
  }

  /// Number of distinct clusters (including singletons).
  size_t NumClusters() const;

  /// All clusters with at least `min_size` members, largest first.
  std::vector<std::vector<AddressId>> Clusters(size_t min_size = 2) const;

  size_t num_addresses() const { return parent_.size(); }

 private:
  mutable std::vector<AddressId> parent_;
  std::vector<uint32_t> rank_;
};

}  // namespace ba::chain
