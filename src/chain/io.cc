#include "chain/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/fs.h"

namespace ba::chain {

namespace {

constexpr char kHeaderV1[] = "# ba-ledger v1,";
constexpr char kHeaderV2[] = "# ba-ledger v2,";
constexpr char kCrcTrailerPrefix[] = "# crc32,";

std::string CrcHex(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

std::string JoinOutputs(const std::vector<TxOut>& outs) {
  std::ostringstream os;
  for (size_t i = 0; i < outs.size(); ++i) {
    if (i) os << "|";
    os << outs[i].address << ":" << outs[i].value;
  }
  return os.str();
}

std::string JoinInputs(const std::vector<TxIn>& ins) {
  std::ostringstream os;
  for (size_t i = 0; i < ins.size(); ++i) {
    if (i) os << "|";
    os << ins[i].prevout.txid << ":" << ins[i].prevout.index;
  }
  return os.str();
}

/// Splits "a:b|c:d" into (a, b) pairs; returns false on malformed text.
bool ParsePairs(const std::string& text,
                std::vector<std::pair<uint64_t, int64_t>>* out) {
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, '|')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) return false;
    try {
      out->push_back({std::stoull(item.substr(0, colon)),
                      std::stoll(item.substr(colon + 1))});
    } catch (const std::exception&) {
      return false;
    }
  }
  return !out->empty();
}

}  // namespace

Status ExportLedgerCsv(const Ledger& ledger, const std::string& path) {
  util::AtomicFileWriter out(path);
  BA_RETURN_NOT_OK(out.Open());
  {
    std::ostringstream header;
    header << kHeaderV2 << ledger.options().block_subsidy << ","
           << ledger.num_addresses() << "\n";
    BA_RETURN_NOT_OK(out.Append(header.str()));
  }
  for (uint64_t h = 0; h < ledger.height(); ++h) {
    const Block& block = ledger.block(h);
    std::ostringstream os;
    os << "B," << block.height << "," << block.timestamp << "\n";
    for (TxId id : block.transactions) {
      const Transaction& tx = ledger.tx(id);
      if (tx.coinbase) {
        os << "C," << tx.timestamp << "," << JoinOutputs(tx.outputs) << "\n";
      } else {
        os << "T," << tx.timestamp << "," << JoinInputs(tx.inputs) << ","
           << JoinOutputs(tx.outputs) << "\n";
      }
    }
    BA_RETURN_NOT_OK(out.Append(os.str()));
  }
  // Integrity trailer: CRC32 of every byte above this line.
  BA_RETURN_NOT_OK(
      out.Append(kCrcTrailerPrefix + CrcHex(out.crc()) + "\n"));
  return out.Commit();
}

Result<Ledger> ImportLedgerCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);

  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument("line 1: empty file (missing header)");
  }
  const bool v2 = header.rfind(kHeaderV2, 0) == 0;
  if (!v2 && header.rfind(kHeaderV1, 0) != 0) {
    return Status::InvalidArgument("line 1: missing ba-ledger header");
  }
  // Running CRC over every byte of the file before the trailer line,
  // exactly as the exporter wrote them (trailing '\n' included).
  uint32_t crc = util::Crc32(header + "\n");
  Amount subsidy = 0;
  size_t num_addresses = 0;
  {
    std::stringstream ss(header.substr(sizeof(kHeaderV1) - 1));
    std::string field;
    try {
      if (!std::getline(ss, field, ',')) throw std::invalid_argument("");
      subsidy = std::stoll(field);
      if (!std::getline(ss, field, ',')) throw std::invalid_argument("");
      num_addresses = std::stoull(field);
    } catch (const std::exception&) {
      return Status::InvalidArgument("line 1: malformed header: " + header);
    }
  }
  // Validate header values before acting on them: a corrupted subsidy
  // or address count must fail here, not abort in the Ledger ctor or
  // drive an enormous allocation.
  if (subsidy <= 0) {
    return Status::InvalidArgument("line 1: invalid block subsidy " +
                                   std::to_string(subsidy));
  }
  constexpr size_t kMaxAddresses = size_t{1} << 26;  // ~67M, corpus is ~2M
  if (num_addresses > kMaxAddresses) {
    return Status::InvalidArgument("line 1: implausible address count " +
                                   std::to_string(num_addresses));
  }

  LedgerOptions options;
  options.block_subsidy = subsidy;
  Ledger ledger(options);
  for (size_t i = 0; i < num_addresses; ++i) ledger.NewAddress();

  std::string line;
  Timestamp block_time = 0;
  bool in_block = false;
  bool saw_trailer = false;
  int line_no = 1;
  auto fail = [&line_no](const std::string& why) {
    return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                   why);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (saw_trailer) return fail("content after crc32 trailer");
    if (line.rfind(kCrcTrailerPrefix, 0) == 0) {
      const std::string stored = line.substr(sizeof(kCrcTrailerPrefix) - 1);
      const std::string computed = CrcHex(crc);
      if (stored != computed) {
        return fail("crc32 mismatch over lines 1-" +
                    std::to_string(line_no - 1) + " (stored " + stored +
                    ", computed " + computed + "): file corrupted");
      }
      saw_trailer = true;
      continue;
    }
    crc = util::Crc32(line + "\n", crc);
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string kind;
    if (!std::getline(ss, kind, ',')) return fail("empty record");
    if (kind == "B") {
      if (in_block) BA_RETURN_NOT_OK(ledger.SealBlock(block_time));
      std::string height_s, ts_s;
      if (!std::getline(ss, height_s, ',') || !std::getline(ss, ts_s, ',')) {
        return fail("malformed block record");
      }
      try {
        block_time = std::stoll(ts_s);
      } catch (const std::exception&) {
        return fail("bad block timestamp");
      }
      in_block = true;
    } else if (kind == "C") {
      std::string ts_s, outs_s;
      if (!std::getline(ss, ts_s, ',') || !std::getline(ss, outs_s)) {
        return fail("malformed coinbase record");
      }
      std::vector<std::pair<uint64_t, int64_t>> outs;
      if (!ParsePairs(outs_s, &outs)) return fail("bad coinbase outputs");
      std::vector<AddressId> addresses;
      std::vector<double> weights;
      for (const auto& [addr, value] : outs) {
        addresses.push_back(static_cast<AddressId>(addr));
        weights.push_back(static_cast<double>(value));
      }
      Timestamp ts = 0;
      try {
        ts = std::stoll(ts_s);
      } catch (const std::exception&) {
        return fail("bad coinbase timestamp");
      }
      auto result = ledger.ApplyCoinbase(ts, addresses, weights);
      if (!result.ok()) return fail(result.status().message());
    } else if (kind == "T") {
      std::string ts_s, ins_s, outs_s;
      if (!std::getline(ss, ts_s, ',') || !std::getline(ss, ins_s, ',') ||
          !std::getline(ss, outs_s)) {
        return fail("malformed transaction record");
      }
      std::vector<std::pair<uint64_t, int64_t>> ins, outs;
      if (!ParsePairs(ins_s, &ins)) return fail("bad inputs");
      if (!ParsePairs(outs_s, &outs)) return fail("bad outputs");
      TxDraft draft;
      try {
        draft.timestamp = std::stoll(ts_s);
      } catch (const std::exception&) {
        return fail("bad transaction timestamp");
      }
      for (const auto& [txid, index] : ins) {
        draft.inputs.push_back(
            OutPoint{txid, static_cast<uint32_t>(index)});
      }
      for (const auto& [addr, value] : outs) {
        draft.outputs.push_back({static_cast<AddressId>(addr), value});
      }
      auto result = ledger.ApplyTransaction(draft);
      if (!result.ok()) return fail(result.status().message());
    } else if (kind[0] == '#') {
      continue;  // comment
    } else {
      return fail("unknown record kind: " + kind);
    }
  }
  if (v2 && !saw_trailer) {
    return Status::InvalidArgument(
        "line " + std::to_string(line_no) +
        ": truncated file (missing crc32 trailer)");
  }
  if (in_block) BA_RETURN_NOT_OK(ledger.SealBlock(block_time));
  BA_RETURN_NOT_OK(ledger.CheckConservation());
  return ledger;
}

}  // namespace ba::chain
