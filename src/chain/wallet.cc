#include "chain/wallet.h"

#include <algorithm>

#include "util/logging.h"

namespace ba::chain {

AddressId Wallet::CreateAddress() {
  const AddressId id = ledger_->NewAddress();
  addresses_.push_back(id);
  return id;
}

void Wallet::AdoptAddress(AddressId address) { addresses_.push_back(address); }

Amount Wallet::Balance() const {
  Amount total = 0;
  for (AddressId a : addresses_) total += ledger_->BalanceOf(a);
  return total;
}

Result<Wallet::Selected> Wallet::SelectCoins(Amount target,
                                             CoinSelection selection) const {
  struct Candidate {
    Utxo utxo;
    AddressId owner;
  };
  std::vector<Candidate> candidates;
  for (AddressId a : addresses_) {
    for (const auto& u : ledger_->UnspentOf(a)) {
      const Transaction& source = ledger_->tx(u.outpoint.txid);
      if (source.coinbase &&
          ledger_->height() <
              u.confirmed_height + ledger_->options().coinbase_maturity) {
        continue;
      }
      candidates.push_back({u, a});
    }
  }
  switch (selection) {
    case CoinSelection::kLargestFirst:
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const Candidate& x, const Candidate& y) {
                         return x.utxo.value > y.utxo.value;
                       });
      break;
    case CoinSelection::kOldestFirst:
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const Candidate& x, const Candidate& y) {
                         return x.utxo.outpoint.txid < y.utxo.outpoint.txid;
                       });
      break;
  }

  Selected sel;
  for (const auto& c : candidates) {
    if (sel.total >= target) break;
    if (sel.first_source == kInvalidAddress) sel.first_source = c.owner;
    sel.inputs.push_back(c.utxo.outpoint);
    sel.total += c.utxo.value;
  }
  if (sel.total < target) {
    return Status::FailedPrecondition(
        "insufficient funds: have " + std::to_string(sel.total) + ", need " +
        std::to_string(target));
  }
  return sel;
}

Result<TxId> Wallet::Send(Timestamp timestamp,
                          const std::vector<TxOut>& payments, Amount fee,
                          ChangePolicy policy, CoinSelection selection) {
  if (payments.empty()) {
    return Status::InvalidArgument("payment list is empty");
  }
  if (fee < 0) return Status::InvalidArgument("negative fee");
  Amount pay_total = 0;
  for (const auto& p : payments) {
    if (p.value <= 0) return Status::InvalidArgument("non-positive payment");
    pay_total += p.value;
  }

  BA_ASSIGN_OR_RETURN(Selected sel, SelectCoins(pay_total + fee, selection));

  TxDraft draft;
  draft.timestamp = timestamp;
  draft.inputs = std::move(sel.inputs);
  draft.outputs = payments;

  const Amount change = sel.total - pay_total - fee;
  if (change > 0) {
    AddressId change_addr;
    if (policy == ChangePolicy::kFreshAddress) {
      change_addr = CreateAddress();
    } else {
      change_addr = sel.first_source;
    }
    draft.outputs.push_back({change_addr, change});
    last_change_address_ = change_addr;
  }
  return ledger_->ApplyTransaction(draft);
}

Result<TxId> Wallet::SweepTo(Timestamp timestamp, AddressId destination,
                             Amount fee) {
  const Amount balance = Balance();
  if (balance <= fee) {
    return Status::FailedPrecondition("balance does not cover sweep fee");
  }
  BA_ASSIGN_OR_RETURN(Selected sel,
                      SelectCoins(balance, CoinSelection::kLargestFirst));
  TxDraft draft;
  draft.timestamp = timestamp;
  draft.inputs = std::move(sel.inputs);
  draft.outputs.push_back({destination, sel.total - fee});
  return ledger_->ApplyTransaction(draft);
}

}  // namespace ba::chain
