#pragma once

#include <string>

#include "chain/ledger.h"
#include "util/status.h"

/// \file io.h
/// \brief CSV export/import of a ledger — the "release the dataset"
/// side of the paper. The format is line-oriented and re-validated on
/// import: a ledger round-trips through disk into an identical,
/// conservation-checked ledger.
///
/// Format:
///   # ba-ledger v1,<block_subsidy>
///   B,<height>,<timestamp>
///   C,<timestamp>,<addr>:<value>[|<addr>:<value>...]       (coinbase)
///   T,<timestamp>,<txid>:<vout>[|...],<addr>:<value>[|...]  (spend)
/// Addresses are dense ids; every id below the header's address count
/// exists.

namespace ba::chain {

/// \brief Writes the full chain to `path`. Fails on I/O errors.
Status ExportLedgerCsv(const Ledger& ledger, const std::string& path);

/// \brief Reads a chain written by ExportLedgerCsv, replaying every
/// transaction through full validation. Returns the reconstructed
/// ledger or a descriptive error (malformed line, validation failure).
Result<Ledger> ImportLedgerCsv(const std::string& path);

}  // namespace ba::chain
