#pragma once

#include <string>

#include "chain/ledger.h"
#include "util/status.h"

/// \file io.h
/// \brief CSV export/import of a ledger — the "release the dataset"
/// side of the paper. The format is line-oriented and re-validated on
/// import: a ledger round-trips through disk into an identical,
/// conservation-checked ledger.
///
/// Format (v2):
///   # ba-ledger v2,<block_subsidy>,<num_addresses>
///   B,<height>,<timestamp>
///   C,<timestamp>,<addr>:<value>[|<addr>:<value>...]       (coinbase)
///   T,<timestamp>,<txid>:<vout>[|...],<addr>:<value>[|...]  (spend)
///   # crc32,<8-hex>                                        (trailer)
/// Addresses are dense ids; every id below the header's address count
/// exists. Files are written atomically (tmp + rename); the trailing
/// CRC32 covers every byte above it and is verified on import, so a
/// truncated or bit-flipped release fails with a line-numbered error
/// instead of loading silently. v1 files (no trailer) still import.

namespace ba::chain {

/// \brief Writes the full chain to `path`. Fails on I/O errors.
Status ExportLedgerCsv(const Ledger& ledger, const std::string& path);

/// \brief Reads a chain written by ExportLedgerCsv, replaying every
/// transaction through full validation. Returns the reconstructed
/// ledger or a descriptive error (malformed line, validation failure).
Result<Ledger> ImportLedgerCsv(const std::string& path);

}  // namespace ba::chain
