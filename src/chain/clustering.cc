#include "chain/clustering.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace ba::chain {

AddressClusterer::AddressClusterer(size_t num_addresses)
    : parent_(num_addresses), rank_(num_addresses, 0) {
  for (size_t i = 0; i < num_addresses; ++i) {
    parent_[i] = static_cast<AddressId>(i);
  }
}

AddressId AddressClusterer::Find(AddressId a) const {
  BA_CHECK_LT(a, parent_.size());
  AddressId root = a;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[a] != root) {
    const AddressId next = parent_[a];
    parent_[a] = root;
    a = next;
  }
  return root;
}

void AddressClusterer::Union(AddressId a, AddressId b) {
  AddressId ra = Find(a);
  AddressId rb = Find(b);
  if (ra == rb) return;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
}

void AddressClusterer::AddTransaction(const Transaction& tx,
                                      bool output0_first_seen,
                                      bool output1_first_seen,
                                      const Options& options) {
  if (tx.coinbase || tx.inputs.empty()) return;
  if (options.common_input) {
    for (size_t i = 1; i < tx.inputs.size(); ++i) {
      Union(tx.inputs[0].address, tx.inputs[i].address);
    }
  }
  if (options.change_heuristic && tx.outputs.size() == 2) {
    // Exactly one first-appearance output => treat it as the change.
    if (output0_first_seen != output1_first_seen) {
      const AddressId change = output0_first_seen ? tx.outputs[0].address
                                                  : tx.outputs[1].address;
      Union(tx.inputs[0].address, change);
    }
  }
}

AddressClusterer AddressClusterer::FromLedger(const Ledger& ledger,
                                              Options options) {
  AddressClusterer clusterer(ledger.num_addresses());
  std::vector<bool> seen(ledger.num_addresses(), false);
  for (uint64_t h = 0; h < ledger.height(); ++h) {
    const Block& block = ledger.block(h);
    for (TxId id : block.transactions) {
      const Transaction& tx = ledger.tx(id);
      bool first0 = false, first1 = false;
      if (tx.outputs.size() == 2) {
        first0 = !seen[tx.outputs[0].address];
        first1 = !seen[tx.outputs[1].address];
      }
      clusterer.AddTransaction(tx, first0, first1, options);
      for (const auto& out : tx.outputs) seen[out.address] = true;
      for (const auto& in : tx.inputs) seen[in.address] = true;
    }
  }
  return clusterer;
}

size_t AddressClusterer::NumClusters() const {
  size_t count = 0;
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (Find(static_cast<AddressId>(i)) == static_cast<AddressId>(i)) {
      ++count;
    }
  }
  return count;
}

std::vector<std::vector<AddressId>> AddressClusterer::Clusters(
    size_t min_size) const {
  std::unordered_map<AddressId, std::vector<AddressId>> groups;
  for (size_t i = 0; i < parent_.size(); ++i) {
    groups[Find(static_cast<AddressId>(i))].push_back(
        static_cast<AddressId>(i));
  }
  std::vector<std::vector<AddressId>> out;
  for (auto& [root, members] : groups) {
    if (members.size() >= min_size) out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  return out;
}

}  // namespace ba::chain
