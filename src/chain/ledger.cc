#include "chain/ledger.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "util/logging.h"

namespace ba::chain {

namespace {

/// Number of leading entries of `list` that fall inside an epoch with
/// `num_transactions` applied. Per-address lists are strictly ascending
/// in TxId (ids are assigned monotonically and indexed immediately), so
/// this is a binary search for the first id >= num_transactions.
size_t ClampedCount(const util::ChunkedVector<TxId>& list,
                    uint64_t num_transactions) {
  size_t lo = 0;
  size_t hi = list.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (list[mid] < num_transactions) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

// ---------------------------------------------------------------------------
// LedgerSnapshot

const LedgerOptions& LedgerSnapshot::options() const {
  return ledger_->options_;
}

const Transaction& LedgerSnapshot::tx(TxId id) const {
  BA_CHECK_LT(id, num_transactions_);
  return ledger_->transactions_[id];
}

const Block& LedgerSnapshot::block(uint64_t height) const {
  BA_CHECK_LT(height, height_);
  return ledger_->blocks_[height];
}

size_t LedgerSnapshot::TxCountOf(AddressId address) const {
  if (address >= num_addresses_) return 0;
  return ClampedCount(ledger_->address_txs_[address], num_transactions_);
}

std::vector<TxId> LedgerSnapshot::TransactionsOf(AddressId address,
                                                 size_t max_count) const {
  std::vector<TxId> out;
  if (address >= num_addresses_) return out;
  const auto& list = ledger_->address_txs_[address];
  const size_t n = std::min(ClampedCount(list, num_transactions_), max_count);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(list[i]);
  return out;
}

std::vector<Utxo> LedgerSnapshot::UnspentOf(AddressId address) const {
  // Replays the address's pinned history instead of reading the live
  // UTXO map: every transaction that spends one of `address`'s outputs
  // also touches `address` (as an input owner), so it appears in the
  // address's own list and the replay sees every create and spend.
  std::vector<Utxo> live;
  if (address >= num_addresses_) return live;
  const auto& list = ledger_->address_txs_[address];
  const size_t n = ClampedCount(list, num_transactions_);
  for (size_t i = 0; i < n; ++i) {
    const Transaction& t = tx(list[i]);
    for (const auto& in : t.inputs) {
      if (in.address != address) continue;
      const uint64_t key = in.prevout.Key();
      for (auto it = live.begin(); it != live.end(); ++it) {
        if (it->outpoint.Key() == key) {
          live.erase(it);
          break;
        }
      }
    }
    for (uint32_t j = 0; j < t.outputs.size(); ++j) {
      if (t.outputs[j].address != address) continue;
      Utxo u;
      u.outpoint = OutPoint{t.txid, j};
      u.value = t.outputs[j].value;
      u.confirmed_height = t.block_height;
      live.push_back(u);
    }
  }
  return live;
}

Amount LedgerSnapshot::BalanceOf(AddressId address) const {
  Amount total = 0;
  for (const auto& u : UnspentOf(address)) {
    const Transaction& source = tx(u.outpoint.txid);
    if (source.coinbase &&
        height_ < u.confirmed_height + ledger_->options_.coinbase_maturity) {
      continue;  // immature coinbase
    }
    total += u.value;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Ledger

Ledger::Ledger(LedgerOptions options) : options_(options) {
  BA_CHECK_GT(options_.block_subsidy, 0);
}

Ledger::Ledger(Ledger&& other) noexcept
    : options_(other.options_),
      blocks_(std::move(other.blocks_)),
      transactions_(std::move(other.transactions_)),
      address_txs_(std::move(other.address_txs_)),
      published_txs_(other.published_txs_.load(std::memory_order_relaxed)),
      pending_(std::move(other.pending_)),
      pending_has_coinbase_(other.pending_has_coinbase_),
      last_seal_time_(other.last_seal_time_),
      utxos_(std::move(other.utxos_)),
      address_utxo_keys_(std::move(other.address_utxo_keys_)),
      total_minted_(other.total_minted_),
      total_fees_(other.total_fees_) {
  other.published_txs_.store(0, std::memory_order_relaxed);
}

Ledger& Ledger::operator=(Ledger&& other) noexcept {
  if (this != &other) {
    options_ = other.options_;
    blocks_ = std::move(other.blocks_);
    transactions_ = std::move(other.transactions_);
    address_txs_ = std::move(other.address_txs_);
    published_txs_.store(
        other.published_txs_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.published_txs_.store(0, std::memory_order_relaxed);
    pending_ = std::move(other.pending_);
    pending_has_coinbase_ = other.pending_has_coinbase_;
    last_seal_time_ = other.last_seal_time_;
    utxos_ = std::move(other.utxos_);
    address_utxo_keys_ = std::move(other.address_utxo_keys_);
    total_minted_ = other.total_minted_;
    total_fees_ = other.total_fees_;
  }
  return *this;
}

LedgerSnapshot Ledger::Snapshot() const {
  // Capture order is the reverse of the publication order (blocks are
  // published after the transactions they contain, transactions after
  // the addresses they reference), so the pinned triple is mutually
  // consistent even when the writer is mid-apply.
  const uint64_t h = blocks_.size();
  const uint64_t t = published_txs_.load(std::memory_order_acquire);
  const size_t a = address_txs_.size();
  return LedgerSnapshot(this, h, t, a);
}

LedgerSnapshot Ledger::SnapshotAt(uint64_t num_transactions) const {
  BA_CHECK_LE(num_transactions,
              published_txs_.load(std::memory_order_acquire));
  return LedgerSnapshot(this, blocks_.size(), num_transactions,
                        address_txs_.size());
}

AddressId Ledger::NewAddress() {
  const AddressId id = static_cast<AddressId>(address_txs_.size());
  address_txs_.Append();  // publishes an empty tx list for the address
  address_utxo_keys_.emplace_back();
  return id;
}

Result<TxId> Ledger::ApplyCoinbase(
    Timestamp timestamp, const std::vector<AddressId>& payout_addresses,
    const std::vector<double>& payout_weights) {
  if (pending_has_coinbase_) {
    return Status::AlreadyExists("pending block already has a coinbase");
  }
  if (payout_addresses.empty() ||
      payout_addresses.size() != payout_weights.size()) {
    return Status::InvalidArgument("coinbase payouts malformed");
  }
  double weight_sum = 0.0;
  for (double w : payout_weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument(
          "payout weight must be finite and non-negative");
    }
    weight_sum += w;
  }
  if (!(weight_sum > 0.0) || !std::isfinite(weight_sum)) {
    return Status::InvalidArgument("payout weights sum to zero");
  }
  for (AddressId a : payout_addresses) {
    if (a >= address_txs_.size()) {
      return Status::NotFound("coinbase payout to unknown address");
    }
  }

  // Largest-remainder split: floor each payout's real-valued quota,
  // then hand out the integer leftover one satoshi at a time in order
  // of descending fractional part (ties to the lower index). The
  // outputs therefore always sum to exactly block_subsidy, for any
  // number or skew of weights.
  const size_t n = payout_addresses.size();
  const Amount subsidy = options_.block_subsidy;
  std::vector<Amount> share(n);
  std::vector<double> frac(n);
  Amount assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double quota =
        static_cast<double>(subsidy) * payout_weights[i] / weight_sum;
    Amount s = static_cast<Amount>(std::floor(quota));
    s = std::clamp<Amount>(s, 0, subsidy);
    share[i] = s;
    frac[i] = quota - static_cast<double>(s);
    assigned += s;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&frac](size_t a, size_t b) { return frac[a] > frac[b]; });
  Amount leftover = subsidy - assigned;
  // In exact arithmetic 0 <= leftover < n; the loops below also absorb
  // the +/- few units that double rounding of the quotas can introduce.
  while (leftover > 0) {
    for (size_t k = 0; k < n && leftover > 0; ++k) {
      ++share[order[k]];
      --leftover;
    }
  }
  while (leftover < 0) {
    for (size_t k = n; k-- > 0 && leftover < 0;) {
      if (share[order[k]] > 0) {
        --share[order[k]];
        ++leftover;
      }
    }
  }

  Transaction tx;
  tx.txid = transactions_.size();
  tx.timestamp = timestamp;
  tx.block_height = blocks_.size();
  tx.coinbase = true;
  for (size_t i = 0; i < n; ++i) {
    if (share[i] > 0) tx.outputs.push_back({payout_addresses[i], share[i]});
  }

  for (uint32_t i = 0; i < tx.outputs.size(); ++i) {
    const OutPoint op{tx.txid, i};
    utxos_[op.Key()] = {tx.outputs[i], blocks_.size()};
    address_utxo_keys_[tx.outputs[i].address].push_back(op.Key());
  }
  total_minted_ += subsidy;
  pending_.transactions.push_back(tx.txid);
  pending_has_coinbase_ = true;
  const TxId txid = tx.txid;
  // Publication protocol: storage, then index, then the counter.
  transactions_.push_back(std::move(tx));
  IndexTransaction(transactions_[txid]);
  published_txs_.store(txid + 1, std::memory_order_release);
  return txid;
}

Result<TxId> Ledger::ApplyCoinbase(Timestamp timestamp, AddressId payout) {
  return ApplyCoinbase(timestamp, std::vector<AddressId>{payout},
                       std::vector<double>{1.0});
}

Result<TxId> Ledger::ApplyTransaction(const TxDraft& draft) {
  if (draft.inputs.empty()) {
    return Status::InvalidArgument("transaction has no inputs");
  }
  if (draft.outputs.empty()) {
    return Status::InvalidArgument("transaction has no outputs");
  }
  // Reject duplicate inputs within the draft itself.
  std::unordered_set<uint64_t> seen;
  seen.reserve(draft.inputs.size());
  for (const auto& op : draft.inputs) {
    if (!seen.insert(op.Key()).second) {
      return Status::InvalidArgument("duplicate input outpoint in draft");
    }
  }

  Transaction tx;
  tx.inputs.reserve(draft.inputs.size());
  Amount in_value = 0;
  for (const auto& op : draft.inputs) {
    auto it = utxos_.find(op.Key());
    if (it == utxos_.end()) {
      return Status::NotFound("input outpoint not found or already spent");
    }
    const UtxoEntry& entry = it->second;
    const Transaction& source = transactions_[op.txid];
    if (source.coinbase && blocks_.size() <
        entry.confirmed_height + options_.coinbase_maturity) {
      return Status::FailedPrecondition("coinbase output not yet mature");
    }
    tx.inputs.push_back({op, entry.out.address, entry.out.value});
    in_value += entry.out.value;
  }

  Amount out_value = 0;
  for (const auto& out : draft.outputs) {
    if (out.value <= 0) {
      return Status::InvalidArgument("non-positive output value");
    }
    if (out.address >= address_txs_.size()) {
      return Status::NotFound("output to unknown address");
    }
    out_value += out.value;
  }
  if (out_value > in_value) {
    return Status::InvalidArgument("outputs exceed inputs");
  }

  // Validation passed — commit.
  tx.txid = transactions_.size();
  tx.timestamp = draft.timestamp;
  tx.block_height = blocks_.size();
  tx.coinbase = false;
  tx.outputs = draft.outputs;

  for (const auto& in : tx.inputs) {
    utxos_.erase(in.prevout.Key());
    auto& keys = address_utxo_keys_[in.address];
    keys.erase(std::remove(keys.begin(), keys.end(), in.prevout.Key()),
               keys.end());
  }
  for (uint32_t i = 0; i < tx.outputs.size(); ++i) {
    const OutPoint op{tx.txid, i};
    utxos_[op.Key()] = {tx.outputs[i], blocks_.size()};
    address_utxo_keys_[tx.outputs[i].address].push_back(op.Key());
  }
  total_fees_ += in_value - out_value;
  pending_.transactions.push_back(tx.txid);
  const TxId txid = tx.txid;
  // Publication protocol: storage, then index, then the counter.
  transactions_.push_back(std::move(tx));
  IndexTransaction(transactions_[txid]);
  published_txs_.store(txid + 1, std::memory_order_release);
  return txid;
}

Status Ledger::SealBlock(Timestamp timestamp) {
  if (timestamp < last_seal_time_) {
    return Status::InvalidArgument("block timestamps must be non-decreasing");
  }
  pending_.height = blocks_.size();
  pending_.timestamp = timestamp;
  blocks_.push_back(std::move(pending_));
  pending_ = Block{};
  pending_has_coinbase_ = false;
  last_seal_time_ = timestamp;
  return Status::OK();
}

const Transaction& Ledger::tx(TxId id) const {
  BA_CHECK_LT(id, num_transactions());
  return transactions_[id];
}

const Block& Ledger::block(uint64_t height) const {
  BA_CHECK_LT(height, blocks_.size());
  return blocks_[height];
}

size_t Ledger::TxCountOf(AddressId address) const {
  BA_CHECK_LT(address, address_txs_.size());
  return address_txs_[address].size();
}

std::vector<TxId> Ledger::TransactionsOf(AddressId address) const {
  BA_CHECK_LT(address, address_txs_.size());
  const auto& list = address_txs_[address];
  const size_t n = list.size();
  std::vector<TxId> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(list[i]);
  return out;
}

std::vector<Utxo> Ledger::UnspentOf(AddressId address) const {
  BA_CHECK_LT(address, address_utxo_keys_.size());
  std::vector<Utxo> out;
  out.reserve(address_utxo_keys_[address].size());
  for (uint64_t key : address_utxo_keys_[address]) {
    auto it = utxos_.find(key);
    BA_CHECK(it != utxos_.end());
    Utxo u;
    u.outpoint = OutPoint{key >> 20, static_cast<uint32_t>(key & 0xFFFFF)};
    u.value = it->second.out.value;
    u.confirmed_height = it->second.confirmed_height;
    out.push_back(u);
  }
  return out;
}

Amount Ledger::BalanceOf(AddressId address) const {
  Amount total = 0;
  for (const auto& u : UnspentOf(address)) {
    const Transaction& source = transactions_[u.outpoint.txid];
    if (source.coinbase &&
        blocks_.size() < u.confirmed_height + options_.coinbase_maturity) {
      continue;  // immature coinbase
    }
    total += u.value;
  }
  return total;
}

Status Ledger::CheckConservation() const {
  Amount utxo_total = 0;
  for (const auto& [key, entry] : utxos_) utxo_total += entry.out.value;
  const Amount expected = total_minted_ - total_fees_;
  if (utxo_total != expected) {
    return Status::Internal(
        "conservation violated: UTXO total " + std::to_string(utxo_total) +
        " != minted - fees " + std::to_string(expected));
  }
  return Status::OK();
}

void Ledger::IndexTransaction(const Transaction& tx) {
  std::unordered_set<AddressId> touched;
  for (const auto& in : tx.inputs) touched.insert(in.address);
  for (const auto& out : tx.outputs) touched.insert(out.address);
  for (AddressId a : touched) address_txs_.MutableAt(a).push_back(tx.txid);
}

}  // namespace ba::chain
