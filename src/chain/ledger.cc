#include "chain/ledger.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace ba::chain {

Ledger::Ledger(LedgerOptions options) : options_(options) {
  BA_CHECK_GT(options_.block_subsidy, 0);
}

AddressId Ledger::NewAddress() {
  const AddressId id = static_cast<AddressId>(address_txs_.size());
  address_txs_.emplace_back();
  address_utxo_keys_.emplace_back();
  return id;
}

Result<TxId> Ledger::ApplyCoinbase(
    Timestamp timestamp, const std::vector<AddressId>& payout_addresses,
    const std::vector<double>& payout_weights) {
  if (pending_has_coinbase_) {
    return Status::AlreadyExists("pending block already has a coinbase");
  }
  if (payout_addresses.empty() ||
      payout_addresses.size() != payout_weights.size()) {
    return Status::InvalidArgument("coinbase payouts malformed");
  }
  double weight_sum = 0.0;
  for (double w : payout_weights) {
    if (w < 0.0) return Status::InvalidArgument("negative payout weight");
    weight_sum += w;
  }
  if (weight_sum <= 0.0) {
    return Status::InvalidArgument("payout weights sum to zero");
  }
  for (AddressId a : payout_addresses) {
    if (a >= address_txs_.size()) {
      return Status::NotFound("coinbase payout to unknown address");
    }
  }

  Transaction tx;
  tx.txid = transactions_.size();
  tx.timestamp = timestamp;
  tx.block_height = blocks_.size();
  tx.coinbase = true;
  Amount remaining = options_.block_subsidy;
  for (size_t i = 0; i + 1 < payout_addresses.size(); ++i) {
    const Amount share = static_cast<Amount>(std::floor(
        static_cast<double>(options_.block_subsidy) * payout_weights[i] /
        weight_sum));
    const Amount v = std::min(share, remaining);
    if (v > 0) {
      tx.outputs.push_back({payout_addresses[i], v});
      remaining -= v;
    }
  }
  if (remaining > 0) {
    tx.outputs.push_back({payout_addresses.back(), remaining});
  }

  for (uint32_t i = 0; i < tx.outputs.size(); ++i) {
    const OutPoint op{tx.txid, i};
    utxos_[op.Key()] = {tx.outputs[i], blocks_.size()};
    address_utxo_keys_[tx.outputs[i].address].push_back(op.Key());
  }
  total_minted_ += options_.block_subsidy;
  IndexTransaction(tx);
  pending_.transactions.push_back(tx.txid);
  pending_has_coinbase_ = true;
  transactions_.push_back(std::move(tx));
  return transactions_.back().txid;
}

Result<TxId> Ledger::ApplyCoinbase(Timestamp timestamp, AddressId payout) {
  return ApplyCoinbase(timestamp, std::vector<AddressId>{payout},
                       std::vector<double>{1.0});
}

Result<TxId> Ledger::ApplyTransaction(const TxDraft& draft) {
  if (draft.inputs.empty()) {
    return Status::InvalidArgument("transaction has no inputs");
  }
  if (draft.outputs.empty()) {
    return Status::InvalidArgument("transaction has no outputs");
  }
  // Reject duplicate inputs within the draft itself.
  std::unordered_set<uint64_t> seen;
  seen.reserve(draft.inputs.size());
  for (const auto& op : draft.inputs) {
    if (!seen.insert(op.Key()).second) {
      return Status::InvalidArgument("duplicate input outpoint in draft");
    }
  }

  Transaction tx;
  tx.inputs.reserve(draft.inputs.size());
  Amount in_value = 0;
  for (const auto& op : draft.inputs) {
    auto it = utxos_.find(op.Key());
    if (it == utxos_.end()) {
      return Status::NotFound("input outpoint not found or already spent");
    }
    const UtxoEntry& entry = it->second;
    const Transaction& source = transactions_[op.txid];
    if (source.coinbase && blocks_.size() <
        entry.confirmed_height + options_.coinbase_maturity) {
      return Status::FailedPrecondition("coinbase output not yet mature");
    }
    tx.inputs.push_back({op, entry.out.address, entry.out.value});
    in_value += entry.out.value;
  }

  Amount out_value = 0;
  for (const auto& out : draft.outputs) {
    if (out.value <= 0) {
      return Status::InvalidArgument("non-positive output value");
    }
    if (out.address >= address_txs_.size()) {
      return Status::NotFound("output to unknown address");
    }
    out_value += out.value;
  }
  if (out_value > in_value) {
    return Status::InvalidArgument("outputs exceed inputs");
  }

  // Validation passed — commit.
  tx.txid = transactions_.size();
  tx.timestamp = draft.timestamp;
  tx.block_height = blocks_.size();
  tx.coinbase = false;
  tx.outputs = draft.outputs;

  for (const auto& in : tx.inputs) {
    utxos_.erase(in.prevout.Key());
    auto& keys = address_utxo_keys_[in.address];
    keys.erase(std::remove(keys.begin(), keys.end(), in.prevout.Key()),
               keys.end());
  }
  for (uint32_t i = 0; i < tx.outputs.size(); ++i) {
    const OutPoint op{tx.txid, i};
    utxos_[op.Key()] = {tx.outputs[i], blocks_.size()};
    address_utxo_keys_[tx.outputs[i].address].push_back(op.Key());
  }
  total_fees_ += in_value - out_value;
  IndexTransaction(tx);
  pending_.transactions.push_back(tx.txid);
  transactions_.push_back(std::move(tx));
  return transactions_.back().txid;
}

Status Ledger::SealBlock(Timestamp timestamp) {
  if (timestamp < last_seal_time_) {
    return Status::InvalidArgument("block timestamps must be non-decreasing");
  }
  pending_.height = blocks_.size();
  pending_.timestamp = timestamp;
  blocks_.push_back(std::move(pending_));
  pending_ = Block{};
  pending_has_coinbase_ = false;
  last_seal_time_ = timestamp;
  return Status::OK();
}

const Transaction& Ledger::tx(TxId id) const {
  BA_CHECK_LT(id, transactions_.size());
  return transactions_[id];
}

const std::vector<TxId>& Ledger::TransactionsOf(AddressId address) const {
  BA_CHECK_LT(address, address_txs_.size());
  return address_txs_[address];
}

std::vector<Utxo> Ledger::UnspentOf(AddressId address) const {
  BA_CHECK_LT(address, address_utxo_keys_.size());
  std::vector<Utxo> out;
  out.reserve(address_utxo_keys_[address].size());
  for (uint64_t key : address_utxo_keys_[address]) {
    auto it = utxos_.find(key);
    BA_CHECK(it != utxos_.end());
    Utxo u;
    u.outpoint = OutPoint{key >> 20, static_cast<uint32_t>(key & 0xFFFFF)};
    u.value = it->second.out.value;
    u.confirmed_height = it->second.confirmed_height;
    out.push_back(u);
  }
  return out;
}

Amount Ledger::BalanceOf(AddressId address) const {
  Amount total = 0;
  for (const auto& u : UnspentOf(address)) {
    const Transaction& source = transactions_[u.outpoint.txid];
    if (source.coinbase &&
        blocks_.size() < u.confirmed_height + options_.coinbase_maturity) {
      continue;  // immature coinbase
    }
    total += u.value;
  }
  return total;
}

Status Ledger::CheckConservation() const {
  Amount utxo_total = 0;
  for (const auto& [key, entry] : utxos_) utxo_total += entry.out.value;
  const Amount expected = total_minted_ - total_fees_;
  if (utxo_total != expected) {
    return Status::Internal(
        "conservation violated: UTXO total " + std::to_string(utxo_total) +
        " != minted - fees " + std::to_string(expected));
  }
  return Status::OK();
}

void Ledger::IndexTransaction(const Transaction& tx) {
  std::unordered_set<AddressId> touched;
  for (const auto& in : tx.inputs) touched.insert(in.address);
  for (const auto& out : tx.outputs) touched.insert(out.address);
  for (AddressId a : touched) address_txs_[a].push_back(tx.txid);
}

}  // namespace ba::chain
