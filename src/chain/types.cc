#include "chain/types.h"

namespace ba::chain {

namespace {

// Base58 alphabet (no 0, O, I, l), as used by real bitcoin addresses.
constexpr char kBase58[] =
    "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::string FormatAddress(AddressId id) {
  // Deterministic pseudo-address: "1" prefix (P2PKH style) followed by
  // 26 base58 chars derived from two rounds of mixing.
  std::string out = "1";
  uint64_t a = Mix(0x42AC0FFEEULL + id);
  uint64_t b = Mix(a ^ (0x9E3779B97F4A7C15ULL + id));
  for (int i = 0; i < 13; ++i) {
    out.push_back(kBase58[a % 58]);
    a /= 58;
  }
  for (int i = 0; i < 13; ++i) {
    out.push_back(kBase58[b % 58]);
    b /= 58;
  }
  return out;
}

}  // namespace ba::chain
