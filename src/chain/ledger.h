#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chain/types.h"
#include "util/status.h"

/// \file ledger.h
/// \brief Append-only UTXO ledger: the blockchain substrate beneath the
/// behavioral data generator.
///
/// The ledger validates and confirms transactions (double-spend checks,
/// value conservation, coinbase rules), maintains the UTXO set, and
/// keeps the address -> transaction index that BAClassifier's graph
/// construction consumes.

namespace ba::chain {

/// \brief Tunables for the simulated chain.
struct LedgerOptions {
  /// Block subsidy credited by each coinbase transaction.
  Amount block_subsidy = 625'000'000;  // 6.25 BTC
  /// Blocks a coinbase output must age before it can be spent.
  uint64_t coinbase_maturity = 0;
  /// Target seconds between blocks (used by callers that auto-advance
  /// time; the ledger itself accepts any non-decreasing timestamps).
  int64_t block_interval_seconds = 600;
};

/// \brief The blockchain: blocks, transactions, UTXO set, and indexes.
///
/// Transactions are applied into a pending block; SealBlock() confirms
/// the pending block and advances the height. All mutation goes through
/// ApplyCoinbase / ApplyTransaction so the class can maintain its
/// conservation invariant: sum(UTXO values) == minted - fees.
class Ledger {
 public:
  explicit Ledger(LedgerOptions options = {});

  /// Creates a fresh address and returns its dense id.
  AddressId NewAddress();

  /// Number of addresses ever created.
  size_t num_addresses() const { return address_txs_.size(); }

  /// Number of confirmed or pending transactions.
  size_t num_transactions() const { return transactions_.size(); }

  /// Height of the next block to be sealed (number of sealed blocks).
  uint64_t height() const { return blocks_.size(); }

  const LedgerOptions& options() const { return options_; }

  /// \brief Adds the coinbase transaction of the pending block, paying
  /// `block_subsidy` split across `payouts` (fractions must sum to 1
  /// within rounding; remainder goes to the first payout).
  ///
  /// Fails if the pending block already has a coinbase or payouts are
  /// empty/invalid.
  Result<TxId> ApplyCoinbase(Timestamp timestamp,
                             const std::vector<AddressId>& payout_addresses,
                             const std::vector<double>& payout_weights);

  /// Convenience: single-payout coinbase.
  Result<TxId> ApplyCoinbase(Timestamp timestamp, AddressId payout);

  /// \brief Validates and applies a draft into the pending block.
  ///
  /// Checks: all inputs exist and are unspent (including within the
  /// pending block), coinbase maturity, outputs are positive and go to
  /// existing addresses, sum(in) >= sum(out).
  Result<TxId> ApplyTransaction(const TxDraft& draft);

  /// \brief Seals the pending block (possibly empty) at `timestamp`,
  /// which must be >= the previous block's timestamp.
  Status SealBlock(Timestamp timestamp);

  /// The confirmed transaction with the given id. Aborts on bad id.
  const Transaction& tx(TxId id) const;

  const std::vector<Block>& blocks() const { return blocks_; }

  /// All transactions touching `address` (as input or output), in
  /// chronological (apply) order — the raw material of §III-A.
  const std::vector<TxId>& TransactionsOf(AddressId address) const;

  /// Current unspent outputs owned by `address`.
  std::vector<Utxo> UnspentOf(AddressId address) const;

  /// Spendable balance of `address` (sum of its mature UTXOs).
  Amount BalanceOf(AddressId address) const;

  /// Total satoshis ever minted via coinbase subsidies.
  Amount total_minted() const { return total_minted_; }

  /// Total fees burned (sum over non-coinbase txs of in - out).
  Amount total_fees() const { return total_fees_; }

  /// \brief Verifies the global conservation invariant:
  /// sum of UTXO values == minted - fees. O(UTXO set).
  Status CheckConservation() const;

 private:
  struct UtxoEntry {
    TxOut out;
    uint64_t confirmed_height = 0;  // height of containing block
  };

  /// Records `txid` in the per-address index for each distinct address
  /// the transaction touches.
  void IndexTransaction(const Transaction& tx);

  LedgerOptions options_;
  std::vector<Block> blocks_;
  Block pending_;
  bool pending_has_coinbase_ = false;
  Timestamp last_seal_time_ = 0;
  std::vector<Transaction> transactions_;          // indexed by TxId
  std::unordered_map<uint64_t, UtxoEntry> utxos_;  // OutPoint::Key() -> entry
  std::vector<std::vector<TxId>> address_txs_;     // AddressId -> tx ids
  std::vector<std::vector<uint64_t>> address_utxo_keys_;  // live outpoints
  Amount total_minted_ = 0;
  Amount total_fees_ = 0;
};

}  // namespace ba::chain
