#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chain/types.h"
#include "util/chunked_vector.h"
#include "util/status.h"

/// \file ledger.h
/// \brief Append-only UTXO ledger: the blockchain substrate beneath the
/// behavioral data generator.
///
/// The ledger validates and confirms transactions (double-spend checks,
/// value conservation, coinbase rules), maintains the UTXO set, and
/// keeps the address -> transaction index that BAClassifier's graph
/// construction consumes.
///
/// ## Concurrency model (single writer, many readers)
///
/// The ledger is an append-only single-writer structure: exactly one
/// thread may mutate it (NewAddress / ApplyCoinbase / ApplyTransaction /
/// SealBlock) at a time. Concurrently with that writer, any number of
/// reader threads may:
///
///  * call the cheap monotonic accessors `height()`,
///    `num_addresses()`, `num_transactions()`, `TxCountOf()`,
///    `tx()`, `block()`, `TransactionsOf()`;
///  * capture a `LedgerSnapshot` via `Snapshot()` and read through it.
///
/// This works because the hot storage (`transactions_`, `blocks_`, the
/// per-address tx lists) lives in `util::ChunkedVector`s whose elements
/// never move once published, and every publication is a release store
/// paired with acquire loads on the read side. The UTXO set and balance
/// accessors (`UnspentOf`, `BalanceOf`, `CheckConservation`) are backed
/// by mutator-private hash maps and are **not** safe to call
/// concurrently with mutation — use the snapshot versions, which replay
/// the address's pinned history instead.
///
/// Moving a Ledger is not thread-safe and invalidates all snapshots and
/// references obtained from the source.

namespace ba::chain {

class Ledger;

/// \brief Tunables for the simulated chain.
struct LedgerOptions {
  /// Block subsidy credited by each coinbase transaction.
  Amount block_subsidy = 625'000'000;  // 6.25 BTC
  /// Blocks a coinbase output must age before it can be spent.
  uint64_t coinbase_maturity = 0;
  /// Target seconds between blocks (used by callers that auto-advance
  /// time; the ledger itself accepts any non-decreasing timestamps).
  int64_t block_interval_seconds = 600;
};

/// \brief A pinned epoch of a Ledger: O(1) to capture, immune to
/// concurrent growth.
///
/// A snapshot pins `(height, num_addresses, num_transactions)` at
/// capture time and serves every read clamped to that epoch: a
/// transaction applied after the capture is invisible, as is an address
/// created after it. Because the underlying storage is append-only and
/// reallocation-stable, the snapshot holds no copies — it is three
/// integers and a pointer — yet every view it returns is consistent
/// with the exact chain state at capture time.
///
/// The pinned counters are mutually consistent by construction: the
/// writer publishes an address before any transaction touches it, a
/// transaction before any block contains it, and capture reads the
/// counters in the opposite order (height, then transactions, then
/// addresses). So a pinned block only references pinned transactions
/// and a pinned transaction only references pinned addresses.
///
/// Lifetime: a snapshot borrows the Ledger; it must not outlive it, and
/// moving the Ledger invalidates it. Snapshots are freely copyable and
/// safe to share across threads.
class LedgerSnapshot {
 public:
  /// Number of sealed blocks at capture time.
  uint64_t height() const { return height_; }

  /// Number of addresses at capture time.
  size_t num_addresses() const { return num_addresses_; }

  /// Number of applied (confirmed or pending) transactions at capture.
  uint64_t num_transactions() const { return num_transactions_; }

  const LedgerOptions& options() const;

  /// The transaction with the given id; `id` must be <
  /// `num_transactions()`. Aborts on bad id. The reference is stable
  /// for the life of the Ledger.
  const Transaction& tx(TxId id) const;

  /// The sealed block at `height`, which must be < `height()`.
  const Block& block(uint64_t height) const;

  /// Number of transactions touching `address` within this epoch.
  /// Addresses created after capture have zero transactions.
  size_t TxCountOf(AddressId address) const;

  /// The first `min(TxCountOf(address), max_count)` transactions
  /// touching `address` (as input or output), in chronological (apply)
  /// order — the raw material of §III-A.
  std::vector<TxId> TransactionsOf(
      AddressId address, size_t max_count = SIZE_MAX) const;

  /// Unspent outputs owned by `address` as of this epoch, in creation
  /// order. Reconstructed by replaying the address's pinned history
  /// (every spend of an address's coins appears in that address's own
  /// transaction list), so it is safe under concurrent ledger growth.
  std::vector<Utxo> UnspentOf(AddressId address) const;

  /// Spendable balance of `address` as of this epoch (sum of its
  /// mature UTXOs; coinbase maturity judged against the pinned height).
  Amount BalanceOf(AddressId address) const;

 private:
  friend class Ledger;

  LedgerSnapshot(const Ledger* ledger, uint64_t height,
                 uint64_t num_transactions, size_t num_addresses)
      : ledger_(ledger),
        height_(height),
        num_transactions_(num_transactions),
        num_addresses_(num_addresses) {}

  const Ledger* ledger_;
  uint64_t height_;
  uint64_t num_transactions_;
  size_t num_addresses_;
};

/// \brief The blockchain: blocks, transactions, UTXO set, and indexes.
///
/// Transactions are applied into a pending block; SealBlock() confirms
/// the pending block and advances the height. All mutation goes through
/// ApplyCoinbase / ApplyTransaction so the class can maintain its
/// conservation invariant: sum(UTXO values) == minted - fees.
///
/// See the file comment for the single-writer/multi-reader contract.
class Ledger {
 public:
  explicit Ledger(LedgerOptions options = {});

  // Movable (single-threaded only: concurrent readers or writers during
  // a move are a data race, and snapshots of the source are
  // invalidated). Not copyable.
  Ledger(Ledger&& other) noexcept;
  Ledger& operator=(Ledger&& other) noexcept;
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// Creates a fresh address and returns its dense id.
  AddressId NewAddress();

  /// Number of addresses ever created.
  size_t num_addresses() const { return address_txs_.size(); }

  /// Number of confirmed or pending transactions.
  size_t num_transactions() const {
    return published_txs_.load(std::memory_order_acquire);
  }

  /// Height of the next block to be sealed (number of sealed blocks).
  uint64_t height() const { return blocks_.size(); }

  const LedgerOptions& options() const { return options_; }

  /// \brief Captures the current epoch as a LedgerSnapshot. O(1): no
  /// copies, no locks. Safe to call from any thread concurrently with
  /// the single writer.
  LedgerSnapshot Snapshot() const;

  /// \brief Pins an epoch at a *past* transaction count (`<=
  /// num_transactions()`), for replaying historical reads. Height and
  /// address count are pinned at their current values, not rewound, so
  /// only the transaction-indexed views (`tx`, `TxCountOf`,
  /// `TransactionsOf`, `UnspentOf`) are truly historical; coinbase
  /// maturity in `BalanceOf` is judged against the current height.
  LedgerSnapshot SnapshotAt(uint64_t num_transactions) const;

  /// \brief Adds the coinbase transaction of the pending block, paying
  /// `block_subsidy` split proportionally to `payout_weights`
  /// (largest-remainder rounding, so the outputs always sum exactly to
  /// the subsidy; ties go to the lower payout index). Weights must be
  /// finite and non-negative with a positive sum; zero-share payouts
  /// produce no output.
  ///
  /// Fails if the pending block already has a coinbase or payouts are
  /// empty/invalid.
  Result<TxId> ApplyCoinbase(Timestamp timestamp,
                             const std::vector<AddressId>& payout_addresses,
                             const std::vector<double>& payout_weights);

  /// Convenience: single-payout coinbase.
  Result<TxId> ApplyCoinbase(Timestamp timestamp, AddressId payout);

  /// \brief Validates and applies a draft into the pending block.
  ///
  /// Checks: all inputs exist and are unspent (including within the
  /// pending block), coinbase maturity, outputs are positive and go to
  /// existing addresses, sum(in) >= sum(out).
  Result<TxId> ApplyTransaction(const TxDraft& draft);

  /// \brief Seals the pending block (possibly empty) at `timestamp`,
  /// which must be >= the previous block's timestamp.
  Status SealBlock(Timestamp timestamp);

  /// The applied transaction with the given id. Aborts on bad id. The
  /// returned reference is stable for the life of the ledger — growth
  /// never moves a published transaction.
  const Transaction& tx(TxId id) const;

  /// The sealed block at `height`, which must be < `height()`. The
  /// reference is stable for the life of the ledger.
  const Block& block(uint64_t height) const;

  /// Number of transactions touching `address` so far.
  size_t TxCountOf(AddressId address) const;

  /// All transactions touching `address` (as input or output), in
  /// chronological (apply) order — the raw material of §III-A.
  ///
  /// Returns a copy: unlike the historical reference-returning version,
  /// the result stays valid across subsequent ApplyTransaction /
  /// NewAddress calls (holding the old reference across growth was
  /// use-after-free). For clamped or capped views use
  /// `Snapshot().TransactionsOf(...)`.
  std::vector<TxId> TransactionsOf(AddressId address) const;

  /// Current unspent outputs owned by `address`. Mutator-thread only
  /// (reads the live UTXO map); concurrent readers should use
  /// `Snapshot().UnspentOf(...)`.
  std::vector<Utxo> UnspentOf(AddressId address) const;

  /// Spendable balance of `address` (sum of its mature UTXOs).
  /// Mutator-thread only, like UnspentOf().
  Amount BalanceOf(AddressId address) const;

  /// Total satoshis ever minted via coinbase subsidies.
  Amount total_minted() const { return total_minted_; }

  /// Total fees burned (sum over non-coinbase txs of in - out).
  Amount total_fees() const { return total_fees_; }

  /// \brief Verifies the global conservation invariant:
  /// sum of UTXO values == minted - fees. O(UTXO set). Mutator-thread
  /// only.
  Status CheckConservation() const;

 private:
  friend class LedgerSnapshot;

  struct UtxoEntry {
    TxOut out;
    uint64_t confirmed_height = 0;  // height of containing block
  };

  /// Records `txid` in the per-address index for each distinct address
  /// the transaction touches. Must run before the transaction is
  /// published (see ApplyTransaction for the ordering protocol).
  void IndexTransaction(const Transaction& tx);

  LedgerOptions options_;
  // Reader-shared storage: append-only ChunkedVectors whose elements
  // never move. Publication protocol (writer side):
  //   1. push the Transaction into transactions_ (element visible but
  //      not yet counted),
  //   2. append its txid to the per-address index lists,
  //   3. release-store published_txs_.
  // Snapshot capture reads height, then published_txs_, then
  // num_addresses (the reverse of the publication order blocks -> txs
  // -> addresses), which makes the pinned triple mutually consistent.
  util::ChunkedVector<Block> blocks_;
  util::ChunkedVector<Transaction> transactions_;  // indexed by TxId
  util::ChunkedVector<util::ChunkedVector<TxId>> address_txs_;
  std::atomic<uint64_t> published_txs_{0};
  // Mutator-private state (never touched by readers/snapshots).
  Block pending_;
  bool pending_has_coinbase_ = false;
  Timestamp last_seal_time_ = 0;
  std::unordered_map<uint64_t, UtxoEntry> utxos_;  // OutPoint::Key() -> entry
  std::vector<std::vector<uint64_t>> address_utxo_keys_;  // live outpoints
  Amount total_minted_ = 0;
  Amount total_fees_ = 0;
};

}  // namespace ba::chain
