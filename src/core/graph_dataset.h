#pragma once

#include <vector>

#include "chain/ledger.h"
#include "core/gfn_features.h"
#include "core/graph_builder.h"
#include "datagen/behavior.h"

/// \file graph_dataset.h
/// \brief Materialized per-address samples: the chronological graph
/// list of §III-A plus the tensors the models consume, built once and
/// shared across every experiment on the same split.

namespace ba::core {

/// \brief One dataset unit: an address, its label, its graph slices and
/// their tensor views.
struct AddressSample {
  chain::AddressId address = chain::kInvalidAddress;
  /// Behavior class (BehaviorLabel as int), or -1 when unlabeled.
  int label = -1;
  /// Chronological graph slices (Stage 1-4 output).
  std::vector<AddressGraph> graphs;
  /// Tensor views aligned with `graphs`.
  std::vector<GraphTensors> tensors;

  int num_graphs() const { return static_cast<int>(graphs.size()); }
};

/// \brief Options of dataset materialization.
struct GraphDatasetOptions {
  GraphConstructorOptions construction;
  /// Propagation depth k of GFN feature augmentation (Eq. 13).
  int k_hops = 2;
  /// Worker threads for graph construction (1 = serial; Table V uses 1
  /// to report single-core times).
  int num_threads = 1;

  /// \brief Returns OK when every field (including `construction`) is
  /// usable, or a descriptive InvalidArgument.
  Status Validate() const;
};

/// \brief Builds AddressSamples from ledger history.
class GraphDatasetBuilder {
 public:
  explicit GraphDatasetBuilder(GraphDatasetOptions options = {});

  /// Materializes samples for every labeled address. Addresses whose
  /// history yields no graphs are dropped.
  std::vector<AddressSample> Build(
      const chain::Ledger& ledger,
      const std::vector<datagen::LabeledAddress>& addresses);

  /// Per-stage construction time accumulated across Build calls
  /// (summed over worker threads — single-core equivalent).
  const StageTimings& timings() const { return timings_; }

  const GraphDatasetOptions& options() const { return options_; }

 private:
  GraphDatasetOptions options_;
  StageTimings timings_;
};

}  // namespace ba::core
