#pragma once

#include <memory>

#include "core/address_graph.h"
#include "graph/sparse_matrix.h"
#include "tensor/tensor.h"

/// \file gfn_features.h
/// \brief GFN graph feature augmentation (§III-B, Eq. 12-13): converts
/// an address graph into the tensors the neural encoders consume.
///
/// X^G = [d, X, Ã¹X, Ã²X, …, ÃᵏX] where Ã = D̃^{-1/2}(A+I)D̃^{-1/2}.
/// Precomputing the propagation is what lets GFN itself be a plain MLP.

namespace ba::core {

/// \brief The tensor view of one address graph.
struct GraphTensors {
  /// Raw node features X, shape (n, kNodeFeatureDim) — GCN/DiffPool input.
  tensor::Tensor base_features;
  /// Normalized adjacency Ã (Eq. 12), shared with the autograd SpMM op.
  std::shared_ptr<const graph::SparseMatrix> norm_adj;
  /// Augmented features X^G (Eq. 13), shape (n, AugmentedDim(k)) — GFN
  /// input.
  tensor::Tensor augmented;
};

/// Feature width of X^G for propagation depth `k_hops`:
/// 1 (degree) + kNodeFeatureDim * (k_hops + 1).
inline int64_t AugmentedDim(int k_hops) {
  return 1 + static_cast<int64_t>(kNodeFeatureDim) * (k_hops + 1);
}

/// \brief Builds X, Ã and X^G for one graph. `k_hops` >= 0 is the
/// maximum propagation power in Eq. 13 (the paper's k).
GraphTensors PrepareGraphTensors(const AddressGraph& graph, int k_hops);

}  // namespace ba::core
