#include "core/sfe.h"

#include <algorithm>
#include <cmath>

namespace ba::core {

namespace {

double Percentile(std::vector<double> sorted, double p) {
  // Linear interpolation between closest ranks (inclusive method).
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double SignedLog1p(double v) {
  return v >= 0.0 ? std::log1p(v) : -std::log1p(-v);
}

double Clamp(double v, double lo, double hi) {
  if (std::isnan(v)) return 0.0;
  return std::clamp(v, lo, hi);
}

}  // namespace

std::array<double, kSfeDim> ComputeSfe(const std::vector<double>& values) {
  std::array<double, kSfeDim> out{};
  const size_t n = values.size();
  if (n == 0) return out;

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double min_v = sorted.front();
  const double max_v = sorted.back();

  double sum = 0.0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(n);

  double m2 = 0.0, m3 = 0.0, m4 = 0.0, abs_dev = 0.0;
  for (double v : values) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
    abs_dev += std::abs(d);
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  const double variance = m2;
  const double stddev = std::sqrt(variance);
  const double mad = abs_dev / static_cast<double>(n);
  const double median = Percentile(sorted, 0.5);

  out[kSfeMax] = max_v;
  out[kSfeMin] = min_v;
  out[kSfeSum] = sum;
  out[kSfeMean] = mean;
  out[kSfeCount] = static_cast<double>(n);
  out[kSfeRange] = max_v - min_v;
  out[kSfeMidRange] = (max_v + min_v) / 2.0;
  out[kSfePercentile75] = Percentile(sorted, 0.75);
  out[kSfeVariance] = variance;
  out[kSfeStdDev] = stddev;
  out[kSfeMeanAbsDev] = mad;
  out[kSfeCoeffVar] = mean != 0.0 ? stddev / std::abs(mean) : 0.0;
  // Population kurtosis (not excess) and skewness; degenerate
  // (zero-variance) inputs report 0.
  out[kSfeKurtosis] = variance > 0.0 ? m4 / (variance * variance) : 0.0;
  out[kSfeSkewness] = stddev > 0.0 ? m3 / (stddev * stddev * stddev) : 0.0;
  // Tilt: Pearson's second (median) skewness coefficient.
  out[kSfeTilt] = stddev > 0.0 ? 3.0 * (mean - median) / stddev : 0.0;
  return out;
}

std::array<double, kSfeDim> CompressSfe(
    const std::array<double, kSfeDim>& raw) {
  std::array<double, kSfeDim> out = raw;
  for (int i : {kSfeMax, kSfeMin, kSfeSum, kSfeMean, kSfeCount, kSfeRange,
                kSfeMidRange, kSfePercentile75, kSfeVariance, kSfeStdDev,
                kSfeMeanAbsDev}) {
    out[static_cast<size_t>(i)] = SignedLog1p(out[static_cast<size_t>(i)]);
  }
  out[kSfeCoeffVar] = Clamp(out[kSfeCoeffVar], 0.0, 10.0);
  out[kSfeKurtosis] = Clamp(SignedLog1p(out[kSfeKurtosis]), -10.0, 10.0);
  out[kSfeSkewness] = Clamp(out[kSfeSkewness], -10.0, 10.0);
  out[kSfeTilt] = Clamp(out[kSfeTilt], -10.0, 10.0);
  return out;
}

std::array<double, kSfeDim> ComputeCompressedSfe(
    const std::vector<double>& values) {
  return CompressSfe(ComputeSfe(values));
}

}  // namespace ba::core
