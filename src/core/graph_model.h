#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/graph_dataset.h"
#include "metrics/classification.h"
#include "util/retry.h"
#include "nn/diffpool.h"
#include "nn/gcn.h"
#include "nn/gat.h"
#include "nn/gfn.h"
#include "nn/quantized.h"
#include "tensor/optimizer.h"

/// \file graph_model.h
/// \brief Graph Representation Learning (§III-B): a uniform trainer for
/// the three graph-level encoders the paper compares (GFN — ours; GCN;
/// DiffPool, Table II / Fig 5). Each address-graph slice is a training
/// example whose label is its address's behavior class.

namespace ba::core {

/// \brief Which graph encoder backs a GraphModel. kGat is an
/// extension beyond the paper's three evaluated encoders.
enum class GraphEncoderKind { kGfn, kGcn, kDiffPool, kGat };

const char* GraphEncoderName(GraphEncoderKind kind);

/// \brief One point of a learning curve (Fig 5).
struct EpochStat {
  int epoch = 0;
  /// Cumulative training wall-clock seconds up to the end of the epoch.
  double seconds = 0.0;
  double train_loss = 0.0;
  /// Weighted-average F1 on the eval set (graph level); -1 if not
  /// evaluated.
  double eval_f1 = -1.0;
};

/// \brief Training options shared by the three encoders.
struct GraphModelOptions {
  GraphEncoderKind encoder = GraphEncoderKind::kGfn;
  int num_classes = 4;
  int k_hops = 2;  ///< must match the dataset's k_hops (GFN input width)
  int64_t hidden_dim = 64;
  int64_t embed_dim = 32;
  int64_t diffpool_clusters = 8;
  float dropout = 0.1f;
  int epochs = 20;
  int batch_size = 16;
  float learning_rate = 1e-3f;
  float weight_decay = 0.0f;
  uint64_t seed = 1;
  /// When non-empty, Train() writes a crash-safe checkpoint (weights +
  /// Adam state + RNG) into this directory and resumes from it if one
  /// exists — a run killed at epoch k and restarted reproduces the
  /// uninterrupted run's parameters bit-exactly.
  std::string checkpoint_dir;
  /// Checkpoint cadence in epochs (only with checkpoint_dir set); the
  /// final epoch is always checkpointed.
  int checkpoint_every = 1;
  /// Retry policy for checkpoint saves. The default (max_attempts = 1)
  /// fails the epoch on the first save error; a multi-attempt policy
  /// rides out transient I/O failures without losing training progress.
  util::RetryPolicy checkpoint_retry;
  /// Training lanes: 1 = serial (default), 0 = use the shared pool's
  /// size (`util::SharedPoolThreads()`), N = N lanes. Each batch fans
  /// per-example forward/backward across the lanes with a fixed-order
  /// gradient reduction, so any lane count produces bit-identical
  /// parameters — including under checkpoint kill/resume.
  int num_threads = 1;

  /// \brief Returns OK when every field is usable, or a descriptive
  /// InvalidArgument naming the offending field and value.
  Status Validate() const;
};

/// \brief Trains a graph encoder and serves logits / embeddings.
class GraphModel {
 public:
  explicit GraphModel(const GraphModelOptions& options);

  /// \brief Trains on every graph of `train`. When `eval` is non-null,
  /// graph-level weighted F1 is computed after each epoch (recorded in
  /// `history`, also non-null in that case).
  ///
  /// With `options().checkpoint_dir` set, training checkpoints after
  /// every `checkpoint_every` epochs and resumes from an existing
  /// checkpoint (see checkpoint.h). Returns non-OK when a checkpoint
  /// cannot be written, or when an existing one is corrupted or does
  /// not match this architecture; without checkpointing, always OK.
  Status Train(const std::vector<AddressSample>& train,
               const std::vector<AddressSample>* eval = nullptr,
               std::vector<EpochStat>* history = nullptr);

  /// Class logits for one graph (inference mode), shape (1, classes).
  tensor::Var Logits(const GraphTensors& gt) const;

  /// Predicted class of one graph.
  int PredictGraph(const GraphTensors& gt) const;

  /// Graph embedding rep^G (inference mode), shape (1, embed_dim).
  tensor::Tensor Embed(const GraphTensors& gt) const;

  /// \brief Post-training int8 quantization of the embed path,
  /// calibrated on the augmented node features of `calibration`
  /// (typically the training set). GFN-only: its embed path is a pure
  /// node MLP; returns Unimplemented for the other encoders and
  /// InvalidArgument when `calibration` holds no graphs. Training and
  /// the fp32 Embed/Logits paths are untouched; idempotent (a second
  /// call recalibrates).
  Status Quantize(const std::vector<AddressSample>& calibration);

  /// True after a successful Quantize().
  bool quantized() const { return quantized_node_mlp_ != nullptr; }

  /// Graph embedding through the int8 node MLP (SUM readout in fp32),
  /// shape (1, embed_dim). Requires quantized().
  tensor::Tensor EmbedQuantized(const GraphTensors& gt) const;

  /// Graph-level confusion over every graph of `samples` — the Table II
  /// evaluation protocol.
  metrics::ConfusionMatrix EvaluateGraphLevel(
      const std::vector<AddressSample>& samples) const;

  int64_t embed_dim() const { return options_.embed_dim; }
  const GraphModelOptions& options() const { return options_; }
  int64_t NumParameters() const;

  /// Trainable parameter nodes of the active encoder (checkpointing).
  std::vector<tensor::Var> Parameters() const;

 private:
  /// Forward pass; `rng` drives dropout when training (per-example
  /// forked RNGs during data-parallel training, null at inference).
  tensor::Var LogitsImpl(const GraphTensors& gt, bool training,
                         Rng* rng) const;

  GraphModelOptions options_;
  mutable Rng rng_;
  std::unique_ptr<nn::GfnEncoder> gfn_;
  /// Int8 twin of gfn_'s node MLP (set by Quantize, GFN only).
  std::unique_ptr<nn::QuantizedMlp> quantized_node_mlp_;
  std::unique_ptr<nn::GcnEncoder> gcn_;
  std::unique_ptr<nn::DiffPoolEncoder> diffpool_;
  std::unique_ptr<nn::GatEncoder> gat_;
  std::unique_ptr<tensor::Adam> optimizer_;
};

/// Weighted-average F1 over graph-level predictions of `samples`.
double GraphLevelWeightedF1(const GraphModel& model,
                            const std::vector<AddressSample>& samples);

}  // namespace ba::core
