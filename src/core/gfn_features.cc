#include "core/gfn_features.h"

#include <vector>

#include "graph/centrality.h"
#include "util/logging.h"

namespace ba::core {

GraphTensors PrepareGraphTensors(const AddressGraph& graph, int k_hops) {
  BA_CHECK_GE(k_hops, 0);
  const int64_t n = graph.num_nodes();
  BA_CHECK_GT(n, 0);

  GraphTensors out;
  out.base_features = tensor::Tensor({n, kNodeFeatureDim});
  for (int64_t i = 0; i < n; ++i) {
    const auto& f = graph.nodes[static_cast<size_t>(i)].features;
    BA_CHECK_EQ(static_cast<int>(f.size()), kNodeFeatureDim);
    for (int64_t j = 0; j < kNodeFeatureDim; ++j) {
      out.base_features.at(i, j) =
          static_cast<float>(f[static_cast<size_t>(j)]);
    }
  }

  const graph::AdjacencyList adj = graph.ToAdjacency();
  out.norm_adj = std::make_shared<const graph::SparseMatrix>(
      graph::NormalizedAdjacency(adj));

  // X^G = [d | X | ÃX | … | ÃᵏX].
  const int64_t aug_dim = AugmentedDim(k_hops);
  out.augmented = tensor::Tensor({n, aug_dim});
  const std::vector<double> degree = graph::DegreeCentrality(adj);
  for (int64_t i = 0; i < n; ++i) {
    out.augmented.at(i, 0) = static_cast<float>(
        std::log1p(degree[static_cast<size_t>(i)]));
  }
  tensor::Tensor propagated = out.base_features;  // Ã⁰X
  int64_t col = 1;
  for (int hop = 0; hop <= k_hops; ++hop) {
    if (hop > 0) {
      tensor::Tensor next({n, kNodeFeatureDim});
      out.norm_adj->MultiplyDense(propagated.data(), kNodeFeatureDim,
                                  next.data());
      propagated = std::move(next);
    }
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < kNodeFeatureDim; ++j) {
        out.augmented.at(i, col + j) = propagated.at(i, j);
      }
    }
    col += kNodeFeatureDim;
  }
  BA_CHECK_EQ(col, aug_dim);
  return out;
}

}  // namespace ba::core
