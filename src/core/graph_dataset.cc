#include "core/graph_dataset.h"

#include <atomic>
#include <memory>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ba::core {

Status GraphDatasetOptions::Validate() const {
  BA_RETURN_NOT_OK(construction.Validate());
  if (k_hops < 0) {
    return Status::InvalidArgument("dataset.k_hops must be >= 0 (got " +
                                   std::to_string(k_hops) + ")");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument("dataset.num_threads must be >= 1 (got " +
                                   std::to_string(num_threads) + ")");
  }
  return Status::OK();
}

GraphDatasetBuilder::GraphDatasetBuilder(GraphDatasetOptions options)
    : options_(options) {
  BA_CHECK_GE(options_.num_threads, 1);
}

std::vector<AddressSample> GraphDatasetBuilder::Build(
    const chain::Ledger& ledger,
    const std::vector<datagen::LabeledAddress>& addresses) {
  const size_t n = addresses.size();
  obs::ScopedSpan span("core.dataset.build");
  span.AddArg("addresses", static_cast<double>(n));
  span.AddArg("threads", static_cast<double>(options_.num_threads));
  std::vector<AddressSample> samples(n);

  // One snapshot for the whole build: every worker reads the same
  // pinned epoch, so the dataset is consistent even if the ledger grows
  // while construction runs.
  const chain::LedgerSnapshot snapshot = ledger.Snapshot();

  auto build_one = [&](GraphConstructor* constructor, size_t i) {
    AddressSample& sample = samples[i];
    sample.address = addresses[i].address;
    sample.label = static_cast<int>(addresses[i].label);
    sample.graphs = constructor->BuildGraphs(snapshot, addresses[i].address);
    sample.tensors.reserve(sample.graphs.size());
    for (const auto& g : sample.graphs) {
      sample.tensors.push_back(PrepareGraphTensors(g, options_.k_hops));
    }
  };

  if (options_.num_threads == 1) {
    GraphConstructor constructor(options_.construction);
    for (size_t i = 0; i < n; ++i) build_one(&constructor, i);
    const StageTimings& t = constructor.timings();
    timings_.extract_seconds += t.extract_seconds;
    timings_.single_compress_seconds += t.single_compress_seconds;
    timings_.multi_compress_seconds += t.multi_compress_seconds;
    timings_.augment_seconds += t.augment_seconds;
  } else {
    // One constructor per worker; timings summed afterwards.
    const size_t workers = static_cast<size_t>(options_.num_threads);
    std::vector<std::unique_ptr<GraphConstructor>> constructors;
    constructors.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      constructors.push_back(
          std::make_unique<GraphConstructor>(options_.construction));
    }
    ThreadPool pool(workers);
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < workers; ++w) {
      const bool accepted = pool.Submit([&, w] {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= n) break;
          build_one(constructors[w].get(), i);
        }
      });
      BA_CHECK(accepted);  // freshly constructed pool cannot be shut down
    }
    pool.Wait();
    for (const auto& c : constructors) {
      const StageTimings& t = c->timings();
      timings_.extract_seconds += t.extract_seconds;
      timings_.single_compress_seconds += t.single_compress_seconds;
      timings_.multi_compress_seconds += t.multi_compress_seconds;
      timings_.augment_seconds += t.augment_seconds;
    }
  }

  // Drop empty histories.
  std::vector<AddressSample> out;
  out.reserve(samples.size());
  for (auto& s : samples) {
    if (!s.graphs.empty()) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace ba::core
