#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/types.h"
#include "core/sfe.h"
#include "graph/centrality.h"

/// \file address_graph.h
/// \brief The heterogeneous address-transaction graph of §III-A: the
/// unit that flows through compression, augmentation and the GNN.

namespace ba::core {

/// \brief Kind of a node in an address graph.
enum class NodeKind : int {
  kAddress = 0,      ///< plain address node v^addr
  kTransaction = 1,  ///< transaction node v^tx
  kSingleHyper = 2,  ///< single-transaction hyper node (Fig 3)
  kMultiHyper = 3,   ///< multi-transaction hyper node (Fig 4)
};

inline constexpr int kNumNodeKinds = 4;

/// Structural-augmentation features appended in Stage 4 (Eq. 8-11).
inline constexpr int kNumCentralityFeatures = 4;

/// One extra flag marking the target address's own node, so graph-level
/// readouts know which address the graph describes.
inline constexpr int kTargetFlagDim = 1;

/// Width of a node feature vector after augmentation:
/// kind one-hot + target flag + SFE statistics + 4 centralities.
inline constexpr int kNodeFeatureDim =
    kNumNodeKinds + kTargetFlagDim + kSfeDim + kNumCentralityFeatures;

/// Feature index of the target flag.
inline constexpr int kTargetFlagIndex = kNumNodeKinds;

/// Feature index of the first SFE statistic.
inline constexpr int kSfeFeatureOffset = kNumNodeKinds + kTargetFlagDim;

/// Feature index of the first centrality slot.
inline constexpr int kCentralityFeatureOffset = kSfeFeatureOffset + kSfeDim;

/// \brief One node of an address graph.
struct GraphNode {
  NodeKind kind = NodeKind::kAddress;
  /// Source address (plain address nodes), or kInvalidAddress for
  /// transaction and hyper nodes.
  chain::AddressId address = chain::kInvalidAddress;
  /// Source transaction (transaction nodes only).
  chain::TxId txid = 0;
  /// Number of original addresses this (hyper) node represents.
  int merged_count = 1;
  /// Feature vector: [kind one-hot | SFE | centralities]. Centrality
  /// slots are zero until Stage 4 fills them.
  std::vector<double> features;
};

/// \brief An edge between an address-side node and a transaction node.
struct GraphEdge {
  int from = 0;  ///< node index (address-side for inputs, tx for outputs)
  int to = 0;    ///< node index
  double value = 0.0;  ///< transferred amount in BTC
  bool is_input = false;  ///< address funds the transaction
};

/// \brief One chronological 100-transaction slice of an address's
/// history, as a heterogeneous graph.
struct AddressGraph {
  /// The address whose behavior this graph describes.
  chain::AddressId target = chain::kInvalidAddress;
  /// Index of the target's own node in `nodes`.
  int target_node = 0;
  std::vector<GraphNode> nodes;
  std::vector<GraphEdge> edges;
  /// Chronological slice index within the address (0-based).
  int slice_index = 0;

  int num_nodes() const { return static_cast<int>(nodes.size()); }
  int num_edges() const { return static_cast<int>(edges.size()); }

  /// Count of nodes of a given kind.
  int CountKind(NodeKind kind) const {
    int c = 0;
    for (const auto& n : nodes) c += (n.kind == kind) ? 1 : 0;
    return c;
  }

  /// Undirected adjacency view over the node indices (for centrality
  /// and GNN propagation).
  graph::AdjacencyList ToAdjacency() const {
    graph::AdjacencyList adj(num_nodes());
    for (const auto& e : edges) adj.AddEdge(e.from, e.to);
    return adj;
  }
};

/// Initializes a node feature vector: kind one-hot + compressed SFE of
/// `values`, with zeroed target-flag and centrality slots (filled by
/// the construction pipeline).
inline std::vector<double> MakeNodeFeatures(
    NodeKind kind, const std::vector<double>& values) {
  std::vector<double> f(kNodeFeatureDim, 0.0);
  f[static_cast<size_t>(kind)] = 1.0;
  const auto sfe = ComputeCompressedSfe(values);
  for (int i = 0; i < kSfeDim; ++i) {
    f[static_cast<size_t>(kSfeFeatureOffset + i)] =
        sfe[static_cast<size_t>(i)];
  }
  return f;
}

}  // namespace ba::core
