#pragma once

#include <cstdint>
#include <vector>

#include "core/graph_dataset.h"

/// \file flat_features.h
/// \brief The Table II comparison protocol for classical ML models:
/// "aggregate feature vectors of all input nodes and all output nodes
/// of a target node, and concatenate [agg-in | target | agg-out]"
/// (§IV-C.1). Averaged over the address's graph slices, plus two global
/// scalars (graph count, transaction count).

namespace ba::core {

/// Width of the flattened vector: 3 * kNodeFeatureDim + 2.
inline constexpr int64_t kFlatFeatureDim = 3 * kNodeFeatureDim + 2;

/// \brief Flattens one address sample into a fixed-size feature vector
/// for the non-graph baselines.
std::vector<float> FlatFeatures(const AddressSample& sample);

/// \brief Flattens a single graph slice — the Table II protocol, where
/// the classical models see exactly the same per-slice examples the
/// GNNs classify. Width kFlatFeatureDim (the two trailing globals are
/// the slice's node and transaction counts).
std::vector<float> FlatFeaturesForGraph(const AddressGraph& graph);

/// Flattens a whole split; rows align with `samples`.
std::vector<std::vector<float>> FlatFeatureMatrix(
    const std::vector<AddressSample>& samples);

}  // namespace ba::core
