#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/graph_model.h"
#include "metrics/classification.h"
#include "nn/attention.h"
#include "nn/self_attention.h"
#include "nn/lstm.h"
#include "tensor/optimizer.h"

/// \file aggregator.h
/// \brief Address Classification (§III-C): folds an address's
/// chronological list of graph embeddings into one prediction. The
/// paper selects LSTM+MLP (Eq. 22); BiLSTM, attention pooling and
/// sum/avg/max pooling are the Table III comparators.

namespace ba::core {

/// \brief Sequence-aggregation strategy over the embedding list.
enum class AggregatorKind {
  kLstm,           ///< LSTM+MLP — the paper's choice (Eq. 22)
  kBiLstm,         ///< BiLSTM+MLP
  kAttention,      ///< Attention pooling + MLP
  kSum,            ///< SUM pooling + MLP
  kAvg,            ///< AVG pooling + MLP
  kMax,            ///< MAX pooling + MLP
  kSelfAttention,  ///< Transformer-style self-attention (extension)
};

const char* AggregatorName(AggregatorKind kind);

/// The six Table III aggregators, in table order (the self-attention
/// extension is not included; request it explicitly).
std::vector<AggregatorKind> AllAggregators();

/// \brief One training sequence: an address's stacked graph embeddings
/// (T, embed_dim) and its label.
struct EmbeddingSequence {
  tensor::Tensor embeddings;
  int label = -1;
};

/// \brief Options of the address-classification stage.
struct AggregatorOptions {
  AggregatorKind kind = AggregatorKind::kLstm;
  int64_t embed_dim = 32;   ///< input width (graph embedding size)
  int64_t hidden_dim = 32;  ///< LSTM hidden / attention size
  int64_t mlp_hidden = 32;
  int num_classes = 4;
  int epochs = 30;
  int batch_size = 16;
  float learning_rate = 1e-3f;
  uint64_t seed = 7;
  /// Training lanes: 1 = serial (default), 0 = shared-pool size, N = N
  /// lanes. Like GraphModelOptions::num_threads, any lane count yields
  /// bit-identical parameters (fixed-order gradient reduction).
  int num_threads = 1;

  /// \brief Returns OK when every field is usable, or a descriptive
  /// InvalidArgument naming the offending field and value.
  Status Validate() const;
};

/// \brief Trainable address classifier over embedding sequences.
class AggregatorModel {
 public:
  explicit AggregatorModel(const AggregatorOptions& options);

  /// Class logits for one sequence, shape (1, classes).
  tensor::Var Logits(const tensor::Tensor& embeddings) const;

  int Predict(const tensor::Tensor& embeddings) const;

  /// \brief Trains on sequences; per-epoch stats recorded when
  /// `history` is non-null (eval_f1 needs a non-null `eval`).
  void Train(const std::vector<EmbeddingSequence>& train,
             const std::vector<EmbeddingSequence>* eval = nullptr,
             std::vector<EpochStat>* history = nullptr);

  metrics::ConfusionMatrix Evaluate(
      const std::vector<EmbeddingSequence>& samples) const;

  const AggregatorOptions& options() const { return options_; }

  /// Trainable parameter nodes (checkpointing).
  std::vector<tensor::Var> Parameters() const;

 private:
  AggregatorOptions options_;
  Rng rng_;
  std::unique_ptr<nn::Lstm> lstm_;
  std::unique_ptr<nn::BiLstm> bilstm_;
  std::unique_ptr<nn::AttentionPool> attention_;
  std::unique_ptr<nn::SelfAttentionPool> self_attention_;
  std::unique_ptr<nn::Mlp> head_;
  std::unique_ptr<tensor::Adam> optimizer_;
};

/// Builds the embedding sequences of `samples` under a trained graph
/// model (inference mode).
std::vector<EmbeddingSequence> BuildEmbeddingSequences(
    const GraphModel& model, const std::vector<AddressSample>& samples);

}  // namespace ba::core
